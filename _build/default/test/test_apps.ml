(* Tests for the application-specific protocols of paper section 5 (and
   the active messages of section 3.3). *)

let tc name f = Alcotest.test_case name `Quick f

let ip_b = Experiments.Common.ip_b

let pair () = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ())

(* ---- active messages ------------------------------------------------- *)

let am_roundtrip () =
  let p = pair () in
  let a = p.Experiments.Common.a and b = p.Experiments.Common.b in
  let bctx, bext =
    Apps.Active_messages.echo_extension ~name:"echo"
      ~reply_cost:(Sim.Stime.us 2) ()
  in
  (match Plexus.Stack.link b bext with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "link: %a" Spin.Extension.pp_failure f);
  let got = ref [] in
  let actx, aext =
    Apps.Active_messages.extension ~name:"ping"
      ~handlers:(fun _ idx ~src:_ payload ->
        if idx = 1 then
          [
            Spin.Ephemeral.work ~label:"record" ~cost:(Sim.Stime.us 1)
              (fun () -> got := payload :: !got);
          ]
        else Spin.Ephemeral.nothing)
      ()
  in
  (match Plexus.Stack.link a aext with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "link: %a" Spin.Extension.pp_failure f);
  let dst = Plexus.Ether_mgr.mac (Plexus.Stack.ether b) in
  Apps.Active_messages.send actx ~dst ~handler:0 "marco";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check (list string)) "echoed payload" [ "marco" ] !got;
  Alcotest.(check int) "responder counted" 1 (Apps.Active_messages.received bctx)

let am_send_fails_when_unlinked () =
  let ctx, _ext =
    Apps.Active_messages.extension ~name:"x"
      ~handlers:(fun _ _ ~src:_ _ -> Spin.Ephemeral.nothing)
      ()
  in
  match
    Apps.Active_messages.send ctx ~dst:(Proto.Ether.Mac.of_int 1) ~handler:0 "y"
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "send worked without linking"

let am_budget_termination () =
  let r = Experiments.Micro.budget_termination ~messages:10 ~actions:6
      ~action_cost:(Sim.Stime.us 5) ~budget:(Sim.Stime.us 12) ()
  in
  Alcotest.(check int) "every handler terminated" 10
    r.Experiments.Micro.terminations;
  Alcotest.(check int) "exactly the affordable prefix committed" 20
    r.Experiments.Micro.committed_actions

(* ---- video ------------------------------------------------------------ *)

let video_server_paces_frames () =
  let engine = Sim.Engine.create () in
  let sent = ref [] in
  let env =
    {
      Apps.Video_server.engine;
      read_frame = (fun ~len k -> k (String.make len 'f'));
      send = (fun ~dst:_ data -> sent := String.length data :: !sent);
    }
  in
  let server = Apps.Video_server.create env ~fps:30 ~frame_len:1000 in
  Apps.Video_server.add_stream server (ip_b, 9001);
  Apps.Video_server.add_stream server (ip_b, 9002);
  Apps.Video_server.start ~until:(Sim.Stime.s 1) server;
  Sim.Engine.run engine ~until:(Sim.Stime.s 1);
  (* 2 streams * 30 fps * 1 second, +-1 for stagger boundaries *)
  Alcotest.(check bool)
    (Printf.sprintf "about 60 frames (%d)" (List.length !sent))
    true
    (abs (List.length !sent - 60) <= 2);
  Alcotest.(check bool) "frame sizes" true (List.for_all (( = ) 1000) !sent);
  Alcotest.(check int) "counter matches" (List.length !sent)
    (Apps.Video_server.frames_sent server)

let video_end_to_end_plexus () =
  let p = pair () in
  let a = p.Experiments.Common.a and b = p.Experiments.Common.b in
  let host_a = Plexus.Stack.host a in
  let disk =
    Netsim.Disk.create p.Experiments.Common.engine
      ~cpu:(Netsim.Host.cpu host_a) ~costs:(Netsim.Host.costs host_a)
  in
  let udp = Plexus.Stack.udp a in
  let ep =
    match Plexus.Udp_mgr.bind udp ~owner:"video" ~port:9000 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let env =
    {
      Apps.Video_server.engine = p.Experiments.Common.engine;
      read_frame = (fun ~len k -> Netsim.Disk.read disk ~len k);
      send = (fun ~dst data -> Plexus.Udp_mgr.send udp ep ~dst data);
    }
  in
  let server = Apps.Video_server.create env ~fps:30 ~frame_len:1400 in
  Apps.Video_server.add_stream server (ip_b, 9001);
  let client = Apps.Video_client.on_plexus ~fps:30 b ~port:9001 in
  Apps.Video_server.start ~until:(Sim.Stime.ms 500) server;
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 1);
  Alcotest.(check bool)
    (Printf.sprintf "frames received (%d)" (Apps.Video_client.frames_received client))
    true
    (Apps.Video_client.frames_received client >= 14);
  Alcotest.(check int) "all received frames displayed"
    (Apps.Video_client.frames_received client)
    (Apps.Video_client.frames_displayed client);
  (* decompression doubles the bytes hitting the framebuffer *)
  Alcotest.(check int) "fb bytes = expansion * rx bytes"
    (Apps.Video_client.bytes_received client * Apps.Codec.expansion_factor)
    (Netsim.Framebuffer.bytes_written (Apps.Video_client.framebuffer client));
  (* one stream on an idle host: every frame makes its deadline and the
     inter-arrival times hover around the 33ms period *)
  Alcotest.(check int) "no deadline misses" 0
    (Apps.Video_client.deadline_misses client);
  let jit = Apps.Video_client.jitter client in
  Alcotest.(check bool)
    (Printf.sprintf "inter-arrival ~33ms (%.1fms)"
       (Sim.Stats.Series.mean jit /. 1000.))
    true
    (abs_float ((Sim.Stats.Series.mean jit /. 1000.) -. 33.3) < 3.)

(* ---- forwarder ---------------------------------------------------------- *)

let forwarder_udp_redirect () =
  (* UDP datagrams to the forwarded port are redirected to the backend,
     source preserved at the transport level (NAT at the middle). *)
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine (Netsim.Costs.ethernet ())
      ~client:("client", Experiments.Common.ip_client)
      ~middle:("middle", Experiments.Common.ip_middle)
      ~server:("server", Experiments.Common.ip_server)
  in
  let client = Plexus.Stack.build c.Netsim.Network.host in
  let middle =
    Plexus.Stack.build
      ~subnets:[ (Experiments.Common.net1, 24); (Experiments.Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  let server = Plexus.Stack.build s.Netsim.Network.host in
  Plexus.Arp_mgr.prime (Plexus.Stack.arp client) Experiments.Common.ip_middle
    (Netsim.Dev.mac m1.Netsim.Network.dev);
  Plexus.Arp_mgr.prime
    (List.nth (Plexus.Stack.arps middle) 0)
    Experiments.Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  Plexus.Arp_mgr.prime
    (List.nth (Plexus.Stack.arps middle) 1)
    Experiments.Common.ip_server
    (Netsim.Dev.mac s.Netsim.Network.dev);
  Plexus.Arp_mgr.prime (Plexus.Stack.arp server) Experiments.Common.ip_middle
    (Netsim.Dev.mac m2.Netsim.Network.dev);
  let fwd =
    Apps.Forwarder.create middle ~listen_port:5353
      ~backend:(Experiments.Common.ip_server, 5353)
  in
  let got = ref [] in
  let udp_s = Plexus.Stack.udp server in
  let ep_s =
    match Plexus.Udp_mgr.bind udp_s ~owner:"backend" ~port:5353 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_s ep_s (fun ctx ->
        got := View.to_string (Plexus.Pctx.view ctx) :: !got;
        (* reply to the (rewritten) source: travels back via the middle *)
        let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
        Plexus.Udp_mgr.send udp_s ep_s ~dst:(src, ctx.Plexus.Pctx.src_port)
          "backend-reply")
  in
  let udp_c = Plexus.Stack.udp client in
  let ep_c =
    match Plexus.Udp_mgr.bind udp_c ~owner:"client" ~port:6000 with
    | Ok ep -> ep
    | Error _ -> Alcotest.fail "bind failed"
  in
  let reply = ref "" in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_c ep_c (fun ctx ->
        reply := View.to_string (Plexus.Pctx.view ctx))
  in
  Plexus.Udp_mgr.send udp_c ep_c ~dst:(Experiments.Common.ip_middle, 5353)
    "to-the-service";
  Sim.Engine.run engine ~until:(Sim.Stime.s 5);
  Alcotest.(check (list string)) "backend received" [ "to-the-service" ] !got;
  Alcotest.(check string) "reply routed back through the middle"
    "backend-reply" !reply;
  Alcotest.(check int) "forwarded" 1 (Apps.Forwarder.forwarded fwd);
  Alcotest.(check int) "returned" 1 (Apps.Forwarder.returned fwd);
  (* runtime adaptation: remove the forwarder, packets stop flowing *)
  Apps.Forwarder.remove fwd;
  Plexus.Udp_mgr.send udp_c ep_c ~dst:(Experiments.Common.ip_middle, 5353)
    "after-removal";
  Sim.Engine.run engine ~until:(Sim.Stime.s 10);
  Alcotest.(check int) "no forwarding after removal" 1
    (Apps.Forwarder.forwarded fwd)

(* ---- HTTP ---------------------------------------------------------------- *)

let http_end_to_end () =
  let p = pair () in
  let server = Apps.Http_server.create ~port:80 p.Experiments.Common.b in
  let result = ref None in
  Apps.Http_client.get p.Experiments.Common.a ~dst:(ip_b, 80) ~path:"/paper"
    (fun r -> result := r);
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 150);
  (match !result with
  | Some r ->
      Alcotest.(check int) "status" 200 r.Apps.Http_client.status;
      Alcotest.(check string) "body" "Fiuczynski & Bershad, USENIX 1996.\n"
        r.Apps.Http_client.body
  | None -> Alcotest.fail "no response");
  Alcotest.(check int) "request counted" 1 (Apps.Http_server.requests server)

let http_not_found () =
  let p = pair () in
  let server = Apps.Http_server.create ~port:80 p.Experiments.Common.b in
  let result = ref None in
  Apps.Http_client.get p.Experiments.Common.a ~dst:(ip_b, 80) ~path:"/missing"
    (fun r -> result := r);
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 150);
  (match !result with
  | Some r -> Alcotest.(check int) "404" 404 r.Apps.Http_client.status
  | None -> Alcotest.fail "no response");
  Alcotest.(check int) "counted" 1 (Apps.Http_server.not_found_count server)

let suite =
  [
    ( "apps.active_messages",
      [
        tc "roundtrip through linked extensions" am_roundtrip;
        tc "send requires linking" am_send_fails_when_unlinked;
        tc "budget termination" am_budget_termination;
      ] );
    ( "apps.video",
      [
        tc "server paces frames" video_server_paces_frames;
        tc "end to end over Plexus" video_end_to_end_plexus;
      ] );
    ("apps.forwarder", [ tc "UDP NAT redirect both ways" forwarder_udp_redirect ]);
    ( "apps.http",
      [ tc "GET end to end" http_end_to_end; tc "404" http_not_found ] );
  ]

(* ---- reliable blast (application-level framing) -------------------------- *)

let blast_lossless () =
  let p = pair () in
  let data = String.init 20_000 (fun i -> Char.chr (i mod 256)) in
  let got = ref None in
  let _r =
    Apps.Blast.receive p.Experiments.Common.b ~port:4000 ~on_complete:(fun d ->
        got := Some d)
  in
  let s =
    Apps.Blast.send p.Experiments.Common.a ~port:4001 ~dst:(ip_b, 4000)
      ~chunk:1000 ~data
      ~on_complete:(fun () -> ())
  in
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 10)
    ~max_events:5_000_000;
  (match !got with
  | Some d -> Alcotest.(check bool) "data intact" true (d = data)
  | None -> Alcotest.fail "transfer incomplete");
  Alcotest.(check bool) "sender confirmed" true (Apps.Blast.complete s);
  Alcotest.(check int) "no retransmissions on a clean wire" 0
    (Apps.Blast.retransmissions s)

let blast_with_loss () =
  let engine = Sim.Engine.create ~seed:99 () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ())
      ~a:("a", Experiments.Common.ip_a) ~b:("b", Experiments.Common.ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  (* drop a tenth of all frames in each direction *)
  Netsim.Dev.set_loss ea.Netsim.Network.dev 0.1;
  Netsim.Dev.set_loss eb.Netsim.Network.dev 0.1;
  let data = String.init 50_000 (fun i -> Char.chr ((i * 13) mod 256)) in
  let got = ref None in
  let r = Apps.Blast.receive b ~port:4000 ~on_complete:(fun d -> got := Some d) in
  let s =
    Apps.Blast.send a ~port:4001 ~dst:(Experiments.Common.ip_b, 4000)
      ~chunk:1000 ~data
      ~on_complete:(fun () -> ())
  in
  Sim.Engine.run engine ~until:(Sim.Stime.s 60) ~max_events:20_000_000;
  (match !got with
  | Some d -> Alcotest.(check bool) "data intact despite loss" true (d = data)
  | None -> Alcotest.fail "transfer incomplete under loss");
  Alcotest.(check bool) "recovery happened" true
    (Apps.Blast.retransmissions s > 0 || Apps.Blast.end_probes s > 0);
  Alcotest.(check bool) "receiver asked for the gaps" true
    (Apps.Blast.nacks_sent r > 0)

let suite =
  suite
  @ [
      ( "apps.blast",
        [
          tc "lossless transfer" blast_lossless;
          tc "recovers from 10% loss" blast_with_loss;
        ] );
    ]

let blast_single_chunk () =
  let p = pair () in
  let got = ref None in
  let _r =
    Apps.Blast.receive p.Experiments.Common.b ~port:4000 ~on_complete:(fun d ->
        got := Some d)
  in
  let _s =
    Apps.Blast.send p.Experiments.Common.a ~port:4001 ~dst:(ip_b, 4000)
      ~chunk:1000 ~data:"tiny"
      ~on_complete:(fun () -> ())
  in
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 5)
    ~max_events:1_000_000;
  Alcotest.(check (option string)) "single frame" (Some "tiny") !got

let blast_heavy_loss_many_rounds () =
  (* more missing frames than fit in one NACK: recovery takes several
     receiver-driven rounds *)
  let engine = Sim.Engine.create ~seed:3 () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ())
      ~a:("a", Experiments.Common.ip_a) ~b:("b", Experiments.Common.ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  Netsim.Dev.set_loss ea.Netsim.Network.dev 0.3;
  let data = String.init 200_000 (fun i -> Char.chr ((i * 31) mod 256)) in
  let got = ref None in
  let r = Apps.Blast.receive b ~port:4000 ~on_complete:(fun d -> got := Some d) in
  let _s =
    Apps.Blast.send a ~port:4001 ~dst:(Experiments.Common.ip_b, 4000)
      ~chunk:1000 ~data
      ~on_complete:(fun () -> ())
  in
  Sim.Engine.run engine ~until:(Sim.Stime.s 120) ~max_events:50_000_000;
  (match !got with
  | Some d -> Alcotest.(check bool) "intact after many rounds" true (d = data)
  | None -> Alcotest.fail "did not complete");
  Alcotest.(check bool) "several NACK rounds" true (Apps.Blast.nacks_sent r >= 2)

let suite =
  suite
  @ [
      ( "apps.blast_edges",
        [
          tc "single chunk" blast_single_chunk;
          tc "heavy loss, multiple NACK rounds" blast_heavy_loss_many_rounds;
        ] );
    ]
