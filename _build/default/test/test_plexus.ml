(* End-to-end tests of the Plexus protocol graph: stack assembly, UDP and
   TCP over simulated devices, the protection policy (anti-spoof,
   anti-snoop, port ownership), fragmentation, ICMP, dynamic ARP,
   multiple protocol implementations, and runtime extension
   linking/unlinking. *)

let tc name f = Alcotest.test_case name `Quick f

let ip_a = Experiments.Common.ip_a
let ip_b = Experiments.Common.ip_b

let pair ?(params = Netsim.Costs.ethernet ()) () =
  Experiments.Common.plexus_pair params

let bind_exn udp ~owner ~port =
  match Plexus.Udp_mgr.bind udp ~owner ~port with
  | Ok ep -> ep
  | Error (`Port_in_use _) -> Alcotest.fail "port in use"

(* ---- graph shape -------------------------------------------------------- *)

let graph_shape () =
  let p = pair () in
  let g = Plexus.Stack.graph p.Experiments.Common.a in
  let nodes = Plexus.Graph.nodes g in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n nodes))
    [ "ip"; "udp"; "tcp"; "icmp" ];
  (* the Figure 1 edges *)
  let edges = List.map (fun (a, b, _) -> (a, b)) (Plexus.Graph.edges g) in
  Alcotest.(check bool) "ip->udp" true (List.mem ("ip", "udp") edges);
  Alcotest.(check bool) "ip->tcp" true (List.mem ("ip", "tcp") edges);
  Alcotest.(check bool) "dot renders" true
    (String.length (Plexus.Graph.to_dot g) > 50)

(* ---- UDP end to end ------------------------------------------------------ *)

let udp_end_to_end () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let got = ref [] in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
        got :=
          ( View.to_string (Plexus.Pctx.view ctx),
            ctx.Plexus.Pctx.src_port )
          :: !got)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "datagram one";
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "datagram two";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check (list (pair string int)))
    "delivered with source intact"
    [ ("datagram one", 5000); ("datagram two", 5000) ]
    (List.rev !got);
  let c = Plexus.Udp_mgr.counters udp_b in
  Alcotest.(check int) "rx" 2 c.Plexus.Udp_mgr.rx;
  Alcotest.(check int) "delivered" 2 c.Plexus.Udp_mgr.delivered

let udp_port_ownership () =
  let p = pair () in
  let udp = Plexus.Stack.udp p.Experiments.Common.b in
  let _ep = bind_exn udp ~owner:"first" ~port:7 in
  (match Plexus.Udp_mgr.bind udp ~owner:"second" ~port:7 with
  | Error (`Port_in_use 7) -> ()
  | _ -> Alcotest.fail "double bind allowed");
  Alcotest.(check (list int)) "bound" [ 7 ] (Plexus.Udp_mgr.bound_ports udp)

(* No snooping: an endpoint's handler never sees another port's traffic. *)
let udp_no_snooping () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let victim = bind_exn udp_b ~owner:"victim" ~port:7 in
  let snoop = bind_exn udp_b ~owner:"snoop" ~port:8 in
  let victim_got = ref 0 and snoop_got = ref 0 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b victim (fun _ -> incr victim_got)
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b snoop (fun _ -> incr snoop_got)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "secret";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "victim saw it" 1 !victim_got;
  Alcotest.(check int) "snoop saw nothing" 0 !snoop_got

(* No spoofing: whatever the sender claims, the wire carries the
   endpoint's true source port (Overwrite policy). *)
let udp_no_spoofing () =
  let p = pair () in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let seen_src = ref (-1) in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
        seen_src := ctx.Plexus.Pctx.src_port)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  (match
     Plexus.Udp_mgr.send_claiming udp_a client ~claimed_src_port:6666
       ~dst:(ip_b, 7) "forged?"
   with
  | Ok () -> ()
  | Error `Spoof_rejected -> Alcotest.fail "overwrite should accept");
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "wire carried the real source" 5000 !seen_src;
  (* under Verify, the forged claim is rejected outright *)
  Plexus.Udp_mgr.set_spoof_policy udp_a Plexus.Udp_mgr.Verify;
  (match
     Plexus.Udp_mgr.send_claiming udp_a client ~claimed_src_port:6666
       ~dst:(ip_b, 7) "forged?"
   with
  | Error `Spoof_rejected -> ()
  | Ok () -> Alcotest.fail "verify accepted a forged source");
  Alcotest.(check int) "rejection counted" 1
    (Plexus.Udp_mgr.counters udp_a).Plexus.Udp_mgr.spoof_rejected

let udp_corrupt_checksum_dropped () =
  let p = pair () in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let got = ref 0 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> incr got)
  in
  (* Craft a full frame with a corrupted UDP checksum and inject it at
     the device level. *)
  let payload = Mbuf.of_string "corrupt-me" in
  Proto.Udp.encapsulate payload ~src:ip_a ~dst:ip_b ~src_port:5000 ~dst_port:7;
  View.set_u16 (Mbuf.view payload) 6 0xdead;
  Proto.Ipv4.encapsulate payload
    (Proto.Ipv4.make ~proto:Proto.Ipv4.proto_udp ~src:ip_a ~dst:ip_b
       ~payload_len:(Mbuf.length payload) ());
  let dev_a =
    Plexus.Ether_mgr.dev (Plexus.Stack.ether p.Experiments.Common.a)
  in
  let dev_b =
    Plexus.Ether_mgr.dev (Plexus.Stack.ether p.Experiments.Common.b)
  in
  Proto.Ether.encapsulate payload
    {
      Proto.Ether.dst = Netsim.Dev.mac dev_b;
      src = Netsim.Dev.mac dev_a;
      etype = Proto.Ether.etype_ip;
    };
  Netsim.Dev.transmit dev_a payload;
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "not delivered" 0 !got;
  Alcotest.(check int) "bad checksum counted" 1
    (Plexus.Udp_mgr.counters udp_b).Plexus.Udp_mgr.bad_checksum

let udp_fragmentation_end_to_end () =
  let p = pair () in
  (* 5 KB datagram over a 1500-byte MTU: 4 fragments, reassembled at B *)
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let got = ref "" in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
        got := View.to_string (Plexus.Pctx.view ctx))
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  let payload = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) payload;
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check bool) "reassembled intact" true (!got = payload);
  let ip_a_c = Plexus.Ip_mgr.counters (Plexus.Stack.ip p.Experiments.Common.a) in
  Alcotest.(check bool) "fragmented on send" true
    (ip_a_c.Plexus.Ip_mgr.fragments_out >= 4);
  let ip_b_c = Plexus.Ip_mgr.counters (Plexus.Stack.ip p.Experiments.Common.b) in
  Alcotest.(check int) "reassembled on receive" 1 ip_b_c.Plexus.Ip_mgr.reassembled

let arp_dynamic_resolution () =
  (* no priming: the first datagram triggers a real ARP exchange *)
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ()) ~a:("a", ip_a)
      ~b:("b", ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  let udp_a = Plexus.Stack.udp a and udp_b = Plexus.Stack.udp b in
  let server = bind_exn udp_b ~owner:"srv" ~port:7 in
  let got = ref 0 in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun _ -> incr got)
  in
  let client = bind_exn udp_a ~owner:"cli" ~port:5000 in
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "needs arp";
  Sim.Engine.run engine;
  Alcotest.(check int) "delivered after resolution" 1 !got;
  Alcotest.(check int) "one request went out" 1
    (Plexus.Arp_mgr.requests_sent (Plexus.Stack.arp a));
  Alcotest.(check int) "b answered" 1
    (Plexus.Arp_mgr.replies_sent (Plexus.Stack.arp b));
  (* second datagram is a cache hit: no new request *)
  Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) "cached";
  Sim.Engine.run engine;
  Alcotest.(check int) "no second request" 1
    (Plexus.Arp_mgr.requests_sent (Plexus.Stack.arp a))

let icmp_echo () =
  let p = pair () in
  (* send an echo request from A's kernel; B's ICMP manager answers *)
  let msg = Proto.Icmp.echo_request ~ident:9 ~seq:1 "probe" in
  Plexus.Ip_mgr.send (Plexus.Stack.ip p.Experiments.Common.a)
    ~proto:Proto.Ipv4.proto_icmp ~dst:ip_b (Proto.Icmp.to_packet msg);
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "b answered the echo" 1
    (Plexus.Icmp_mgr.echos_answered (Plexus.Stack.icmp p.Experiments.Common.b));
  (* the reply made it back to A's ICMP layer *)
  Alcotest.(check int) "a received the reply" 1
    (Plexus.Icmp_mgr.rx (Plexus.Stack.icmp p.Experiments.Common.a))

(* ---- TCP over the graph -------------------------------------------------- *)

let tcp_over_plexus () =
  let p = pair () in
  let received = Buffer.create 64 in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp p.Experiments.Common.b)
       ~owner:"srv" ~port:80
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             Buffer.add_string received data;
             Plexus.Tcp_mgr.send conn ("ack:" ^ data)))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "listen failed");
  let reply = ref "" in
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Experiments.Common.a)
       ~owner:"cli" ~dst:(ip_b, 80) ()
   with
  | Error _ -> Alcotest.fail "connect failed"
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          Plexus.Tcp_mgr.send conn "request");
      Plexus.Tcp_mgr.on_receive conn (fun data -> reply := !reply ^ data));
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 10);
  Alcotest.(check string) "server got request" "request"
    (Buffer.contents received);
  Alcotest.(check string) "client got reply" "ack:request" !reply

let tcp_port_conflict () =
  let p = pair () in
  let tcp = Plexus.Stack.tcp p.Experiments.Common.b in
  (match Plexus.Tcp_mgr.listen tcp ~owner:"one" ~port:80 ~on_accept:ignore () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first listen failed");
  match Plexus.Tcp_mgr.listen tcp ~owner:"two" ~port:80 ~on_accept:ignore () with
  | Error (`Port_in_use 80) -> ()
  | _ -> Alcotest.fail "double listen allowed"

(* Multiple implementations of TCP (section 3.1): the standard manager
   cedes a port set; an alternative handler claims exactly those. *)
let tcp_multiple_implementations () =
  let p = pair () in
  let b = p.Experiments.Common.b in
  let special_hits = ref 0 in
  Plexus.Tcp_mgr.exclude_ports (Plexus.Stack.tcp b) [ 9999 ];
  (* TCP-special: its own guarded handler on ip.PacketRecv *)
  let ip_node = Plexus.Ip_mgr.node (Plexus.Stack.ip b) in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install
      (Plexus.Graph.recv_event ip_node)
      ~guard:(fun ctx ->
        (match ctx.Plexus.Pctx.ip with
        | Some h -> h.Proto.Ipv4.proto = Proto.Ipv4.proto_tcp
        | None -> false)
        &&
        let v = Plexus.Pctx.view ctx in
        View.length v >= 4 && View.get_u16 v 2 = 9999)
      ~cost:(Sim.Stime.us 5)
      (fun _ -> incr special_hits)
  in
  (* a connection attempt to the special port reaches TCP-special only *)
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Experiments.Common.a)
       ~owner:"cli" ~dst:(ip_b, 9999) ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "connect failed");
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 1);
  Alcotest.(check bool) "TCP-special saw the SYN" true (!special_hits >= 1);
  Alcotest.(check int) "TCP-standard ignored it" 0
    (Plexus.Tcp_mgr.counters (Plexus.Stack.tcp b)).Plexus.Tcp_mgr.rx

(* ---- delivery modes ------------------------------------------------------- *)

let delivery_mode_switch () =
  let p = pair () in
  Plexus.Stack.set_delivery p.Experiments.Common.a Spin.Dispatcher.Thread;
  let g = Plexus.Stack.graph p.Experiments.Common.a in
  List.iter
    (fun n ->
      match Plexus.Graph.find_node g n with
      | Some node ->
          Alcotest.(check bool) (n ^ " in thread mode") true
            (Spin.Dispatcher.mode (Plexus.Graph.recv_event node)
            = Spin.Dispatcher.Thread)
      | None -> Alcotest.fail ("missing node " ^ n))
    [ "ip"; "udp"; "tcp" ]

(* ---- extension linking ----------------------------------------------------- *)

let extension_link_unlink () =
  let p = pair () in
  let a = p.Experiments.Common.a and b = p.Experiments.Common.b in
  (* a receiver extension on B *)
  let received = Sim.Stats.Counter.create () in
  let bctx, bext =
    Apps.Active_messages.extension ~name:"rx"
      ~handlers:(fun _ idx ~src:_ _payload ->
        ignore idx;
        [ Spin.Ephemeral.count received ])
      ()
  in
  ignore bctx;
  let linked =
    match Plexus.Stack.link b bext with
    | Ok l -> l
    | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f
  in
  (* a sender extension on A *)
  let actx, aext =
    Apps.Active_messages.extension ~name:"tx"
      ~handlers:(fun _ _ ~src:_ _ -> Spin.Ephemeral.nothing)
      ()
  in
  (match Plexus.Stack.link a aext with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "link failed: %a" Spin.Extension.pp_failure f);
  let dst = Plexus.Ether_mgr.mac (Plexus.Stack.ether b) in
  Apps.Active_messages.send actx ~dst ~handler:0 "one";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "message received while linked" 1
    (Sim.Stats.Counter.get received);
  (* unlink: the handler disappears from the graph, packets no longer
     reach the extension — "protocols come and go with their
     applications" *)
  Spin.Linker.unlink linked;
  Apps.Active_messages.send actx ~dst ~handler:0 "two";
  Sim.Engine.run p.Experiments.Common.engine;
  Alcotest.(check int) "no delivery after unlink" 1
    (Sim.Stats.Counter.get received)

let extension_forged_rejected () =
  let p = pair () in
  let forged =
    Spin.Extension.Compiler.forge ~name:"evil"
      ~imports:[ (Plexus.Api.udp_iface, Plexus.Api.sym_bind) ]
      (fun _ -> ())
  in
  match Plexus.Stack.link p.Experiments.Common.a forged with
  | Error Spin.Extension.Unsigned -> ()
  | Ok _ -> Alcotest.fail "forged extension linked"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let extension_cannot_reach_kernel_internals () =
  let p = pair () in
  (* The app domain exposes Ether/Udp/Mbuf; an import of anything else
     fails to resolve. *)
  let nosy =
    Spin.Extension.Compiler.compile ~name:"nosy"
      ~imports:[ ("VirtualMemory", "MapPage") ]
      (fun _ -> ())
  in
  match Plexus.Stack.link p.Experiments.Common.a nosy with
  | Error (Spin.Extension.Unresolved [ ("VirtualMemory", "MapPage") ]) -> ()
  | Ok _ -> Alcotest.fail "kernel internals reachable from app domain"
  | Error f -> Alcotest.failf "wrong failure: %a" Spin.Extension.pp_failure f

let ether_reserved_types () =
  let p = pair () in
  let ether = Plexus.Stack.ether p.Experiments.Common.a in
  match
    Plexus.Ether_mgr.install_handler ether ~owner:"evil"
      ~etype:Proto.Ether.etype_ip (fun _ -> ())
  with
  | Error (`Reserved_etype _) -> ()
  | Ok _ -> Alcotest.fail "allowed to snoop IP frames"

let suite =
  [
    ("plexus.graph", [ tc "figure-1 shape" graph_shape ]);
    ( "plexus.udp",
      [
        tc "end to end" udp_end_to_end;
        tc "port ownership" udp_port_ownership;
        tc "no snooping" udp_no_snooping;
        tc "no spoofing" udp_no_spoofing;
        tc "corrupt checksum dropped" udp_corrupt_checksum_dropped;
        tc "fragmentation end to end" udp_fragmentation_end_to_end;
      ] );
    ( "plexus.control",
      [
        tc "dynamic ARP resolution" arp_dynamic_resolution;
        tc "ICMP echo answered in kernel" icmp_echo;
      ] );
    ( "plexus.tcp",
      [
        tc "connect/transfer/reply" tcp_over_plexus;
        tc "port conflicts" tcp_port_conflict;
        tc "multiple implementations" tcp_multiple_implementations;
      ] );
    ("plexus.delivery", [ tc "mode switch" delivery_mode_switch ]);
    ( "plexus.extensions",
      [
        tc "link and unlink at runtime" extension_link_unlink;
        tc "forged extension rejected" extension_forged_rejected;
        tc "kernel internals unreachable" extension_cannot_reach_kernel_internals;
        tc "reserved EtherTypes protected" ether_reserved_types;
      ] );
  ]
