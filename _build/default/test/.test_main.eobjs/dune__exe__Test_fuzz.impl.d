test/test_fuzz.ml: Apps Experiments Gen Hashtbl List Netsim Plexus Printf Proto QCheck QCheck_alcotest Sim Spin String View
