test/test_proto.ml: Alcotest Buffer Char Gen List Mbuf Option Printf Proto QCheck QCheck_alcotest Sim String View
