test/test_netsim.ml: Alcotest Experiments List Mbuf Netsim Printf Proto Sim String View
