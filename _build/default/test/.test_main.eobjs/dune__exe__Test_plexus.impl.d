test/test_plexus.ml: Alcotest Apps Buffer Char Experiments List Mbuf Netsim Plexus Proto Sim Spin String View
