test/test_sim.ml: Alcotest Fun Gen List QCheck QCheck_alcotest Sim
