test/test_packet.ml: Alcotest Bytes Char Cksum Gen List Mbuf QCheck QCheck_alcotest String View
