test/test_main.ml: Alcotest Test_apps Test_experiments Test_features Test_fuzz Test_more Test_netsim Test_osmodel Test_packet Test_plexus Test_proto Test_sim Test_spin
