test/test_features.ml: Alcotest Apps Array Experiments Float Fmt List Mbuf Netsim Osmodel Plexus Printf Proto Sim Spin String View
