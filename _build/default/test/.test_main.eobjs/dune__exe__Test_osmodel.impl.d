test/test_osmodel.ml: Alcotest Buffer Experiments List Mbuf Netsim Osmodel Printf Proto Sim String
