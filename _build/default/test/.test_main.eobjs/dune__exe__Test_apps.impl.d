test/test_apps.ml: Alcotest Apps Char Experiments List Netsim Plexus Printf Proto Sim Spin String View
