test/test_more.ml: Alcotest Experiments Fmt List Mbuf Netsim Option Plexus Pool Printf Proto QCheck QCheck_alcotest Sim Spin View
