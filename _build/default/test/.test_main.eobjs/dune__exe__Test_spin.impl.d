test/test_spin.ml: Alcotest Gen Hashtbl List QCheck QCheck_alcotest Queue Sim Spin
