(* Tests for the packet substrate: views (the VIEW operator analogue),
   Internet checksums and mbufs. *)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

(* ---- View ----------------------------------------------------------- *)

let view_roundtrip () =
  let v = View.create 16 in
  View.set_u8 v 0 0xab;
  View.set_u16 v 1 0xbeef;
  View.set_u32 v 3 0xdeadbeef;
  View.set_string v ~off:8 "hello";
  Alcotest.(check int) "u8" 0xab (View.get_u8 v 0);
  Alcotest.(check int) "u16" 0xbeef (View.get_u16 v 1);
  Alcotest.(check int) "u32" 0xdeadbeef (View.get_u32 v 3);
  Alcotest.(check string) "string" "hello" (View.get_string v ~off:8 ~len:5)

let view_big_endian () =
  let v = View.create 4 in
  View.set_u32 v 0 0x01020304;
  Alcotest.(check int) "network byte order" 0x01 (View.get_u8 v 0);
  Alcotest.(check int) "second byte" 0x02 (View.get_u8 v 1);
  Alcotest.(check int) "u16 at 2" 0x0304 (View.get_u16 v 2)

let view_bounds () =
  let v = View.create 4 in
  let expect_oob f =
    match f () with
    | exception View.Out_of_bounds _ -> ()
    | _ -> Alcotest.fail "expected Out_of_bounds"
  in
  expect_oob (fun () -> View.get_u8 v 4);
  expect_oob (fun () -> View.get_u16 v 3);
  expect_oob (fun () -> View.get_u32 v 1);
  expect_oob (fun () -> View.get_u8 v (-1));
  expect_oob (fun () -> View.set_u16 v 3 0);
  expect_oob (fun () -> View.sub v ~off:2 ~len:3);
  expect_oob (fun () -> View.get_string v ~off:2 ~len:3)

let view_sub_shift () =
  let v = View.of_bytes (Bytes.of_string "abcdefgh") in
  let s = View.sub v ~off:2 ~len:4 in
  Alcotest.(check int) "sub length" 4 (View.length s);
  Alcotest.(check string) "sub content" "cdef" (View.to_string s);
  let sh = View.shift v 5 in
  Alcotest.(check string) "shift" "fgh" (View.to_string sh);
  (* a sub of a sub stays anchored correctly *)
  let ss = View.sub s ~off:1 ~len:2 in
  Alcotest.(check string) "nested sub" "de" (View.to_string ss)

let view_sub_shares_bytes () =
  let v = View.create 8 in
  let s = View.sub v ~off:4 ~len:4 in
  View.set_u8 s 0 0x7f;
  Alcotest.(check int) "writes visible through parent" 0x7f (View.get_u8 v 4)

let view_copy_isolates () =
  let v = View.create 4 in
  View.set_u8 v 0 1;
  let c = View.copy v in
  View.set_u8 c 0 9;
  Alcotest.(check int) "original untouched" 1 (View.get_u8 v 0);
  Alcotest.(check int) "copy changed" 9 (View.get_u8 c 0)

let view_blit_fill () =
  let src = View.of_bytes (Bytes.of_string "0123456789") in
  let dst = View.create 10 in
  View.blit ~src ~dst ~src_off:2 ~dst_off:0 ~len:4;
  Alcotest.(check string) "blit" "2345" (View.get_string dst ~off:0 ~len:4);
  View.fill dst 'z';
  Alcotest.(check string) "fill" "zzzzzzzzzz" (View.to_string dst)

let view_fold () =
  let v = View.of_string "\001\002\003" in
  Alcotest.(check int) "fold sum" 6 (View.fold_u8 ( + ) 0 v)

let view_of_bytes_window () =
  let b = Bytes.of_string "abcdef" in
  let v = View.of_bytes ~off:1 ~len:3 b in
  Alcotest.(check string) "window" "bcd" (View.to_string v);
  Alcotest.check_raises "bad window"
    (Invalid_argument "View.of_bytes: window outside buffer") (fun () ->
      ignore (View.of_bytes ~off:4 ~len:4 b))

let view_u16_roundtrip =
  QCheck.Test.make ~name:"u16 roundtrips" (QCheck.int_bound 0xffff) (fun x ->
      let v = View.create 2 in
      View.set_u16 v 0 x;
      View.get_u16 v 0 = x)

let view_u32_roundtrip =
  QCheck.Test.make ~name:"u32 roundtrips" (QCheck.int_bound 0x3fffffff) (fun x ->
      let v = View.create 4 in
      View.set_u32 v 0 x;
      View.get_u32 v 0 = x)

(* ---- Cksum ---------------------------------------------------------- *)

(* The classic RFC 1071 worked example. *)
let cksum_rfc1071 () =
  let v = View.create 8 in
  List.iteri (fun i x -> View.set_u8 v i x)
    [ 0x00; 0x01; 0xf2; 0x03; 0xf4; 0xf5; 0xf6; 0xf7 ];
  Alcotest.(check int) "rfc1071 example" (lnot 0xddf2 land 0xffff)
    (Cksum.of_view (View.ro v))

let cksum_verifies () =
  let v = View.create 6 in
  View.set_u16 v 0 0x1234;
  View.set_u16 v 4 0xaaaa;
  let c = Cksum.of_view (View.ro v) in
  View.set_u16 v 2 c;
  Alcotest.(check bool) "sums to zero with checksum in place" true
    (Cksum.valid (View.ro v));
  View.set_u8 v 5 0x01;
  Alcotest.(check bool) "corruption detected" false (Cksum.valid (View.ro v))

let cksum_odd_length () =
  let v = View.of_string "abc" in
  (* manual: 0x6162 + 0x6300 *)
  Alcotest.(check int) "odd tail padded" (lnot (0x6162 + 0x6300) land 0xffff)
    (Cksum.of_view v)

let cksum_of_views_concat =
  QCheck.Test.make ~name:"of_views = of_view of concatenation (even splits)"
    QCheck.(pair (string_of_size Gen.(0 -- 40)) (string_of_size Gen.(0 -- 40)))
    (fun (a, b) ->
      (* keep the first window even-length, as protocol uses do *)
      let a = if String.length a land 1 = 1 then a ^ "x" else a in
      Cksum.of_views [ View.of_string a; View.of_string b ]
      = Cksum.of_view (View.of_string (a ^ b)))

let cksum_incremental_update =
  QCheck.Test.make ~name:"RFC1624 incremental update = recompute"
    QCheck.(triple (string_of_size (Gen.return 20)) (int_bound 9) (int_bound 0xffff))
    (fun (s, word_idx, new_w) ->
      let v = View.of_bytes (Bytes.of_string s) in
      let before = Cksum.of_view (View.ro v) in
      let old_w = View.get_u16 v (word_idx * 2) in
      View.set_u16 v (word_idx * 2) new_w;
      let recomputed = Cksum.of_view (View.ro v) in
      let updated = Cksum.update ~cksum:before ~old_w ~new_w in
      (* one's-complement checksums have two representations of zero *)
      updated = recomputed
      || (updated land 0xffff) mod 0xffff = (recomputed land 0xffff) mod 0xffff)

(* ---- Mbuf ----------------------------------------------------------- *)

let mbuf_alloc () =
  let m = Mbuf.alloc 100 in
  Alcotest.(check int) "length" 100 (Mbuf.length m);
  Alcotest.(check int) "single segment" 1 (Mbuf.num_segs m);
  Alcotest.(check bool) "zero filled" true
    (String.for_all (fun c -> c = '\000') (Mbuf.to_string m))

let mbuf_of_string () =
  let m = Mbuf.of_string "payload" in
  Alcotest.(check string) "contents" "payload" (Mbuf.to_string m);
  Alcotest.(check int) "length" 7 (Mbuf.length m)

let mbuf_prepend_headroom () =
  let m = Mbuf.of_string "data" in
  let v = Mbuf.prepend m 4 in
  View.set_string v ~off:0 "HDR:";
  Alcotest.(check string) "header in front" "HDR:data" (Mbuf.to_string m);
  Alcotest.(check int) "still one segment (headroom used)" 1 (Mbuf.num_segs m)

let mbuf_prepend_overflow () =
  let m = Mbuf.alloc ~headroom:2 4 in
  let v = Mbuf.prepend m 8 in
  View.fill v 'h';
  Alcotest.(check int) "grew" 12 (Mbuf.length m);
  Alcotest.(check bool) "new segment added" true (Mbuf.num_segs m > 1);
  Alcotest.(check string) "content" "hhhhhhhh\000\000\000\000" (Mbuf.to_string m)

let mbuf_extend_back () =
  let m = Mbuf.of_string "abc" in
  let v = Mbuf.extend_back m 3 in
  View.set_string v ~off:0 "xyz";
  Alcotest.(check string) "appended" "abcxyz" (Mbuf.to_string m)

let mbuf_trim () =
  let m = Mbuf.of_string "0123456789" in
  Mbuf.trim_front m 3;
  Alcotest.(check string) "front trimmed" "3456789" (Mbuf.to_string m);
  Mbuf.trim_back m 2;
  Alcotest.(check string) "back trimmed" "34567" (Mbuf.to_string m);
  Alcotest.check_raises "overtrim rejected" (Invalid_argument "Mbuf.trim_front")
    (fun () -> Mbuf.trim_front m 99)

let mbuf_trim_across_segments () =
  let m = Mbuf.of_string "abc" in
  let m2 = Mbuf.of_string "defgh" in
  Mbuf.concat m m2;
  Alcotest.(check int) "two segments" 2 (Mbuf.num_segs m);
  Mbuf.trim_front m 4;
  Alcotest.(check string) "trim crosses boundary" "efgh" (Mbuf.to_string m);
  Alcotest.(check int) "emptied donor" 0 (Mbuf.length m2)

let mbuf_pullup () =
  let m = Mbuf.of_string "abc" in
  Mbuf.concat m (Mbuf.of_string "def");
  Mbuf.pullup m 5;
  Alcotest.(check int) "contiguous" 1 (Mbuf.num_segs m);
  Alcotest.(check string) "content preserved" "abcdef" (Mbuf.to_string m);
  Alcotest.check_raises "pullup beyond length"
    (Invalid_argument "Mbuf.pullup: chain too short") (fun () ->
      Mbuf.pullup m 100)

let mbuf_view_and_ro () =
  let m = Mbuf.of_string "abcd" in
  let v = Mbuf.view m in
  View.set_u8 v 0 (Char.code 'z');
  Alcotest.(check string) "view writes visible" "zbcd" (Mbuf.to_string m);
  let r = Mbuf.ro m in
  (* read-only views still read *)
  Alcotest.(check int) "ro view reads" (Char.code 'z')
    (View.get_u8 (Mbuf.view r) 0)

let mbuf_copy_rw_isolates () =
  let m = Mbuf.of_string "abcd" in
  let c = Mbuf.copy_rw (Mbuf.ro m) in
  View.set_u8 (Mbuf.view c) 0 (Char.code 'z');
  Alcotest.(check string) "original untouched" "abcd" (Mbuf.to_string m);
  Alcotest.(check string) "copy changed" "zbcd" (Mbuf.to_string c)

let mbuf_sub_copy () =
  let m = Mbuf.of_string "0123456789" in
  let s = Mbuf.sub_copy m ~off:2 ~len:5 in
  Alcotest.(check string) "range" "23456" (Mbuf.to_string s)

let mbuf_views_segments () =
  let m = Mbuf.of_string "abc" in
  Mbuf.concat m (Mbuf.of_string "def");
  let parts = List.map View.to_string (Mbuf.views m) in
  Alcotest.(check (list string)) "per-segment views" [ "abc"; "def" ] parts

let mbuf_stats () =
  Mbuf.reset_stats ();
  let m = Mbuf.alloc 10 in
  let _ = Mbuf.of_string "x" in
  Mbuf.free m;
  let allocated, live = Mbuf.stats () in
  Alcotest.(check int) "allocations" 2 allocated;
  Alcotest.(check int) "live" 1 live

let mbuf_equal () =
  let a = Mbuf.of_string "abc" in
  let b = Mbuf.of_string "ab" in
  Mbuf.concat b (Mbuf.of_string "c");
  Alcotest.(check bool) "content equality across segmentation" true
    (Mbuf.equal a b)

let mbuf_trim_concat_invariant =
  QCheck.Test.make ~name:"trim/concat preserve content"
    QCheck.(triple (string_of_size Gen.(1 -- 64)) (string_of_size Gen.(0 -- 64)) (int_bound 63))
    (fun (a, b, n) ->
      let n = n mod (String.length a + String.length b + 1) in
      let m = Mbuf.of_string a in
      Mbuf.concat m (Mbuf.of_string b);
      Mbuf.trim_front m n;
      Mbuf.to_string m = String.sub (a ^ b) n (String.length a + String.length b - n))

let mbuf_prepend_invariant =
  QCheck.Test.make ~name:"prepend grows at the front"
    QCheck.(pair (string_of_size Gen.(0 -- 32)) (int_range 1 100))
    (fun (s, n) ->
      let m = Mbuf.of_string s in
      let v = Mbuf.prepend m n in
      View.fill v 'H';
      Mbuf.to_string m = String.make n 'H' ^ s)

let suite =
  [
    ( "packet.view",
      [
        tc "get/set roundtrip" view_roundtrip;
        tc "big-endian layout" view_big_endian;
        tc "bounds checking" view_bounds;
        tc "sub and shift" view_sub_shift;
        tc "sub shares bytes" view_sub_shares_bytes;
        tc "copy isolates" view_copy_isolates;
        tc "blit and fill" view_blit_fill;
        tc "fold" view_fold;
        tc "of_bytes windows" view_of_bytes_window;
        prop view_u16_roundtrip;
        prop view_u32_roundtrip;
      ] );
    ( "packet.cksum",
      [
        tc "RFC 1071 example" cksum_rfc1071;
        tc "verify and corrupt" cksum_verifies;
        tc "odd length" cksum_odd_length;
        prop cksum_of_views_concat;
        prop cksum_incremental_update;
      ] );
    ( "packet.mbuf",
      [
        tc "alloc" mbuf_alloc;
        tc "of_string" mbuf_of_string;
        tc "prepend uses headroom" mbuf_prepend_headroom;
        tc "prepend beyond headroom" mbuf_prepend_overflow;
        tc "extend_back" mbuf_extend_back;
        tc "trim front/back" mbuf_trim;
        tc "trim across segments" mbuf_trim_across_segments;
        tc "pullup" mbuf_pullup;
        tc "views write through" mbuf_view_and_ro;
        tc "copy_rw isolates" mbuf_copy_rw_isolates;
        tc "sub_copy" mbuf_sub_copy;
        tc "per-segment views" mbuf_views_segments;
        tc "pool stats" mbuf_stats;
        tc "structural equality" mbuf_equal;
        prop mbuf_trim_concat_invariant;
        prop mbuf_prepend_invariant;
      ] );
  ]
