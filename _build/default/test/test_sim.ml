(* Tests for the discrete-event simulation substrate. *)

let us = Sim.Stime.us
let check_time = Alcotest.(check int)

(* ---- Stime ---------------------------------------------------------- *)

let stime_units () =
  check_time "us" 1_000 (Sim.Stime.to_ns (Sim.Stime.us 1));
  check_time "ms" 1_000_000 (Sim.Stime.to_ns (Sim.Stime.ms 1));
  check_time "s" 1_000_000_000 (Sim.Stime.to_ns (Sim.Stime.s 1));
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Sim.Stime.to_us (Sim.Stime.ns 1500))

let stime_arith () =
  let a = us 10 and b = us 3 in
  check_time "add" 13_000 (Sim.Stime.to_ns (Sim.Stime.add a b));
  check_time "sub" 7_000 (Sim.Stime.to_ns (Sim.Stime.sub a b));
  check_time "mul" 30_000 (Sim.Stime.to_ns (Sim.Stime.mul a 3));
  check_time "scale" 15_000 (Sim.Stime.to_ns (Sim.Stime.scale a 1.5));
  check_time "max" 10_000 (Sim.Stime.to_ns (Sim.Stime.max a b));
  check_time "min" 3_000 (Sim.Stime.to_ns (Sim.Stime.min a b));
  Alcotest.(check bool) "pos" true (Sim.Stime.is_positive a);
  Alcotest.(check bool) "zero not pos" false (Sim.Stime.is_positive Sim.Stime.zero)

let stime_of_float () =
  check_time "of_us_f rounds" 1_500 (Sim.Stime.to_ns (Sim.Stime.of_us_f 1.5));
  check_time "of_s_f" 2_000_000_000 (Sim.Stime.to_ns (Sim.Stime.of_s_f 2.0))

let stime_pp () =
  Alcotest.(check string) "ns" "512ns" (Sim.Stime.to_string (Sim.Stime.ns 512));
  Alcotest.(check string) "us" "1.50us" (Sim.Stime.to_string (Sim.Stime.ns 1500));
  Alcotest.(check string) "ms" "2.000ms" (Sim.Stime.to_string (Sim.Stime.ms 2))

(* ---- Pheap ---------------------------------------------------------- *)

let pheap_order () =
  let h = Sim.Pheap.create () in
  List.iter (fun k -> Sim.Pheap.add h ~key:k k) [ 5; 1; 9; 3; 7 ];
  let popped = List.init 5 (fun _ ->
      match Sim.Pheap.pop_min h with Some (k, _) -> k | None -> -1)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] popped

let pheap_stability () =
  let h = Sim.Pheap.create () in
  List.iteri (fun i v -> Sim.Pheap.add h ~key:7 (i, v)) [ "a"; "b"; "c" ];
  let popped = List.init 3 (fun _ ->
      match Sim.Pheap.pop_min h with Some (_, (_, v)) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "fifo among equal keys" [ "a"; "b"; "c" ] popped

let pheap_peek_and_sizes () =
  let h = Sim.Pheap.create () in
  Alcotest.(check bool) "empty" true (Sim.Pheap.is_empty h);
  Alcotest.(check (option (pair int int))) "peek empty" None (Sim.Pheap.peek_min h);
  Sim.Pheap.add h ~key:4 42;
  Sim.Pheap.add h ~key:2 24;
  Alcotest.(check int) "size" 2 (Sim.Pheap.size h);
  Alcotest.(check (option (pair int int))) "peek" (Some (2, 24)) (Sim.Pheap.peek_min h);
  Alcotest.(check int) "peek preserves" 2 (Sim.Pheap.size h);
  Sim.Pheap.clear h;
  Alcotest.(check bool) "cleared" true (Sim.Pheap.is_empty h)

let pheap_qcheck =
  QCheck.Test.make ~name:"pheap pops in sorted order"
    QCheck.(list (int_bound 10_000))
    (fun keys ->
      let h = Sim.Pheap.create () in
      List.iter (fun k -> Sim.Pheap.add h ~key:k k) keys;
      let rec drain acc =
        match Sim.Pheap.pop_min h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* ---- Rng ------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Sim.Rng.create 7 and b = Sim.Rng.create 7 in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let rng_split_independent () =
  let a = Sim.Rng.create 7 in
  let b = Sim.Rng.split a in
  let xs = List.init 10 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Sim.Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Sim.Rng.create seed in
      List.for_all (fun _ -> let x = Sim.Rng.int r n in x >= 0 && x < n)
        (List.init 50 Fun.id))

let rng_float_bounds =
  QCheck.Test.make ~name:"rng float stays in bounds" QCheck.small_int
    (fun seed ->
      let r = Sim.Rng.create seed in
      List.for_all (fun _ -> let x = Sim.Rng.float r 3.5 in x >= 0. && x < 3.5)
        (List.init 50 Fun.id))

let rng_exponential_positive () =
  let r = Sim.Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Sim.Rng.exponential r ~mean:5. > 0.)
  done

(* ---- Engine --------------------------------------------------------- *)

let engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~at:(us 30) (fun () -> log := 3 :: !log));
  ignore (Sim.Engine.schedule e ~at:(us 10) (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule e ~at:(us 20) (fun () -> log := 2 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_time "clock at last event" 30_000 (Sim.Stime.to_ns (Sim.Engine.now e))

let engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~at:(us 10) (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check int) "no events counted" 0 (Sim.Engine.events_run e)

let engine_schedule_in () =
  let e = Sim.Engine.create () in
  let at = ref Sim.Stime.zero in
  ignore (Sim.Engine.schedule e ~at:(us 5) (fun () ->
      ignore (Sim.Engine.schedule_in e ~delay:(us 7) (fun () -> at := Sim.Engine.now e))));
  Sim.Engine.run e;
  check_time "relative delay" 12_000 (Sim.Stime.to_ns !at)

let engine_no_past () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~at:(us 10) (fun () ->
      Alcotest.check_raises "cannot schedule in the past"
        (Invalid_argument "Engine.schedule: cannot schedule in the past")
        (fun () -> ignore (Sim.Engine.schedule e ~at:(us 1) ignore))));
  Sim.Engine.run e

let engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~at:(us (i * 10)) (fun () -> incr count))
  done;
  Sim.Engine.run e ~until:(us 45);
  Alcotest.(check int) "only events before horizon" 4 !count;
  check_time "clock left at horizon" 45_000 (Sim.Stime.to_ns (Sim.Engine.now e));
  Sim.Engine.run e;
  Alcotest.(check int) "rest run later" 10 !count

let engine_max_events () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec loop () =
    incr count;
    ignore (Sim.Engine.schedule_in e ~delay:(us 1) loop)
  in
  ignore (Sim.Engine.schedule e ~at:(us 1) loop);
  Sim.Engine.run e ~max_events:100;
  Alcotest.(check int) "bounded" 100 !count

let engine_event_cascades () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore
    (Sim.Engine.schedule e ~at:(us 10) (fun () ->
         order := "a" :: !order;
         (* same-time event scheduled from within an event still runs *)
         ignore (Sim.Engine.schedule e ~at:(us 10) (fun () -> order := "b" :: !order))));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "cascade" [ "a"; "b" ] (List.rev !order)

(* ---- Cpu ------------------------------------------------------------ *)

let cpu_serializes () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let finish = ref [] in
  Sim.Cpu.run cpu ~cost:(us 10) (fun () ->
      finish := ("a", Sim.Engine.now e) :: !finish);
  Sim.Cpu.run cpu ~cost:(us 5) (fun () ->
      finish := ("b", Sim.Engine.now e) :: !finish);
  Sim.Engine.run e;
  match List.rev !finish with
  | [ ("a", ta); ("b", tb) ] ->
      check_time "a done at 10" 10_000 (Sim.Stime.to_ns ta);
      check_time "b queued behind a" 15_000 (Sim.Stime.to_ns tb)
  | _ -> Alcotest.fail "wrong completion order"

let cpu_priority () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let order = ref [] in
  (* three thread items, then an interrupt arrives while the first runs *)
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost:(us 10) (fun () ->
      order := "t1" :: !order;
      Sim.Cpu.run cpu ~prio:Sim.Cpu.Interrupt ~cost:(us 1) (fun () ->
          order := "intr" :: !order));
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost:(us 10) (fun () ->
      order := "t2" :: !order);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "interrupt preempts queued thread work"
    [ "t1"; "intr"; "t2" ] (List.rev !order)

let cpu_utilization () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  Sim.Cpu.run cpu ~cost:(us 30) ignore;
  ignore (Sim.Engine.schedule e ~at:(us 100) ignore);
  Sim.Engine.run e;
  Alcotest.(check (float 0.01)) "30% busy over 100us" 0.30 (Sim.Cpu.utilization cpu);
  Sim.Cpu.reset_window cpu;
  Sim.Cpu.run cpu ~cost:(us 50) ignore;
  ignore (Sim.Engine.schedule e ~at:(us 200) ignore);
  Sim.Engine.run e;
  Alcotest.(check (float 0.01)) "window reset" 0.50 (Sim.Cpu.utilization cpu);
  check_time "busy accumulates" 80_000 (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu));
  Alcotest.(check int) "served" 2 (Sim.Cpu.served cpu)

let cpu_queue_depth () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  Sim.Cpu.run cpu ~cost:(us 10) ignore;
  Sim.Cpu.run cpu ~cost:(us 10) ignore;
  Sim.Cpu.run cpu ~cost:(us 10) ignore;
  Alcotest.(check int) "two waiting behind one in service" 2
    (Sim.Cpu.queue_depth cpu);
  Sim.Engine.run e;
  Alcotest.(check int) "drained" 0 (Sim.Cpu.queue_depth cpu)

(* ---- Stats ---------------------------------------------------------- *)

let stats_counter () =
  let c = Sim.Stats.Counter.create () in
  Sim.Stats.Counter.incr c;
  Sim.Stats.Counter.add c 4;
  Alcotest.(check int) "count" 5 (Sim.Stats.Counter.get c);
  Sim.Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Sim.Stats.Counter.get c)

let stats_series () =
  let s = Sim.Stats.Series.create () in
  List.iter (Sim.Stats.Series.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check (float 1e-9)) "mean" 3. (Sim.Stats.Series.mean s);
  Alcotest.(check (float 1e-9)) "median" 3. (Sim.Stats.Series.median s);
  Alcotest.(check (float 1e-9)) "min" 1. (Sim.Stats.Series.minimum s);
  Alcotest.(check (float 1e-9)) "max" 5. (Sim.Stats.Series.maximum s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Sim.Stats.Series.stddev s);
  Alcotest.(check (float 1e-9)) "p0" 1. (Sim.Stats.Series.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Sim.Stats.Series.percentile s 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2. (Sim.Stats.Series.percentile s 25.)

let stats_series_time () =
  let s = Sim.Stats.Series.create () in
  Sim.Stats.Series.add_time s (us 12);
  Alcotest.(check (float 1e-9)) "stored as us" 12. (Sim.Stats.Series.mean s)

let stats_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max"
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let s = Sim.Stats.Series.create () in
      List.iter (Sim.Stats.Series.add s) xs;
      let v = Sim.Stats.Series.percentile s p in
      v >= Sim.Stats.Series.minimum s -. 1e-9
      && v <= Sim.Stats.Series.maximum s +. 1e-9)

let tc name f = Alcotest.test_case name `Quick f
let prop t = QCheck_alcotest.to_alcotest t

let suite =
  [
    ( "sim.stime",
      [
        tc "unit conversions" stime_units;
        tc "arithmetic" stime_arith;
        tc "float conversions" stime_of_float;
        tc "pretty printing" stime_pp;
      ] );
    ( "sim.pheap",
      [
        tc "pops in key order" pheap_order;
        tc "stable among equal keys" pheap_stability;
        tc "peek and sizes" pheap_peek_and_sizes;
        prop pheap_qcheck;
      ] );
    ( "sim.rng",
      [
        tc "deterministic from seed" rng_deterministic;
        tc "split gives independent stream" rng_split_independent;
        tc "exponential positive" rng_exponential_positive;
        prop rng_bounds;
        prop rng_float_bounds;
      ] );
    ( "sim.engine",
      [
        tc "events run in time order" engine_ordering;
        tc "cancellation" engine_cancel;
        tc "relative scheduling" engine_schedule_in;
        tc "no scheduling in the past" engine_no_past;
        tc "run until horizon" engine_until;
        tc "max_events bound" engine_max_events;
        tc "same-time cascade" engine_event_cascades;
      ] );
    ( "sim.cpu",
      [
        tc "serializes work" cpu_serializes;
        tc "interrupt priority" cpu_priority;
        tc "utilization accounting" cpu_utilization;
        tc "queue depth" cpu_queue_depth;
      ] );
    ( "sim.stats",
      [
        tc "counter" stats_counter;
        tc "series summary" stats_series;
        tc "time samples in us" stats_series_time;
        prop stats_percentile_bounds;
      ] );
  ]

(* ---- preemptive interrupt service (opt-in) ---------------------------- *)

let cpu_preemption_latency () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  Sim.Cpu.set_preemptive cpu true;
  let intr_done = ref Sim.Stime.zero and thread_done = ref Sim.Stime.zero in
  (* a long thread computation in service... *)
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost:(us 1000) (fun () ->
      thread_done := Sim.Engine.now e);
  (* ...and an interrupt arriving 100us in *)
  ignore
    (Sim.Engine.schedule e ~at:(us 100) (fun () ->
         Sim.Cpu.run cpu ~prio:Sim.Cpu.Interrupt ~cost:(us 10) (fun () ->
             intr_done := Sim.Engine.now e)));
  Sim.Engine.run e;
  Alcotest.(check int) "interrupt served immediately" 110_000
    (Sim.Stime.to_ns !intr_done);
  Alcotest.(check int) "thread work finishes late by the interrupt time"
    1_010_000
    (Sim.Stime.to_ns !thread_done);
  Alcotest.(check int) "total busy time conserved" 1_010_000
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let cpu_no_preemption_by_default () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  let intr_done = ref Sim.Stime.zero in
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost:(us 1000) ignore;
  ignore
    (Sim.Engine.schedule e ~at:(us 100) (fun () ->
         Sim.Cpu.run cpu ~prio:Sim.Cpu.Interrupt ~cost:(us 10) (fun () ->
             intr_done := Sim.Engine.now e)));
  Sim.Engine.run e;
  Alcotest.(check int) "interrupt waits for the thread slice" 1_010_000
    (Sim.Stime.to_ns !intr_done)

let cpu_repeated_preemption () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e ~name:"c" in
  Sim.Cpu.set_preemptive cpu true;
  let thread_done = ref Sim.Stime.zero in
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost:(us 300) (fun () ->
      thread_done := Sim.Engine.now e);
  (* three interrupts, each cutting in *)
  List.iter
    (fun at ->
      ignore
        (Sim.Engine.schedule e ~at:(us at) (fun () ->
             Sim.Cpu.run cpu ~prio:Sim.Cpu.Interrupt ~cost:(us 50) ignore)))
    [ 50; 150; 250 ];
  Sim.Engine.run e;
  (* 300us of thread work + 150us of interrupts *)
  Alcotest.(check int) "thread completes after all slices" 450_000
    (Sim.Stime.to_ns !thread_done);
  Alcotest.(check int) "busy conserved" 450_000
    (Sim.Stime.to_ns (Sim.Cpu.busy_time cpu))

let suite =
  suite
  @ [
      ( "sim.cpu_preemption",
        [
          tc "interrupt preempts thread work" cpu_preemption_latency;
          tc "off by default" cpu_no_preemption_by_default;
          tc "repeated preemption conserves work" cpu_repeated_preemption;
        ] );
    ]
