(* Model-based fuzzing of the protocol graph: random interleavings of
   binds, handler installs/uninstalls, sends (including to dead ports,
   oversized datagrams, and forged claims) and extension link/unlink
   must never crash the kernel, and the counters must stay consistent
   with a simple model. *)

let prop t = QCheck_alcotest.to_alcotest t

type op =
  | Bind of int            (* port offset *)
  | Unbind of int
  | Send of int * int      (* port offset, payload size *)
  | Send_forged of int
  | Link_am
  | Unlink_am
  | Blast_unknown_port

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun p -> Bind p) (int_bound 4));
        (1, map (fun p -> Unbind p) (int_bound 4));
        (6, map2 (fun p s -> Send (p, s)) (int_bound 4) (int_bound 3000));
        (1, map (fun p -> Send_forged p) (int_bound 4));
        (1, return Link_am);
        (1, return Unlink_am);
        (1, return Blast_unknown_port);
      ])

let pp_op = function
  | Bind p -> Printf.sprintf "Bind %d" p
  | Unbind p -> Printf.sprintf "Unbind %d" p
  | Send (p, s) -> Printf.sprintf "Send (%d, %d)" p s
  | Send_forged p -> Printf.sprintf "Send_forged %d" p
  | Link_am -> "Link_am"
  | Unlink_am -> "Unlink_am"
  | Blast_unknown_port -> "Blast_unknown_port"

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (1 -- 40) op_gen)

let run_ops ops =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"fuzz" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let bound : (int, Plexus.Endpoint.t * (unit -> unit)) Hashtbl.t =
    Hashtbl.create 8
  in
  let received = ref 0 in
  let model_sent_to_bound = ref 0 in
  let am_linked = ref None in
  (* Each operation runs to quiescence, so the model is exact: a datagram
     is delivered iff its port was bound when it was sent. *)
  let step op =
      match op with
      | Bind poff -> (
          let port = 7000 + poff in
          match Plexus.Udp_mgr.bind udp_b ~owner:"fuzz" ~port with
          | Ok ep ->
              let un =
                Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr received)
              in
              Hashtbl.replace bound port (ep, un)
          | Error (`Port_in_use _) -> ())
      | Unbind poff -> (
          let port = 7000 + poff in
          match Hashtbl.find_opt bound port with
          | Some (ep, un) ->
              un ();
              Plexus.Udp_mgr.unbind udp_b ep;
              Hashtbl.remove bound port
          | None -> ())
      | Send (poff, size) ->
          let port = 7000 + poff in
          if Hashtbl.mem bound port then incr model_sent_to_bound;
          Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, port)
            (String.make (max 1 size) 'f')
      | Send_forged poff ->
          let port = 7000 + poff in
          if Hashtbl.mem bound port then incr model_sent_to_bound;
          (match
             Plexus.Udp_mgr.send_claiming udp_a client ~claimed_src_port:666
               ~dst:(Experiments.Common.ip_b, port)
               "forged"
           with
          | Ok () -> ()
          | Error `Spoof_rejected ->
              (* only possible under Verify policy, which we never set *)
              assert false)
      | Link_am ->
          if !am_linked = None then begin
            let _ctx, ext =
              Apps.Active_messages.extension ~name:"fuzz-am"
                ~handlers:(fun _ _ ~src:_ _ -> Spin.Ephemeral.nothing)
                ()
            in
            match Plexus.Stack.link p.Experiments.Common.b ext with
            | Ok l -> am_linked := Some l
            | Error _ -> ()
          end
      | Unlink_am -> (
          match !am_linked with
          | Some l ->
              Spin.Linker.unlink l;
              am_linked := None
          | None -> ())
      | Blast_unknown_port ->
          Plexus.Udp_mgr.send udp_a client
            ~dst:(Experiments.Common.ip_b, 4444)
            "nobody"
  in
  List.iter
    (fun op ->
      step op;
      Sim.Engine.run p.Experiments.Common.engine ~max_events:1_000_000)
    ops;
  let cb = Plexus.Udp_mgr.counters udp_b in
  let disp_b =
    Spin.Kernel.dispatcher
      (Netsim.Host.kernel (Plexus.Stack.host p.Experiments.Common.b))
  in
  (* Invariants:
     - the kernel never faulted;
     - handlers fired exactly once per datagram sent to a bound port;
     - the UDP layer's accounting agrees with the model;
     - sends to unbound ports were counted and answered with ICMP. *)
  Spin.Dispatcher.faults disp_b = 0
  && !received = !model_sent_to_bound
  && cb.Plexus.Udp_mgr.delivered = !model_sent_to_bound
  && cb.Plexus.Udp_mgr.no_port = cb.Plexus.Udp_mgr.unreachable_sent

let fuzz_graph =
  QCheck.Test.make ~count:60 ~name:"random graph workloads keep invariants"
    arb_ops run_ops

let suite = [ ("fuzz.graph", [ prop fuzz_graph ]) ]

(* ---- parser robustness: random bytes never crash a codec ---------------- *)

let random_bytes = QCheck.(string_of_size Gen.(0 -- 200))

let never_raises name f =
  QCheck.Test.make ~count:300 ~name random_bytes (fun s ->
      match f (View.of_string s) with _ -> true | exception _ -> false)

let parser_fuzz =
  [
    never_raises "Ether.parse total" (fun v -> ignore (Proto.Ether.parse v));
    never_raises "Ipv4.parse total" (fun v ->
        ignore (Proto.Ipv4.parse v);
        ignore (Proto.Ipv4.checksum_valid v));
    never_raises "Udp.parse/valid total" (fun v ->
        ignore (Proto.Udp.parse v);
        ignore
          (Proto.Udp.valid ~src:(Proto.Ipaddr.v 1 2 3 4)
             ~dst:(Proto.Ipaddr.v 5 6 7 8) v));
    never_raises "Tcp_wire.parse total" (fun v ->
        match Proto.Tcp_wire.parse v with
        | Some (_, off) ->
            (* the advertised data offset is always within the segment *)
            assert (off <= View.length v)
        | None -> ());
    never_raises "Icmp.parse/valid total" (fun v ->
        ignore (Proto.Icmp.parse v);
        ignore (Proto.Icmp.valid v));
    never_raises "Arp.parse total" (fun v -> ignore (Proto.Arp.parse v));
  ]

let http_fuzz =
  QCheck.Test.make ~count:300 ~name:"Http parsers total" random_bytes (fun s ->
      match
        ( Proto.Http.parse_request s,
          Proto.Http.parse_response s )
      with
      | _ -> true
      | exception _ -> false)

(* a random segment fed to an established TCP connection never crashes *)
let tcp_input_fuzz =
  QCheck.Test.make ~count:100 ~name:"Tcp.input total on random segments"
    QCheck.(pair small_int (string_of_size Gen.(0 -- 120)))
    (fun (seed, junk) ->
      let engine = Sim.Engine.create ~seed () in
      let env =
        {
          Proto.Tcp.now = (fun () -> Sim.Engine.now engine);
          set_timer =
            (fun delay fn ->
              let h = Sim.Engine.schedule_in engine ~delay fn in
              fun () -> Sim.Engine.cancel h);
          tx = (fun _ -> ());
          on_receive = ignore;
          on_established = ignore;
          on_peer_close = ignore;
          on_close = ignore;
          on_error = ignore;
        }
      in
      let tcp =
        Proto.Tcp.create env (Proto.Tcp.default_config ())
          ~local:(Proto.Ipaddr.v 10 0 0 1, 80)
      in
      Proto.Tcp.set_remote tcp ~remote:(Proto.Ipaddr.v 10 0 0 2, 1000);
      Proto.Tcp.listen tcp;
      match Proto.Tcp.input tcp (View.of_string junk) with
      | () -> true
      | exception _ -> false)

let suite =
  suite
  @ [
      ("fuzz.parsers", List.map prop parser_fuzz @ [ prop http_fuzz ]);
      ("fuzz.tcp", [ prop tcp_input_fuzz ]);
    ]
