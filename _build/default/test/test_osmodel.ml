(* Tests for the DIGITAL UNIX baseline: sockets over the monolithic
   stack, user/kernel boundary accounting, and the user-level splice. *)

let tc name f = Alcotest.test_case name `Quick f

let ip_a = Experiments.Common.ip_a
let ip_b = Experiments.Common.ip_b

let pair () = Experiments.Common.du_pair (Netsim.Costs.ethernet ())

let udp_sockets_end_to_end () =
  let p = pair () in
  let server =
    match Osmodel.Du_stack.udp_bind p.Experiments.Common.dub ~port:7 with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind failed"
  in
  let got = ref [] in
  Osmodel.Du_stack.udp_set_recv server (fun ~src data ->
      got := (snd src, data) :: !got);
  let client =
    match Osmodel.Du_stack.udp_bind p.Experiments.Common.dua ~port:5000 with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind failed"
  in
  Osmodel.Du_stack.udp_sendto p.Experiments.Common.dua client ~dst:(ip_b, 7)
    "first";
  Osmodel.Du_stack.udp_sendto p.Experiments.Common.dua client ~dst:(ip_b, 7)
    "second";
  Sim.Engine.run p.Experiments.Common.du_engine;
  Alcotest.(check (list (pair int string)))
    "delivered in order with source"
    [ (5000, "first"); (5000, "second") ]
    (List.rev !got);
  Alcotest.(check int) "counter" 2
    (Osmodel.Du_stack.counters p.Experiments.Common.dub).Osmodel.Du_stack.udp_delivered

let udp_bind_conflict () =
  let p = pair () in
  (match Osmodel.Du_stack.udp_bind p.Experiments.Common.dub ~port:7 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first bind failed");
  match Osmodel.Du_stack.udp_bind p.Experiments.Common.dub ~port:7 with
  | Error (`Port_in_use 7) -> ()
  | _ -> Alcotest.fail "double bind allowed"

let boundary_costs_charged () =
  (* A DU send must cost strictly more CPU than the in-kernel path: trap,
     copy and socket processing are visible in the cpu accounting. *)
  let p = pair () in
  (* a sink so the receiver does not answer with ICMP unreachable *)
  (match Osmodel.Du_stack.udp_bind p.Experiments.Common.dub ~port:7 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "bind failed");
  let client =
    match Osmodel.Du_stack.udp_bind p.Experiments.Common.dua ~port:5000 with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind failed"
  in
  let cpu = Netsim.Host.cpu (Osmodel.Du_stack.host p.Experiments.Common.dua) in
  Osmodel.Du_stack.udp_sendto p.Experiments.Common.dua client ~dst:(ip_b, 7)
    (String.make 1000 'x');
  Sim.Engine.run p.Experiments.Common.du_engine;
  let du_cost = Sim.Stime.to_us (Sim.Cpu.busy_time cpu) in
  (* trap 10 + copy 5+30 + socket 12 + udp 11 + ip 13 + ether 8 + tx 70 ~ 159 *)
  Alcotest.(check bool)
    (Printf.sprintf "boundary visible (%.1fus)" du_cost)
    true
    (du_cost > 145. && du_cost < 200.)

let icmp_echo_in_kernel () =
  let p = pair () in
  let du_a = p.Experiments.Common.dua in
  (* inject an echo request from A's kernel *)
  let msg = Proto.Icmp.echo_request ~ident:3 ~seq:9 "hi" in
  Osmodel.Du_stack.prime_arp du_a ip_b
    (Netsim.Dev.mac
       (List.hd (Netsim.Host.devices (Osmodel.Du_stack.host p.Experiments.Common.dub))));
  ignore msg;
  (* go through the public path: no raw IP send is exposed, so use the
     socket API to at least verify UDP echo behaviour covered elsewhere;
     here we instead check the counter wiring via a hand-built frame *)
  let pkt = Proto.Icmp.to_packet (Proto.Icmp.echo_request ~ident:3 ~seq:9 "hi") in
  Proto.Ipv4.encapsulate pkt
    (Proto.Ipv4.make ~proto:Proto.Ipv4.proto_icmp ~src:ip_a ~dst:ip_b
       ~payload_len:(Mbuf.length pkt) ());
  let dev_a = List.hd (Netsim.Host.devices (Osmodel.Du_stack.host du_a)) in
  let dev_b =
    List.hd (Netsim.Host.devices (Osmodel.Du_stack.host p.Experiments.Common.dub))
  in
  Proto.Ether.encapsulate pkt
    {
      Proto.Ether.dst = Netsim.Dev.mac dev_b;
      src = Netsim.Dev.mac dev_a;
      etype = Proto.Ether.etype_ip;
    };
  Netsim.Dev.transmit dev_a pkt;
  Sim.Engine.run p.Experiments.Common.du_engine;
  Alcotest.(check int) "echo answered" 1
    (Osmodel.Du_stack.counters p.Experiments.Common.dub).Osmodel.Du_stack.echos_answered

let tcp_sockets_end_to_end () =
  let p = pair () in
  let received = Buffer.create 64 in
  (match
     Osmodel.Du_stack.tcp_listen p.Experiments.Common.dub ~port:80
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             Buffer.add_string received data;
             Osmodel.Du_stack.tcp_send p.Experiments.Common.dub conn
               ("resp:" ^ data)))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "listen failed");
  let reply = ref "" in
  let conn =
    Osmodel.Du_stack.tcp_connect p.Experiments.Common.dua ~dst:(ip_b, 80) ()
  in
  Osmodel.Du_stack.on_established conn (fun () ->
      Osmodel.Du_stack.tcp_send p.Experiments.Common.dua conn "query");
  Osmodel.Du_stack.on_receive conn (fun data -> reply := !reply ^ data);
  Sim.Engine.run p.Experiments.Common.du_engine ~until:(Sim.Stime.s 10);
  Alcotest.(check string) "server received" "query" (Buffer.contents received);
  Alcotest.(check string) "client received" "resp:query" !reply

let tcp_bulk_over_du () =
  let p = pair () in
  let total = ref 0 in
  (match
     Osmodel.Du_stack.tcp_listen p.Experiments.Common.dub ~port:80
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             total := !total + String.length data))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "listen failed");
  let conn =
    Osmodel.Du_stack.tcp_connect p.Experiments.Common.dua ~dst:(ip_b, 80) ()
  in
  Osmodel.Du_stack.on_established conn (fun () ->
      Osmodel.Du_stack.tcp_send p.Experiments.Common.dua conn
        (String.make 100_000 'b'));
  Sim.Engine.run p.Experiments.Common.du_engine ~until:(Sim.Stime.s 30);
  Alcotest.(check int) "all delivered" 100_000 !total

let splice_relays () =
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine (Netsim.Costs.ethernet ())
      ~client:("client", Experiments.Common.ip_client)
      ~middle:("middle", Experiments.Common.ip_middle)
      ~server:("server", Experiments.Common.ip_server)
  in
  let client = Osmodel.Du_stack.create c.Netsim.Network.host in
  let middle =
    Osmodel.Du_stack.create
      ~subnets:[ (Experiments.Common.net1, 24); (Experiments.Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  let server = Osmodel.Du_stack.create s.Netsim.Network.host in
  Osmodel.Du_stack.prime_arp client Experiments.Common.ip_middle
    (Netsim.Dev.mac m1.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp middle Experiments.Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp middle Experiments.Common.ip_server
    (Netsim.Dev.mac s.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp server Experiments.Common.ip_middle
    (Netsim.Dev.mac m2.Netsim.Network.dev);
  let splice =
    Osmodel.Splice.create middle ~listen_port:8080
      ~backend:(Experiments.Common.ip_server, 8080)
  in
  let server_got = Buffer.create 64 in
  (match
     Osmodel.Du_stack.tcp_listen server ~port:8080
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             Buffer.add_string server_got data;
             Osmodel.Du_stack.tcp_send server conn ("echo:" ^ data)))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "server listen failed");
  let client_got = ref "" in
  let conn =
    Osmodel.Du_stack.tcp_connect client ~dst:(Experiments.Common.ip_middle, 8080) ()
  in
  Osmodel.Du_stack.on_established conn (fun () ->
      Osmodel.Du_stack.tcp_send client conn "through-the-splice");
  Osmodel.Du_stack.on_receive conn (fun data -> client_got := !client_got ^ data);
  Sim.Engine.run engine ~until:(Sim.Stime.s 20);
  Alcotest.(check string) "server saw relayed bytes" "through-the-splice"
    (Buffer.contents server_got);
  Alcotest.(check string) "reply relayed back" "echo:through-the-splice"
    !client_got;
  Alcotest.(check int) "one session" 1 (Osmodel.Splice.sessions splice);
  Alcotest.(check bool) "bytes counted" true
    (Osmodel.Splice.forwarded_bytes splice >= String.length "through-the-splice")

let suite =
  [
    ( "osmodel.udp",
      [
        tc "sockets end to end" udp_sockets_end_to_end;
        tc "bind conflict" udp_bind_conflict;
        tc "boundary costs charged" boundary_costs_charged;
      ] );
    ("osmodel.icmp", [ tc "kernel echo" icmp_echo_in_kernel ]);
    ( "osmodel.tcp",
      [
        tc "sockets end to end" tcp_sockets_end_to_end;
        tc "bulk transfer" tcp_bulk_over_du;
      ] );
    ("osmodel.splice", [ tc "user-level relay" splice_relays ]);
  ]
