(** ICMP echo request/reply. *)

val header_len : int
val type_echo_reply : int
val type_dest_unreachable : int
val type_time_exceeded : int
val type_echo_request : int
val code_port_unreachable : int

type message = {
  mtype : int;
  code : int;
  ident : int;
  seq : int;
  payload : string;
}

val parse : _ View.t -> message option
val to_packet : message -> Mbuf.rw Mbuf.t
(** Encode with checksum. *)

val valid : _ View.t -> bool
val echo_request : ident:int -> seq:int -> string -> message
val echo_reply_of : message -> message

val time_exceeded : original:string -> message
(** An ICMP time-exceeded quoting (a prefix of) the expired datagram. *)

val port_unreachable : original:string -> message
(** An ICMP port-unreachable quoting (a prefix of) the offending
    datagram. *)

val pp_message : Format.formatter -> message -> unit
