(* IPv4 addresses as 32-bit values carried in a native int. *)

type t = int

let v a b c d =
  if a lor b lor c lor d land lnot 0xff <> 0 then invalid_arg "Ipaddr.v";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let broadcast = 0xffffffff
let any = 0

let of_int i = i land 0xffffffff
let to_int t = t

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try v (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
      with _ -> invalid_arg "Ipaddr.of_string")
  | _ -> invalid_arg "Ipaddr.of_string"

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let pp ppf t = Fmt.string ppf (to_string t)

let equal : t -> t -> bool = ( = )
let compare : t -> t -> int = compare

let in_subnet t ~net ~mask_bits =
  let mask = if mask_bits = 0 then 0 else lnot 0 lsl (32 - mask_bits) land 0xffffffff in
  t land mask = net land mask
