(* A minimal HTTP/1.0 codec — enough for the paper's closing demo (an
   HTTP server running as a Plexus extension). *)

type request = { meth : string; path : string; headers : (string * string) list }

type response = {
  status : int;
  reason : string;
  headers : (string * string) list;
  body : string;
}

let crlf = "\r\n"

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some i ->
          let k = String.sub line 0 i in
          let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          Some (String.lowercase_ascii k, v))
    lines

let split_lines s =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)

let parse_request s =
  match split_lines s with
  | req :: rest -> (
      match String.split_on_char ' ' req with
      | [ meth; path; _version ] ->
          Some { meth; path; headers = parse_headers rest }
      | _ -> None)
  | [] -> None

let request_to_string r =
  Printf.sprintf "%s %s HTTP/1.0%s%s%s" r.meth r.path crlf
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf "%s: %s%s" k v crlf) r.headers))
    crlf

let response_to_string r =
  let headers =
    ("content-length", string_of_int (String.length r.body)) :: r.headers
  in
  Printf.sprintf "HTTP/1.0 %d %s%s%s%s%s" r.status r.reason crlf
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf "%s: %s%s" k v crlf) headers))
    crlf r.body

let parse_response s =
  match String.index_opt s '\r' with
  | None -> None
  | Some _ -> (
      match split_lines s with
      | status_line :: rest -> (
          match String.split_on_char ' ' status_line with
          | _version :: code :: reason -> (
              try
                let body_start =
                  match Str_find.find_sub s "\r\n\r\n" with
                  | Some i -> i + 4
                  | None -> String.length s
                in
                Some
                  {
                    status = int_of_string code;
                    reason = String.concat " " reason;
                    headers =
                      parse_headers
                        (List.filter (fun l -> l <> "") rest
                        |> List.filter (fun l -> String.contains l ':'));
                    body = String.sub s body_start (String.length s - body_start);
                  }
              with _ -> None)
          | _ -> None)
      | [] -> None)

let ok ?(headers = []) body = { status = 200; reason = "OK"; headers; body }

let not_found =
  { status = 404; reason = "Not Found"; headers = []; body = "not found\n" }
