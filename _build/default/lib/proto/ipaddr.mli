(** IPv4 addresses. *)

type t = private int

val v : int -> int -> int -> int -> t
(** [v a b c d] is the address [a.b.c.d]. *)

val broadcast : t
val any : t
val of_int : int -> t
val to_int : t -> int
val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val in_subnet : t -> net:t -> mask_bits:int -> bool
