(* IPv4: header codec, fragmentation fields, protocol numbers and a
   minimal routing decision.  No options are supported (IHL is always 5),
   matching the traffic the paper's experiments generate. *)

let header_len = 20
let default_ttl = 64

(* Protocol numbers *)
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

type header = {
  tos : int;
  total_len : int;
  id : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int; (* in 8-byte units *)
  ttl : int;
  proto : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
}

let make ?(tos = 0) ?(id = 0) ?(dont_fragment = false) ?(more_fragments = false)
    ?(frag_offset = 0) ?(ttl = default_ttl) ~proto ~src ~dst ~payload_len () =
  {
    tos;
    total_len = header_len + payload_len;
    id;
    dont_fragment;
    more_fragments;
    frag_offset;
    ttl;
    proto;
    src;
    dst;
  }

let parse v =
  if View.length v < header_len then None
  else begin
    let vihl = View.get_u8 v 0 in
    if vihl lsr 4 <> 4 || vihl land 0xf <> 5 then None
    else begin
      let flags_frag = View.get_u16 v 6 in
      Some
        {
          tos = View.get_u8 v 1;
          total_len = View.get_u16 v 2;
          id = View.get_u16 v 4;
          dont_fragment = flags_frag land 0x4000 <> 0;
          more_fragments = flags_frag land 0x2000 <> 0;
          frag_offset = flags_frag land 0x1fff;
          ttl = View.get_u8 v 8;
          proto = View.get_u8 v 9;
          src = Ipaddr.of_int (View.get_u32 v 12);
          dst = Ipaddr.of_int (View.get_u32 v 16);
        }
    end
  end

let write v h =
  View.set_u8 v 0 0x45;
  View.set_u8 v 1 h.tos;
  View.set_u16 v 2 h.total_len;
  View.set_u16 v 4 h.id;
  let flags_frag =
    (if h.dont_fragment then 0x4000 else 0)
    lor (if h.more_fragments then 0x2000 else 0)
    lor (h.frag_offset land 0x1fff)
  in
  View.set_u16 v 6 flags_frag;
  View.set_u8 v 8 h.ttl;
  View.set_u8 v 9 h.proto;
  View.set_u16 v 10 0;
  View.set_u32 v 12 (Ipaddr.to_int h.src);
  View.set_u32 v 16 (Ipaddr.to_int h.dst);
  let c = Cksum.of_view (View.ro (View.sub v ~off:0 ~len:header_len)) in
  View.set_u16 v 10 c

let checksum_valid v =
  View.length v >= header_len
  && Cksum.valid (View.sub (View.ro v) ~off:0 ~len:header_len)

(* Push an IP header onto a packet whose current contents are the
   payload. *)
let encapsulate pkt h =
  let v = Mbuf.prepend pkt header_len in
  write v h

(* The 12-byte pseudo-header used by UDP and TCP checksums. *)
let pseudo_header ~src ~dst ~proto ~len =
  let v = View.create 12 in
  View.set_u32 v 0 (Ipaddr.to_int src);
  View.set_u32 v 4 (Ipaddr.to_int dst);
  View.set_u8 v 8 0;
  View.set_u8 v 9 proto;
  View.set_u16 v 10 len;
  View.ro v

let pp_header ppf h =
  Fmt.pf ppf "ip{%a -> %a proto=%d len=%d id=%d%s}" Ipaddr.pp h.src Ipaddr.pp
    h.dst h.proto h.total_len h.id
    (if h.more_fragments || h.frag_offset > 0 then
       Printf.sprintf " frag=%d%s" h.frag_offset
         (if h.more_fragments then "+" else "")
     else "")
