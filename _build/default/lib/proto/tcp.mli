(** TCP connection engine.

    One engine, two execution models: the environment record abstracts the
    clock, timers and segment output, so the same implementation runs as a
    Plexus kernel extension and inside the DIGITAL UNIX model — preserving
    the paper's "same TCP/IP implementation on both systems" methodology.

    Implements: three-way handshake, sliding-window transfer bounded by
    the peer window and a congestion window (slow start / congestion
    avoidance), retransmission on timeout with exponential backoff, fast
    retransmit on triple duplicate ACKs, out-of-order reassembly, and the
    full close/TIME_WAIT state machine. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

type config = {
  mss : int;
  window : int;
  rto_initial : Sim.Stime.t;
  rto_max : Sim.Stime.t;
  msl : Sim.Stime.t;
  max_retransmits : int;
  delack : Sim.Stime.t;
  delack_segments : int;
  rto_min : Sim.Stime.t;
  nagle : bool;
  initial_window_segments : int;
}

val default_config :
  ?mss:int -> ?window:int -> ?nagle:bool -> ?initial_window_segments:int ->
  unit -> config

type env = {
  now : unit -> Sim.Stime.t;
  set_timer : Sim.Stime.t -> (unit -> unit) -> unit -> unit;
  tx : Mbuf.rw Mbuf.t -> unit;
  on_receive : string -> unit;
  on_established : unit -> unit;
  on_peer_close : unit -> unit;
  on_close : unit -> unit;
  on_error : string -> unit;
}

type counters = {
  mutable segs_out : int;
  mutable segs_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable dup_acks : int;
  mutable bad_segments : int;
}

type t

val create : env -> config -> local:Ipaddr.t * int -> t

val listen : t -> unit
(** Passive open. *)

val connect : t -> remote:Ipaddr.t * int -> iss:Tcp_wire.Seq.t -> unit
(** Active open: send SYN. *)

val set_remote : t -> remote:Ipaddr.t * int -> unit
(** Bind a passive connection's peer (needed for checksums/replies). *)

val set_iss : t -> Tcp_wire.Seq.t -> unit

val send : t -> string -> unit
(** Queue application data for transmission. *)

val close : t -> unit
(** Orderly close (FIN after queued data drains). *)

val abort : t -> unit
(** RST and drop everything. *)

val input : t -> View.ro View.t -> unit
(** Process one incoming segment (TCP header + payload). *)

val state : t -> state
val counters : t -> counters
val local_endpoint : t -> Ipaddr.t * int
val remote_endpoint : t -> Ipaddr.t * int
val unsent_bytes : t -> int
val in_flight : t -> int

val srtt : t -> Sim.Stime.t
(** Smoothed round-trip estimate (zero before the first sample). *)

val rtt_samples : t -> int
(** RTT samples folded in so far (Karn's algorithm: none across
    retransmissions). *)

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit
