(** Minimal HTTP/1.0 codec (the paper's closing demo is an HTTP server
    running as a Plexus extension). *)

type request = { meth : string; path : string; headers : (string * string) list }

type response = {
  status : int;
  reason : string;
  headers : (string * string) list;
  body : string;
}

val parse_request : string -> request option
val request_to_string : request -> string
val parse_response : string -> response option
val response_to_string : response -> string
val ok : ?headers:(string * string) list -> string -> response
val not_found : response
