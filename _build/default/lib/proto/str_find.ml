(* Substring search (naive; inputs are small protocol messages). *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then Some 0
  else begin
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  end
