lib/proto/icmp.mli: Format Mbuf View
