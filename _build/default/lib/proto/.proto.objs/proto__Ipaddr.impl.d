lib/proto/ipaddr.ml: Fmt Printf String
