lib/proto/ether.ml: Fmt Mbuf Printf View
