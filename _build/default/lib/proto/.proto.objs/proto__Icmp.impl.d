lib/proto/icmp.ml: Cksum Fmt Mbuf String View
