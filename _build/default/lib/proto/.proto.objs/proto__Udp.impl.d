lib/proto/udp.ml: Cksum Fmt Ipv4 Mbuf View
