lib/proto/tcp.ml: Byteq Fmt Hashtbl Ipaddr Mbuf Sim String Tcp_wire View
