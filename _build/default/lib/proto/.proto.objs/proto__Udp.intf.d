lib/proto/udp.mli: Format Ipaddr Mbuf View
