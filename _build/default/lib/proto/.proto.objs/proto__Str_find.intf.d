lib/proto/str_find.mli:
