lib/proto/ipaddr.mli: Format
