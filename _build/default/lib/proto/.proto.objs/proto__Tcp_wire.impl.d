lib/proto/tcp_wire.ml: Cksum Fmt Ipv4 List Mbuf String View
