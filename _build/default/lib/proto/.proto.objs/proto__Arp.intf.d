lib/proto/arp.mli: Ether Format Ipaddr Mbuf Sim View
