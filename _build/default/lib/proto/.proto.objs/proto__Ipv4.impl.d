lib/proto/ipv4.ml: Cksum Fmt Ipaddr Mbuf Printf View
