lib/proto/str_find.ml: String
