lib/proto/arp.ml: Ether Fmt Hashtbl Ipaddr List Mbuf Option Sim View
