lib/proto/ipv4.mli: Format Ipaddr Mbuf View
