lib/proto/http.ml: List Printf Str_find String
