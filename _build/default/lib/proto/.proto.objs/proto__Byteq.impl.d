lib/proto/byteq.ml: Bytes Queue String
