lib/proto/http.mli:
