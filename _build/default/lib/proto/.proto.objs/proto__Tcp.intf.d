lib/proto/tcp.mli: Format Ipaddr Mbuf Sim Tcp_wire View
