lib/proto/tcp_wire.mli: Format Ipaddr Mbuf View
