lib/proto/byteq.mli:
