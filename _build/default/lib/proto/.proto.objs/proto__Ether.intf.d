lib/proto/ether.mli: Format Mbuf View
