lib/proto/ip_frag.mli: Ipv4 Sim
