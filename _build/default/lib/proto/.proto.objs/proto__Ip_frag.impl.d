lib/proto/ip_frag.ml: Bytes Hashtbl Ipaddr Ipv4 List Sim String
