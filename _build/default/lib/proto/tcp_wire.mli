(** TCP wire format and sequence arithmetic. *)

val header_len : int

module Flags : sig
  type t = private int

  val fin : t
  val syn : t
  val rst : t
  val psh : t
  val ack : t
  val test : t -> t -> bool
  val ( + ) : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Seq : sig
  type t = private int
  (** 32-bit sequence numbers with modular comparison. *)

  val of_int : int -> t
  val to_int : t -> int
  val add : t -> int -> t
  val diff : t -> t -> int
  val lt : t -> t -> bool
  val le : t -> t -> bool
  val gt : t -> t -> bool
  val ge : t -> t -> bool
  val max : t -> t -> t
end

type header = {
  src_port : int;
  dst_port : int;
  seq : Seq.t;
  ack : Seq.t;
  flags : Flags.t;
  window : int;
}

val parse : _ View.t -> (header * int) option
(** [(header, data_offset_bytes)] of the segment at the view's start. *)

val write : View.rw View.t -> header -> unit

val compute_cksum : src:Ipaddr.t -> dst:Ipaddr.t -> _ View.t -> int

val to_packet :
  src:Ipaddr.t -> dst:Ipaddr.t -> header -> string -> Mbuf.rw Mbuf.t
(** Encode a checksummed segment (header + payload). *)

val valid : src:Ipaddr.t -> dst:Ipaddr.t -> _ View.t -> bool

val pp_header : Format.formatter -> header -> unit
