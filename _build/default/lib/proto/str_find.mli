(** Substring search helper. *)

val find_sub : string -> string -> int option
(** [find_sub s sub] is the index of the first occurrence of [sub]. *)
