(* IP fragmentation and reassembly.  The video experiment (Figure 6)
   sends 12.5 KB UDP frames, which must be fragmented to the device MTU;
   the receive side reassembles before the UDP layer sees the datagram. *)

(* Split a datagram payload into (offset-in-8-byte-units, more, bytes)
   fragments that each fit in [mtu] together with the IP header. *)
let fragment ~mtu payload =
  if mtu <= Ipv4.header_len + 8 then invalid_arg "Ip_frag.fragment: mtu too small";
  let max_data = (mtu - Ipv4.header_len) / 8 * 8 in
  let len = String.length payload in
  if len <= max_data then [ (0, false, payload) ]
  else begin
    let rec go off acc =
      if off >= len then List.rev acc
      else begin
        let n = min max_data (len - off) in
        let more = off + n < len in
        go (off + n) ((off / 8, more, String.sub payload off n) :: acc)
      end
    in
    go 0 []
  end

(* Reassembly contexts are keyed by (src, dst, proto, id). *)
type key = { src : Ipaddr.t; dst : Ipaddr.t; proto : int; id : int }

type ctx = {
  mutable chunks : (int * string) list; (* byte offset, data *)
  mutable total : int option;           (* known once the last fragment arrives *)
  mutable received : int;
  deadline : Sim.Stime.t;
}

type t = {
  pending : (key, ctx) Hashtbl.t;
  timeout : Sim.Stime.t;
  mutable timeouts : int;
  mutable reassembled : int;
}

let create ?(timeout = Sim.Stime.s 30) () =
  { pending = Hashtbl.create 16; timeout; timeouts = 0; reassembled = 0 }

let pending_count t = Hashtbl.length t.pending
let reassembled_count t = t.reassembled
let timeout_count t = t.timeouts

let expire t ~now =
  let stale =
    Hashtbl.fold
      (fun k ctx acc -> if Sim.Stime.compare now ctx.deadline > 0 then k :: acc else acc)
      t.pending []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.pending k;
      t.timeouts <- t.timeouts + 1)
    stale

(* Feed one fragment; returns the reassembled payload when complete. *)
let input t ~now (h : Ipv4.header) payload =
  if (not h.more_fragments) && h.frag_offset = 0 then Some payload
  else begin
    expire t ~now;
    let key = { src = h.src; dst = h.dst; proto = h.proto; id = h.id } in
    let ctx =
      match Hashtbl.find_opt t.pending key with
      | Some c -> c
      | None ->
          let c =
            {
              chunks = [];
              total = None;
              received = 0;
              deadline = Sim.Stime.add now t.timeout;
            }
          in
          Hashtbl.replace t.pending key c;
          c
    in
    let off = h.frag_offset * 8 in
    if not (List.mem_assoc off ctx.chunks) then begin
      ctx.chunks <- (off, payload) :: ctx.chunks;
      ctx.received <- ctx.received + String.length payload
    end;
    if not h.more_fragments then ctx.total <- Some (off + String.length payload);
    match ctx.total with
    | Some total when ctx.received >= total ->
        Hashtbl.remove t.pending key;
        let buf = Bytes.make total '\000' in
        List.iter
          (fun (o, data) ->
            Bytes.blit_string data 0 buf o (String.length data))
          ctx.chunks;
        t.reassembled <- t.reassembled + 1;
        Some (Bytes.to_string buf)
    | _ -> None
  end
