(** Byte FIFO with random-access reads (TCP send buffer). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> string -> unit
(** Append bytes at the tail. *)

val peek_sub : t -> off:int -> len:int -> string
(** Read without consuming.  @raise Invalid_argument beyond the tail. *)

val drop : t -> int -> unit
(** Discard bytes from the head. *)

val clear : t -> unit
val to_string : t -> string
