(* ICMP, restricted to echo request/reply — what the paper's stack
   (Figure 1) carries and what ping-style diagnostics need. *)

let header_len = 8

let type_echo_reply = 0
let type_dest_unreachable = 3
let type_time_exceeded = 11
let type_echo_request = 8

let code_port_unreachable = 3

type message = {
  mtype : int;
  code : int;
  ident : int;
  seq : int;
  payload : string;
}

let parse v =
  if View.length v < header_len then None
  else
    Some
      {
        mtype = View.get_u8 v 0;
        code = View.get_u8 v 1;
        ident = View.get_u16 v 4;
        seq = View.get_u16 v 6;
        payload = View.get_string v ~off:header_len ~len:(View.length v - header_len);
      }

let to_packet m =
  let pkt = Mbuf.alloc (header_len + String.length m.payload) in
  let v = Mbuf.view pkt in
  View.set_u8 v 0 m.mtype;
  View.set_u8 v 1 m.code;
  View.set_u16 v 2 0;
  View.set_u16 v 4 m.ident;
  View.set_u16 v 6 m.seq;
  View.set_string v ~off:header_len m.payload;
  let c = Cksum.of_view (View.ro v) in
  View.set_u16 v 2 c;
  pkt

let valid v = View.length v >= header_len && Cksum.valid v

let echo_request ~ident ~seq payload =
  { mtype = type_echo_request; code = 0; ident; seq; payload }

let echo_reply_of m = { m with mtype = type_echo_reply }

(* RFC 792: a destination-unreachable carries the offending datagram's
   header + first 8 payload bytes; the ident/seq word is unused. *)
let time_exceeded ~original =
  {
    mtype = type_time_exceeded;
    code = 0;
    ident = 0;
    seq = 0;
    payload = String.sub original 0 (min (String.length original) 28);
  }

let port_unreachable ~original =
  {
    mtype = type_dest_unreachable;
    code = code_port_unreachable;
    ident = 0;
    seq = 0;
    payload = String.sub original 0 (min (String.length original) 28);
  }

let pp_message ppf m =
  Fmt.pf ppf "icmp{type=%d id=%d seq=%d len=%d}" m.mtype m.ident m.seq
    (String.length m.payload)
