(** IP fragmentation and reassembly. *)

val fragment : mtu:int -> string -> (int * bool * string) list
(** [fragment ~mtu payload] is a list of
    [(frag_offset_in_8B_units, more_fragments, data)] covering [payload],
    each fitting in [mtu] with an IP header.
    @raise Invalid_argument if the MTU cannot carry 8 payload bytes. *)

type t
(** Reassembly state, keyed by (src, dst, proto, id). *)

val create : ?timeout:Sim.Stime.t -> unit -> t

val input : t -> now:Sim.Stime.t -> Ipv4.header -> string -> string option
(** Feed a fragment (or whole datagram); [Some payload] when a datagram
    completes.  Stale contexts are expired lazily against [now]. *)

val pending_count : t -> int
val reassembled_count : t -> int
val timeout_count : t -> int
