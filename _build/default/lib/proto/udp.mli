(** UDP codec with optional checksum.

    Disabling the checksum is the paper's section 1.1 example of a
    legitimate application-specific protocol change. *)

val header_len : int

type header = { src_port : int; dst_port : int; len : int; cksum : int }

val parse : _ View.t -> header option
val write : View.rw View.t -> header -> unit

val compute_cksum : src:Ipaddr.t -> dst:Ipaddr.t -> _ View.t -> int
(** Checksum of a full datagram view whose checksum field is zero. *)

val encapsulate :
  ?checksum:bool -> Mbuf.rw Mbuf.t -> src:Ipaddr.t -> dst:Ipaddr.t ->
  src_port:int -> dst_port:int -> unit
(** Prepend a UDP header to a payload packet.  [~checksum:false] writes a
    zero checksum ("no checksum" per RFC 768). *)

val valid : src:Ipaddr.t -> dst:Ipaddr.t -> _ View.t -> bool
(** Length and checksum validation of a datagram view (header+payload). *)

val pp_header : Format.formatter -> header -> unit
