(** Ethernet framing. *)

module Mac : sig
  type t = private int

  val broadcast : t
  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

val etype_ip : int
val etype_arp : int

val etype_active_message : int
(** The EtherType the active-message extension demultiplexes on, as in the
    paper's Figure 2 guard. *)

val header_len : int

val min_frame : int
(** Minimum frame length (60 bytes before the FCS); short frames are
    padded on the wire. *)

val crc_len : int

type header = { dst : Mac.t; src : Mac.t; etype : int }

val parse : _ View.t -> header option
(** Decode the header at the start of the view; [None] if too short. *)

val write : View.rw View.t -> header -> unit

val encapsulate : Mbuf.rw Mbuf.t -> header -> unit
(** Prepend an Ethernet header to a packet. *)

val pp_header : Format.formatter -> header -> unit

val get_u48 : _ View.t -> int -> int
(** Read a 48-bit big-endian field (MAC addresses, also used by ARP). *)

val set_u48 : View.rw View.t -> int -> int -> unit
