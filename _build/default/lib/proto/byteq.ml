(* A FIFO of bytes supporting random-access reads near the head, used as
   the TCP send buffer: unacknowledged data is read (for transmission and
   retransmission) without copying the whole buffer, and acknowledged data
   is dropped from the front in O(chunks). *)

type t = {
  chunks : string Queue.t;
  mutable head_off : int; (* bytes of the first chunk already dropped *)
  mutable len : int;
}

let create () = { chunks = Queue.create (); head_off = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let push t s =
  if String.length s > 0 then begin
    Queue.push s t.chunks;
    t.len <- t.len + String.length s
  end

(* Read [len] bytes starting [off] bytes after the head, without
   consuming. *)
let peek_sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then invalid_arg "Byteq.peek_sub";
  let buf = Bytes.create len in
  let copied = ref 0 in
  let skip = ref (t.head_off + off) in
  (try
     Queue.iter
       (fun chunk ->
         if !copied < len then begin
           let clen = String.length chunk in
           if !skip >= clen then skip := !skip - clen
           else begin
             let n = min (clen - !skip) (len - !copied) in
             Bytes.blit_string chunk !skip buf !copied n;
             copied := !copied + n;
             skip := 0
           end
         end
         else raise Exit)
       t.chunks
   with Exit -> ());
  Bytes.to_string buf

let drop t n =
  if n < 0 || n > t.len then invalid_arg "Byteq.drop";
  let remaining = ref n in
  while !remaining > 0 do
    let chunk = Queue.peek t.chunks in
    let avail = String.length chunk - t.head_off in
    if avail <= !remaining then begin
      ignore (Queue.pop t.chunks);
      t.head_off <- 0;
      remaining := !remaining - avail
    end
    else begin
      t.head_off <- t.head_off + !remaining;
      remaining := 0
    end
  done;
  t.len <- t.len - n

let clear t =
  Queue.clear t.chunks;
  t.head_off <- 0;
  t.len <- 0

let to_string t = peek_sub t ~off:0 ~len:t.len
