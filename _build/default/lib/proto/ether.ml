(* Ethernet framing.  MAC addresses are 48-bit values in a native int. *)

module Mac = struct
  type t = int

  let broadcast = 0xffffffffffff
  let of_int i = i land 0xffffffffffff
  let to_int t = t
  let equal : t -> t -> bool = ( = )

  let to_string t =
    Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff)
      ((t lsr 32) land 0xff) ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
      ((t lsr 8) land 0xff) (t land 0xff)

  let pp ppf t = Fmt.string ppf (to_string t)
end

(* EtherType values.  [etype_active_message] is the private type used by
   the paper's active-message extension to demultiplex at the Ethernet
   layer (Figure 2). *)
let etype_ip = 0x0800
let etype_arp = 0x0806
let etype_active_message = 0x88b5 (* IEEE local experimental *)

let header_len = 14
let min_frame = 60 (* before the 4-byte FCS *)
let crc_len = 4

type header = { dst : Mac.t; src : Mac.t; etype : int }

let get_u48 v i = (View.get_u16 v i lsl 32) lor View.get_u32 v (i + 2)

let set_u48 v i x =
  View.set_u16 v i ((x lsr 32) land 0xffff);
  View.set_u32 v (i + 2) (x land 0xffffffff)

let parse v =
  if View.length v < header_len then None
  else
    Some { dst = get_u48 v 0; src = get_u48 v 6; etype = View.get_u16 v 12 }

let write v { dst; src; etype } =
  set_u48 v 0 dst;
  set_u48 v 6 src;
  View.set_u16 v 12 etype

(* Push an Ethernet header onto a packet. *)
let encapsulate pkt hdr =
  let v = Mbuf.prepend pkt header_len in
  write v hdr

let pp_header ppf h =
  Fmt.pf ppf "eth{%a -> %a type=0x%04x}" Mac.pp h.src Mac.pp h.dst h.etype
