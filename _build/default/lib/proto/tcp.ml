(* A TCP engine: connection establishment, sliding-window data transfer
   with slow start / congestion avoidance, retransmission (timeout and
   fast retransmit), and orderly close.

   The engine is deliberately environment-agnostic: it reaches the world
   only through an [env] record (clock, timers, segment output, delivery
   callbacks).  The paper stresses that Plexus and DIGITAL UNIX ran "the
   same TCP/IP implementation" so the measured differences are purely OS
   structure; we preserve that methodology by running this one engine
   under both execution models. *)

module Seq = Tcp_wire.Seq
module Flags = Tcp_wire.Flags

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

type config = {
  mss : int;
  window : int;            (* receive window we advertise *)
  rto_initial : Sim.Stime.t;
  rto_max : Sim.Stime.t;
  msl : Sim.Stime.t;
  max_retransmits : int;
  delack : Sim.Stime.t;    (* delayed-ACK timer *)
  delack_segments : int;   (* ack at least every N in-order segments *)
  rto_min : Sim.Stime.t;   (* floor for the adaptive RTO *)
  nagle : bool;            (* coalesce sub-MSS sends while data is in flight *)
  initial_window_segments : int; (* initial congestion window, in MSS *)
}

let default_config ?(mss = 1460) ?(window = 65535) ?(nagle = false)
    ?(initial_window_segments = 2) () =
  {
    mss;
    window;
    rto_initial = Sim.Stime.ms 200;
    rto_max = Sim.Stime.s 60;
    msl = Sim.Stime.s 30;
    max_retransmits = 12;
    delack = Sim.Stime.ms 50;
    delack_segments = 2;
    rto_min = Sim.Stime.ms 50;
    nagle;
    initial_window_segments;
  }

type env = {
  now : unit -> Sim.Stime.t;
  set_timer : Sim.Stime.t -> (unit -> unit) -> unit -> unit;
      (* [set_timer delay fn] schedules [fn]; result cancels. *)
  tx : Mbuf.rw Mbuf.t -> unit;
      (* transmit a TCP segment (header+payload) toward the remote *)
  on_receive : string -> unit;      (* in-order application data *)
  on_established : unit -> unit;
  on_peer_close : unit -> unit;     (* FIN received (EOF) *)
  on_close : unit -> unit;          (* connection fully gone *)
  on_error : string -> unit;
}

type counters = {
  mutable segs_out : int;
  mutable segs_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable dup_acks : int;
  mutable bad_segments : int;
}

type t = {
  env : env;
  cfg : config;
  local_ip : Ipaddr.t;
  local_port : int;
  mutable remote_ip : Ipaddr.t;
  mutable remote_port : int;
  mutable state : state;
  (* send side *)
  mutable iss : Seq.t;
  mutable snd_una : Seq.t;
  mutable snd_nxt : Seq.t;
  mutable snd_wnd : int;          (* peer's advertised window *)
  mutable cwnd : int;
  mutable ssthresh : int;
  sndq : Byteq.t;
  mutable qseq : Seq.t;           (* sequence number of sndq's head byte *)
  mutable fin_pending : bool;
  mutable fin_seq : Seq.t option; (* sequence our FIN occupies, once sent *)
  (* receive side *)
  mutable irs : Seq.t;
  mutable rcv_nxt : Seq.t;
  ooo : (int, string) Hashtbl.t;  (* out-of-order segments by seq *)
  (* timers *)
  mutable rto : Sim.Stime.t;
  mutable rto_backoff : int;
  mutable retx_count : int;
  mutable retx_timer : (unit -> unit) option;
  mutable msl_timer : (unit -> unit) option;
  mutable delack_count : int;
  mutable delack_timer : (unit -> unit) option;
  (* Jacobson RTT estimation with Karn's algorithm: one timed segment at
     a time, samples discarded across retransmissions. *)
  mutable srtt_ns : float;            (* smoothed RTT; 0 until first sample *)
  mutable rttvar_ns : float;
  mutable timed_seg : (Seq.t * Sim.Stime.t) option;
  mutable rtt_samples : int;
  counters : counters;
}

let create env cfg ~local:(local_ip, local_port) =
  {
    env;
    cfg;
    local_ip;
    local_port;
    remote_ip = Ipaddr.any;
    remote_port = 0;
    state = Closed;
    iss = Seq.of_int 0;
    snd_una = Seq.of_int 0;
    snd_nxt = Seq.of_int 0;
    snd_wnd = cfg.window;
    cwnd = max 1 cfg.initial_window_segments * cfg.mss;
    ssthresh = 65535;
    sndq = Byteq.create ();
    qseq = Seq.of_int 0;
    fin_pending = false;
    fin_seq = None;
    irs = Seq.of_int 0;
    rcv_nxt = Seq.of_int 0;
    ooo = Hashtbl.create 8;
    rto = cfg.rto_initial;
    rto_backoff = 1;
    retx_count = 0;
    retx_timer = None;
    msl_timer = None;
    delack_count = 0;
    delack_timer = None;
    srtt_ns = 0.;
    rttvar_ns = 0.;
    timed_seg = None;
    rtt_samples = 0;
    counters =
      {
        segs_out = 0;
        segs_in = 0;
        bytes_out = 0;
        bytes_in = 0;
        retransmits = 0;
        fast_retransmits = 0;
        dup_acks = 0;
        bad_segments = 0;
      };
  }

let state t = t.state
let counters t = t.counters
let local_endpoint t = (t.local_ip, t.local_port)
let remote_endpoint t = (t.remote_ip, t.remote_port)
let unsent_bytes t = Byteq.length t.sndq
let in_flight t = Seq.diff t.snd_nxt t.snd_una
let srtt t = Sim.Stime.ns (int_of_float t.srtt_ns)
let rtt_samples t = t.rtt_samples

(* Fold an RTT sample into the smoothed estimators and derive the RTO
   (RFC 6298 constants). *)
let record_rtt_sample t sample =
  let s = float_of_int (Sim.Stime.to_ns sample) in
  if t.rtt_samples = 0 then begin
    t.srtt_ns <- s;
    t.rttvar_ns <- s /. 2.
  end
  else begin
    t.rttvar_ns <- (0.75 *. t.rttvar_ns) +. (0.25 *. abs_float (t.srtt_ns -. s));
    t.srtt_ns <- (0.875 *. t.srtt_ns) +. (0.125 *. s)
  end;
  t.rtt_samples <- t.rtt_samples + 1;
  let rto = t.srtt_ns +. (4. *. t.rttvar_ns) in
  t.rto <-
    Sim.Stime.max t.cfg.rto_min
      (Sim.Stime.min t.cfg.rto_max (Sim.Stime.ns (int_of_float rto)))

(* --- timers ------------------------------------------------------- *)

let stop_retx_timer t =
  match t.retx_timer with
  | Some cancel ->
      cancel ();
      t.retx_timer <- None
  | None -> ()

let rec arm_retx_timer t =
  stop_retx_timer t;
  let delay = Sim.Stime.min t.cfg.rto_max (Sim.Stime.mul t.rto t.rto_backoff) in
  t.retx_timer <- Some (t.env.set_timer delay (fun () -> on_retx_timeout t))

(* --- segment emission ---------------------------------------------- *)

and emit t ?(payload = "") ~seq ~flags () =
  (* Any segment carrying ACK satisfies a pending delayed ACK. *)
  if Flags.test flags Flags.ack then begin
    t.delack_count <- 0;
    match t.delack_timer with
    | Some cancel ->
        cancel ();
        t.delack_timer <- None
    | None -> ()
  end;
  let hdr =
    {
      Tcp_wire.src_port = t.local_port;
      dst_port = t.remote_port;
      seq;
      ack = t.rcv_nxt;
      flags;
      window = t.cfg.window land 0xffff;
    }
  in
  let pkt = Tcp_wire.to_packet ~src:t.local_ip ~dst:t.remote_ip hdr payload in
  t.counters.segs_out <- t.counters.segs_out + 1;
  t.counters.bytes_out <- t.counters.bytes_out + String.length payload;
  t.env.tx pkt

and send_ack t = emit t ~seq:t.snd_nxt ~flags:Flags.ack ()

(* BSD-style delayed acknowledgement: ack every [delack_segments]
   in-order segments, or when the timer fires, whichever is first. *)
and schedule_delack t =
  t.delack_count <- t.delack_count + 1;
  if t.delack_count >= t.cfg.delack_segments then send_ack t
  else if t.delack_timer = None then
    t.delack_timer <-
      Some
        (t.env.set_timer t.cfg.delack (fun () ->
             t.delack_timer <- None;
             if t.delack_count > 0 then send_ack t))

(* --- closing helpers ------------------------------------------------ *)

and enter_time_wait t =
  set_state t Time_wait;
  stop_retx_timer t;
  (match t.delack_timer with Some c -> c () | None -> ());
  t.delack_timer <- None;
  (match t.msl_timer with Some c -> c () | None -> ());
  t.msl_timer <-
    Some
      (t.env.set_timer (Sim.Stime.mul t.cfg.msl 2) (fun () ->
           set_state t Closed;
           t.env.on_close ()))

and set_state t s =
  if t.state <> s then t.state <- s

and teardown t reason =
  stop_retx_timer t;
  (match t.msl_timer with Some c -> c () | None -> ());
  t.msl_timer <- None;
  (match t.delack_timer with Some c -> c () | None -> ());
  t.delack_timer <- None;
  t.delack_count <- 0;
  set_state t Closed;
  if reason <> "" then t.env.on_error reason;
  t.env.on_close ()

(* --- transmission -------------------------------------------------- *)

and try_output t =
  match t.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
      let progress = ref true in
      while !progress do
        progress := false;
        let sent_off = Seq.diff t.snd_nxt t.qseq in
        let avail = Byteq.length t.sndq - sent_off in
        let flight = in_flight t in
        let wnd = min t.snd_wnd t.cwnd in
        let room = wnd - flight in
        let n = min (min avail t.cfg.mss) room in
        let nagle_holds =
          t.cfg.nagle && n > 0 && n < t.cfg.mss && n = avail && flight > 0
          && not t.fin_pending
        in
        if n > 0 && not nagle_holds then begin
          let payload = Byteq.peek_sub t.sndq ~off:sent_off ~len:n in
          let flags =
            if avail = n then Flags.(ack + psh) else Flags.ack
          in
          if t.timed_seg = None then
            t.timed_seg <- Some (t.snd_nxt, t.env.now ());
          emit t ~payload ~seq:t.snd_nxt ~flags ();
          t.snd_nxt <- Seq.add t.snd_nxt n;
          if t.retx_timer = None then arm_retx_timer t;
          progress := true
        end
        else if
          t.fin_pending && t.fin_seq = None && avail = 0
          && (t.state = Established || t.state = Close_wait)
        then begin
          (* all data is out: send FIN *)
          emit t ~seq:t.snd_nxt ~flags:Flags.(ack + fin) ();
          t.fin_seq <- Some t.snd_nxt;
          t.snd_nxt <- Seq.add t.snd_nxt 1;
          set_state t (if t.state = Established then Fin_wait_1 else Last_ack);
          if t.retx_timer = None then arm_retx_timer t
        end
      done
  | _ -> ()

(* --- retransmission ------------------------------------------------- *)

and retransmit_head t =
  t.counters.retransmits <- t.counters.retransmits + 1;
  t.timed_seg <- None;
  if Seq.lt t.snd_una t.snd_nxt then begin
    if t.snd_una = t.iss then
      (* SYN outstanding *)
      emit t ~seq:t.iss
        ~flags:(if t.state = Syn_rcvd then Flags.(syn + ack) else Flags.syn)
        ()
    else
      match t.fin_seq with
      | Some fs when t.snd_una = fs -> emit t ~seq:fs ~flags:Flags.(ack + fin) ()
      | _ ->
          let off = Seq.diff t.snd_una t.qseq in
          ignore off;
          let avail = Byteq.length t.sndq in
          let n = min avail t.cfg.mss in
          let n =
            (* do not retransmit past snd_nxt (or FIN) *)
            min n (Seq.diff t.snd_nxt t.snd_una)
          in
          if n > 0 then begin
            let payload = Byteq.peek_sub t.sndq ~off:0 ~len:n in
            emit t ~payload ~seq:t.snd_una ~flags:Flags.ack ()
          end
  end

and on_retx_timeout t =
  t.retx_timer <- None;
  if Seq.lt t.snd_una t.snd_nxt then begin
    t.retx_count <- t.retx_count + 1;
    if t.retx_count > t.cfg.max_retransmits then
      teardown t "too many retransmissions"
    else begin
      (* multiplicative backoff; collapse the congestion window *)
      t.ssthresh <- max (in_flight t / 2) (2 * t.cfg.mss);
      t.cwnd <- t.cfg.mss;
      t.rto_backoff <- min (t.rto_backoff * 2) 64;
      retransmit_head t;
      arm_retx_timer t
    end
  end

(* --- API ------------------------------------------------------------ *)

let listen t =
  if t.state <> Closed then invalid_arg "Tcp.listen: not CLOSED";
  set_state t Listen

let connect t ~remote:(rip, rport) ~iss =
  if t.state <> Closed then invalid_arg "Tcp.connect: not CLOSED";
  t.remote_ip <- rip;
  t.remote_port <- rport;
  t.iss <- iss;
  t.snd_una <- iss;
  t.snd_nxt <- Seq.add iss 1;
  t.qseq <- Seq.add iss 1;
  set_state t Syn_sent;
  emit t ~seq:iss ~flags:Flags.syn ();
  arm_retx_timer t

let send t data =
  match t.state with
  | Established | Close_wait | Syn_sent | Syn_rcvd ->
      if t.fin_pending then invalid_arg "Tcp.send: closing";
      Byteq.push t.sndq data;
      try_output t
  | s -> invalid_arg ("Tcp.send: bad state " ^ state_to_string s)

let close t =
  match t.state with
  | Closed | Listen ->
      set_state t Closed;
      t.env.on_close ()
  | Syn_sent -> teardown t ""
  | Established | Close_wait | Syn_rcvd ->
      t.fin_pending <- true;
      try_output t
  | _ -> ()

let abort t =
  if t.state <> Closed && t.remote_port <> 0 then
    emit t ~seq:t.snd_nxt ~flags:Flags.rst ();
  teardown t "connection aborted"

(* --- acknowledgement processing -------------------------------------- *)

let dupack_threshold = 3

let process_ack t (h : Tcp_wire.header) =
  let ack = h.ack in
  if Seq.gt ack t.snd_nxt then (* acks data we never sent *) ()
  else if Seq.le ack t.snd_una then begin
    (* duplicate *)
    if in_flight t > 0 && ack = t.snd_una then begin
      t.counters.dup_acks <- t.counters.dup_acks + 1;
      if t.counters.dup_acks mod dupack_threshold = 0 then begin
        t.counters.fast_retransmits <- t.counters.fast_retransmits + 1;
        t.ssthresh <- max (in_flight t / 2) (2 * t.cfg.mss);
        t.cwnd <- t.ssthresh;
        retransmit_head t
      end
    end
  end
  else begin
    (* new data acknowledged *)
    let syn_acked = t.snd_una = t.iss in
    (* payload bytes covered by this ack *)
    let fin_acked = match t.fin_seq with Some fs -> Seq.gt ack fs | None -> false in
    let payload_hi =
      match t.fin_seq with Some fs when Seq.gt ack fs -> fs | _ -> ack
    in
    let payload_acked =
      if Seq.gt payload_hi t.qseq then Seq.diff payload_hi t.qseq else 0
    in
    let payload_acked = min payload_acked (Byteq.length t.sndq) in
    if payload_acked > 0 then begin
      Byteq.drop t.sndq payload_acked;
      t.qseq <- Seq.add t.qseq payload_acked
    end;
    (match t.timed_seg with
    | Some (seq, sent_at) when Seq.gt ack seq ->
        t.timed_seg <- None;
        record_rtt_sample t (Sim.Stime.sub (t.env.now ()) sent_at)
    | _ -> ());
    t.snd_una <- ack;
    t.retx_count <- 0;
    t.rto_backoff <- 1;
    (* congestion control: slow start then congestion avoidance *)
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + t.cfg.mss
    else t.cwnd <- t.cwnd + max 1 (t.cfg.mss * t.cfg.mss / t.cwnd);
    if in_flight t = 0 then stop_retx_timer t else arm_retx_timer t;
    ignore syn_acked;
    if fin_acked then begin
      match t.state with
      | Fin_wait_1 -> set_state t Fin_wait_2
      | Closing -> enter_time_wait t
      | Last_ack -> teardown t ""
      | _ -> ()
    end
  end;
  t.snd_wnd <- max h.window 1

(* --- in-order delivery ----------------------------------------------- *)

let rec drain_ooo t =
  match Hashtbl.find_opt t.ooo (Seq.to_int t.rcv_nxt) with
  | None -> ()
  | Some data ->
      Hashtbl.remove t.ooo (Seq.to_int t.rcv_nxt);
      t.rcv_nxt <- Seq.add t.rcv_nxt (String.length data);
      t.counters.bytes_in <- t.counters.bytes_in + String.length data;
      t.env.on_receive data;
      drain_ooo t

let process_payload t seq payload =
  let len = String.length payload in
  if len = 0 then `No_payload
  else if Seq.le (Seq.add seq len) t.rcv_nxt then `Duplicate
  else begin
    (* trim anything before rcv_nxt *)
    let seq, payload =
      if Seq.lt seq t.rcv_nxt then begin
        let skip = Seq.diff t.rcv_nxt seq in
        (t.rcv_nxt, String.sub payload skip (len - skip))
      end
      else (seq, payload)
    in
    if seq = t.rcv_nxt then begin
      t.rcv_nxt <- Seq.add t.rcv_nxt (String.length payload);
      t.counters.bytes_in <- t.counters.bytes_in + String.length payload;
      t.env.on_receive payload;
      drain_ooo t;
      `Delivered
    end
    else begin
      if Hashtbl.length t.ooo < 256 then
        Hashtbl.replace t.ooo (Seq.to_int seq) payload;
      `Out_of_order
    end
  end

(* --- segment input ---------------------------------------------------- *)

let input t (v : View.ro View.t) =
  t.counters.segs_in <- t.counters.segs_in + 1;
  match Tcp_wire.parse v with
  | None -> t.counters.bad_segments <- t.counters.bad_segments + 1
  | Some (h, data_off) ->
      let checksum_ok =
        t.state = Listen || Tcp_wire.valid ~src:t.remote_ip ~dst:t.local_ip v
      in
      if not checksum_ok then
        t.counters.bad_segments <- t.counters.bad_segments + 1
      else begin
        let payload =
          View.get_string v ~off:data_off ~len:(View.length v - data_off)
        in
        let has f = Flags.test h.flags f in
        match t.state with
        | Closed -> ()
        | Listen ->
            if has Flags.syn && not (has Flags.ack) then begin
              (* passive open; validate checksum against the new peer *)
              t.remote_port <- h.src_port;
              t.irs <- h.seq;
              t.rcv_nxt <- Seq.add h.seq 1;
              let iss = t.iss in
              t.snd_una <- iss;
              t.snd_nxt <- Seq.add iss 1;
              t.qseq <- Seq.add iss 1;
              set_state t Syn_rcvd;
              emit t ~seq:iss ~flags:Flags.(syn + ack) ();
              arm_retx_timer t
            end
        | Syn_sent ->
            if has Flags.rst then teardown t "connection refused"
            else if has Flags.syn && has Flags.ack && h.ack = t.snd_nxt then begin
              t.irs <- h.seq;
              t.rcv_nxt <- Seq.add h.seq 1;
              t.snd_una <- h.ack;
              t.snd_wnd <- max h.window 1;
              t.retx_count <- 0;
              t.rto_backoff <- 1;
              stop_retx_timer t;
              set_state t Established;
              send_ack t;
              t.env.on_established ();
              try_output t
            end
        | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
        | Closing | Last_ack | Time_wait ->
            if has Flags.rst then teardown t "connection reset by peer"
            else begin
              (* SYN retransmission in SYN_RCVD: re-ack *)
              if has Flags.syn && t.state = Syn_rcvd then
                emit t ~seq:t.iss ~flags:Flags.(syn + ack) ()
              else begin
                if has Flags.ack then begin
                  if t.state = Syn_rcvd && Seq.gt h.ack t.snd_una then begin
                    set_state t Established;
                    t.env.on_established ()
                  end;
                  process_ack t h
                end;
                let ack_class = process_payload t h.seq payload in
                (* FIN processing: in sequence only *)
                let fin_seq = Seq.add h.seq (String.length payload) in
                let got_fin = has Flags.fin && fin_seq = t.rcv_nxt in
                if got_fin then begin
                  t.rcv_nxt <- Seq.add t.rcv_nxt 1;
                  t.env.on_peer_close ();
                  (match t.state with
                  | Established -> set_state t Close_wait
                  | Fin_wait_1 ->
                      (* if our FIN was acked we'd be in FIN_WAIT_2 already *)
                      set_state t Closing
                  | Fin_wait_2 -> enter_time_wait t
                  | _ -> ())
                end;
                (if got_fin then send_ack t
                 else
                   match ack_class with
                   | `No_payload -> if t.state = Time_wait then send_ack t
                   | `Duplicate | `Out_of_order ->
                       (* immediate ack so the sender sees dup-acks *)
                       send_ack t
                   | `Delivered ->
                       if has Flags.psh then send_ack t
                       else schedule_delack t);
                try_output t
              end
            end
      end

(* Assign connection identity for passive sockets (checksum validation and
   replies need the remote address even before the first segment). *)
let set_remote t ~remote:(rip, rport) =
  t.remote_ip <- rip;
  t.remote_port <- rport

let set_iss t iss = t.iss <- iss

let pp_state ppf s = Fmt.string ppf (state_to_string s)
