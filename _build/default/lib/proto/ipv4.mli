(** IPv4 header codec and helpers. *)

val header_len : int
val default_ttl : int
val proto_icmp : int
val proto_tcp : int
val proto_udp : int

type header = {
  tos : int;
  total_len : int;
  id : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;  (** in 8-byte units *)
  ttl : int;
  proto : int;
  src : Ipaddr.t;
  dst : Ipaddr.t;
}

val make :
  ?tos:int -> ?id:int -> ?dont_fragment:bool -> ?more_fragments:bool ->
  ?frag_offset:int -> ?ttl:int -> proto:int -> src:Ipaddr.t -> dst:Ipaddr.t ->
  payload_len:int -> unit -> header

val parse : _ View.t -> header option
(** Decode (and structurally validate) the header at the start of the
    view.  Does not verify the checksum; see {!checksum_valid}. *)

val write : View.rw View.t -> header -> unit
(** Encode the header, computing its checksum. *)

val checksum_valid : _ View.t -> bool

val encapsulate : Mbuf.rw Mbuf.t -> header -> unit
(** Prepend an IP header to a payload packet. *)

val pseudo_header :
  src:Ipaddr.t -> dst:Ipaddr.t -> proto:int -> len:int -> View.ro View.t
(** The UDP/TCP checksum pseudo-header. *)

val pp_header : Format.formatter -> header -> unit
