(* TCP segment wire format (20-byte header, no options) and 32-bit
   sequence-number arithmetic. *)

let header_len = 20

module Flags = struct
  type t = int

  let fin = 0x01
  let syn = 0x02
  let rst = 0x04
  let psh = 0x08
  let ack = 0x10

  let test t f = t land f <> 0
  let ( + ) = ( lor )

  let pp ppf t =
    let names =
      List.filter_map
        (fun (f, n) -> if test t f then Some n else None)
        [ (syn, "SYN"); (fin, "FIN"); (rst, "RST"); (psh, "PSH"); (ack, "ACK") ]
    in
    Fmt.pf ppf "%s" (String.concat "|" (if names = [] then [ "-" ] else names))
end

module Seq = struct
  (* Sequence numbers are 32-bit and compared modulo 2^32. *)
  type t = int

  let mask = 0xffffffff
  let of_int i = i land mask
  let to_int t = t
  let add t n = (t + n) land mask
  let diff a b = (a - b) land mask
  (* Signed distance interpretations: [lt a b] when a precedes b. *)
  let lt a b = diff a b > 0x7fffffff && a <> b
  let le a b = a = b || lt a b
  let gt a b = lt b a
  let ge a b = le b a
  let max a b = if ge a b then a else b
end

type header = {
  src_port : int;
  dst_port : int;
  seq : Seq.t;
  ack : Seq.t;
  flags : Flags.t;
  window : int;
}

let parse v =
  if View.length v < header_len then None
  else begin
    let data_off = View.get_u8 v 12 lsr 4 in
    if data_off < 5 || data_off * 4 > View.length v then None
    else
      Some
        ( {
            src_port = View.get_u16 v 0;
            dst_port = View.get_u16 v 2;
            seq = Seq.of_int (View.get_u32 v 4);
            ack = Seq.of_int (View.get_u32 v 8);
            flags = View.get_u8 v 13 land 0x3f;
            window = View.get_u16 v 14;
          },
          data_off * 4 )
  end

let write v h =
  View.set_u16 v 0 h.src_port;
  View.set_u16 v 2 h.dst_port;
  View.set_u32 v 4 (Seq.to_int h.seq);
  View.set_u32 v 8 (Seq.to_int h.ack);
  View.set_u8 v 12 (5 lsl 4);
  View.set_u8 v 13 h.flags;
  View.set_u16 v 14 h.window;
  View.set_u16 v 16 0;
  View.set_u16 v 18 0

let compute_cksum ~src ~dst v =
  let pseudo =
    Ipv4.pseudo_header ~src ~dst ~proto:Ipv4.proto_tcp ~len:(View.length v)
  in
  Cksum.of_views [ pseudo; View.ro v ]

(* Build a full segment packet: header + payload, checksummed. *)
let to_packet ~src ~dst h payload =
  let pkt = Mbuf.alloc (header_len + String.length payload) in
  let v = Mbuf.view pkt in
  write v h;
  View.set_string v ~off:header_len payload;
  let c = compute_cksum ~src ~dst (View.ro v) in
  View.set_u16 v 16 c;
  pkt

let valid ~src ~dst v =
  View.length v >= header_len
  &&
  let pseudo =
    Ipv4.pseudo_header ~src ~dst ~proto:Ipv4.proto_tcp ~len:(View.length v)
  in
  Cksum.of_views [ pseudo; View.ro v ] = 0

let pp_header ppf h =
  Fmt.pf ppf "tcp{%d -> %d seq=%d ack=%d %a win=%d}" h.src_port h.dst_port
    (Seq.to_int h.seq) (Seq.to_int h.ack) Flags.pp h.flags h.window
