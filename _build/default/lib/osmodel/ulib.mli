(** User-level protocol libraries — the third execution model (paper
    section 6, [TNML93, MB93]): the kernel only filters and copies;
    protocol processing happens in the application's address space. *)

type t
type usock

type error = [ `Port_in_use of int ]

type counters = {
  mutable rx : int;
  mutable delivered : int;
  mutable filtered_out : int;
  mutable tx : int;
}

val create : Netsim.Host.t -> t
(** Take over the host's first device with an in-kernel packet filter
    front end. *)

val counters : t -> counters
val host_ip : t -> Proto.Ipaddr.t
val prime_arp : t -> Proto.Ipaddr.t -> Proto.Ether.Mac.t -> unit

val udp_bind : t -> port:int -> (usock, [> error ]) result
val udp_set_recv : usock -> (src:Proto.Ipaddr.t * int -> string -> unit) -> unit

val udp_sendto : t -> usock -> dst:Proto.Ipaddr.t * int -> string -> unit
(** Build the full packet at user level, then trap into the kernel to
    transmit. *)
