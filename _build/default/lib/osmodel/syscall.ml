(* User/kernel boundary costs for the DIGITAL UNIX model.  "Each packet
   sent involves a trap and a copy-in as the data moves across the
   user/kernel boundary.  In the worst case, the receive side must
   schedule the user process, copy the packet to userspace, and
   context-switch." *)

let copy_cost (costs : Netsim.Costs.t) len =
  Sim.Stime.add costs.os.copy_fixed
    (Netsim.Costs.per_byte costs.layer.copy_ns_per_byte len)

(* Enter the kernel from user space with [len] bytes of argument data,
   then run [k] in kernel context. *)
let enter cpu (costs : Netsim.Costs.t) ~len k =
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread
    ~cost:(Sim.Stime.add costs.os.trap (copy_cost costs len))
    k

(* Deliver [len] bytes to a blocked user process: wake it, context-switch
   to it, copy the data out, then run the user-level code [k]. *)
let deliver_to_user cpu (costs : Netsim.Costs.t) ~len k =
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread
    ~cost:
      (Sim.Stime.add
         (Sim.Stime.add costs.os.wakeup costs.os.ctx_switch)
         (Sim.Stime.add (copy_cost costs len) costs.layer.app))
    k
