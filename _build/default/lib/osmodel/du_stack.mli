(** The DIGITAL UNIX baseline: monolithic kernel stack + BSD sockets.

    Runs the same wire formats, device models and TCP engine as Plexus;
    differs only in OS structure (kernel-resident protocols, user-level
    applications, traps/copies/context switches at the boundary).  This
    isolates exactly the architectural comparison of the paper's
    evaluation. *)

type t
type udp_sock
type tconn

type error = [ `Port_in_use of int ]

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable not_ours : int;
  mutable no_port : int;
  mutable udp_delivered : int;
  mutable tcp_rx : int;
  mutable echos_answered : int;
}

val create : ?subnets:(Proto.Ipaddr.t * int) list -> Netsim.Host.t -> t
(** Take over every device on the host (one subnet per device; default is
    the host's /24 everywhere). *)

val counters : t -> counters
val host : t -> Netsim.Host.t
val host_ip : t -> Proto.Ipaddr.t

val prime_arp : t -> Proto.Ipaddr.t -> Proto.Ether.Mac.t -> unit

(** {1 UDP sockets} *)

val udp_bind : t -> port:int -> (udp_sock, [> error ]) result
val udp_set_recv : udp_sock -> (src:Proto.Ipaddr.t * int -> string -> unit) -> unit
val udp_port : udp_sock -> int

val udp_sendto :
  t -> udp_sock -> ?checksum:bool -> dst:Proto.Ipaddr.t * int -> string -> unit
(** sendto(2): trap + copy-in + socket and protocol processing. *)

(** {1 TCP sockets} *)

val tcp_listen :
  t -> port:int -> ?cfg:Proto.Tcp.config -> on_accept:(tconn -> unit) ->
  unit -> (unit, [> error ]) result

val tcp_connect :
  t -> ?src_port:int -> dst:Proto.Ipaddr.t * int -> ?cfg:Proto.Tcp.config ->
  unit -> tconn

val tcp_send : t -> tconn -> string -> unit
val tcp_close : t -> tconn -> unit

val tconn_state : tconn -> Proto.Tcp.state
val tconn_tcp : tconn -> Proto.Tcp.t

val on_receive : tconn -> (string -> unit) -> unit
val on_established : tconn -> (unit -> unit) -> unit
val on_peer_close : tconn -> (unit -> unit) -> unit
val on_close : tconn -> (unit -> unit) -> unit
val on_error : tconn -> (string -> unit) -> unit
