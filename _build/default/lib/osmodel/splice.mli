(** User-level TCP splice forwarder (the DIGITAL UNIX side of Figure 7). *)

type t

val create :
  Du_stack.t -> listen_port:int -> backend:Proto.Ipaddr.t * int -> t
(** Listen on [listen_port]; for each accepted connection, open a second
    connection to [backend] and relay bytes both ways at user level. *)

val sessions : t -> int
val forwarded_bytes : t -> int
