(** User/kernel boundary cost helpers for the DIGITAL UNIX model. *)

val copy_cost : Netsim.Costs.t -> int -> Sim.Stime.t
(** Cost of moving [len] bytes across the user/kernel boundary. *)

val enter :
  Sim.Cpu.t -> Netsim.Costs.t -> len:int -> (unit -> unit) -> unit
(** Syscall entry: trap + copy-in of [len] bytes, then kernel code [k]. *)

val deliver_to_user :
  Sim.Cpu.t -> Netsim.Costs.t -> len:int -> (unit -> unit) -> unit
(** Receive-side delivery: wakeup + context switch + copy-out + user
    handler. *)
