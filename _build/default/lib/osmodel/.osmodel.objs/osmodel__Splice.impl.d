lib/osmodel/splice.ml: Du_stack Netsim Proto Sim String
