lib/osmodel/syscall.mli: Netsim Sim
