lib/osmodel/du_stack.ml: Hashtbl List Mbuf Netsim Proto Queue Sim String Syscall View
