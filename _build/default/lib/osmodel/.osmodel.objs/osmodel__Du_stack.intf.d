lib/osmodel/du_stack.mli: Netsim Proto
