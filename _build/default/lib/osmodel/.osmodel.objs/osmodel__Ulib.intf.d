lib/osmodel/ulib.mli: Netsim Proto
