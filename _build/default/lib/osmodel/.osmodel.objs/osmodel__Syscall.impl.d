lib/osmodel/syscall.ml: Netsim Sim
