lib/osmodel/ulib.ml: Hashtbl List Mbuf Netsim Proto Sim String Syscall View
