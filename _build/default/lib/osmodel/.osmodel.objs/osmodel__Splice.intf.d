lib/osmodel/splice.mli: Du_stack Proto
