(* The user-level TCP forwarder the paper compares against (section 5.2):
   "a user-level process that splices together an incoming and outgoing
   socket".

   Every forwarded byte makes two trips through the protocol stack and is
   twice copied across the user/kernel boundary; because the splice
   terminates the TCP connection, end-to-end semantics (connection
   establishment/teardown, window negotiation, congestion control) are
   not preserved — exactly the deficiencies the paper lists. *)

type t = {
  du : Du_stack.t;
  listen_port : int;
  backend : Proto.Ipaddr.t * int;
  costs : Netsim.Costs.t;
  cpu : Sim.Cpu.t;
  mutable sessions : int;
  mutable forwarded_bytes : int;
}

let create du ~listen_port ~backend =
  let host = Du_stack.host du in
  let t =
    {
      du;
      listen_port;
      backend;
      costs = Netsim.Host.costs host;
      cpu = Netsim.Host.cpu host;
      sessions = 0;
      forwarded_bytes = 0;
    }
  in
  let on_accept client =
    t.sessions <- t.sessions + 1;
    let server = Du_stack.tcp_connect du ~dst:t.backend () in
    (* Relay in both directions.  Each relayed chunk costs user-level
       processing on top of the two boundary crossings the socket API
       already charges. *)
    let relay src_conn dst_conn data =
      ignore src_conn;
      t.forwarded_bytes <- t.forwarded_bytes + String.length data;
      Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Thread ~cost:t.costs.Netsim.Costs.splice_user
        (fun () -> Du_stack.tcp_send du dst_conn data)
    in
    Du_stack.on_receive client (fun data -> relay client server data);
    Du_stack.on_receive server (fun data -> relay server client data);
    Du_stack.on_peer_close client (fun () -> Du_stack.tcp_close du server);
    Du_stack.on_peer_close server (fun () -> Du_stack.tcp_close du client)
  in
  match Du_stack.tcp_listen du ~port:listen_port ~on_accept () with
  | Ok () -> t
  | Error (`Port_in_use _) -> invalid_arg "Splice.create: port in use"

let sessions t = t.sessions
let forwarded_bytes t = t.forwarded_bytes
