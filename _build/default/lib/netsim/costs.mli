(** Calibrated cost model for the Alpha-21064-era testbed.

    See costs.ml for the calibration rationale; EXPERIMENTS.md compares
    the resulting measurements with the paper figure by figure. *)

module T = Sim.Stime

type layer = {
  ether_in : T.t;
  ether_out : T.t;
  ip_in : T.t;
  ip_out : T.t;
  udp_in : T.t;
  udp_out : T.t;
  tcp_in : T.t;
  tcp_out : T.t;
  app : T.t;
  cksum_ns_per_byte : float;
  copy_ns_per_byte : float;
}

type os = {
  trap : T.t;
  copy_fixed : T.t;
  ctx_switch : T.t;
  wakeup : T.t;
  socket_in : T.t;
  socket_out : T.t;
}

type t = {
  layer : layer;
  os : os;
  dispatch : Spin.Dispatcher.costs;
  fwd_rewrite : T.t;
  splice_user : T.t;
  disk_dma_setup : T.t;
  disk_intr : T.t;
  fb_ns_per_byte : float;
  ram_ns_per_byte : float;
}

val default : t

val per_byte : float -> int -> T.t
(** [per_byte ns_per_byte len] is the cost of touching [len] bytes. *)

(** {1 Devices} *)

type device = {
  label : string;
  mtu : int;
  bw_bits_per_s : int;
  tx_fixed : T.t;
  rx_fixed : T.t;
  pio_ns_per_byte : float;
  frame_overhead : int -> int;
  prop_delay : T.t;
  txq_limit : int;
  shared_medium : bool;
}

val ethernet : ?fast:bool -> unit -> device
(** 10 Mb/s LANCE Ethernet (DMA).  [~fast:true] is the "faster device
    driver" of section 4.1. *)

val atm : ?fast:bool -> unit -> device
(** 155 Mb/s Fore TCA-100 (programmed I/O, ~53 Mb/s CPU-bound ceiling). *)

val t3 : unit -> device
(** 45 Mb/s DEC T3 (DMA), hosts back to back. *)

val loopback : unit -> device
(** Idealized free device for unit tests. *)
