(** DMA disk model (video-frame source for the Figure 6 experiment). *)

type t

val create :
  ?bw_bytes_per_s:int -> ?access:Sim.Stime.t -> Sim.Engine.t ->
  cpu:Sim.Cpu.t -> costs:Costs.t -> t

val read : t -> len:int -> (string -> unit) -> unit
(** Read [len] bytes; the continuation runs in the completion interrupt.
    Requests are serialized at the disk. *)

val reads : t -> int
val bytes_read : t -> int
val utilization : t -> float
