(* A disk with DMA: reads cost the CPU only a DMA setup and a completion
   interrupt; the transfer itself overlaps computation.  The video server
   (paper section 5.1) streams frames from here. *)

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  costs : Costs.t;
  bw_bytes_per_s : int;
  access : Sim.Stime.t; (* per-request positioning time *)
  mutable busy_until : Sim.Stime.t;
  mutable busy_ns : Sim.Stime.t; (* accumulated service time *)
  mutable reads : int;
  mutable bytes_read : int;
}

let create ?(bw_bytes_per_s = 20_000_000) ?(access = Sim.Stime.us 200) engine
    ~cpu ~costs =
  {
    engine;
    cpu;
    costs;
    bw_bytes_per_s;
    access;
    busy_until = Sim.Stime.zero;
    busy_ns = Sim.Stime.zero;
    reads = 0;
    bytes_read = 0;
  }

let reads t = t.reads
let bytes_read t = t.bytes_read

let utilization t =
  let now = Sim.Engine.now t.engine in
  if Sim.Stime.to_ns now = 0 then 0.
  else
    let frac =
      float_of_int (Sim.Stime.to_ns t.busy_ns)
      /. float_of_int (Sim.Stime.to_ns now)
    in
    min 1. frac

(* Read [len] bytes; [k] receives the data after DMA completion.  The
   content is synthetic (a repeating pattern) — the paper's video clips
   are a data source we do not have, and only sizes and timing matter to
   the experiments. *)
let read t ~len k =
  Sim.Cpu.run t.cpu ~cost:t.costs.Costs.disk_dma_setup (fun () ->
      let now = Sim.Engine.now t.engine in
      let xfer =
        Sim.Stime.of_s_f (float_of_int len /. float_of_int t.bw_bytes_per_s)
      in
      let start = Sim.Stime.max now t.busy_until in
      let done_at = Sim.Stime.add (Sim.Stime.add start t.access) xfer in
      t.busy_ns <- Sim.Stime.add t.busy_ns (Sim.Stime.sub done_at start);
      t.busy_until <- done_at;
      t.reads <- t.reads + 1;
      t.bytes_read <- t.bytes_read + len;
      ignore
        (Sim.Engine.schedule t.engine ~at:done_at (fun () ->
             (* completion interrupt *)
             Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Interrupt
               ~cost:t.costs.Costs.disk_intr (fun () ->
                 k (String.make len 'v')))))
