lib/netsim/network.mli: Costs Dev Host Proto Sim
