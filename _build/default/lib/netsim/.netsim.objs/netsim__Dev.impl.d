lib/netsim/dev.ml: Costs Mbuf Option Pool Printf Proto Sim String
