lib/netsim/dev.mli: Costs Mbuf Pool Proto Sim
