lib/netsim/framebuffer.mli: Costs Sim
