lib/netsim/framebuffer.ml: Costs Sim
