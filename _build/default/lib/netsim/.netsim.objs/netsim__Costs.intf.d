lib/netsim/costs.mli: Sim Spin
