lib/netsim/network.ml: Dev Host
