lib/netsim/costs.ml: Sim Spin
