lib/netsim/disk.mli: Costs Sim
