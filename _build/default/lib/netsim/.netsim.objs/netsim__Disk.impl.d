lib/netsim/disk.ml: Costs Sim String
