lib/netsim/host.mli: Costs Dev Proto Sim Spin
