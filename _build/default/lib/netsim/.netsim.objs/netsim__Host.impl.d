lib/netsim/host.ml: Costs Dev List Printf Proto Sim Spin
