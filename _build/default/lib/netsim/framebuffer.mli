(** Framebuffer device: CPU-charged slow writes (~10x RAM). *)

type t

val create : cpu:Sim.Cpu.t -> costs:Costs.t -> t

val write : t -> ?prio:Sim.Cpu.prio -> len:int -> (unit -> unit) -> unit
(** Display [len] bytes; charges the CPU for device-memory writes. *)

val bytes_written : t -> int
val frames : t -> int
