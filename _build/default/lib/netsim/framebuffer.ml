(* The SFB framebuffer: memory-mapped device memory whose writes are about
   10x slower than RAM (paper section 5.1: the video client is limited by
   framebuffer write bandwidth, not by the OS). *)

type t = {
  cpu : Sim.Cpu.t;
  ns_per_byte : float;
  mutable bytes_written : int;
  mutable frames : int;
}

let create ~cpu ~costs =
  {
    cpu;
    ns_per_byte = costs.Costs.fb_ns_per_byte;
    bytes_written = 0;
    frames = 0;
  }

let write t ?(prio = Sim.Cpu.Thread) ~len k =
  let cost = Costs.per_byte t.ns_per_byte len in
  Sim.Cpu.run t.cpu ~prio ~cost (fun () ->
      t.bytes_written <- t.bytes_written + len;
      t.frames <- t.frames + 1;
      k ())

let bytes_written t = t.bytes_written
let frames t = t.frames
