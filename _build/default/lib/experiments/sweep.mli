(** Latency vs. message size sweep (companion to Figure 5). *)

type point = { size : int; plexus_us : float; du_us : float }
type row = { device : string; points : point list }

val sizes : int list
val run : ?iters:int -> unit -> row list
val print : ?iters:int -> unit -> row list
