(* Section 3.3 microbenchmarks: active messages at interrupt level.

   The AM extension is dynamically linked through the real SPIN pipeline
   (compile -> sign -> link against a restricted domain), its guard
   demultiplexes on the EtherType, and its handler runs as an EPHEMERAL
   program directly in the receive interrupt — "protocols which require
   little processing for each incoming packet exhibit the best
   performance when they can run at interrupt level". *)

type am_result = {
  interrupt_rtt : float; (* us *)
  thread_rtt : float;
  udp_rtt : float;       (* the same wire, through the full UDP stack *)
}

let am_rtt ?(mode = Spin.Dispatcher.Interrupt) ?(payload_len = 8) ?(warmup = 10)
    ?(iters = 100) params =
  let p = Common.plexus_pair params in
  Plexus.Stack.set_delivery p.Common.a mode;
  Plexus.Stack.set_delivery p.Common.b mode;
  (* Responder on B: echo from interrupt context. *)
  let _bctx, bext =
    Apps.Active_messages.echo_extension ~name:"am-echo"
      ~reply_cost:(Sim.Stime.us 2) ()
  in
  (match Plexus.Stack.link p.Common.b bext with
  | Ok _ -> ()
  | Error f -> failwith (Fmt.str "%a" Spin.Extension.pp_failure f));
  (* Pinger on A: handler 1 records the round trip and fires the next. *)
  let series = Sim.Stats.Series.create () in
  let remaining = ref (warmup + iters) in
  let sent_at = ref Sim.Stime.zero in
  let next = ref (fun () -> ()) in
  let handlers ctx idx ~src payload =
    ignore ctx;
    ignore src;
    ignore payload;
    if idx = 1 then
      [
        Spin.Ephemeral.work ~label:"am-pong" ~cost:(Sim.Stime.us 1) (fun () ->
            let rtt = Sim.Stime.sub (Sim.Engine.now p.Common.engine) !sent_at in
            if !remaining < iters then Sim.Stats.Series.add_time series rtt;
            !next ());
      ]
    else Spin.Ephemeral.nothing
  in
  let actx, aext =
    Apps.Active_messages.extension ~name:"am-ping" ~handlers ()
  in
  (match Plexus.Stack.link p.Common.a aext with
  | Ok _ -> ()
  | Error f -> failwith (Fmt.str "%a" Spin.Extension.pp_failure f));
  let dst = Plexus.Ether_mgr.mac (Plexus.Stack.ether p.Common.b) in
  (next :=
     fun () ->
       if !remaining > 0 then begin
         decr remaining;
         sent_at := Sim.Engine.now p.Common.engine;
         Apps.Active_messages.send actx ~dst ~handler:0
           (String.make payload_len 'a')
       end);
  !next ();
  Sim.Engine.run p.Common.engine ~max_events:10_000_000;
  Sim.Stats.Series.mean series

let run ?(params = Netsim.Costs.ethernet ()) ?iters () =
  {
    interrupt_rtt = am_rtt ?iters ~mode:Spin.Dispatcher.Interrupt params;
    thread_rtt = am_rtt ?iters ~mode:Spin.Dispatcher.Thread params;
    udp_rtt = Sim.Stats.Series.mean (Common.udp_echo_plexus ?iters params);
  }

(* Budget termination (section 3.3): a handler whose ephemeral program
   exceeds its time allotment is terminated between actions; committed
   work survives, the rest is discarded. *)
type termination_result = {
  messages : int;
  terminations : int;
  committed_actions : int;
}

let budget_termination ?(messages = 50) ?(actions = 10)
    ?(action_cost = Sim.Stime.us 5) ?(budget = Sim.Stime.us 22) () =
  let p = Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let committed = Sim.Stats.Counter.create () in
  let handlers _ctx idx ~src:_ _payload =
    ignore idx;
    List.init actions (fun i ->
        Spin.Ephemeral.work
          ~label:(Printf.sprintf "step%d" i)
          ~cost:action_cost
          (fun () -> Sim.Stats.Counter.incr committed))
  in
  let _ctx, ext =
    Apps.Active_messages.extension ~name:"am-budget" ~budget ~handlers ()
  in
  (match Plexus.Stack.link p.Common.b ext with
  | Ok _ -> ()
  | Error f -> failwith (Fmt.str "%a" Spin.Extension.pp_failure f));
  let actx, aext =
    Apps.Active_messages.extension ~name:"am-src"
      ~handlers:(fun _ _ ~src:_ _ -> Spin.Ephemeral.nothing)
      ()
  in
  (match Plexus.Stack.link p.Common.a aext with
  | Ok _ -> ()
  | Error f -> failwith (Fmt.str "%a" Spin.Extension.pp_failure f));
  let dst = Plexus.Ether_mgr.mac (Plexus.Stack.ether p.Common.b) in
  for _ = 1 to messages do
    Apps.Active_messages.send actx ~dst ~handler:0 "x"
  done;
  Sim.Engine.run p.Common.engine ~max_events:10_000_000;
  let disp =
    Spin.Kernel.dispatcher (Netsim.Host.kernel (Plexus.Stack.host p.Common.b))
  in
  {
    messages;
    terminations = Spin.Dispatcher.terminations disp;
    committed_actions = Sim.Stats.Counter.get committed;
  }

let print ?params ?iters () =
  Common.print_header
    "Section 3.3: active messages at interrupt level (8-byte RTT, microseconds)";
  let r = run ?params ?iters () in
  Printf.printf "  AM, interrupt-level EPHEMERAL handler : %8.1f us\n"
    r.interrupt_rtt;
  Printf.printf "  AM, thread-per-raise delivery         : %8.1f us\n"
    r.thread_rtt;
  Printf.printf "  UDP through the full stack            : %8.1f us\n" r.udp_rtt;
  let tr = budget_termination () in
  Printf.printf
    "  Budget termination: %d msgs, %d handlers terminated, %d/%d actions committed\n"
    tr.messages tr.terminations tr.committed_actions (tr.messages * 10);
  r
