(* Figure 7: TCP redirection latency — the in-kernel Plexus forwarder
   against the DIGITAL UNIX user-level splice.

   Topology: client -- middle -- server.  The client opens a TCP
   connection to the middle host's forwarded port and ping-pongs a
   message with the echo server behind it; we report the mean
   application-level round trip per payload size.  The Plexus forwarder
   rewrites headers below the transport layer (end-to-end TCP semantics
   preserved); the splice terminates TCP at user level, costing two full
   stack traversals and two boundary crossings per packet. *)

let service_port = 8080

type row = { payload : int; plexus_us : float; du_us : float }

let sizes = [ 64; 256; 512; 1024; 1460 ]

(* Drive one echo ping-pong session; returns mean steady-state RTT. *)
let echo_driver ~engine ~send ~on_reply:set_on_reply ~payload_len ~warmup
    ~iters =
  let series = Sim.Stats.Series.create () in
  let payload = String.make payload_len 'p' in
  let remaining = ref (warmup + iters) in
  let got = ref 0 in
  let sent_at = ref Sim.Stime.zero in
  let send_next () =
    if !remaining > 0 then begin
      decr remaining;
      got := 0;
      sent_at := Sim.Engine.now engine;
      send payload
    end
  in
  set_on_reply (fun data ->
      got := !got + String.length data;
      if !got >= payload_len then begin
        let rtt = Sim.Stime.sub (Sim.Engine.now engine) !sent_at in
        if !remaining < iters then Sim.Stats.Series.add_time series rtt;
        send_next ()
      end);
  (send_next, series)

let plexus_rtt ?(warmup = 5) ?(iters = 50) ~payload_len params =
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine params
      ~client:("client", Common.ip_client)
      ~middle:("middle", Common.ip_middle)
      ~server:("server", Common.ip_server)
  in
  let client = Plexus.Stack.build c.Netsim.Network.host in
  let middle =
    Plexus.Stack.build
      ~subnets:[ (Common.net1, 24); (Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  let server = Plexus.Stack.build s.Netsim.Network.host in
  (* steady-state ARP *)
  Plexus.Arp_mgr.prime (Plexus.Stack.arp client) Common.ip_middle
    (Netsim.Dev.mac m1.Netsim.Network.dev);
  Plexus.Arp_mgr.prime (List.nth (Plexus.Stack.arps middle) 0) Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  Plexus.Arp_mgr.prime (List.nth (Plexus.Stack.arps middle) 1) Common.ip_server
    (Netsim.Dev.mac s.Netsim.Network.dev);
  Plexus.Arp_mgr.prime (Plexus.Stack.arp server) Common.ip_middle
    (Netsim.Dev.mac m2.Netsim.Network.dev);
  (* The middle host's standard TCP cedes the forwarded ports. *)
  Plexus.Tcp_mgr.exclude_ports (Plexus.Stack.tcp middle) [ service_port ];
  Plexus.Tcp_mgr.exclude_src_ports (Plexus.Stack.tcp middle) [ service_port ];
  let (_fwd : Apps.Forwarder.t) =
    Apps.Forwarder.create middle ~listen_port:service_port
      ~backend:(Common.ip_server, service_port)
  in
  (* echo server behind the forwarder *)
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp server) ~owner:"echo"
       ~port:service_port
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             Plexus.Tcp_mgr.send conn data))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  match
    Plexus.Tcp_mgr.connect (Plexus.Stack.tcp client) ~owner:"pinger"
      ~dst:(Common.ip_middle, service_port) ()
  with
  | Error _ -> assert false
  | Ok conn ->
      let on_reply = ref (fun (_ : string) -> ()) in
      Plexus.Tcp_mgr.on_receive conn (fun d -> !on_reply d);
      let send_next, series =
        echo_driver ~engine
          ~send:(fun data -> Plexus.Tcp_mgr.send conn data)
          ~on_reply:(fun f -> on_reply := f)
          ~payload_len ~warmup ~iters
      in
      Plexus.Tcp_mgr.on_established conn (fun () -> send_next ());
      Sim.Engine.run engine ~until:(Sim.Stime.s 120) ~max_events:50_000_000;
      Sim.Stats.Series.mean series

let du_rtt ?(warmup = 5) ?(iters = 50) ~payload_len params =
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine params
      ~client:("client", Common.ip_client)
      ~middle:("middle", Common.ip_middle)
      ~server:("server", Common.ip_server)
  in
  let client = Osmodel.Du_stack.create c.Netsim.Network.host in
  let middle =
    Osmodel.Du_stack.create
      ~subnets:[ (Common.net1, 24); (Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  let server = Osmodel.Du_stack.create s.Netsim.Network.host in
  Osmodel.Du_stack.prime_arp client Common.ip_middle
    (Netsim.Dev.mac m1.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp middle Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp middle Common.ip_server
    (Netsim.Dev.mac s.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp server Common.ip_middle
    (Netsim.Dev.mac m2.Netsim.Network.dev);
  let (_splice : Osmodel.Splice.t) =
    Osmodel.Splice.create middle ~listen_port:service_port
      ~backend:(Common.ip_server, service_port)
  in
  (match
     Osmodel.Du_stack.tcp_listen server ~port:service_port
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             Osmodel.Du_stack.tcp_send server conn data))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let conn =
    Osmodel.Du_stack.tcp_connect client ~dst:(Common.ip_middle, service_port) ()
  in
  let on_reply = ref (fun (_ : string) -> ()) in
  Osmodel.Du_stack.on_receive conn (fun d -> !on_reply d);
  let send_next, series =
    echo_driver ~engine
      ~send:(fun data -> Osmodel.Du_stack.tcp_send client conn data)
      ~on_reply:(fun f -> on_reply := f)
      ~payload_len ~warmup ~iters
  in
  Osmodel.Du_stack.on_established conn (fun () -> send_next ());
  Sim.Engine.run engine ~until:(Sim.Stime.s 120) ~max_events:50_000_000;
  Sim.Stats.Series.mean series

let run ?(params = Netsim.Costs.ethernet ()) ?warmup ?iters () =
  List.map
    (fun payload ->
      {
        payload;
        plexus_us = plexus_rtt ?warmup ?iters ~payload_len:payload params;
        du_us = du_rtt ?warmup ?iters ~payload_len:payload params;
      })
    sizes

let print ?params ?warmup ?iters () =
  Common.print_header
    "Figure 7: TCP redirection latency through a forwarder (Ethernet, microseconds RTT)";
  Printf.printf "%10s %12s %12s %8s\n" "payload" "plexus" "du-splice" "ratio";
  let rows = run ?params ?warmup ?iters () in
  List.iter
    (fun r ->
      Printf.printf "%10d %12.1f %12.1f %8.2f\n" r.payload r.plexus_us r.du_us
        (r.du_us /. r.plexus_us))
    rows;
  Printf.printf
    "(paper: the user-level splice cannot preserve end-to-end TCP semantics and\n\
    \ makes two boundary crossings per packet; Plexus forwards below transport)\n";
  rows
