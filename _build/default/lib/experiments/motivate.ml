(* The paper's section 1.1 motivation, measured.

   "Applications that perform large bulk data transfers over wide area
   networks are best served by a protocol implementation that provides
   large local buffers.  On the other hand, a connection-oriented
   protocol that is used for many small transactions is best served by
   an implementation that minimizes connection lifetime."

   Plexus's point is that one stock implementation cannot serve both;
   because the TCP configuration is per-connection (an application-
   specific protocol choice), we can measure each claim directly. *)

(* A long-haul link: T3 bandwidth with 30 ms of one-way propagation.  The
   bandwidth-delay product (~340 KB) dwarfs small windows. *)
let wan_device () =
  let base = Netsim.Costs.t3 () in
  { base with Netsim.Costs.label = "t3-wan"; prop_delay = Sim.Stime.ms 30 }

type wan_point = { window : int; mbps : float }

(* --- claim 1: bulk transfer over a WAN needs big buffers ------------- *)

let wan_transfer ~window =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (wan_device ()) ~a:("src", Common.ip_a)
      ~b:("dst", Common.ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  let cfg = Proto.Tcp.default_config ~window () in
  let bytes = 2_000_000 in
  let received = ref 0 in
  let start_at = ref Sim.Stime.zero in
  let done_at = ref None in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp b) ~owner:"sink" ~port:5001 ~cfg
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             received := !received + String.length data;
             if !received >= bytes && !done_at = None then
               done_at := Some (Sim.Engine.now engine)))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp a) ~owner:"src"
       ~dst:(Common.ip_b, 5001) ~cfg ()
   with
  | Error _ -> assert false
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          start_at := Sim.Engine.now engine;
          Plexus.Tcp_mgr.send conn (String.make bytes 'w')));
  Sim.Engine.run engine ~until:(Sim.Stime.s 300) ~max_events:50_000_000;
  match !done_at with
  | None -> nan
  | Some t ->
      Common.mbps ~bytes ~elapsed_us:(Sim.Stime.to_us (Sim.Stime.sub t !start_at))

let wan_windows ?(windows = [ 8_192; 16_384; 65_535 ]) () =
  List.map (fun window -> { window; mbps = wan_transfer ~window }) windows

(* --- claim 2: small transactions want a tuned connection -------------- *)

type txn_result = { stock_us : float; tuned_us : float }

let reply_len = 5_840 (* four full segments: the initial window matters *)

(* One transaction: connect, send a 100-byte request, get a multi-segment
   reply, close — over the long-haul link, where round trips dominate
   connection lifetime.  Mean per-transaction completion time over [n]
   runs. *)
let transaction_time ~cfg ~n =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (wan_device ())
      ~a:("client", Common.ip_a) ~b:("server", Common.ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp b) ~owner:"txn-server" ~port:5001
       ~cfg
       ~on_accept:(fun conn ->
         let got = ref 0 in
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             got := !got + String.length data;
             if !got >= 100 then begin
               Plexus.Tcp_mgr.send conn (String.make reply_len 'r');
               Plexus.Tcp_mgr.close conn
             end))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let series = Sim.Stats.Series.create () in
  let rec transaction i =
    if i < n then begin
      let t0 = Sim.Engine.now engine in
      match
        Plexus.Tcp_mgr.connect (Plexus.Stack.tcp a) ~owner:"txn-client"
          ~dst:(Common.ip_b, 5001) ~cfg ()
      with
      | Error _ -> ()
      | Ok conn ->
          let got = ref 0 in
          Plexus.Tcp_mgr.on_established conn (fun () ->
              Plexus.Tcp_mgr.send conn (String.make 100 'q'));
          Plexus.Tcp_mgr.on_receive conn (fun data ->
              got := !got + String.length data;
              if !got >= reply_len then begin
                Sim.Stats.Series.add_time series
                  (Sim.Stime.sub (Sim.Engine.now engine) t0);
                Plexus.Tcp_mgr.close conn;
                (* next transaction on a fresh connection *)
                ignore
                  (Sim.Engine.schedule_in engine ~delay:(Sim.Stime.ms 1)
                     (fun () -> transaction (i + 1)))
              end)
    end
  in
  transaction 0;
  Sim.Engine.run engine ~until:(Sim.Stime.s 600) ~max_events:50_000_000;
  Sim.Stats.Series.mean series

let transactions ?(n = 30) () =
  let stock = Proto.Tcp.default_config () in
  (* The application-specific variant: acknowledge everything
     immediately (the request/response fits in one segment anyway) and
     open with a larger initial window, trimming connection lifetime. *)
  let tuned =
    {
      (Proto.Tcp.default_config ~initial_window_segments:4 ()) with
      Proto.Tcp.delack_segments = 1;
    }
  in
  {
    stock_us = transaction_time ~cfg:stock ~n;
    tuned_us = transaction_time ~cfg:tuned ~n;
  }

(* --- claim 3: protocols specific to the application itself ------------ *)

(* The same 500 KB, same lossy link, two protocols: stock TCP vs the
   NACK-based application-level-framing blast (Apps.Blast).  TCP's
   sender-driven timeouts and in-order delivery pay heavily for loss;
   the blast recovers exactly the lost frames in one receiver-driven
   round. *)
type blast_result = { tcp_ms : float; blast_ms : float; blast_retx : int }

let blast_vs_tcp ?(loss = 0.02) ?(bytes = 500_000) () =
  let mk () =
    let engine = Sim.Engine.create ~seed:7 () in
    let ea, eb =
      Netsim.Network.pair engine (Netsim.Costs.t3 ()) ~a:("src", Common.ip_a)
        ~b:("dst", Common.ip_b)
    in
    let a = Plexus.Stack.build ea.Netsim.Network.host in
    let b = Plexus.Stack.build eb.Netsim.Network.host in
    Plexus.Stack.prime_arp a b;
    Netsim.Dev.set_loss ea.Netsim.Network.dev loss;
    Netsim.Dev.set_loss eb.Netsim.Network.dev loss;
    (engine, a, b)
  in
  let data = String.init bytes (fun i -> Char.chr (i mod 251)) in
  (* TCP *)
  let tcp_ms =
    let engine, a, b = mk () in
    let received = ref 0 in
    let done_at = ref None in
    (match
       Plexus.Tcp_mgr.listen (Plexus.Stack.tcp b) ~owner:"sink" ~port:5001
         ~on_accept:(fun conn ->
           Plexus.Tcp_mgr.on_receive conn (fun d ->
               received := !received + String.length d;
               if !received >= bytes && !done_at = None then
                 done_at := Some (Sim.Engine.now engine)))
         ()
     with
    | Ok () -> ()
    | Error _ -> assert false);
    (match
       Plexus.Tcp_mgr.connect (Plexus.Stack.tcp a) ~owner:"src"
         ~dst:(Common.ip_b, 5001) ()
     with
    | Ok conn ->
        Plexus.Tcp_mgr.on_established conn (fun () ->
            Plexus.Tcp_mgr.send conn data)
    | Error _ -> assert false);
    Sim.Engine.run engine ~until:(Sim.Stime.s 600) ~max_events:50_000_000;
    match !done_at with Some t -> Sim.Stime.to_ms t | None -> nan
  in
  (* Blast *)
  let blast_ms, blast_retx =
    let engine, a, b = mk () in
    let done_at = ref None in
    let _r =
      Apps.Blast.receive b ~port:4000 ~on_complete:(fun d ->
          if d = data && !done_at = None then
            done_at := Some (Sim.Engine.now engine))
    in
    let s =
      Apps.Blast.send a ~port:4001 ~dst:(Common.ip_b, 4000) ~chunk:1400 ~data
        ~on_complete:(fun () -> ())
    in
    Sim.Engine.run engine ~until:(Sim.Stime.s 600) ~max_events:50_000_000;
    ( (match !done_at with Some t -> Sim.Stime.to_ms t | None -> nan),
      Apps.Blast.retransmissions s )
  in
  { tcp_ms; blast_ms; blast_retx }

let print () =
  Common.print_header
    "Section 1.1 motivation: WAN bulk transfer vs. receive-buffer size (T3 + 30ms)";
  Printf.printf "%12s %10s %28s\n" "window(B)" "Mb/s" "window/RTT ceiling (Mb/s)";
  List.iter
    (fun p ->
      Printf.printf "%12d %10.2f %28.2f\n" p.window p.mbps
        (float_of_int p.window *. 8. /. 60_000.))
    (wan_windows ());
  Common.print_header
    "Section 1.1 motivation: small-transaction latency, stock vs. tuned TCP (T3 + 30ms)";
  let t = transactions () in
  Printf.printf
    "  stock TCP: %.0f us/transaction    application-specific TCP: %.0f us (-%.0f%%)\n"
    t.stock_us t.tuned_us
    (100. *. (t.stock_us -. t.tuned_us) /. t.stock_us);
  Common.print_header
    "A protocol specific to the application: 500KB over a 2%-lossy T3";
  let b = blast_vs_tcp () in
  Printf.printf
    "  stock TCP: %.0f ms    NACK-based blast (ALF): %.0f ms (%d frames resent)\n"
    b.tcp_ms b.blast_ms b.blast_retx
