(* Overload behaviour: what interrupt-level protocol processing costs
   the rest of the system.

   Section 3.3 runs protocols at interrupt level for latency.  The
   classic risk (Mogul & Ramakrishnan's receive livelock) is that under
   overload, interrupt-priority packet work starves everything below it.
   This experiment blasts UDP at a receiver that is also running a
   thread-priority compute application, and measures the application's
   progress as offered load rises — once with the graph in interrupt
   mode, once in thread mode.  The measured shape: interrupt delivery's
   lower per-packet cost preserves more compute capacity up to its
   saturation point, beyond which the host livelocks completely (zero
   application progress); thread delivery pays a spawn per invocation,
   saturates earlier, but keeps a trickle of application progress even
   under extreme overload.  A real deployment adds mitigation (polling,
   budgets — Plexus's EPHEMERAL time limits are a piece of that); the
   experiment quantifies the trade-off. *)

type point = {
  offered_pps : int;
  interrupt_progress : float; (* compute iterations/s under interrupt mode *)
  thread_progress : float;
}

let compute_unit = Sim.Stime.us 100

(* A pre-built valid frame: Ethernet + IP + UDP to the victim port. *)
let build_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~port =
  let pkt = Mbuf.of_string (String.make 18 'l') in
  Proto.Udp.encapsulate pkt ~src:src_ip ~dst:dst_ip ~src_port:5000
    ~dst_port:port;
  Proto.Ipv4.encapsulate pkt
    (Proto.Ipv4.make ~proto:Proto.Ipv4.proto_udp ~src:src_ip ~dst:dst_ip
       ~payload_len:(Mbuf.length pkt) ());
  Proto.Ether.encapsulate pkt
    { Proto.Ether.dst = dst_mac; src = src_mac; etype = Proto.Ether.etype_ip };
  Mbuf.to_string pkt

let run_one ?(poisson = false) ~mode ~offered_pps () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ())
      ~a:("blaster", Common.ip_a) ~b:("victim", Common.ip_b)
  in
  let victim = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.set_delivery victim mode;
  let udp = Plexus.Stack.udp victim in
  (match Plexus.Udp_mgr.bind udp ~owner:"sink" ~port:9 with
  | Ok ep ->
      let (_ : unit -> unit) = Plexus.Udp_mgr.install_recv udp ep (fun _ -> ()) in
      ()
  | Error _ -> assert false);
  (* the compute application: thread-priority work units, back to back *)
  let victim_cpu = Netsim.Host.cpu eb.Netsim.Network.host in
  let iterations = ref 0 in
  let horizon = Sim.Stime.add (Sim.Stime.ms 200) (Sim.Stime.s 1) in
  let rec compute () =
    if Sim.Stime.compare (Sim.Engine.now engine) horizon < 0 then
      Sim.Cpu.run victim_cpu ~prio:Sim.Cpu.Thread ~cost:compute_unit (fun () ->
          incr iterations;
          compute ())
  in
  compute ();
  (* the blaster: frames injected at the device at a fixed rate,
     bypassing the sender's protocol stack so only the victim is
     stressed *)
  let frame =
    build_frame
      ~src_mac:(Netsim.Dev.mac ea.Netsim.Network.dev)
      ~dst_mac:(Netsim.Dev.mac eb.Netsim.Network.dev)
      ~src_ip:Common.ip_a ~dst_ip:Common.ip_b ~port:9
  in
  (* deterministic spacing by default; Poisson arrivals on request
     (burstiness makes overload bite sooner) *)
  let rng = Sim.Engine.rng engine in
  let mean_period_ns = 1_000_000_000 / offered_pps in
  let next_gap () =
    if poisson then
      Sim.Stime.ns
        (max 1
           (int_of_float
              (Sim.Rng.exponential rng ~mean:(float_of_int mean_period_ns))))
    else Sim.Stime.ns mean_period_ns
  in
  let rec blast () =
    if Sim.Stime.compare (Sim.Engine.now engine) horizon < 0 then begin
      Netsim.Dev.transmit ea.Netsim.Network.dev (Mbuf.of_string frame);
      ignore (Sim.Engine.schedule_in engine ~delay:(next_gap ()) blast)
    end
  in
  blast ();
  (* measure compute progress over the window after warmup *)
  let counted = ref 0 in
  ignore
    (Sim.Engine.schedule engine ~at:(Sim.Stime.ms 200) (fun () ->
         counted := !iterations));
  Sim.Engine.run engine ~until:horizon ~max_events:50_000_000;
  float_of_int (!iterations - !counted)

let default_rates = [ 1_000; 2_000; 4_000; 8_000; 12_000 ]

let run ?poisson ?(rates = default_rates) () =
  List.map
    (fun offered_pps ->
      {
        offered_pps;
        interrupt_progress =
          run_one ?poisson ~mode:Spin.Dispatcher.Interrupt ~offered_pps ();
        thread_progress =
          run_one ?poisson ~mode:Spin.Dispatcher.Thread ~offered_pps ();
      })
    rates

let print ?poisson ?rates () =
  Common.print_header
    "Overload: compute progress (iterations/s) under a UDP blast";
  Printf.printf "%14s %18s %18s\n" "offered pkt/s" "interrupt-mode"
    "thread-mode";
  let rows = run ?poisson ?rates () in
  List.iter
    (fun p ->
      Printf.printf "%14d %18.0f %18.0f\n" p.offered_pps p.interrupt_progress
        p.thread_progress)
    rows;
  Printf.printf
    "(idle ceiling %.0f it/s.  Interrupt delivery has lower per-packet cost, so it\n\
    \ preserves more compute until saturation — then collapses to a hard receive\n\
    \ livelock (0).  Thread delivery pays a spawn per handler, saturates earlier,\n\
    \ but never fully locks out the application.)\n"
    (1e6 /. Sim.Stime.to_us compute_unit);
  rows
