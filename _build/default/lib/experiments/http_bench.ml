(* Application-level comparison on the paper's closing demo: HTTP GET
   latency with the server as a Plexus extension vs. a DIGITAL UNIX
   user process.  The whole request crosses the network twice and the
   server's OS structure once each way — a compact end-to-end summary of
   the architecture's value for small-transaction services. *)

type result = { plexus_us : float; du_us : float; body_len : int }

let body = String.concat "" (List.init 20 (fun _ -> "0123456789abcdef"))
let path = "/bench"

let plexus_get_latency ?(warmup = 3) ?(iters = 30) params =
  let p = Common.plexus_pair params in
  let engine = p.Common.engine in
  let routes = Hashtbl.create 4 in
  Hashtbl.replace routes path body;
  let _server = Apps.Http_server.create ~port:80 ~routes p.Common.b in
  let series = Sim.Stats.Series.create () in
  let remaining = ref (warmup + iters) in
  let rec request () =
    if !remaining > 0 then begin
      decr remaining;
      let mine = !remaining < iters in
      let t0 = Sim.Engine.now engine in
      Apps.Http_client.get p.Common.a ~dst:(Common.ip_b, 80) ~path (fun r ->
          (match r with
          | Some r when r.Apps.Http_client.status = 200 ->
              if mine then
                Sim.Stats.Series.add_time series
                  (Sim.Stime.sub (Sim.Engine.now engine) t0)
          | _ -> ());
          ignore (Sim.Engine.schedule_in engine ~delay:(Sim.Stime.ms 1) request))
    end
  in
  request ();
  Sim.Engine.run engine ~until:(Sim.Stime.s 600) ~max_events:50_000_000;
  Sim.Stats.Series.mean series

(* The same server as a DIGITAL UNIX user process over sockets. *)
let du_get_latency ?(warmup = 3) ?(iters = 30) params =
  let p = Common.du_pair params in
  let engine = p.Common.du_engine in
  let du_b = p.Common.dub and du_a = p.Common.dua in
  (match
     Osmodel.Du_stack.tcp_listen du_b ~port:80
       ~on_accept:(fun conn ->
         let buf = Buffer.create 128 in
         Osmodel.Du_stack.on_receive conn (fun data ->
             Buffer.add_string buf data;
             match Proto.Str_find.find_sub (Buffer.contents buf) "\r\n\r\n" with
             | None -> ()
             | Some _ ->
                 (match Proto.Http.parse_request (Buffer.contents buf) with
                 | Some req when req.Proto.Http.path = path ->
                     Osmodel.Du_stack.tcp_send du_b conn
                       (Proto.Http.response_to_string (Proto.Http.ok body))
                 | _ ->
                     Osmodel.Du_stack.tcp_send du_b conn
                       (Proto.Http.response_to_string Proto.Http.not_found));
                 Osmodel.Du_stack.tcp_close du_b conn))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let series = Sim.Stats.Series.create () in
  let remaining = ref (warmup + iters) in
  let rec request () =
    if !remaining > 0 then begin
      decr remaining;
      let mine = !remaining < iters in
      let t0 = Sim.Engine.now engine in
      let conn = Osmodel.Du_stack.tcp_connect du_a ~dst:(Common.ip_b, 80) () in
      let buf = Buffer.create 128 in
      Osmodel.Du_stack.on_established conn (fun () ->
          Osmodel.Du_stack.tcp_send du_a conn
            (Proto.Http.request_to_string
               { Proto.Http.meth = "GET"; path; headers = [] }));
      Osmodel.Du_stack.on_receive conn (fun data -> Buffer.add_string buf data);
      let finished = ref false in
      let finish () =
        if not !finished then begin
          finished := true;
          (match Proto.Http.parse_response (Buffer.contents buf) with
          | Some r when r.Proto.Http.status = 200 ->
              if mine then
                Sim.Stats.Series.add_time series
                  (Sim.Stime.sub (Sim.Engine.now engine) t0)
          | _ -> ());
          ignore (Sim.Engine.schedule_in engine ~delay:(Sim.Stime.ms 1) request)
        end
      in
      Osmodel.Du_stack.on_peer_close conn (fun () ->
          Osmodel.Du_stack.tcp_close du_a conn);
      Osmodel.Du_stack.on_close conn finish
    end
  in
  request ();
  Sim.Engine.run engine ~until:(Sim.Stime.s 600) ~max_events:50_000_000;
  Sim.Stats.Series.mean series

let run ?(params = Netsim.Costs.ethernet ()) ?warmup ?iters () =
  {
    plexus_us = plexus_get_latency ?warmup ?iters params;
    du_us = du_get_latency ?warmup ?iters params;
    body_len = String.length body;
  }

let print ?params ?warmup ?iters () =
  Common.print_header
    "HTTP GET latency: server as Plexus extension vs. DIGITAL UNIX process";
  let r = run ?params ?warmup ?iters () in
  Printf.printf
    "  %d-byte body over Ethernet: plexus %.0f us/GET, digital-unix %.0f us/GET (%.2fx)\n"
    r.body_len r.plexus_us r.du_us (r.du_us /. r.plexus_us);
  r
