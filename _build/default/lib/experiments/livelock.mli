(** Receive-overload experiment: interrupt-level protocol processing vs.
    thread-priority application progress. *)

type point = {
  offered_pps : int;
  interrupt_progress : float;
  thread_progress : float;
}

val compute_unit : Sim.Stime.t
val default_rates : int list

val run_one :
  ?poisson:bool -> mode:Spin.Dispatcher.delivery -> offered_pps:int -> unit ->
  float
(** Compute iterations completed per second of simulated time while the
    host receives the given UDP packet rate ([~poisson:true] draws
    exponential inter-arrivals instead of a fixed period). *)

val run : ?poisson:bool -> ?rates:int list -> unit -> point list
val print : ?poisson:bool -> ?rates:int list -> unit -> point list
