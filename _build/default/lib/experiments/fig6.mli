(** Figure 6: video server CPU utilization vs. number of streams (T3). *)

type sample = {
  streams : int;
  spin_util : float;
  du_util : float;
  net_mbps : float;
}

val fps : int
val frame_len : int

val plexus_run : int -> float * float
(** [(server_utilization, achieved_mbps)] for the given stream count. *)

val du_run : int -> float

type client_sample = {
  c_streams : int;
  plexus_util : float;
  du_util : float;
  plexus_fb_share : float;
}

val client : ?streams:int -> unit -> client_sample
(** The §5.1 client-side finding: similar utilization on both systems,
    dominated by framebuffer writes. *)

val run : ?stream_counts:int list -> unit -> sample list
val print : ?stream_counts:int list -> unit -> sample list
