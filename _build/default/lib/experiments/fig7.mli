(** Figure 7: TCP redirection latency — in-kernel forwarder vs. splice. *)

type row = { payload : int; plexus_us : float; du_us : float }

val sizes : int list

val plexus_rtt :
  ?warmup:int -> ?iters:int -> payload_len:int -> Netsim.Costs.device -> float
(** Echo RTT through the Plexus forwarder, µs. *)

val du_rtt :
  ?warmup:int -> ?iters:int -> payload_len:int -> Netsim.Costs.device -> float

val run :
  ?params:Netsim.Costs.device -> ?warmup:int -> ?iters:int -> unit -> row list

val print :
  ?params:Netsim.Costs.device -> ?warmup:int -> ?iters:int -> unit -> row list
