(* Latency vs. message size: the natural companion to Figure 5.  UDP
   round trips across payload sizes on each device, Plexus (interrupt
   delivery) against DIGITAL UNIX.  Shows where each device's per-byte
   term takes over from the fixed per-packet costs: the Ethernet wire,
   the ATM PIO loop, and for DIGITAL UNIX the user/kernel copies. *)

type point = { size : int; plexus_us : float; du_us : float }

type row = { device : string; points : point list }

let sizes = [ 8; 64; 256; 512; 1024; 1400 ]

let run ?(iters = 100) () =
  List.map
    (fun params ->
      {
        device = params.Netsim.Costs.label;
        points =
          List.map
            (fun size ->
              {
                size;
                plexus_us =
                  Sim.Stats.Series.mean
                    (Common.udp_echo_plexus ~payload_len:size ~iters params);
                du_us =
                  Sim.Stats.Series.mean
                    (Common.udp_echo_du ~payload_len:size ~iters params);
              })
            sizes;
      })
    [ Netsim.Costs.ethernet (); Netsim.Costs.atm (); Netsim.Costs.t3 () ]

let print ?iters () =
  Common.print_header
    "Latency vs. message size: UDP RTT (microseconds), Plexus-intr / DIGITAL UNIX";
  let rows = run ?iters () in
  Printf.printf "%10s" "size";
  List.iter (fun r -> Printf.printf "  %19s" r.device) rows;
  print_newline ();
  List.iteri
    (fun i size ->
      Printf.printf "%10d" size;
      List.iter
        (fun r ->
          let p = List.nth r.points i in
          Printf.printf "  %8.1f / %8.1f" p.plexus_us p.du_us)
        rows;
      print_newline ())
    sizes;
  rows
