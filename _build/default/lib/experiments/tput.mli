(** Section 4.2: TCP throughput table. *)

type row = {
  device : string;
  plexus_mbps : float;
  du_mbps : float;
  paper_plexus : float option;
  paper_du : float option;
}

val plexus_transfer : ?bytes:int -> Netsim.Costs.device -> float
(** Goodput of a bulk Plexus TCP transfer, Mb/s. *)

val du_transfer : ?bytes:int -> Netsim.Costs.device -> float

val run : ?bytes:int -> unit -> row list
val print : ?bytes:int -> unit -> row list
