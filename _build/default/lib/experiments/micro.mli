(** Section 3.3 microbenchmarks: active messages at interrupt level and
    budget termination. *)

type am_result = {
  interrupt_rtt : float;
  thread_rtt : float;
  udp_rtt : float;
}

val am_rtt :
  ?mode:Spin.Dispatcher.delivery -> ?payload_len:int -> ?warmup:int ->
  ?iters:int -> Netsim.Costs.device -> float
(** Active-message echo RTT through dynamically linked extensions, µs. *)

val run : ?params:Netsim.Costs.device -> ?iters:int -> unit -> am_result

type termination_result = {
  messages : int;
  terminations : int;
  committed_actions : int;
}

val budget_termination :
  ?messages:int -> ?actions:int -> ?action_cost:Sim.Stime.t ->
  ?budget:Sim.Stime.t -> unit -> termination_result
(** Drive over-budget EPHEMERAL handlers and report how much committed. *)

val print : ?params:Netsim.Costs.device -> ?iters:int -> unit -> am_result
