(* Figure 6: video server CPU utilization as a function of the number of
   client streams, over the T3 network.

   The workload: 30 frames/second per stream, 12.5 KB frames (15 streams
   of 3 Mb/s saturate the 45 Mb/s T3, matching the paper's saturation
   point).  Frames come off the disk; under Plexus the server extension
   sends them without crossing the user/kernel boundary, under DIGITAL
   UNIX each frame is read(2) up to the server process and copied back
   down by sendto(2).  "At 15 streams, both SPIN and DIGITAL UNIX
   saturate the network, but SPIN consumes only half as much of the
   processor." *)

let fps = 30
let frame_len = 12_500
let video_port = 9000

type sample = {
  streams : int;
  spin_util : float;
  du_util : float;
  net_mbps : float; (* achieved network send rate under Plexus *)
}

let measure_window = Sim.Stime.s 2
let warmup = Sim.Stime.ms 300

(* The sink host consumes frames at the device level only: the paper
   measures *server* CPU; the clients are separate machines. *)
let quiet_sink dev =
  let bytes = ref 0 in
  Netsim.Dev.set_rx dev (fun pkt -> bytes := !bytes + Mbuf.length pkt);
  bytes

let plexus_run streams =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ()) ~a:("server", Common.ip_a)
      ~b:("clients", Common.ip_b)
  in
  let stack = Plexus.Stack.build ea.Netsim.Network.host in
  let rx_bytes = quiet_sink eb.Netsim.Network.dev in
  Plexus.Arp_mgr.prime (Plexus.Stack.arp stack) Common.ip_b
    (Netsim.Dev.mac eb.Netsim.Network.dev);
  let host = ea.Netsim.Network.host in
  let disk =
    Netsim.Disk.create engine ~cpu:(Netsim.Host.cpu host)
      ~costs:(Netsim.Host.costs host)
  in
  let udp = Plexus.Stack.udp stack in
  let ep =
    match Plexus.Udp_mgr.bind udp ~owner:"video-server" ~port:video_port with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let env =
    {
      Apps.Video_server.engine;
      read_frame = (fun ~len k -> Netsim.Disk.read disk ~len k);
      send = (fun ~dst data -> Plexus.Udp_mgr.send udp ep ~dst data);
    }
  in
  let server = Apps.Video_server.create env ~fps ~frame_len in
  Apps.Video_server.set_streams server
    (List.init streams (fun i -> (Common.ip_b, video_port + 1 + i)));
  let horizon = Sim.Stime.add warmup measure_window in
  Apps.Video_server.start ~until:horizon server;
  (* Measure utilization over a window that starts after warmup. *)
  ignore
    (Sim.Engine.schedule engine ~at:warmup (fun () ->
         Netsim.Host.reset_utilization host;
         rx_bytes := 0));
  Sim.Engine.run engine ~until:horizon ~max_events:50_000_000;
  let util = Netsim.Host.utilization host in
  let mbps =
    float_of_int !rx_bytes *. 8. /. Sim.Stime.to_us measure_window
  in
  (util, mbps)

let du_run streams =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ()) ~a:("server", Common.ip_a)
      ~b:("clients", Common.ip_b)
  in
  let du = Osmodel.Du_stack.create ea.Netsim.Network.host in
  let _rx_bytes = quiet_sink eb.Netsim.Network.dev in
  Osmodel.Du_stack.prime_arp du Common.ip_b (Netsim.Dev.mac eb.Netsim.Network.dev);
  let host = ea.Netsim.Network.host in
  let costs = Netsim.Host.costs host in
  let cpu = Netsim.Host.cpu host in
  let disk = Netsim.Disk.create engine ~cpu ~costs in
  let sock =
    match Osmodel.Du_stack.udp_bind du ~port:video_port with
    | Ok s -> s
    | Error _ -> assert false
  in
  let env =
    {
      Apps.Video_server.engine;
      read_frame =
        (fun ~len k ->
          (* read(2): the frame is copied from the buffer cache to the
             user process before it can be sent again. *)
          Netsim.Disk.read disk ~len (fun data ->
              Sim.Cpu.run cpu
                ~cost:
                  (Sim.Stime.add costs.Netsim.Costs.os.trap
                     (Osmodel.Syscall.copy_cost costs len))
                (fun () -> k data)));
      send =
        (fun ~dst data -> Osmodel.Du_stack.udp_sendto du sock ~dst data);
    }
  in
  let server = Apps.Video_server.create env ~fps ~frame_len in
  Apps.Video_server.set_streams server
    (List.init streams (fun i -> (Common.ip_b, video_port + 1 + i)));
  let horizon = Sim.Stime.add warmup measure_window in
  Apps.Video_server.start ~until:horizon server;
  ignore
    (Sim.Engine.schedule engine ~at:warmup (fun () ->
         Netsim.Host.reset_utilization host));
  Sim.Engine.run engine ~until:horizon ~max_events:50_000_000;
  Netsim.Host.utilization host

(* --- the client side (section 5.1's second finding) -------------------

   "The CPU utilization between the two operating systems was similar...
   the performance of the video client is limited by the write bandwidth
   of the framebuffer hardware rather than overhead incurred by the
   operating system."  We receive [streams] streams on one client host —
   once over Plexus, once over DIGITAL UNIX — and report both the total
   client CPU utilization and the share of it spent writing the
   framebuffer. *)

type client_sample = {
  c_streams : int;
  plexus_util : float;
  du_util : float;
  plexus_fb_share : float; (* fraction of busy time in framebuffer writes *)
}

let client_run ~streams ~use_du =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ()) ~a:("server", Common.ip_a)
      ~b:("client", Common.ip_b)
  in
  (* the server always runs Plexus: only the client's OS varies *)
  let server_stack = Plexus.Stack.build ea.Netsim.Network.host in
  let udp = Plexus.Stack.udp server_stack in
  let ep =
    match Plexus.Udp_mgr.bind udp ~owner:"video" ~port:video_port with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let client_host = eb.Netsim.Network.host in
  let clients =
    if use_du then begin
      let du = Osmodel.Du_stack.create client_host in
      Osmodel.Du_stack.prime_arp du Common.ip_a (Netsim.Dev.mac ea.Netsim.Network.dev);
      Plexus.Arp_mgr.prime (Plexus.Stack.arp server_stack) Common.ip_b
        (Netsim.Dev.mac eb.Netsim.Network.dev);
      List.init streams (fun i ->
          Apps.Video_client.on_du ~fps du ~port:(video_port + 1 + i))
    end
    else begin
      let stack = Plexus.Stack.build client_host in
      Plexus.Stack.prime_arp server_stack stack;
      List.init streams (fun i ->
          Apps.Video_client.on_plexus ~fps stack ~port:(video_port + 1 + i))
    end
  in
  let env =
    {
      Apps.Video_server.engine;
      (* synthetic frames: the server side is not under test here *)
      read_frame = (fun ~len k -> k (String.make len 'v'));
      send = (fun ~dst data -> Plexus.Udp_mgr.send udp ep ~dst data);
    }
  in
  let server = Apps.Video_server.create env ~fps ~frame_len in
  Apps.Video_server.set_streams server
    (List.init streams (fun i -> (Common.ip_b, video_port + 1 + i)));
  let horizon = Sim.Stime.add warmup measure_window in
  Apps.Video_server.start ~until:horizon server;
  ignore
    (Sim.Engine.schedule engine ~at:warmup (fun () ->
         Netsim.Host.reset_utilization client_host));
  Sim.Engine.run engine ~until:horizon ~max_events:50_000_000;
  let util = Netsim.Host.utilization client_host in
  let fb_busy =
    List.fold_left
      (fun acc c ->
        acc
        +. float_of_int
             (Netsim.Framebuffer.bytes_written (Apps.Video_client.framebuffer c))
           *. 250.)
      0. clients
  in
  let busy_ns =
    float_of_int (Sim.Stime.to_ns (Sim.Cpu.busy_time (Netsim.Host.cpu client_host)))
  in
  (util, if busy_ns > 0. then fb_busy /. busy_ns else 0.)

let client ?(streams = 4) () =
  let plexus_util, plexus_fb_share = client_run ~streams ~use_du:false in
  let du_util, _ = client_run ~streams ~use_du:true in
  { c_streams = streams; plexus_util; du_util; plexus_fb_share }

let run ?(stream_counts = List.init 30 (fun i -> i + 1)) () =
  List.map
    (fun n ->
      let spin_util, net_mbps = plexus_run n in
      let du_util = du_run n in
      { streams = n; spin_util; du_util; net_mbps })
    stream_counts

let print ?stream_counts () =
  Common.print_header
    "Figure 6: video server CPU utilization vs. streams (T3, 30fps, 12.5KB frames)";
  Printf.printf "%8s %12s %12s %12s\n" "streams" "spin-util" "du-util"
    "net(Mb/s)";
  let rows = run ?stream_counts () in
  List.iter
    (fun s ->
      Printf.printf "%8d %11.1f%% %11.1f%% %12.1f\n" s.streams
        (100. *. s.spin_util) (100. *. s.du_util) s.net_mbps)
    rows;
  Printf.printf
    "(paper: both systems saturate the 45 Mb/s T3 at 15 streams; SPIN uses ~half the CPU)\n";
  let c = client ~streams:4 () in
  Printf.printf
    "client side (%d streams): plexus %.1f%%, digital-unix %.1f%% — similar, because\n\
    \ %.0f%% of the client's busy time is framebuffer writes (the paper's point)\n"
    c.c_streams (100. *. c.plexus_util) (100. *. c.du_util)
    (100. *. c.plexus_fb_share);
  rows
