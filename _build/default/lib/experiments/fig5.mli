(** Figure 5: UDP round-trip latency across the three devices. *)

type row = {
  device : string;
  plexus_interrupt : float;
  plexus_thread : float;
  digital_unix : float;
  user_library : float;
  raw_driver : float;
  paper_plexus : float option;
}

val run : ?iters:int -> unit -> row list

val fast_driver_variants : ?iters:int -> unit -> (string * float * float) list
(** [(label, measured, paper)] for the §4.1 faster-driver quotes. *)

val print : ?iters:int -> unit -> row list
