(** Section 1.1's motivating claims, measured: WAN transfers need large
    windows; transaction workloads want application-specific TCP. *)

type wan_point = { window : int; mbps : float }

val wan_transfer : window:int -> float
val wan_windows : ?windows:int list -> unit -> wan_point list

type txn_result = { stock_us : float; tuned_us : float }

val transaction_time : cfg:Proto.Tcp.config -> n:int -> float
val transactions : ?n:int -> unit -> txn_result

type blast_result = { tcp_ms : float; blast_ms : float; blast_retx : int }

val blast_vs_tcp : ?loss:float -> ?bytes:int -> unit -> blast_result
(** The same transfer over the same lossy link, stock TCP vs. the
    application-level-framing blast protocol. *)

val print : unit -> unit
