(** HTTP GET latency: the closing demo, Plexus vs. DIGITAL UNIX. *)

type result = { plexus_us : float; du_us : float; body_len : int }

val plexus_get_latency :
  ?warmup:int -> ?iters:int -> Netsim.Costs.device -> float

val du_get_latency : ?warmup:int -> ?iters:int -> Netsim.Costs.device -> float

val run :
  ?params:Netsim.Costs.device -> ?warmup:int -> ?iters:int -> unit -> result

val print :
  ?params:Netsim.Costs.device -> ?warmup:int -> ?iters:int -> unit -> result
