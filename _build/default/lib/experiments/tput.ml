(* Section 4.2: TCP throughput.

   Paper values: Ethernet 8.9 Mb/s on both systems (wire-limited); Fore
   ATM 33 Mb/s under Plexus vs 27.9 Mb/s under DIGITAL UNIX (CPU-limited
   by programmed I/O, where the extra user/kernel copy hurts); the ATM
   driver-to-driver ceiling is ~53 Mb/s.  The T3's TCP number is absent
   from the paper (a DMA-support bug); we measure it anyway. *)

type row = {
  device : string;
  plexus_mbps : float;
  du_mbps : float;
  paper_plexus : float option;
  paper_du : float option;
}

let transfer_bytes = 2_000_000

(* Bulk transfer over Plexus: connect A->B, push [bytes], record the time
   from connection establishment to full delivery at B. *)
let plexus_transfer ?(bytes = transfer_bytes) params =
  let p = Common.plexus_pair params in
  let engine = p.Common.engine in
  let received = ref 0 in
  let start_at = ref Sim.Stime.zero in
  let done_at = ref None in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp p.Common.b) ~owner:"sink"
       ~port:5001
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             received := !received + String.length data;
             if !received >= bytes && !done_at = None then
               done_at := Some (Sim.Engine.now engine)))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Common.a) ~owner:"source"
       ~dst:(Common.ip_b, 5001) ()
   with
  | Error _ -> assert false
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          start_at := Sim.Engine.now engine;
          Plexus.Tcp_mgr.send conn (String.make bytes 'd')));
  Sim.Engine.run engine ~until:(Sim.Stime.s 60) ~max_events:50_000_000;
  match !done_at with
  | None -> nan
  | Some t ->
      Common.mbps ~bytes ~elapsed_us:(Sim.Stime.to_us (Sim.Stime.sub t !start_at))

let du_transfer ?(bytes = transfer_bytes) params =
  let p = Common.du_pair params in
  let engine = p.Common.du_engine in
  let received = ref 0 in
  let start_at = ref Sim.Stime.zero in
  let done_at = ref None in
  (match
     Osmodel.Du_stack.tcp_listen p.Common.dub ~port:5001
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             received := !received + String.length data;
             if !received >= bytes && !done_at = None then
               done_at := Some (Sim.Engine.now engine)))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let conn = Osmodel.Du_stack.tcp_connect p.Common.dua ~dst:(Common.ip_b, 5001) () in
  Osmodel.Du_stack.on_established conn (fun () ->
      start_at := Sim.Engine.now engine;
      Osmodel.Du_stack.tcp_send p.Common.dua conn (String.make bytes 'd'));
  Sim.Engine.run engine ~until:(Sim.Stime.s 60) ~max_events:50_000_000;
  match !done_at with
  | None -> nan
  | Some t ->
      Common.mbps ~bytes ~elapsed_us:(Sim.Stime.to_us (Sim.Stime.sub t !start_at))

let run ?bytes () =
  [
    {
      device = "ethernet";
      plexus_mbps = plexus_transfer ?bytes (Netsim.Costs.ethernet ());
      du_mbps = du_transfer ?bytes (Netsim.Costs.ethernet ());
      paper_plexus = Some 8.9;
      paper_du = Some 8.9;
    };
    {
      device = "atm";
      plexus_mbps = plexus_transfer ?bytes (Netsim.Costs.atm ());
      du_mbps = du_transfer ?bytes (Netsim.Costs.atm ());
      paper_plexus = Some 33.;
      paper_du = Some 27.9;
    };
    {
      device = "t3";
      plexus_mbps = plexus_transfer ?bytes (Netsim.Costs.t3 ());
      du_mbps = du_transfer ?bytes (Netsim.Costs.t3 ());
      paper_plexus = None;
      paper_du = None;
    };
  ]

let print ?bytes () =
  Common.print_header "Section 4.2: TCP throughput (Mb/s)";
  Printf.printf "%-10s %10s %10s %14s %12s\n" "device" "plexus" "du"
    "paper(plexus)" "paper(du)";
  let rows = run ?bytes () in
  List.iter
    (fun r ->
      let p = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
      Printf.printf "%-10s %10.1f %10.1f %14s %12s\n" r.device r.plexus_mbps
        r.du_mbps (p r.paper_plexus) (p r.paper_du))
    rows;
  Printf.printf
    "(ATM is programmed I/O: CPU-bound; paper's driver-to-driver ceiling ~53 Mb/s)\n";
  rows
