lib/experiments/livelock.ml: Common List Mbuf Netsim Plexus Printf Proto Sim Spin String
