lib/experiments/tput.mli: Netsim
