lib/experiments/fig6.ml: Apps Common List Mbuf Netsim Osmodel Plexus Printf Sim String
