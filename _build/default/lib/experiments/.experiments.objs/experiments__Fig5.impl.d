lib/experiments/fig5.ml: Common List Netsim Printf Sim Spin
