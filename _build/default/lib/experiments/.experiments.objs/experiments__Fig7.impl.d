lib/experiments/fig7.ml: Apps Common List Netsim Osmodel Plexus Printf Sim String
