lib/experiments/sweep.mli:
