lib/experiments/motivate.ml: Apps Char Common List Netsim Plexus Printf Proto Sim String
