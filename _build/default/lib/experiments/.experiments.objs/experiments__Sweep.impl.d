lib/experiments/sweep.ml: Common List Netsim Printf Sim
