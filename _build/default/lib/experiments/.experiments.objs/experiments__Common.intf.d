lib/experiments/common.mli: Netsim Osmodel Plexus Proto Sim Spin
