lib/experiments/motivate.mli: Proto
