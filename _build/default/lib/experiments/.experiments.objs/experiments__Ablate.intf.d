lib/experiments/ablate.mli:
