lib/experiments/micro.mli: Netsim Sim Spin
