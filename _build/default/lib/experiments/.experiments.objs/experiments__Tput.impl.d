lib/experiments/tput.ml: Common List Netsim Osmodel Plexus Printf Sim String
