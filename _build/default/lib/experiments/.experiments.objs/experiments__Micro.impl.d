lib/experiments/micro.ml: Apps Common Fmt List Netsim Plexus Printf Sim Spin String
