lib/experiments/http_bench.ml: Apps Buffer Common Hashtbl List Netsim Osmodel Printf Proto Sim String
