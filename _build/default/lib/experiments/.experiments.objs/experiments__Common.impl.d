lib/experiments/common.ml: Netsim Osmodel Plexus Printf Proto Sim Spin String View
