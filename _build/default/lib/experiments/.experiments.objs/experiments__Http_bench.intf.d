lib/experiments/http_bench.mli: Netsim
