lib/experiments/livelock.mli: Sim Spin
