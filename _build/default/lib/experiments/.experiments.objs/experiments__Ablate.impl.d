lib/experiments/ablate.ml: Apps Common List Netsim Plexus Printf Proto Sim Spin String View
