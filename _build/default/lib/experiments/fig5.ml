(* Figure 5: UDP round-trip latency for small (8-byte) packets across the
   three devices, for Plexus with interrupt-level delivery, Plexus with
   thread-per-raise delivery, and DIGITAL UNIX — plus the raw
   driver-to-driver minimum, and the faster-driver variants quoted in
   section 4.1 (337 us Ethernet, 241 us ATM). *)

type row = {
  device : string;
  plexus_interrupt : float; (* us, mean RTT *)
  plexus_thread : float;
  digital_unix : float;
  user_library : float;
      (* the related-work model of section 6: kernel packet filter +
         user-space protocol library *)
  raw_driver : float;
  paper_plexus : float option; (* the value the paper quotes, where given *)
}

let devices () =
  [
    (Netsim.Costs.ethernet (), Some 600.);
    (Netsim.Costs.atm (), Some 350.);
    (Netsim.Costs.t3 (), Some 300.);
  ]

let measure ?(iters = 200) (params : Netsim.Costs.device) paper =
  let mean series = Sim.Stats.Series.mean series in
  {
    device = params.label;
    plexus_interrupt =
      mean (Common.udp_echo_plexus ~mode:Spin.Dispatcher.Interrupt ~iters params);
    plexus_thread =
      mean (Common.udp_echo_plexus ~mode:Spin.Dispatcher.Thread ~iters params);
    digital_unix = mean (Common.udp_echo_du ~iters params);
    user_library = mean (Common.udp_echo_ulib ~iters params);
    raw_driver = Common.raw_device_rtt params ~len:64;
    paper_plexus = paper;
  }

let run ?iters () =
  List.map (fun (params, paper) -> measure ?iters params paper) (devices ())

let fast_driver_variants ?(iters = 200) () =
  [
    ( "ethernet-fast",
      Sim.Stats.Series.mean
        (Common.udp_echo_plexus ~iters (Netsim.Costs.ethernet ~fast:true ())),
      337. );
    ( "atm-fast",
      Sim.Stats.Series.mean
        (Common.udp_echo_plexus ~iters (Netsim.Costs.atm ~fast:true ())),
      241. );
  ]

let print ?iters () =
  Common.print_header
    "Figure 5: UDP round-trip latency, 8-byte payload (microseconds)";
  Printf.printf "%-12s %12s %12s %13s %11s %9s %14s\n" "device" "plexus-intr"
    "plexus-thr" "digital-unix" "user-lib" "raw-drv" "paper(plexus)";
  let rows = run ?iters () in
  List.iter
    (fun r ->
      Printf.printf "%-12s %12.1f %12.1f %13.1f %11.1f %9.1f %14s\n" r.device
        r.plexus_interrupt r.plexus_thread r.digital_unix r.user_library
        r.raw_driver
        (match r.paper_plexus with
        | Some p -> Printf.sprintf "%.0f" p
        | None -> "-"))
    rows;
  Printf.printf
    "\nFaster device driver (paper quotes 337us Ethernet / 241us ATM):\n";
  List.iter
    (fun (label, v, paper) ->
      Printf.printf "  %-14s plexus-intr %8.1f us   (paper: %.0f us)\n" label v
        paper)
    (fast_driver_variants ?iters ());
  rows
