(** Typed operations Plexus exports through SPIN interfaces, with their
    witnesses.  Extensions declare imports of ([iface], [symbol]) pairs
    and project them through these witnesses at link time. *)

type ether_install =
  owner:string ->
  etype:int ->
  budget:Sim.Stime.t option ->
  (Pctx.t -> Spin.Ephemeral.t) ->
  (unit -> unit, string) result

type ether_send = dst:Proto.Ether.Mac.t -> etype:int -> Mbuf.rw Mbuf.t -> unit
type udp_bind = owner:string -> port:int -> (Endpoint.t, string) result
type udp_install_recv = Endpoint.t -> (Pctx.t -> unit) -> unit -> unit

type udp_install_recv_ephemeral =
  Endpoint.t -> budget:Sim.Stime.t option -> (Pctx.t -> Spin.Ephemeral.t) ->
  unit -> unit

type udp_send =
  Endpoint.t -> dst:Proto.Ipaddr.t * int -> checksum:bool -> string -> unit

type mbuf_alloc = int -> Mbuf.rw Mbuf.t

type tcp_conn_ops = {
  tc_send : string -> unit;
  tc_close : unit -> unit;
  tc_set_receive : (string -> unit) -> unit;
  tc_set_peer_close : (unit -> unit) -> unit;
  tc_set_close : (unit -> unit) -> unit;
}
(** Per-connection operations; the manager's connection object never
    crosses the interface. *)

type tcp_listen =
  owner:string -> port:int -> on_accept:(tcp_conn_ops -> unit) ->
  (unit -> unit, string) result
(** Returns the un-listener (for unlink-time cleanup). *)

type tcp_connect =
  owner:string -> dst:Proto.Ipaddr.t * int ->
  on_established:(tcp_conn_ops -> unit) -> (unit, string) result

val ether_iface : string
val udp_iface : string
val tcp_iface : string
val mbuf_iface : string

val sym_install_handler : string
val sym_send : string
val sym_bind : string
val sym_install_recv : string
val sym_install_recv_ephemeral : string
val sym_alloc : string
val sym_listen : string
val sym_connect : string

val ether_install_w : ether_install Spin.Univ.witness
val ether_send_w : ether_send Spin.Univ.witness
val udp_bind_w : udp_bind Spin.Univ.witness
val udp_install_recv_w : udp_install_recv Spin.Univ.witness
val udp_install_recv_ephemeral_w : udp_install_recv_ephemeral Spin.Univ.witness
val udp_send_w : udp_send Spin.Univ.witness
val mbuf_alloc_w : mbuf_alloc Spin.Univ.witness
val tcp_listen_w : tcp_listen Spin.Univ.witness
val tcp_connect_w : tcp_connect Spin.Univ.witness
