(** Endpoints: the unit of send/receive legitimacy (anti-spoof and
    anti-snoop policy, paper section 3.1). *)

type proto = Udp | Tcp

type t = private { proto : proto; ip : Proto.Ipaddr.t; port : int; owner : string }

val make : proto:proto -> ip:Proto.Ipaddr.t -> port:int -> owner:string -> t
val proto : t -> proto
val ip : t -> Proto.Ipaddr.t
val port : t -> int
val owner : t -> string
val pp : Format.formatter -> t -> unit
