(* The typed symbols that Plexus exports through SPIN interfaces.

   Extensions import these (interface name, symbol name) pairs and recover
   the operations through the witnesses below; a mismatch is a link-time
   type clash, exactly as for Modula-3 extensions.  The closure types keep
   errors as strings so the witness types stay simple at the boundary. *)

type ether_install =
  owner:string ->
  etype:int ->
  budget:Sim.Stime.t option ->
  (Pctx.t -> Spin.Ephemeral.t) ->
  (unit -> unit, string) result

type ether_send = dst:Proto.Ether.Mac.t -> etype:int -> Mbuf.rw Mbuf.t -> unit

type udp_bind = owner:string -> port:int -> (Endpoint.t, string) result

type udp_install_recv = Endpoint.t -> (Pctx.t -> unit) -> unit -> unit

type udp_install_recv_ephemeral =
  Endpoint.t -> budget:Sim.Stime.t option -> (Pctx.t -> Spin.Ephemeral.t) ->
  unit -> unit

type udp_send =
  Endpoint.t -> dst:Proto.Ipaddr.t * int -> checksum:bool -> string -> unit

type mbuf_alloc = int -> Mbuf.rw Mbuf.t

(* Per-connection operations handed to extensions through the Tcp
   interface; the connection object itself stays inside the manager. *)
type tcp_conn_ops = {
  tc_send : string -> unit;
  tc_close : unit -> unit;
  tc_set_receive : (string -> unit) -> unit;
  tc_set_peer_close : (unit -> unit) -> unit;
  tc_set_close : (unit -> unit) -> unit;
}

type tcp_listen =
  owner:string -> port:int -> on_accept:(tcp_conn_ops -> unit) ->
  (unit -> unit, string) result

type tcp_connect =
  owner:string -> dst:Proto.Ipaddr.t * int ->
  on_established:(tcp_conn_ops -> unit) -> (unit, string) result

(* Interface and symbol names. *)
let ether_iface = "Ether"
let udp_iface = "Udp"
let tcp_iface = "Tcp"
let mbuf_iface = "Mbuf"

let sym_install_handler = "InstallHandler"
let sym_send = "PacketSend"
let sym_bind = "Bind"
let sym_install_recv = "InstallRecv"
let sym_install_recv_ephemeral = "InstallRecvEphemeral"
let sym_alloc = "Alloc"
let sym_listen = "Listen"
let sym_connect = "Connect"

(* Witnesses — one global per exported operation type. *)
let ether_install_w : ether_install Spin.Univ.witness = Spin.Univ.witness ()
let ether_send_w : ether_send Spin.Univ.witness = Spin.Univ.witness ()
let udp_bind_w : udp_bind Spin.Univ.witness = Spin.Univ.witness ()
let udp_install_recv_w : udp_install_recv Spin.Univ.witness = Spin.Univ.witness ()

let udp_install_recv_ephemeral_w : udp_install_recv_ephemeral Spin.Univ.witness =
  Spin.Univ.witness ()

let udp_send_w : udp_send Spin.Univ.witness = Spin.Univ.witness ()
let mbuf_alloc_w : mbuf_alloc Spin.Univ.witness = Spin.Univ.witness ()
let tcp_listen_w : tcp_listen Spin.Univ.witness = Spin.Univ.witness ()
let tcp_connect_w : tcp_connect Spin.Univ.witness = Spin.Univ.witness ()
