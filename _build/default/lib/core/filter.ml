(* A declarative packet-filter language for guards.

   Plexus guards are arbitrary typesafe predicates; the systems they
   replaced used interpreted packet filters (CSPF/BPF, [MRA87], and the
   Mach user-level networking the paper compares its protection model
   to).  This module provides that older style as a first-class value: a
   small expression language over packet fields that managers can accept
   from applications *as data* — no code installation at all — plus a
   cost model for interpretation, so the compiled-guard vs. interpreted-
   filter trade-off is measurable (see the ablations).

   Offsets are relative to the packet context's cursor unless the [Abs]
   anchor is used. *)

type anchor =
  | Cur  (** relative to the context cursor (current layer) *)
  | Abs  (** absolute within the frame *)

type field =
  | U8 of anchor * int
  | U16 of anchor * int
  | U32 of anchor * int
  | Ip_proto       (** from the parsed IP header, if present *)
  | Src_port
  | Dst_port
  | Payload_len

type t =
  | True
  | False
  | Eq of field * int
  | Lt of field * int
  | Gt of field * int
  | Mask of field * int * int  (** [(field land mask) = value] *)
  | And of t * t
  | Or of t * t
  | Not of t

let rec nodes = function
  | True | False -> 1
  | Eq _ | Lt _ | Gt _ | Mask _ -> 1
  | And (a, b) | Or (a, b) -> 1 + nodes a + nodes b
  | Not a -> 1 + nodes a

(* Interpretation cost: a handful of 1995 instructions per node. *)
let interp_cost_per_node = Sim.Stime.ns 150

let eval_cost t = Sim.Stime.mul interp_cost_per_node (nodes t)

exception Unavailable

let read_field ctx = function
  | U8 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 1 > View.length v then raise Unavailable else View.get_u8 v off
  | U16 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 2 > View.length v then raise Unavailable else View.get_u16 v off
  | U32 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 4 > View.length v then raise Unavailable else View.get_u32 v off
  | Ip_proto -> (
      match ctx.Pctx.ip with
      | Some h -> h.Proto.Ipv4.proto
      | None -> raise Unavailable)
  | Src_port ->
      if ctx.Pctx.src_port < 0 then raise Unavailable else ctx.Pctx.src_port
  | Dst_port ->
      if ctx.Pctx.dst_port < 0 then raise Unavailable else ctx.Pctx.dst_port
  | Payload_len -> Pctx.payload_len ctx

let rec eval t ctx =
  match t with
  | True -> true
  | False -> false
  | Eq (f, v) -> ( try read_field ctx f = v with Unavailable -> false)
  | Lt (f, v) -> ( try read_field ctx f < v with Unavailable -> false)
  | Gt (f, v) -> ( try read_field ctx f > v with Unavailable -> false)
  | Mask (f, m, v) -> (
      try read_field ctx f land m = v with Unavailable -> false)
  | And (a, b) -> eval a ctx && eval b ctx
  | Or (a, b) -> eval a ctx || eval b ctx
  | Not a -> not (eval a ctx)

(* "Compile" a filter to a native guard closure (what the SPIN approach
   buys: the predicate becomes ordinary code, no interpreter loop). *)
let compile t : Pctx.t -> bool = eval t

(* Common building blocks. *)
let ether_type_is etype = Eq (U16 (Abs, 12), etype)
let ip_proto_is proto = Eq (Ip_proto, proto)
let dst_port_is port = Eq (Dst_port, port)
let src_port_is port = Eq (Src_port, port)

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Eq (f, v) -> Fmt.pf ppf "%a = %d" pp_field f v
  | Lt (f, v) -> Fmt.pf ppf "%a < %d" pp_field f v
  | Gt (f, v) -> Fmt.pf ppf "%a > %d" pp_field f v
  | Mask (f, m, v) -> Fmt.pf ppf "(%a & 0x%x) = %d" pp_field f m v
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a

and pp_field ppf = function
  | U8 (Cur, o) -> Fmt.pf ppf "u8[%d]" o
  | U8 (Abs, o) -> Fmt.pf ppf "u8[@%d]" o
  | U16 (Cur, o) -> Fmt.pf ppf "u16[%d]" o
  | U16 (Abs, o) -> Fmt.pf ppf "u16[@%d]" o
  | U32 (Cur, o) -> Fmt.pf ppf "u32[%d]" o
  | U32 (Abs, o) -> Fmt.pf ppf "u32[@%d]" o
  | Ip_proto -> Fmt.string ppf "ip.proto"
  | Src_port -> Fmt.string ppf "src_port"
  | Dst_port -> Fmt.string ppf "dst_port"
  | Payload_len -> Fmt.string ppf "payload_len"
