(** ICMP protocol manager (in-kernel echo responder). *)

type t

val create : Graph.t -> Ip_mgr.t -> t
val echos_answered : t -> int

val unreachables_received : t -> int
(** ICMP destination-unreachable notifications seen (e.g. after sending
    UDP to an unbound port). *)

val rx : t -> int
