lib/core/icmp_mgr.mli: Graph Ip_mgr
