lib/core/tcp_mgr.mli: Endpoint Graph Ip_mgr Proto
