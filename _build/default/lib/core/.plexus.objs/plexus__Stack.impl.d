lib/core/stack.ml: Api Arp_mgr Buffer Ether_mgr Graph Icmp_mgr Interface Ip_mgr Kernel List Mbuf Netsim Printf Spin Tcp_mgr Udp_mgr
