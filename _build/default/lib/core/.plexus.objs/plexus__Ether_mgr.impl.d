lib/core/ether_mgr.ml: Graph List Netsim Pctx Proto Sim Spin
