lib/core/arp_mgr.ml: Ether_mgr Graph Hashtbl Netsim Pctx Proto Sim View
