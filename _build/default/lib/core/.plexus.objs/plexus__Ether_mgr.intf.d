lib/core/ether_mgr.mli: Graph Mbuf Netsim Pctx Proto Sim Spin
