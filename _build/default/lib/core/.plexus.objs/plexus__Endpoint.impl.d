lib/core/endpoint.ml: Fmt Proto
