lib/core/pctx.mli: Mbuf Netsim Proto View
