lib/core/endpoint.mli: Format Proto
