lib/core/stack.mli: Arp_mgr Ether_mgr Graph Icmp_mgr Ip_mgr Netsim Proto Spin Tcp_mgr Udp_mgr
