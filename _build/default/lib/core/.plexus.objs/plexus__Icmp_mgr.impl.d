lib/core/icmp_mgr.ml: Graph Ip_mgr Netsim Pctx Proto Sim Spin
