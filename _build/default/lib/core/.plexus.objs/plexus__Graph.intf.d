lib/core/graph.mli: Netsim Pctx Spin
