lib/core/arp_mgr.mli: Ether_mgr Graph Proto Sim
