lib/core/graph.ml: Buffer List Netsim Pctx Printf Spin
