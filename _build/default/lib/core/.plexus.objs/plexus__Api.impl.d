lib/core/api.ml: Endpoint Mbuf Pctx Proto Sim Spin
