lib/core/udp_mgr.mli: Endpoint Filter Graph Ip_mgr Pctx Proto Sim Spin
