lib/core/pctx.ml: Mbuf Netsim Proto View
