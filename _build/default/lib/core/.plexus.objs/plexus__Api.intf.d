lib/core/api.mli: Endpoint Mbuf Pctx Proto Sim Spin
