lib/core/udp_mgr.ml: Endpoint Filter Fmt Graph Hashtbl Ip_mgr List Mbuf Netsim Pctx Printf Proto Sim Spin String View
