lib/core/tcp_mgr.ml: Endpoint Graph Hashtbl Ip_mgr List Mbuf Netsim Pctx Printf Proto Sim Spin View
