lib/core/ip_mgr.mli: Arp_mgr Ether_mgr Graph Mbuf Proto Sim
