lib/core/filter.ml: Fmt Mbuf Pctx Proto Sim View
