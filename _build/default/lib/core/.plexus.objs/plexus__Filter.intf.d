lib/core/filter.mli: Format Pctx Sim
