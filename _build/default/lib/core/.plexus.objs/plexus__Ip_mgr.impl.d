lib/core/ip_mgr.ml: Arp_mgr Ether_mgr Graph List Mbuf Netsim Pctx Proto Sim Spin String View
