(** Declarative packet filters — the interpreted alternative to compiled
    guards ([MRA87]; the Mach comparison in paper section 3.1).

    A filter is plain data: applications can hand one to a manager with
    no code installation at all, at the price of interpretation cost
    ({!eval_cost}) on every packet.  Compiling it ({!compile}) yields an
    ordinary guard closure — the SPIN approach. *)

type anchor = Cur | Abs

type field =
  | U8 of anchor * int
  | U16 of anchor * int
  | U32 of anchor * int
  | Ip_proto
  | Src_port
  | Dst_port
  | Payload_len

type t =
  | True
  | False
  | Eq of field * int
  | Lt of field * int
  | Gt of field * int
  | Mask of field * int * int
  | And of t * t
  | Or of t * t
  | Not of t

val nodes : t -> int
(** Expression size (interpretation cost scales with it). *)

val eval_cost : t -> Sim.Stime.t
(** Modelled per-packet interpretation cost. *)

val eval : t -> Pctx.t -> bool
(** Interpret the filter against a packet context.  Fields that are not
    available (short packet, no parsed header, no ports yet) make the
    enclosing comparison false. *)

val compile : t -> Pctx.t -> bool
(** The filter as a native guard closure. *)

val ether_type_is : int -> t
val ip_proto_is : int -> t
val dst_port_is : int -> t
val src_port_is : int -> t

val pp : Format.formatter -> t -> unit
