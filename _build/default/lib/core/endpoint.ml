(* Communication endpoints — the unit of legitimacy for the protection
   policy of paper section 3.1.  A manager mints an endpoint when an
   application binds a port; guards derived from the endpoint prevent
   snooping (only packets addressed to it reach its handlers) and the
   send path takes source fields from the endpoint, preventing
   spoofing. *)

type proto = Udp | Tcp

type t = { proto : proto; ip : Proto.Ipaddr.t; port : int; owner : string }

let make ~proto ~ip ~port ~owner = { proto; ip; port; owner }

let proto t = t.proto
let ip t = t.ip
let port t = t.port
let owner t = t.owner

let pp ppf t =
  Fmt.pf ppf "%s:%a:%d(%s)"
    (match t.proto with Udp -> "udp" | Tcp -> "tcp")
    Proto.Ipaddr.pp t.ip t.port t.owner
