(** Protocol-graph event payload: read-only packet + demux state. *)

type t = {
  dev : Netsim.Dev.t;
  pkt : Mbuf.ro Mbuf.t;
  off : int;
  limit : int;
  l2 : Proto.Ether.header option;
  ip : Proto.Ipv4.header option;
  src_port : int;
  dst_port : int;
}

val make : Netsim.Dev.t -> Mbuf.ro Mbuf.t -> t

val view : t -> View.ro View.t
(** The packet from the current layer's start on (zero-copy). *)

val advance : t -> int -> t
(** Step the cursor past a header. *)

val with_l2 : t -> Proto.Ether.header -> t
val with_ip : t -> Proto.Ipv4.header -> t
val with_ports : t -> src_port:int -> dst_port:int -> t

(** [with_limit t n] bounds the valid data to [n] bytes past the cursor
    (strips Ethernet padding below the IP total length). *)
val with_limit : t -> int -> t

val with_payload : t -> Mbuf.ro Mbuf.t -> t
val payload_len : t -> int
val data_touched_by_device : t -> bool
(** True on programmed-I/O arrival devices (checksum folds into the PIO
    pass — integrated layer processing). *)

val ip_exn : t -> Proto.Ipv4.header
