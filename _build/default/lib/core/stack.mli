(** Full Plexus stack on one host (the Figure 1 graph), with SPIN
    interface export for dynamically linked application extensions. *)

type t

val build : ?subnets:(Proto.Ipaddr.t * int) list -> Netsim.Host.t -> t
(** Build over every device attached to the host.  [subnets] supplies
    (network, mask bits) per device; default is the host's /24 on each. *)

val host : t -> Netsim.Host.t
val graph : t -> Graph.t
val ether : t -> Ether_mgr.t
val ethers : t -> Ether_mgr.t list
val arp : t -> Arp_mgr.t
val arps : t -> Arp_mgr.t list
val ip : t -> Ip_mgr.t
val icmp : t -> Icmp_mgr.t
val udp : t -> Udp_mgr.t
val tcp : t -> Tcp_mgr.t

val app_domain : t -> Spin.Domain.t
(** The restricted protection domain application extensions link
    against. *)

val set_delivery : t -> Spin.Dispatcher.delivery -> unit
(** Interrupt-level vs. thread-per-raise delivery (Figure 5). *)

val link :
  t -> Spin.Extension.t -> (Spin.Linker.linked, Spin.Extension.failure) result
(** Dynamically link an application extension against {!app_domain}. *)

val report : t -> string
(** Multi-line diagnostics: dispatcher, IP/UDP/TCP and device counters. *)

val prime_arp : t -> t -> unit
(** Pre-populate the ARP caches of two directly connected stacks. *)
