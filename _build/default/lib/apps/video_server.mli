(** Network video server (paper section 5.1): 30 fps UDP frame streams
    sourced from disk, environment-agnostic (Plexus or DIGITAL UNIX). *)

type env = {
  engine : Sim.Engine.t;
  read_frame : len:int -> (string -> unit) -> unit;
  send : dst:Proto.Ipaddr.t * int -> string -> unit;
}

type t

val create : env -> fps:int -> frame_len:int -> t
val add_stream : t -> Proto.Ipaddr.t * int -> unit
val set_streams : t -> (Proto.Ipaddr.t * int) list -> unit

val start : ?until:Sim.Stime.t -> t -> unit
(** Begin streaming (staggered per-stream frame clocks) until the
    horizon. *)

val stop : t -> unit
val frames_sent : t -> int
val stream_count : t -> int
