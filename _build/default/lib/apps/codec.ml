(* Video codec cost model (paper section 5.1).

   "The client extension checksums and decompresses the image and
   displays it directly to the screen's framebuffer.  The current
   implementation makes two passes over the data, one pass for the
   checksum and another to decompress the image."

   The checksum pass is charged by the UDP layer; this module models the
   decompression pass (a memory-bound pass over the compressed bytes)
   and the expansion factor that determines how many bytes hit the
   framebuffer. *)

let expansion_factor = 2

let decompress_cost (costs : Netsim.Costs.t) ~len =
  Netsim.Costs.per_byte costs.layer.copy_ns_per_byte len

let decompressed_len ~len = len * expansion_factor
