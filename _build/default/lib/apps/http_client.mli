(** HTTP/1.0 client over the Plexus TCP manager. *)

type result = { status : int; body : string; elapsed : Sim.Stime.t }

val get :
  Plexus.Stack.t -> dst:Proto.Ipaddr.t * int -> path:string ->
  (result option -> unit) -> unit
(** Fetch [path]; the continuation receives the parsed response (or
    [None] on protocol failure) when the connection closes. *)
