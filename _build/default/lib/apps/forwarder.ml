(* The in-kernel protocol forwarder (paper section 5.2).

   An application installs a node into the Plexus protocol graph that
   redirects all data *and control* packets destined for a particular
   port to a secondary host.  Because it operates below the transport
   layer, the client and backend TCP state machines talk directly to each
   other (sequence numbers, window negotiation, slow start, connection
   establishment and teardown are all end-to-end) — the forwarder only
   rewrites addresses, NAT-style, in both directions:

     forward:  client -> (middle, P)      becomes  (middle) -> (server, P')
     reverse:  server:P' -> (middle, cp)  becomes  (middle, P) -> (client, cp)

   Checksums are patched with RFC 1624 incremental updates, so the cost
   is independent of payload size — one of the structural advantages
   measured in Figure 7. *)

type counters = {
  mutable forwarded : int;
  mutable returned : int;
  mutable ttl_drops : int;
}

type t = {
  stack : Plexus.Stack.t;
  listen_port : int;
  server : Proto.Ipaddr.t;
  server_port : int;
  middle : Proto.Ipaddr.t;
  costs : Netsim.Costs.t;
  sessions : (int, Proto.Ipaddr.t) Hashtbl.t; (* client port -> client ip *)
  counters : counters;
  mutable uninstall : (unit -> unit) list;
}

let l4_cksum_offset proto =
  if proto = Proto.Ipv4.proto_tcp then Some 16
  else if proto = Proto.Ipv4.proto_udp then Some 6
  else None

let ip_words ip =
  let i = Proto.Ipaddr.to_int ip in
  ((i lsr 16) land 0xffff, i land 0xffff)

(* Incrementally patch the transport checksum after the pseudo-header
   addresses and one port changed. *)
let patch_cksum seg ~off ~proto ~old_src ~new_src ~old_dst ~new_dst
    ~port_off ~old_port ~new_port =
  match l4_cksum_offset proto with
  | None -> ()
  | Some cksum_off when View.length seg > cksum_off + 1 ->
      let c = View.get_u16 seg cksum_off in
      if proto = Proto.Ipv4.proto_udp && c = 0 then ()
        (* checksum disabled: nothing to patch *)
      else begin
        let c = ref c in
        let upd old_w new_w = c := Cksum.update ~cksum:!c ~old_w ~new_w in
        let os1, os2 = ip_words old_src and ns1, ns2 = ip_words new_src in
        let od1, od2 = ip_words old_dst and nd1, nd2 = ip_words new_dst in
        upd os1 ns1;
        upd os2 ns2;
        upd od1 nd1;
        upd od2 nd2;
        upd old_port new_port;
        View.set_u16 seg cksum_off !c;
        ignore off;
        ignore port_off
      end
  | Some _ -> ()

(* Rebuild and transmit a redirected packet.  A datagram whose TTL
   expires here is dropped and the sender notified (ICMP time
   exceeded) — the forwarder is a real IP hop. *)
let redirect t ctx ~new_src ~new_dst ~port_off ~new_port =
  let iph = Plexus.Pctx.ip_exn ctx in
  if iph.Proto.Ipv4.ttl <= 1 then begin
    t.counters.ttl_drops <- t.counters.ttl_drops + 1;
    Plexus.Ip_mgr.send (Plexus.Stack.ip t.stack) ~proto:Proto.Ipv4.proto_icmp
      ~dst:iph.Proto.Ipv4.src
      (Proto.Icmp.to_packet
         (Proto.Icmp.time_exceeded
            ~original:(View.to_string (Plexus.Pctx.view ctx))));
    false
  end
  else begin
  let seg = View.copy (Plexus.Pctx.view ctx) in
  let old_port = View.get_u16 seg port_off in
  View.set_u16 seg port_off new_port;
  patch_cksum seg ~off:0 ~proto:iph.Proto.Ipv4.proto ~old_src:iph.Proto.Ipv4.src
    ~new_src ~old_dst:iph.Proto.Ipv4.dst ~new_dst ~port_off ~old_port ~new_port;
  let pkt = Mbuf.of_string (View.to_string (View.ro seg)) in
  let hdr =
    {
      iph with
      Proto.Ipv4.src = new_src;
      dst = new_dst;
      ttl = iph.Proto.Ipv4.ttl - 1;
    }
  in
  Proto.Ipv4.encapsulate pkt hdr;
  let cpu = Netsim.Host.cpu (Plexus.Stack.host t.stack) in
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Interrupt
    ~cost:t.costs.Netsim.Costs.fwd_rewrite (fun () ->
      Plexus.Ip_mgr.send_prepared (Plexus.Stack.ip t.stack) ~dst:new_dst pkt);
  true
  end

let is_transport ctx =
  match ctx.Plexus.Pctx.ip with
  | Some h ->
      h.Proto.Ipv4.proto = Proto.Ipv4.proto_tcp
      || h.Proto.Ipv4.proto = Proto.Ipv4.proto_udp
  | None -> false

(* Guards: the forward direction matches transport packets whose
   destination port is the forwarded service; the reverse direction
   matches packets arriving from the backend's service port. *)
let forward_guard t ctx =
  is_transport ctx
  &&
  let v = Plexus.Pctx.view ctx in
  View.length v >= 4 && View.get_u16 v 2 = t.listen_port

let reverse_guard t ctx =
  is_transport ctx
  && Proto.Ipaddr.equal (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src t.server
  &&
  let v = Plexus.Pctx.view ctx in
  View.length v >= 4 && View.get_u16 v 0 = t.server_port

let create stack ~listen_port ~backend:(server, server_port) =
  let costs = Netsim.Host.costs (Plexus.Stack.host stack) in
  let t =
    {
      stack;
      listen_port;
      server;
      server_port;
      middle = Netsim.Host.ip (Plexus.Stack.host stack);
      costs;
      sessions = Hashtbl.create 16;
      counters = { forwarded = 0; returned = 0; ttl_drops = 0 };
      uninstall = [];
    }
  in
  let ip_node = Plexus.Ip_mgr.node (Plexus.Stack.ip stack) in
  let forward ctx =
    let v = Plexus.Pctx.view ctx in
    let client_port = View.get_u16 v 0 in
    Hashtbl.replace t.sessions client_port (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src;
    if
      redirect t ctx ~new_src:t.middle ~new_dst:t.server ~port_off:2
        ~new_port:t.server_port
    then t.counters.forwarded <- t.counters.forwarded + 1
  in
  let reverse ctx =
    let v = Plexus.Pctx.view ctx in
    let client_port = View.get_u16 v 2 in
    match Hashtbl.find_opt t.sessions client_port with
    | None -> ()
    | Some client_ip ->
        if
          redirect t ctx ~new_src:t.middle ~new_dst:client_ip ~port_off:0
            ~new_port:t.listen_port
        then t.counters.returned <- t.counters.returned + 1
  in
  let graph = Plexus.Stack.graph stack in
  Plexus.Graph.add_edge graph ~parent:ip_node ~child:"forwarder"
    ~label:(Printf.sprintf "port=%d" listen_port);
  let u1 =
    Spin.Dispatcher.install
      (Plexus.Graph.recv_event ip_node)
      ~guard:(forward_guard t) ~cost:Sim.Stime.zero forward
  in
  let u2 =
    Spin.Dispatcher.install
      (Plexus.Graph.recv_event ip_node)
      ~guard:(reverse_guard t) ~cost:Sim.Stime.zero reverse
  in
  t.uninstall <- [ u1; u2 ];
  t

let remove t =
  List.iter (fun u -> u ()) t.uninstall;
  t.uninstall <- []

let forwarded t = t.counters.forwarded
let returned t = t.counters.returned
let ttl_drops t = t.counters.ttl_drops
let sessions t = Hashtbl.length t.sessions
