(** Video codec cost model: one decompression pass over the data. *)

val expansion_factor : int

val decompress_cost : Netsim.Costs.t -> len:int -> Sim.Stime.t

val decompressed_len : len:int -> int
