lib/apps/http_ext.mli: Hashtbl Spin
