lib/apps/video_server.mli: Proto Sim
