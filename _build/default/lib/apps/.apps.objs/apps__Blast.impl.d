lib/apps/blast.ml: Array Buffer Fun List Netsim Plexus Printf Proto Sim String View
