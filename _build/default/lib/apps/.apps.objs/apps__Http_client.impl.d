lib/apps/http_client.ml: Buffer Netsim Plexus Proto Sim
