lib/apps/http_server.ml: Buffer Hashtbl Plexus Proto
