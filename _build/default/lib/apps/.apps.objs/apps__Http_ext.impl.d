lib/apps/http_ext.ml: Buffer Hashtbl Plexus Proto Spin
