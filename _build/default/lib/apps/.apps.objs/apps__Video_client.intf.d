lib/apps/video_client.mli: Netsim Osmodel Plexus Sim
