lib/apps/codec.mli: Netsim Sim
