lib/apps/forwarder.ml: Cksum Hashtbl List Mbuf Netsim Plexus Printf Proto Sim Spin View
