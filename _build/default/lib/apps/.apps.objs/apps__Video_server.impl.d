lib/apps/video_server.ml: List Proto Sim
