lib/apps/forwarder.mli: Plexus Proto
