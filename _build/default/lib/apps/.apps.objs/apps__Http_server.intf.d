lib/apps/http_server.mli: Hashtbl Plexus
