lib/apps/active_messages.mli: Proto Sim Spin
