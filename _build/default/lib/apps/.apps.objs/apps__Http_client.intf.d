lib/apps/http_client.mli: Plexus Proto Sim
