lib/apps/blast.mli: Plexus Proto
