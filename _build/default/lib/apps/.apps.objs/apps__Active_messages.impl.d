lib/apps/active_messages.ml: Mbuf Plexus Proto Sim Spin String View
