lib/apps/video_client.ml: Codec Netsim Osmodel Plexus Sim String
