lib/apps/codec.ml: Netsim
