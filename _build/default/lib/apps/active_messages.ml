(* Active messages over Ethernet (paper section 3.3, Figures 2 and 3).

   This is a *bona fide* dynamically linked extension: it declares
   imports on the Ether and Mbuf interfaces, is compiled/signed, and at
   link time installs a guarded EPHEMERAL handler on the Ethernet
   PacketRecv event.  The guard discriminates on the EtherType field
   (via a safe VIEW of the header); the handler runs at interrupt level
   under an optional time budget and "does little more than reference
   memory and reply with an acknowledgement".

   Message format on the wire (after the Ethernet header):
     2 bytes handler index | payload bytes *)

type ctx = {
  mutable send : (dst:Proto.Ether.Mac.t -> handler:int -> string -> unit) option;
  received : Sim.Stats.Counter.t;
  mutable uninstall : (unit -> unit) option;
}

(* What a linked AM extension gives its host application: [send] becomes
   available once the extension is linked, and disappears at unlink. *)
let send ctx ~dst ~handler payload =
  match ctx.send with
  | Some f -> f ~dst ~handler payload
  | None -> invalid_arg "Active_messages.send: extension not linked"

let received ctx = Sim.Stats.Counter.get ctx.received

let header_len = 2

(* Build the extension.  [handlers] maps a handler index to the ephemeral
   program run (at interrupt level) for each matching message; it only
   has ephemeral constructors available, so it cannot block — the
   EPHEMERAL restriction enforced by type. *)
let extension ?(etype = Proto.Ether.etype_active_message) ?budget ~name
    ~(handlers : ctx -> int -> src:Proto.Ether.Mac.t -> string -> Spin.Ephemeral.t)
    () =
  let ctx = { send = None; received = Sim.Stats.Counter.create (); uninstall = None } in
  let imports =
    [
      (Plexus.Api.ether_iface, Plexus.Api.sym_install_handler);
      (Plexus.Api.ether_iface, Plexus.Api.sym_send);
      (Plexus.Api.mbuf_iface, Plexus.Api.sym_alloc);
    ]
  in
  let init (linkage : Spin.Extension.linkage) =
    let install =
      linkage.get Plexus.Api.ether_install_w ~iface:Plexus.Api.ether_iface
        ~sym:Plexus.Api.sym_install_handler
    in
    let ether_send =
      linkage.get Plexus.Api.ether_send_w ~iface:Plexus.Api.ether_iface
        ~sym:Plexus.Api.sym_send
    in
    let alloc =
      linkage.get Plexus.Api.mbuf_alloc_w ~iface:Plexus.Api.mbuf_iface
        ~sym:Plexus.Api.sym_alloc
    in
    (* The guard/handler pair of Figure 2: the guard VIEWs the Ethernet
       header and matches the active-message protocol number; the handler
       is an ephemeral program. *)
    let handler (pctx : Plexus.Pctx.t) : Spin.Ephemeral.t =
      let v = Plexus.Pctx.view pctx in
      match Proto.Ether.parse v with
      | None -> Spin.Ephemeral.nothing
      | Some eh ->
          let body = View.shift v Proto.Ether.header_len in
          if View.length body < header_len then Spin.Ephemeral.nothing
          else begin
            let idx = View.get_u16 body 0 in
            let payload =
              View.get_string body ~off:header_len
                ~len:(View.length body - header_len)
            in
            Spin.Ephemeral.count ctx.received
            :: handlers ctx idx ~src:eh.Proto.Ether.src payload
          end
    in
    (match install ~owner:name ~etype ~budget handler with
    | Ok uninstall ->
        ctx.uninstall <- Some uninstall;
        linkage.on_unlink uninstall
    | Error msg -> failwith msg);
    ctx.send <-
      Some
        (fun ~dst ~handler payload ->
          let pkt = alloc (header_len + String.length payload) in
          let v = Mbuf.view pkt in
          View.set_u16 v 0 handler;
          View.set_string v ~off:header_len payload;
          ether_send ~dst ~etype pkt);
    linkage.on_unlink (fun () -> ctx.send <- None)
  in
  (ctx, Spin.Extension.Compiler.compile ~name ~imports init)

(* A ready-made echo responder: handler 0 replies with handler 1 carrying
   the same payload — the ping-pong used by the latency measurements. *)
let echo_extension ?etype ?budget ~name ~reply_cost () =
  let handlers ctx idx ~src payload =
    if idx = 0 then
      [
        Spin.Ephemeral.work ~label:"am-reply" ~cost:reply_cost (fun () ->
            send ctx ~dst:src ~handler:1 payload);
      ]
    else Spin.Ephemeral.nothing
  in
  extension ?etype ?budget ~name ~handlers ()
