(** Active messages over Ethernet, as a dynamically linked SPIN extension
    running EPHEMERAL handlers at interrupt level (paper section 3.3). *)

type ctx
(** The extension's application-visible state (valid while linked). *)

val header_len : int

val extension :
  ?etype:int -> ?budget:Sim.Stime.t -> name:string ->
  handlers:
    (ctx -> int -> src:Proto.Ether.Mac.t -> string -> Spin.Ephemeral.t) ->
  unit -> ctx * Spin.Extension.t
(** Build a signed extension whose link-time initializer installs the
    guard/handler pair of Figure 2.  [handlers ctx idx ~src payload] is
    the ephemeral program run for each message of handler index [idx]. *)

val echo_extension :
  ?etype:int -> ?budget:Sim.Stime.t -> name:string ->
  reply_cost:Sim.Stime.t -> unit -> ctx * Spin.Extension.t
(** An AM responder: messages with handler 0 are echoed back with handler
    1 from interrupt context. *)

val send : ctx -> dst:Proto.Ether.Mac.t -> handler:int -> string -> unit
(** Send an active message.  @raise Invalid_argument when not linked. *)

val received : ctx -> int
(** Messages accepted by this extension's guard so far. *)
