(** In-kernel NAT-style protocol forwarder (paper section 5.2).

    Redirects TCP and UDP packets — including control packets, preserving
    end-to-end transport semantics — from a forwarded port to a backend,
    rewriting addresses with incremental checksum updates. *)

type t

val create :
  Plexus.Stack.t -> listen_port:int -> backend:Proto.Ipaddr.t * int -> t

val remove : t -> unit
(** Uninstall the forwarder's graph handlers (runtime adaptation). *)

val forwarded : t -> int
(** Packets redirected client -> backend. *)

val returned : t -> int
(** Packets rewritten backend -> client. *)

val ttl_drops : t -> int
(** Packets dropped because their TTL expired at the forwarder (the
    sender gets an ICMP time-exceeded). *)

val sessions : t -> int
