(** Video client: checksum + decompress + framebuffer display. *)

type t

val on_plexus : ?fps:int -> Plexus.Stack.t -> port:int -> t
(** Install as a Plexus UDP endpoint handler.  [fps] enables deadline
    tracking (a frame is late past 1.5x the period — "when the server
    would fail to meet its deadline"). *)

val on_du : ?fps:int -> Osmodel.Du_stack.t -> port:int -> t
(** Run as a DIGITAL UNIX user process on a UDP socket. *)

val deadline_misses : t -> int
val jitter : t -> Sim.Stats.Series.t
(** Inter-frame arrival times in µs. *)

val frames_received : t -> int
val frames_displayed : t -> int
val bytes_received : t -> int
val framebuffer : t -> Netsim.Framebuffer.t
