(* The HTTP server as a *bona fide* dynamically linked extension: it
   declares an import on the Tcp interface, is compiled and signed, and
   installs its listener at link time.  Unlinking it tears the listener
   down — the openness and runtime-adaptation properties of section 1
   demonstrated on the paper's own closing example. *)

type t = {
  routes : (string, string) Hashtbl.t;
  mutable requests : int;
  mutable not_found : int;
}

let default_routes () =
  let r = Hashtbl.create 4 in
  Hashtbl.replace r "/" "Plexus HTTP extension\n";
  r

let respond t (ops : Plexus.Api.tcp_conn_ops) (req : Proto.Http.request) =
  t.requests <- t.requests + 1;
  let resp =
    match Hashtbl.find_opt t.routes req.Proto.Http.path with
    | Some body -> Proto.Http.ok body
    | None ->
        t.not_found <- t.not_found + 1;
        Proto.Http.not_found
  in
  ops.Plexus.Api.tc_send (Proto.Http.response_to_string resp);
  ops.Plexus.Api.tc_close ()

let on_accept t (ops : Plexus.Api.tcp_conn_ops) =
  let buf = Buffer.create 256 in
  ops.Plexus.Api.tc_set_receive (fun data ->
      Buffer.add_string buf data;
      let s = Buffer.contents buf in
      match Proto.Str_find.find_sub s "\r\n\r\n" with
      | None -> ()
      | Some _ -> (
          match Proto.Http.parse_request s with
          | Some req -> respond t ops req
          | None -> ops.Plexus.Api.tc_close ()))

let extension ?(port = 80) ?routes ~name () =
  let t =
    {
      routes = (match routes with Some r -> r | None -> default_routes ());
      requests = 0;
      not_found = 0;
    }
  in
  let imports = [ (Plexus.Api.tcp_iface, Plexus.Api.sym_listen) ] in
  let init (linkage : Spin.Extension.linkage) =
    let listen =
      linkage.get Plexus.Api.tcp_listen_w ~iface:Plexus.Api.tcp_iface
        ~sym:Plexus.Api.sym_listen
    in
    match listen ~owner:name ~port ~on_accept:(on_accept t) with
    | Ok unlisten -> linkage.on_unlink unlisten
    | Error msg -> failwith msg
  in
  (t, Spin.Extension.Compiler.compile ~name ~imports init)

let add_route t path body = Hashtbl.replace t.routes path body
let requests t = t.requests
let not_found_count t = t.not_found
