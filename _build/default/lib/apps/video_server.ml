(* The network video server (paper section 5.1): reads video frame by
   frame off the disk and multicasts each frame as a UDP datagram to a
   set of client streams at 30 frames per second.

   The server logic is environment-agnostic so the experiments can run it
   both as a Plexus extension (disk data goes straight to the network —
   no user/kernel copies) and as a DIGITAL UNIX user process (read(2)
   copies the frame up, sendto(2) copies it back down). *)

type env = {
  engine : Sim.Engine.t;
  read_frame : len:int -> (string -> unit) -> unit;
  send : dst:Proto.Ipaddr.t * int -> string -> unit;
}

type t = {
  env : env;
  fps : int;
  frame_len : int;
  mutable streams : (Proto.Ipaddr.t * int) list;
  mutable frames_sent : int;
  mutable running : bool;
}

let create env ~fps ~frame_len =
  { env; fps; frame_len; streams = []; frames_sent = 0; running = false }

let add_stream t dst = t.streams <- t.streams @ [ dst ]
let set_streams t streams = t.streams <- streams
let frames_sent t = t.frames_sent
let stream_count t = List.length t.streams

let period t = Sim.Stime.of_s_f (1.0 /. float_of_int t.fps)

(* Each stream has its own frame clock, staggered so that 30 streams do
   not burst simultaneously (the paper's server interleaves streams). *)
let start ?(until = Sim.Stime.s 10) t =
  t.running <- true;
  let horizon = until in
  let rec tick dst idx () =
    if t.running && Sim.Stime.compare (Sim.Engine.now t.env.engine) horizon < 0
    then begin
      t.env.read_frame ~len:t.frame_len (fun frame ->
          t.frames_sent <- t.frames_sent + 1;
          t.env.send ~dst frame);
      ignore (Sim.Engine.schedule_in t.env.engine ~delay:(period t) (tick dst idx))
    end
  in
  List.iteri
    (fun idx dst ->
      let offset =
        Sim.Stime.scale (period t)
          (float_of_int idx /. float_of_int (max 1 (List.length t.streams)))
      in
      ignore (Sim.Engine.schedule_in t.env.engine ~delay:offset (tick dst idx)))
    t.streams

let stop t = t.running <- false
