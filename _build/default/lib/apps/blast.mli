(** Reliable blast: an application-specific NACK-based bulk transfer over
    UDP (the application-level-framing style the paper's introduction
    motivates).  Loss recovery is receiver-driven and per-frame; there is
    no connection to establish. *)

type sender
type receiver

val send :
  Plexus.Stack.t -> port:int -> dst:Proto.Ipaddr.t * int -> chunk:int ->
  data:string -> on_complete:(unit -> unit) -> sender
(** Blast [data] in [chunk]-byte frames; [on_complete] runs when the
    receiver confirms full delivery. *)

val receive :
  Plexus.Stack.t -> port:int -> on_complete:(string -> unit) -> receiver
(** Await one blast; [on_complete] receives the reassembled data. *)

val retransmissions : sender -> int
val end_probes : sender -> int
val complete : sender -> bool
val nacks_sent : receiver -> int
val received_complete : receiver -> bool
