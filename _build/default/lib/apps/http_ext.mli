(** The HTTP server as a dynamically linked SPIN extension. *)

type t

val extension :
  ?port:int -> ?routes:(string, string) Hashtbl.t -> name:string -> unit ->
  t * Spin.Extension.t
(** A signed extension whose initializer installs the listener through
    the imported Tcp interface; unlinking removes it. *)

val add_route : t -> string -> string -> unit
val requests : t -> int
val not_found_count : t -> int
