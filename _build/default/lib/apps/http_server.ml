(* A small HTTP/1.0 server running as a Plexus extension over the TCP
   manager — the paper's closing demonstration ("a demonstration of the
   protocol stack as it services HTTP requests"). *)

type t = {
  stack : Plexus.Stack.t;
  port : int;
  routes : (string, string) Hashtbl.t;
  mutable requests : int;
  mutable not_found : int;
}

let default_routes () =
  let r = Hashtbl.create 8 in
  Hashtbl.replace r "/"
    "<html><body>Plexus: application-specific networking in the kernel.</body></html>\n";
  Hashtbl.replace r "/index.html"
    "<html><body>Plexus: application-specific networking in the kernel.</body></html>\n";
  Hashtbl.replace r "/paper" "Fiuczynski & Bershad, USENIX 1996.\n";
  r

let respond t conn (req : Proto.Http.request) =
  t.requests <- t.requests + 1;
  let resp =
    match Hashtbl.find_opt t.routes req.Proto.Http.path with
    | Some body ->
        Proto.Http.ok ~headers:[ ("content-type", "text/html") ] body
    | None ->
        t.not_found <- t.not_found + 1;
        Proto.Http.not_found
  in
  Plexus.Tcp_mgr.send conn (Proto.Http.response_to_string resp);
  Plexus.Tcp_mgr.close conn

let create ?(port = 80) ?routes stack =
  let t =
    {
      stack;
      port;
      routes = (match routes with Some r -> r | None -> default_routes ());
      requests = 0;
      not_found = 0;
    }
  in
  let on_accept conn =
    let buf = Buffer.create 256 in
    Plexus.Tcp_mgr.on_receive conn (fun data ->
        Buffer.add_string buf data;
        let s = Buffer.contents buf in
        match Proto.Str_find.find_sub s "\r\n\r\n" with
        | None -> ()
        | Some _ -> (
            match Proto.Http.parse_request s with
            | Some req -> respond t conn req
            | None ->
                Plexus.Tcp_mgr.send conn
                  (Proto.Http.response_to_string
                     {
                       Proto.Http.status = 400;
                       reason = "Bad Request";
                       headers = [];
                       body = "";
                     });
                Plexus.Tcp_mgr.close conn))
  in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp stack) ~owner:"http" ~port
       ~on_accept ()
   with
  | Ok () -> ()
  | Error (`Port_in_use _) -> invalid_arg "Http_server.create: port in use");
  t

let requests t = t.requests
let not_found_count t = t.not_found
let add_route t path body = Hashtbl.replace t.routes path body
