(* The video client (paper section 5.1): awaits incoming video frames,
   checksums and decompresses each (the checksum pass is charged by the
   UDP layer; the decompression pass here), and writes the result to the
   framebuffer — whose slow device memory dominates, which is exactly the
   paper's observation about where customized protocols do *not* help. *)

type t = {
  host : Netsim.Host.t;
  fb : Netsim.Framebuffer.t;
  costs : Netsim.Costs.t;
  deadline : Sim.Stime.t option; (* inter-frame bound (1.5x the period) *)
  mutable last_frame_at : Sim.Stime.t option;
  jitter : Sim.Stats.Series.t;   (* inter-arrival times, us *)
  mutable deadline_misses : int;
  mutable frames_received : int;
  mutable bytes_received : int;
  mutable frames_displayed : int;
}

let make ?fps host =
  let costs = Netsim.Host.costs host in
  {
    host;
    fb = Netsim.Framebuffer.create ~cpu:(Netsim.Host.cpu host) ~costs;
    costs;
    deadline =
      (match fps with
      | Some fps -> Some (Sim.Stime.of_s_f (1.5 /. float_of_int fps))
      | None -> None);
    last_frame_at = None;
    jitter = Sim.Stats.Series.create ();
    deadline_misses = 0;
    frames_received = 0;
    bytes_received = 0;
    frames_displayed = 0;
  }

(* Shared frame handling: decompress (one pass over the data), then write
   the expanded image to the framebuffer. *)
let handle_frame t len =
  t.frames_received <- t.frames_received + 1;
  t.bytes_received <- t.bytes_received + len;
  let now = Sim.Engine.now (Netsim.Host.engine t.host) in
  (match t.last_frame_at with
  | Some prev ->
      let gap = Sim.Stime.sub now prev in
      Sim.Stats.Series.add_time t.jitter gap;
      (match t.deadline with
      | Some d when Sim.Stime.compare gap d > 0 ->
          t.deadline_misses <- t.deadline_misses + 1
      | _ -> ())
  | None -> ());
  t.last_frame_at <- Some now;
  Sim.Cpu.run (Netsim.Host.cpu t.host)
    ~cost:(Codec.decompress_cost t.costs ~len) (fun () ->
      Netsim.Framebuffer.write t.fb ~len:(Codec.decompressed_len ~len)
        (fun () -> t.frames_displayed <- t.frames_displayed + 1))

(* Plexus client: an extension handler on a UDP endpoint. *)
let on_plexus ?fps stack ~port =
  let t = make ?fps (Plexus.Stack.host stack) in
  let udp = Plexus.Stack.udp stack in
  (match Plexus.Udp_mgr.bind udp ~owner:"video-client" ~port with
  | Error (`Port_in_use _) -> invalid_arg "Video_client.on_plexus: port in use"
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp ep (fun ctx ->
            handle_frame t (Plexus.Pctx.payload_len ctx))
      in
      ());
  t

(* DIGITAL UNIX client: a user process on a socket (the socket layer has
   already charged the copy to user space). *)
let on_du ?fps du ~port =
  let t = make ?fps (Osmodel.Du_stack.host du) in
  (match Osmodel.Du_stack.udp_bind du ~port with
  | Error (`Port_in_use _) -> invalid_arg "Video_client.on_du: port in use"
  | Ok sock ->
      Osmodel.Du_stack.udp_set_recv sock (fun ~src:_ data ->
          handle_frame t (String.length data)));
  t

let deadline_misses t = t.deadline_misses
let jitter t = t.jitter
let frames_received t = t.frames_received
let frames_displayed t = t.frames_displayed
let bytes_received t = t.bytes_received
let framebuffer t = t.fb
