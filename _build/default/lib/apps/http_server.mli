(** HTTP/1.0 server as a Plexus extension (the paper's closing demo). *)

type t

val create : ?port:int -> ?routes:(string, string) Hashtbl.t -> Plexus.Stack.t -> t
val add_route : t -> string -> string -> unit
val requests : t -> int
val not_found_count : t -> int
