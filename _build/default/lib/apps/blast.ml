(* Reliable blast: an application-specific transfer protocol over UDP.

   The paper's introduction promises "the framework for supporting new
   protocols [CSZ92], and implementing optimizations ... such as
   application level framing [CT90]".  This is one: a NACK-based bulk
   transfer whose unit of loss recovery is the application's own frame,
   not a byte stream.  The sender blasts every chunk, then the receiver
   asks — once, for exactly the frames it lacks — instead of the
   sender-driven timeout/window machinery of TCP.  Over networks where
   loss is rare, almost every frame crosses exactly once and there is no
   connection state to establish or tear down.

   Wire format (inside a checksummed UDP datagram):
     DATA  : u8 0 | u16 seq | u16 total | bytes
     END   : u8 1 | u16 total
     NACK  : u8 2 | u16 count | count * u16 seq
     DONE  : u8 3

   The receiver answers END with a NACK for missing frames (or DONE);
   the sender resends exactly those and re-sends END.  Timers on both
   sides recover from lost control messages. *)

let t_data = 0
let t_end = 1
let t_nack = 2
let t_done = 3

let max_nack = 64 (* seqs per NACK datagram *)

type sender = {
  s_udp : Plexus.Udp_mgr.t;
  s_ep : Plexus.Endpoint.t;
  s_dst : Proto.Ipaddr.t * int;
  s_engine : Sim.Engine.t;
  chunks : string array;
  mutable s_done : bool;
  mutable retransmissions : int;
  mutable end_probes : int;
  s_on_complete : unit -> unit;
}

let chunk_payload t seq =
  let v = View.create (5 + String.length t.chunks.(seq)) in
  View.set_u8 v 0 t_data;
  View.set_u16 v 1 seq;
  View.set_u16 v 3 (Array.length t.chunks);
  View.set_string v ~off:5 t.chunks.(seq);
  View.to_string (View.ro v)

let end_payload t =
  let v = View.create 3 in
  View.set_u8 v 0 t_end;
  View.set_u16 v 1 (Array.length t.chunks);
  View.to_string (View.ro v)

let send_chunk t seq =
  Plexus.Udp_mgr.send t.s_udp t.s_ep ~dst:t.s_dst (chunk_payload t seq)

let rec arm_end_probe t =
  (* if neither NACK nor DONE shows up, nudge the receiver again *)
  ignore
    (Sim.Engine.schedule_in t.s_engine ~delay:(Sim.Stime.ms 200) (fun () ->
         if not t.s_done then begin
           t.end_probes <- t.end_probes + 1;
           Plexus.Udp_mgr.send t.s_udp t.s_ep ~dst:t.s_dst (end_payload t);
           arm_end_probe t
         end))

let sender_rx t ctx =
  let v = Plexus.Pctx.view ctx in
  if View.length v >= 1 then
    match View.get_u8 v 0 with
    | x when x = t_done ->
        if not t.s_done then begin
          t.s_done <- true;
          t.s_on_complete ()
        end
    | x when x = t_nack && View.length v >= 3 ->
        let count = View.get_u16 v 1 in
        if View.length v >= 3 + (2 * count) then begin
          for i = 0 to count - 1 do
            let seq = View.get_u16 v (3 + (2 * i)) in
            if seq < Array.length t.chunks then begin
              t.retransmissions <- t.retransmissions + 1;
              send_chunk t seq
            end
          done;
          Plexus.Udp_mgr.send t.s_udp t.s_ep ~dst:t.s_dst (end_payload t)
        end
    | _ -> ()

(* Blast [data] to [dst] in [chunk]-byte frames. *)
let send stack ~port ~dst ~chunk ~data ~on_complete =
  if chunk <= 0 then invalid_arg "Blast.send: chunk must be positive";
  let udp = Plexus.Stack.udp stack in
  let ep =
    match Plexus.Udp_mgr.bind udp ~owner:"blast-sender" ~port with
    | Ok ep -> ep
    | Error (`Port_in_use p) ->
        invalid_arg (Printf.sprintf "Blast.send: port %d in use" p)
  in
  let n = (String.length data + chunk - 1) / chunk in
  let chunks =
    Array.init (max n 1) (fun i ->
        let off = i * chunk in
        String.sub data off (min chunk (String.length data - off)))
  in
  let t =
    {
      s_udp = udp;
      s_ep = ep;
      s_dst = dst;
      s_engine = Netsim.Host.engine (Plexus.Stack.host stack);
      chunks;
      s_done = false;
      retransmissions = 0;
      end_probes = 0;
      s_on_complete = on_complete;
    }
  in
  let (_ : unit -> unit) = Plexus.Udp_mgr.install_recv udp ep (sender_rx t) in
  Array.iteri (fun seq _ -> send_chunk t seq) t.chunks;
  Plexus.Udp_mgr.send udp ep ~dst (end_payload t);
  arm_end_probe t;
  t

let retransmissions t = t.retransmissions
let end_probes t = t.end_probes
let complete t = t.s_done

(* ---- receiver ---------------------------------------------------------- *)

type receiver = {
  r_udp : Plexus.Udp_mgr.t;
  r_ep : Plexus.Endpoint.t;
  mutable frames : string option array;
  mutable r_total : int option;
  mutable r_src : (Proto.Ipaddr.t * int) option;
  mutable nacks_sent : int;
  mutable r_done : bool;
  r_on_complete : string -> unit;
}

let missing r =
  match r.r_total with
  | None -> []
  | Some total ->
      List.filter (fun i -> r.frames.(i) = None) (List.init total Fun.id)

let reply r payload =
  match r.r_src with
  | Some dst -> Plexus.Udp_mgr.send r.r_udp r.r_ep ~dst payload
  | None -> ()

let check_completion r =
  match r.r_total with
  | Some total when missing r = [] && not r.r_done ->
      r.r_done <- true;
      let v = View.create 1 in
      View.set_u8 v 0 t_done;
      reply r (View.to_string (View.ro v));
      let buf = Buffer.create (total * 64) in
      Array.iter
        (function Some s -> Buffer.add_string buf s | None -> ())
        r.frames;
      r.r_on_complete (Buffer.contents buf)
  | Some _ when r.r_done ->
      (* duplicate END after completion: re-acknowledge *)
      let v = View.create 1 in
      View.set_u8 v 0 t_done;
      reply r (View.to_string (View.ro v))
  | _ -> ()

let send_nacks r =
  let miss = missing r in
  if miss <> [] then begin
    let batch = List.filteri (fun i _ -> i < max_nack) miss in
    let v = View.create (3 + (2 * List.length batch)) in
    View.set_u8 v 0 t_nack;
    View.set_u16 v 1 (List.length batch);
    List.iteri (fun i seq -> View.set_u16 v (3 + (2 * i)) seq) batch;
    r.nacks_sent <- r.nacks_sent + 1;
    reply r (View.to_string (View.ro v))
  end

let ensure_capacity r total =
  if Array.length r.frames < total then begin
    let bigger = Array.make total None in
    Array.blit r.frames 0 bigger 0 (Array.length r.frames);
    r.frames <- bigger
  end;
  if r.r_total = None then r.r_total <- Some total

let receiver_rx r ctx =
  let v = Plexus.Pctx.view ctx in
  r.r_src <-
    Some ((Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src, ctx.Plexus.Pctx.src_port);
  if View.length v >= 1 then
    match View.get_u8 v 0 with
    | x when x = t_data && View.length v >= 5 ->
        let seq = View.get_u16 v 1 and total = View.get_u16 v 3 in
        ensure_capacity r total;
        if seq < total && r.frames.(seq) = None then
          r.frames.(seq) <-
            Some (View.get_string v ~off:5 ~len:(View.length v - 5))
    | x when x = t_end && View.length v >= 3 ->
        ensure_capacity r (View.get_u16 v 1);
        if missing r = [] then check_completion r else send_nacks r
    | _ -> ()

let receive stack ~port ~on_complete =
  let udp = Plexus.Stack.udp stack in
  let ep =
    match Plexus.Udp_mgr.bind udp ~owner:"blast-receiver" ~port with
    | Ok ep -> ep
    | Error (`Port_in_use p) ->
        invalid_arg (Printf.sprintf "Blast.receive: port %d in use" p)
  in
  let r =
    {
      r_udp = udp;
      r_ep = ep;
      frames = Array.make 0 None;
      r_total = None;
      r_src = None;
      nacks_sent = 0;
      r_done = false;
      r_on_complete = on_complete;
    }
  in
  let (_ : unit -> unit) = Plexus.Udp_mgr.install_recv udp ep (receiver_rx r) in
  r

let nacks_sent r = r.nacks_sent
let received_complete r = r.r_done
