(** EPHEMERAL handler programs: interrupt-level work with safe termination.

    An ephemeral handler returns a value of type {!t} — a sequence of
    atomic, non-blocking actions with modelled costs.  The dispatcher
    executes the actions under an optional time budget; if the budget
    expires, execution stops between actions ("premature termination"
    without damaged invariants).  Because the only way to build actions is
    through the constructors below, an ephemeral handler cannot block —
    the type system plays the role of the paper's compiler check that
    EPHEMERAL procedures call only EPHEMERAL procedures. *)

type action
type t = action list

val action : ?label:string -> cost:Sim.Stime.t -> (unit -> unit) -> action
(** An atomic unit of interrupt-level work. *)

val nothing : t

val enqueue : ?cost:Sim.Stime.t -> 'a Queue.t -> 'a -> action
(** Non-blocking enqueue (Figure 3's [GoodHandler]). *)

val count : ?cost:Sim.Stime.t -> Sim.Stats.Counter.t -> action

val work : label:string -> cost:Sim.Stime.t -> (unit -> unit) -> action

val total_cost : t -> Sim.Stime.t

type result = {
  committed : int;
  total : int;
  terminated : bool;
  consumed : Sim.Stime.t;
}

type plan
(** A budget decision: which prefix of a program will commit. *)

val plan : ?budget:Sim.Stime.t -> t -> plan
(** Decide the committed prefix without side effects. *)

val planned : plan -> result
(** The plan's outcome (costs, termination) before committing. *)

val commit : plan -> result
(** Apply the planned prefix. *)

val execute : ?budget:Sim.Stime.t -> t -> result
(** [execute ?budget t] is [commit (plan ?budget t)]. *)
