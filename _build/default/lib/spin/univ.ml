(* A universal type with typed injection/projection witnesses.

   SPIN interfaces export procedures and variables whose types are checked
   by the Modula-3 compiler when an extension is linked.  We model the
   same property: interface symbols are stored as universal values, and an
   extension can only recover a symbol's value through a witness of the
   right type — a mismatched projection is detected at link time. *)

type t = ..

module type Witness = sig
  type a

  val inj : a -> t
  val proj : t -> a option
end

type 'a witness = (module Witness with type a = 'a)

let witness (type s) () : s witness =
  let module M = struct
    type a = s
    type t += U of s

    let inj x = U x
    let proj = function U x -> Some x | _ -> None
  end in
  (module M : Witness with type a = s)

let inj (type s) (w : s witness) (x : s) =
  let module W = (val w) in
  W.inj x

let proj (type s) (w : s witness) (u : t) : s option =
  let module W = (val w) in
  W.proj u
