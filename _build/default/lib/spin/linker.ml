(* SPIN's dynamic linker (paper section 2, [SFPB96]).

   [link] verifies the compiler signature, resolves every declared import
   against the target protection domain, and only then runs the
   extension's initializer.  The initializer receives a [linkage] whose
   [get] enforces two further properties: it refuses symbols the extension
   did not declare (an extension cannot "discover" symbols at runtime) and
   it type-checks each resolution through the caller's witness.  If
   initialization fails, every cleanup registered so far is run, so a
   failed link leaves no residue.

   [unlink] runs the cleanups in reverse registration order, detaching the
   extension's handlers so that protocols "come and go with their
   corresponding applications". *)

type linked = {
  extension : Extension.t;
  domain : Domain.t;
  mutable undo : (unit -> unit) list;
  mutable live : bool;
}

let run_undo l =
  let undo = l.undo in
  l.undo <- [];
  List.iter (fun f -> f ()) undo

let link ~domain ext =
  if not (Extension.cert_valid ext) then Error Extension.Unsigned
  else begin
    let imports = Extension.imports ext in
    let missing =
      List.filter (fun (iface, sym) -> not (Domain.can_resolve domain ~iface ~sym)) imports
    in
    if missing <> [] then Error (Extension.Unresolved missing)
    else begin
      let l = { extension = ext; domain; undo = []; live = true } in
      let get (type a) (w : a Univ.witness) ~iface ~sym : a =
        if not (List.mem (iface, sym) imports) then
          raise (Extension.Link_failure (Extension.Undeclared_import (iface, sym)));
        match Domain.resolve domain ~iface ~sym with
        | None ->
            raise (Extension.Link_failure (Extension.Unresolved [ (iface, sym) ]))
        | Some u -> (
            match Univ.proj w u with
            | Some v -> v
            | None ->
                raise (Extension.Link_failure (Extension.Type_clash (iface, sym))))
      in
      let linkage =
        { Extension.get; on_unlink = (fun f -> l.undo <- f :: l.undo) }
      in
      match Extension.init ext linkage with
      | () -> Ok l
      | exception Extension.Link_failure f ->
          run_undo l;
          Error f
      | exception e ->
          run_undo l;
          Error (Extension.Init_raised (Printexc.to_string e))
    end
  end

let unlink l =
  if l.live then begin
    l.live <- false;
    run_undo l
  end

let is_linked l = l.live
let extension l = l.extension
let domain l = l.domain
