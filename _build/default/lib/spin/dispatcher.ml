(* The SPIN event dispatcher (paper section 2) with Plexus's delivery modes
   (section 4.1).

   Events are typed: an ['a event] carries payloads of type ['a] (protocol
   events carry packets).  Handlers are installed with an optional guard —
   an arbitrary predicate evaluated before the handler fires; guards are
   Plexus's packet filters.  More than one handler may be installed on an
   event; "the overhead of invoking each handler is roughly one procedure
   call", which the cost model reflects via [costs.dispatch].

   Delivery modes correspond to the two Plexus bars in Figure 5:
   - [Interrupt]: handlers run at interrupt priority in the raiser's
     context.  Ephemeral handlers additionally run under a time budget
     with transactional termination.
   - [Thread]: "each event raise creating a new thread" — every handler
     invocation pays a thread-spawn cost and runs at thread priority. *)

type delivery = Interrupt | Thread

type costs = {
  dispatch : Sim.Stime.t;      (* per-raise bookkeeping, ~ a procedure call *)
  guard : Sim.Stime.t;         (* per guard predicate evaluation *)
  thread_spawn : Sim.Stime.t;  (* thread-mode per-invocation cost *)
}

let default_costs =
  {
    dispatch = Sim.Stime.ns 400;
    guard = Sim.Stime.ns 300;
    thread_spawn = Sim.Stime.us 12;
  }

type t = {
  cpu : Sim.Cpu.t;
  costs : costs;
  raises : Sim.Stats.Counter.t;
  guard_evals : Sim.Stats.Counter.t;
  invocations : Sim.Stats.Counter.t;
  terminations : Sim.Stats.Counter.t;
  faults : Sim.Stats.Counter.t;
}

let create ~cpu ~costs =
  {
    cpu;
    costs;
    raises = Sim.Stats.Counter.create ();
    guard_evals = Sim.Stats.Counter.create ();
    invocations = Sim.Stats.Counter.create ();
    terminations = Sim.Stats.Counter.create ();
    faults = Sim.Stats.Counter.create ();
  }

let cpu t = t.cpu
let costs t = t.costs
let raises t = Sim.Stats.Counter.get t.raises
let guard_evals t = Sim.Stats.Counter.get t.guard_evals
let invocations t = Sim.Stats.Counter.get t.invocations
let terminations t = Sim.Stats.Counter.get t.terminations
let faults t = Sim.Stats.Counter.get t.faults

type 'a kind =
  | Plain of {
      cost : Sim.Stime.t;
      dyncost : ('a -> Sim.Stime.t) option;
          (* data-touching work that scales with the payload *)
      fn : 'a -> unit;
    }
  | Eph of { budget : Sim.Stime.t option; fn : 'a -> Ephemeral.t }

type 'a handler = {
  hid : int;
  guard : 'a -> bool;
  gcost : Sim.Stime.t;  (* extra per-evaluation cost (interpreted filters) *)
  kind : 'a kind;
}

type 'a event = {
  disp : t;
  ename : string;
  mutable mode : delivery;
  mutable handlers : 'a handler list; (* install order *)
  mutable next_hid : int;
}

let event disp ?(mode = Interrupt) ename =
  { disp; ename; mode; handlers = []; next_hid = 0 }

let name ev = ev.ename
let mode ev = ev.mode
let set_mode ev m = ev.mode <- m
let handler_count ev = List.length ev.handlers

let add_handler ev guard gcost kind =
  let hid = ev.next_hid in
  ev.next_hid <- hid + 1;
  ev.handlers <- ev.handlers @ [ { hid; guard; gcost; kind } ];
  fun () ->
    ev.handlers <- List.filter (fun h -> h.hid <> hid) ev.handlers

let no_guard _ = true

let install ev ?(guard = no_guard) ?(gcost = Sim.Stime.zero) ?dyncost ~cost fn =
  add_handler ev guard gcost (Plain { cost; dyncost; fn })

let install_ephemeral ev ?(guard = no_guard) ?(gcost = Sim.Stime.zero) ?budget
    fn =
  add_handler ev guard gcost (Eph { budget; fn })

(* Fault containment: extension code that raises must not take the
   kernel down.  The typesafe language already rules out wild memory
   access; runtime exceptions are caught here, counted, and the faulting
   handler is uninstalled — the extension model's equivalent of killing
   the offending extension rather than the system. *)
let fault ev h =
  Sim.Stats.Counter.incr ev.disp.faults;
  ev.handlers <- List.filter (fun h' -> h'.hid <> h.hid) ev.handlers

let contain ev h f = try f () with _exn -> fault ev h

let still_installed ev h = List.exists (fun h' -> h'.hid = h.hid) ev.handlers

let deliver ev v h =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.invocations;
  let prio =
    match ev.mode with Interrupt -> Sim.Cpu.Interrupt | Thread -> Sim.Cpu.Thread
  in
  let spawn =
    match ev.mode with
    | Interrupt -> Sim.Stime.zero
    | Thread -> d.costs.thread_spawn
  in
  match h.kind with
  | Plain { cost; dyncost; fn } ->
      let cost =
        match dyncost with
        | None -> cost
        | Some f -> Sim.Stime.add cost (f v)
      in
      Sim.Cpu.run d.cpu ~prio ~cost:(Sim.Stime.add spawn cost) (fun () ->
          (* skip if uninstalled while this invocation was queued *)
          if still_installed ev h then contain ev h (fun () -> fn v))
  | Eph { budget; fn } -> (
      match (try Some (Ephemeral.plan ?budget (fn v)) with _ -> None) with
      | None -> fault ev h
      | Some plan ->
          let r = Ephemeral.planned plan in
          Sim.Cpu.run d.cpu ~prio
            ~cost:(Sim.Stime.add spawn r.Ephemeral.consumed)
            (fun () ->
              if still_installed ev h then
                contain ev h (fun () ->
                    let r = Ephemeral.commit plan in
                    if r.Ephemeral.terminated then
                      Sim.Stats.Counter.incr d.terminations)))

let raise ev v =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.raises;
  let handlers = ev.handlers in
  let n_guards = List.length handlers in
  Sim.Stats.Counter.add d.guard_evals n_guards;
  let extra_gcost =
    List.fold_left
      (fun acc h -> Sim.Stime.add acc h.gcost)
      Sim.Stime.zero handlers
  in
  let demux_cost =
    Sim.Stime.add extra_gcost
      (Sim.Stime.add d.costs.dispatch (Sim.Stime.mul d.costs.guard n_guards))
  in
  let prio =
    match ev.mode with Interrupt -> Sim.Cpu.Interrupt | Thread -> Sim.Cpu.Thread
  in
  Sim.Cpu.run d.cpu ~prio ~cost:demux_cost (fun () ->
      (* Demultiplex against the *current* handler list: a handler
         uninstalled while this raise was queued no longer fires. *)
      List.iter
        (fun h ->
          (* a faulting guard is contained the same way *)
          let accepted = try h.guard v with _ -> fault ev h; false in
          if accepted then deliver ev v h)
        ev.handlers)
