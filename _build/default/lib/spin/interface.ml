(* A named set of typed symbols — the unit of visibility in SPIN's logical
   protection domains (paper section 2).  The Ethernet interface of
   Figure 2, for instance, would export the symbols "PacketRecv" (an
   event) and "InstallHandler" (a manager operation). *)

type t = { name : string; symbols : (string, Univ.t) Hashtbl.t }

let create name = { name; symbols = Hashtbl.create 8 }

let name t = t.name

exception Duplicate_symbol of string

let export t ~sym w v =
  if Hashtbl.mem t.symbols sym then
    raise (Duplicate_symbol (t.name ^ "." ^ sym));
  Hashtbl.replace t.symbols sym (Univ.inj w v)

let find t ~sym = Hashtbl.find_opt t.symbols sym

let mem t ~sym = Hashtbl.mem t.symbols sym

let symbols t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.symbols [] |> List.sort compare
