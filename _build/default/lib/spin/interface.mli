(** Named interfaces of typed symbols.

    An interface provides "access to procedures and variables" (paper,
    section 2); extensions can only name symbols contained in interfaces
    visible from the protection domain they are linked against. *)

type t

val create : string -> t
(** [create name] is an empty interface. *)

val name : t -> string

exception Duplicate_symbol of string

val export : t -> sym:string -> 'a Univ.witness -> 'a -> unit
(** Publish a typed symbol.  @raise Duplicate_symbol on redefinition. *)

val find : t -> sym:string -> Univ.t option
val mem : t -> sym:string -> bool

val symbols : t -> string list
(** Sorted symbol names, for diagnostics. *)
