(** Dynamic linking and unlinking of extensions into protection domains.

    Solves the paper's "install" problem: code enters the kernel only if
    it is compiler-signed and all of its imports resolve inside the domain
    it is linked against.  Unlinking reverses every installation the
    extension made. *)

type linked
(** A successfully linked extension instance. *)

val link :
  domain:Domain.t -> Extension.t -> (linked, Extension.failure) result
(** Verify, resolve and initialize.  On failure the kernel is left exactly
    as it was. *)

val unlink : linked -> unit
(** Run the extension's cleanups (handler uninstalls etc.).  Idempotent. *)

val is_linked : linked -> bool
val extension : linked -> Extension.t
val domain : linked -> Domain.t
