(* Kernel threads, as a thin veneer over the CPU model.  SPIN processes
   non-interrupt protocol work in kernel threads; DIGITAL UNIX user
   processes reuse the same mechanism with an added context-switch cost
   (see Osmodel). *)

let spawn cpu ?(create_cost = Sim.Stime.us 12) body =
  Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost:create_cost body

let run cpu ~cost body = Sim.Cpu.run cpu ~prio:Sim.Cpu.Thread ~cost body
