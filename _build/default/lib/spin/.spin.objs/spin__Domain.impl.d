lib/spin/domain.ml: Interface List
