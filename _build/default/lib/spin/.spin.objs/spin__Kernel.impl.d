lib/spin/kernel.ml: Dispatcher Domain Hashtbl Interface Linker List Sim
