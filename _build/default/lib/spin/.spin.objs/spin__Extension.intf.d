lib/spin/extension.mli: Format Univ
