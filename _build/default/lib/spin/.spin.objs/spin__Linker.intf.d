lib/spin/linker.mli: Domain Extension
