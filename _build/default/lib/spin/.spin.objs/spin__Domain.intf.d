lib/spin/domain.mli: Interface Univ
