lib/spin/kernel.mli: Dispatcher Domain Extension Interface Linker Sim
