lib/spin/interface.ml: Hashtbl List Univ
