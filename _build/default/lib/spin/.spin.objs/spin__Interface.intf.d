lib/spin/interface.mli: Univ
