lib/spin/dispatcher.ml: Ephemeral List Sim
