lib/spin/extension.ml: Fmt List Univ
