lib/spin/kthread.mli: Sim
