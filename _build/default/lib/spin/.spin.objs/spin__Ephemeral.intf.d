lib/spin/ephemeral.mli: Queue Sim
