lib/spin/dispatcher.mli: Ephemeral Sim
