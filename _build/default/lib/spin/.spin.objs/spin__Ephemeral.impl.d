lib/spin/ephemeral.ml: List Queue Sim
