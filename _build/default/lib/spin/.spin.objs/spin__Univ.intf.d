lib/spin/univ.mli:
