lib/spin/univ.ml:
