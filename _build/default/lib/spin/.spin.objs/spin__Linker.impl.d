lib/spin/linker.ml: Domain Extension List Printexc Univ
