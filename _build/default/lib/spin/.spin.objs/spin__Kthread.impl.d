lib/spin/kthread.ml: Sim
