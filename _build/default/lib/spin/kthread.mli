(** Kernel threads over the simulated CPU. *)

val spawn :
  Sim.Cpu.t -> ?create_cost:Sim.Stime.t -> (unit -> unit) -> unit
(** Create a thread; the body runs after the creation cost is charged at
    thread priority. *)

val run : Sim.Cpu.t -> cost:Sim.Stime.t -> (unit -> unit) -> unit
(** Charge [cost] at thread priority, then run the continuation. *)
