(* Logical protection domains (paper section 2): first-class sets of
   visible interfaces, referenced by capability.  "If an extension
   references a symbol that is not contained within the logical protection
   domain against which it is being linked, the link will fail."

   A Domain.t value *is* the capability: possession is the only way to
   link against it, and domains can be created, copied (extended) and
   passed around, exactly as the paper describes. *)

type t = { name : string; mutable interfaces : Interface.t list }

let create name = { name; interfaces = [] }

let name t = t.name

let add t iface =
  if not (List.memq iface t.interfaces) then
    t.interfaces <- iface :: t.interfaces

let of_interfaces name ifaces =
  let t = create name in
  List.iter (add t) ifaces;
  t

(* A new domain combining the visibility of both arguments; neither
   argument is modified (domains are copied, not aliased). *)
let union name a b =
  let t = create name in
  List.iter (add t) a.interfaces;
  List.iter (add t) b.interfaces;
  t

let interfaces t = t.interfaces

let find_interface t iface_name =
  List.find_opt (fun i -> Interface.name i = iface_name) t.interfaces

let resolve t ~iface ~sym =
  match find_interface t iface with
  | None -> None
  | Some i -> Interface.find i ~sym

let can_resolve t ~iface ~sym = resolve t ~iface ~sym <> None
