(** Universal values with typed witnesses.

    The substrate for typed symbols in {!Interface}: a value of any type
    can be injected into {!t}, and recovered only through the same
    {!witness} that injected it.  Projection through the wrong witness
    yields [None] — the model of Modula-3's link-time type checking. *)

type t

type 'a witness

val witness : unit -> 'a witness
(** A fresh witness.  Two witnesses never project each other's values. *)

val inj : 'a witness -> 'a -> t
val proj : 'a witness -> t -> 'a option
