(** A SPIN kernel instance (one per simulated host).

    Owns the host CPU, the event dispatcher, the interface namespace and
    the root protection domain; fronts the dynamic linker. *)

type t

val create : ?costs:Dispatcher.costs -> Sim.Engine.t -> name:string -> t

val name : t -> string
val engine : t -> Sim.Engine.t
val cpu : t -> Sim.Cpu.t
val dispatcher : t -> Dispatcher.t
val now : t -> Sim.Stime.t

val root_domain : t -> Domain.t
(** The domain containing every kernel interface; handed out sparingly. *)

val declare_interface : t -> string -> Interface.t
(** Find-or-create a named interface, visible in the root domain. *)

val find_interface : t -> string -> Interface.t option

val restricted_domain : t -> string -> string list -> Domain.t
(** A fresh domain exposing only the named (existing) interfaces.
    @raise Invalid_argument if an interface does not exist. *)

val link :
  t -> domain:Domain.t -> Extension.t -> (Linker.linked, Extension.failure) result
