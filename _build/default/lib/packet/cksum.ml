(* The Internet checksum (RFC 1071): one's-complement sum of 16-bit
   big-endian words.  Used by IP, ICMP, UDP and TCP. *)

let fold_words acc (v : _ View.t) =
  let data = View.unsafe_data v and off = View.unsafe_off v in
  let len = View.length v in
  let sum = ref acc in
  let i = ref 0 in
  while !i + 1 < len do
    sum :=
      !sum
      + (Char.code (Bytes.get data (off + !i)) lsl 8)
      + Char.code (Bytes.get data (off + !i + 1));
    i := !i + 2
  done;
  if len land 1 = 1 then
    sum := !sum + (Char.code (Bytes.get data (off + len - 1)) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let of_view v = finish (fold_words 0 v)

let of_views vs = finish (List.fold_left fold_words 0 vs)

(* One's-complement addition of two 16-bit partial sums, used for the
   pseudo-header checksums of UDP and TCP. *)
let add16 a b =
  let s = a + b in
  (s land 0xffff) + (s lsr 16)

let valid v = of_view v = 0

(* RFC 1624 incremental update: recompute a checksum after a 16-bit field
   changed from [old_w] to [new_w].  Used by the in-kernel forwarder when it
   rewrites addresses/ports without touching the rest of the packet. *)
let update ~cksum ~old_w ~new_w =
  let hc' = add16 (add16 (lnot cksum land 0xffff) (lnot old_w land 0xffff)) new_w in
  lnot ((hc' land 0xffff) + (hc' lsr 16)) land 0xffff
