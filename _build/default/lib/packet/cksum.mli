(** Internet checksum (RFC 1071) with incremental update (RFC 1624). *)

val of_view : _ View.t -> int
(** Checksum of a byte window, as a 16-bit value. *)

val of_views : _ View.t list -> int
(** Checksum of the concatenation of several windows (e.g. pseudo-header
    followed by payload) without materializing the concatenation.
    Note: each window is treated as word-aligned at its start, so interior
    windows should have even length (true for all protocol uses here). *)

val valid : _ View.t -> bool
(** True iff the window (which includes its checksum field) sums to zero. *)

val add16 : int -> int -> int
(** One's-complement 16-bit addition of partial sums. *)

val update : cksum:int -> old_w:int -> new_w:int -> int
(** Incrementally adjust [cksum] after a 16-bit word changed from [old_w]
    to [new_w], per RFC 1624. *)

val finish : int -> int
(** Fold a running sum and complement it into a final 16-bit checksum. *)

val fold_words : int -> _ View.t -> int
(** Accumulate a window into a running (unfolded) sum. *)
