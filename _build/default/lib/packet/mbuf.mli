(** Packet buffers (mbufs) with read-only views.

    Plexus passes packets through the protocol graph as mbufs (paper,
    section 3.4, footnote 1) and relies on the language's [READONLY]
    qualifier to prevent handlers from modifying shared packets.  Here the
    same guarantee comes from the ['perm] phantom parameter: a handler
    holding an [ro t] cannot call any mutating operation — the program does
    not type-check, exactly like [BadPacketRecv] in the paper's Figure 4.

    An mbuf is a chain of segments with headroom, so pushing a header with
    {!prepend} is O(1) and copy-free on the common path. *)

type ro = [ `Ro ]
type rw = [ `Rw ]

type 'perm t
(** A packet buffer with access permission ['perm]. *)

val alloc : ?headroom:int -> int -> rw t
(** [alloc n] is a zero-filled packet of [n] bytes with header headroom
    (default 64 bytes). *)

val of_string : string -> rw t

val free : _ t -> unit
(** Return the buffer to the pool (accounting only). *)

val stats : unit -> int * int
(** [(total_allocations, live)] since the last {!reset_stats}. *)

val reset_stats : unit -> unit

val length : _ t -> int
val num_segs : _ t -> int
val is_empty : _ t -> bool

val ro : _ t -> ro t
(** Forget write permission (zero-cost, shares the bytes).  This is what a
    protocol layer does before raising a [PacketRecv] event. *)

val copy_rw : _ t -> rw t
(** Deep copy with write permission — the explicit copy-on-write of the
    paper's [GoodPacketRecv]. *)

val view : 'p t -> 'p View.t
(** A view of the packet's bytes.  If the chain has several segments they
    are first made contiguous (copying); call {!pullup} to bound how much
    must be contiguous instead. *)

val views : 'p t -> 'p View.t list
(** Per-segment views, zero-copy (for checksumming chains). *)

val pullup : _ t -> int -> unit
(** [pullup t n] ensures the first segment holds at least [n] contiguous
    bytes, copying only if needed (BSD [m_pullup]). *)

val prepend : rw t -> int -> View.rw View.t
(** [prepend t n] grows the packet by [n] bytes at the front — O(1) when
    headroom suffices — and returns a writable view of the new header
    region. *)

val extend_back : rw t -> int -> View.rw View.t
(** Grow the packet at the tail, returning a view of the new region. *)

val trim_front : rw t -> int -> unit
(** Drop [n] bytes from the front (e.g. stepping past a header on input). *)

val trim_back : rw t -> int -> unit

val concat : rw t -> rw t -> unit
(** [concat a b] moves all of [b]'s data to the end of [a]; [b] becomes
    empty. *)

val sub_copy : _ t -> off:int -> len:int -> rw t
(** Copy of a byte range as a fresh packet. *)

val to_string : _ t -> string
val equal : _ t -> _ t -> bool
val pp : Format.formatter -> _ t -> unit
