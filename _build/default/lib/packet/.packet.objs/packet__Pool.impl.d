lib/packet/pool.ml: Fmt Mbuf String View
