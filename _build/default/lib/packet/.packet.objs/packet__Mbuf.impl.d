lib/packet/mbuf.ml: Buffer Bytes Fmt List String View
