lib/packet/pool.mli: Format Mbuf
