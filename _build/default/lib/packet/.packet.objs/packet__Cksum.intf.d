lib/packet/cksum.mli: View
