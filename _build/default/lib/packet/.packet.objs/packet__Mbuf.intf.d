lib/packet/mbuf.mli: Format View
