lib/packet/view.mli: Bytes Format
