lib/packet/cksum.ml: Bytes Char List View
