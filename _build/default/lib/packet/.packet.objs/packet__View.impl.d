lib/packet/view.ml: Bytes Char Fmt Stdlib String
