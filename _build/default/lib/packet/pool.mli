(** Bounded packet-buffer pools (the kernel's mbuf budget).

    Allocation fails — and is counted — when the pool is exhausted;
    receive paths use this to shed load instead of growing without
    bound. *)

type t

val create : ?name:string -> capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val alloc : t -> ?headroom:int -> int -> Mbuf.rw Mbuf.t option
(** [None] when the pool is exhausted (counted as a failure). *)

val alloc_string : t -> string -> Mbuf.rw Mbuf.t option

val free : t -> _ Mbuf.t -> unit
(** Return a buffer to the pool (accounting). *)

val name : t -> string
val capacity : t -> int
val live : t -> int
val allocations : t -> int
val failures : t -> int

val peak : t -> int
(** High-water mark of live buffers. *)

val pp : Format.formatter -> t -> unit
