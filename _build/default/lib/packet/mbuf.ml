(* Berkeley-style packet buffers (mbufs), the packet representation Plexus
   uses to move data through the protocol graph (paper section 3.4).

   An mbuf is a chain of segments; each segment is a window onto a byte
   buffer with headroom in front so that protocol layers can prepend
   headers without copying.  The ['perm] phantom type parameter mirrors the
   paper's READONLY discipline: handlers receive [ro] mbufs and the type
   checker rejects writes through them; a writable copy must be made
   explicitly with [copy_rw] (Figure 4's explicit copy-on-write). *)

type seg = { buf : Bytes.t; mutable off : int; mutable len : int }

type raw = { mutable segs : seg list; mutable total : int }

type ro = [ `Ro ]
type rw = [ `Rw ]
type 'perm t = raw

let default_headroom = 64

(* Allocation accounting, standing in for the kernel mbuf pool that the
   SPIN "packet buffer" protection domain exposes to most extensions. *)
let allocated = ref 0
let live = ref 0

let stats () = (!allocated, !live)
let reset_stats () = allocated := 0; live := 0

let alloc ?(headroom = default_headroom) len : rw t =
  if len < 0 || headroom < 0 then invalid_arg "Mbuf.alloc";
  incr allocated;
  incr live;
  let seg = { buf = Bytes.make (headroom + len) '\000'; off = headroom; len } in
  { segs = [ seg ]; total = len }

let free (_ : _ t) = decr live

let length t = t.total
let num_segs t = List.length t.segs
let is_empty t = t.total = 0

let of_string s : rw t =
  let m = alloc (String.length s) in
  (match m.segs with
  | [ seg ] -> Bytes.blit_string s 0 seg.buf seg.off (String.length s)
  | _ -> assert false);
  m

let seg_view seg = View.of_bytes ~off:seg.off ~len:seg.len seg.buf

let views (t : 'p t) : 'p View.t list =
  List.map (fun seg -> View.unsafe_cast (seg_view seg)) t.segs

let ro (t : _ t) : ro t = t

let to_string t =
  let b = Buffer.create t.total in
  List.iter (fun seg -> Buffer.add_subbytes b seg.buf seg.off seg.len) t.segs;
  Buffer.contents b

let copy_rw (t : _ t) : rw t = of_string (to_string t)

(* Make at least [n] bytes contiguous at the head of the chain, copying
   (like BSD m_pullup) only when the first segment is too short. *)
let pullup (t : _ t) n =
  if n > t.total then invalid_arg "Mbuf.pullup: chain too short";
  match t.segs with
  | first :: _ when first.len >= n -> ()
  | _ ->
      let flat = to_string t in
      let seg =
        {
          buf = Bytes.make (default_headroom + String.length flat) '\000';
          off = default_headroom;
          len = String.length flat;
        }
      in
      Bytes.blit_string flat 0 seg.buf seg.off (String.length flat);
      t.segs <- [ seg ]

let view (t : 'p t) : 'p View.t =
  match t.segs with
  | [] -> View.unsafe_cast (View.create 0)
  | [ seg ] -> View.unsafe_cast (seg_view seg)
  | _ :: _ ->
      (* Multi-segment chains are flattened on demand; protocol code calls
         [pullup] first to control when this copy happens. *)
      pullup t t.total;
      (match t.segs with
      | [ s ] -> View.unsafe_cast (seg_view s)
      | _ -> assert false)

let prepend (t : rw t) n : View.rw View.t =
  if n < 0 then invalid_arg "Mbuf.prepend";
  (match t.segs with
  | first :: _ when first.off >= n ->
      first.off <- first.off - n;
      first.len <- first.len + n
  | segs ->
      let seg = { buf = Bytes.make (default_headroom + n) '\000'; off = default_headroom; len = n } in
      incr allocated;
      t.segs <- seg :: segs);
  t.total <- t.total + n;
  match t.segs with
  | first :: _ -> View.of_bytes ~off:first.off ~len:n first.buf
  | [] -> assert false

let extend_back (t : rw t) n : View.rw View.t =
  if n < 0 then invalid_arg "Mbuf.extend_back";
  let rec last = function [ x ] -> Some x | _ :: tl -> last tl | [] -> None in
  (match last t.segs with
  | Some seg when seg.off + seg.len + n <= Bytes.length seg.buf ->
      seg.len <- seg.len + n
  | _ ->
      let seg = { buf = Bytes.make n '\000'; off = 0; len = n } in
      incr allocated;
      t.segs <- t.segs @ [ seg ]);
  t.total <- t.total + n;
  match last t.segs with
  | Some seg -> View.of_bytes ~off:(seg.off + seg.len - n) ~len:n seg.buf
  | None -> assert false

let trim_front (t : rw t) n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.trim_front";
  let rec go n segs =
    if n = 0 then segs
    else
      match segs with
      | [] -> assert false
      | seg :: tl ->
          if seg.len <= n then go (n - seg.len) tl
          else begin
            seg.off <- seg.off + n;
            seg.len <- seg.len - n;
            segs
          end
  in
  t.segs <- go n t.segs;
  t.total <- t.total - n

let trim_back (t : rw t) n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.trim_back";
  let target = t.total - n in
  let rec go kept segs =
    match segs with
    | [] -> []
    | seg :: tl ->
        if kept >= target then []
        else if kept + seg.len <= target then seg :: go (kept + seg.len) tl
        else begin
          seg.len <- target - kept;
          [ seg ]
        end
  in
  t.segs <- go 0 t.segs;
  t.total <- target

let concat (a : rw t) (b : rw t) =
  a.segs <- a.segs @ b.segs;
  a.total <- a.total + b.total;
  b.segs <- [];
  b.total <- 0

let sub_copy (t : _ t) ~off ~len : rw t =
  if off < 0 || len < 0 || off + len > t.total then invalid_arg "Mbuf.sub_copy";
  let s = to_string t in
  of_string (String.sub s off len)

let equal a b = to_string a = to_string b

let pp ppf t =
  Fmt.pf ppf "mbuf(len=%d segs=%d %a)" t.total (num_segs t)
    View.pp (View.of_string (to_string t))
