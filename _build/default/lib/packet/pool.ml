(* Bounded packet-buffer pools.

   SPIN exposes "the interface for allocating packet buffers" to most
   extensions; a real kernel bounds that resource.  A pool enforces a
   buffer budget: allocation fails (and is counted) when the budget is
   exhausted, which is how receive paths shed load when a consumer falls
   behind rather than growing without bound. *)

type t = {
  name : string;
  capacity : int;
  mutable live : int;
  mutable allocations : int;
  mutable failures : int;
  mutable peak : int;
}

let create ?(name = "pool") ~capacity () =
  if capacity <= 0 then invalid_arg "Pool.create: capacity must be positive";
  { name; capacity; live = 0; allocations = 0; failures = 0; peak = 0 }

let name t = t.name
let capacity t = t.capacity
let live t = t.live
let allocations t = t.allocations
let failures t = t.failures
let peak t = t.peak

let alloc t ?headroom len =
  if t.live >= t.capacity then begin
    t.failures <- t.failures + 1;
    None
  end
  else begin
    t.live <- t.live + 1;
    t.allocations <- t.allocations + 1;
    if t.live > t.peak then t.peak <- t.live;
    Some (Mbuf.alloc ?headroom len)
  end

let alloc_string t s =
  match alloc t (String.length s) with
  | None -> None
  | Some m ->
      View.set_string (Mbuf.view m) ~off:0 s;
      Some m

(* Buffers are plain mbufs; freeing is an accounting act, as in the
   simulator's global pool. *)
let free t (m : _ Mbuf.t) =
  Mbuf.free m;
  if t.live > 0 then t.live <- t.live - 1

let pp ppf t =
  Fmt.pf ppf "%s: %d/%d live (peak %d, %d allocs, %d failures)" t.name t.live
    t.capacity t.peak t.allocations t.failures
