(** Safe, zero-copy typed access to packet bytes.

    This module reproduces the role of the paper's [VIEW] operator
    (section 3.2): protocol code must interpret "an array of bytes in a
    device buffer" as structured headers without copying and without the
    possibility of unsafe memory access.  A {!t} is a bounds-checked window
    onto a byte buffer; every accessor validates its offset and width.

    The ['perm] phantom type parameter carries the access permission:
    [ro t] values cannot be written through, mirroring Modula-3's
    [READONLY] packets in Figure 4 of the paper.  The restriction is
    enforced by the OCaml type checker — passing an [ro] view to a setter
    is a compile-time error. *)

type ro = [ `Ro ]
type rw = [ `Rw ]

type 'perm t
(** A window onto a byte buffer with permission ['perm]. *)

exception Out_of_bounds of { index : int; width : int; length : int }
(** Raised by any access that would escape the window. *)

val of_bytes : ?off:int -> ?len:int -> Bytes.t -> rw t
(** View a byte buffer (default: all of it) writable.
    @raise Invalid_argument if the window exceeds the buffer. *)

val of_string : string -> ro t
(** Read-only view of a string's bytes (copies once into a buffer). *)

val create : int -> rw t
(** Fresh zero-filled buffer of the given length. *)

val length : _ t -> int

val ro : _ t -> ro t
(** Forget write permission.  Zero-cost; the underlying bytes are shared. *)

val sub : 'p t -> off:int -> len:int -> 'p t
(** Narrow the window.  @raise Out_of_bounds on escape. *)

val shift : 'p t -> int -> 'p t
(** [shift v n] drops the first [n] bytes (e.g. to step past a header). *)

(** {1 Big-endian (network order) accessors} *)

val get_u8 : _ t -> int -> int
val get_u16 : _ t -> int -> int
val get_u32 : _ t -> int -> int
val get_string : _ t -> off:int -> len:int -> string
val to_string : _ t -> string

val set_u8 : rw t -> int -> int -> unit
val set_u16 : rw t -> int -> int -> unit
val set_u32 : rw t -> int -> int -> unit
val set_string : rw t -> off:int -> string -> unit

val blit : src:_ t -> dst:rw t -> src_off:int -> dst_off:int -> len:int -> unit
val fill : rw t -> char -> unit

val copy : _ t -> rw t
(** Explicit copy — the only way to obtain a writable version of read-only
    data (the paper's copy-on-write discipline). *)

val equal : _ t -> _ t -> bool

val fold_u8 : ('a -> int -> 'a) -> 'a -> _ t -> 'a
(** Fold over the bytes of the window. *)

val pp : Format.formatter -> _ t -> unit
(** Hex dump (truncated) for debugging. *)

(**/**)

val unsafe_data : _ t -> Bytes.t
val unsafe_off : _ t -> int

val unsafe_cast : _ t -> 'p t
(** Permission cast for trusted substrate code (mbuf internals).  Never use
    from protocol or extension code. *)
