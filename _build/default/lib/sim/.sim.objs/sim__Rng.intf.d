lib/sim/rng.mli:
