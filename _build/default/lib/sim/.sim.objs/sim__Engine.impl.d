lib/sim/engine.ml: Pheap Rng Stime
