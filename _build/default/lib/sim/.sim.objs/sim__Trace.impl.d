lib/sim/trace.ml: Fmt Format Stime
