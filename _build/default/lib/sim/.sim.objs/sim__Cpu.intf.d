lib/sim/cpu.mli: Engine Stime
