lib/sim/pheap.mli:
