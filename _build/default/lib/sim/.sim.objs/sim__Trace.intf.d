lib/sim/trace.mli: Format Stime
