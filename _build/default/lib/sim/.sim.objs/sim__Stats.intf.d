lib/sim/stats.mli: Stime
