lib/sim/cpu.ml: Engine Queue Stime
