lib/sim/stats.ml: Array Fmt List Stdlib Stime
