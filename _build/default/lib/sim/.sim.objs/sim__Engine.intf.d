lib/sim/engine.mli: Rng Stime
