lib/sim/stime.ml: Fmt Stdlib
