(* The discrete-event loop.  Events are thunks keyed by their firing time;
   the loop repeatedly pops the earliest event, advances the clock to it and
   runs it.  Cancellation is lazy: a cancelled handle's thunk is skipped
   when popped. *)

type handle = { mutable cancelled : bool }

type event = { h : handle; thunk : unit -> unit }

type t = {
  mutable clock : Stime.t;
  queue : event Pheap.t;
  rng : Rng.t;
  mutable events_run : int;
}

let create ?(seed = 42) () =
  { clock = Stime.zero; queue = Pheap.create (); rng = Rng.create seed; events_run = 0 }

let now t = t.clock
let rng t = t.rng
let events_run t = t.events_run
let pending t = Pheap.size t.queue

let schedule t ~at thunk =
  if Stime.compare at t.clock < 0 then
    invalid_arg "Engine.schedule: cannot schedule in the past";
  let h = { cancelled = false } in
  Pheap.add t.queue ~key:(Stime.to_ns at) { h; thunk };
  h

let schedule_in t ~delay thunk = schedule t ~at:(Stime.add t.clock delay) thunk

let cancel h = h.cancelled <- true

let step t =
  match Pheap.pop_min t.queue with
  | None -> false
  | Some (key, ev) ->
      t.clock <- Stime.ns key;
      if not ev.h.cancelled then begin
        t.events_run <- t.events_run + 1;
        ev.thunk ()
      end;
      true

let run ?until ?(max_events = max_int) t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Pheap.peek_min t.queue with
        | None -> false
        | Some (key, _) -> key <= Stime.to_ns limit)
  in
  let rec loop n =
    if n < max_events && continue () && step t then loop (n + 1)
  in
  loop 0;
  (* If we stopped because of the horizon, advance the clock to it so that
     utilization windows are well-defined. *)
  match until with
  | Some limit when Stime.compare t.clock limit < 0 -> t.clock <- limit
  | _ -> ()
