(* Simulated time, stored as integer nanoseconds.  OCaml's native int is
   63-bit on 64-bit platforms, giving ~292 years of range. *)

type t = int

let zero = 0
let ns n = n
let us u = u * 1_000
let ms m = m * 1_000_000
let s x = x * 1_000_000_000

let of_us_f u = int_of_float (u *. 1_000. +. 0.5)
let of_s_f x = int_of_float (x *. 1e9 +. 0.5)

let to_ns t = t
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_s t = float_of_int t /. 1e9

let add = ( + )
let sub = ( - )
let mul t k = t * k
let scale t f = int_of_float (float_of_int t *. f +. 0.5)
let max = Stdlib.max
let min = Stdlib.min
let compare = Stdlib.compare
let equal : t -> t -> bool = ( = )
let ( + ) = add
let ( - ) = sub
let is_positive t = t > 0

let pp ppf t =
  if t < 1_000 then Fmt.pf ppf "%dns" t
  else if t < 1_000_000 then Fmt.pf ppf "%.2fus" (to_us t)
  else if t < 1_000_000_000 then Fmt.pf ppf "%.3fms" (to_ms t)
  else Fmt.pf ppf "%.3fs" (to_s t)

let to_string t = Fmt.str "%a" pp t
