(** Simulated time.

    Time in the simulator is an integer count of nanoseconds.  All
    scheduling, CPU accounting and device service times are expressed as
    values of {!t}. *)

type t = private int
(** An instant or duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us u] is [u] microseconds. *)

val ms : int -> t
(** [ms m] is [m] milliseconds. *)

val s : int -> t
(** [s x] is [x] seconds. *)

val of_us_f : float -> t
(** [of_us_f u] converts a fractional microsecond duration, rounding to the
    nearest nanosecond. *)

val of_s_f : float -> t
(** [of_s_f x] converts a fractional second duration. *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t

val mul : t -> int -> t
(** [mul t k] is [t] repeated [k] times. *)

val scale : t -> float -> t
(** [scale t f] is [t] scaled by factor [f], rounded to nanoseconds. *)

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val is_positive : t -> bool

val pp : Format.formatter -> t -> unit
(** Pretty-print with an auto-selected unit (ns, us, ms or s). *)

val to_string : t -> string
