(** Stable binary min-heap keyed by integers.

    Used as the simulator's event queue.  Entries with equal keys pop in
    insertion order, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first). *)

val peek_min : 'a t -> (int * 'a) option
(** Smallest entry without removing it. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the smallest entry. *)

val clear : 'a t -> unit
