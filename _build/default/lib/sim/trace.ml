(* Lightweight conditional tracing for debugging simulations.  Off by
   default; tests and examples can switch it on to watch packets move. *)

let enabled = ref false

let emit now fmt =
  if !enabled then Fmt.epr ("[%a] " ^^ fmt ^^ "@.") Stime.pp now
  else Format.ifprintf Format.err_formatter fmt
