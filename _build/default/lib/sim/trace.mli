(** Conditional simulation tracing. *)

val enabled : bool ref
(** When true, {!emit} prints to stderr; default false. *)

val emit : Stime.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit now fmt ...] prints a timestamped trace line when enabled. *)
