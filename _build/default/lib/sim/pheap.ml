(* Binary min-heap keyed by (int key, int sequence).  The sequence number
   makes pops stable: among equal keys, insertion order wins.  This matters
   for deterministic simulation replay. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }

let size h = h.size
let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* Safe: slot 0 is only read as a template, never observed as content. *)
  let narr = Array.make ncap h.arr.(0) in
  Array.blit h.arr 0 narr 0 h.size;
  h.arr <- narr

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less h.arr.(i) h.arr.(p) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(p);
      h.arr.(p) <- tmp;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.size && less h.arr.(l) h.arr.(i) then l else i in
  let m = if r < h.size && less h.arr.(r) h.arr.(m) then r else m in
  if m <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(m);
    h.arr.(m) <- tmp;
    sift_down h m
  end

let add h ~key value =
  let e = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.arr = 0 then h.arr <- Array.make 16 e
  else if h.size = Array.length h.arr then grow h;
  h.arr.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek_min h = if h.size = 0 then None else Some (h.arr.(0).key, h.arr.(0).value)

let pop_min h =
  if h.size = 0 then None
  else begin
    let e = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      sift_down h 0
    end;
    Some (e.key, e.value)
  end

let clear h = h.size <- 0
