(* The benchmark harness.

   Part 1 — Bechamel microbenchmarks: real (host-machine) costs of the
   mechanisms the paper claims are cheap: event dispatch ("roughly one
   procedure call"), guard evaluation (packet filters), VIEW header
   access, mbuf operations and the Internet checksum.

   Part 2 — the paper-reproduction harness: regenerates every table and
   figure of the evaluation (Figure 5, the section 4.2 throughput table,
   Figure 6, Figure 7), the section 3.3 active-message microbenchmarks
   and the design ablations, printing measured values next to the
   paper's. *)

open Bechamel
open Toolkit

(* ---- Part 1: microbenchmark subjects --------------------------------- *)

(* A dispatcher wired to a live engine; each raise is drained so state
   does not accumulate across benchmark iterations. *)
let dispatcher_env n_handlers =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine ~name:"bench" in
  let d = Spin.Dispatcher.create ~cpu ~costs:Spin.Dispatcher.default_costs in
  let ev = Spin.Dispatcher.event d "bench" in
  for i = 0 to n_handlers - 1 do
    let (_ : unit -> unit) =
      Spin.Dispatcher.install ev
        ~guard:(fun x -> x mod n_handlers = i)
        ~cost:Sim.Stime.zero
        (fun _ -> ())
    in
    ()
  done;
  (engine, ev)

let test_direct_call =
  let f = Sys.opaque_identity (fun x -> x + 1) in
  Test.make ~name:"direct procedure call" (Staged.stage (fun () -> ignore (f 1)))

let test_dispatch_1 =
  let engine, ev = dispatcher_env 1 in
  Test.make ~name:"dispatcher raise (1 handler)"
    (Staged.stage (fun () ->
         Spin.Dispatcher.raise ev 0;
         Sim.Engine.run engine))

let test_dispatch_8 =
  let engine, ev = dispatcher_env 8 in
  Test.make ~name:"dispatcher raise (8 guards, 1 match)"
    (Staged.stage (fun () ->
         Spin.Dispatcher.raise ev 3;
         Sim.Engine.run engine))

let sample_frame =
  let pkt = Mbuf.of_string (String.make 64 '\000') in
  let v = Mbuf.view pkt in
  Proto.Ether.write v
    {
      Proto.Ether.dst = Proto.Ether.Mac.of_int 0x1111;
      src = Proto.Ether.Mac.of_int 0x2222;
      etype = Proto.Ether.etype_ip;
    };
  View.ro v

let test_guard =
  Test.make ~name:"guard: EtherType packet filter"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (match Proto.Ether.parse sample_frame with
              | Some h -> h.Proto.Ether.etype = Proto.Ether.etype_ip
              | None -> false))))

let test_view_read =
  Test.make ~name:"VIEW: u16+u32 header reads"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (View.get_u16 sample_frame 12));
         ignore (Sys.opaque_identity (View.get_u32 sample_frame 0))))

let test_ipv4_parse =
  let v = View.create 20 in
  Proto.Ipv4.write v
    (Proto.Ipv4.make ~proto:17 ~src:(Proto.Ipaddr.v 10 0 0 1)
       ~dst:(Proto.Ipaddr.v 10 0 0 2) ~payload_len:100 ());
  let v = View.ro v in
  Test.make ~name:"IPv4 header parse + checksum"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Proto.Ipv4.parse v));
         ignore (Sys.opaque_identity (Proto.Ipv4.checksum_valid v))))

let test_mbuf_alloc =
  Test.make ~name:"mbuf alloc (1500B)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Mbuf.alloc 1500))))

let test_mbuf_prepend =
  Test.make ~name:"mbuf alloc+prepend header"
    (Staged.stage (fun () ->
         let m = Mbuf.alloc 100 in
         ignore (Sys.opaque_identity (Mbuf.prepend m 14))))

let test_cksum_1500 =
  let v = View.of_string (String.make 1500 'x') in
  Test.make ~name:"Internet checksum (1500B)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (Cksum.of_view v))))

let test_tcp_encode =
  let hdr =
    {
      Proto.Tcp_wire.src_port = 1;
      dst_port = 2;
      seq = Proto.Tcp_wire.Seq.of_int 1;
      ack = Proto.Tcp_wire.Seq.of_int 2;
      flags = Proto.Tcp_wire.Flags.ack;
      window = 100;
    }
  in
  let payload = String.make 512 'p' in
  Test.make ~name:"TCP segment encode (512B, checksummed)"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (Proto.Tcp_wire.to_packet ~src:(Proto.Ipaddr.v 10 0 0 1)
                 ~dst:(Proto.Ipaddr.v 10 0 0 2) hdr payload))))

let test_filter_eval =
  let ctx =
    let engine = Sim.Engine.create () in
    let host =
      Netsim.Host.create engine ~name:"h" ~ip:(Proto.Ipaddr.v 10 0 0 1)
    in
    let dev = Netsim.Host.add_device host (Netsim.Costs.loopback ()) in
    Plexus.Pctx.make dev (Mbuf.ro (Mbuf.of_string (String.make 64 'p')))
  in
  let filter =
    Plexus.Filter.(
      And (Gt (Payload_len, 0), Or (Eq (U8 (Cur, 0), Char.code 'p'), True)))
  in
  Test.make ~name:"interpreted packet filter (5 nodes)"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Plexus.Filter.eval filter ctx))))

let test_link_unlink =
  let iface = Spin.Interface.create "Svc" in
  let w : int Spin.Univ.witness = Spin.Univ.witness () in
  Spin.Interface.export iface ~sym:"op" w 7;
  let domain = Spin.Domain.of_interfaces "d" [ iface ] in
  let ext =
    Spin.Extension.Compiler.compile ~name:"e" ~imports:[ ("Svc", "op") ]
      (fun linkage -> ignore (linkage.get w ~iface:"Svc" ~sym:"op"))
  in
  Test.make ~name:"dynamic link + unlink"
    (Staged.stage (fun () ->
         match Spin.Linker.link ~domain ext with
         | Ok l -> Spin.Linker.unlink l
         | Error _ -> ()))

let test_ephemeral_plan =
  let prog =
    List.init 4 (fun _ ->
        Spin.Ephemeral.work ~label:"w" ~cost:(Sim.Stime.us 5) ignore)
  in
  Test.make ~name:"ephemeral plan+commit (4 actions)"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (Spin.Ephemeral.execute ~budget:(Sim.Stime.us 12) prog))))

let micro_tests =
  [
    test_direct_call;
    test_dispatch_1;
    test_dispatch_8;
    test_guard;
    test_view_read;
    test_ipv4_parse;
    test_mbuf_alloc;
    test_mbuf_prepend;
    test_cksum_1500;
    test_tcp_encode;
    test_filter_eval;
    test_link_unlink;
    test_ephemeral_plan;
  ]

let run_bechamel () =
  Experiments.Common.print_header
    "Bechamel microbenchmarks (host-machine ns per operation)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-44s %12.1f ns\n%!" name est
          | _ -> Printf.printf "  %-44s (no estimate)\n%!" name)
        analyzed)
    micro_tests

(* ---- Part 2: paper reproduction --------------------------------------- *)

let () =
  run_bechamel ();
  ignore (Experiments.Fig5.print ~iters:200 ());
  ignore (Experiments.Tput.print ~bytes:2_000_000 ());
  ignore (Experiments.Fig6.print ());
  ignore (Experiments.Fig7.print ~iters:50 ());
  ignore (Experiments.Micro.print ~iters:100 ());
  ignore (Experiments.Sweep.print ~iters:100 ());
  ignore (Experiments.Livelock.print ());
  Experiments.Motivate.print ();
  ignore (Experiments.Http_bench.print ());
  Experiments.Ablate.print ();
  print_newline ()
