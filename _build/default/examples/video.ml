(* The network video system of paper section 5.1: a server extension
   streams disk-resident frames as UDP datagrams at 30 fps; the client
   checksums, decompresses and writes to the framebuffer.  The demo
   prints server CPU utilization for a few stream counts, showing the
   Figure 6 effect in miniature.

   Run with:  dune exec examples/video.exe *)

let fps = 30
let frame_len = 12_500
let port = 9000

let run streams =
  let engine = Sim.Engine.create () in
  let a, b =
    Netsim.Network.pair engine (Netsim.Costs.t3 ())
      ~a:("server", Experiments.Common.ip_a)
      ~b:("client", Experiments.Common.ip_b)
  in
  let server_stack = Plexus.Stack.build a.Netsim.Network.host in
  let client_stack = Plexus.Stack.build b.Netsim.Network.host in
  Plexus.Stack.prime_arp server_stack client_stack;
  let host = a.Netsim.Network.host in
  let disk =
    Netsim.Disk.create engine ~cpu:(Netsim.Host.cpu host)
      ~costs:(Netsim.Host.costs host)
  in
  let udp = Plexus.Stack.udp server_stack in
  let ep =
    match Plexus.Udp_mgr.bind udp ~owner:"video" ~port with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let env =
    {
      Apps.Video_server.engine;
      read_frame = (fun ~len k -> Netsim.Disk.read disk ~len k);
      send = (fun ~dst data -> Plexus.Udp_mgr.send udp ep ~dst data);
    }
  in
  let server = Apps.Video_server.create env ~fps ~frame_len in
  let clients =
    List.init streams (fun i ->
        let client_port = port + 1 + i in
        Apps.Video_server.add_stream server (Experiments.Common.ip_b, client_port);
        Apps.Video_client.on_plexus client_stack ~port:client_port)
  in
  let horizon = Sim.Stime.s 2 in
  Apps.Video_server.start ~until:horizon server;
  ignore
    (Sim.Engine.schedule engine ~at:(Sim.Stime.ms 200) (fun () ->
         Netsim.Host.reset_utilization host));
  Sim.Engine.run engine ~until:horizon ~max_events:20_000_000;
  let displayed =
    List.fold_left (fun acc c -> acc + Apps.Video_client.frames_displayed c) 0 clients
  in
  Printf.printf
    "%2d streams: server CPU %5.1f%%, %4d frames sent, %4d displayed, disk %4.1f%% busy\n"
    streams
    (100. *. Netsim.Host.utilization host)
    (Apps.Video_server.frames_sent server)
    displayed
    (100. *. Netsim.Disk.utilization disk)

let () =
  print_endline "Plexus video server over the 45 Mb/s T3 (2s of simulated time):";
  List.iter run [ 1; 5; 10; 15 ]
