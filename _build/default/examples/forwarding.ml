(* The load-balancing forwarder of paper section 5.2: an application
   installs a node into the middle host's protocol graph that redirects
   every packet for a service port to a backend — including TCP control
   packets, so connection establishment stays end-to-end.  Compare with
   the user-level splice in the same topology.

   Run with:  dune exec examples/forwarding.exe *)

let service = 8080

let () =
  (* --- Plexus: in-kernel forwarder ---------------------------------- *)
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine (Netsim.Costs.ethernet ())
      ~client:("client", Experiments.Common.ip_client)
      ~middle:("middle", Experiments.Common.ip_middle)
      ~server:("server", Experiments.Common.ip_server)
  in
  let client = Plexus.Stack.build c.Netsim.Network.host in
  let middle =
    Plexus.Stack.build
      ~subnets:[ (Experiments.Common.net1, 24); (Experiments.Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  let server = Plexus.Stack.build s.Netsim.Network.host in
  Plexus.Arp_mgr.prime (Plexus.Stack.arp client) Experiments.Common.ip_middle
    (Netsim.Dev.mac m1.Netsim.Network.dev);
  Plexus.Arp_mgr.prime
    (List.nth (Plexus.Stack.arps middle) 0)
    Experiments.Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  Plexus.Arp_mgr.prime
    (List.nth (Plexus.Stack.arps middle) 1)
    Experiments.Common.ip_server
    (Netsim.Dev.mac s.Netsim.Network.dev);
  Plexus.Arp_mgr.prime (Plexus.Stack.arp server) Experiments.Common.ip_middle
    (Netsim.Dev.mac m2.Netsim.Network.dev);
  Plexus.Tcp_mgr.exclude_ports (Plexus.Stack.tcp middle) [ service ];
  Plexus.Tcp_mgr.exclude_src_ports (Plexus.Stack.tcp middle) [ service ];
  let fwd =
    Apps.Forwarder.create middle ~listen_port:service
      ~backend:(Experiments.Common.ip_server, service)
  in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp server) ~owner:"backend"
       ~port:service
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             Plexus.Tcp_mgr.send conn ("pong:" ^ data)))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let t0 = ref Sim.Stime.zero in
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp client) ~owner:"client"
       ~dst:(Experiments.Common.ip_middle, service) ()
   with
  | Error _ -> assert false
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          Printf.printf
            "plexus: TCP established end-to-end THROUGH the forwarder\n";
          t0 := Sim.Engine.now engine;
          Plexus.Tcp_mgr.send conn "ping");
      Plexus.Tcp_mgr.on_receive conn (fun data ->
          Printf.printf "plexus: %S after %s (fwd %d pkts, back %d pkts)\n" data
            (Sim.Stime.to_string (Sim.Stime.sub (Sim.Engine.now engine) !t0))
            (Apps.Forwarder.forwarded fwd)
            (Apps.Forwarder.returned fwd)));
  Sim.Engine.run engine ~until:(Sim.Stime.s 5) ~max_events:10_000_000;

  (* --- DIGITAL UNIX: user-level splice -------------------------------- *)
  let engine = Sim.Engine.create () in
  let c, (m1, m2), s =
    Netsim.Network.line3 engine (Netsim.Costs.ethernet ())
      ~client:("client", Experiments.Common.ip_client)
      ~middle:("middle", Experiments.Common.ip_middle)
      ~server:("server", Experiments.Common.ip_server)
  in
  let client = Osmodel.Du_stack.create c.Netsim.Network.host in
  let middle =
    Osmodel.Du_stack.create
      ~subnets:[ (Experiments.Common.net1, 24); (Experiments.Common.net2, 24) ]
      m1.Netsim.Network.host
  in
  let server = Osmodel.Du_stack.create s.Netsim.Network.host in
  Osmodel.Du_stack.prime_arp client Experiments.Common.ip_middle
    (Netsim.Dev.mac m1.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp middle Experiments.Common.ip_client
    (Netsim.Dev.mac c.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp middle Experiments.Common.ip_server
    (Netsim.Dev.mac s.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp server Experiments.Common.ip_middle
    (Netsim.Dev.mac m2.Netsim.Network.dev);
  let _splice =
    Osmodel.Splice.create middle ~listen_port:service
      ~backend:(Experiments.Common.ip_server, service)
  in
  (match
     Osmodel.Du_stack.tcp_listen server ~port:service
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             Osmodel.Du_stack.tcp_send server conn ("pong:" ^ data)))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let t0 = ref Sim.Stime.zero in
  let conn =
    Osmodel.Du_stack.tcp_connect client
      ~dst:(Experiments.Common.ip_middle, service) ()
  in
  Osmodel.Du_stack.on_established conn (fun () ->
      Printf.printf
        "du: TCP established TO THE SPLICE (not the backend: semantics broken)\n";
      t0 := Sim.Engine.now engine;
      Osmodel.Du_stack.tcp_send client conn "ping");
  Osmodel.Du_stack.on_receive conn (fun data ->
      Printf.printf "du: %S after %s\n" data
        (Sim.Stime.to_string (Sim.Stime.sub (Sim.Engine.now engine) !t0)));
  Sim.Engine.run engine ~until:(Sim.Stime.s 5) ~max_events:10_000_000
