(* Demultiplexing with declarative packet filters.

   Plexus guards are compiled predicates; this demo shows the older
   interpreted style ([MRA87]) living inside the same graph: an
   application hands the UDP manager a filter *as data*, and the manager
   conjoins it with the endpoint's own port guard — the application can
   narrow its traffic but never widen it.

   Run with:  dune exec examples/packet_filters.exe *)

let () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  let ep =
    match Plexus.Udp_mgr.bind udp_b ~owner:"sensor-sink" ~port:7 with
    | Ok ep -> ep
    | Error _ -> failwith "bind"
  in
  (* Accept only "interesting" datagrams: more than 16 bytes whose first
     byte is an exclamation mark. *)
  let interesting =
    Plexus.Filter.(
      And
        ( Gt (Payload_len, 16),
          Eq (U8 (Cur, 0), Char.code '!') ))
  in
  Printf.printf "filter: %s (interpretation cost %s/packet)\n"
    (Fmt.str "%a" Plexus.Filter.pp interesting)
    (Sim.Stime.to_string (Plexus.Filter.eval_cost interesting));
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv_filtered udp_b ep interesting (fun ctx ->
        Printf.printf "  interesting: %S\n"
          (View.to_string (Plexus.Pctx.view ctx)))
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
        Printf.printf "  any:         %S\n"
          (View.to_string (Plexus.Pctx.view ctx)))
  in
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"sensor" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> failwith "bind"
  in
  List.iter
    (fun msg ->
      Plexus.Udp_mgr.send udp_a client ~dst:(Experiments.Common.ip_b, 7) msg)
    [
      "short";
      "!short";
      "!ALERT: pressure threshold exceeded";
      "ordinary reading 42.0 (long enough, wrong tag)";
    ];
  Sim.Engine.run p.Experiments.Common.engine;
  print_string (Plexus.Stack.report p.Experiments.Common.b)
