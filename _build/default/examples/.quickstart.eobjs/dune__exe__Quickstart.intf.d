examples/quickstart.mli:
