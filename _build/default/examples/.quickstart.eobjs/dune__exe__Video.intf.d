examples/video.mli:
