examples/video.ml: Apps Experiments List Netsim Plexus Printf Sim
