examples/active_messages.ml: Apps Experiments Fmt Netsim Plexus Printf Sim Spin
