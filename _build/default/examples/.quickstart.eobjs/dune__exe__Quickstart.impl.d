examples/quickstart.ml: Netsim Plexus Printf Proto Sim String Sys View
