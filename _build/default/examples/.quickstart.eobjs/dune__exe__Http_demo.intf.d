examples/http_demo.mli:
