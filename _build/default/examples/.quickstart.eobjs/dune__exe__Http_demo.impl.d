examples/http_demo.ml: Apps Experiments List Netsim Printf Sim String
