examples/forwarding.mli:
