examples/forwarding.ml: Apps Experiments List Netsim Osmodel Plexus Printf Sim
