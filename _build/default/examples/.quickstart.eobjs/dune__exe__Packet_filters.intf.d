examples/packet_filters.mli:
