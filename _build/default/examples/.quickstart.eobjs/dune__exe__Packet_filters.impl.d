examples/packet_filters.ml: Char Experiments Fmt List Netsim Plexus Printf Sim View
