(* Quickstart: two simulated workstations on a private Ethernet, a full
   Plexus protocol graph on each, and an application-specific UDP echo
   installed through the protocol managers.

   Run with:  dune exec examples/quickstart.exe *)

let ip_a = Proto.Ipaddr.v 10 0 1 1
let ip_b = Proto.Ipaddr.v 10 0 1 2

let () =
  (* Set PLEXUS_TRACE=1 to watch every frame cross the wire. *)
  if Sys.getenv_opt "PLEXUS_TRACE" = Some "1" then Sim.Trace.enabled := true;
  (* 1. A simulation engine and two hosts joined by 10 Mb/s Ethernet. *)
  let engine = Sim.Engine.create () in
  let a, b =
    Netsim.Network.pair engine (Netsim.Costs.ethernet ()) ~a:("alice", ip_a)
      ~b:("bob", ip_b)
  in

  (* 2. Build the Figure-1 protocol graph on each host. *)
  let alice = Plexus.Stack.build a.Netsim.Network.host in
  let bob = Plexus.Stack.build b.Netsim.Network.host in
  print_string (Plexus.Graph.to_dot (Plexus.Stack.graph alice));

  (* 3. Bob binds a UDP endpoint and installs a guarded receive handler:
     the manager derives the guard, so this handler sees port 7 only. *)
  let udp_bob = Plexus.Stack.udp bob in
  let echo =
    match Plexus.Udp_mgr.bind udp_bob ~owner:"echo-server" ~port:7 with
    | Ok ep -> ep
    | Error (`Port_in_use p) -> failwith (Printf.sprintf "port %d in use" p)
  in
  let (_uninstall : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_bob echo (fun ctx ->
        let payload = View.to_string (Plexus.Pctx.view ctx) in
        let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
        Printf.printf "[bob]   %s <- %s\n" payload (Proto.Ipaddr.to_string src);
        Plexus.Udp_mgr.send udp_bob echo
          ~dst:(src, ctx.Plexus.Pctx.src_port)
          (String.uppercase_ascii payload))
  in

  (* 4. Alice binds her own endpoint and pings. *)
  let udp_alice = Plexus.Stack.udp alice in
  let client =
    match Plexus.Udp_mgr.bind udp_alice ~owner:"client" ~port:5000 with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let sent_at = ref Sim.Stime.zero in
  let (_uninstall : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_alice client (fun ctx ->
        let rtt = Sim.Stime.sub (Sim.Engine.now engine) !sent_at in
        Printf.printf "[alice] reply %S after %s\n"
          (View.to_string (Plexus.Pctx.view ctx))
          (Sim.Stime.to_string rtt))
  in
  sent_at := Sim.Engine.now engine;
  Plexus.Udp_mgr.send udp_alice client ~dst:(ip_b, 7) "hello plexus";

  (* 5. Run the world.  The first datagram also triggers a real ARP
     exchange — watch the counters. *)
  Sim.Engine.run engine;
  Printf.printf "arp requests by alice: %d, replies by bob: %d\n"
    (Plexus.Arp_mgr.requests_sent (Plexus.Stack.arp alice))
    (Plexus.Arp_mgr.replies_sent (Plexus.Stack.arp bob))
