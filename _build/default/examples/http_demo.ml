(* The paper's closing demo: an HTTP server running as a Plexus
   extension ("a demonstration of the protocol stack as it services HTTP
   requests can be found at http://www-spin.cs.washington.edu").

   Run with:  dune exec examples/http_demo.exe *)

let () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let engine = p.Experiments.Common.engine in
  let server = Apps.Http_server.create ~port:80 p.Experiments.Common.b in
  Apps.Http_server.add_route server "/latency"
    "Plexus UDP round trips: <600us Ethernet, 350us ATM, 300us T3.\n";
  List.iter
    (fun path ->
      Apps.Http_client.get p.Experiments.Common.a
        ~dst:(Experiments.Common.ip_b, 80) ~path (fun result ->
          match result with
          | Some r ->
              Printf.printf "GET %-12s -> %d (%d bytes in %s)\n%s" path
                r.Apps.Http_client.status
                (String.length r.Apps.Http_client.body)
                (Sim.Stime.to_string r.Apps.Http_client.elapsed)
                r.Apps.Http_client.body
          | None -> Printf.printf "GET %s -> no response\n" path))
    [ "/"; "/paper"; "/latency"; "/missing" ];
  Sim.Engine.run engine ~until:(Sim.Stime.s 200) ~max_events:10_000_000;
  Printf.printf "server handled %d requests (%d not found)\n"
    (Apps.Http_server.requests server)
    (Apps.Http_server.not_found_count server)
