(* Active messages as dynamically linked kernel extensions (paper
   section 3.3): the responder's handler is an EPHEMERAL program running
   at interrupt level under a time budget; the whole thing is compiled,
   signed, linked against a restricted protection domain, and unlinked
   again at the end.

   Run with:  dune exec examples/active_messages.exe *)

let () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let engine = p.Experiments.Common.engine in
  let a = p.Experiments.Common.a and b = p.Experiments.Common.b in

  (* The echo responder: replies from the receive interrupt. *)
  let _bctx, echo_ext =
    Apps.Active_messages.echo_extension ~name:"am-echo"
      ~reply_cost:(Sim.Stime.us 2) ()
  in
  let linked =
    match Plexus.Stack.link b echo_ext with
    | Ok l -> l
    | Error f -> failwith (Fmt.str "%a" Spin.Extension.pp_failure f)
  in
  Printf.printf "linked extension %S into bob's kernel\n"
    (Spin.Extension.name (Spin.Linker.extension linked));

  (* The pinger. *)
  let sent_at = ref Sim.Stime.zero in
  let actx_holder = ref None in
  let dst = Plexus.Ether_mgr.mac (Plexus.Stack.ether b) in
  let remaining = ref 5 in
  let handlers _ctx idx ~src:_ payload =
    if idx = 1 then
      [
        Spin.Ephemeral.work ~label:"pong" ~cost:(Sim.Stime.us 1) (fun () ->
            let rtt = Sim.Stime.sub (Sim.Engine.now engine) !sent_at in
            Printf.printf "AM pong %S, rtt %s\n" payload (Sim.Stime.to_string rtt);
            if !remaining > 0 then begin
              decr remaining;
              sent_at := Sim.Engine.now engine;
              match !actx_holder with
              | Some actx ->
                  Apps.Active_messages.send actx ~dst ~handler:0 payload
              | None -> ()
            end);
      ]
    else Spin.Ephemeral.nothing
  in
  let actx, ping_ext =
    Apps.Active_messages.extension ~name:"am-ping" ~handlers ()
  in
  actx_holder := Some actx;
  (match Plexus.Stack.link a ping_ext with
  | Ok _ -> ()
  | Error f -> failwith (Fmt.str "%a" Spin.Extension.pp_failure f));

  sent_at := Sim.Engine.now engine;
  Apps.Active_messages.send actx ~dst ~handler:0 "ball";
  Sim.Engine.run engine;

  (* Budget termination: an over-long handler is cut off between atomic
     actions. *)
  let r =
    Experiments.Micro.budget_termination ~messages:5 ~actions:10
      ~action_cost:(Sim.Stime.us 5) ~budget:(Sim.Stime.us 22) ()
  in
  Printf.printf
    "budget demo: %d messages, %d handlers terminated, %d/%d actions committed\n"
    r.Experiments.Micro.messages r.Experiments.Micro.terminations
    r.Experiments.Micro.committed_actions
    (r.Experiments.Micro.messages * 10);

  (* Runtime adaptation: unlink the responder; its guard and handler are
     gone from the graph. *)
  Spin.Linker.unlink linked;
  Printf.printf "after unlink, responder linked: %b\n"
    (Spin.Linker.is_linked linked)
