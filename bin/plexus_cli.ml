(* plexus-cli: run any experiment from the paper's evaluation by name. *)

open Cmdliner

let iters =
  Arg.(value & opt int 200 & info [ "iters" ] ~doc:"Round trips per data point.")

let run_fig5 iters = ignore (Experiments.Fig5.print ~iters ())

let run_tput bytes = ignore (Experiments.Tput.print ~bytes ())

let run_fig6 max_streams step =
  let counts =
    List.filter
      (fun n -> n mod step = 0 || n = 1)
      (List.init max_streams (fun i -> i + 1))
  in
  ignore (Experiments.Fig6.print ~stream_counts:counts ())

let run_fig7 iters = ignore (Experiments.Fig7.print ~iters ())

let run_micro iters = ignore (Experiments.Micro.print ~iters ())

let run_ablate () = Experiments.Ablate.print ()

let run_sweep iters = ignore (Experiments.Sweep.print ~iters ())

let run_livelock () = ignore (Experiments.Livelock.print ())

let run_motivate () = Experiments.Motivate.print ()

let run_http iters = ignore (Experiments.Http_bench.print ~iters ())

let run_chaos verbose seeds base_seed =
  let s =
    Experiments.Chaos.print ~verbose ~seeds ~base_seed ()
  in
  if not (Experiments.Chaos.soak_ok s) then exit 1

let run_farm clients requests mean_gap_us shape seed =
  let r =
    Experiments.Farm.print ~clients ~requests ~mean_gap_us ~shape ~seed ()
  in
  if r.Experiments.Farm.errors > 0 then exit 1

let run_overload offered_pps =
  let p = Experiments.Overload.print ~offered_pps () in
  if
    not
      (p.Experiments.Overload.mitigated_goodput
       >= 2. *. p.Experiments.Overload.unmitigated_goodput
      && p.Experiments.Overload.mitigated_goodput > 0.)
  then exit 1

(* A mixed workload (UDP echo + TCP transfer + a misdirected datagram),
   then the full diagnostics report of both hosts. *)
let run_stats () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"echo" ~port:7 with
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
            let data = Packet.View.to_string (Plexus.Pctx.view ctx) in
            let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
            Plexus.Udp_mgr.send udp_b ep
              ~dst:(src, ctx.Plexus.Pctx.src_port)
              data)
      in
      ()
  | Error _ -> ());
  (match Plexus.Udp_mgr.bind udp_a ~owner:"cli" ~port:5000 with
  | Ok ep ->
      for i = 1 to 5 do
        Plexus.Udp_mgr.send udp_a ep ~dst:(Experiments.Common.ip_b, 7)
          (Printf.sprintf "ping-%d" i)
      done;
      Plexus.Udp_mgr.send udp_a ep ~dst:(Experiments.Common.ip_b, 4242)
        "nobody home"
  | Error _ -> ());
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp p.Experiments.Common.b)
       ~owner:"sink" ~port:80
       ~on_accept:(fun conn -> Plexus.Tcp_mgr.on_receive conn (fun _ -> ()))
       ()
   with
  | Ok () -> ()
  | Error _ -> ());
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Experiments.Common.a)
       ~owner:"src" ~dst:(Experiments.Common.ip_b, 80) ()
   with
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          Plexus.Tcp_mgr.send conn (String.make 100_000 'd'))
  | Error _ -> ());
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 60)
    ~max_events:10_000_000;
  print_string (Plexus.Stack.report p.Experiments.Common.a);
  print_string (Plexus.Stack.report p.Experiments.Common.b)

(* The UDP slice of the mixed workload, shared by the diagnostics
   commands: an echo server on port 7, five pings and one misdirected
   datagram (so a drop shows up in the output too). *)
let mixed_udp_workload p =
  let udp_a = Plexus.Stack.udp p.Experiments.Common.a in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"echo" ~port:7 with
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
            let data = Packet.View.to_string (Plexus.Pctx.view ctx) in
            let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
            Plexus.Udp_mgr.send udp_b ep
              ~dst:(src, ctx.Plexus.Pctx.src_port)
              data)
      in
      ()
  | Error _ -> ());
  match Plexus.Udp_mgr.bind udp_a ~owner:"cli" ~port:5000 with
  | Ok ep ->
      for i = 1 to 5 do
        Plexus.Udp_mgr.send udp_a ep ~dst:(Experiments.Common.ip_b, 7)
          (Printf.sprintf "ping-%d" i)
      done;
      Plexus.Udp_mgr.send udp_a ep ~dst:(Experiments.Common.ip_b, 4242)
        "nobody home"
  | Error _ -> ()

(* The same mixed workload, but with ring-buffer span sinks attached to
   both kernels, then the observability story: introspection (installed
   handlers with live counters), the metrics registries (table or JSON)
   and optionally the tail of the span ring. *)
let run_observe json trace_n =
  (* flow cache on, so the path_cache counters and cache_hit spans show
     up in the output alongside the graph-dispatch metrics *)
  let p =
    Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
  in
  let kernels =
    List.map
      (fun stack -> Netsim.Host.kernel (Plexus.Stack.host stack))
      [ p.Experiments.Common.a; p.Experiments.Common.b ]
  in
  let rings =
    List.map
      (fun kernel ->
        let ring = Observe.Trace.Ring.create ~capacity:4096 () in
        Observe.Trace.set_sink (Spin.Kernel.trace kernel)
          (Observe.Trace.Ring ring);
        (kernel, ring))
      kernels
  in
  mixed_udp_workload p;
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 60)
    ~max_events:10_000_000;
  if json then begin
    let regs =
      List.map
        (fun kernel ->
          Printf.sprintf "%S: %s"
            (Spin.Kernel.name kernel)
            (Observe.Registry.to_json (Spin.Kernel.registry kernel)))
        kernels
    in
    Printf.printf "{\n%s\n}\n" (String.concat ",\n" regs)
  end
  else
    List.iter
      (fun (kernel, ring) ->
        print_string (Spin.Kernel.introspect kernel);
        Fmt.pr "%a@." Observe.Registry.pp (Spin.Kernel.registry kernel);
        if trace_n > 0 then begin
          let spans = Observe.Trace.Ring.to_list ring in
          let total = List.length spans in
          let tail =
            if total <= trace_n then spans
            else List.filteri (fun i _ -> i >= total - trace_n) spans
          in
          Fmt.pr "last %d of %d span(s) on %s:@." (List.length tail) total
            (Spin.Kernel.name kernel);
          List.iter (fun s -> Fmt.pr "  %a@." Observe.Trace.pp_span s) tail
        end)
      rings

(* The flight-recorder view of the same workload: rank every installed
   extension by its resource ledger (cumulative modelled CPU, or run
   latency p99 with [--by-latency]) and dump sampled end-to-end packet
   timelines. *)
let run_top json by_latency timelines rate =
  let p =
    Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
  in
  let kernels =
    List.map
      (fun stack -> Netsim.Host.kernel (Plexus.Stack.host stack))
      [ p.Experiments.Common.a; p.Experiments.Common.b ]
  in
  List.iter
    (fun kernel -> Observe.Flight.set_rate (Spin.Kernel.flight kernel) rate)
    kernels;
  mixed_udp_workload p;
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 60)
    ~max_events:10_000_000;
  let p99 (hi : Spin.Dispatcher.handler_info) =
    match hi.Spin.Dispatcher.hi_lat with
    | Some s -> s.Observe.Histogram.p99
    | None -> 0
  in
  let rows =
    List.concat_map
      (fun kernel ->
        List.concat_map
          (fun (ei : Spin.Dispatcher.event_info) ->
            List.map
              (fun hi -> (Spin.Kernel.name kernel, ei.Spin.Dispatcher.ei_name, hi))
              ei.Spin.Dispatcher.ei_handlers)
          (Spin.Dispatcher.dump (Spin.Kernel.dispatcher kernel)))
      kernels
  in
  let key (_, _, hi) =
    if by_latency then p99 hi else hi.Spin.Dispatcher.hi_cpu_ns
  in
  let rows = List.sort (fun a b -> compare (key b) (key a)) rows in
  if json then begin
    let esc = Observe.Registry.json_escape in
    let row_json (kernel, event, (hi : Spin.Dispatcher.handler_info)) =
      Printf.sprintf
        "    {\"kernel\": \"%s\", \"event\": \"%s\", \"label\": \"%s\", \
         \"gen\": %d, \"runs\": %d, \"cpu_ns\": %d, \"mbuf_allocs\": %d, \
         \"terminations\": %d, \"p99_ns\": %d}"
        (esc kernel) (esc event)
        (esc hi.Spin.Dispatcher.hi_label)
        hi.Spin.Dispatcher.hi_gen hi.Spin.Dispatcher.hi_runs
        hi.Spin.Dispatcher.hi_cpu_ns hi.Spin.Dispatcher.hi_allocs
        hi.Spin.Dispatcher.hi_terminations (p99 hi)
    in
    let flights =
      List.map
        (fun kernel ->
          Printf.sprintf "    \"%s\": %s"
            (esc (Spin.Kernel.name kernel))
            (Observe.Flight.to_json (Spin.Kernel.flight kernel)))
        kernels
    in
    Printf.printf "{\n  \"sort\": \"%s\",\n  \"top\": [\n%s\n  ],\n"
      (if by_latency then "p99_ns" else "cpu_ns")
      (String.concat ",\n" (List.map row_json rows));
    Printf.printf "  \"flights\": {\n%s\n  }\n}\n"
      (String.concat ",\n" flights)
  end
  else begin
    Printf.printf "extensions by %s:\n"
      (if by_latency then "run-latency p99" else "cumulative modelled CPU");
    Printf.printf "  %-7s %-22s %-12s %4s %6s %12s %7s %6s %10s\n" "kernel"
      "event" "label" "gen" "runs" "cpu_ns" "allocs" "terms" "p99_ns";
    List.iter
      (fun (kernel, event, (hi : Spin.Dispatcher.handler_info)) ->
        Printf.printf "  %-7s %-22s %-12s %4d %6d %12d %7d %6d %10d\n" kernel
          event hi.Spin.Dispatcher.hi_label hi.Spin.Dispatcher.hi_gen
          hi.Spin.Dispatcher.hi_runs hi.Spin.Dispatcher.hi_cpu_ns
          hi.Spin.Dispatcher.hi_allocs hi.Spin.Dispatcher.hi_terminations
          (p99 hi))
      rows;
    if timelines > 0 then
      List.iter
        (fun kernel ->
          let fl = Spin.Kernel.flight kernel in
          let tls = Observe.Flight.timelines (Observe.Flight.records fl) in
          let shown = List.filteri (fun i _ -> i < timelines) tls in
          Fmt.pr "@.sampled timelines on %s (%d of %d, %d records, %d shed):@."
            (Spin.Kernel.name kernel) (List.length shown) (List.length tls)
            (Observe.Flight.length fl)
            (Observe.Flight.dropped fl);
          List.iter (fun tl -> Fmt.pr "%a@." Observe.Flight.pp_timeline tl) shown)
        kernels
  end

(* Extension lifecycle soak: zero-drop hot-swap under burst traffic,
   runtime quarantine of a rogue extension, static verifier rejection. *)
let run_lifecycle runs verbose =
  let r = Experiments.Lifecycle.print ~runs ~verbose () in
  if not (Experiments.Lifecycle.report_ok r) then exit 1

(* Multicore datapath: shard a synthetic RSS workload across OCaml 5
   domains, check counter-for-counter equivalence with the single-domain
   oracle, and report the simulated aggregate throughput. *)
let run_parallel domains flows pkts seed =
  let plan = Par.Rss.make ~seed ~flows ~pkts_per_flow:pkts () in
  let oracle = Par.Node.run ~domains:1 plan in
  let report (s : Par.Node.stats) =
    Printf.printf
      "%3d domain%s  %10.0f dg/s  %5.2fx speedup  %6d delivered  %5d \
       forwarded  %8.1f ms busy\n"
      s.Par.Node.domains
      (if s.Par.Node.domains = 1 then " " else "s")
      s.Par.Node.datagrams_per_s
      (s.Par.Node.datagrams_per_s /. oracle.Par.Node.datagrams_per_s)
      s.Par.Node.delivered s.Par.Node.forwarded
      (s.Par.Node.busy_max_us /. 1000.)
  in
  Printf.printf
    "RSS sharding, %d flows x %d datagrams (seed %d), simulated time:\n" flows
    pkts seed;
  report oracle;
  if domains > 1 then begin
    let s = Par.Node.run ~domains plan in
    report s;
    List.iter2
      (fun (name, expect) (_, got) ->
        if got <> expect then begin
          Printf.printf "FAIL: %d-domain %s = %d, oracle = %d\n" domains name
            got expect;
          exit 1
        end)
      (Par.Node.equiv_counters oracle)
      (Par.Node.equiv_counters s);
    Printf.printf "equivalence: exact (all %d counters match the oracle)\n"
      (List.length (Par.Node.equiv_counters oracle))
  end

(* Dispatch-plane introspection: run the mixed workload (plus a few
   extra UDP bindings so the port dimension has several keyed handlers
   to merge), then print each event's demux configuration and — with
   [--tree] — the compiled merged decision tree itself. *)
let dim_name d =
  match d with
  | 0 -> "ether_type"
  | 1 -> "ip_proto"
  | 2 -> "src_port"
  | 3 -> "dst_port"
  | _ -> Printf.sprintf "dim%d" d

let rec tree_to_json v =
  let esc = Observe.Registry.json_escape in
  match v with
  | Spin.Dispatcher.Tree_leaf { tv_exact; tv_resid } ->
      let labels hs =
        String.concat ", "
          (List.map (fun (_, l) -> Printf.sprintf "\"%s\"" (esc l)) hs)
      in
      Printf.sprintf "{\"leaf\": {\"exact\": [%s], \"residual\": [%s]}}"
        (labels tv_exact) (labels tv_resid)
  | Spin.Dispatcher.Tree_switch { tv_dim; tv_cases; tv_default } ->
      Printf.sprintf "{\"switch\": \"%s\", \"cases\": {%s}, \"default\": %s}"
        (dim_name tv_dim)
        (String.concat ", "
           (List.map
              (fun (v, kid) ->
                Printf.sprintf "\"%d\": %s" v (tree_to_json kid))
              tv_cases))
        (tree_to_json tv_default)

let rec print_tree indent v =
  let pad = String.make indent ' ' in
  match v with
  | Spin.Dispatcher.Tree_leaf { tv_exact; tv_resid } ->
      let labels hs = String.concat ", " (List.map snd hs) in
      Printf.printf "%sleaf: exact [%s]%s\n" pad (labels tv_exact)
        (if tv_resid = [] then ""
         else Printf.sprintf " residual [%s]" (labels tv_resid))
  | Spin.Dispatcher.Tree_switch { tv_dim; tv_cases; tv_default } ->
      Printf.printf "%sswitch %s:\n" pad (dim_name tv_dim);
      List.iter
        (fun (v, kid) ->
          Printf.printf "%s  = %d ->\n" pad v;
          print_tree (indent + 4) kid)
        tv_cases;
      Printf.printf "%s  default ->\n" pad;
      print_tree (indent + 4) tv_default

let run_dispatch tree json =
  let p =
    Experiments.Common.plexus_pair ~flowcache:true (Netsim.Costs.ethernet ())
  in
  let udp_b = Plexus.Stack.udp p.Experiments.Common.b in
  List.iter
    (fun port ->
      match Plexus.Udp_mgr.bind udp_b ~owner:"sink" ~port with
      | Ok ep ->
          let (_ : unit -> unit) =
            Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> ())
          in
          ()
      | Error _ -> ())
    [ 9; 37 ];
  mixed_udp_workload p;
  Sim.Engine.run p.Experiments.Common.engine ~until:(Sim.Stime.s 60)
    ~max_events:10_000_000;
  let kernels =
    List.map
      (fun stack -> Netsim.Host.kernel (Plexus.Stack.host stack))
      [ p.Experiments.Common.a; p.Experiments.Common.b ]
  in
  let events kernel =
    let d = Spin.Kernel.dispatcher kernel in
    let views = Spin.Dispatcher.tree_views d in
    List.map
      (fun (ei : Spin.Dispatcher.event_info) ->
        let view =
          match List.assoc_opt ei.Spin.Dispatcher.ei_name views with
          | Some v -> v
          | None -> None
        in
        (ei, view))
      (Spin.Dispatcher.dump d)
  in
  if json then begin
    let esc = Observe.Registry.json_escape in
    let event_json ((ei : Spin.Dispatcher.event_info), view) =
      let tree_json =
        match (ei.Spin.Dispatcher.ei_tree, view) with
        | Some ti, Some v ->
            Printf.sprintf
              ", \"tree\": {\"nodes\": %d, \"depth\": %d, \"rebuilds\": %d, \
               \"raises\": %d, \"residual_evals\": %d, \"root\": %s}"
              ti.Spin.Dispatcher.ti_nodes ti.Spin.Dispatcher.ti_depth
              ti.Spin.Dispatcher.ti_rebuilds ti.Spin.Dispatcher.ti_raises
              ti.Spin.Dispatcher.ti_residual_evals (tree_to_json v)
        | _ -> ""
      in
      Printf.sprintf
        "      {\"event\": \"%s\", \"indexed\": %b, \"handlers\": %d%s}"
        (esc ei.Spin.Dispatcher.ei_name)
        ei.Spin.Dispatcher.ei_indexed
        (List.length ei.Spin.Dispatcher.ei_handlers)
        tree_json
    in
    let per_kernel kernel =
      Printf.sprintf "    \"%s\": [\n%s\n    ]"
        (esc (Spin.Kernel.name kernel))
        (String.concat ",\n" (List.map event_json (events kernel)))
    in
    Printf.printf "{\n  \"kernels\": {\n%s\n  }\n}\n"
      (String.concat ",\n" (List.map per_kernel kernels))
  end
  else
    List.iter
      (fun kernel ->
        Printf.printf "dispatch plane on %s:\n" (Spin.Kernel.name kernel);
        List.iter
          (fun ((ei : Spin.Dispatcher.event_info), view) ->
            Printf.printf "  %-22s %7s  %d handler(s)%s\n"
              ei.Spin.Dispatcher.ei_name
              (if ei.Spin.Dispatcher.ei_indexed then "indexed" else "linear")
              (List.length ei.Spin.Dispatcher.ei_handlers)
              (match ei.Spin.Dispatcher.ei_tree with
              | Some ti ->
                  Printf.sprintf
                    "  tree: %d nodes, depth %d, %d rebuild(s), %d raises, \
                     %d residual eval(s)"
                    ti.Spin.Dispatcher.ti_nodes ti.Spin.Dispatcher.ti_depth
                    ti.Spin.Dispatcher.ti_rebuilds ti.Spin.Dispatcher.ti_raises
                    ti.Spin.Dispatcher.ti_residual_evals
              | None -> "");
            if tree then
              match view with
              | Some v -> print_tree 4 v
              | None -> ())
          (events kernel))
      kernels

let run_graph () =
  let p = Experiments.Common.plexus_pair (Netsim.Costs.ethernet ()) in
  print_string (Plexus.Graph.to_dot (Plexus.Stack.graph p.Experiments.Common.a))

let run_all iters =
  ignore (Experiments.Fig5.print ~iters ());
  ignore (Experiments.Tput.print ());
  ignore (Experiments.Fig7.print ~iters:(min iters 50) ());
  ignore (Experiments.Fig6.print ());
  ignore (Experiments.Micro.print ~iters:(min iters 100) ());
  ignore (Experiments.Sweep.print ~iters:(min iters 100) ());
  ignore (Experiments.Livelock.print ());
  Experiments.Motivate.print ();
  ignore (Experiments.Http_bench.print ~iters:(min iters 30) ());
  Experiments.Ablate.print ()

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5" ~doc:"Figure 5: UDP round-trip latency across devices")
    Term.(const run_fig5 $ iters)

let tput_cmd =
  let bytes =
    Arg.(
      value & opt int 2_000_000 & info [ "bytes" ] ~doc:"Bytes per TCP transfer.")
  in
  Cmd.v
    (Cmd.info "tput" ~doc:"Section 4.2: TCP throughput table")
    Term.(const run_tput $ bytes)

let fig6_cmd =
  let max_streams =
    Arg.(value & opt int 30 & info [ "max-streams" ] ~doc:"Largest stream count.")
  in
  let step = Arg.(value & opt int 1 & info [ "step" ] ~doc:"Stream count step.") in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: video server CPU utilization")
    Term.(const run_fig6 $ max_streams $ step)

let fig7_cmd =
  Cmd.v
    (Cmd.info "fig7" ~doc:"Figure 7: TCP redirection latency")
    Term.(const run_fig7 $ iters)

let micro_cmd =
  Cmd.v
    (Cmd.info "micro" ~doc:"Section 3.3: active-message microbenchmarks")
    Term.(const run_micro $ iters)

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"UDP latency vs. message size across devices")
    Term.(const run_sweep $ iters)

let livelock_cmd =
  Cmd.v
    (Cmd.info "livelock"
       ~doc:"Overload: interrupt-level protocol work vs. application progress")
    Term.(const run_livelock $ const ())

let motivate_cmd =
  Cmd.v
    (Cmd.info "motivate"
       ~doc:"Section 1.1's motivating claims: WAN windows, transaction tuning")
    Term.(const run_motivate $ const ())

let http_cmd =
  Cmd.v
    (Cmd.info "http" ~doc:"HTTP GET latency: Plexus extension vs. DU process")
    Term.(const run_http $ iters)

let chaos_cmd =
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print per-seed outcomes.")
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Number of seeds to sweep.")
  in
  let base_seed =
    Arg.(value & opt int 1000 & info [ "base-seed" ] ~doc:"First seed.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos soak: UDP/fragmented/TCP flows through randomized fault \
          plans; exits non-zero on any invariant failure")
    Term.(const run_chaos $ verbose $ seeds $ base_seed)

let overload_cmd =
  let offered_pps =
    Arg.(
      value
      & opt int Experiments.Overload.default_offered_pps
      & info [ "offered-pps" ] ~doc:"Offered load in packets per second.")
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Goodput under overload with admission control off vs. on; exits \
          non-zero unless mitigation achieves 2x")
    Term.(const run_overload $ offered_pps)

let farm_cmd =
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~doc:"Client chains (each behind its own forwarder).")
  in
  let requests =
    Arg.(
      value & opt int 400
      & info [ "requests" ] ~doc:"Measured request completions (post-warmup).")
  in
  let mean_gap =
    Arg.(
      value & opt float 400.
      & info [ "mean-gap-us" ]
          ~doc:"Mean Poisson think time per client, microseconds.")
  in
  let shape =
    Arg.(
      value & opt float 1.2
      & info [ "shape" ] ~doc:"Pareto shape of the response-size draw.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload seed.")
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Server farm: N clients behind per-client forwarders hammering one \
          HTTP server with a heavy-tailed (Pareto sizes, Poisson arrivals) \
          workload; reports goodput and p50/p99 latency, exits non-zero on \
          any request failure")
    Term.(const run_farm $ clients $ requests $ mean_gap $ shape $ seed)

let ablate_cmd =
  Cmd.v
    (Cmd.info "ablate" ~doc:"Ablations: guards, spoof policy, checksum variant")
    Term.(const run_ablate $ const ())

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a mixed workload and print both hosts' diagnostics")
    Term.(const run_stats $ const ())

let observe_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the metrics registries as JSON.")
  in
  let trace_n =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N"
          ~doc:"Also print the last $(docv) spans from each kernel's ring.")
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Run a mixed workload with tracing on, then print kernel \
          introspection and the metrics registries")
    Term.(const run_observe $ json $ trace_n)

let top_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the ranking and every flight record as JSON.")
  in
  let by_latency =
    Arg.(
      value & flag
      & info [ "by-latency" ]
          ~doc:"Rank by run-latency p99 instead of cumulative CPU.")
  in
  let timelines =
    Arg.(
      value & opt int 3
      & info [ "timelines" ] ~docv:"N"
          ~doc:
            "Print the first $(docv) sampled packet timelines per kernel \
             (0 disables).")
  in
  let rate =
    Arg.(
      value & opt int 1
      & info [ "rate" ] ~docv:"N"
          ~doc:"Sample 1 in $(docv) ingress frames (default: every frame).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the mixed workload with the packet flight recorder on, rank \
          installed extensions by their resource ledger (CPU, allocations, \
          terminations, latency) and dump sampled end-to-end timelines")
    Term.(const run_top $ json $ by_latency $ timelines $ rate)

let lifecycle_cmd =
  let runs =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~doc:"Soak runs (burst size and swap cadence vary).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print per-run outcomes.")
  in
  Cmd.v
    (Cmd.info "lifecycle"
       ~doc:
         "Extension lifecycle soak: hot-swap a monitor extension under UDP \
          burst traffic (zero datagrams dropped across the flip, drain \
          latency measured), quarantine a rogue extension that blows its \
          runtime budget, and reject an over-budget certificate at both \
          admission points; exits non-zero on any invariant failure")
    Term.(const run_lifecycle $ runs $ verbose)

let parallel_cmd =
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~doc:"Worker domains to shard the flows across.")
  in
  let flows =
    Arg.(value & opt int 256 & info [ "flows" ] ~doc:"Distinct UDP flows.")
  in
  let pkts =
    Arg.(value & opt int 40 & info [ "pkts" ] ~doc:"Datagrams per flow.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:
         "Multicore datapath: RSS-shard a seeded UDP workload across OCaml 5 \
          domains with SPSC handoff rings, verify exact counter equivalence \
          against the single-domain oracle, and report simulated aggregate \
          throughput; exits non-zero on any divergence")
    Term.(const run_parallel $ domains $ flows $ pkts $ seed)

let dispatch_cmd =
  let tree =
    Arg.(
      value & flag
      & info [ "tree" ] ~doc:"Also print each event's compiled decision tree.")
  in
  let json =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit the dispatch plane as JSON.")
  in
  Cmd.v
    (Cmd.info "dispatch"
       ~doc:
         "Run a mixed workload, then dump each kernel's dispatch plane: \
          per-event demux mode, handler counts, and (with $(b,--tree)) the \
          merged decision tree the installed filter set compiled to")
    Term.(const run_dispatch $ tree $ json)

let graph_cmd =
  Cmd.v
    (Cmd.info "graph" ~doc:"Print the protocol graph in Graphviz DOT form")
    Term.(const run_graph $ const ())

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run_all $ iters)

let () =
  let info =
    Cmd.info "plexus-cli" ~version:"1.0"
      ~doc:"Reproduction experiments for the Plexus paper (USENIX 1996)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig5_cmd;
            tput_cmd;
            fig6_cmd;
            fig7_cmd;
            micro_cmd;
            sweep_cmd;
            livelock_cmd;
            motivate_cmd;
            http_cmd;
            chaos_cmd;
            overload_cmd;
            farm_cmd;
            ablate_cmd;
            stats_cmd;
            observe_cmd;
            top_cmd;
            lifecycle_cmd;
            parallel_cmd;
            dispatch_cmd;
            graph_cmd;
            all_cmd;
          ]))
