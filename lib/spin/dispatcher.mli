(** The SPIN event dispatcher: typed events, guards, handlers and the
    demux index.

    "An event is raised by a kernel service or extension code to announce
    a change in system state or to request a service" (paper, section 2).
    Handlers are installed with guards — arbitrary predicates that act as
    packet filters — and may be delivered at interrupt level (possibly as
    budget-limited {!Ephemeral} programs) or each on a fresh thread.

    Events may additionally carry a {e dispatch index} (DPF/PathFinder
    style): handlers whose guard implies a literal equality on a demux
    field are installed with that equality as a [key]; raising then hashes
    the payload's key fields once ({!set_keyfn}) and evaluates only the
    guards in the matching buckets plus the unkeyed linear fallback, so
    raise cost scales with matching handlers, not installed handlers.

    A dispatcher may carry an {!Observe.Registry} (per-event and
    per-handler counters and latency histograms) and an {!Observe.Trace}
    endpoint through which every raise, index lookup, guard evaluation,
    handler run and ephemeral commit/termination is emitted as a
    structured span when a sink is attached. *)

type t
(** One dispatcher per kernel; owns the delivery cost model and counters. *)

type delivery =
  | Interrupt  (** run handlers in the raiser's interrupt context *)
  | Thread     (** spawn a thread per handler invocation *)

type costs = {
  dispatch : Sim.Stime.t;
  guard : Sim.Stime.t;
  index : Sim.Stime.t;
      (** charged once per raise on an indexed event, replacing the
          [guard * installed] scan *)
  tree_node : Sim.Stime.t;
      (** charged per decision-tree switch visited on a merged-tree
          raise (replacing [index] and the per-candidate [guard]
          charges for tree-proven handlers) *)
  thread_spawn : Sim.Stime.t;
}

val default_costs : costs

val create :
  ?registry:Observe.Registry.t -> ?trace:Observe.Trace.t ->
  cpu:Sim.Cpu.t -> costs:costs -> unit -> t
(** [create ?registry ?trace ~cpu ~costs ()] builds a dispatcher.  With a
    [registry], per-event and per-handler metrics are published under
    [spin.<event>...] names; without one, the same counts are kept in
    private refs (identical hot-path cost, minus histogram recording).
    [trace] is the span endpoint; it defaults to a fresh endpoint with a
    [Null] sink, under which span construction is skipped entirely. *)

val cpu : t -> Sim.Cpu.t
val costs : t -> costs

val registry : t -> Observe.Registry.t option
val trace : t -> Observe.Trace.t

(** {1 Events} *)

type 'a event
(** An event whose payload has type ['a]. *)

val event : t -> ?mode:delivery -> string -> 'a event
(** Declare a named event (default delivery: [Interrupt]). *)

val name : _ event -> string
val mode : _ event -> delivery
val set_mode : _ event -> delivery -> unit

val set_keyfn : 'a event -> ('a -> int list) -> unit
(** Declare the event's demux-key extractor: the list of dispatch keys a
    payload presents (e.g. its EtherType, protocol number and ports).
    Handlers installed with [~key:k] are only considered for payloads
    whose extracted keys include [k].  Soundness contract: a keyed
    handler's guard must reject any payload that does not present its
    key, so the index only ever skips guards that would refuse.  A
    payload must present at most one key per dimension ([k lsr 16]) —
    [Filter.context_keys] does by construction. *)

val set_keyvfn : 'a event -> dims:int -> ('a -> int array -> unit) -> unit
(** Vectored variant of {!set_keyfn}, the allocation-free fast path: the
    extractor fills slot [d] ([0 <= d < dims]) of a per-event scratch
    array with the payload's value on key dimension [d], or [-1] when
    absent.  The extractor must write {e every} slot below [dims] on
    every call — the scratch is reused without being wiped between
    raises.  The scratch array is owned and reused by the event, so
    steady-state dispatch allocates nothing.  Protocol-graph events pass
    [Filter.read_context_keys] with [dims = Filter.num_key_dims].
    Takes precedence over a list extractor if both are set; same
    soundness contract as {!set_keyfn}. *)

(** {1 Merged decision-tree dispatch}

    All of an event's keyed handlers compiled into one decision tree
    over the key dimensions (DPF-style cross-filter merge): common
    tests are evaluated once, each switch jumps through a dense
    open-addressed table, and the reached leaf holds the exact set of
    matching handlers — one walk per raise, zero per-handler guard
    re-evaluation for handlers installed with [~exact:true] (opaque
    closure guards fall back to leaf-attached residual checks; unkeyed
    handlers are residuals at every leaf).  The tree is memoized behind
    the event's generation counter and recompiled lazily on the first
    raise after any churn, so the flow-path cache and the per-domain
    dispatcher instances keep counter-for-counter equivalence.  On by
    default; {!set_tree_dispatch} ablates it dispatcher-wide and
    {!set_event_tree} per event. *)

val set_tree_dispatch : t -> bool -> unit
val tree_dispatch_enabled : t -> bool

val set_event_tree : _ event -> bool -> unit
(** Per-event opt-out from merged-tree dispatch (bumps the generation,
    so cached paths through the event revalidate). *)

(** {1 Flow-path cache}

    The steady-state datapath: a root raise on an event with a signature
    extractor summarizes the payload into a compact flow signature.  On
    a miss, the delivery walks the graph normally while recording the
    chain of (event, accepted handlers) hops; on a hit the recorded
    chain replays directly — one signature lookup, zero intermediate
    demux, guards replaced by the signature match.  Every event carries
    a generation counter bumped on install/uninstall/{!set_mode}/
    {!set_keyfn}/{!touch}; a hit validates every hop's generation in
    O(hops), and a stale or divergent chain falls back to graph
    dispatch, so cached delivery is observably equivalent to uncached.
    Disabled by default ({!set_flow_cache}). *)

val set_flow_cache : t -> bool -> unit
(** Enable or disable flow-path caching for root raises on this
    dispatcher.  Existing entries are retained but ignored while
    disabled (generation checks keep them sound if re-enabled). *)

val flow_cache_enabled : t -> bool

val set_sigfn : 'a event -> ('a -> string option) -> unit
(** Declare the event's flow-signature extractor, making it a caching
    root.  [None] from the extractor means "this payload cannot be
    summarized by its flow fields" (fragments, non-frame contexts) and
    bypasses the cache for that raise.  Soundness contract: two payloads
    with equal signatures must be indistinguishable to every
    [~cacheable] guard along any chain the raise can take. *)

(** {1 Flight recorder}

    When a {!Observe.Flight} endpoint is attached and enabled, raises
    and handler runs on events that declared a mark extractor
    ({!set_markfn}) emit per-stage latency records for packets sampled
    at ingress (mbuf mark [> 0]).  Unsampled packets cost one closure
    call and compare per site; a detached or disabled recorder costs
    one load and branch. *)

val set_flight : t -> Observe.Flight.t option -> unit
val flight : t -> Observe.Flight.t option

val set_markfn : 'a event -> ('a -> int) -> unit
(** Declare how to read the flight-record mark (the sampled packet id,
    0 = untraced) from a payload — protocol-graph nodes read
    [Packet.Mbuf.mark].  Purely observational; does not bump the
    event's generation. *)

val touch : _ event -> unit
(** Bump the event's invalidation generation without structural change —
    managers call this when mutable state their installed guards consult
    (beyond the flow signature) changes, e.g. a port-exclusion list. *)

val generation : _ event -> int
val cache_entries : _ event -> int
(** Live flow-path cache entries rooted at this event. *)

val handler_count : _ event -> int
val indexed_count : _ event -> int
(** Handlers installed with a dispatch key. *)

val linear_count : _ event -> int
(** Handlers in the unkeyed fallback bucket, scanned on every raise. *)

exception
  Install_rejected of {
    event : string;
    label : string;
    violation : Verifier.violation;
  }
(** Raised synchronously by {!install}/{!install_ephemeral} when the
    target event carries a {!Verifier.policy} and the handler's declared
    budget (or its absence, under [require_cert]) violates it. *)

val set_policy : _ event -> Verifier.policy option -> unit
(** Attach (or clear) the event's install-time admission policy.
    Handlers already installed are not re-checked — the policy gates
    admission, the quarantine gates runtime behavior. *)

val set_quarantine : _ event -> Verifier.quarantine option -> unit
(** Attach (or clear) the event's runtime eviction policy.  After each
    handler run the dispatcher compares the run ledger's delta over the
    current enforcement window against the limits; an extension over
    any of them is atomically evicted — uninstalled, counted in
    [spin.quarantines] and [spin.<event>.<label>.quarantines], and
    Drop-spanned with reason ["quarantine"]. *)

val install :
  'a event -> ?guard:('a -> bool) -> ?key:int -> ?keys:int list ->
  ?exact:bool -> ?gcost:Sim.Stime.t ->
  ?dyncost:('a -> Sim.Stime.t) -> ?cacheable:bool -> ?label:string ->
  ?ops:Verifier.op list ->
  cost:Sim.Stime.t -> ('a -> unit) -> unit -> unit
(** [install ev ?guard ~cost fn] attaches a handler; [fn] fires for each
    raise whose [guard] accepts the payload, charging [cost] (plus
    [dyncost payload] for data-touching work) of CPU.  [gcost] adds
    per-evaluation guard cost on top of the dispatcher's base guard
    charge (interpreted packet filters).  [key] places the handler in the
    event's dispatch index under that key (see {!set_keyfn}); [keys]
    supplies {e every} key the guard pins (one per dimension,
    e.g. {!Filter.key_conjuncts}) so the merged decision tree can place
    the handler on exactly the paths that satisfy all of them — [key]
    and [keys] are unioned.  [exact] (default [false]) asserts the
    guard is {e nothing but} those key equalities
    ({!Filter.keys_exact}): a tree walk that proves them skips the
    closure entirely.  [cacheable] (default [false]) asserts that
    [guard]'s verdict is a pure function of the payload's
    flow-signature fields, allowing the flow-path cache to skip it on
    replay; a single non-cacheable candidate on an event keeps every
    chain through that event out of the cache.  [label] names the
    handler in spans, metrics
    ([spin.<event>.<label>.guard_hits|guard_misses|runs|run_ns]) and
    {!dump} output; it defaults to ["h<id>"].  Reinstalling a label
    starts a fresh metric generation ([<label>#N...]) so a replacement
    never inherits the retired generation's ledger.  [ops] declares the
    handler's operations for the {!Verifier}: the inferred budget is
    recorded in {!dump} and checked against the event's policy.
    Returns the uninstaller (O(1)). *)

val install_ephemeral :
  'a event -> ?guard:('a -> bool) -> ?key:int -> ?keys:int list ->
  ?exact:bool -> ?gcost:Sim.Stime.t ->
  ?label:string -> ?ops:Verifier.op list -> ?budget:Sim.Stime.t ->
  ('a -> Ephemeral.t) ->
  unit -> unit
(** Attach an interrupt-level handler as an ephemeral program, optionally
    limited to [budget] of CPU per invocation (overruns are terminated
    between actions).  When [ops] is declared and [budget] is not, the
    certified bound ({!Verifier.cost} of the inferred budget) becomes
    the runtime budget — the static promise is also the enforcement
    ceiling.  Returns the uninstaller. *)

(** {1 Hot-swap lifecycle scopes}

    The zero-drop replacement protocol ({!Linker.replace} drives it):

    {v
    begin_staging -> link new generation (installs become thunks)
                  -> commit_staging   (all-or-nothing visibility flip)
    begin_retiring -> unlink old generation (handlers with queued
                      deliveries drain on the old generation first)
                   -> end_retiring
    v}

    Between [commit_staging] and the old generation's unlink both
    generations are installed; a raise in that window delivers to both,
    and deliveries queued to the old generation before its retirement
    still run ([swap_inflight] counts them until they drain).  No
    instant exists at which a matching packet sees neither generation. *)

val begin_staging : t -> unit
(** Open a staging scope: subsequent installs on any event of this
    dispatcher are deferred (invisible to raises) until
    {!commit_staging}.  Fails if a scope is already open. *)

val commit_staging : t -> int
(** Activate every install staged since {!begin_staging}, in install
    order, and return how many there were.  The activations happen
    synchronously with no engine work in between — a raise observes
    either none or all of the staged generation. *)

val abort_staging : t -> unit
(** Discard the staged installs (a failed link): none become visible.
    No-op if no scope is open. *)

val begin_retiring : t -> unit
(** Open a retire scope: until {!end_retiring}, uninstalling a handler
    with queued deliveries retires it instead — it leaves the dispatch
    tables immediately (no new raise selects it) but its queued
    deliveries still run. *)

val end_retiring : t -> int * int
(** Close the retire scope; returns [(retired, inflight)] — handlers
    retired and deliveries that were still queued to them at the flip.
    Counted in [spin.swaps]. *)

val swap_inflight : t -> int
(** Deliveries queued to retired handlers that have not yet drained;
    [0] means every old-generation delivery has completed. *)

val raise : ?prio:Sim.Cpu.prio -> 'a event -> 'a -> unit
(** Raise the event: evaluate the candidate guards (the matching index
    buckets plus the linear fallback on indexed events; every installed
    guard otherwise), charging demux cost, and deliver to each accepting
    handler according to the event's mode.  With the flow-path cache
    enabled and a signature extractor installed, a signable root raise
    is served from (or recorded into) the cache instead.

    [?prio] overrides the delivery priority for this raise, {e stickily}:
    nested raises made from the delivered handler bodies inherit the
    override, so a demoted raise keeps the whole graph walk demoted (the
    polled receive path under admission control relies on this — without
    it the first nested interrupt-mode event would re-escalate).
    Overridden raises bypass the flow-path cache: replay charges the
    chain synchronously in the raiser's context and a recording would
    replay at interrupt priority later, both wrong for a demoted walk. *)

val raise_batch : ?prio:Sim.Cpu.prio -> 'a event -> 'a list -> unit
(** Raise the event once per payload, back to back, amortizing the
    raise-counter updates across the batch.  Each payload still
    dispatches (and hits or records the flow cache) individually.
    [?prio] as in {!raise}. *)

(** {1 Counters} *)

val raises : t -> int
val guard_evals : t -> int

val path_cache_hits : t -> int
val path_cache_misses : t -> int

val path_cache_invalidations : t -> int
(** Cached chains discarded: stale generation at lookup or run, replay
    divergence, or a recording invalidated by churn during its own
    delivery. *)

val path_cache_evictions : t -> int
(** Cold entries displaced by the CLOCK hand when a cache shard is at
    capacity (across every event's cache on this dispatcher). *)

val index_lookups : t -> int
(** Raises that consulted a dispatch index instead of scanning. *)

val invocations : t -> int
val terminations : t -> int

val faults : t -> int
(** Handlers (or guards) that raised an exception.  The fault is
    contained: counted, and the offending handler uninstalled — never
    propagated into the kernel.  Exception: asynchronous exceptions
    ([Stack_overflow], [Out_of_memory]) signal kernel-level resource
    exhaustion and are re-raised, never contained. *)

val eph_failures : t -> int
(** Ephemeral handler {e crashes} (the handler body raised while
    building its program) — distinct from {!terminations}, which counts
    budget overruns of healthy handlers.  Also published as
    [spin.eph.failures]. *)

val quarantines : t -> int
(** Handlers evicted by a {!set_quarantine} policy ([spin.quarantines]). *)

val swaps : t -> int
(** Completed hot-swap retire scopes ([spin.swaps]). *)

(** {1 Introspection} *)

type handler_info = {
  hi_id : int;
  hi_label : string;
  hi_gen : int;
      (** reinstall generation of this label: the ledger is keyed by
          (label, generation), so a hot-swapped replacement starts at
          zero instead of inheriting the retired handler's totals *)
  hi_key : int option;
  hi_ephemeral : bool;
  hi_budget : Verifier.budget option;
      (** the certificate's statically inferred resource bound, when
          the handler was installed with a declared op list *)
  hi_guard_hits : int;
  hi_guard_misses : int;
  hi_runs : int;
  hi_cpu_ns : int;
      (** cumulative modelled CPU charged to this handler's runs (the
          per-extension resource ledger; also published as
          [spin.<event>.<label>.cpu_ns]) *)
  hi_allocs : int;
      (** mbufs allocated while this handler's body ran
          ([spin.<event>.<label>.mbuf_allocs]) *)
  hi_terminations : int;
      (** ephemeral budget overruns ([spin.<event>.<label>.terminations]) *)
  hi_failures : int;
      (** ephemeral handler crashes ([spin.<event>.<label>.failures]) *)
  hi_quarantines : int;
      (** quarantine evictions ([spin.<event>.<label>.quarantines]) *)
  hi_lat : Observe.Histogram.snapshot option;
      (** run-latency distribution; [None] on a registry-less dispatcher *)
}

type tree_info = {
  ti_nodes : int;  (** switch + leaf nodes in the compiled tree *)
  ti_depth : int;  (** longest switch chain a walk can visit *)
  ti_rebuilds : int;  (** times the tree was (re)compiled *)
  ti_raises : int;  (** raises served by a tree walk *)
  ti_residual_evals : int;  (** leaf residual guards actually evaluated *)
}

type event_info = {
  ei_name : string;
  ei_mode : delivery;
  ei_indexed : bool;  (** the event has a demux-key extractor *)
  ei_generation : int;  (** invalidation generation (see {!touch}) *)
  ei_cache_entries : int;  (** live flow-path cache entries *)
  ei_tree : tree_info option;
      (** the last compiled merged dispatch tree, if any *)
  ei_handlers : handler_info list;  (** in install order *)
}

(** Structural rendering of a compiled tree ({!compiled_tree}). *)
type tree_view =
  | Tree_leaf of {
      tv_exact : (int * string) list;
          (** (hid, label) of proven matches — guards skipped *)
      tv_resid : (int * string) list;
          (** (hid, label) of residual guards — still evaluated *)
    }
  | Tree_switch of {
      tv_dim : int;  (** key dimension tested ({!Filter.key_tag} order) *)
      tv_cases : (int * tree_view) list;  (** jump-table entries by value *)
      tv_default : tree_view;  (** taken when the dimension is absent or
                                   carries an unlisted value *)
    }

val compiled_tree : _ event -> tree_view option
(** The event's merged dispatch tree, compiling it first if stale.
    [None] when tree dispatch does not apply (disabled, no key
    extractor, no keyed handlers, or <=1 handler installed). *)

val tree_raises : _ event -> int
(** Raises on this event served by a merged-tree walk. *)

val tree_views : t -> (string * tree_view option) list
(** [compiled_tree] for every event declared on this dispatcher, in
    declaration order — the CLI's [dispatch --tree] dump. *)

val dump : t -> event_info list
(** Every event declared on this dispatcher, in declaration order, with
    its installed handlers and their live counters. *)

val pp_event_info : event_info Fmt.t
val pp_dump : t Fmt.t
