(** The SPIN event dispatcher: typed events, guards, handlers and the
    demux index.

    "An event is raised by a kernel service or extension code to announce
    a change in system state or to request a service" (paper, section 2).
    Handlers are installed with guards — arbitrary predicates that act as
    packet filters — and may be delivered at interrupt level (possibly as
    budget-limited {!Ephemeral} programs) or each on a fresh thread.

    Events may additionally carry a {e dispatch index} (DPF/PathFinder
    style): handlers whose guard implies a literal equality on a demux
    field are installed with that equality as a [key]; raising then hashes
    the payload's key fields once ({!set_keyfn}) and evaluates only the
    guards in the matching buckets plus the unkeyed linear fallback, so
    raise cost scales with matching handlers, not installed handlers. *)

type t
(** One dispatcher per kernel; owns the delivery cost model and counters. *)

type delivery =
  | Interrupt  (** run handlers in the raiser's interrupt context *)
  | Thread     (** spawn a thread per handler invocation *)

type costs = {
  dispatch : Sim.Stime.t;
  guard : Sim.Stime.t;
  index : Sim.Stime.t;
      (** charged once per raise on an indexed event, replacing the
          [guard * installed] scan *)
  thread_spawn : Sim.Stime.t;
}

val default_costs : costs

val create : cpu:Sim.Cpu.t -> costs:costs -> t

val cpu : t -> Sim.Cpu.t
val costs : t -> costs

(** {1 Events} *)

type 'a event
(** An event whose payload has type ['a]. *)

val event : t -> ?mode:delivery -> string -> 'a event
(** Declare a named event (default delivery: [Interrupt]). *)

val name : _ event -> string
val mode : _ event -> delivery
val set_mode : _ event -> delivery -> unit

val set_keyfn : 'a event -> ('a -> int list) -> unit
(** Declare the event's demux-key extractor: the list of dispatch keys a
    payload presents (e.g. its EtherType, protocol number and ports).
    Handlers installed with [~key:k] are only considered for payloads
    whose extracted keys include [k].  Soundness contract: a keyed
    handler's guard must reject any payload that does not present its
    key, so the index only ever skips guards that would refuse. *)

val handler_count : _ event -> int
val indexed_count : _ event -> int
(** Handlers installed with a dispatch key. *)

val linear_count : _ event -> int
(** Handlers in the unkeyed fallback bucket, scanned on every raise. *)

val install :
  'a event -> ?guard:('a -> bool) -> ?key:int -> ?gcost:Sim.Stime.t ->
  ?dyncost:('a -> Sim.Stime.t) -> cost:Sim.Stime.t -> ('a -> unit) ->
  unit -> unit
(** [install ev ?guard ~cost fn] attaches a handler; [fn] fires for each
    raise whose [guard] accepts the payload, charging [cost] (plus
    [dyncost payload] for data-touching work) of CPU.  [gcost] adds
    per-evaluation guard cost on top of the dispatcher's base guard
    charge (interpreted packet filters).  [key] places the handler in the
    event's dispatch index under that key (see {!set_keyfn}).  Returns
    the uninstaller (O(1)). *)

val install_ephemeral :
  'a event -> ?guard:('a -> bool) -> ?key:int -> ?gcost:Sim.Stime.t ->
  ?budget:Sim.Stime.t -> ('a -> Ephemeral.t) -> unit -> unit
(** Attach an interrupt-level handler as an ephemeral program, optionally
    limited to [budget] of CPU per invocation (overruns are terminated
    between actions).  Returns the uninstaller. *)

val raise : 'a event -> 'a -> unit
(** Raise the event: evaluate the candidate guards (the matching index
    buckets plus the linear fallback on indexed events; every installed
    guard otherwise), charging demux cost, and deliver to each accepting
    handler according to the event's mode. *)

(** {1 Counters} *)

val raises : t -> int
val guard_evals : t -> int

val index_lookups : t -> int
(** Raises that consulted a dispatch index instead of scanning. *)

val invocations : t -> int
val terminations : t -> int

val faults : t -> int
(** Handlers (or guards) that raised an exception.  The fault is
    contained: counted, and the offending handler uninstalled — never
    propagated into the kernel. *)
