(* EPHEMERAL procedures (paper section 3.3).

   A handler delegated to interrupt context must (a) return quickly and
   (b) never block, and must tolerate asynchronous termination without
   damaging invariants.  The paper enforces this with a compiler check:
   EPHEMERAL procedures may only call EPHEMERAL procedures.

   We model the check with types instead of a compiler pass: an ephemeral
   handler does not run arbitrary code at interrupt level — it *returns a
   program*, a sequence of atomic actions, each with a modelled cost.  The
   only constructors available build non-blocking actions, so a
   non-ephemeral operation (blocking, unbounded) is unrepresentable —
   [IllegalHandler] from Figure 3 is a type error here.  Termination
   safety falls out: the dispatcher commits whole actions in order until
   the time budget expires and discards the rest, which is exactly "can be
   asynchronously terminated without damaging important state". *)

type action = { label : string; cost : Sim.Stime.t; commit : unit -> unit }

type t = action list

let action ?(label = "action") ~cost commit = { label; cost; commit }

let nothing : t = []

let total_cost (t : t) =
  List.fold_left (fun acc a -> Sim.Stime.add acc a.cost) Sim.Stime.zero t

(* Typical ephemeral operations, mirroring Figure 3's GoodHandler. *)

let enqueue ?(cost = Sim.Stime.ns 300) q v =
  action ~label:"enqueue" ~cost (fun () -> Queue.push v q)

let count ?(cost = Sim.Stime.ns 100) c =
  action ~label:"count" ~cost (fun () -> Sim.Stats.Counter.incr c)

let work ~label ~cost f = action ~label ~cost f

type result = {
  committed : int;      (* actions applied *)
  total : int;          (* actions in the program *)
  terminated : bool;    (* true if the budget expired first *)
  consumed : Sim.Stime.t; (* CPU time actually spent *)
}

type plan = { to_commit : action list; result : result }

(* Decide, without side effects, which prefix of the program fits in the
   budget.  The dispatcher charges [result.consumed] of CPU time first and
   commits the prefix afterwards, so simulated time and state changes stay
   ordered. *)
let plan ?budget (t : t) =
  let total = List.length t in
  match budget with
  | Some b when Sim.Stime.compare b Sim.Stime.zero <= 0 && total > 0 ->
      (* An already-expired budget terminates the program before its
         first action — even a zero-cost one — and charges nothing. *)
      { to_commit = [];
        result =
          { committed = 0; total; terminated = true;
            consumed = Sim.Stime.zero } }
  | _ ->
  let rec go acc committed consumed = function
    | [] ->
        { to_commit = List.rev acc;
          result = { committed; total; terminated = false; consumed } }
    | a :: rest ->
        let consumed' = Sim.Stime.add consumed a.cost in
        let over =
          match budget with
          | None -> false
          | Some b -> Sim.Stime.compare consumed' b > 0
        in
        if over then
          (* The overrunning action is charged up to the budget boundary
             but its effect is discarded: termination is abrupt but falls
             between atomic actions, preserving invariants. *)
          { to_commit = List.rev acc;
            result =
              { committed;
                total;
                terminated = true;
                consumed = (match budget with Some b -> b | None -> consumed');
              } }
        else go (a :: acc) (committed + 1) consumed' rest
  in
  go [] 0 Sim.Stime.zero t

let planned (p : plan) = p.result

let commit (p : plan) =
  List.iter (fun a -> a.commit ()) p.to_commit;
  p.result

let execute ?budget (t : t) = commit (plan ?budget t)
