(* SPIN's dynamic linker (paper section 2, [SFPB96]).

   [link] verifies the compiler signature, checks the certificate's
   static resource bound against the caller's policy, resolves every
   declared import against the target protection domain, and only then
   runs the extension's initializer.  The initializer receives a
   [linkage] whose [get] enforces two further properties: it refuses
   symbols the extension did not declare (an extension cannot "discover"
   symbols at runtime) and it type-checks each resolution through the
   caller's witness.  If initialization fails, every cleanup registered
   so far is run, so a failed link leaves no residue.

   [unlink] runs the cleanups in reverse registration order, detaching the
   extension's handlers so that protocols "come and go with their
   corresponding applications".

   [replace] is the live-upgrade protocol: stage the next generation's
   installs, link it, flip all of them visible atomically, then retire
   the old generation — handlers with deliveries still queued drain on
   the old code before disappearing.  No packet that matched either
   generation is ever dropped by the swap. *)

type linked = {
  extension : Extension.t;
  domain : Domain.t;
  mutable undo : (unit -> unit) list;
  mutable live : bool;
}

let run_undo l =
  let undo = l.undo in
  l.undo <- [];
  List.iter (fun f -> f ()) undo

let link ?policy ~domain ext =
  if not (Extension.cert_valid ext) then Error Extension.Unsigned
  else
    let admitted =
      match policy with
      | None -> Ok ()
      | Some p -> Verifier.admit p (Extension.budget ext)
    in
    match admitted with
    | Error v -> Error (Extension.Over_budget v)
    | Ok () ->
  begin
    let imports = Extension.imports ext in
    let missing =
      List.filter (fun (iface, sym) -> not (Domain.can_resolve domain ~iface ~sym)) imports
    in
    if missing <> [] then Error (Extension.Unresolved missing)
    else begin
      let l = { extension = ext; domain; undo = []; live = true } in
      let get (type a) (w : a Univ.witness) ~iface ~sym : a =
        if not (List.mem (iface, sym) imports) then
          raise (Extension.Link_failure (Extension.Undeclared_import (iface, sym)));
        match Domain.resolve domain ~iface ~sym with
        | None ->
            raise (Extension.Link_failure (Extension.Unresolved [ (iface, sym) ]))
        | Some u -> (
            match Univ.proj w u with
            | Some v -> v
            | None ->
                raise (Extension.Link_failure (Extension.Type_clash (iface, sym))))
      in
      let linkage =
        { Extension.get; on_unlink = (fun f -> l.undo <- f :: l.undo) }
      in
      match Extension.init ext linkage with
      | () -> Ok l
      | exception Extension.Link_failure f ->
          run_undo l;
          Error f
      | exception Dispatcher.Install_rejected { violation; _ } ->
          (* an event-level policy refused one of the extension's
             handlers mid-init: unwind as a typed budget failure *)
          run_undo l;
          Error (Extension.Over_budget violation)
      | exception e ->
          run_undo l;
          Error (Extension.Init_raised (Printexc.to_string e))
    end
  end

let unlink l =
  if l.live then begin
    l.live <- false;
    run_undo l
  end

let is_linked l = l.live
let extension l = l.extension
let domain l = l.domain

type swap = {
  swap_installed : int;  (* handlers the new generation installed *)
  swap_retired : int;    (* old-generation handlers taken out of dispatch *)
  swap_inflight : int;   (* deliveries queued to them at the flip *)
}

let replace ?policy ~disp ~domain old next =
  Dispatcher.begin_staging disp;
  match link ?policy ~domain next with
  | Error e ->
      (* failed link: the staged installs never become visible and the
         old generation keeps running untouched *)
      Dispatcher.abort_staging disp;
      Error e
  | Ok nl ->
      let installed = Dispatcher.commit_staging disp in
      Dispatcher.begin_retiring disp;
      unlink old;
      let retired, inflight = Dispatcher.end_retiring disp in
      Ok
        ( nl,
          {
            swap_installed = installed;
            swap_retired = retired;
            swap_inflight = inflight;
          } )
