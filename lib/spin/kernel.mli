(** A SPIN kernel instance (one per simulated host).

    Owns the host CPU, the event dispatcher, the interface namespace and
    the root protection domain; fronts the dynamic linker. *)

type t

val create :
  ?costs:Dispatcher.costs -> ?observe:bool -> ?flight_seed:int ->
  Sim.Engine.t -> name:string -> t
(** [create engine ~name] builds a kernel with its own CPU, dispatcher,
    metrics registry and trace endpoint.  [observe] (default true)
    attaches the registry to the dispatcher so per-event/per-handler
    metrics are published; [~observe:false] keeps the dispatcher
    detached — counters still accumulate privately, histograms are not
    recorded (the baseline for overhead benchmarks).  [flight_seed]
    seeds the packet flight recorder's sampling decisions (default: a
    deterministic hash of [name]); the recorder starts disabled — turn
    it on with [Observe.Flight.set_rate (flight t) n]. *)

val name : t -> string
val engine : t -> Sim.Engine.t
val cpu : t -> Sim.Cpu.t
val dispatcher : t -> Dispatcher.t
val now : t -> Sim.Stime.t

val registry : t -> Observe.Registry.t
(** The kernel's metrics registry (empty when created with
    [~observe:false]). *)

val trace : t -> Observe.Trace.t
(** The kernel's span endpoint; attach a sink with
    [Observe.Trace.set_sink (trace k) (Ring ...)] to record dispatch
    spans. *)

val flight : t -> Observe.Flight.t
(** The kernel's packet flight recorder (shared with the dispatcher).
    Disabled until [Observe.Flight.set_rate] sets a 1-in-N rate. *)

val telemetry_every :
  ?capacity:int -> t -> period:Sim.Stime.t ->
  Observe.Telemetry.t * (unit -> unit)
(** Start periodic time-series telemetry: every [period] of virtual
    time the registry is snapshotted (delta-encoded) into a bounded
    ring of [capacity] points.  Returns the series and a stop function.
    The self-rearming tick keeps the engine non-quiescent — run the
    engine with [~until], or stop the series before draining. *)

val introspect : t -> string
(** Human-readable dump of every event, its installed handlers (label,
    dispatch key, delivery kind) and their live counters. *)

val root_domain : t -> Domain.t
(** The domain containing every kernel interface; handed out sparingly. *)

val declare_interface : t -> string -> Interface.t
(** Find-or-create a named interface, visible in the root domain. *)

val find_interface : t -> string -> Interface.t option

val restricted_domain : t -> string -> string list -> Domain.t
(** A fresh domain exposing only the named (existing) interfaces.
    @raise Invalid_argument if an interface does not exist. *)

val link :
  ?policy:Verifier.policy ->
  t -> domain:Domain.t -> Extension.t -> (Linker.linked, Extension.failure) result

val replace :
  ?policy:Verifier.policy ->
  t -> domain:Domain.t -> Linker.linked -> Extension.t ->
  (Linker.linked * Linker.swap, Extension.failure) result
(** Hot-swap a linked extension on this kernel's dispatcher: see
    {!Linker.replace}. *)
