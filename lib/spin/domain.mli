(** Logical protection domains.

    A domain defines the set of interfaces an extension may link against.
    Domains are capabilities: code that does not hold a [t] cannot link
    anything against it.  Different extensions can be handed different
    domains, giving them access to different services (paper, section 2).

    Naming note: this is the {e paper's} protection domain, unrelated to
    the OCaml 5 runtime's execution domains.  Code that uses both (the
    multicore datapath in [lib/par]) must reach the latter as
    [Stdlib.Domain] — never [open Spin] near runtime-domain code, or
    this module captures the name. *)

type t

val create : string -> t
(** An empty domain. *)

val name : t -> string

val add : t -> Interface.t -> unit
(** Make an interface visible in the domain. *)

val of_interfaces : string -> Interface.t list -> t

val union : string -> t -> t -> t
(** A fresh domain with the combined visibility of both arguments. *)

val interfaces : t -> Interface.t list
val find_interface : t -> string -> Interface.t option

val resolve : t -> iface:string -> sym:string -> Univ.t option
(** Look up a symbol by interface and name, if visible. *)

val can_resolve : t -> iface:string -> sym:string -> bool
