(** Sharded flow-state containers.

    Keys are spread over a power-of-two number of shards by hash — the
    same partition that multicore sharding (ROADMAP item 2) pins to
    domains.  {!Table} is unbounded, for state that must not be dropped
    (connections, binds).  {!Cache} is bounded with CLOCK eviction, for
    derived state that can be rebuilt (flow-path chains). *)

module Table : sig
  type ('k, 'v) t

  val create : ?shards:int -> hash:('k -> int) -> unit -> ('k, 'v) t
  (** [shards] is rounded up to a power of two (default 16). *)

  val find_opt : ('k, 'v) t -> 'k -> 'v option
  val mem : ('k, 'v) t -> 'k -> bool
  val replace : ('k, 'v) t -> 'k -> 'v -> unit
  val remove : ('k, 'v) t -> 'k -> unit
  val length : ('k, 'v) t -> int
  val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
  val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
  val reset : ('k, 'v) t -> unit
  val shard_count : ('k, 'v) t -> int

  val max_shard_size : ('k, 'v) t -> int
  (** Occupancy of the fullest shard — a skew indicator. *)
end

module Cache : sig
  type 'v t

  val create :
    ?shards:int -> ?per_shard:int -> ?evictions:int ref -> unit -> 'v t
  (** Each shard grows geometrically from 8 slots up to [per_shard]
      (default 8192), then evicts CLOCK-style.  [evictions] lets the
      caller supply a registry counter to increment on each eviction. *)

  val find_opt : 'v t -> string -> 'v option
  (** Marks the entry recently-used. *)

  val put : 'v t -> string -> 'v -> unit
  (** Insert or replace; evicts a cold entry when the shard is full. *)

  val remove : 'v t -> string -> unit
  val length : 'v t -> int
  val capacity : 'v t -> int
  val shard_count : 'v t -> int
  val evictions : 'v t -> int
  val reset : 'v t -> unit
end
