(* A SPIN kernel instance: one per simulated host.  Ties together the
   engine, the host CPU, the event dispatcher and the interface/domain
   namespace, and fronts the dynamic linker. *)

type t = {
  name : string;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  dispatcher : Dispatcher.t;
  registry : Observe.Registry.t;
  trace : Observe.Trace.t;
  flight : Observe.Flight.t;
  interfaces : (string, Interface.t) Hashtbl.t;
  root_domain : Domain.t;
      (* every interface in the kernel; "few extensions have access to
         this domain" *)
}

let create ?(costs = Dispatcher.default_costs) ?(observe = true) ?flight_seed
    engine ~name =
  let cpu = Sim.Cpu.create engine ~name:(name ^ ".cpu") in
  let registry = Observe.Registry.create ~name () in
  let trace = Observe.Trace.create () in
  (* Disabled (rate 0) until someone turns sampling on; the default seed
     is a deterministic function of the kernel name so two hosts sample
     independent packet sets out of the box. *)
  let flight =
    Observe.Flight.create ~seed:(match flight_seed with
      | Some s -> s
      | None -> Hashtbl.hash name) ()
  in
  let dispatcher =
    Dispatcher.create
      ?registry:(if observe then Some registry else None)
      ~trace ~cpu ~costs ()
  in
  Dispatcher.set_flight dispatcher (Some flight);
  {
    name;
    engine;
    cpu;
    dispatcher;
    registry;
    trace;
    flight;
    interfaces = Hashtbl.create 16;
    root_domain = Domain.create (name ^ ".root");
  }

let name t = t.name
let engine t = t.engine
let cpu t = t.cpu
let dispatcher t = t.dispatcher
let registry t = t.registry
let trace t = t.trace
let flight t = t.flight
let root_domain t = t.root_domain

(* Time-series telemetry: snapshot the registry every [period] of
   virtual time into a delta-encoded ring.  The tick re-arms itself, so
   the engine never quiesces while telemetry runs — drive the engine
   with [~until] (or call the returned stop function first).  One-shot
   self-rearming timers (not a standing queue of ticks) follow the
   ip_mgr fragment-expiry pattern: cancellation drops the closure
   eagerly. *)
let telemetry_every ?capacity t ~period =
  let tel = Observe.Telemetry.create ?capacity t.registry in
  let stopped = ref false in
  let handle = ref None in
  let rec arm () =
    handle :=
      Some
        (Sim.Engine.schedule_in t.engine ~delay:period (fun () ->
             ignore
               (Observe.Telemetry.record tel
                  ~at_ns:(Sim.Stime.to_ns (Sim.Engine.now t.engine)));
             if not !stopped then arm ()))
  in
  arm ();
  let stop () =
    if not !stopped then begin
      stopped := true;
      (match !handle with Some h -> Sim.Engine.cancel h | None -> ());
      handle := None
    end
  in
  (tel, stop)

let introspect t =
  Fmt.str "kernel %s: %d interface(s), %d event(s)@.%a" t.name
    (Hashtbl.length t.interfaces)
    (List.length (Dispatcher.dump t.dispatcher))
    Dispatcher.pp_dump t.dispatcher

let declare_interface t iname =
  match Hashtbl.find_opt t.interfaces iname with
  | Some i -> i
  | None ->
      let i = Interface.create iname in
      Hashtbl.replace t.interfaces iname i;
      Domain.add t.root_domain i;
      i

let find_interface t iname = Hashtbl.find_opt t.interfaces iname

(* A restricted domain exposing only the named interfaces — how protocol
   managers hand applications access to exactly the services they should
   see. *)
let restricted_domain t dname inames =
  let d = Domain.create (t.name ^ "." ^ dname) in
  List.iter
    (fun iname ->
      match find_interface t iname with
      | Some i -> Domain.add d i
      | None -> invalid_arg ("Kernel.restricted_domain: no interface " ^ iname))
    inames;
  d

let link ?policy t ~domain ext =
  ignore t;
  Linker.link ?policy ~domain ext

let replace ?policy t ~domain old next =
  Linker.replace ?policy ~disp:t.dispatcher ~domain old next

let now t = Sim.Engine.now t.engine
