(* A SPIN kernel instance: one per simulated host.  Ties together the
   engine, the host CPU, the event dispatcher and the interface/domain
   namespace, and fronts the dynamic linker. *)

type t = {
  name : string;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  dispatcher : Dispatcher.t;
  registry : Observe.Registry.t;
  trace : Observe.Trace.t;
  interfaces : (string, Interface.t) Hashtbl.t;
  root_domain : Domain.t;
      (* every interface in the kernel; "few extensions have access to
         this domain" *)
}

let create ?(costs = Dispatcher.default_costs) ?(observe = true) engine ~name =
  let cpu = Sim.Cpu.create engine ~name:(name ^ ".cpu") in
  let registry = Observe.Registry.create ~name () in
  let trace = Observe.Trace.create () in
  {
    name;
    engine;
    cpu;
    dispatcher =
      Dispatcher.create
        ?registry:(if observe then Some registry else None)
        ~trace ~cpu ~costs ();
    registry;
    trace;
    interfaces = Hashtbl.create 16;
    root_domain = Domain.create (name ^ ".root");
  }

let name t = t.name
let engine t = t.engine
let cpu t = t.cpu
let dispatcher t = t.dispatcher
let registry t = t.registry
let trace t = t.trace
let root_domain t = t.root_domain

let introspect t =
  Fmt.str "kernel %s: %d interface(s), %d event(s)@.%a" t.name
    (Hashtbl.length t.interfaces)
    (List.length (Dispatcher.dump t.dispatcher))
    Dispatcher.pp_dump t.dispatcher

let declare_interface t iname =
  match Hashtbl.find_opt t.interfaces iname with
  | Some i -> i
  | None ->
      let i = Interface.create iname in
      Hashtbl.replace t.interfaces iname i;
      Domain.add t.root_domain i;
      i

let find_interface t iname = Hashtbl.find_opt t.interfaces iname

(* A restricted domain exposing only the named interfaces — how protocol
   managers hand applications access to exactly the services they should
   see. *)
let restricted_domain t dname inames =
  let d = Domain.create (t.name ^ "." ^ dname) in
  List.iter
    (fun iname ->
      match find_interface t iname with
      | Some i -> Domain.add d i
      | None -> invalid_arg ("Kernel.restricted_domain: no interface " ^ iname))
    inames;
  d

let link t ~domain ext =
  ignore t;
  Linker.link ~domain ext

let now t = Sim.Engine.now t.engine
