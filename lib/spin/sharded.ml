(* Sharded flow-state containers.

   Both containers split their key space over a power-of-two number of
   shards by key hash — the same split that ROADMAP item 2 uses to pin
   shards to domains, so everything built on these structures is already
   partitioned for multicore.

   [Table] is an unbounded sharded hashtable for state that must never be
   dropped silently (TCP connections, UDP binds).  [Cache] is a bounded
   string-keyed cache for derived state that can always be rebuilt (the
   dispatcher's flow-path chains): each shard is a CLOCK ring that grows
   geometrically up to a per-shard capacity and then evicts the first
   entry its hand finds with a clear reference bit. *)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

module Table = struct
  type ('k, 'v) t = {
    shards : ('k, 'v) Hashtbl.t array;
    mask : int;
    hash : 'k -> int;
  }

  let create ?(shards = 16) ~hash () =
    let n = round_pow2 (max 1 shards) in
    {
      shards = Array.init n (fun _ -> Hashtbl.create 16);
      mask = n - 1;
      hash;
    }

  let shard t k = t.shards.(t.hash k land t.mask)
  let find_opt t k = Hashtbl.find_opt (shard t k) k
  let mem t k = Hashtbl.mem (shard t k) k
  let replace t k v = Hashtbl.replace (shard t k) k v
  let remove t k = Hashtbl.remove (shard t k) k

  let length t =
    Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.shards

  let iter f t = Array.iter (Hashtbl.iter f) t.shards

  let fold f t init =
    Array.fold_left (fun acc h -> Hashtbl.fold f h acc) init t.shards

  let reset t = Array.iter Hashtbl.reset t.shards
  let shard_count t = Array.length t.shards

  let max_shard_size t =
    Array.fold_left (fun acc h -> max acc (Hashtbl.length h)) 0 t.shards
end

module Cache = struct
  type 'v slot = {
    mutable s_key : string;
    mutable s_value : 'v option; (* None = free *)
    mutable s_ref : bool;
  }

  type 'v shard = {
    mutable slots : 'v slot array;
    index : (string, int) Hashtbl.t; (* key -> slot number *)
    mutable hand : int;
    mutable used : int;
    mutable free : int list; (* holes left by [remove] *)
  }

  type 'v t = {
    cshards : 'v shard array;
    cmask : int;
    per_shard : int; (* capacity ceiling per shard *)
    evictions : int ref;
  }

  let fresh_slot () = { s_key = ""; s_value = None; s_ref = false }

  let create ?(shards = 16) ?(per_shard = 8192) ?evictions () =
    let n = round_pow2 (max 1 shards) in
    let evictions = match evictions with Some r -> r | None -> ref 0 in
    {
      cshards =
        Array.init n (fun _ ->
            {
              slots = Array.init 8 (fun _ -> fresh_slot ());
              index = Hashtbl.create 16;
              hand = 0;
              used = 0;
              free = List.init 8 Fun.id;
            });
      cmask = n - 1;
      per_shard = max 8 per_shard;
      evictions;
    }

  let shard t key = t.cshards.(Hashtbl.hash key land t.cmask)

  let find_opt t key =
    let sh = shard t key in
    match Hashtbl.find_opt sh.index key with
    | None -> None
    | Some i ->
        let s = sh.slots.(i) in
        s.s_ref <- true;
        s.s_value

  let remove t key =
    let sh = shard t key in
    match Hashtbl.find_opt sh.index key with
    | None -> ()
    | Some i ->
        Hashtbl.remove sh.index key;
        let s = sh.slots.(i) in
        s.s_key <- "";
        s.s_value <- None;
        s.s_ref <- false;
        sh.used <- sh.used - 1;
        sh.free <- i :: sh.free

  let grow sh =
    let old = Array.length sh.slots in
    let slots = Array.init (old * 2) (fun i ->
        if i < old then sh.slots.(i) else fresh_slot ())
    in
    sh.slots <- slots;
    sh.free <- List.init old (fun i -> old + i) @ sh.free

  (* CLOCK: sweep from the hand, clearing reference bits, until a slot
     with a clear bit turns up.  Bounded by two revolutions. *)
  let evict t sh =
    let n = Array.length sh.slots in
    let rec sweep steps =
      if steps > 2 * n then invalid_arg "Sharded.Cache: no evictable slot"
      else begin
        let i = sh.hand in
        sh.hand <- (sh.hand + 1) mod n;
        let s = sh.slots.(i) in
        match s.s_value with
        | None -> sweep (steps + 1)
        | Some _ ->
            if s.s_ref then begin
              s.s_ref <- false;
              sweep (steps + 1)
            end
            else begin
              Hashtbl.remove sh.index s.s_key;
              s.s_key <- "";
              s.s_value <- None;
              sh.used <- sh.used - 1;
              incr t.evictions;
              i
            end
      end
    in
    sweep 0

  let put t key value =
    let sh = shard t key in
    match Hashtbl.find_opt sh.index key with
    | Some i ->
        let s = sh.slots.(i) in
        s.s_value <- Some value;
        s.s_ref <- true
    | None ->
        let i =
          match sh.free with
          | i :: rest ->
              sh.free <- rest;
              i
          | [] ->
              if Array.length sh.slots < t.per_shard then begin
                grow sh;
                match sh.free with
                | i :: rest ->
                    sh.free <- rest;
                    i
                | [] -> assert false
              end
              else evict t sh
        in
        let s = sh.slots.(i) in
        s.s_key <- key;
        s.s_value <- Some value;
        s.s_ref <- true;
        Hashtbl.replace sh.index key i;
        sh.used <- sh.used + 1

  let length t =
    Array.fold_left (fun acc sh -> acc + sh.used) 0 t.cshards

  let capacity t = Array.length t.cshards * t.per_shard
  let shard_count t = Array.length t.cshards
  let evictions t = !(t.evictions)

  let reset t =
    Array.iter
      (fun sh ->
        Hashtbl.reset sh.index;
        Array.iter
          (fun s ->
            s.s_key <- "";
            s.s_value <- None;
            s.s_ref <- false)
          sh.slots;
        sh.hand <- 0;
        sh.used <- 0;
        sh.free <- [])
      t.cshards
end
