(* Static resource verification (Rex-style load-time bounds) and the
   runtime quarantine policy.  See verifier.mli. *)

type op =
  | Enqueue
  | Count
  | Work of { insns : int }
  | Alloc of { mbufs : int }
  | Loop of { iters : int; body : op list }

type budget = { b_insns : int; b_allocs : int; b_cost_ns : int }

(* The cost model ties instructions to modelled time at 1 insn ~ 1 ns
   (the simulator's 1 GHz-ish CPU), so a certificate's instruction
   bound doubles as its ephemeral time budget. *)
let ns_per_insn = 1
let enqueue_insns = 300 (* Ephemeral.enqueue's default cost *)
let count_insns = 100 (* Ephemeral.count's default cost *)
let alloc_insns = 200 (* pool pop + header init per mbuf *)

let zero = { b_insns = 0; b_allocs = 0; b_cost_ns = 0 }

let add a b =
  {
    b_insns = a.b_insns + b.b_insns;
    b_allocs = a.b_allocs + b.b_allocs;
    b_cost_ns = a.b_cost_ns + b.b_cost_ns;
  }

let scale n b =
  { b_insns = n * b.b_insns; b_allocs = n * b.b_allocs; b_cost_ns = n * b.b_cost_ns }

let of_insns ?(allocs = 0) insns =
  { b_insns = insns; b_allocs = allocs; b_cost_ns = insns * ns_per_insn }

let rec infer ops =
  List.fold_left
    (fun acc op ->
      add acc
        (match op with
        | Enqueue -> of_insns enqueue_insns
        | Count -> of_insns count_insns
        | Work { insns } -> of_insns (max 0 insns)
        | Alloc { mbufs } ->
            of_insns ~allocs:(max 0 mbufs) (alloc_insns * max 0 mbufs)
        | Loop { iters; body } -> scale (max 0 iters) (infer body)))
    zero ops

let cost b = Sim.Stime.ns b.b_cost_ns

type policy = {
  p_max_insns : int;
  p_max_allocs : int;
  p_max_cost_ns : int;
  p_require_cert : bool;
}

let policy ?(max_insns = max_int) ?(max_allocs = max_int)
    ?(max_cost_ns = max_int) ?(require_cert = false) () =
  {
    p_max_insns = max_insns;
    p_max_allocs = max_allocs;
    p_max_cost_ns = max_cost_ns;
    p_require_cert = require_cert;
  }

type violation = { v_resource : string; v_declared : int; v_allowed : int }

let admit p b =
  match b with
  | None ->
      if p.p_require_cert then
        Error { v_resource = "certificate"; v_declared = 0; v_allowed = 0 }
      else Ok ()
  | Some b ->
      if b.b_insns > p.p_max_insns then
        Error
          { v_resource = "insns"; v_declared = b.b_insns;
            v_allowed = p.p_max_insns }
      else if b.b_allocs > p.p_max_allocs then
        Error
          { v_resource = "allocs"; v_declared = b.b_allocs;
            v_allowed = p.p_max_allocs }
      else if b.b_cost_ns > p.p_max_cost_ns then
        Error
          { v_resource = "cost_ns"; v_declared = b.b_cost_ns;
            v_allowed = p.p_max_cost_ns }
      else Ok ()

type quarantine = {
  q_window_ns : int;
  q_max_cpu_ns : int;
  q_max_allocs : int;
  q_max_terminations : int;
}

let quarantine ~window_ns ?(max_cpu_ns = max_int) ?(max_allocs = max_int)
    ?(max_terminations = max_int) () =
  if window_ns <= 0 then
    invalid_arg "Verifier.quarantine: window_ns must be positive";
  {
    q_window_ns = window_ns;
    q_max_cpu_ns = max_cpu_ns;
    q_max_allocs = max_allocs;
    q_max_terminations = max_terminations;
  }

let pp_budget ppf b =
  Fmt.pf ppf "insns<=%d allocs<=%d cost<=%dns" b.b_insns b.b_allocs b.b_cost_ns

let pp_violation ppf v =
  if v.v_resource = "certificate" then
    Fmt.pf ppf "event requires a certified budget and none was declared"
  else
    Fmt.pf ppf "declared %s %d exceeds the event policy's %d" v.v_resource
      v.v_declared v.v_allowed
