(* Extensions: partially resolved object files signed by the compiler
   (paper section 2).  The [cert] field models the compiler's signature;
   only {!Compiler.compile} can produce a valid one, and the linker
   rejects anything else.  [forge] exists so tests can demonstrate the
   rejection of unsigned code. *)

type cert = Signed of int | Forged

let compiler_magic = 0x5350494e (* "SPIN" *)

type linkage = {
  get : 'a. 'a Univ.witness -> iface:string -> sym:string -> 'a;
      (** Resolve a declared import.  Raises {!Link_failure} (caught by the
          linker) on missing symbols, undeclared imports or type clashes. *)
  on_unlink : (unit -> unit) -> unit;
      (** Register an action to undo this extension's installations when it
          is unlinked. *)
}

type failure =
  | Unsigned
  | Unresolved of (string * string) list
  | Undeclared_import of string * string
  | Type_clash of string * string
  | Init_raised of string
  | Over_budget of Verifier.violation

exception Link_failure of failure

type t = {
  name : string;
  imports : (string * string) list;
  init : linkage -> unit;
  cert : cert;
  budget : Verifier.budget option;
      (* statically inferred resource bound, part of the signature *)
}

let name t = t.name
let imports t = t.imports
let budget t = t.budget

let make ?budget ~name ~imports ~init ~cert () =
  { name; imports; init; cert; budget }

let cert_valid t = match t.cert with Signed m -> m = compiler_magic | Forged -> false

let init t linkage = t.init linkage

let pp_failure ppf = function
  | Unsigned -> Fmt.pf ppf "extension is not signed by the compiler"
  | Unresolved missing ->
      Fmt.pf ppf "unresolved symbols: %a"
        Fmt.(list ~sep:comma (fun ppf (i, s) -> Fmt.pf ppf "%s.%s" i s))
        missing
  | Undeclared_import (i, s) ->
      Fmt.pf ppf "import %s.%s was not declared" i s
  | Type_clash (i, s) -> Fmt.pf ppf "type clash resolving %s.%s" i s
  | Init_raised msg -> Fmt.pf ppf "initialization failed: %s" msg
  | Over_budget v -> Fmt.pf ppf "budget rejected: %a" Verifier.pp_violation v

module Compiler = struct
  (* "Our Modula-3 compiler signs partially resolved object files."  The
     compile step here checks the extension's static well-formedness (no
     duplicate imports) and attaches the signature. *)

  exception Compile_error of string

  let compile ?ops ~name ~imports init =
    let sorted = List.sort compare imports in
    let rec dup = function
      | a :: (b :: _ as tl) -> if a = b then Some a else dup tl
      | _ -> None
    in
    (match dup sorted with
    | Some (i, s) ->
        raise (Compile_error (Fmt.str "duplicate import %s.%s" i s))
    | None -> ());
    (* The verifier runs as a compiler pass: the declared op list is
       folded into a static budget and sealed into the certificate. *)
    let budget = Option.map Verifier.infer ops in
    make ?budget ~name ~imports ~init ~cert:(Signed compiler_magic) ()

  let forge ~name ~imports init = make ~name ~imports ~init ~cert:Forged ()
end
