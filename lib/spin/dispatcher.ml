(* The SPIN event dispatcher (paper section 2) with Plexus's delivery modes
   (section 4.1).

   Events are typed: an ['a event] carries payloads of type ['a] (protocol
   events carry packets).  Handlers are installed with an optional guard —
   an arbitrary predicate evaluated before the handler fires; guards are
   Plexus's packet filters.  More than one handler may be installed on an
   event; "the overhead of invoking each handler is roughly one procedure
   call", which the cost model reflects via [costs.dispatch].

   Demultiplexing scales the way DPF and PathFinder showed it must: an
   event may carry a *dispatch index*.  Handlers whose guard is known to
   imply a literal equality on a demux field (protocol number, port,
   EtherType) are installed with that equality as a [key]; at raise time
   the event's key extractor hashes the payload's demux fields once and
   only the handlers in the matching buckets — plus the unkeyed linear
   fallback bucket — have their guards evaluated.  Raise cost therefore
   scales with the number of *matching* handlers, not the number of
   *installed* handlers; the cost model charges one [costs.index] hash
   lookup instead of [guard * n].

   The registry behind this is an hid-indexed hash table (O(1) install,
   uninstall and liveness check) plus per-key bucket lists; bucket lists
   are pruned lazily of uninstalled ids at the next raise that touches
   them.

   Soundness contract for keys: installing a handler with [~key:k] asserts
   that its guard can only accept payloads for which the event's key
   extractor includes [k].  Managers derive both from the same endpoint or
   filter, so the index can never change which handlers fire — it only
   skips guards that were going to say no.

   Delivery modes correspond to the two Plexus bars in Figure 5:
   - [Interrupt]: handlers run at interrupt priority in the raiser's
     context.  Ephemeral handlers additionally run under a time budget
     with transactional termination.
   - [Thread]: "each event raise creating a new thread" — every handler
     invocation pays a thread-spawn cost and runs at thread priority.

   Observability: a dispatcher optionally carries an [Observe.Registry]
   (per-event raise/index counters, per-handler guard hit/miss counters
   and run-latency histograms, ephemeral commit accounting — naming
   scheme in DESIGN.md) and always carries an [Observe.Trace] endpoint
   whose sink defaults to [Null].  Span emission is guarded by
   [Trace.active], so disabled tracing costs one load and branch per
   site; counter updates are bare int-ref increments whether or not a
   registry is attached (the refs are simply shared with the registry
   when one is). *)

type delivery = Interrupt | Thread

type costs = {
  dispatch : Sim.Stime.t;      (* per-raise bookkeeping, ~ a procedure call *)
  guard : Sim.Stime.t;         (* per guard predicate evaluation *)
  index : Sim.Stime.t;         (* per-raise demux-key hash lookup *)
  tree_node : Sim.Stime.t;     (* per decision-tree switch visited *)
  thread_spawn : Sim.Stime.t;  (* thread-mode per-invocation cost *)
}

let default_costs =
  {
    dispatch = Sim.Stime.ns 400;
    guard = Sim.Stime.ns 300;
    index = Sim.Stime.ns 250;
    tree_node = Sim.Stime.ns 100;
    thread_spawn = Sim.Stime.us 12;
  }

(* --- flow-path cache ---------------------------------------------------
   The protocol graph is mostly static between install/uninstall events,
   so the handler chain a steady-state packet takes is identical for
   every packet of its flow.  The dispatcher exploits that: a root raise
   whose event carries a signature extractor ([set_sigfn]) summarizes
   the frame into a compact flow signature; on a miss the delivery walks
   the graph normally while *recording* the sequence of (event, accepted
   handlers) hops; on a hit the recorded chain is *replayed* directly —
   one signature lookup, no demux, no guard evaluation, the guards
   replaced by the signature match.

   Soundness rests on three mechanisms:
   - a hop is recorded only if every candidate handler (accepting or
     rejecting) was installed with [~cacheable:true], the installer's
     assertion that its guard is a pure function of the flow-signature
     fields — so skipping those guards on replay cannot change the
     accepted set;
   - each event carries a generation counter, bumped on every install,
     uninstall, mode/keyfn change and explicit [touch]; a hop remembers
     the generation it saw and a hit validates every hop in O(hops)
     before running anything;
   - recordings commit only when the delivery fully drains
     ([rec_pending] reaches zero) and every hop's generation is *still*
     current — a handler that installs or uninstalls during delivery
     discards the in-flight recording instead of committing a stale
     entry (re-entrancy safety).

   Replay runs the whole chain inside one interrupt work item: hop 0 is
   scheduled with its modelled handler cost, nested raises consume their
   recorded hops synchronously, and the accumulated cost of the inner
   hops is charged as a single trailing work item.  A replayed raise
   that diverges from the recording (different event, stale generation,
   more raises than recorded) drops the entry and falls back to normal
   graph dispatch mid-chain, so delivery is correct even when the cache
   is wrong about the future. *)

type hop = {
  hop_uid : int;  (* the event the recorded raise targeted *)
  hop_gen : int ref;  (* that event's live generation cell *)
  hop_gen_at : int;  (* generation when recorded *)
  hop_hids : int list;  (* accepting handlers, delivery order *)
}

type recording = {
  rec_ename : string;  (* root event name, for spans *)
  rec_commit : hop array -> unit;  (* store into the root event's table *)
  mutable rec_hops : hop list;  (* reversed *)
  mutable rec_pending : int;  (* scheduled continuations not yet drained *)
  mutable rec_ok : bool;  (* false once any hop was uncacheable *)
}

type replay = {
  rp_hops : hop array;
  mutable rp_claim : int;  (* next hop a nested raise should claim *)
  mutable rp_cost : Sim.Stime.t;  (* accumulated handler + index cost *)
  mutable rp_live : bool;  (* false once the chain has diverged *)
  rp_pending : (unit -> Sim.Stime.t) Queue.t;
      (* claimed hops awaiting execution, in raise order: running them
         FIFO after the claiming hop finishes reproduces graph
         dispatch's work-queue (hop-major) delivery order *)
  rp_drop : unit -> unit;  (* remove the entry on divergence *)
}

(* The dispatcher's dynamic delivery context.  Set only around the
   synchronous execution of handler bodies (and captured into scheduled
   continuations), so a nested [raise] knows whether it is being
   recorded or replayed. *)
type flow = No_flow | Recording of recording | Replaying of replay

let hop_valid hop = !(hop.hop_gen) = hop.hop_gen_at
let entry_valid hops = Array.for_all hop_valid hops

(* Per-event entry tables are sharded CLOCK caches (see {!Sharded.Cache}):
   shards grow geometrically up to a per-shard ceiling, then cold entries
   are evicted one at a time — steady-state flows re-record on their next
   packet.  This replaces the old flat 4096-entry table whose overflow
   policy was a full reset. *)
let cache_shards = 16
let cache_per_shard = 8192

(* Introspection views (see [dump]). *)
type handler_info = {
  hi_id : int;
  hi_label : string;
  hi_gen : int; (* reinstall generation of this label (ledger key) *)
  hi_key : int option;
  hi_ephemeral : bool;
  hi_budget : Verifier.budget option; (* certified static resource bound *)
  hi_guard_hits : int;
  hi_guard_misses : int;
  hi_runs : int;
  hi_cpu_ns : int; (* cumulative modelled CPU (the resource ledger) *)
  hi_allocs : int; (* mbufs allocated during this handler's runs *)
  hi_terminations : int; (* ephemeral budget overruns *)
  hi_failures : int; (* ephemeral handler crashes (distinct from terms) *)
  hi_quarantines : int; (* budget-blown evictions of this handler *)
  hi_lat : Observe.Histogram.snapshot option; (* run_ns distribution *)
}

type tree_info = {
  ti_nodes : int;            (* switch + leaf nodes in the compiled tree *)
  ti_depth : int;            (* longest switch chain a walk can visit *)
  ti_rebuilds : int;         (* times the tree was (re)compiled *)
  ti_raises : int;           (* raises served by a tree walk *)
  ti_residual_evals : int;   (* leaf residual guards actually evaluated *)
}

type event_info = {
  ei_name : string;
  ei_mode : delivery;
  ei_indexed : bool;          (* has a key extractor *)
  ei_generation : int;        (* invalidation generation *)
  ei_cache_entries : int;     (* live flow-path cache entries *)
  ei_tree : tree_info option; (* last compiled merged dispatch tree *)
  ei_handlers : handler_info list;
}

(* Shareable rendering of a compiled tree (see [compiled_tree]). *)
type tree_view =
  | Tree_leaf of {
      tv_exact : (int * string) list;  (* (hid, label): guard skipped *)
      tv_resid : (int * string) list;  (* (hid, label): guard re-checked *)
    }
  | Tree_switch of {
      tv_dim : int;  (* key dimension tested (Filter.key_tag order) *)
      tv_cases : (int * tree_view) list;  (* jump-table entries, by value *)
      tv_default : tree_view;  (* no handler pins this dimension's value *)
    }

(* Accounting for one hot-swap retire scope (see [begin_retiring]):
   handlers retired and the queued deliveries still in flight to them at
   the instant of the flip. *)
type retire_acc = { mutable ra_retired : int; mutable ra_inflight : int }

type t = {
  cpu : Sim.Cpu.t;
  costs : costs;
  reg : Observe.Registry.t option;
  trace : Observe.Trace.t;
  raises : Sim.Stats.Counter.t;
  guard_evals : Sim.Stats.Counter.t;
  index_lookups : Sim.Stats.Counter.t;
  invocations : Sim.Stats.Counter.t;
  terminations : Sim.Stats.Counter.t;
  faults : Sim.Stats.Counter.t;
  eph_commits : int ref;
  eph_actions : int ref;       (* committed ephemeral actions *)
  eph_terminated : int ref;    (* budget overruns *)
  eph_failures : int ref;      (* handler crashes, distinct from overruns *)
  quarantines : int ref;       (* budget-blown evictions *)
  swaps : int ref;             (* completed hot-swap retire scopes *)
  pc_hits : int ref;           (* flow-path cache *)
  pc_misses : int ref;
  pc_invalidations : int ref;
  pc_evictions : int ref;      (* CLOCK evictions across all event caches *)
  mutable fcache : bool;       (* flow-path cache enabled *)
  mutable tmode : bool;        (* merged-tree dispatch enabled (default) *)
  mutable flow : flow;         (* dynamic delivery context *)
  mutable prio_override : Sim.Cpu.prio option;
      (* sticky delivery-priority demotion: set around handler bodies of
         an overridden raise so nested raises inherit it — the polled
         (deferred) receive path uses this to keep the *whole* protocol
         graph walk at thread priority instead of re-escalating at the
         first nested interrupt-mode event *)
  mutable next_uid : int;      (* event uids, for hop identity *)
  mutable introspectors : (unit -> event_info) list; (* newest first *)
  mutable tree_viewers : (unit -> string * tree_view option) list;
      (* per-event compiled-tree renderers, newest first *)
  mutable flight : Observe.Flight.t option;
      (* packet flight recorder; [None] (the default) costs one load +
         branch per raise/handler site *)
  mutable staging : ((unit -> unit) * (unit -> unit)) list ref option;
      (* open staging scope: installs land here as (activate, cancel)
         thunks instead of entering their event tables, and become
         visible atomically at [commit_staging] — the first half of the
         hot-swap protocol *)
  mutable retiring : retire_acc option;
      (* open retire scope: uninstalls of handlers with queued
         deliveries detach them from dispatch but let the queue drain
         on the old generation — the second half of the hot-swap *)
  mutable swap_pending : int;
      (* queued deliveries to retired handlers not yet drained *)
}

let mkref reg name =
  match reg with Some r -> Observe.Registry.counter r name | None -> ref 0

let create ?registry ?trace ~cpu ~costs () =
  {
    cpu;
    costs;
    reg = registry;
    trace = (match trace with Some tr -> tr | None -> Observe.Trace.create ());
    raises = Sim.Stats.Counter.create ();
    guard_evals = Sim.Stats.Counter.create ();
    index_lookups = Sim.Stats.Counter.create ();
    invocations = Sim.Stats.Counter.create ();
    terminations = Sim.Stats.Counter.create ();
    faults = Sim.Stats.Counter.create ();
    eph_commits = mkref registry "spin.eph.commits";
    eph_actions = mkref registry "spin.eph.committed_actions";
    eph_terminated = mkref registry "spin.eph.terminated";
    eph_failures = mkref registry "spin.eph.failures";
    quarantines = mkref registry "spin.quarantines";
    swaps = mkref registry "spin.swaps";
    pc_hits = mkref registry "spin.path_cache.hits";
    pc_misses = mkref registry "spin.path_cache.misses";
    pc_invalidations = mkref registry "spin.path_cache.invalidations";
    pc_evictions = mkref registry "spin.path_cache.evictions";
    fcache = false;
    tmode = true;
    flow = No_flow;
    prio_override = None;
    next_uid = 0;
    introspectors = [];
    tree_viewers = [];
    flight = None;
    staging = None;
    retiring = None;
    swap_pending = 0;
  }

let cpu t = t.cpu
let costs t = t.costs
let registry t = t.reg
let trace t = t.trace
let raises t = Sim.Stats.Counter.get t.raises
let guard_evals t = Sim.Stats.Counter.get t.guard_evals
let index_lookups t = Sim.Stats.Counter.get t.index_lookups
let invocations t = Sim.Stats.Counter.get t.invocations
let terminations t = Sim.Stats.Counter.get t.terminations
let faults t = Sim.Stats.Counter.get t.faults
let eph_failures t = !(t.eph_failures)
let quarantines t = !(t.quarantines)
let swaps t = !(t.swaps)
let swap_inflight t = t.swap_pending
let path_cache_hits t = !(t.pc_hits)
let path_cache_misses t = !(t.pc_misses)
let path_cache_invalidations t = !(t.pc_invalidations)
let path_cache_evictions t = !(t.pc_evictions)
let set_flow_cache t on = t.fcache <- on
let flow_cache_enabled t = t.fcache
let set_tree_dispatch t on = t.tmode <- on
let tree_dispatch_enabled t = t.tmode
let set_flight t fl = t.flight <- fl
let flight t = t.flight

let now_ns t = Sim.Stime.to_ns (Sim.Engine.now (Sim.Cpu.engine t.cpu))

type 'a kind =
  | Plain of {
      cost : Sim.Stime.t;
      dyncost : ('a -> Sim.Stime.t) option;
          (* data-touching work that scales with the payload *)
      fn : 'a -> unit;
    }
  | Eph of { budget : Sim.Stime.t option; fn : 'a -> Ephemeral.t }

(* Per-handler accounting.  The hit/miss/run refs live in the
   dispatcher's registry when one is attached (so snapshots see them);
   the latency histogram only exists under a registry — recording into
   it is the one per-run cost a detached dispatcher does not pay. *)
type hstats = {
  h_hits : int ref;
  h_misses : int ref;
  h_runs : int ref;
  h_lat : Observe.Histogram.t option;
  (* Per-extension resource ledger (ROADMAP 3(a)'s quarantine signal):
     cumulative modelled CPU, mbufs allocated during runs, and ephemeral
     budget overruns.  Bare int-ref adds on the run path, shared with
     the registry when one is attached. *)
  h_cpu : int ref;
  h_allocs : int ref;
  h_terms : int ref;
  h_fails : int ref;  (* ephemeral handler crashes (not budget overruns) *)
  h_quars : int ref;  (* times this handler was quarantine-evicted *)
}

(* Handler lifecycle (the hot-swap protocol's per-handler state):

     Staged --activate--> Active --uninstall--> gone   (live <- false)
                             |
                             '--retire (uninstall under an open retire
                                scope, queued deliveries pending)-->
                          Retired --last queued delivery drains-->
                                   gone (live <- false)

   [Staged] handlers exist only in the staging scope's thunk list — the
   event table never sees them, so dispatch gates need no filtering.
   [Retired] handlers have left the table (no new delivery can reach
   them) but keep [live = true] until every delivery queued before the
   flip has run: that is the zero-drop guarantee. *)
type hstate = Staged | Active | Retired

type 'a handler = {
  hid : int;
  label : string;
  hgen : int;           (* reinstall generation of this label *)
  guard : 'a -> bool;
  gcost : Sim.Stime.t;  (* extra per-evaluation cost (interpreted filters) *)
  hkey : int option;    (* dispatch key this handler is indexed under *)
  hkeys : int list;     (* every key the guard pins (sorted, distinct) *)
  hexact : bool;        (* guard ≡ its keys: a proven path skips it *)
  cacheable : bool;     (* guard is a pure function of the flow signature *)
  hbudget : Verifier.budget option; (* certified static resource bound *)
  kind : 'a kind;
  hs : hstats;
  mutable state : hstate;
  mutable pending : int; (* delivery work items queued but not yet run *)
  mutable live : bool;  (* flipped off by uninstall: delivery work items
                           queued before the uninstall check this instead
                           of re-hashing into the event table *)
  (* Quarantine window snapshot: the ledger's values when the current
     enforcement window opened; the handler is evicted when the delta
     exceeds the event's [Verifier.quarantine] limits. *)
  mutable qw_start : int;
  mutable qw_cpu : int;
  mutable qw_allocs : int;
  mutable qw_terms : int;
}

(* --- merged dispatch tree ----------------------------------------------
   DPF-style cross-filter compilation: all of an event's keyed handlers
   merged into one decision tree over the key dimensions (EtherType, IP
   protocol, ports — [Filter.key_tag] order; generic events use
   [key lsr 16]).  Each switch tests one dimension's payload value
   against an open-addressed jump table; each leaf holds the exact
   handler set for that path.  One walk per raise replaces the
   per-bucket guard re-evaluation: handlers whose guard is *exactly*
   its keys ([hexact]) are proven matches at their leaves and their
   closures are never called; inexact keyed handlers appear at their
   leaves as residuals (closure still consulted); unkeyed handlers are
   residuals at every leaf.  Wildcard handlers are cross-producted into
   every value child, so a walk never needs backtracking.  Subtrees are
   hash-consed on (remaining dimensions, handler set), which is the
   prefix sharing: paths that agree on the handlers they can still
   match share one subtree.

   Soundness: a keyed handler's install contract says its guard rejects
   any payload not presenting all its keys, so pruning it off
   non-matching paths only skips guards that would have said no; an
   [hexact] handler's contract additionally says the guard *accepts*
   any payload presenting them, so the proven path may skip the yes.
   The walk reads at most one value per dimension, which is exactly
   what the vectored extractor ([set_keyvfn]) presents. *)

type 'a tleaf = {
  tl_exact : 'a handler array;  (* proven matches, hid order *)
  tl_resid : 'a handler array;  (* residual guards to evaluate, hid order *)
}

type 'a tnode =
  | Tleaf of 'a tleaf
  | Tswitch of {
      ts_dim : int;              (* key dimension this switch tests *)
      ts_keys : int array;       (* open-addressed values, -1 = empty *)
      ts_kids : 'a tnode array;  (* child for ts_keys.(i) *)
      ts_mask : int;             (* Array.length ts_keys - 1 (power of 2) *)
      ts_default : 'a tnode;     (* value not in the table / dim absent *)
    }

type 'a tree = {
  tr_root : 'a tnode;
  tr_nodes : int;   (* switches + distinct leaves *)
  tr_depth : int;   (* longest switch chain *)
  tr_ndims : int;   (* scratch slots a walk reads: max key dim + 1 *)
  mutable tr_visited : int;
      (* switches the last walk traversed — an out-parameter of
         [tree_walk] so the hot path returns the leaf unboxed
         (dispatchers are single-domain, so this cannot race) *)
}

type 'a event = {
  disp : t;
  ename : string;
  uid : int;                                  (* hop identity across events *)
  gen : int ref;                              (* bumped on any churn *)
  mutable mode : delivery;
  table : (int, 'a handler) Hashtbl.t;       (* hid -> handler; the registry *)
  mutable linear : int list;                  (* unkeyed hids, newest first *)
  buckets : (int, int list ref) Hashtbl.t;    (* key -> hids, newest first *)
  mutable keyfn : ('a -> int list) option;    (* payload's demux keys *)
  mutable keyvfn : ('a -> int array -> unit) option;
      (* vectored key extractor: fills scratch slot [d] with dimension
         [d]'s value or -1 — the allocation-free fast path *)
  mutable kv_dims : int;                      (* dims the keyvfn fills *)
  mutable scratch : int array;                (* per-event key-value probe *)
  mutable sigfn : ('a -> string option) option; (* flow signature, roots only *)
  mutable markfn : ('a -> int) option;        (* payload's flight-record mark *)
  entries : hop array Sharded.Cache.t;        (* flow signature -> chain *)
  mutable nkeyed : int;                       (* live handlers with a key *)
  mutable next_hid : int;
  label_gens : (string, int) Hashtbl.t;
      (* reinstall count per handler label: same-labeled reinstalls get
         fresh ledger counters instead of merging into the old ones *)
  mutable policy : Verifier.policy option;    (* install-time admission *)
  mutable quarantine : Verifier.quarantine option; (* runtime eviction *)
  mutable tree : 'a tree option;              (* compiled merged tree *)
  mutable tree_gen : int;      (* generation [tree] was compiled at; -1 =
                                  never (also records a refused build, so
                                  a raise retries only after churn) *)
  mutable tree_on : bool;                     (* per-event opt-out *)
  ev_raises : int ref;
  ev_indexed : int ref;   (* raises served through the demux index *)
  ev_linear : int ref;    (* raises that scanned every live guard *)
  ev_cached : int ref;    (* root raises served from the flow-path cache *)
  ev_tree : int ref;      (* raises served by a merged-tree walk *)
  tr_rebuilds : int ref;
  tr_resid_evals : int ref;
}

let info_of_event ev =
  let handlers =
    Hashtbl.fold (fun _ h acc -> h :: acc) ev.table []
    |> List.sort (fun a b -> compare a.hid b.hid)
    |> List.map (fun h ->
           {
             hi_id = h.hid;
             hi_label = h.label;
             hi_gen = h.hgen;
             hi_key = h.hkey;
             hi_ephemeral = (match h.kind with Eph _ -> true | Plain _ -> false);
             hi_budget = h.hbudget;
             hi_guard_hits = !(h.hs.h_hits);
             hi_guard_misses = !(h.hs.h_misses);
             hi_runs = !(h.hs.h_runs);
             hi_cpu_ns = !(h.hs.h_cpu);
             hi_allocs = !(h.hs.h_allocs);
             hi_terminations = !(h.hs.h_terms);
             hi_failures = !(h.hs.h_fails);
             hi_quarantines = !(h.hs.h_quars);
             hi_lat =
               (match h.hs.h_lat with
               | Some hist -> Some (Observe.Histogram.snapshot hist)
               | None -> None);
           })
  in
  {
    ei_name = ev.ename;
    ei_mode = ev.mode;
    ei_indexed = (match (ev.keyfn, ev.keyvfn) with
                 | None, None -> false
                 | _ -> true);
    ei_generation = !(ev.gen);
    ei_cache_entries = Sharded.Cache.length ev.entries;
    ei_tree =
      (match ev.tree with
      | Some tr ->
          Some
            {
              ti_nodes = tr.tr_nodes;
              ti_depth = tr.tr_depth;
              ti_rebuilds = !(ev.tr_rebuilds);
              ti_raises = !(ev.ev_tree);
              ti_residual_evals = !(ev.tr_resid_evals);
            }
      | None -> None);
    ei_handlers = handlers;
  }

let dump t = List.rev_map (fun f -> f ()) t.introspectors

let name ev = ev.ename
let mode ev = ev.mode

(* Anything that can change what a raise would deliver — or what a guard
   along a cached path would answer — bumps the event's generation,
   invalidating every cached chain that runs through it. *)
let touch ev = incr ev.gen

let set_mode ev m =
  ev.mode <- m;
  touch ev

let set_keyfn ev kf =
  ev.keyfn <- Some kf;
  touch ev

let set_keyvfn ev ~dims kvf =
  if dims < 1 then invalid_arg "Dispatcher.set_keyvfn: dims must be >= 1";
  ev.keyvfn <- Some kvf;
  ev.kv_dims <- dims;
  if Array.length ev.scratch < dims then ev.scratch <- Array.make dims (-1);
  touch ev

let set_event_tree ev on =
  ev.tree_on <- on;
  touch ev

let set_sigfn ev sf = ev.sigfn <- Some sf

(* Like [set_sigfn], purely observational: extracting the flight mark
   cannot change what a raise delivers, so no generation bump. *)
let set_markfn ev mf = ev.markfn <- Some mf
let generation ev = !(ev.gen)
let cache_entries ev = Sharded.Cache.length ev.entries
let handler_count ev = Hashtbl.length ev.table
let indexed_count ev = ev.nkeyed
let linear_count ev = Hashtbl.length ev.table - ev.nkeyed

(* State-aware uninstall.  An [Active] handler leaves the event table
   immediately — no new raise can select it — but what happens to its
   already-queued deliveries depends on the dispatcher's retire scope:
   outside one (plain uninstall), [live] flips off and queued work items
   skip the body, exactly the old semantics; inside one (a hot-swap
   flip), the handler moves to [Retired] with [live] still true so every
   delivery queued before the flip drains on the old generation. *)
let uninstall_h ev h =
  match h.state with
  | Staged ->
      (* cancelled before activation: the commit thunk checks [live] *)
      h.live <- false
  | Retired ->
      (* explicit uninstall/fault of a draining handler kills the
         remaining queued runs; drain bookkeeping still completes *)
      h.live <- false
  | Active -> (
      Hashtbl.remove ev.table h.hid;
      touch ev;
      (match h.hkey with
      | Some _ -> ev.nkeyed <- ev.nkeyed - 1
      | None -> ());
      match ev.disp.retiring with
      | Some acc when h.pending > 0 ->
          h.state <- Retired;
          acc.ra_retired <- acc.ra_retired + 1;
          acc.ra_inflight <- acc.ra_inflight + h.pending;
          ev.disp.swap_pending <- ev.disp.swap_pending + h.pending
      | Some acc ->
          acc.ra_retired <- acc.ra_retired + 1;
          h.live <- false
      | None -> h.live <- false)

let hstats_for disp ev label gen =
  (* Keyed by (label, reinstall generation): generation 0 keeps the
     plain name, later generations append "#N" — so a hot-swapped
     replacement starts a fresh ledger instead of inheriting the
     retired generation's totals. *)
  let qual = if gen = 0 then label else label ^ "#" ^ string_of_int gen in
  let prefix = "spin." ^ ev.ename ^ "." ^ qual in
  {
    h_hits = mkref disp.reg (prefix ^ ".guard_hits");
    h_misses = mkref disp.reg (prefix ^ ".guard_misses");
    h_runs = mkref disp.reg (prefix ^ ".runs");
    h_lat =
      (match disp.reg with
      | Some r -> Some (Observe.Registry.histogram r (prefix ^ ".run_ns"))
      | None -> None);
    h_cpu = mkref disp.reg (prefix ^ ".cpu_ns");
    h_allocs = mkref disp.reg (prefix ^ ".mbuf_allocs");
    h_terms = mkref disp.reg (prefix ^ ".terminations");
    h_fails = mkref disp.reg (prefix ^ ".failures");
    h_quars = mkref disp.reg (prefix ^ ".quarantines");
  }

exception
  Install_rejected of {
    event : string;
    label : string;
    violation : Verifier.violation;
  }

let add_handler ev ?label ?ops ~cacheable ~exact guard gcost key keys kind =
  let hid = ev.next_hid in
  ev.next_hid <- hid + 1;
  let label =
    match label with Some l -> l | None -> "h" ^ string_of_int hid
  in
  let hbudget = Option.map Verifier.infer ops in
  (* Load-time admission: the declared budget (or its absence) must
     satisfy the event's policy before any of the handler's code can
     run.  Raised synchronously out of [install], so a rejected
     extension's linkage fails cleanly. *)
  (match ev.policy with
  | None -> ()
  | Some p -> (
      match Verifier.admit p hbudget with
      | Ok () -> ()
      | Error violation ->
          Stdlib.raise (Install_rejected { event = ev.ename; label; violation })));
  let hgen =
    let g =
      match Hashtbl.find_opt ev.label_gens label with
      | None -> 0
      | Some g -> g + 1
    in
    Hashtbl.replace ev.label_gens label g;
    g
  in
  let hs = hstats_for ev.disp ev label hgen in
  (* Ephemeral handlers are never replayed: their budget accounting and
     transactional termination are per-invocation dispatcher work. *)
  let cacheable =
    match kind with Eph _ -> false | Plain _ -> cacheable
  in
  let hkeys =
    List.sort_uniq compare
      (match (key, keys) with
      | None, None -> []
      | Some k, None -> [ k ]
      | None, Some ks -> ks
      | Some k, Some ks -> k :: ks)
  in
  (* exactness is a claim about the keys; with none there is nothing a
     tree walk could have proven *)
  let hexact = exact && hkeys <> [] in
  let h =
    {
      hid;
      label;
      hgen;
      guard;
      gcost;
      hkey = (match hkeys with [] -> None | k :: _ -> Some k);
      hkeys;
      hexact;
      cacheable;
      hbudget;
      kind;
      hs;
      state = Staged;
      pending = 0;
      live = true;
      qw_start = 0;
      qw_cpu = 0;
      qw_allocs = 0;
      qw_terms = 0;
    }
  in
  let activate () =
    if h.live && h.state = Staged then begin
      h.state <- Active;
      (* the first quarantine enforcement window opens at activation *)
      h.qw_start <- now_ns ev.disp;
      h.qw_cpu <- !(h.hs.h_cpu);
      h.qw_allocs <- !(h.hs.h_allocs);
      h.qw_terms <- !(h.hs.h_terms);
      Hashtbl.replace ev.table hid h;
      touch ev;
      match hkeys with
      | [] -> ev.linear <- hid :: ev.linear
      | k :: _ ->
          (* bucketed under the first key only: the install contract says
             the guard rejects payloads not presenting *all* its keys, so
             any one of them is a sound index *)
          ev.nkeyed <- ev.nkeyed + 1;
          (match Hashtbl.find_opt ev.buckets k with
          | Some b -> b := hid :: !b
          | None -> Hashtbl.replace ev.buckets k (ref [ hid ]))
    end
  in
  (match ev.disp.staging with
  | None -> activate ()
  | Some scope -> scope := (activate, fun () -> h.live <- false) :: !scope);
  fun () -> uninstall_h ev h

let no_guard _ = true

let install ev ?(guard = no_guard) ?key ?keys ?(exact = false)
    ?(gcost = Sim.Stime.zero) ?dyncost ?(cacheable = false) ?label ?ops ~cost
    fn =
  add_handler ev ?label ?ops ~cacheable ~exact guard gcost key keys
    (Plain { cost; dyncost; fn })

let install_ephemeral ev ?(guard = no_guard) ?key ?keys ?(exact = false)
    ?(gcost = Sim.Stime.zero) ?label ?ops ?budget fn =
  (* A certified op list supplies the default runtime budget: the
     static bound becomes the enforcement ceiling unless the installer
     asks for a tighter one. *)
  let budget =
    match (budget, ops) with
    | (Some _ as b), _ -> b
    | None, Some ops -> Some (Verifier.cost (Verifier.infer ops))
    | None, None -> None
  in
  add_handler ev ?label ?ops ~cacheable:false ~exact guard gcost key keys
    (Eph { budget; fn })

(* --- lifecycle scopes (hot-swap protocol) ------------------------------
   [Linker.replace] drives these: stage the new generation, link it
   (installs land as thunks), commit (all new handlers become visible in
   one step, before any raise can observe a half-linked extension), open
   a retire scope, unlink the old generation (its in-flight deliveries
   drain), close the scope.  Scopes are dispatcher-wide and must not
   nest. *)

let begin_staging d =
  if d.staging <> None then
    invalid_arg "Dispatcher.begin_staging: staging scope already open";
  d.staging <- Some (ref [])

let commit_staging d =
  match d.staging with
  | None -> invalid_arg "Dispatcher.commit_staging: no staging scope open"
  | Some scope ->
      d.staging <- None;
      let entries = List.rev !scope in
      List.iter (fun (activate, _) -> activate ()) entries;
      List.length entries

let abort_staging d =
  match d.staging with
  | None -> ()
  | Some scope ->
      d.staging <- None;
      List.iter (fun (_, cancel) -> cancel ()) (List.rev !scope)

let begin_retiring d =
  if d.retiring <> None then
    invalid_arg "Dispatcher.begin_retiring: retire scope already open";
  d.retiring <- Some { ra_retired = 0; ra_inflight = 0 }

let end_retiring d =
  match d.retiring with
  | None -> invalid_arg "Dispatcher.end_retiring: no retire scope open"
  | Some acc ->
      d.retiring <- None;
      incr d.swaps;
      (acc.ra_retired, acc.ra_inflight)

let set_policy ev p = ev.policy <- p
let set_quarantine ev q = ev.quarantine <- q

(* Live handlers behind a hid list, pruning uninstalled ids in place. *)
let prune ev ids =
  if List.for_all (fun hid -> Hashtbl.mem ev.table hid) ids then (ids, false)
  else (List.filter (fun hid -> Hashtbl.mem ev.table hid) ids, true)

let bucket_hids ev k =
  match Hashtbl.find_opt ev.buckets k with
  | None -> []
  | Some b ->
      let live, stale = prune ev !b in
      if stale then
        if live = [] then Hashtbl.remove ev.buckets k else b := live;
      live

(* --- key-value extraction ---------------------------------------------
   Decomposition of an encoded key into (dimension, value).  For
   [Filter] keys this is [key_tag]/value; for generic raw int keys the
   decomposition is the identity seen from both sides (handler keys and
   extractor output decompose the same way), so the tree's dimension
   model is sound for them too. *)
let key_dim k = k lsr 16
let key_val k = k land 0xffff

(* Fill the event's scratch array with the payload's per-dimension
   values (-1 = absent) and return it.  The vectored extractor writes in
   place; a legacy list extractor is decoded into the slots (that path
   still allocates the list — the alloc-free contract needs
   [set_keyvfn]). *)
let fill_keyvals ev v ndims =
  let need = max 1 (max ndims ev.kv_dims) in
  if Array.length ev.scratch < need then ev.scratch <- Array.make need (-1);
  let s = ev.scratch in
  (match ev.keyvfn with
  (* a vectored extractor writes every dimension (-1 for absent) by
     contract, so the scratch needs no wipe first *)
  | Some kvf -> kvf v s
  | None -> (
      Array.fill s 0 (Array.length s) (-1);
      match ev.keyfn with
      | Some kf ->
          List.iter
            (fun k ->
              let d = key_dim k in
              if d >= 0 && d < Array.length s then s.(d) <- key_val k)
            (kf v)
      | None -> ()));
  s

(* The handlers whose guards this raise must evaluate, in install order.
   Without a key extractor every live handler is a candidate; with one,
   only the matching buckets plus the linear fallback bucket are.  An
   event with at most one installed handler skips the index entirely:
   scanning the single guard is cheaper than hashing into its bucket. *)
let candidates ev v =
  let all () = Hashtbl.fold (fun hid _ acc -> hid :: acc) ev.table [] in
  let hids =
    if Hashtbl.length ev.table <= 1 then all ()
    else
      match (ev.keyfn, ev.keyvfn) with
      | None, None -> all ()
      | keyfn, keyvfn ->
          let keyed =
            if ev.nkeyed = 0 then []
            else
              match keyvfn with
              | Some _ ->
                  let s = fill_keyvals ev v 0 in
                  let acc = ref [] in
                  for d = 0 to ev.kv_dims - 1 do
                    let value = s.(d) in
                    if value >= 0 then
                      acc :=
                        List.rev_append
                          (bucket_hids ev ((d lsl 16) lor value))
                          !acc
                  done;
                  !acc
              | None -> (
                  match keyfn with
                  | Some kf ->
                      List.concat_map (fun k -> bucket_hids ev k) (kf v)
                  | None -> [])
          in
          let live_linear, stale = prune ev ev.linear in
          if stale then ev.linear <- live_linear;
          List.rev_append keyed live_linear
  in
  List.filter_map (fun hid -> Hashtbl.find_opt ev.table hid)
    (List.sort_uniq compare hids)

(* --- merged-tree compilation ------------------------------------------ *)

(* Open-addressed jump-table probe: returns the slot holding [v] or the
   first empty slot.  Power-of-two table, Fibonacci-ish multiplicative
   hash, linear probing; load factor <= 1/2 keeps probes short. *)
let jump_index keys mask v =
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = v || k = -1 then i else probe ((i + 1) land mask)
  in
  probe ((v * 0x9e3779b1) land mask)

(* Dimensions above this bound (or negative keys) fall back to the
   bucket index: the walk's scratch array is sized by the max dimension,
   and a generic event with huge raw keys should not cost a huge probe. *)
let max_tree_dims = 64

let build_tree ev =
  let all =
    Hashtbl.fold (fun _ h acc -> h :: acc) ev.table []
    |> List.sort (fun a b -> compare a.hid b.hid)
  in
  let keyed, unkeyed = List.partition (fun h -> h.hkeys <> []) all in
  let dims =
    List.concat_map (fun h -> List.map key_dim h.hkeys) keyed
    |> List.sort_uniq compare
  in
  let max_dim = List.fold_left max (-1) dims in
  if max_dim >= max_tree_dims || List.exists (fun h -> List.exists (fun k -> k < 0) h.hkeys) keyed
  then None
  else begin
    (* the single value a handler requires on dimension [d], if any *)
    let requires h d =
      List.fold_left
        (fun acc k -> if key_dim k = d then Some (key_val k) else acc)
        None h.hkeys
    in
    (* a handler pinning two different values on one dimension can never
       match any payload (the walk reads one value per dimension) — it
       contributes to no leaf *)
    let satisfiable h =
      List.for_all (fun k -> requires h (key_dim k) = Some (key_val k)) h.hkeys
    in
    let keyed = List.filter satisfiable keyed in
    let nodes = ref 0 in
    (* hash-consing memo: (remaining-dim count, handler hids) -> subtree.
       Dimensions are consumed in one fixed order, so the remaining-dims
       suffix is fully determined by its length. *)
    let memo : (string, 'a tnode) Hashtbl.t = Hashtbl.create 64 in
    let merge_by_hid a b = List.merge (fun x y -> compare x.hid y.hid) a b in
    let mk_leaf hs =
      incr nodes;
      let exact, inexact = List.partition (fun h -> h.hexact) hs in
      Tleaf
        {
          tl_exact = Array.of_list exact;
          tl_resid = Array.of_list (merge_by_hid inexact unkeyed);
        }
    in
    let rec build dims hs =
      let mkey =
        String.concat ","
          (string_of_int (List.length dims)
          :: List.map (fun h -> string_of_int h.hid) hs)
      in
      match Hashtbl.find_opt memo mkey with
      | Some n -> n
      | None ->
          let n =
            match dims with
            | [] -> mk_leaf hs
            | d :: rest -> (
                match List.filter (fun h -> requires h d <> None) hs with
                | [] -> build rest hs (* no handler tests this dimension *)
                | constrained ->
                    let values =
                      List.filter_map (fun h -> requires h d) constrained
                      |> List.sort_uniq compare
                    in
                    (* wildcards on [d] flow into every child (the
                       cross-product that makes the walk single-path) *)
                    let default =
                      build rest
                        (List.filter (fun h -> requires h d = None) hs)
                    in
                    let cases =
                      List.map
                        (fun v ->
                          ( v,
                            build rest
                              (List.filter
                                 (fun h ->
                                   match requires h d with
                                   | None -> true
                                   | Some v' -> v' = v)
                                 hs) ))
                        values
                    in
                    incr nodes;
                    let size =
                      let want = 2 * List.length cases in
                      let rec pow2 p = if p >= want then p else pow2 (p * 2) in
                      pow2 4
                    in
                    let keys = Array.make size (-1) in
                    let kids = Array.make size default in
                    let mask = size - 1 in
                    List.iter
                      (fun (v, node) ->
                        let i = jump_index keys mask v in
                        keys.(i) <- v;
                        kids.(i) <- node)
                      cases;
                    Tswitch
                      {
                        ts_dim = d;
                        ts_keys = keys;
                        ts_kids = kids;
                        ts_mask = mask;
                        ts_default = default;
                      })
          in
          Hashtbl.add memo mkey n;
          n
    in
    let root = build dims keyed in
    let rec depth = function
      | Tleaf _ -> 0
      | Tswitch s ->
          1
          + Array.fold_left
              (fun acc kid -> max acc (depth kid))
              (depth s.ts_default) s.ts_kids
    in
    Some
      {
        tr_root = root;
        tr_nodes = !nodes;
        tr_depth = depth root;
        tr_ndims = max_dim + 1;
        tr_visited = 0;
      }
  end

(* Tree dispatch applies when enabled (dispatcher-wide and per-event),
   the event has a key extractor and at least one keyed handler, and
   more than one handler total (the <=1 case scans one guard with no
   index at all).  The compiled tree is memoized behind the event's
   generation counter — the same counter the flow-path cache
   invalidates on — so any install/uninstall/mode/extractor churn
   recompiles lazily on the next raise. *)
let tree_for ev =
  if
    (not (ev.disp.tmode && ev.tree_on))
    || ev.nkeyed = 0
    || Hashtbl.length ev.table <= 1
    || (match (ev.keyfn, ev.keyvfn) with None, None -> true | _ -> false)
  then None
  else if ev.tree_gen = !(ev.gen) then ev.tree
  else begin
    ev.tree <- build_tree ev;
    ev.tree_gen <- !(ev.gen);
    (match ev.tree with Some _ -> incr ev.tr_rebuilds | None -> ());
    ev.tree
  end

(* One walk: at each switch read the payload's value for that dimension
   from the scratch array and jump.  Returns the leaf and the number of
   switches visited (the [costs.tree_node] multiplier). *)
let tree_walk tr s =
  let rec go n visited =
    match n with
    | Tleaf l ->
        tr.tr_visited <- visited;
        l
    | Tswitch sw ->
        let value =
          if sw.ts_dim < Array.length s then Array.unsafe_get s sw.ts_dim
          else -1
        in
        let next =
          if value < 0 then sw.ts_default
          else
            let i = jump_index sw.ts_keys sw.ts_mask value in
            if Array.unsafe_get sw.ts_keys i = value then
              Array.unsafe_get sw.ts_kids i
            else sw.ts_default
        in
        go next (visited + 1)
  in
  go tr.tr_root 0

let tree_raises ev = !(ev.ev_tree)

(* Force-compile (if stale) and render the event's tree for
   introspection — the CLI's [dispatch --tree] view. *)
let compiled_tree ev =
  match tree_for ev with
  | None -> None
  | Some tr ->
      let label_of h = (h.hid, h.label) in
      let rec view = function
        | Tleaf l ->
            Tree_leaf
              {
                tv_exact = Array.to_list (Array.map label_of l.tl_exact);
                tv_resid = Array.to_list (Array.map label_of l.tl_resid);
              }
        | Tswitch sw ->
            let cases = ref [] in
            Array.iteri
              (fun i k ->
                if k >= 0 then cases := (k, view sw.ts_kids.(i)) :: !cases)
              sw.ts_keys;
            Tree_switch
              {
                tv_dim = sw.ts_dim;
                tv_cases =
                  List.sort (fun (a, _) (b, _) -> compare a b) !cases;
                tv_default = view sw.ts_default;
              }
      in
      Some (view tr.tr_root)

(* Defined below [compiled_tree] so the per-event viewer closure it
   registers can force-compile the tree on demand. *)
let event disp ?(mode = Interrupt) ename =
  let uid = disp.next_uid in
  disp.next_uid <- uid + 1;
  let ev =
    {
      disp;
      ename;
      uid;
      gen = ref 0;
      mode;
      table = Hashtbl.create 8;
      linear = [];
      buckets = Hashtbl.create 8;
      keyfn = None;
      keyvfn = None;
      kv_dims = 0;
      scratch = [||];
      sigfn = None;
      markfn = None;
      entries =
        Sharded.Cache.create ~shards:cache_shards ~per_shard:cache_per_shard
          ~evictions:disp.pc_evictions ();
      nkeyed = 0;
      next_hid = 0;
      label_gens = Hashtbl.create 8;
      policy = None;
      quarantine = None;
      tree = None;
      tree_gen = -1;
      tree_on = true;
      ev_raises = mkref disp.reg ("spin." ^ ename ^ ".raises");
      ev_indexed = mkref disp.reg ("spin." ^ ename ^ ".indexed_raises");
      ev_linear = mkref disp.reg ("spin." ^ ename ^ ".linear_raises");
      ev_cached = mkref disp.reg ("spin." ^ ename ^ ".cached_raises");
      ev_tree = mkref disp.reg ("spin." ^ ename ^ ".tree.raises");
      tr_rebuilds = mkref disp.reg ("spin." ^ ename ^ ".tree.rebuilds");
      tr_resid_evals =
        mkref disp.reg ("spin." ^ ename ^ ".tree.residual_evals");
    }
  in
  disp.introspectors <- (fun () -> info_of_event ev) :: disp.introspectors;
  disp.tree_viewers <-
    (fun () -> (ev.ename, compiled_tree ev)) :: disp.tree_viewers;
  (match disp.reg with
  | Some r ->
      Observe.Registry.gauge r
        ("spin." ^ ename ^ ".cache_occupancy")
        (fun () -> Sharded.Cache.length ev.entries);
      Observe.Registry.gauge r
        ("spin." ^ ename ^ ".tree.depth")
        (fun () -> match ev.tree with Some tr -> tr.tr_depth | None -> 0);
      Observe.Registry.gauge r
        ("spin." ^ ename ^ ".tree.nodes")
        (fun () -> match ev.tree with Some tr -> tr.tr_nodes | None -> 0)
  | None -> ());
  ev

let tree_views t = List.rev_map (fun f -> f ()) t.tree_viewers

(* Fault containment: extension code that raises must not take the
   kernel down.  The typesafe language already rules out wild memory
   access; runtime exceptions are caught here, counted, and the faulting
   handler is uninstalled — the extension model's equivalent of killing
   the offending extension rather than the system. *)
let fault ev h =
  Sim.Stats.Counter.incr ev.disp.faults;
  uninstall_h ev h

(* Asynchronous exceptions signal resource exhaustion of the *kernel*,
   not a misbehaving extension — containing them would let the system
   limp on with its runtime in an unknown state.  They propagate;
   everything else is an extension fault. *)
let contain ev h f =
  try f () with
  | (Stack_overflow | Out_of_memory) as e -> Stdlib.raise e
  | _exn -> fault ev h

let still_installed _ev h = h.live

let emit_span d event =
  Observe.Trace.emit d.trace { Observe.Trace.at_ns = now_ns d; event }

(* Runtime budget enforcement (the quarantine half of the verifier):
   called after a run's ledger update.  The window is tumbling — the
   snapshot resets once [q_window_ns] has elapsed — so an extension is
   evicted iff its measured usage inside one enforcement window exceeds
   the limits.  Eviction is atomic with respect to dispatch: the
   handler leaves the table and the generation bump invalidates every
   cached chain through it; deliveries already queued to it still run
   (they were admitted before the eviction). *)
let quarantine_check ev h =
  match ev.quarantine with
  | None -> ()
  | Some q ->
      let d = ev.disp in
      (* An expired window resets BEFORE the limit check: the deltas
         below must have accrued within one window's span to be
         comparable to the per-window limits.  Anything the handler did
         while no window was current (the policy was attached after it
         activated, or it idled across a boundary) is forgiven — a
         handler that blows the limit inside a live window is still
         caught at the very run that crosses it, because this check
         follows every run. *)
      let now = now_ns d in
      if now - h.qw_start >= q.Verifier.q_window_ns then begin
        h.qw_start <- now;
        h.qw_cpu <- !(h.hs.h_cpu);
        h.qw_allocs <- !(h.hs.h_allocs);
        h.qw_terms <- !(h.hs.h_terms)
      end;
      let over =
        !(h.hs.h_cpu) - h.qw_cpu > q.Verifier.q_max_cpu_ns
        || !(h.hs.h_allocs) - h.qw_allocs > q.Verifier.q_max_allocs
        || !(h.hs.h_terms) - h.qw_terms > q.Verifier.q_max_terminations
      in
      if over then begin
        incr h.hs.h_quars;
        incr d.quarantines;
        if Observe.Trace.active d.trace then
          emit_span d
            (Observe.Trace.Drop
               {
                 scope = "spin." ^ ev.ename ^ "." ^ h.label;
                 reason = "quarantine";
               });
        uninstall_h ev h
      end

(* Flight-recorder stage emission.  The mark ([ev.markfn]) reads the
   packet id stamped on the mbuf at ingress; 0 means not sampled, so an
   unsampled packet pays one closure call and compare per site and a
   detached/disabled recorder pays one load and branch. *)
let flight_note_raise d ev v =
  match d.flight with
  | Some fl when Observe.Flight.enabled fl -> (
      match ev.markfn with
      | Some mf ->
          let pkt = mf v in
          if pkt > 0 then begin
            let at_ns = now_ns d in
            Observe.Flight.note fl ~pkt ~at_ns
              ~dur_ns:(Observe.Flight.since_ingress fl ~pkt ~at_ns)
              (Observe.Flight.Raise { event = ev.ename })
          end
      | None -> ())
  | _ -> ()

let flight_note_run d ev v h ~dur_ns =
  match d.flight with
  | Some fl when Observe.Flight.enabled fl -> (
      match ev.markfn with
      | Some mf ->
          let pkt = mf v in
          if pkt > 0 then
            Observe.Flight.note fl ~pkt ~at_ns:(now_ns d) ~dur_ns
              (Observe.Flight.Handler { event = ev.ename; label = h.label })
      | None -> ())
  | _ -> ()

(* --- recording bookkeeping --------------------------------------------
   A recording commits only once the delivery has fully drained: every
   scheduled continuation (demux and handler runs, including nested
   raises) holds a [rec_pending] reference, and the last one out
   finalizes.  Finalization re-validates every hop's generation — an
   install/uninstall that landed *during* the delivery discards the
   recording instead of committing a chain the churn already
   invalidated. *)

let rec_finish d r =
  if r.rec_ok then begin
    let hops = List.rev r.rec_hops in
    if List.for_all hop_valid hops then r.rec_commit (Array.of_list hops)
    else begin
      incr d.pc_invalidations;
      if Observe.Trace.active d.trace then
        emit_span d
          (Observe.Trace.Cache_invalidate
             { event = r.rec_ename; reason = "churn-during-recording" })
    end
  end

let flow_enter = function
  | Recording r -> r.rec_pending <- r.rec_pending + 1
  | No_flow | Replaying _ -> ()

let flow_leave d = function
  | Recording r ->
      r.rec_pending <- r.rec_pending - 1;
      if r.rec_pending = 0 then rec_finish d r
  | No_flow | Replaying _ -> ()

(* The priority a raise runs at: the event's delivery mode unless an
   override is in force (the demoted polled path). *)
let prio_of ev over =
  match over with
  | Some p -> p
  | None -> (
      match ev.mode with
      | Interrupt -> Sim.Cpu.Interrupt
      | Thread -> Sim.Cpu.Thread)

let deliver ev v h flow over =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.invocations;
  let prio = prio_of ev over in
  let spawn =
    match ev.mode with
    | Interrupt -> Sim.Stime.zero
    | Thread -> d.costs.thread_spawn
  in
  (* Drain bookkeeping shared by both kinds: every queued invocation
     holds a [pending] reference; the last one out of a [Retired]
     handler finalizes it (live <- false), which is the swap protocol's
     "old generation fully drained" edge. *)
  let enter () = h.pending <- h.pending + 1 in
  let leave () =
    h.pending <- h.pending - 1;
    if h.state = Retired then begin
      d.swap_pending <- d.swap_pending - 1;
      if h.pending = 0 then h.live <- false
    end
  in
  match h.kind with
  | Plain { cost; dyncost; fn } ->
      let cost =
        match dyncost with
        | None -> cost
        | Some f -> Sim.Stime.add cost (f v)
      in
      let total = Sim.Stime.add spawn cost in
      flow_enter flow;
      enter ();
      Sim.Cpu.run d.cpu ~prio ~cost:total (fun () ->
          (* skip if uninstalled while this invocation was queued *)
          (if still_installed ev h then begin
             d.flow <- flow;
             d.prio_override <- over;
             let a0 = Packet.Mbuf.total_allocated () in
             contain ev h (fun () -> fn v);
             d.prio_override <- None;
             d.flow <- No_flow;
             incr h.hs.h_runs;
             let run_ns = Sim.Stime.to_ns total in
             h.hs.h_cpu := !(h.hs.h_cpu) + run_ns;
             h.hs.h_allocs :=
               !(h.hs.h_allocs) + (Packet.Mbuf.total_allocated () - a0);
             (match h.hs.h_lat with
             | Some hist -> Observe.Histogram.record hist run_ns
             | None -> ());
             flight_note_run d ev v h ~dur_ns:run_ns;
             if Observe.Trace.active d.trace then
               emit_span d
                 (Observe.Trace.Handler_run
                    {
                      event = ev.ename;
                      hid = h.hid;
                      label = h.label;
                      duration_ns = run_ns;
                    });
             quarantine_check ev h
           end);
          leave ();
          flow_leave d flow)
  | Eph { budget; fn } -> (
      (* The handler body runs at plan time.  Only its own crashes are
         contained (and counted distinctly from budget overruns);
         asynchronous exceptions — Stack_overflow, Out_of_memory — are
         kernel-level resource exhaustion and must propagate. *)
      match
        try Ok (Ephemeral.plan ?budget (fn v)) with
        | (Stack_overflow | Out_of_memory) as e -> Stdlib.raise e
        | e -> Error e
      with
      | Error _exn ->
          incr d.eph_failures;
          incr h.hs.h_fails;
          fault ev h
      | Ok plan ->
          let r = Ephemeral.planned plan in
          flow_enter flow;
          enter ();
          Sim.Cpu.run d.cpu ~prio
            ~cost:(Sim.Stime.add spawn r.Ephemeral.consumed)
            (fun () ->
              (if still_installed ev h then begin
                 d.prio_override <- over;
                 let a0 = Packet.Mbuf.total_allocated () in
                 contain ev h (fun () ->
                     let r = Ephemeral.commit plan in
                     incr h.hs.h_runs;
                     incr d.eph_commits;
                     d.eph_actions := !(d.eph_actions) + r.Ephemeral.committed;
                     let run_ns = Sim.Stime.to_ns r.Ephemeral.consumed in
                     h.hs.h_cpu := !(h.hs.h_cpu) + run_ns;
                     h.hs.h_allocs :=
                       !(h.hs.h_allocs)
                       + (Packet.Mbuf.total_allocated () - a0);
                     (match h.hs.h_lat with
                     | Some hist -> Observe.Histogram.record hist run_ns
                     | None -> ());
                     flight_note_run d ev v h ~dur_ns:run_ns;
                     if r.Ephemeral.terminated then begin
                       Sim.Stats.Counter.incr d.terminations;
                       incr d.eph_terminated;
                       incr h.hs.h_terms
                     end;
                     if Observe.Trace.active d.trace then
                       emit_span d
                         (if r.Ephemeral.terminated then
                            Observe.Trace.Terminated
                              {
                                event = ev.ename;
                                hid = h.hid;
                                label = h.label;
                                committed = r.Ephemeral.committed;
                                total = r.Ephemeral.total;
                                duration_ns =
                                  Sim.Stime.to_ns r.Ephemeral.consumed;
                              }
                          else
                            Observe.Trace.Ephemeral_commit
                              {
                                event = ev.ename;
                                hid = h.hid;
                                label = h.label;
                                committed = r.Ephemeral.committed;
                                total = r.Ephemeral.total;
                                duration_ns =
                                  Sim.Stime.to_ns r.Ephemeral.consumed;
                              }));
                 d.prio_override <- None;
                 quarantine_check ev h
               end);
              leave ();
              flow_leave d flow))

(* Graph dispatch of one raise through the bucket index (or a plain
   scan), optionally recording the hop.  [raises]/[ev_raises] are the
   caller's job (so batch entry points can amortize them). *)
let raise_scan ?over ev v flow =
  let d = ev.disp in
  let cands = candidates ev v in
  let n_guards = List.length cands in
  Sim.Stats.Counter.add d.guard_evals n_guards;
  (* Event-level classification: an event with a key extractor and any
     keyed handler counts as an indexed raise.  The hash lookup itself
     (and its [costs.index] charge) is skipped when <=1 handler is
     installed — scanning the one guard is strictly cheaper. *)
  let indexed =
    (match (ev.keyfn, ev.keyvfn) with None, None -> false | _ -> true)
    && ev.nkeyed > 0
  in
  let use_index = indexed && Hashtbl.length ev.table > 1 in
  if indexed then incr ev.ev_indexed else incr ev.ev_linear;
  if use_index then Sim.Stats.Counter.incr d.index_lookups;
  if Observe.Trace.active d.trace then begin
    emit_span d
      (Observe.Trace.Raise
         { event = ev.ename; candidates = n_guards; indexed });
    if use_index then
      let nkeys =
        match ev.keyfn with
        | Some kf -> List.length (kf v)
        | None ->
            let s = fill_keyvals ev v 0 in
            let n = ref 0 in
            for d = 0 to ev.kv_dims - 1 do
              if s.(d) >= 0 then incr n
            done;
            !n
      in
      emit_span d
        (Observe.Trace.Index_lookup
           { event = ev.ename; keys = nkeys; candidates = n_guards })
  end;
  flight_note_raise d ev v;
  let extra_gcost =
    List.fold_left (fun acc h -> Sim.Stime.add acc h.gcost) Sim.Stime.zero cands
  in
  let demux_cost =
    Sim.Stime.add extra_gcost
      (Sim.Stime.add d.costs.dispatch
         (Sim.Stime.add
            (if use_index then d.costs.index else Sim.Stime.zero)
            (Sim.Stime.mul d.costs.guard n_guards)))
  in
  let prio = prio_of ev over in
  flow_enter flow;
  Sim.Cpu.run d.cpu ~prio ~cost:demux_cost (fun () ->
      (* Demultiplex against the *current* registry: a handler uninstalled
         while this raise was queued no longer fires. *)
      let cands = candidates ev v in
      (* A hop is recordable only when *every* candidate — accepting or
         rejecting — opted into cacheability, because replay skips all
         of their guards; one interrupt-mode exception or one
         flow-dependent guard poisons the whole chain. *)
      (match flow with
      | Recording r ->
          if
            ev.mode <> Interrupt || over <> None
            || not (List.for_all (fun h -> h.cacheable) cands)
          then r.rec_ok <- false
      | No_flow | Replaying _ -> ());
      let accepted_rev = ref [] in
      List.iter
        (fun h ->
          (* a faulting guard is contained the same way *)
          let accepted =
            try h.guard v with
            | (Stack_overflow | Out_of_memory) as e -> Stdlib.raise e
            | _ -> fault ev h; false
          in
          if accepted then incr h.hs.h_hits else incr h.hs.h_misses;
          if Observe.Trace.active d.trace then
            emit_span d
              (Observe.Trace.Guard_eval
                 { event = ev.ename; hid = h.hid; label = h.label;
                   hit = accepted });
          if accepted then begin
            accepted_rev := h.hid :: !accepted_rev;
            deliver ev v h flow over
          end)
        cands;
      (match flow with
      | Recording r ->
          if r.rec_ok then
            r.rec_hops <-
              {
                hop_uid = ev.uid;
                hop_gen = ev.gen;
                hop_gen_at = !(ev.gen);
                hop_hids = List.rev !accepted_rev;
              }
              :: r.rec_hops
      | No_flow | Replaying _ -> ());
      flow_leave d flow)

(* Graph dispatch of one raise through the merged decision tree: one
   walk finds the leaf; the leaf's [tl_exact] handlers are proven
   matches (no closure call — the walk evaluated their guards), its
   [tl_resid] handlers get a real guard evaluation.  The two arrays are
   merged by hid at delivery time so install order is preserved exactly
   as the scan path would have produced it.  [guard_evals] counts only
   the residuals — that is the tentpole's claim, "zero per-handler
   guard re-evaluation for tree-expressible guards" — while
   [index_lookups]/[ev_indexed] count the walk as an index consult. *)
let raise_tree ?over ev v flow tr =
  let d = ev.disp in
  let leaf = tree_walk tr (fill_keyvals ev v tr.tr_ndims) in
  let visited = tr.tr_visited in
  let n_exact = Array.length leaf.tl_exact in
  let n_resid = Array.length leaf.tl_resid in
  Sim.Stats.Counter.add d.guard_evals n_resid;
  Sim.Stats.Counter.incr d.index_lookups;
  incr ev.ev_indexed;
  incr ev.ev_tree;
  ev.tr_resid_evals := !(ev.tr_resid_evals) + n_resid;
  if Observe.Trace.active d.trace then begin
    emit_span d
      (Observe.Trace.Raise
         { event = ev.ename; candidates = n_exact + n_resid; indexed = true });
    emit_span d
      (Observe.Trace.Index_lookup
         { event = ev.ename; keys = visited; candidates = n_exact + n_resid })
  end;
  flight_note_raise d ev v;
  let extra_gcost =
    Array.fold_left
      (fun acc h -> Sim.Stime.add acc h.gcost)
      Sim.Stime.zero leaf.tl_resid
  in
  let demux_cost =
    Sim.Stime.add extra_gcost
      (Sim.Stime.add d.costs.dispatch
         (Sim.Stime.add
            (Sim.Stime.mul d.costs.tree_node visited)
            (Sim.Stime.mul d.costs.guard n_resid)))
  in
  let prio = prio_of ev over in
  flow_enter flow;
  let gen_at_raise = !(ev.gen) in
  Sim.Cpu.run d.cpu ~prio ~cost:demux_cost (fun () ->
      (* Demultiplex against the *current* registry.  The common case —
         no churn between the raise and its delivery — reuses the leaf
         phase 1 already found (same generation, same tree, same walk).
         Otherwise re-walk against the rebuilt tree, or fall back to a
         scan if churn took the event out of tree mode. *)
      let exact, resid =
        if !(ev.gen) = gen_at_raise then (leaf.tl_exact, leaf.tl_resid)
        else
          match tree_for ev with
          | Some tr ->
              let leaf = tree_walk tr (fill_keyvals ev v tr.tr_ndims) in
              (leaf.tl_exact, leaf.tl_resid)
          | None -> ([||], Array.of_list (candidates ev v))
      in
      (match flow with
      | Recording r ->
          if
            ev.mode <> Interrupt || over <> None
            || not
                 (Array.for_all (fun h -> h.cacheable) exact
                 && Array.for_all (fun h -> h.cacheable) resid)
          then r.rec_ok <- false
      | No_flow | Replaying _ -> ());
      let accepted_rev = ref [] in
      let ne = Array.length exact and nr = Array.length resid in
      let i = ref 0 and j = ref 0 in
      while !i < ne || !j < nr do
        let take_exact =
          !j >= nr || (!i < ne && exact.(!i).hid < resid.(!j).hid)
        in
        if take_exact then begin
          let h = exact.(!i) in
          incr i;
          (* tree-proven match: the walk established every conjunct of
             the guard, so the closure is never called *)
          incr h.hs.h_hits;
          accepted_rev := h.hid :: !accepted_rev;
          deliver ev v h flow over
        end
        else begin
          let h = resid.(!j) in
          incr j;
          let accepted =
            try h.guard v with
            | (Stack_overflow | Out_of_memory) as e -> Stdlib.raise e
            | _ -> fault ev h; false
          in
          if accepted then incr h.hs.h_hits else incr h.hs.h_misses;
          if Observe.Trace.active d.trace then
            emit_span d
              (Observe.Trace.Guard_eval
                 { event = ev.ename; hid = h.hid; label = h.label;
                   hit = accepted });
          if accepted then begin
            accepted_rev := h.hid :: !accepted_rev;
            deliver ev v h flow over
          end
        end
      done;
      (match flow with
      | Recording r ->
          if r.rec_ok then
            r.rec_hops <-
              {
                hop_uid = ev.uid;
                hop_gen = ev.gen;
                hop_gen_at = !(ev.gen);
                hop_hids = List.rev !accepted_rev;
              }
              :: r.rec_hops
      | No_flow | Replaying _ -> ());
      flow_leave d flow)

(* Normal graph dispatch of one raise: merged-tree walk when the event
   compiles to one, bucket-index/linear scan otherwise. *)
let raise_core ?over ev v flow =
  match tree_for ev with
  | Some tr -> raise_tree ?over ev v flow tr
  | None -> raise_scan ?over ev v flow

(* --- replay ----------------------------------------------------------- *)

let cache_invalidate_span d ename reason =
  if Observe.Trace.active d.trace then
    emit_span d (Observe.Trace.Cache_invalidate { event = ename; reason })

(* Run a recorded hop's handlers directly: no demux, no guards (the
   signature match stands in for them).  Invocation stats, run counters
   and latency histograms are preserved; per-handler [Handler_run]
   spans are not emitted — the single [Cache_hit] span at the root
   carries the chain's hop and handler counts, which is the amortized
   per-packet trace bookkeeping the fast path promises.  Runs
   synchronously in the caller's interrupt context and returns the
   hop's modelled handler cost, which the caller accounts. *)
let run_hop ev v hids =
  let d = ev.disp in
  List.fold_left
    (fun acc hid ->
      match Hashtbl.find_opt ev.table hid with
      | Some ({ kind = Plain { cost; dyncost; fn }; _ } as h) ->
          Sim.Stats.Counter.incr d.invocations;
          let a0 = Packet.Mbuf.total_allocated () in
          contain ev h (fun () -> fn v);
          incr h.hs.h_runs;
          let total =
            match dyncost with
            | None -> cost
            | Some f -> Sim.Stime.add cost (f v)
          in
          let run_ns = Sim.Stime.to_ns total in
          h.hs.h_cpu := !(h.hs.h_cpu) + run_ns;
          h.hs.h_allocs :=
            !(h.hs.h_allocs) + (Packet.Mbuf.total_allocated () - a0);
          (match h.hs.h_lat with
          | Some hist -> Observe.Histogram.record hist run_ns
          | None -> ());
          flight_note_run d ev v h ~dur_ns:run_ns;
          quarantine_check ev h;
          Sim.Stime.add acc total
      | _ -> acc)
    Sim.Stime.zero hids

(* Dispatch a raise through the graph while a replay is in progress:
   graph work must not see the replay flow (its demux is queued and runs
   later), so clear it for the call and restore it after. *)
let graph_escape d rp ev v =
  d.flow <- No_flow;
  raise_core ev v No_flow;
  d.flow <- Replaying rp

(* A nested raise while replaying: claim the next recorded hop if it
   matches this event and is still current, deferring its execution to
   the root driver's FIFO — graph dispatch queues the nested demux
   behind the current hop's remaining deliveries, so running claimed
   hops after the claiming hop finishes reproduces its hop-major
   delivery order exactly.  On a mismatch the chain has diverged: drop
   the entry and send this raise (and any later ones) through graph
   dispatch.  Deliveries already made stand — they were valid when
   made. *)
let replay_step ev v rp =
  let d = ev.disp in
  let pos = rp.rp_claim in
  if
    rp.rp_live
    && pos < Array.length rp.rp_hops
    && rp.rp_hops.(pos).hop_uid = ev.uid
    && hop_valid rp.rp_hops.(pos)
  then begin
    let hop = rp.rp_hops.(pos) in
    rp.rp_claim <- pos + 1;
    Queue.push
      (fun () ->
        (* An earlier pending hop's handler may have churned the graph
           between claim and run: fall back for this raise if so. *)
        if rp.rp_live && hop_valid hop then run_hop ev v hop.hop_hids
        else begin
          if rp.rp_live then begin
            rp.rp_live <- false;
            rp.rp_drop ();
            incr d.pc_invalidations;
            cache_invalidate_span d ev.ename "divergent-replay"
          end;
          graph_escape d rp ev v;
          Sim.Stime.zero
        end)
      rp.rp_pending
  end
  else begin
    if rp.rp_live then begin
      rp.rp_live <- false;
      rp.rp_drop ();
      incr d.pc_invalidations;
      cache_invalidate_span d ev.ename "divergent-replay"
    end;
    graph_escape d rp ev v
  end

(* A root hit: the whole chain runs synchronously, right now, in the
   caller's context (the device's receive-interrupt work item on the
   steady-state path) — zero scheduled work items of its own.  Nested
   raises claim their hops via [replay_step]; claimed hops run here in
   FIFO order after the hop that raised them finishes, matching graph
   dispatch's work-queue delivery order.  The chain's modelled cost
   accumulates in [rp_cost] and is charged in one [Cpu.charge] at the
   end, which reserves the CPU so queued and subsequent work (a reply
   the handlers sent, the next frame's interrupt) still waits out the
   chain's cost.  Relative to graph dispatch, handler side effects land
   earlier in wall-clock model time (at the raise instant rather than
   after each hop's work item) — per-flow delivery order, counters and
   total charged CPU time are unchanged, which is the equivalence the
   cache promises.  Entry validity needs no upfront re-check: nothing
   can intervene between the lookup and this synchronous run, and
   [replay_step] re-checks each hop as it claims and runs it (a handler
   itself may churn the graph mid-chain). *)
let replay_start ev v sg hops =
  let d = ev.disp in
  incr d.pc_hits;
  incr ev.ev_cached;
  if Observe.Trace.active d.trace then begin
    let handlers =
      Array.fold_left (fun n hop -> n + List.length hop.hop_hids) 0 hops
    in
    emit_span d
      (Observe.Trace.Cache_hit
         { event = ev.ename; hops = Array.length hops; handlers })
  end;
  flight_note_raise d ev v;
  let hop0 = hops.(0) in
  let rp =
    {
      rp_hops = hops;
      rp_claim = 1;
      rp_cost = d.costs.index;
      rp_live = true;
      rp_pending = Queue.create ();
      rp_drop = (fun () -> Sharded.Cache.remove ev.entries sg);
    }
  in
  d.flow <- Replaying rp;
  rp.rp_cost <- Sim.Stime.add rp.rp_cost (run_hop ev v hop0.hop_hids);
  while not (Queue.is_empty rp.rp_pending) do
    let job = Queue.pop rp.rp_pending in
    rp.rp_cost <- Sim.Stime.add rp.rp_cost (job ())
  done;
  d.flow <- No_flow;
  Sim.Cpu.charge d.cpu ~cost:rp.rp_cost

let record_raise ev v sg =
  let r =
    {
      rec_ename = ev.ename;
      rec_commit = (fun hops -> Sharded.Cache.put ev.entries sg hops);
      rec_hops = [];
      rec_pending = 0;
      rec_ok = true;
    }
  in
  raise_core ev v (Recording r)

(* One raise, flow-cache aware.  [raises]/[ev_raises] already counted by
   the caller.  [prio] (or a sticky override left by an overridden
   handler body) demotes the raise and everything it delivers; demoted
   raises bypass the flow cache entirely — replay charges its cost
   synchronously in the raiser's context, which is exactly what the
   demoted path must avoid, and a demoted walk must not record either
   (its chain would replay at interrupt priority later). *)
let dispatch ?prio ev v =
  let d = ev.disp in
  let over = match prio with Some _ -> prio | None -> d.prio_override in
  match d.flow with
  | Replaying rp -> replay_step ev v rp
  | Recording _ as flow -> raise_core ?over ev v flow
  | No_flow -> (
      if over <> None || not (d.fcache && ev.mode = Interrupt) then
        raise_core ?over ev v No_flow
      else
        match ev.sigfn with
        | None -> raise_core ev v No_flow
        | Some sigfn -> (
            match sigfn v with
            | None -> raise_core ev v No_flow (* unsignable: cache bypass *)
            | Some sg -> (
                match Sharded.Cache.find_opt ev.entries sg with
                | Some hops when entry_valid hops -> replay_start ev v sg hops
                | Some _ ->
                    Sharded.Cache.remove ev.entries sg;
                    incr d.pc_invalidations;
                    cache_invalidate_span d ev.ename "stale-generation";
                    incr d.pc_misses;
                    record_raise ev v sg
                | None ->
                    incr d.pc_misses;
                    record_raise ev v sg)))

let raise ?prio ev v =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.raises;
  incr ev.ev_raises;
  dispatch ?prio ev v

(* Back-to-back frames: one raise-counter update for the whole batch
   instead of per frame; each frame still dispatches (and hits or
   records the flow cache) individually. *)
let raise_batch ?prio ev vs =
  match vs with
  | [] -> ()
  | [ v ] -> raise ?prio ev v
  | vs ->
      let d = ev.disp in
      let n = List.length vs in
      Sim.Stats.Counter.add d.raises n;
      ev.ev_raises := !(ev.ev_raises) + n;
      List.iter (fun v -> dispatch ?prio ev v) vs

(* --- introspection rendering ------------------------------------------ *)

let pp_event_info ppf ei =
  Fmt.pf ppf "%s [%s%s] %d handler(s) gen=%d cache=%d%s@." ei.ei_name
    (match ei.ei_mode with Interrupt -> "interrupt" | Thread -> "thread")
    (if ei.ei_indexed then ", indexed" else "")
    (List.length ei.ei_handlers)
    ei.ei_generation ei.ei_cache_entries
    (match ei.ei_tree with
    | Some ti ->
        Printf.sprintf " tree[nodes=%d depth=%d rebuilds=%d raises=%d resid=%d]"
          ti.ti_nodes ti.ti_depth ti.ti_rebuilds ti.ti_raises
          ti.ti_residual_evals
    | None -> "");
  List.iter
    (fun hi ->
      Fmt.pf ppf
        "    h%-3d %-24s %s%s hits=%d misses=%d runs=%d cpu=%dns allocs=%d%s%s%s%s@."
        hi.hi_id
        (if hi.hi_gen = 0 then hi.hi_label
         else Printf.sprintf "%s#%d" hi.hi_label hi.hi_gen)
        (match hi.hi_key with
        | Some k -> Printf.sprintf "key=0x%x " k
        | None -> "linear ")
        (if hi.hi_ephemeral then "ephemeral" else "plain")
        hi.hi_guard_hits hi.hi_guard_misses hi.hi_runs hi.hi_cpu_ns
        hi.hi_allocs
        (if hi.hi_terminations > 0 then
           Printf.sprintf " terms=%d" hi.hi_terminations
         else "")
        (if hi.hi_failures > 0 then
           Printf.sprintf " fails=%d" hi.hi_failures
         else "")
        (if hi.hi_quarantines > 0 then
           Printf.sprintf " quars=%d" hi.hi_quarantines
         else "")
        (match hi.hi_budget with
        | Some b -> Fmt.str " cert[%a]" Verifier.pp_budget b
        | None -> ""))
    ei.ei_handlers

let pp_dump ppf t = List.iter (fun ei -> Fmt.pf ppf "  %a" pp_event_info ei) (dump t)
