(* The SPIN event dispatcher (paper section 2) with Plexus's delivery modes
   (section 4.1).

   Events are typed: an ['a event] carries payloads of type ['a] (protocol
   events carry packets).  Handlers are installed with an optional guard —
   an arbitrary predicate evaluated before the handler fires; guards are
   Plexus's packet filters.  More than one handler may be installed on an
   event; "the overhead of invoking each handler is roughly one procedure
   call", which the cost model reflects via [costs.dispatch].

   Demultiplexing scales the way DPF and PathFinder showed it must: an
   event may carry a *dispatch index*.  Handlers whose guard is known to
   imply a literal equality on a demux field (protocol number, port,
   EtherType) are installed with that equality as a [key]; at raise time
   the event's key extractor hashes the payload's demux fields once and
   only the handlers in the matching buckets — plus the unkeyed linear
   fallback bucket — have their guards evaluated.  Raise cost therefore
   scales with the number of *matching* handlers, not the number of
   *installed* handlers; the cost model charges one [costs.index] hash
   lookup instead of [guard * n].

   The registry behind this is an hid-indexed hash table (O(1) install,
   uninstall and liveness check) plus per-key bucket lists; bucket lists
   are pruned lazily of uninstalled ids at the next raise that touches
   them.

   Soundness contract for keys: installing a handler with [~key:k] asserts
   that its guard can only accept payloads for which the event's key
   extractor includes [k].  Managers derive both from the same endpoint or
   filter, so the index can never change which handlers fire — it only
   skips guards that were going to say no.

   Delivery modes correspond to the two Plexus bars in Figure 5:
   - [Interrupt]: handlers run at interrupt priority in the raiser's
     context.  Ephemeral handlers additionally run under a time budget
     with transactional termination.
   - [Thread]: "each event raise creating a new thread" — every handler
     invocation pays a thread-spawn cost and runs at thread priority. *)

type delivery = Interrupt | Thread

type costs = {
  dispatch : Sim.Stime.t;      (* per-raise bookkeeping, ~ a procedure call *)
  guard : Sim.Stime.t;         (* per guard predicate evaluation *)
  index : Sim.Stime.t;         (* per-raise demux-key hash lookup *)
  thread_spawn : Sim.Stime.t;  (* thread-mode per-invocation cost *)
}

let default_costs =
  {
    dispatch = Sim.Stime.ns 400;
    guard = Sim.Stime.ns 300;
    index = Sim.Stime.ns 250;
    thread_spawn = Sim.Stime.us 12;
  }

type t = {
  cpu : Sim.Cpu.t;
  costs : costs;
  raises : Sim.Stats.Counter.t;
  guard_evals : Sim.Stats.Counter.t;
  index_lookups : Sim.Stats.Counter.t;
  invocations : Sim.Stats.Counter.t;
  terminations : Sim.Stats.Counter.t;
  faults : Sim.Stats.Counter.t;
}

let create ~cpu ~costs =
  {
    cpu;
    costs;
    raises = Sim.Stats.Counter.create ();
    guard_evals = Sim.Stats.Counter.create ();
    index_lookups = Sim.Stats.Counter.create ();
    invocations = Sim.Stats.Counter.create ();
    terminations = Sim.Stats.Counter.create ();
    faults = Sim.Stats.Counter.create ();
  }

let cpu t = t.cpu
let costs t = t.costs
let raises t = Sim.Stats.Counter.get t.raises
let guard_evals t = Sim.Stats.Counter.get t.guard_evals
let index_lookups t = Sim.Stats.Counter.get t.index_lookups
let invocations t = Sim.Stats.Counter.get t.invocations
let terminations t = Sim.Stats.Counter.get t.terminations
let faults t = Sim.Stats.Counter.get t.faults

type 'a kind =
  | Plain of {
      cost : Sim.Stime.t;
      dyncost : ('a -> Sim.Stime.t) option;
          (* data-touching work that scales with the payload *)
      fn : 'a -> unit;
    }
  | Eph of { budget : Sim.Stime.t option; fn : 'a -> Ephemeral.t }

type 'a handler = {
  hid : int;
  guard : 'a -> bool;
  gcost : Sim.Stime.t;  (* extra per-evaluation cost (interpreted filters) *)
  hkey : int option;    (* dispatch key this handler is indexed under *)
  kind : 'a kind;
}

type 'a event = {
  disp : t;
  ename : string;
  mutable mode : delivery;
  table : (int, 'a handler) Hashtbl.t;       (* hid -> handler; the registry *)
  mutable linear : int list;                  (* unkeyed hids, newest first *)
  buckets : (int, int list ref) Hashtbl.t;    (* key -> hids, newest first *)
  mutable keyfn : ('a -> int list) option;    (* payload's demux keys *)
  mutable nkeyed : int;                       (* live handlers with a key *)
  mutable next_hid : int;
}

let event disp ?(mode = Interrupt) ename =
  {
    disp;
    ename;
    mode;
    table = Hashtbl.create 8;
    linear = [];
    buckets = Hashtbl.create 8;
    keyfn = None;
    nkeyed = 0;
    next_hid = 0;
  }

let name ev = ev.ename
let mode ev = ev.mode
let set_mode ev m = ev.mode <- m
let set_keyfn ev kf = ev.keyfn <- Some kf
let handler_count ev = Hashtbl.length ev.table
let indexed_count ev = ev.nkeyed
let linear_count ev = Hashtbl.length ev.table - ev.nkeyed

let remove_hid ev hid =
  match Hashtbl.find_opt ev.table hid with
  | None -> ()
  | Some h ->
      Hashtbl.remove ev.table hid;
      (match h.hkey with
      | Some _ -> ev.nkeyed <- ev.nkeyed - 1
      | None -> ())

let add_handler ev guard gcost key kind =
  let hid = ev.next_hid in
  ev.next_hid <- hid + 1;
  Hashtbl.replace ev.table hid { hid; guard; gcost; hkey = key; kind };
  (match key with
  | None -> ev.linear <- hid :: ev.linear
  | Some k ->
      ev.nkeyed <- ev.nkeyed + 1;
      (match Hashtbl.find_opt ev.buckets k with
      | Some b -> b := hid :: !b
      | None -> Hashtbl.replace ev.buckets k (ref [ hid ])));
  fun () -> remove_hid ev hid

let no_guard _ = true

let install ev ?(guard = no_guard) ?key ?(gcost = Sim.Stime.zero) ?dyncost
    ~cost fn =
  add_handler ev guard gcost key (Plain { cost; dyncost; fn })

let install_ephemeral ev ?(guard = no_guard) ?key ?(gcost = Sim.Stime.zero)
    ?budget fn =
  add_handler ev guard gcost key (Eph { budget; fn })

(* Live handlers behind a hid list, pruning uninstalled ids in place. *)
let prune ev ids =
  if List.for_all (fun hid -> Hashtbl.mem ev.table hid) ids then (ids, false)
  else (List.filter (fun hid -> Hashtbl.mem ev.table hid) ids, true)

let bucket_hids ev k =
  match Hashtbl.find_opt ev.buckets k with
  | None -> []
  | Some b ->
      let live, stale = prune ev !b in
      if stale then
        if live = [] then Hashtbl.remove ev.buckets k else b := live;
      live

(* The handlers whose guards this raise must evaluate, in install order.
   Without a key extractor every live handler is a candidate; with one,
   only the matching buckets plus the linear fallback bucket are. *)
let candidates ev v =
  let hids =
    match ev.keyfn with
    | None -> Hashtbl.fold (fun hid _ acc -> hid :: acc) ev.table []
    | Some kf ->
        let keyed =
          if ev.nkeyed = 0 then []
          else List.concat_map (fun k -> bucket_hids ev k) (kf v)
        in
        let live_linear, stale = prune ev ev.linear in
        if stale then ev.linear <- live_linear;
        List.rev_append keyed live_linear
  in
  List.filter_map (fun hid -> Hashtbl.find_opt ev.table hid)
    (List.sort_uniq compare hids)

(* Fault containment: extension code that raises must not take the
   kernel down.  The typesafe language already rules out wild memory
   access; runtime exceptions are caught here, counted, and the faulting
   handler is uninstalled — the extension model's equivalent of killing
   the offending extension rather than the system. *)
let fault ev h =
  Sim.Stats.Counter.incr ev.disp.faults;
  remove_hid ev h.hid

let contain ev h f = try f () with _exn -> fault ev h

let still_installed ev h = Hashtbl.mem ev.table h.hid

let deliver ev v h =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.invocations;
  let prio =
    match ev.mode with Interrupt -> Sim.Cpu.Interrupt | Thread -> Sim.Cpu.Thread
  in
  let spawn =
    match ev.mode with
    | Interrupt -> Sim.Stime.zero
    | Thread -> d.costs.thread_spawn
  in
  match h.kind with
  | Plain { cost; dyncost; fn } ->
      let cost =
        match dyncost with
        | None -> cost
        | Some f -> Sim.Stime.add cost (f v)
      in
      Sim.Cpu.run d.cpu ~prio ~cost:(Sim.Stime.add spawn cost) (fun () ->
          (* skip if uninstalled while this invocation was queued *)
          if still_installed ev h then contain ev h (fun () -> fn v))
  | Eph { budget; fn } -> (
      match (try Some (Ephemeral.plan ?budget (fn v)) with _ -> None) with
      | None -> fault ev h
      | Some plan ->
          let r = Ephemeral.planned plan in
          Sim.Cpu.run d.cpu ~prio
            ~cost:(Sim.Stime.add spawn r.Ephemeral.consumed)
            (fun () ->
              if still_installed ev h then
                contain ev h (fun () ->
                    let r = Ephemeral.commit plan in
                    if r.Ephemeral.terminated then
                      Sim.Stats.Counter.incr d.terminations)))

let raise ev v =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.raises;
  let cands = candidates ev v in
  let n_guards = List.length cands in
  Sim.Stats.Counter.add d.guard_evals n_guards;
  let indexed =
    match ev.keyfn with Some _ -> ev.nkeyed > 0 | None -> false
  in
  if indexed then Sim.Stats.Counter.incr d.index_lookups;
  let extra_gcost =
    List.fold_left (fun acc h -> Sim.Stime.add acc h.gcost) Sim.Stime.zero cands
  in
  let demux_cost =
    Sim.Stime.add extra_gcost
      (Sim.Stime.add d.costs.dispatch
         (Sim.Stime.add
            (if indexed then d.costs.index else Sim.Stime.zero)
            (Sim.Stime.mul d.costs.guard n_guards)))
  in
  let prio =
    match ev.mode with Interrupt -> Sim.Cpu.Interrupt | Thread -> Sim.Cpu.Thread
  in
  Sim.Cpu.run d.cpu ~prio ~cost:demux_cost (fun () ->
      (* Demultiplex against the *current* registry: a handler uninstalled
         while this raise was queued no longer fires. *)
      List.iter
        (fun h ->
          (* a faulting guard is contained the same way *)
          let accepted = try h.guard v with _ -> fault ev h; false in
          if accepted then deliver ev v h)
        (candidates ev v))
