(* The SPIN event dispatcher (paper section 2) with Plexus's delivery modes
   (section 4.1).

   Events are typed: an ['a event] carries payloads of type ['a] (protocol
   events carry packets).  Handlers are installed with an optional guard —
   an arbitrary predicate evaluated before the handler fires; guards are
   Plexus's packet filters.  More than one handler may be installed on an
   event; "the overhead of invoking each handler is roughly one procedure
   call", which the cost model reflects via [costs.dispatch].

   Demultiplexing scales the way DPF and PathFinder showed it must: an
   event may carry a *dispatch index*.  Handlers whose guard is known to
   imply a literal equality on a demux field (protocol number, port,
   EtherType) are installed with that equality as a [key]; at raise time
   the event's key extractor hashes the payload's demux fields once and
   only the handlers in the matching buckets — plus the unkeyed linear
   fallback bucket — have their guards evaluated.  Raise cost therefore
   scales with the number of *matching* handlers, not the number of
   *installed* handlers; the cost model charges one [costs.index] hash
   lookup instead of [guard * n].

   The registry behind this is an hid-indexed hash table (O(1) install,
   uninstall and liveness check) plus per-key bucket lists; bucket lists
   are pruned lazily of uninstalled ids at the next raise that touches
   them.

   Soundness contract for keys: installing a handler with [~key:k] asserts
   that its guard can only accept payloads for which the event's key
   extractor includes [k].  Managers derive both from the same endpoint or
   filter, so the index can never change which handlers fire — it only
   skips guards that were going to say no.

   Delivery modes correspond to the two Plexus bars in Figure 5:
   - [Interrupt]: handlers run at interrupt priority in the raiser's
     context.  Ephemeral handlers additionally run under a time budget
     with transactional termination.
   - [Thread]: "each event raise creating a new thread" — every handler
     invocation pays a thread-spawn cost and runs at thread priority.

   Observability: a dispatcher optionally carries an [Observe.Registry]
   (per-event raise/index counters, per-handler guard hit/miss counters
   and run-latency histograms, ephemeral commit accounting — naming
   scheme in DESIGN.md) and always carries an [Observe.Trace] endpoint
   whose sink defaults to [Null].  Span emission is guarded by
   [Trace.active], so disabled tracing costs one load and branch per
   site; counter updates are bare int-ref increments whether or not a
   registry is attached (the refs are simply shared with the registry
   when one is). *)

type delivery = Interrupt | Thread

type costs = {
  dispatch : Sim.Stime.t;      (* per-raise bookkeeping, ~ a procedure call *)
  guard : Sim.Stime.t;         (* per guard predicate evaluation *)
  index : Sim.Stime.t;         (* per-raise demux-key hash lookup *)
  thread_spawn : Sim.Stime.t;  (* thread-mode per-invocation cost *)
}

let default_costs =
  {
    dispatch = Sim.Stime.ns 400;
    guard = Sim.Stime.ns 300;
    index = Sim.Stime.ns 250;
    thread_spawn = Sim.Stime.us 12;
  }

(* Introspection views (see [dump]). *)
type handler_info = {
  hi_id : int;
  hi_label : string;
  hi_key : int option;
  hi_ephemeral : bool;
  hi_guard_hits : int;
  hi_guard_misses : int;
  hi_runs : int;
}

type event_info = {
  ei_name : string;
  ei_mode : delivery;
  ei_indexed : bool;          (* has a key extractor *)
  ei_handlers : handler_info list;
}

type t = {
  cpu : Sim.Cpu.t;
  costs : costs;
  reg : Observe.Registry.t option;
  trace : Observe.Trace.t;
  raises : Sim.Stats.Counter.t;
  guard_evals : Sim.Stats.Counter.t;
  index_lookups : Sim.Stats.Counter.t;
  invocations : Sim.Stats.Counter.t;
  terminations : Sim.Stats.Counter.t;
  faults : Sim.Stats.Counter.t;
  eph_commits : int ref;
  eph_actions : int ref;       (* committed ephemeral actions *)
  eph_terminated : int ref;    (* budget overruns *)
  mutable introspectors : (unit -> event_info) list; (* newest first *)
}

let mkref reg name =
  match reg with Some r -> Observe.Registry.counter r name | None -> ref 0

let create ?registry ?trace ~cpu ~costs () =
  {
    cpu;
    costs;
    reg = registry;
    trace = (match trace with Some tr -> tr | None -> Observe.Trace.create ());
    raises = Sim.Stats.Counter.create ();
    guard_evals = Sim.Stats.Counter.create ();
    index_lookups = Sim.Stats.Counter.create ();
    invocations = Sim.Stats.Counter.create ();
    terminations = Sim.Stats.Counter.create ();
    faults = Sim.Stats.Counter.create ();
    eph_commits = mkref registry "spin.eph.commits";
    eph_actions = mkref registry "spin.eph.committed_actions";
    eph_terminated = mkref registry "spin.eph.terminated";
    introspectors = [];
  }

let cpu t = t.cpu
let costs t = t.costs
let registry t = t.reg
let trace t = t.trace
let raises t = Sim.Stats.Counter.get t.raises
let guard_evals t = Sim.Stats.Counter.get t.guard_evals
let index_lookups t = Sim.Stats.Counter.get t.index_lookups
let invocations t = Sim.Stats.Counter.get t.invocations
let terminations t = Sim.Stats.Counter.get t.terminations
let faults t = Sim.Stats.Counter.get t.faults

let now_ns t = Sim.Stime.to_ns (Sim.Engine.now (Sim.Cpu.engine t.cpu))

type 'a kind =
  | Plain of {
      cost : Sim.Stime.t;
      dyncost : ('a -> Sim.Stime.t) option;
          (* data-touching work that scales with the payload *)
      fn : 'a -> unit;
    }
  | Eph of { budget : Sim.Stime.t option; fn : 'a -> Ephemeral.t }

(* Per-handler accounting.  The hit/miss/run refs live in the
   dispatcher's registry when one is attached (so snapshots see them);
   the latency histogram only exists under a registry — recording into
   it is the one per-run cost a detached dispatcher does not pay. *)
type hstats = {
  h_hits : int ref;
  h_misses : int ref;
  h_runs : int ref;
  h_lat : Observe.Histogram.t option;
}

type 'a handler = {
  hid : int;
  label : string;
  guard : 'a -> bool;
  gcost : Sim.Stime.t;  (* extra per-evaluation cost (interpreted filters) *)
  hkey : int option;    (* dispatch key this handler is indexed under *)
  kind : 'a kind;
  hs : hstats;
}

type 'a event = {
  disp : t;
  ename : string;
  mutable mode : delivery;
  table : (int, 'a handler) Hashtbl.t;       (* hid -> handler; the registry *)
  mutable linear : int list;                  (* unkeyed hids, newest first *)
  buckets : (int, int list ref) Hashtbl.t;    (* key -> hids, newest first *)
  mutable keyfn : ('a -> int list) option;    (* payload's demux keys *)
  mutable nkeyed : int;                       (* live handlers with a key *)
  mutable next_hid : int;
  ev_raises : int ref;
  ev_indexed : int ref;   (* raises served through the demux index *)
  ev_linear : int ref;    (* raises that scanned every live guard *)
}

let info_of_event ev =
  let handlers =
    Hashtbl.fold (fun _ h acc -> h :: acc) ev.table []
    |> List.sort (fun a b -> compare a.hid b.hid)
    |> List.map (fun h ->
           {
             hi_id = h.hid;
             hi_label = h.label;
             hi_key = h.hkey;
             hi_ephemeral = (match h.kind with Eph _ -> true | Plain _ -> false);
             hi_guard_hits = !(h.hs.h_hits);
             hi_guard_misses = !(h.hs.h_misses);
             hi_runs = !(h.hs.h_runs);
           })
  in
  {
    ei_name = ev.ename;
    ei_mode = ev.mode;
    ei_indexed = ev.keyfn <> None;
    ei_handlers = handlers;
  }

let event disp ?(mode = Interrupt) ename =
  let ev =
    {
      disp;
      ename;
      mode;
      table = Hashtbl.create 8;
      linear = [];
      buckets = Hashtbl.create 8;
      keyfn = None;
      nkeyed = 0;
      next_hid = 0;
      ev_raises = mkref disp.reg ("spin." ^ ename ^ ".raises");
      ev_indexed = mkref disp.reg ("spin." ^ ename ^ ".indexed_raises");
      ev_linear = mkref disp.reg ("spin." ^ ename ^ ".linear_raises");
    }
  in
  disp.introspectors <- (fun () -> info_of_event ev) :: disp.introspectors;
  ev

let dump t = List.rev_map (fun f -> f ()) t.introspectors

let name ev = ev.ename
let mode ev = ev.mode
let set_mode ev m = ev.mode <- m
let set_keyfn ev kf = ev.keyfn <- Some kf
let handler_count ev = Hashtbl.length ev.table
let indexed_count ev = ev.nkeyed
let linear_count ev = Hashtbl.length ev.table - ev.nkeyed

let remove_hid ev hid =
  match Hashtbl.find_opt ev.table hid with
  | None -> ()
  | Some h ->
      Hashtbl.remove ev.table hid;
      (match h.hkey with
      | Some _ -> ev.nkeyed <- ev.nkeyed - 1
      | None -> ())

let hstats_for disp ev label =
  let prefix = "spin." ^ ev.ename ^ "." ^ label in
  {
    h_hits = mkref disp.reg (prefix ^ ".guard_hits");
    h_misses = mkref disp.reg (prefix ^ ".guard_misses");
    h_runs = mkref disp.reg (prefix ^ ".runs");
    h_lat =
      (match disp.reg with
      | Some r -> Some (Observe.Registry.histogram r (prefix ^ ".run_ns"))
      | None -> None);
  }

let add_handler ev ?label guard gcost key kind =
  let hid = ev.next_hid in
  ev.next_hid <- hid + 1;
  let label =
    match label with Some l -> l | None -> "h" ^ string_of_int hid
  in
  let hs = hstats_for ev.disp ev label in
  Hashtbl.replace ev.table hid { hid; label; guard; gcost; hkey = key; kind; hs };
  (match key with
  | None -> ev.linear <- hid :: ev.linear
  | Some k ->
      ev.nkeyed <- ev.nkeyed + 1;
      (match Hashtbl.find_opt ev.buckets k with
      | Some b -> b := hid :: !b
      | None -> Hashtbl.replace ev.buckets k (ref [ hid ])));
  fun () -> remove_hid ev hid

let no_guard _ = true

let install ev ?(guard = no_guard) ?key ?(gcost = Sim.Stime.zero) ?dyncost
    ?label ~cost fn =
  add_handler ev ?label guard gcost key (Plain { cost; dyncost; fn })

let install_ephemeral ev ?(guard = no_guard) ?key ?(gcost = Sim.Stime.zero)
    ?label ?budget fn =
  add_handler ev ?label guard gcost key (Eph { budget; fn })

(* Live handlers behind a hid list, pruning uninstalled ids in place. *)
let prune ev ids =
  if List.for_all (fun hid -> Hashtbl.mem ev.table hid) ids then (ids, false)
  else (List.filter (fun hid -> Hashtbl.mem ev.table hid) ids, true)

let bucket_hids ev k =
  match Hashtbl.find_opt ev.buckets k with
  | None -> []
  | Some b ->
      let live, stale = prune ev !b in
      if stale then
        if live = [] then Hashtbl.remove ev.buckets k else b := live;
      live

(* The handlers whose guards this raise must evaluate, in install order.
   Without a key extractor every live handler is a candidate; with one,
   only the matching buckets plus the linear fallback bucket are. *)
let candidates ev v =
  let hids =
    match ev.keyfn with
    | None -> Hashtbl.fold (fun hid _ acc -> hid :: acc) ev.table []
    | Some kf ->
        let keyed =
          if ev.nkeyed = 0 then []
          else List.concat_map (fun k -> bucket_hids ev k) (kf v)
        in
        let live_linear, stale = prune ev ev.linear in
        if stale then ev.linear <- live_linear;
        List.rev_append keyed live_linear
  in
  List.filter_map (fun hid -> Hashtbl.find_opt ev.table hid)
    (List.sort_uniq compare hids)

(* Fault containment: extension code that raises must not take the
   kernel down.  The typesafe language already rules out wild memory
   access; runtime exceptions are caught here, counted, and the faulting
   handler is uninstalled — the extension model's equivalent of killing
   the offending extension rather than the system. *)
let fault ev h =
  Sim.Stats.Counter.incr ev.disp.faults;
  remove_hid ev h.hid

let contain ev h f = try f () with _exn -> fault ev h

let still_installed ev h = Hashtbl.mem ev.table h.hid

let emit_span d event =
  Observe.Trace.emit d.trace { Observe.Trace.at_ns = now_ns d; event }

let deliver ev v h =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.invocations;
  let prio =
    match ev.mode with Interrupt -> Sim.Cpu.Interrupt | Thread -> Sim.Cpu.Thread
  in
  let spawn =
    match ev.mode with
    | Interrupt -> Sim.Stime.zero
    | Thread -> d.costs.thread_spawn
  in
  match h.kind with
  | Plain { cost; dyncost; fn } ->
      let cost =
        match dyncost with
        | None -> cost
        | Some f -> Sim.Stime.add cost (f v)
      in
      let total = Sim.Stime.add spawn cost in
      Sim.Cpu.run d.cpu ~prio ~cost:total (fun () ->
          (* skip if uninstalled while this invocation was queued *)
          if still_installed ev h then begin
            contain ev h (fun () -> fn v);
            incr h.hs.h_runs;
            (match h.hs.h_lat with
            | Some hist -> Observe.Histogram.record hist (Sim.Stime.to_ns total)
            | None -> ());
            if Observe.Trace.active d.trace then
              emit_span d
                (Observe.Trace.Handler_run
                   {
                     event = ev.ename;
                     hid = h.hid;
                     label = h.label;
                     duration_ns = Sim.Stime.to_ns total;
                   })
          end)
  | Eph { budget; fn } -> (
      match (try Some (Ephemeral.plan ?budget (fn v)) with _ -> None) with
      | None -> fault ev h
      | Some plan ->
          let r = Ephemeral.planned plan in
          Sim.Cpu.run d.cpu ~prio
            ~cost:(Sim.Stime.add spawn r.Ephemeral.consumed)
            (fun () ->
              if still_installed ev h then
                contain ev h (fun () ->
                    let r = Ephemeral.commit plan in
                    incr h.hs.h_runs;
                    incr d.eph_commits;
                    d.eph_actions := !(d.eph_actions) + r.Ephemeral.committed;
                    (match h.hs.h_lat with
                    | Some hist ->
                        Observe.Histogram.record hist
                          (Sim.Stime.to_ns r.Ephemeral.consumed)
                    | None -> ());
                    if r.Ephemeral.terminated then begin
                      Sim.Stats.Counter.incr d.terminations;
                      incr d.eph_terminated
                    end;
                    if Observe.Trace.active d.trace then
                      emit_span d
                        (if r.Ephemeral.terminated then
                           Observe.Trace.Terminated
                             {
                               event = ev.ename;
                               hid = h.hid;
                               label = h.label;
                               committed = r.Ephemeral.committed;
                               total = r.Ephemeral.total;
                               duration_ns =
                                 Sim.Stime.to_ns r.Ephemeral.consumed;
                             }
                         else
                           Observe.Trace.Ephemeral_commit
                             {
                               event = ev.ename;
                               hid = h.hid;
                               label = h.label;
                               committed = r.Ephemeral.committed;
                               total = r.Ephemeral.total;
                               duration_ns =
                                 Sim.Stime.to_ns r.Ephemeral.consumed;
                             }))))

let raise ev v =
  let d = ev.disp in
  Sim.Stats.Counter.incr d.raises;
  incr ev.ev_raises;
  let cands = candidates ev v in
  let n_guards = List.length cands in
  Sim.Stats.Counter.add d.guard_evals n_guards;
  let indexed =
    match ev.keyfn with Some _ -> ev.nkeyed > 0 | None -> false
  in
  if indexed then begin
    Sim.Stats.Counter.incr d.index_lookups;
    incr ev.ev_indexed
  end
  else incr ev.ev_linear;
  if Observe.Trace.active d.trace then begin
    emit_span d
      (Observe.Trace.Raise
         { event = ev.ename; candidates = n_guards; indexed });
    if indexed then
      let nkeys =
        match ev.keyfn with Some kf -> List.length (kf v) | None -> 0
      in
      emit_span d
        (Observe.Trace.Index_lookup
           { event = ev.ename; keys = nkeys; candidates = n_guards })
  end;
  let extra_gcost =
    List.fold_left (fun acc h -> Sim.Stime.add acc h.gcost) Sim.Stime.zero cands
  in
  let demux_cost =
    Sim.Stime.add extra_gcost
      (Sim.Stime.add d.costs.dispatch
         (Sim.Stime.add
            (if indexed then d.costs.index else Sim.Stime.zero)
            (Sim.Stime.mul d.costs.guard n_guards)))
  in
  let prio =
    match ev.mode with Interrupt -> Sim.Cpu.Interrupt | Thread -> Sim.Cpu.Thread
  in
  Sim.Cpu.run d.cpu ~prio ~cost:demux_cost (fun () ->
      (* Demultiplex against the *current* registry: a handler uninstalled
         while this raise was queued no longer fires. *)
      List.iter
        (fun h ->
          (* a faulting guard is contained the same way *)
          let accepted = try h.guard v with _ -> fault ev h; false in
          if accepted then incr h.hs.h_hits else incr h.hs.h_misses;
          if Observe.Trace.active d.trace then
            emit_span d
              (Observe.Trace.Guard_eval
                 { event = ev.ename; hid = h.hid; label = h.label;
                   hit = accepted });
          if accepted then deliver ev v h)
        (candidates ev v))

(* --- introspection rendering ------------------------------------------ *)

let pp_event_info ppf ei =
  Fmt.pf ppf "%s [%s%s] %d handler(s)@." ei.ei_name
    (match ei.ei_mode with Interrupt -> "interrupt" | Thread -> "thread")
    (if ei.ei_indexed then ", indexed" else "")
    (List.length ei.ei_handlers);
  List.iter
    (fun hi ->
      Fmt.pf ppf "    h%-3d %-24s %s%s hits=%d misses=%d runs=%d@." hi.hi_id
        hi.hi_label
        (match hi.hi_key with
        | Some k -> Printf.sprintf "key=0x%x " k
        | None -> "linear ")
        (if hi.hi_ephemeral then "ephemeral" else "plain")
        hi.hi_guard_hits hi.hi_guard_misses hi.hi_runs)
    ei.ei_handlers

let pp_dump ppf t = List.iter (fun ei -> Fmt.pf ppf "  %a" pp_event_info ei) (dump t)
