(** Kernel extensions and the compiler that signs them.

    An extension is the unit of dynamically loaded code: a name, a list of
    declared imports (interface, symbol) and an initialization function
    that runs at link time.  Only {!Compiler.compile} produces extensions
    whose certificate the linker accepts — the analogue of object files
    "signed by our Modula-3 compiler" (paper, section 2). *)

type t

type linkage = {
  get : 'a. 'a Univ.witness -> iface:string -> sym:string -> 'a;
  on_unlink : (unit -> unit) -> unit;
}
(** What a linking extension sees: typed access to its declared imports and
    registration of unlink-time cleanup. *)

type failure =
  | Unsigned                                   (** bad or missing signature *)
  | Unresolved of (string * string) list       (** symbols absent from the domain *)
  | Undeclared_import of string * string       (** [get] outside the declared list *)
  | Type_clash of string * string              (** witness mismatch *)
  | Init_raised of string                      (** initialization threw *)
  | Over_budget of Verifier.violation
      (** declared resource bound exceeds the target policy *)

exception Link_failure of failure

val name : t -> string
val imports : t -> (string * string) list
val cert_valid : t -> bool

val budget : t -> Verifier.budget option
(** The statically inferred resource bound sealed into the certificate
    by {!Compiler.compile}, if the extension declared its op list. *)

val init : t -> linkage -> unit
(** Run the extension's initializer (used by the linker only). *)

val pp_failure : Format.formatter -> failure -> unit

module Compiler : sig
  exception Compile_error of string

  val compile :
    ?ops:Verifier.op list ->
    name:string -> imports:(string * string) list -> (linkage -> unit) -> t
  (** Type-check (statically validate) and sign an extension.  When
      [ops] declares the handler's operations, the verifier infers the
      worst-case {!Verifier.budget} and seals it into the certificate;
      the linker then enforces it against the target domain's policy. *)

  val forge :
    name:string -> imports:(string * string) list -> (linkage -> unit) -> t
  (** An unsigned extension, for demonstrating linker rejection. *)
end
