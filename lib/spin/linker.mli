(** Dynamic linking and unlinking of extensions into protection domains.

    Solves the paper's "install" problem: code enters the kernel only if
    it is compiler-signed and all of its imports resolve inside the domain
    it is linked against.  Unlinking reverses every installation the
    extension made. *)

type linked
(** A successfully linked extension instance. *)

val link :
  ?policy:Verifier.policy ->
  domain:Domain.t -> Extension.t -> (linked, Extension.failure) result
(** Verify, resolve and initialize.  On failure the kernel is left exactly
    as it was.  With [policy], the certificate's static resource bound
    ({!Extension.budget}) is checked first: an over-budget (or, under
    [require_cert], uncertified) extension fails with
    [Over_budget] before any of its code runs.  Per-event policies
    ({!Dispatcher.set_policy}) are additionally enforced at each
    [install] the initializer makes, and surface the same way. *)

val unlink : linked -> unit
(** Run the extension's cleanups (handler uninstalls etc.).  Idempotent. *)

val is_linked : linked -> bool
val extension : linked -> Extension.t
val domain : linked -> Domain.t

(** {1 Live replacement} *)

type swap = {
  swap_installed : int;  (** handlers the new generation installed *)
  swap_retired : int;    (** old-generation handlers removed from dispatch *)
  swap_inflight : int;
      (** deliveries still queued to retired handlers at the flip; they
          drain on the old generation ({!Dispatcher.swap_inflight}
          reaches 0 when the last has run) *)
}

val replace :
  ?policy:Verifier.policy ->
  disp:Dispatcher.t -> domain:Domain.t ->
  linked -> Extension.t -> (linked * swap, Extension.failure) result
(** [replace ~disp ~domain old next] atomically substitutes [next] for
    the running [old]: the new generation's installs are staged and made
    visible in one step, then the old generation is retired — its
    handlers leave dispatch immediately but deliveries queued to them
    before the flip still run to completion.  At every instant a
    matching packet is delivered to exactly one generation; zero are
    dropped.  On link failure the old generation is left running and
    untouched. *)
