(** Static resource verification for extensions (ROADMAP item 3a).

    The paper's safety story stops at the language boundary: typesafe
    code plus the {!Ephemeral} runtime time budget.  Rex-style
    verification moves the resource bound to {e load time}: an extension
    declares the operations its handler performs as a list of {!op}s —
    a vocabulary mirroring the {!Ephemeral} action constructors plus
    statically bounded loops — and the verifier folds that list into a
    {!budget} of instructions, buffer allocations and modelled CPU
    time.  The budget travels inside the compiler certificate
    ({!Extension.Compiler.compile}) and is checked against the target
    event's {!policy} at install time; a handler whose declared bound
    exceeds the policy is rejected with a typed {!violation} before any
    of its code runs.

    The same module defines the {!quarantine} policy the dispatcher
    enforces at run time: an installed extension whose {e measured}
    ledger (CPU, allocations, terminations) blows its limits inside a
    sliding window is evicted (ROADMAP item 3a's kernel-driven
    quarantine). *)

(** One operation of a handler's declared program.  Costs mirror the
    {!Ephemeral} constructors (1 instruction ~ 1 modelled ns). *)
type op =
  | Enqueue  (** bounded queue push ({!Ephemeral.enqueue}, ~300 insns) *)
  | Count  (** counter increment ({!Ephemeral.count}, ~100 insns) *)
  | Work of { insns : int }  (** opaque straight-line block *)
  | Alloc of { mbufs : int }  (** buffer allocation (~200 insns each) *)
  | Loop of { iters : int; body : op list }
      (** statically bounded loop: [iters] is a compile-time constant —
          an unbounded loop is unrepresentable, which is the Rex claim *)

type budget = {
  b_insns : int;  (** worst-case instructions per invocation *)
  b_allocs : int;  (** worst-case mbuf allocations per invocation *)
  b_cost_ns : int;  (** worst-case modelled CPU ns per invocation *)
}

val infer : op list -> budget
(** Fold a declared op list into its static worst-case budget.
    Total by construction: the only iteration is {!Loop} with a
    constant trip count. *)

val cost : budget -> Sim.Stime.t
(** The budget's CPU bound as simulated time — the default runtime
    budget for an ephemeral handler installed with a certificate. *)

(** Per-event admission policy for declared budgets. *)
type policy = {
  p_max_insns : int;
  p_max_allocs : int;
  p_max_cost_ns : int;
  p_require_cert : bool;
      (** when true, a handler with no declared op list is rejected
          outright — the event accepts only certified extensions *)
}

val policy :
  ?max_insns:int -> ?max_allocs:int -> ?max_cost_ns:int ->
  ?require_cert:bool -> unit -> policy
(** Build a policy; omitted limits are unlimited, [require_cert]
    defaults to [false]. *)

(** A typed admission failure: which resource, what the handler
    declared, what the policy allows. *)
type violation = { v_resource : string; v_declared : int; v_allowed : int }

val admit : policy -> budget option -> (unit, violation) result
(** Check a declared budget ([None] = uncertified) against a policy. *)

(** Runtime eviction policy: limits on the {e measured} per-extension
    ledger within a sliding window of [q_window_ns] simulated time. *)
type quarantine = {
  q_window_ns : int;
  q_max_cpu_ns : int;
  q_max_allocs : int;
  q_max_terminations : int;
}

val quarantine :
  window_ns:int -> ?max_cpu_ns:int -> ?max_allocs:int ->
  ?max_terminations:int -> unit -> quarantine
(** Build a quarantine policy; omitted limits are unlimited. *)

val pp_budget : Format.formatter -> budget -> unit
val pp_violation : Format.formatter -> violation -> unit
