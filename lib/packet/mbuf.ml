(* Berkeley-style packet buffers (mbufs), the packet representation Plexus
   uses to move data through the protocol graph (paper section 3.4).

   An mbuf is a chain of segments; each segment is a window onto a
   ref-counted byte buffer (a [store]) with headroom in front so that
   protocol layers can prepend headers without copying.  Stores are
   shared: [sub] carves a zero-copy sub-chain out of an existing chain
   (fragmentation), and [take] transfers a whole chain between owners
   (the driver handing a frame across the simulated wire).  A store's
   bytes return to a size-classed free list when its last reference is
   dropped, so steady-state traffic recycles buffers instead of leaking
   them to the GC.

   The ['perm] phantom type parameter mirrors the paper's READONLY
   discipline: handlers receive [ro] mbufs and the type checker rejects
   writes through them; a writable copy must be made explicitly with
   [copy_rw] (Figure 4's explicit copy-on-write). *)

type store = { data : Bytes.t; mutable refs : int; cls : int }
(* [cls] is the free-list size class, or -1 for unpooled (oversized)
   buffers that go back to the GC. *)

type seg = { store : store; mutable off : int; mutable len : int }

(* Segments are a deque: [front] in order, [back] reversed, so both
   [extend_back] and [concat] append in O(1)/O(|donor|) instead of the
   O(n^2) of repeated list append.  [nsegs] caches the count. *)
type raw = {
  mutable front : seg list;
  mutable back : seg list; (* reversed *)
  mutable total : int;
  mutable nsegs : int;
  mutable freed : bool;
  mutable mark : int;
      (* flight-recorder trace word: 0 = untraced, otherwise the sampled
         packet id.  Metadata, not payload — it rides along [take] and
         [sub] so a sampled frame keeps its identity across ownership
         transfer and fragmentation, but never touches the wire bytes. *)
}

type ro = [ `Ro ]
type rw = [ `Rw ]
type 'perm t = raw

let default_headroom = 64

(* ---- the recycling free list ---------------------------------------- *)

(* Size classes cover the traffic the experiments generate: small
   control frames, MTU-sized frames (1500 + headroom), and the 12.5 KB
   video datagrams.  Requests above the largest class are served by the
   GC directly (cls = -1). *)
let classes = [| 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768 |]
let max_freelist_depth = 512

(* The free lists are domain-local (one recycling pool per OCaml domain,
   via [Domain.DLS]): the parallel datapath runs one packet-processing
   stack per domain, and a shared pool would let two domains pop the
   same buffer — silent payload aliasing.  Domain-locality also means a
   buffer freed on a worker is recycled by that worker, which is the
   per-domain mbuf-pool model the multicore datapath wants anyway.
   Single-domain programs see exactly the old behaviour. *)
type freelist_state = {
  freelists : Bytes.t list array;
  freelist_depths : int array;
}

let freelist_key =
  Stdlib.Domain.DLS.new_key (fun () ->
      {
        freelists = Array.make (Array.length classes) [];
        freelist_depths = Array.make (Array.length classes) 0;
      })

let class_of size =
  let n = Array.length classes in
  let rec go i = if i >= n then -1 else if classes.(i) >= size then i else go (i + 1) in
  go 0

(* Drains the *calling domain's* free lists. *)
let drain_freelist () =
  let fl = Stdlib.Domain.DLS.get freelist_key in
  Array.fill fl.freelists 0 (Array.length fl.freelists) [];
  Array.fill fl.freelist_depths 0 (Array.length fl.freelist_depths) 0

(* Allocate a store of at least [size] usable bytes, recycling a
   free-listed buffer of the right class when one is available. *)
let alloc_store size =
  let cls = class_of size in
  if cls >= 0 then begin
    let fl = Stdlib.Domain.DLS.get freelist_key in
    match fl.freelists.(cls) with
    | data :: rest ->
        fl.freelists.(cls) <- rest;
        fl.freelist_depths.(cls) <- fl.freelist_depths.(cls) - 1;
        Metrics.count_recycle ();
        { data; refs = 1; cls }
    | [] ->
        Metrics.count_alloc ();
        { data = Bytes.create classes.(cls); refs = 1; cls }
  end
  else begin
    Metrics.count_alloc ();
    { data = Bytes.create size; refs = 1; cls }
  end

let incref store = store.refs <- store.refs + 1

let decref store =
  store.refs <- store.refs - 1;
  if store.refs = 0 && store.cls >= 0 then begin
    let fl = Stdlib.Domain.DLS.get freelist_key in
    if fl.freelist_depths.(store.cls) < max_freelist_depth then begin
      fl.freelists.(store.cls) <- store.data :: fl.freelists.(store.cls);
      fl.freelist_depths.(store.cls) <- fl.freelist_depths.(store.cls) + 1
    end
  end

(* ---- allocation accounting ------------------------------------------- *)

(* Stands in for the kernel mbuf pool that the SPIN "packet buffer"
   protection domain exposes to most extensions. *)
let allocated = ref 0
let live = ref 0

let stats () = (!allocated, !live)
let total_allocated () = !allocated

let reset_stats () =
  allocated := 0;
  live := 0

(* ---- chain plumbing --------------------------------------------------- *)

let normalize t =
  if t.back <> [] then begin
    t.front <- t.front @ List.rev t.back;
    t.back <- []
  end

let iter_segs f t =
  List.iter f t.front;
  if t.back <> [] then List.iter f (List.rev t.back)

let mk_raw segs total nsegs =
  incr allocated;
  incr live;
  { front = segs; back = []; total; nsegs; freed = false; mark = 0 }

let alloc ?(headroom = default_headroom) len : rw t =
  if len < 0 || headroom < 0 then invalid_arg "Mbuf.alloc";
  let store = alloc_store (headroom + len) in
  (* recycled buffers are dirty; the visible region must read as zeros *)
  Bytes.fill store.data headroom len '\000';
  mk_raw [ { store; off = headroom; len } ] len 1

let free t =
  if t.freed then invalid_arg "Mbuf.free: double free";
  t.freed <- true;
  decr live;
  iter_segs (fun seg -> decref seg.store) t;
  t.front <- [];
  t.back <- [];
  t.total <- 0;
  t.nsegs <- 0

let length t = t.total
let num_segs t = t.nsegs
let is_empty t = t.total = 0
let mark t = t.mark
let set_mark t m = t.mark <- m

let of_string s : rw t =
  let len = String.length s in
  let store = alloc_store (default_headroom + len) in
  Bytes.blit_string s 0 store.data default_headroom len;
  Metrics.count_copy len;
  mk_raw [ { store; off = default_headroom; len } ] len 1

let seg_view seg = View.of_bytes ~off:seg.off ~len:seg.len seg.store.data

let views (t : 'p t) : 'p View.t list =
  let acc = ref [] in
  iter_segs (fun seg -> acc := View.unsafe_cast (seg_view seg) :: !acc) t;
  List.rev !acc

let ro (t : _ t) : ro t = t

(* Uncounted flatten for structural operations (equality, debug print);
   [to_string] below is the counted marshalling entry point. *)
let flatten_string t =
  let b = Buffer.create t.total in
  iter_segs (fun seg -> Buffer.add_subbytes b seg.store.data seg.off seg.len) t;
  Buffer.contents b

let to_string t =
  if t.total > 0 then Metrics.count_copy t.total;
  flatten_string t

(* Make at least [n] bytes contiguous at the head of the chain, copying
   (like BSD m_pullup) only when the first segment is too short. *)
let pullup (t : _ t) n =
  if n > t.total then invalid_arg "Mbuf.pullup: chain too short";
  normalize t;
  match t.front with
  | first :: _ when first.len >= n -> ()
  | _ ->
      let store = alloc_store (default_headroom + t.total) in
      let pos = ref default_headroom in
      iter_segs
        (fun seg ->
          Bytes.blit seg.store.data seg.off store.data !pos seg.len;
          pos := !pos + seg.len;
          decref seg.store)
        t;
      Metrics.count_copy t.total;
      t.front <- [ { store; off = default_headroom; len = t.total } ];
      t.back <- [];
      t.nsegs <- 1

let view (t : 'p t) : 'p View.t =
  normalize t;
  match t.front with
  | [] -> View.unsafe_cast (View.create 0)
  | [ seg ] -> View.unsafe_cast (seg_view seg)
  | _ :: _ ->
      (* Multi-segment chains are flattened on demand; protocol code calls
         [pullup] first — or uses [views] — to control when this copy
         happens. *)
      pullup t t.total;
      (match t.front with
      | [ s ] -> View.unsafe_cast (seg_view s)
      | _ -> assert false)

let copy_rw (t : _ t) : rw t =
  let store = alloc_store (default_headroom + t.total) in
  let pos = ref default_headroom in
  iter_segs
    (fun seg ->
      Bytes.blit seg.store.data seg.off store.data !pos seg.len;
      pos := !pos + seg.len)
    t;
  if t.total > 0 then Metrics.count_copy t.total;
  let r = mk_raw [ { store; off = default_headroom; len = t.total } ] t.total 1 in
  r.mark <- t.mark;
  r

(* A segment's headroom (or tailroom) may only be written when this
   chain is the store's sole owner — fragments sharing a payload buffer
   must not scribble on each other's bytes. *)
let exclusive seg = seg.store.refs = 1

let prepend (t : rw t) n : View.rw View.t =
  if n < 0 then invalid_arg "Mbuf.prepend";
  normalize t;
  (match t.front with
  | first :: _ when first.off >= n && exclusive first ->
      first.off <- first.off - n;
      first.len <- first.len + n;
      Bytes.fill first.store.data first.off n '\000'
  | front ->
      let store = alloc_store (default_headroom + n) in
      Bytes.fill store.data default_headroom n '\000';
      t.front <- { store; off = default_headroom; len = n } :: front;
      t.nsegs <- t.nsegs + 1);
  t.total <- t.total + n;
  match t.front with
  | first :: _ -> View.of_bytes ~off:first.off ~len:n first.store.data
  | [] -> assert false

let extend_back (t : rw t) n : View.rw View.t =
  if n < 0 then invalid_arg "Mbuf.extend_back";
  let rec last = function [ x ] -> Some x | _ :: tl -> last tl | [] -> None in
  let tail =
    match t.back with s :: _ -> Some s | [] -> last t.front
  in
  let seg =
    match tail with
    | Some seg
      when seg.off + seg.len + n <= Bytes.length seg.store.data && exclusive seg
      ->
        Bytes.fill seg.store.data (seg.off + seg.len) n '\000';
        seg.len <- seg.len + n;
        seg
    | _ ->
        let store = alloc_store n in
        Bytes.fill store.data 0 n '\000';
        let seg = { store; off = 0; len = n } in
        t.back <- seg :: t.back;
        t.nsegs <- t.nsegs + 1;
        seg
  in
  t.total <- t.total + n;
  View.of_bytes ~off:(seg.off + seg.len - n) ~len:n seg.store.data

let trim_front (t : rw t) n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.trim_front";
  normalize t;
  let rec go n segs =
    if n = 0 then segs
    else
      match segs with
      | [] -> assert false
      | seg :: tl ->
          if seg.len <= n then begin
            decref seg.store;
            t.nsegs <- t.nsegs - 1;
            go (n - seg.len) tl
          end
          else begin
            seg.off <- seg.off + n;
            seg.len <- seg.len - n;
            segs
          end
  in
  t.front <- go n t.front;
  t.total <- t.total - n

let trim_back (t : rw t) n =
  if n < 0 || n > t.total then invalid_arg "Mbuf.trim_back";
  normalize t;
  let target = t.total - n in
  let rec go kept segs =
    match segs with
    | [] -> []
    | seg :: tl ->
        if kept >= target then begin
          List.iter
            (fun s ->
              decref s.store;
              t.nsegs <- t.nsegs - 1)
            segs;
          []
        end
        else if kept + seg.len <= target then seg :: go (kept + seg.len) tl
        else begin
          List.iter
            (fun s ->
              decref s.store;
              t.nsegs <- t.nsegs - 1)
            tl;
          seg.len <- target - kept;
          [ seg ]
        end
  in
  t.front <- go 0 t.front;
  t.total <- target

let concat (a : rw t) (b : rw t) =
  let b_segs = if b.back = [] then b.front else b.front @ List.rev b.back in
  (* rev(rev_append b_segs a.back) = rev a.back @ b_segs: b's segments
     land after a's in order, without retraversing a's chain. *)
  a.back <- List.rev_append b_segs a.back;
  a.total <- a.total + b.total;
  a.nsegs <- a.nsegs + b.nsegs;
  b.front <- [];
  b.back <- [];
  b.total <- 0;
  b.nsegs <- 0

(* Zero-copy sub-chain: the result shares the underlying stores (their
   refcounts grow), so no payload byte moves.  Writable sub-chains of a
   writable parent are for trusted composition code (fragmentation);
   sharing means headroom tricks automatically fall back to fresh header
   segments ([exclusive] above). *)
let sub (t : 'p t) ~off ~len : 'p t =
  if off < 0 || len < 0 || off + len > t.total then invalid_arg "Mbuf.sub";
  let segs = ref [] and nsegs = ref 0 in
  let pos = ref 0 in
  iter_segs
    (fun seg ->
      let seg_start = !pos and seg_end = !pos + seg.len in
      pos := seg_end;
      let lo = max seg_start off and hi = min seg_end (off + len) in
      if lo < hi then begin
        incref seg.store;
        segs :=
          { store = seg.store; off = seg.off + (lo - seg_start); len = hi - lo }
          :: !segs;
        incr nsegs
      end)
    t;
  let r = mk_raw (List.rev !segs) len !nsegs in
  r.mark <- t.mark;
  r

(* Ownership transfer: the result takes over [t]'s segments and [t]
   becomes empty.  This is how the driver consumes a frame at transmit
   time — the sender keeps a (now empty) handle and can no longer
   scribble on bytes that are on the wire. *)
let take (t : 'p t) : 'p t =
  let r =
    {
      front = t.front;
      back = t.back;
      total = t.total;
      nsegs = t.nsegs;
      freed = false;
      mark = t.mark;
    }
  in
  t.front <- [];
  t.back <- [];
  t.total <- 0;
  t.nsegs <- 0;
  r

let sub_copy (t : _ t) ~off ~len : rw t =
  if off < 0 || len < 0 || off + len > t.total then invalid_arg "Mbuf.sub_copy";
  let store = alloc_store (default_headroom + len) in
  let pos = ref 0 in
  iter_segs
    (fun seg ->
      let seg_start = !pos and seg_end = !pos + seg.len in
      pos := seg_end;
      let lo = max seg_start off and hi = min seg_end (off + len) in
      if lo < hi then
        Bytes.blit seg.store.data
          (seg.off + (lo - seg_start))
          store.data
          (default_headroom + (lo - off))
          (hi - lo))
    t;
  if len > 0 then Metrics.count_copy len;
  let r = mk_raw [ { store; off = default_headroom; len } ] len 1 in
  r.mark <- t.mark;
  r

let equal a b = a.total = b.total && flatten_string a = flatten_string b

let pp ppf t =
  Fmt.pf ppf "mbuf(len=%d segs=%d %a)" t.total t.nsegs View.pp
    (View.of_string (flatten_string t))
