(* The Internet checksum (RFC 1071): one's-complement sum of 16-bit
   big-endian words.  Used by IP, ICMP, UDP and TCP.

   The fast path folds a word at a time with the runtime's native
   big-endian 16-bit loads, and carries a parity bit across windows so a
   scatter-gather chain checksums correctly even when interior segments
   have odd length — no pullup, no flattening.  A byte-at-a-time
   implementation is kept as executable reference semantics. *)

(* Running state: the unfolded sum plus whether the byte count so far is
   odd (i.e. the last byte consumed was the high half of an open word). *)
let fold16 (sum, odd) (v : _ View.t) =
  let data = View.unsafe_data v and off = View.unsafe_off v in
  let len = View.length v in
  let sum = ref sum and i = ref 0 in
  if odd && len > 0 then begin
    (* complete the word opened by the previous window: its high byte is
       already in the sum, this byte is the low half *)
    sum := !sum + Char.code (Bytes.get data off);
    incr i
  end;
  let stop = len - 1 in
  while !i < stop do
    sum := !sum + Bytes.get_uint16_be data (off + !i);
    i := !i + 2
  done;
  if !i < len then
    sum := !sum + (Char.code (Bytes.get data (off + !i)) lsl 8);
  (!sum, if len = 0 then odd else odd <> (len land 1 = 1))

let fold_words acc v = fst (fold16 (acc, false) v)

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let of_view v = finish (fold_words 0 v)

let of_views vs = finish (fst (List.fold_left fold16 (0, false) vs))

let of_mbuf m = of_views (Mbuf.views m)

(* ---- reference semantics: one byte at a time ------------------------- *)

let fold_bytes state v =
  View.fold_u8
    (fun (sum, odd) b ->
      if odd then (sum + b, false) else (sum + (b lsl 8), true))
    state v

let of_views_bytewise vs = finish (fst (List.fold_left fold_bytes (0, false) vs))

let of_view_bytewise v = of_views_bytewise [ v ]

(* One's-complement addition of two 16-bit partial sums, used for the
   pseudo-header checksums of UDP and TCP. *)
let add16 a b =
  let s = a + b in
  (s land 0xffff) + (s lsr 16)

let valid v = of_view v = 0

(* RFC 1624 incremental update: recompute a checksum after a 16-bit field
   changed from [old_w] to [new_w].  Used by the in-kernel forwarder when it
   rewrites addresses/ports without touching the rest of the packet. *)
let update ~cksum ~old_w ~new_w =
  let hc' = add16 (add16 (lnot cksum land 0xffff) (lnot old_w land 0xffff)) new_w in
  lnot ((hc' land 0xffff) + (hc' lsr 16)) land 0xffff
