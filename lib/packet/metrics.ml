(* Global datapath accounting.

   The paper's data-movement claim is structural: packets move through
   the protocol graph as read-only mbuf chains and are *not* copied on
   the common path (section 3.4).  These counters make that claim
   checkable — benches and tests reset them, drive a path, and assert
   "zero copies here".  Every payload-byte copy in the packet substrate
   (mbuf flatten/copy, view copy/blit) and every fresh segment-buffer
   allocation is counted; recycled buffers drawn from the free list are
   counted separately so allocation pressure on the GC is visible. *)

(* The counters live in a process-global Observe registry; the refs
   exposed here ARE the registry's — asserting on [!Metrics.copies] and
   snapshotting the registry read the same cell. *)
let registry = Observe.Registry.create ~name:"packet" ()
let copies = Observe.Registry.counter registry "packet.copies"
let bytes_copied = Observe.Registry.counter registry "packet.bytes_copied"

(* fresh Bytes.t segment buffers *)
let allocs = Observe.Registry.counter registry "packet.allocs"

(* buffers satisfied from the free list *)
let recycled = Observe.Registry.counter registry "packet.recycled"

let count_copy n =
  incr copies;
  bytes_copied := !bytes_copied + n

let count_alloc () = incr allocs
let count_recycle () = incr recycled

let reset () =
  copies := 0;
  bytes_copied := 0;
  allocs := 0;
  recycled := 0

type snapshot = {
  copies : int;
  bytes_copied : int;
  allocs : int;
  recycled : int;
}

let snapshot () =
  {
    copies = !copies;
    bytes_copied = !bytes_copied;
    allocs = !allocs;
    recycled = !recycled;
  }

let pp ppf s =
  Fmt.pf ppf "copies=%d bytes_copied=%d allocs=%d recycled=%d" s.copies
    s.bytes_copied s.allocs s.recycled
