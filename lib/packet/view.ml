(* The analogue of the Modula-3 VIEW operator from the paper (section 3.2).

   VIEW(a, T) lets typesafe code interpret an array of bytes as a structured
   value without copying.  Here a view is a bounds-checked window onto a
   Bytes.t; all accesses are big-endian (network order) and checked, so no
   extension can read or write outside the window.  The permission phantom
   type distinguishes read-only views (what handlers receive, per the
   paper's READONLY packets) from writable ones. *)

type ro = [ `Ro ]
type rw = [ `Rw ]

exception Out_of_bounds of { index : int; width : int; length : int }

type raw = { data : Bytes.t; off : int; len : int }
type 'perm t = raw

let of_bytes ?(off = 0) ?len data : rw t =
  let len = match len with Some l -> l | None -> Bytes.length data - off in
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "View.of_bytes: window outside buffer";
  { data; off; len }

let of_string s : ro t = of_bytes (Bytes.of_string s)

let create len : rw t =
  if len < 0 then invalid_arg "View.create";
  { data = Bytes.make len '\000'; off = 0; len }

let length v = v.len

let ro (v : _ t) : ro t = v

let sub (v : 'p t) ~off ~len : 'p t =
  if off < 0 || len < 0 || off + len > v.len then
    raise (Out_of_bounds { index = off; width = len; length = v.len });
  { v with off = v.off + off; len }

let shift (v : 'p t) n : 'p t = sub v ~off:n ~len:(v.len - n)

let check v index width =
  if index < 0 || width < 0 || index + width > v.len then
    raise (Out_of_bounds { index; width; length = v.len })

let get_u8 v i =
  check v i 1;
  Char.code (Bytes.get v.data (v.off + i))

(* Multi-byte accessors do one window check here, then use the runtime's
   native big-endian primitives — a single bounds-checked wide load
   instead of per-byte gets. *)
let get_u16 v i =
  check v i 2;
  Bytes.get_uint16_be v.data (v.off + i)

let get_u32 v i =
  check v i 4;
  Int32.to_int (Bytes.get_int32_be v.data (v.off + i)) land 0xFFFFFFFF

let get_string v ~off ~len =
  check v off len;
  Bytes.sub_string v.data (v.off + off) len

let to_string v = get_string v ~off:0 ~len:v.len

let set_u8 (v : rw t) i x =
  check v i 1;
  Bytes.set v.data (v.off + i) (Char.chr (x land 0xff))

let set_u16 (v : rw t) i x =
  check v i 2;
  Bytes.set_uint16_be v.data (v.off + i) (x land 0xffff)

let set_u32 (v : rw t) i x =
  check v i 4;
  Bytes.set_int32_be v.data (v.off + i) (Int32.of_int x)

let set_string (v : rw t) ~off s =
  check v off (String.length s);
  Bytes.blit_string s 0 v.data (v.off + off) (String.length s)

let blit ~(src : _ t) ~(dst : rw t) ~src_off ~dst_off ~len =
  check src src_off len;
  check dst dst_off len;
  if len > 0 then Metrics.count_copy len;
  Bytes.blit src.data (src.off + src_off) dst.data (dst.off + dst_off) len

let fill (v : rw t) c = Bytes.fill v.data v.off v.len c

let copy (v : _ t) : rw t =
  if v.len > 0 then Metrics.count_copy v.len;
  { data = Bytes.sub v.data v.off v.len; off = 0; len = v.len }

let equal a b = to_string a = to_string b

(* Internal accessors for zero-copy cooperation inside this library
   (checksum, mbuf).  Not exposed in the interface. *)
let unsafe_data v = v.data
let unsafe_off v = v.off
let unsafe_cast (v : _ t) : 'p t = v

let fold_u8 f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Char.code (Bytes.get v.data (v.off + i)))
  done;
  !acc

let pp ppf v =
  Fmt.pf ppf "@[<h>";
  for i = 0 to Stdlib.min (v.len - 1) 31 do
    if i > 0 then Fmt.sp ppf ();
    Fmt.pf ppf "%02x" (get_u8 v i)
  done;
  if v.len > 32 then Fmt.pf ppf " ...(%d bytes)" v.len;
  Fmt.pf ppf "@]"
