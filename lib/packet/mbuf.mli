(** Packet buffers (mbufs) with read-only views.

    Plexus passes packets through the protocol graph as mbufs (paper,
    section 3.4, footnote 1) and relies on the language's [READONLY]
    qualifier to prevent handlers from modifying shared packets.  Here the
    same guarantee comes from the ['perm] phantom parameter: a handler
    holding an [ro t] cannot call any mutating operation — the program does
    not type-check, exactly like [BadPacketRecv] in the paper's Figure 4.

    An mbuf is a chain of segments with headroom, so pushing a header with
    {!prepend} is O(1) and copy-free on the common path.  Segments are
    windows onto ref-counted buffers: {!sub} carves zero-copy sub-chains
    (fragmentation), {!take} transfers whole chains between owners
    (transmit), and a buffer's bytes return to a size-classed free list
    when its last reference drops, so steady traffic recycles buffers
    instead of allocating.  All payload copies and buffer allocations made
    by this module are counted in {!Metrics}. *)

type ro = [ `Ro ]
type rw = [ `Rw ]

type 'perm t
(** A packet buffer with access permission ['perm]. *)

val alloc : ?headroom:int -> int -> rw t
(** [alloc n] is a zero-filled packet of [n] bytes with header headroom
    (default 64 bytes).  The segment buffer is drawn from the free list
    when a suitable one is available. *)

val of_string : string -> rw t

val free : _ t -> unit
(** Drop the chain's references; buffers whose last reference this was
    return to the free list.  @raise Invalid_argument on double free. *)

val stats : unit -> int * int
(** [(total_allocations, live)] since the last {!reset_stats}. *)

val total_allocated : unit -> int
(** Allocation-free read of the total-allocations counter (the
    dispatcher's per-handler ledger samples this around every run). *)

val reset_stats : unit -> unit

val drain_freelist : unit -> unit
(** Empty the recycling free list (for deterministic tests/benches). *)

val length : _ t -> int

val num_segs : _ t -> int
(** O(1): the segment count is cached. *)

val is_empty : _ t -> bool

val mark : _ t -> int
(** The flight-recorder trace word: 0 (the default) means untraced,
    any other value is the sampled packet id stamped at ingress.
    Metadata, not payload — it is carried across {!take}, {!sub},
    {!copy_rw} and {!sub_copy} but never serialised to the wire. *)

val set_mark : _ t -> int -> unit
(** Stamp the trace word.  Permitted on read-only mbufs: the mark is
    out-of-band metadata, not packet bytes. *)

val ro : _ t -> ro t
(** Forget write permission (zero-cost, shares the bytes).  This is what a
    protocol layer does before raising a [PacketRecv] event. *)

val copy_rw : _ t -> rw t
(** Deep copy with write permission — the explicit copy-on-write of the
    paper's [GoodPacketRecv]. *)

val view : 'p t -> 'p View.t
(** A view of the packet's bytes.  If the chain has several segments they
    are first made contiguous (copying); call {!pullup} to bound how much
    must be contiguous instead. *)

val views : 'p t -> 'p View.t list
(** Per-segment views, zero-copy (for checksumming chains). *)

val pullup : _ t -> int -> unit
(** [pullup t n] ensures the first segment holds at least [n] contiguous
    bytes, copying only if needed (BSD [m_pullup]). *)

val prepend : rw t -> int -> View.rw View.t
(** [prepend t n] grows the packet by [n] bytes at the front — O(1) and
    allocation-free when headroom suffices and the first segment's buffer
    is not shared — and returns a writable view of the new (zeroed)
    header region. *)

val extend_back : rw t -> int -> View.rw View.t
(** Grow the packet at the tail, returning a view of the new region.
    O(1) amortized (reversed-tail representation). *)

val trim_front : rw t -> int -> unit
(** Drop [n] bytes from the front (e.g. stepping past a header on input).
    Fully-consumed segments release their buffer references. *)

val trim_back : rw t -> int -> unit

val concat : rw t -> rw t -> unit
(** [concat a b] moves all of [b]'s segments to the end of [a] without
    copying; [b] becomes empty.  O(|b|), independent of [a]'s length. *)

val sub : 'p t -> off:int -> len:int -> 'p t
(** Zero-copy sub-chain: shares the underlying buffers (ref-counted), no
    payload byte moves.  A writable sub-chain of a writable parent is for
    trusted composition code (e.g. fragmentation) — writes through it are
    visible to the parent, but headroom/tailroom growth on shared buffers
    automatically falls back to fresh segments. *)

val take : 'p t -> 'p t
(** Ownership transfer: returns a chain holding all of [t]'s segments and
    empties [t].  The device uses this to consume a frame at transmit
    time, so the sender cannot scribble on bytes already on the wire. *)

val sub_copy : _ t -> off:int -> len:int -> rw t
(** Copy of a byte range as a fresh packet. *)

val to_string : _ t -> string
val equal : _ t -> _ t -> bool
val pp : Format.formatter -> _ t -> unit
