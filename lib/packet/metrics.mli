(** Global datapath copy/allocation accounting.

    Tests and benches use these counters to *prove* zero-copy claims:
    reset, drive a path, assert.  [copies]/[bytes_copied] count every
    payload-byte copy made by the packet substrate (mbuf flattening,
    [View.copy], [View.blit], string marshalling); [allocs] counts fresh
    segment-buffer allocations (GC pressure); [recycled] counts buffers
    satisfied from the mbuf free list instead. *)

type snapshot = {
  copies : int;
  bytes_copied : int;
  allocs : int;
  recycled : int;
}

val snapshot : unit -> snapshot
val reset : unit -> unit

val registry : Observe.Registry.t
(** The process-global packet registry; the refs below are its
    [packet.*] counters, so registry snapshots and direct ref reads
    always agree. *)

val copies : int ref
val bytes_copied : int ref
val allocs : int ref
val recycled : int ref

(**/**)

(* Counting hooks for the packet substrate itself. *)
val count_copy : int -> unit
val count_alloc : unit -> unit
val count_recycle : unit -> unit

(**/**)

val pp : Format.formatter -> snapshot -> unit
