(* Bounded packet-buffer pools.

   SPIN exposes "the interface for allocating packet buffers" to most
   extensions; a real kernel bounds that resource.  A pool enforces a
   buffer budget: allocation fails (and is counted) when the budget is
   exhausted, which is how receive paths shed load when a consumer falls
   behind rather than growing without bound.

   Budget slots and buffer memory are separate concerns: the memory
   behind an mbuf comes from (and returns to) Mbuf's size-classed
   recycling free list; a pool accounts who may hold how many buffers at
   once.  Receive rings that hand chains onward without allocating use
   the bare [reserve]/[release] slot operations. *)

type t = {
  name : string;
  capacity : int;
  mutable live : int;
  mutable allocations : int;
  mutable failures : int;
  mutable peak : int;
  mutable underflows : int;
  (* backpressure watermarks: when occupancy crosses [hi_mark] the pool
     is "pressured" and the subscriber is told to slow down; it stays
     pressured until occupancy falls back to [lo_mark] (hysteresis, so a
     consumer hovering at the boundary doesn't flap). *)
  mutable hi_mark : int;
  mutable lo_mark : int;
  mutable pressured : bool;
  mutable pressure_events : int;
  mutable on_pressure : (bool -> unit) option;
}

let create ?(name = "pool") ~capacity () =
  if capacity <= 0 then invalid_arg "Pool.create: capacity must be positive";
  {
    name;
    capacity;
    live = 0;
    allocations = 0;
    failures = 0;
    peak = 0;
    underflows = 0;
    hi_mark = capacity + 1;
    lo_mark = 0;
    pressured = false;
    pressure_events = 0;
    on_pressure = None;
  }

let name t = t.name
let capacity t = t.capacity
let live t = t.live
let allocations t = t.allocations
let failures t = t.failures
let peak t = t.peak
let underflows t = t.underflows

let set_pressure t ?(hi = 0.75) ?(lo = 0.5) f =
  if hi <= 0. || hi > 1. || lo < 0. || lo > hi then
    invalid_arg "Pool.set_pressure: watermarks";
  t.hi_mark <- max 1 (int_of_float (ceil (hi *. float_of_int t.capacity)));
  t.lo_mark <- int_of_float (floor (lo *. float_of_int t.capacity));
  t.on_pressure <- Some f

let pressured t = t.pressured
let pressure_events t = t.pressure_events

let[@inline] check_rise t =
  if (not t.pressured) && t.live >= t.hi_mark then begin
    t.pressured <- true;
    t.pressure_events <- t.pressure_events + 1;
    match t.on_pressure with Some f -> f true | None -> ()
  end

let[@inline] check_fall t =
  if t.pressured && t.live <= t.lo_mark then begin
    t.pressured <- false;
    match t.on_pressure with Some f -> f false | None -> ()
  end

let reserve t =
  if t.live >= t.capacity then begin
    t.failures <- t.failures + 1;
    false
  end
  else begin
    t.live <- t.live + 1;
    t.allocations <- t.allocations + 1;
    if t.live > t.peak then t.peak <- t.live;
    check_rise t;
    true
  end

(* Batched slot accounting: one bounds check and one counter update for
   [n] frames arriving back to back.  Grants as many of the [n] slots as
   the budget allows and counts the remainder as failures. *)
let reserve_n t n =
  if n < 0 then invalid_arg "Pool.reserve_n: negative count";
  let granted = min n (t.capacity - t.live) in
  t.live <- t.live + granted;
  t.allocations <- t.allocations + granted;
  if t.live > t.peak then t.peak <- t.live;
  if granted > 0 then check_rise t;
  if granted < n then t.failures <- t.failures + (n - granted);
  granted

let release t =
  if t.live = 0 then begin
    (* an underflow means a slot was given back twice — a double free.
       The seed silently swallowed this; now it is counted and fatal. *)
    t.underflows <- t.underflows + 1;
    invalid_arg (t.name ^ ": pool slot released twice (double free)")
  end;
  t.live <- t.live - 1;
  check_fall t

let release_n t n =
  if n < 0 then invalid_arg "Pool.release_n: negative count";
  if t.live < n then begin
    t.underflows <- t.underflows + 1;
    invalid_arg (t.name ^ ": pool slots released twice (double free)")
  end;
  t.live <- t.live - n;
  check_fall t

let alloc t ?headroom len =
  if reserve t then Some (Mbuf.alloc ?headroom len) else None

let alloc_string t s =
  match alloc t (String.length s) with
  | None -> None
  | Some m ->
      View.set_string (Mbuf.view m) ~off:0 s;
      Some m

let free t (m : _ Mbuf.t) =
  Mbuf.free m;
  release t

(* Gauges are sampling closures: nothing is paid per packet, the pool's
   fields are read only when the registry is snapshotted. *)
let register t reg ~prefix =
  Observe.Registry.gauge reg (prefix ^ ".live") (fun () -> t.live);
  Observe.Registry.gauge reg (prefix ^ ".peak") (fun () -> t.peak);
  Observe.Registry.gauge reg (prefix ^ ".failures") (fun () -> t.failures);
  Observe.Registry.gauge reg (prefix ^ ".underflows") (fun () -> t.underflows);
  Observe.Registry.gauge reg (prefix ^ ".pressure_events") (fun () ->
      t.pressure_events)

let pp ppf t =
  Fmt.pf ppf "%s: %d/%d live (peak %d, %d allocs, %d failures, %d underflows)"
    t.name t.live t.capacity t.peak t.allocations t.failures t.underflows
