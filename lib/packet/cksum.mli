(** Internet checksum (RFC 1071) with incremental update (RFC 1624).

    The fast path folds 16-bit words with native big-endian loads and is
    chain-aware: a parity bit carries across windows, so scatter-gather
    chains with odd-length interior segments checksum correctly without
    any pullup or copy.  The [_bytewise] functions are the byte-at-a-time
    reference semantics. *)

val of_view : _ View.t -> int
(** Checksum of a byte window, as a 16-bit value. *)

val of_views : _ View.t list -> int
(** Checksum of the concatenation of several windows (e.g. pseudo-header
    followed by payload, or the segments of an mbuf chain) without
    materializing the concatenation.  Windows of any length compose
    correctly. *)

val of_mbuf : _ Mbuf.t -> int
(** Checksum of an mbuf chain, zero-copy ({!of_views} over its
    segments). *)

val of_view_bytewise : _ View.t -> int
(** Reference implementation: one byte at a time. *)

val of_views_bytewise : _ View.t list -> int
(** Reference implementation over a window list. *)

val valid : _ View.t -> bool
(** True iff the window (which includes its checksum field) sums to zero. *)

val add16 : int -> int -> int
(** One's-complement 16-bit addition of partial sums. *)

val update : cksum:int -> old_w:int -> new_w:int -> int
(** Incrementally adjust [cksum] after a 16-bit word changed from [old_w]
    to [new_w], per RFC 1624. *)

val finish : int -> int
(** Fold a running sum and complement it into a final 16-bit checksum. *)

val fold_words : int -> _ View.t -> int
(** Accumulate a window into a running (unfolded) sum, starting on a word
    boundary. *)
