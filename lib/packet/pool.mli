(** Bounded packet-buffer pools (the kernel's mbuf budget).

    Allocation fails — and is counted — when the pool is exhausted;
    receive paths use this to shed load instead of growing without
    bound.  Buffer {e memory} is recycled by {!Mbuf}'s free list; a pool
    accounts budget {e slots}.  Receive rings that pass chains onward
    without allocating use {!reserve}/{!release} directly. *)

type t

val create : ?name:string -> capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val reserve : t -> bool
(** Claim a budget slot without allocating a buffer.  [false] (counted as
    a failure) when the pool is exhausted. *)

val release : t -> unit
(** Give a budget slot back.
    @raise Invalid_argument on underflow (a slot released twice — the
    double free is also counted, see {!underflows}). *)

val reserve_n : t -> int -> int
(** [reserve_n t n] claims up to [n] slots with one bounds check and one
    counter update, returning how many were granted; the shortfall is
    counted as failures.  Batched receive paths use this to amortize
    slot accounting across a burst.
    @raise Invalid_argument if [n < 0]. *)

val release_n : t -> int -> unit
(** Give [n] slots back at once.
    @raise Invalid_argument on underflow or [n < 0]. *)

val alloc : t -> ?headroom:int -> int -> Mbuf.rw Mbuf.t option
(** [None] when the pool is exhausted (counted as a failure). *)

val alloc_string : t -> string -> Mbuf.rw Mbuf.t option

val free : t -> _ Mbuf.t -> unit
(** Free the buffer and release its slot.
    @raise Invalid_argument on double free (from {!Mbuf.free} or slot
    underflow). *)

val name : t -> string
val capacity : t -> int
val live : t -> int
val allocations : t -> int
val failures : t -> int

val peak : t -> int
(** High-water mark of live buffers. *)

val underflows : t -> int
(** Number of detected double frees / slot underflows. *)

val set_pressure : t -> ?hi:float -> ?lo:float -> (bool -> unit) -> unit
(** Subscribe to occupancy watermarks: the callback fires with [true]
    when live occupancy first reaches [hi] (fraction of capacity,
    default 0.75) and with [false] once it falls back to [lo] (default
    0.5).  The gap is hysteresis — a consumer hovering at one boundary
    sees one notification, not a flap per frame.  Receive paths use this
    to start shedding {e before} the pool is exhausted and would drop
    silently.  @raise Invalid_argument unless [0 <= lo <= hi <= 1] and
    [hi > 0]. *)

val pressured : t -> bool
(** Currently above the high watermark (and not yet back below low). *)

val pressure_events : t -> int
(** How many times the pool entered the pressured state. *)

val register : t -> Observe.Registry.t -> prefix:string -> unit
(** Publish the pool's occupancy as sampling gauges
    ([<prefix>.live|peak|failures|underflows]) — read at snapshot time
    only, no per-packet cost. *)

val pp : Format.formatter -> t -> unit
