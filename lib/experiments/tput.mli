(** Section 4.2: TCP throughput table. *)

type row = {
  device : string;
  plexus_mbps : float;
  du_mbps : float;
  paper_plexus : float option;
  paper_du : float option;
  gap_p50_us : float;
      (** median gap between successive chunk arrivals at the Plexus
          sink, microseconds *)
  gap_p99_us : float;
}

val plexus_transfer : ?bytes:int -> Netsim.Costs.device -> float
(** Goodput of a bulk Plexus TCP transfer, Mb/s. *)

val plexus_transfer_timed :
  ?bytes:int -> Netsim.Costs.device -> float * Sim.Stats.Histogram.t
(** Goodput plus the chunk-arrival gap distribution (nanoseconds),
    recorded into a log-bucketed {!Sim.Stats.Histogram} — unbounded
    sample counts are exactly what {!Sim.Stats.Series} is deprecated
    for. *)

val du_transfer : ?bytes:int -> Netsim.Costs.device -> float

val run : ?bytes:int -> unit -> row list
val print : ?bytes:int -> unit -> row list
