(** Server-farm steady state: N clients behind per-client in-kernel
    forwarders hammering one HTTP server host.

    Two drivers share the chain topology
    [client_i -- forwarder_i -- server]:

    - {!run}/{!print}: an open heavy-tailed workload (Poisson request
      arrivals per client, Pareto-distributed response sizes) reporting
      goodput and p50/p99 request latency.
    - {!scale_setup}: the flow-population probe behind
      [bench --scale-only] — park [live_flows] idle established
      connections, then time fresh request/response probes through the
      loaded datapath.  Per-packet host cost must stay flat as the
      population grows 100x (the sharded-table/timer-wheel acceptance
      gate). *)

val service_port : int
val server_ip : Proto.Ipaddr.t

type result = {
  clients : int;
  completed : int;  (** measured request completions (post-warmup) *)
  errors : int;
  goodput_mbps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  evictions : int;  (** server path-cache evictions over the run *)
}

val run :
  ?params:Netsim.Costs.device ->
  ?flowcache:bool ->
  ?clients:int ->
  ?seed:int ->
  ?warmup:int ->
  ?requests:int ->
  ?mean_gap_us:float ->
  ?shape:float ->
  ?scale:float ->
  unit ->
  result
(** Heavy-tailed workload: each client loops [draw Poisson gap; GET a
    Pareto-sized page; wait for the response].  [warmup] completions are
    discarded, the next [requests] are measured.  [shape]/[scale] are
    the Pareto parameters of the drawn response size in bytes
    (quantised to log-spaced pages up to 64 KB). *)

val print :
  ?params:Netsim.Costs.device ->
  ?flowcache:bool ->
  ?clients:int ->
  ?seed:int ->
  ?warmup:int ->
  ?requests:int ->
  ?mean_gap_us:float ->
  ?shape:float ->
  ?scale:float ->
  unit ->
  result
(** [run] plus a human-readable table. *)

type probe = {
  live_flows : int;    (** idle established connections held open *)
  established : int;   (** how many completed the handshake *)
  probes : int;        (** fresh request/response exchanges this round *)
  probe_errors : int;
  packets : int;       (** wire frames carried during the probe round *)
  sim_elapsed_us : float;
  probe_goodput_mbps : float;
  probe_p50_us : float;
  probe_p99_us : float;
}

val scale_setup :
  ?params:Netsim.Costs.device ->
  ?clients:int ->
  ?seed:int ->
  ?setup_gap_us:int ->
  ?probe_gap_us:float ->
  live_flows:int ->
  probes:int ->
  unit ->
  unit ->
  probe
(** [scale_setup ~live_flows ~probes ()] builds the farm, establishes
    [live_flows] idle connections (a closed loop per client — the next
    handshake starts [setup_gap_us] after the previous completes, so
    the connect rate self-paces to the server's simulated CPU), and
    returns a thunk.  Each thunk call drives [probes] fresh HTTP exchanges
    through the loaded farm and reports the wire-frame count — wrap the
    call in a host-side timer and divide to get host ns per simulated
    packet.  The thunk is repeatable; use several rounds and take the
    minimum. *)
