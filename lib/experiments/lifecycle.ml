(* Extension lifecycle soak: verifier admission, budget quarantine and
   zero-drop hot-swap on the canonical two-host Plexus testbed.

   One run drives UDP bursts a -> b while a compiler-signed "monitor"
   extension on b's ip event is hot-swapped ({!Spin.Linker.replace})
   every few packets — the swap is triggered from a control handler that
   runs *inside* a delivery, so queued invocations to the old generation
   are routinely in flight at the flip.  The invariants checked are the
   protocol's claims:

   - zero drop: every datagram sent reaches the sink, and the sum of the
     per-generation monitor counts equals the number sent — at no
     instant did a packet see neither generation;
   - bounded drain: deliveries queued to a retired generation run to
     completion ({!Spin.Dispatcher.swap_inflight} reaches 0), with the
     drain latency measured in simulated time;
   - quarantine: a rogue extension whose measured CPU blows the event's
     {!Spin.Verifier.quarantine} window is evicted mid-traffic, without
     disturbing delivery;
   - admission: an extension whose declared budget exceeds the event's
     {!Spin.Verifier.policy} (or the link-time policy) is rejected with
     [Over_budget] before any of its code runs. *)

let udp_guard ctx =
  match ctx.Plexus.Pctx.ip with
  | Some ip -> ip.Proto.Ipv4.proto = Proto.Ipv4.proto_udp
  | None -> false

(* The monitored extension, generation [gen]: counts UDP packets into
   its own per-generation cell.  Certified with a declared op list so
   installs are admissible under any reasonable event policy. *)
let monitor_ext ~ip_ev ~counts ~gen =
  let cell = ref 0 in
  Hashtbl.replace counts gen cell;
  Spin.Extension.Compiler.compile
    ~name:(Printf.sprintf "lifecycle.monitor.gen%d" gen)
    ~ops:[ Spin.Verifier.Count ]
    ~imports:[]
    (fun lk ->
      let uninstall =
        Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
          ~label:"monitor" ~cost:(Sim.Stime.us 1)
          (fun _ -> incr cell)
      in
      lk.Spin.Extension.on_unlink uninstall)

type outcome = {
  o_sent : int;
  o_sunk : int;
  o_monitored : int;  (** sum of per-generation monitor counts *)
  o_generations : int;  (** generations that saw at least one packet *)
  o_swaps : int;
  o_max_inflight : int;
      (** most deliveries queued to the old generation at any flip *)
  o_drain_max_ns : int;
      (** worst simulated time from a flip to [swap_inflight = 0] *)
  o_quarantined : bool;  (** the rogue extension was evicted *)
  o_rejected : bool;  (** both over-budget admission paths refused *)
}

let outcome_ok o =
  o.o_sunk = o.o_sent && o.o_monitored = o.o_sent && o.o_swaps > 0
  && o.o_generations >= 2 && o.o_quarantined && o.o_rejected

let pp_outcome ppf o =
  Fmt.pf ppf
    "lifecycle{sent=%d sunk=%d monitored=%d gens=%d swaps=%d max_inflight=%d \
     drain_max=%dns quarantined=%b rejected=%b}"
    o.o_sent o.o_sunk o.o_monitored o.o_generations o.o_swaps o.o_max_inflight
    o.o_drain_max_ns o.o_quarantined o.o_rejected

let run_once ?(count = 120) ?(burst = 4) ?(swap_period = 10) ?(qcount = 10) ()
    =
  let p = Common.plexus_pair (Netsim.Costs.ethernet ()) in
  let gb = Plexus.Stack.graph p.Common.b in
  let disp = Plexus.Graph.dispatcher gb in
  let kernel_b = Plexus.Graph.kernel gb in
  let domain = Plexus.Stack.app_domain p.Common.b in
  let ip_ev =
    Plexus.Graph.recv_event (Plexus.Ip_mgr.node (Plexus.Stack.ip p.Common.b))
  in
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let gen = ref 0 in
  let swaps = ref 0 and max_inflight = ref 0 and drain_max = ref 0 in
  (* Drain poller: 1 us cadence from the flip until every delivery
     queued to the retired generation has run. *)
  let watch_drain () =
    let t0 = Sim.Engine.now p.Common.engine in
    let rec poll () =
      if Spin.Dispatcher.swap_inflight disp = 0 then begin
        let d =
          Sim.Stime.to_ns (Sim.Stime.sub (Sim.Engine.now p.Common.engine) t0)
        in
        if d > !drain_max then drain_max := d
      end
      else
        ignore
          (Sim.Engine.schedule_in p.Common.engine ~delay:(Sim.Stime.us 1) poll)
    in
    ignore (Sim.Engine.schedule_in p.Common.engine ~delay:(Sim.Stime.us 1) poll)
  in
  (* The control handler is installed before the first monitor link so
     its queued invocation runs first within a raise: the swap it
     triggers then catches the same packet's monitor delivery still
     queued — retired with pending work, the zero-drop case. *)
  let link = ref None in
  let do_swap () =
    match !link with
    | None -> ()
    | Some l -> (
        incr gen;
        match
          Spin.Kernel.replace kernel_b ~domain l
            (monitor_ext ~ip_ev ~counts ~gen:!gen)
        with
        | Ok (nl, sw) ->
            link := Some nl;
            incr swaps;
            if sw.Spin.Linker.swap_inflight > !max_inflight then
              max_inflight := sw.Spin.Linker.swap_inflight;
            if sw.Spin.Linker.swap_inflight > 0 then watch_drain ()
        | Error e ->
            failwith
              (Fmt.str "lifecycle: swap failed: %a" Spin.Extension.pp_failure e)
        )
  in
  let seen = ref 0 in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
      ~label:"swapctl" ~cost:(Sim.Stime.ns 300)
      (fun _ ->
        incr seen;
        if !seen mod swap_period = 0 then do_swap ())
  in
  (match Plexus.Stack.link p.Common.b (monitor_ext ~ip_ev ~counts ~gen:0) with
  | Ok l -> link := Some l
  | Error e ->
      failwith
        (Fmt.str "lifecycle: monitor link failed: %a" Spin.Extension.pp_failure
           e));
  (* Sink and source. *)
  let udp_b = Plexus.Stack.udp p.Common.b in
  let sunk = ref 0 in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"lifecycle-sink" ~port:9 with
  | Error _ -> assert false
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun _ -> incr sunk)
      in
      ());
  let udp_a = Plexus.Stack.udp p.Common.a in
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"lifecycle-src" ~port:5001 with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let send_burst ~base ~n =
    for k = 0 to n - 1 do
      ignore
        (Sim.Engine.schedule_in p.Common.engine ~delay:base (fun () ->
             Plexus.Udp_mgr.send udp_a client ~dst:(Common.ip_b, 9)
               (Printf.sprintf "pkt-%d" k)))
    done
  in
  (* [count] datagrams in back-to-back bursts of [burst], one burst per
     millisecond: the bursts back up b's CPU queue, so swaps triggered
     mid-burst retire the old monitor with deliveries in flight. *)
  let nbursts = (count + burst - 1) / burst in
  for i = 0 to nbursts - 1 do
    let n = min burst (count - (i * burst)) in
    send_burst ~base:(Sim.Stime.ms i) ~n
  done;
  Sim.Engine.run p.Common.engine ~max_events:20_000_000;
  (* Quarantine phase: attach a runtime eviction policy to the ip event
     and link a rogue whose measured CPU (600 us per packet) blows the
     1 ms-per-10 ms window on its second delivery.  The well-behaved
     handlers on the same event (monitor, control, the protocol graph's
     own demux) stay an order of magnitude under the limit. *)
  Spin.Dispatcher.set_quarantine ip_ev
    (Some
       (Spin.Verifier.quarantine ~window_ns:10_000_000 ~max_cpu_ns:1_000_000
          ()));
  (match
     Plexus.Stack.link p.Common.b
       (Spin.Extension.Compiler.compile ~name:"lifecycle.rogue"
          ~ops:[ Spin.Verifier.Work { insns = 600_000 } ]
          ~imports:[]
          (fun lk ->
            let uninstall =
              Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
                ~label:"rogue" ~cost:(Sim.Stime.us 600)
                (fun _ -> ())
            in
            lk.Spin.Extension.on_unlink uninstall))
   with
  | Ok _ -> ()
  | Error e ->
      failwith
        (Fmt.str "lifecycle: rogue link failed: %a" Spin.Extension.pp_failure e));
  for i = 0 to qcount - 1 do
    ignore
      (Sim.Engine.schedule_in p.Common.engine
         ~delay:(Sim.Stime.us (100 * (i + 1)))
         (fun () ->
           Plexus.Udp_mgr.send udp_a client ~dst:(Common.ip_b, 9) "rogue-bait"))
  done;
  Sim.Engine.run p.Common.engine ~max_events:20_000_000;
  let quarantined = Spin.Dispatcher.quarantines disp > 0 in
  Spin.Dispatcher.set_quarantine ip_ev None;
  (* Admission phase: the same over-budget extension must be refused by
     both enforcement points — the event's install-time policy and the
     linker's certificate check — before any of its code runs. *)
  let tight = Spin.Verifier.policy ~max_insns:50_000 () in
  let hog_ops =
    [ Spin.Verifier.Loop
        { iters = 1000; body = [ Spin.Verifier.Work { insns = 500 } ] } ]
  in
  let hog () =
    Spin.Extension.Compiler.compile ~name:"lifecycle.hog" ~ops:hog_ops
      ~imports:[]
      (fun lk ->
        let uninstall =
          Spin.Dispatcher.install ip_ev ~guard:udp_guard ~label:"hog"
            ~ops:hog_ops ~cost:(Sim.Stime.us 500)
            (fun _ -> ())
        in
        lk.Spin.Extension.on_unlink uninstall)
  in
  Spin.Dispatcher.set_policy ip_ev (Some tight);
  let rejected_by_event =
    match Plexus.Stack.link p.Common.b (hog ()) with
    | Error (Spin.Extension.Over_budget _) -> true
    | Ok _ | Error _ -> false
  in
  Spin.Dispatcher.set_policy ip_ev None;
  let rejected_by_link =
    match Spin.Kernel.link ~policy:tight kernel_b ~domain (hog ()) with
    | Error (Spin.Extension.Over_budget _) -> true
    | Ok _ | Error _ -> false
  in
  let monitored = Hashtbl.fold (fun _ c acc -> acc + !c) counts 0 in
  let generations =
    Hashtbl.fold (fun _ c acc -> if !c > 0 then acc + 1 else acc) counts 0
  in
  {
    o_sent = count + qcount;
    o_sunk = !sunk;
    o_monitored = monitored;
    o_generations = generations;
    o_swaps = !swaps;
    o_max_inflight = !max_inflight;
    o_drain_max_ns = !drain_max;
    o_quarantined = quarantined;
    o_rejected = rejected_by_event && rejected_by_link;
  }

(* --- soak driver ------------------------------------------------------- *)

type report = {
  l_runs : int;
  l_sent : int;
  l_sunk : int;
  l_monitored : int;
  l_swaps : int;
  l_max_inflight : int;
  l_drain_max_ns : int;
  l_quarantined : int;  (** runs where the rogue was evicted *)
  l_rejected : int;  (** runs where both admission paths refused *)
  l_failures : int;  (** runs violating any lifecycle invariant *)
}

let report_ok r =
  r.l_failures = 0 && r.l_sunk = r.l_sent && r.l_monitored = r.l_sent
  && r.l_swaps > 0 && r.l_max_inflight > 0 && r.l_quarantined = r.l_runs
  && r.l_rejected = r.l_runs

let dropped r = r.l_sent - r.l_sunk

(* Vary burst size and swap cadence across runs so flips land at
   different depths of the receive backlog. *)
let bursts = [| 4; 1; 8; 2; 6 |]
let periods = [| 10; 7; 13; 5; 9 |]

let run_soak ?(runs = 5) ?(verbose = false) () =
  let acc =
    ref
      {
        l_runs = runs;
        l_sent = 0;
        l_sunk = 0;
        l_monitored = 0;
        l_swaps = 0;
        l_max_inflight = 0;
        l_drain_max_ns = 0;
        l_quarantined = 0;
        l_rejected = 0;
        l_failures = 0;
      }
  in
  for i = 0 to runs - 1 do
    let o =
      run_once
        ~burst:bursts.(i mod Array.length bursts)
        ~swap_period:periods.(i mod Array.length periods)
        ()
    in
    if verbose then Fmt.pr "run %d: %a@." i pp_outcome o;
    let r = !acc in
    acc :=
      {
        r with
        l_sent = r.l_sent + o.o_sent;
        l_sunk = r.l_sunk + o.o_sunk;
        l_monitored = r.l_monitored + o.o_monitored;
        l_swaps = r.l_swaps + o.o_swaps;
        l_max_inflight = max r.l_max_inflight o.o_max_inflight;
        l_drain_max_ns = max r.l_drain_max_ns o.o_drain_max_ns;
        l_quarantined = (r.l_quarantined + if o.o_quarantined then 1 else 0);
        l_rejected = (r.l_rejected + if o.o_rejected then 1 else 0);
        l_failures = (r.l_failures + if outcome_ok o then 0 else 1);
      }
  done;
  !acc

let print ?runs ?verbose () =
  Common.print_header
    "Extension lifecycle: verifier, quarantine, zero-drop hot-swap";
  let r = run_soak ?runs ?verbose () in
  Printf.printf
    "%d runs: sent=%d sunk=%d monitored=%d dropped=%d swaps=%d \
     max_inflight=%d drain_max=%dns quarantined=%d/%d rejected=%d/%d -> %s\n"
    r.l_runs r.l_sent r.l_sunk r.l_monitored (dropped r) r.l_swaps
    r.l_max_inflight r.l_drain_max_ns r.l_quarantined r.l_runs r.l_rejected
    r.l_runs
    (if report_ok r then "OK" else "FAILED");
  r
