(* Chaos soak: whole-stack flows through randomized per-link fault plans.

   Each scenario builds the canonical two-host Plexus testbed, attaches a
   {!Netsim.Faults} plan (seeded, so every run is reproducible) to the
   a -> b direction of the link, drives traffic through it, runs the
   simulation to completion and checks invariants that must hold under
   ANY fault plan:

   - integrity: nothing corrupted is ever delivered as good data (the
     checksums must catch every injected flip);
   - accounting: what the plan injected reconciles exactly against what
     the stack observed (UDP), or bounds it (fragments, TCP);
   - resources: receive-ring pool slots all return (no leak, no
     double-free) and the engine drains (no stuck timer).

   The test suite sweeps these over many seeds; the CLI exposes them as
   a soak command. *)

type fault_mix = {
  loss : Netsim.Faults.loss;
  corrupt_prob : float;
  corrupt_min_off : int;
  duplicate_prob : float;
  jitter_prob : float;
  jitter_max : Sim.Stime.t;
}

(* Ethernet (14) + IP (20) + UDP (8) headers: corruption constrained to
   the UDP payload region, so the UDP checksum must catch every flip and
   the accounting reconciles exactly (a flipped destination MAC, by
   contrast, is silently ignored by the peer, and a flipped port
   misdemuxes — detectable, but not attributable frame by frame). *)
let udp_payload_off = 42

let default_mix =
  {
    loss = Netsim.Faults.Bernoulli 0.08;
    corrupt_prob = 0.06;
    corrupt_min_off = udp_payload_off;
    duplicate_prob = 0.04;
    jitter_prob = 0.10;
    jitter_max = Sim.Stime.ms 2;
  }

let burst_mix =
  {
    default_mix with
    loss =
      Netsim.Faults.Gilbert_elliott
        { p_gb = 0.05; p_bg = 0.3; loss_good = 0.01; loss_bad = 0.7 };
  }

let apply_mix plan mix =
  Netsim.Faults.set_loss plan mix.loss;
  Netsim.Faults.set_corrupt plan ~min_off:mix.corrupt_min_off mix.corrupt_prob;
  Netsim.Faults.set_duplicate plan mix.duplicate_prob;
  Netsim.Faults.set_jitter plan ~max_delay:mix.jitter_max mix.jitter_prob

type testbed = {
  engine : Sim.Engine.t;
  a : Plexus.Stack.t;
  b : Plexus.Stack.t;
  plan : Netsim.Faults.t;
  rx_pool : Pool.t;
}

let testbed ?(fcache = false) ~seed mix =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine
      (Netsim.Costs.ethernet ())
      ~a:("hostA", Common.ip_a) ~b:("hostB", Common.ip_b)
  in
  let plan = Netsim.Network.install_faults ~seed ea in
  apply_mix plan mix;
  (* a bounded receive ring on the victim side: the leak check below
     demands every reserved slot comes back *)
  let rx_pool = Pool.create ~name:"chaos.rxring" ~capacity:64 () in
  Netsim.Dev.set_rx_pool eb.Netsim.Network.dev rx_pool;
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  if fcache then begin
    Spin.Dispatcher.set_flow_cache
      (Plexus.Graph.dispatcher (Plexus.Stack.graph a))
      true;
    Spin.Dispatcher.set_flow_cache
      (Plexus.Graph.dispatcher (Plexus.Stack.graph b))
      true
  end;
  { engine; a; b; plan; rx_pool }

(* Drive to completion: generous horizon (fragment reassembly expires at
   30 s sim time), hard event cap as a runaway backstop. *)
let drain t = Sim.Engine.run t.engine ~until:(Sim.Stime.s 120) ~max_events:20_000_000

(* --- UDP blast: exact reconciliation --------------------------------- *)

type udp_outcome = {
  u_sent : int;
  u_sunk : int;  (** datagrams reaching the sink application *)
  u_payload_ok : bool;  (** every sunk payload is one that was sent *)
  u_bad_checksum : int;  (** corrupted copies caught at the UDP layer *)
  u_drops : int;  (** injected by the plan *)
  u_corruptions : int;
  u_duplicates : int;
  u_delays : int;
  u_reconciled : bool;
      (** sunk + caught = sent - dropped + duplicated, and every injected
          corruption was caught *)
  u_pool_leaked : int;  (** ring slots never released *)
  u_pool_underflows : int;  (** double-releases *)
}

let pp_udp_outcome ppf o =
  Fmt.pf ppf
    "udp{sent=%d sunk=%d bad_cksum=%d drops=%d corrupt=%d dup=%d delay=%d \
     payload_ok=%b reconciled=%b leaked=%d underflows=%d}"
    o.u_sent o.u_sunk o.u_bad_checksum o.u_drops o.u_corruptions
    o.u_duplicates o.u_delays o.u_payload_ok o.u_reconciled o.u_pool_leaked
    o.u_pool_underflows

let payload ~len i =
  let tag = Printf.sprintf "%08d" i in
  tag ^ String.make (max 0 (len - String.length tag)) 'c'

let udp_blast ?fcache ?(mix = default_mix) ?(count = 200) ?(payload_len = 64)
    ~seed () =
  let t = testbed ?fcache ~seed mix in
  let udp_b = Plexus.Stack.udp t.b in
  let sent = Hashtbl.create count in
  let sunk = ref 0 in
  let payload_ok = ref true in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"chaos-sink" ~port:9 with
  | Error _ -> assert false
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
            incr sunk;
            let data = View.to_string (Plexus.Pctx.view ctx) in
            if not (Hashtbl.mem sent data) then payload_ok := false)
      in
      ());
  let udp_a = Plexus.Stack.udp t.a in
  (match Plexus.Udp_mgr.bind udp_a ~owner:"chaos-src" ~port:5000 with
  | Error _ -> assert false
  | Ok ep ->
      for i = 0 to count - 1 do
        let data = payload ~len:payload_len i in
        Hashtbl.replace sent data ();
        ignore
          (Sim.Engine.schedule_in t.engine
             ~delay:(Sim.Stime.ms i)
             (fun () ->
               Plexus.Udp_mgr.send udp_a ep ~dst:(Common.ip_b, 9) data))
      done);
  drain t;
  let plan = t.plan in
  let bad = (Plexus.Udp_mgr.counters udp_b).Plexus.Udp_mgr.bad_checksum in
  let drops = Netsim.Faults.drops plan in
  let corruptions = Netsim.Faults.corruptions plan in
  let duplicates = Netsim.Faults.duplicates plan in
  {
    u_sent = count;
    u_sunk = !sunk;
    u_payload_ok = !payload_ok;
    u_bad_checksum = bad;
    u_drops = drops;
    u_corruptions = corruptions;
    u_duplicates = duplicates;
    u_delays = Netsim.Faults.delays plan;
    u_reconciled =
      !sunk + bad = count - drops + duplicates && bad = corruptions;
    u_pool_leaked = Pool.live t.rx_pool;
    u_pool_underflows = Pool.underflows t.rx_pool;
  }

let udp_ok o =
  o.u_payload_ok && o.u_reconciled && o.u_pool_leaked = 0
  && o.u_pool_underflows = 0

(* --- Fragmented UDP: integrity + reassembly hygiene ------------------- *)

type frag_outcome = {
  f_sent : int;
  f_sunk : int;
  f_payload_ok : bool;
  f_bad_checksum : int;
  f_timeouts : int;  (** reassemblies abandoned at the deadline *)
  f_pending : int;  (** must be 0 after the run drains *)
  f_frames_sent : int;  (** fragment frames emitted by the sender *)
  f_frames_rx : int;  (** fragment frames reaching the victim's IP layer *)
  f_reconciled : bool;
      (** frame-level: rx = sent - dropped + duplicated, exactly;
          datagram-level: completions and timeouts within the bounds the
          fault mix allows. *)
  f_pool_leaked : int;
  f_pool_underflows : int;
}

let pp_frag_outcome ppf o =
  Fmt.pf ppf
    "frag{sent=%d sunk=%d bad_cksum=%d timeouts=%d pending=%d frames=%d/%d \
     payload_ok=%b reconciled=%b leaked=%d underflows=%d}"
    o.f_sent o.f_sunk o.f_bad_checksum o.f_timeouts o.f_pending o.f_frames_rx
    o.f_frames_sent o.f_payload_ok o.f_reconciled o.f_pool_leaked
    o.f_pool_underflows

let udp_frag ?fcache ?(mix = default_mix) ?(count = 40) ?(payload_len = 3000)
    ~seed () =
  let t = testbed ?fcache ~seed mix in
  let udp_b = Plexus.Stack.udp t.b in
  let sent = Hashtbl.create count in
  let sunk = ref 0 in
  let payload_ok = ref true in
  (match Plexus.Udp_mgr.bind udp_b ~owner:"chaos-sink" ~port:9 with
  | Error _ -> assert false
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b ep (fun ctx ->
            incr sunk;
            let data = View.to_string (Plexus.Pctx.view ctx) in
            if not (Hashtbl.mem sent data) then payload_ok := false)
      in
      ());
  let udp_a = Plexus.Stack.udp t.a in
  (match Plexus.Udp_mgr.bind udp_a ~owner:"chaos-src" ~port:5000 with
  | Error _ -> assert false
  | Ok ep ->
      for i = 0 to count - 1 do
        let data = payload ~len:payload_len i in
        Hashtbl.replace sent data ();
        ignore
          (Sim.Engine.schedule_in t.engine
             ~delay:(Sim.Stime.ms (5 * i))
             (fun () ->
               Plexus.Udp_mgr.send udp_a ep ~dst:(Common.ip_b, 9) data))
      done);
  drain t;
  let frag = Plexus.Ip_mgr.frag_state (Plexus.Stack.ip t.b) in
  let bad = (Plexus.Udp_mgr.counters udp_b).Plexus.Udp_mgr.bad_checksum in
  let timeouts = Proto.Ip_frag.timeout_count frag in
  (* Frame-level accounting is exact: corruption is payload-only, so
     every fragment frame that was not dropped reaches the victim's IP
     layer — [rx = sent - dropped + duplicated].  Datagram-level
     accounting can only be bounded under this mix: a whole fragment set
     eaten by a loss burst leaves no trace (no context, no timeout), and
     a jitter-delayed duplicate landing after its datagram completed
     opens a ghost context that times out.  Each untraced datagram costs
     at least one drop, each ghost at least one duplicate, and extra
     completions need a duplicated set, so:
       completions <= sent + duplicates
       completions + timeouts in [sent - drops, sent + duplicates]. *)
  let dups = Netsim.Faults.duplicates t.plan in
  let drops = Netsim.Faults.drops t.plan in
  let frames_sent =
    (Plexus.Ip_mgr.counters (Plexus.Stack.ip t.a)).Plexus.Ip_mgr.fragments_out
  in
  let frames_rx = (Plexus.Ip_mgr.counters (Plexus.Stack.ip t.b)).Plexus.Ip_mgr.rx in
  let completions = !sunk + bad in
  {
    f_sent = count;
    f_sunk = !sunk;
    f_payload_ok = !payload_ok;
    f_bad_checksum = bad;
    f_timeouts = timeouts;
    f_pending = Proto.Ip_frag.pending_count frag;
    f_frames_sent = frames_sent;
    f_frames_rx = frames_rx;
    f_reconciled =
      frames_rx = frames_sent - drops + dups
      && completions <= count + dups
      && completions + timeouts >= count - drops
      && completions + timeouts <= count + dups;
    f_pool_leaked = Pool.live t.rx_pool;
    f_pool_underflows = Pool.underflows t.rx_pool;
  }

let frag_ok o =
  o.f_payload_ok && o.f_pending = 0 && o.f_reconciled && o.f_pool_leaked = 0
  && o.f_pool_underflows = 0

(* --- TCP transfer: stream integrity or clean error -------------------- *)

type tcp_outcome = {
  t_sent_bytes : int;
  t_recv_bytes : int;
  t_stream_ok : bool;  (** received bytes are a prefix of what was sent *)
  t_complete : bool;
  t_error : string option;  (** surfaced error, if the transfer failed *)
  t_bad_checksum : int;  (** corrupted segments caught before demux *)
  t_corruptions : int;
  t_drops : int;
  t_pool_leaked : int;
  t_pool_underflows : int;
}

let pp_tcp_outcome ppf o =
  Fmt.pf ppf
    "tcp{sent=%dB recv=%dB ok=%b complete=%b err=%s bad_cksum=%d corrupt=%d \
     drops=%d leaked=%d underflows=%d}"
    o.t_sent_bytes o.t_recv_bytes o.t_stream_ok o.t_complete
    (Option.value o.t_error ~default:"-")
    o.t_bad_checksum o.t_corruptions o.t_drops o.t_pool_leaked
    o.t_pool_underflows

let tcp_transfer ?fcache ?(mix = default_mix) ?(total = 16_384) ~seed () =
  (* Corruption anywhere past the Ethernet header: flips in the IP header
     are caught by the IP checksum, flips in the TCP header or payload by
     the TCP checksum — every one must surface as a retransmission, never
     as stream corruption. *)
  let mix = { mix with corrupt_min_off = 14 } in
  let t = testbed ?fcache ~seed mix in
  let data =
    String.init total (fun i -> Char.chr (Char.code 'a' + (i mod 26)))
  in
  let buf = Buffer.create total in
  let error = ref None in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp t.b) ~owner:"chaos-sink" ~port:80
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun d -> Buffer.add_string buf d);
         Plexus.Tcp_mgr.on_peer_close conn (fun () ->
             Plexus.Tcp_mgr.close conn))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp t.a) ~owner:"chaos-src"
       ~dst:(Common.ip_b, 80) ()
   with
  | Error _ -> assert false
  | Ok conn ->
      Plexus.Tcp_mgr.on_error conn (fun e -> error := Some e);
      Plexus.Tcp_mgr.on_established conn (fun () ->
          Plexus.Tcp_mgr.send conn data;
          Plexus.Tcp_mgr.close conn));
  drain t;
  let got = Buffer.contents buf in
  let stream_ok =
    String.length got <= total && got = String.sub data 0 (String.length got)
  in
  let tcpc = Plexus.Tcp_mgr.counters (Plexus.Stack.tcp t.b) in
  {
    t_sent_bytes = total;
    t_recv_bytes = String.length got;
    t_stream_ok = stream_ok;
    t_complete = String.length got = total;
    t_error = !error;
    t_bad_checksum = tcpc.Plexus.Tcp_mgr.bad_checksum;
    t_corruptions = Netsim.Faults.corruptions t.plan;
    t_drops = Netsim.Faults.drops t.plan;
    t_pool_leaked = Pool.live t.rx_pool;
    t_pool_underflows = Pool.underflows t.rx_pool;
  }

let tcp_ok o =
  o.t_stream_ok
  && (o.t_complete || o.t_error <> None)
  && o.t_pool_leaked = 0 && o.t_pool_underflows = 0

(* --- soak driver ------------------------------------------------------- *)

type soak = {
  seeds : int;
  udp_failures : int;
  frag_failures : int;
  tcp_failures : int;
  cache_divergences : int;
      (** seeds where flow-cached delivery differed from uncached *)
}

let soak_ok s =
  s.udp_failures = 0 && s.frag_failures = 0 && s.tcp_failures = 0
  && s.cache_divergences = 0

(* The flow cache must be observably equivalent to graph dispatch, faults
   included: same seed, same fault stream, so every counter and every
   delivered payload must match. *)
let udp_equivalent (x : udp_outcome) (y : udp_outcome) =
  x.u_sunk = y.u_sunk
  && x.u_bad_checksum = y.u_bad_checksum
  && x.u_drops = y.u_drops
  && x.u_corruptions = y.u_corruptions
  && x.u_duplicates = y.u_duplicates
  && x.u_delays = y.u_delays

let run_soak ?(verbose = false) ?(seeds = 20) ?(base_seed = 1000) () =
  let udp_failures = ref 0 in
  let frag_failures = ref 0 in
  let tcp_failures = ref 0 in
  let cache_divergences = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = base_seed + i in
    let mix = if i mod 2 = 0 then default_mix else burst_mix in
    let u = udp_blast ~mix ~seed () in
    if not (udp_ok u) then incr udp_failures;
    let u' = udp_blast ~fcache:true ~mix ~seed () in
    if not (udp_ok u' && udp_equivalent u u') then incr cache_divergences;
    let f = udp_frag ~mix ~seed () in
    if not (frag_ok f) then incr frag_failures;
    let t = tcp_transfer ~mix ~seed () in
    if not (tcp_ok t) then incr tcp_failures;
    if verbose then
      Fmt.pr "seed %d: %a@.         %a@.         %a@." seed pp_udp_outcome u
        pp_frag_outcome f pp_tcp_outcome t
  done;
  {
    seeds;
    udp_failures = !udp_failures;
    frag_failures = !frag_failures;
    tcp_failures = !tcp_failures;
    cache_divergences = !cache_divergences;
  }

let print ?verbose ?seeds ?base_seed () =
  Common.print_header "Chaos soak: flows through randomized fault plans";
  let s = run_soak ?verbose ?seeds ?base_seed () in
  Printf.printf
    "%d seeds: udp_failures=%d frag_failures=%d tcp_failures=%d \
     cache_divergences=%d -> %s\n"
    s.seeds s.udp_failures s.frag_failures s.tcp_failures s.cache_divergences
    (if soak_ok s then "OK" else "FAILED");
  s
