(* Ablations of the design choices the paper calls out.

   1. Guards-as-packet-filters: every raise evaluates every installed
      guard, so demultiplexing cost grows with the number of installed
      endpoints.  The paper's bet is that guard evaluation is cheap
      enough for this to be negligible at realistic fan-out.
   2. Anti-spoofing by source *overwrite* vs. *verify* (section 3.1:
      "the latter provides the best performance" — overwrite).
   3. The checksum-disabled UDP variant of section 1.1.
   4. Interrupt vs. thread delivery is covered by Figure 5 itself. *)

(* --- 1: guard scaling -------------------------------------------------- *)

(* [rtt_us] installs the bystanders unkeyed (the pre-index linear scan:
   every raise evaluates every guard); [indexed_rtt_us] installs them
   with their port as dispatch key, so the raise hashes the datagram's
   port once and never sees them. *)
type guard_point = { extra_endpoints : int; rtt_us : float; indexed_rtt_us : float }

let guard_scaling ?(counts = [ 0; 8; 32; 128 ]) ?(iters = 100) () =
  let run ~indexed extra =
      let p = Common.plexus_pair (Netsim.Costs.ethernet ()) in
      let udp_b = Plexus.Stack.udp p.Common.b in
      (* Install [extra] unrelated endpoints whose guards will be
         evaluated (and rejected) for every incoming datagram — unless
         the dispatch index skips them. *)
      for i = 1 to extra do
        match Plexus.Udp_mgr.bind udp_b ~owner:"bystander" ~port:(20000 + i) with
        | Ok ep ->
            let install =
              if indexed then Plexus.Udp_mgr.install_recv
              else Plexus.Udp_mgr.install_recv_linear
            in
            let (_ : unit -> unit) = install udp_b ep (fun _ -> ()) in
            ()
        | Error _ -> assert false
      done;
      (* Echo server + pinger, as in Figure 5. *)
      let server =
        match Plexus.Udp_mgr.bind udp_b ~owner:"echo" ~port:7 with
        | Ok ep -> ep
        | Error _ -> assert false
      in
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
            let data = View.to_string (Plexus.Pctx.view ctx) in
            let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
            Plexus.Udp_mgr.send udp_b server
              ~dst:(src, ctx.Plexus.Pctx.src_port)
              data)
      in
      let udp_a = Plexus.Stack.udp p.Common.a in
      let client =
        match Plexus.Udp_mgr.bind udp_a ~owner:"ping" ~port:5001 with
        | Ok ep -> ep
        | Error _ -> assert false
      in
      let series = Sim.Stats.Series.create () in
      let remaining = ref (10 + iters) in
      let sent_at = ref Sim.Stime.zero in
      let send_next () =
        if !remaining > 0 then begin
          decr remaining;
          sent_at := Sim.Engine.now p.Common.engine;
          Plexus.Udp_mgr.send udp_a client ~dst:(Common.ip_b, 7) "ping-pkt"
        end
      in
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp_a client (fun _ ->
            let rtt = Sim.Stime.sub (Sim.Engine.now p.Common.engine) !sent_at in
            if !remaining < iters then Sim.Stats.Series.add_time series rtt;
            send_next ())
      in
      send_next ();
      Sim.Engine.run p.Common.engine ~max_events:10_000_000;
      Sim.Stats.Series.mean series
  in
  List.map
    (fun extra ->
      {
        extra_endpoints = extra;
        rtt_us = run ~indexed:false extra;
        indexed_rtt_us = run ~indexed:true extra;
      })
    counts

(* --- 2: spoof policy --------------------------------------------------- *)

type spoof_result = {
  overwrite_rtt : float;
  verify_rtt : float;
  spoofs_rejected : int;
}

let spoof_policy ?(iters = 100) () =
  let run policy =
    let p = Common.plexus_pair (Netsim.Costs.ethernet ()) in
    let udp_a = Plexus.Stack.udp p.Common.a in
    let udp_b = Plexus.Stack.udp p.Common.b in
    Plexus.Udp_mgr.set_spoof_policy udp_a policy;
    let server =
      match Plexus.Udp_mgr.bind udp_b ~owner:"echo" ~port:7 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let (_ : unit -> unit) =
      Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
          let data = View.to_string (Plexus.Pctx.view ctx) in
          let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
          Plexus.Udp_mgr.send udp_b server ~dst:(src, ctx.Plexus.Pctx.src_port)
            data)
    in
    let client =
      match Plexus.Udp_mgr.bind udp_a ~owner:"ping" ~port:5001 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let series = Sim.Stats.Series.create () in
    let remaining = ref (10 + iters) in
    let sent_at = ref Sim.Stime.zero in
    let in_flight = ref false in
    let send_next () =
      if !remaining > 0 then begin
        decr remaining;
        sent_at := Sim.Engine.now p.Common.engine;
        in_flight := true;
        (* an honest claim, so Verify re-checks and passes *)
        match
          Plexus.Udp_mgr.send_claiming udp_a client ~claimed_src_port:5001
            ~dst:(Common.ip_b, 7) "ping-pkt"
        with
        | Ok () -> ()
        | Error `Spoof_rejected -> ()
      end
    in
    let (_ : unit -> unit) =
      Plexus.Udp_mgr.install_recv udp_a client (fun _ ->
          if !in_flight then begin
            in_flight := false;
            let rtt = Sim.Stime.sub (Sim.Engine.now p.Common.engine) !sent_at in
            if !remaining < iters then Sim.Stats.Series.add_time series rtt;
            send_next ()
          end)
    in
    send_next ();
    Sim.Engine.run p.Common.engine ~max_events:10_000_000;
    (* also demonstrate rejection of a dishonest claim *)
    (match
       Plexus.Udp_mgr.send_claiming udp_a client ~claimed_src_port:9999
         ~dst:(Common.ip_b, 7) "forged"
     with
    | Ok () -> ()
    | Error `Spoof_rejected -> ());
    Sim.Engine.run p.Common.engine ~max_events:10_000_000;
    (Sim.Stats.Series.mean series, (Plexus.Udp_mgr.counters udp_a).spoof_rejected)
  in
  let overwrite_rtt, _ = run Plexus.Udp_mgr.Overwrite in
  let verify_rtt, rejected = run Plexus.Udp_mgr.Verify in
  { overwrite_rtt; verify_rtt; spoofs_rejected = rejected }

(* --- 3: checksum on/off (section 1.1) ---------------------------------- *)

type cksum_result = { with_cksum : float; without_cksum : float }

let cksum_variant ?(payload_len = 1400) ?(iters = 100) () =
  let run checksum =
    let p = Common.plexus_pair (Netsim.Costs.t3 ()) in
    let udp_b = Plexus.Stack.udp p.Common.b in
    let udp_a = Plexus.Stack.udp p.Common.a in
    let server =
      match Plexus.Udp_mgr.bind udp_b ~owner:"echo" ~port:7 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let (_ : unit -> unit) =
      Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
          let data = View.to_string (Plexus.Pctx.view ctx) in
          let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
          Plexus.Udp_mgr.send udp_b server ~checksum
            ~dst:(src, ctx.Plexus.Pctx.src_port)
            data)
    in
    let client =
      match Plexus.Udp_mgr.bind udp_a ~owner:"ping" ~port:5001 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let series = Sim.Stats.Series.create () in
    let remaining = ref (10 + iters) in
    let sent_at = ref Sim.Stime.zero in
    let payload = String.make payload_len 'v' in
    let send_next () =
      if !remaining > 0 then begin
        decr remaining;
        sent_at := Sim.Engine.now p.Common.engine;
        Plexus.Udp_mgr.send udp_a client ~checksum ~dst:(Common.ip_b, 7) payload
      end
    in
    let (_ : unit -> unit) =
      Plexus.Udp_mgr.install_recv udp_a client (fun _ ->
          let rtt = Sim.Stime.sub (Sim.Engine.now p.Common.engine) !sent_at in
          if !remaining < iters then Sim.Stats.Series.add_time series rtt;
          send_next ())
    in
    send_next ();
    Sim.Engine.run p.Common.engine ~max_events:10_000_000;
    Sim.Stats.Series.mean series
  in
  { with_cksum = run true; without_cksum = run false }

(* --- 4: dispatcher-cost sensitivity ------------------------------------ *)

(* "The overhead of invoking each handler is roughly one procedure call."
   How much would it matter if it were not?  Inflate the dispatch and
   guard costs and watch Figure 5's Ethernet number. *)
type dispatch_point = { factor : int; rtt_us : float }

let dispatch_sensitivity ?(factors = [ 1; 10; 100 ]) ?(iters = 50) () =
  List.map
    (fun factor ->
      let base = Netsim.Costs.default in
      let costs =
        {
          base with
          Netsim.Costs.dispatch =
            {
              Spin.Dispatcher.dispatch =
                Sim.Stime.mul base.Netsim.Costs.dispatch.Spin.Dispatcher.dispatch
                  factor;
              guard =
                Sim.Stime.mul base.Netsim.Costs.dispatch.Spin.Dispatcher.guard
                  factor;
              index =
                Sim.Stime.mul base.Netsim.Costs.dispatch.Spin.Dispatcher.index
                  factor;
              tree_node =
                Sim.Stime.mul
                  base.Netsim.Costs.dispatch.Spin.Dispatcher.tree_node factor;
              thread_spawn =
                base.Netsim.Costs.dispatch.Spin.Dispatcher.thread_spawn;
            };
        }
      in
      {
        factor;
        rtt_us =
          Sim.Stats.Series.mean
            (Common.udp_echo_plexus ~costs ~iters (Netsim.Costs.ethernet ()));
      })
    factors

(* --- 4b: interpreted packet filters vs. compiled guards ----------------- *)

(* The systems Plexus's protection model descends from (Mach's user-level
   networking, [MRA87]) demultiplex with *interpreted* packet filters.
   Install the echo endpoint behind a deliberately rich interpreted
   filter and compare with the native guard. *)
type filter_result = {
  native_rtt : float;
  interpreted_rtt : float;
  compiled_rtt : float;
  nodes : int;
}

let filter_vs_guard ?(iters = 100) () =
  let rich_filter =
    (* a 15-node demultiplexing predicate *)
    Plexus.Filter.(
      And
        ( And (dst_port_is 7, Gt (Payload_len, 0)),
          And
            ( Or (src_port_is 5001, Or (src_port_is 5002, src_port_is 5003)),
              Not (Or (Eq (Payload_len, 0), Gt (Payload_len, 65536))) ) ))
  in
  let run install =
    let p = Common.plexus_pair (Netsim.Costs.ethernet ()) in
    let udp_a = Plexus.Stack.udp p.Common.a in
    let udp_b = Plexus.Stack.udp p.Common.b in
    let server =
      match Plexus.Udp_mgr.bind udp_b ~owner:"echo" ~port:7 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let echo ctx =
      let data = View.to_string (Plexus.Pctx.view ctx) in
      let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
      Plexus.Udp_mgr.send udp_b server ~dst:(src, ctx.Plexus.Pctx.src_port) data
    in
    let (_ : unit -> unit) = install udp_b server echo in
    let client =
      match Plexus.Udp_mgr.bind udp_a ~owner:"ping" ~port:5001 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let series = Sim.Stats.Series.create () in
    let remaining = ref (10 + iters) in
    let sent_at = ref Sim.Stime.zero in
    let send_next () =
      if !remaining > 0 then begin
        decr remaining;
        sent_at := Sim.Engine.now p.Common.engine;
        Plexus.Udp_mgr.send udp_a client ~dst:(Common.ip_b, 7) "ping-pkt"
      end
    in
    let (_ : unit -> unit) =
      Plexus.Udp_mgr.install_recv udp_a client (fun _ ->
          let rtt = Sim.Stime.sub (Sim.Engine.now p.Common.engine) !sent_at in
          if !remaining < iters then Sim.Stats.Series.add_time series rtt;
          send_next ())
    in
    send_next ();
    Sim.Engine.run p.Common.engine ~max_events:10_000_000;
    Sim.Stats.Series.mean series
  in
  {
    native_rtt = run (fun udp ep fn -> Plexus.Udp_mgr.install_recv udp ep fn);
    interpreted_rtt =
      run (fun udp ep fn ->
          Plexus.Udp_mgr.install_recv_filtered udp ep rich_filter fn);
    compiled_rtt =
      run (fun udp ep fn ->
          Plexus.Udp_mgr.install_recv_compiled udp ep rich_filter fn);
    nodes = Plexus.Filter.nodes rich_filter;
  }

(* --- 5: multicast semantics for the video server (section 5.1) --------- *)

(* If all clients watch the *same* stream, the UDP multicast send lets
   the server marshal and checksum each frame once; the per-client work
   shrinks to the replicated IP/device path. *)
let video_multicast_util ?(streams = 15) () =
  let run use_multicast =
    let engine = Sim.Engine.create () in
    let ea, eb =
      Netsim.Network.pair engine (Netsim.Costs.t3 ())
        ~a:("server", Common.ip_a) ~b:("clients", Common.ip_b)
    in
    let stack = Plexus.Stack.build ea.Netsim.Network.host in
    Netsim.Dev.set_rx eb.Netsim.Network.dev (fun _ -> ());
    Plexus.Arp_mgr.prime (Plexus.Stack.arp stack) Common.ip_b
      (Netsim.Dev.mac eb.Netsim.Network.dev);
    let host = ea.Netsim.Network.host in
    let disk =
      Netsim.Disk.create engine ~cpu:(Netsim.Host.cpu host)
        ~costs:(Netsim.Host.costs host)
    in
    let udp = Plexus.Stack.udp stack in
    let ep =
      match Plexus.Udp_mgr.bind udp ~owner:"video" ~port:9000 with
      | Ok ep -> ep
      | Error _ -> assert false
    in
    let dsts = List.init streams (fun i -> (Common.ip_b, 9001 + i)) in
    let horizon = Sim.Stime.add (Sim.Stime.ms 300) (Sim.Stime.s 2) in
    if use_multicast then begin
      (* one frame clock for everyone: read once, send to all *)
      let rec tick () =
        if Sim.Stime.compare (Sim.Engine.now engine) horizon < 0 then begin
          Netsim.Disk.read disk ~len:12_500 (fun frame ->
              Plexus.Udp_mgr.send_multi udp ep ~dsts frame);
          ignore
            (Sim.Engine.schedule_in engine ~delay:(Sim.Stime.of_s_f (1. /. 30.))
               tick)
        end
      in
      tick ()
    end
    else begin
      let env =
        {
          Apps.Video_server.engine;
          read_frame = (fun ~len k -> Netsim.Disk.read disk ~len k);
          send = (fun ~dst data -> Plexus.Udp_mgr.send udp ep ~dst data);
        }
      in
      let server = Apps.Video_server.create env ~fps:30 ~frame_len:12_500 in
      Apps.Video_server.set_streams server dsts;
      Apps.Video_server.start ~until:horizon server
    end;
    ignore
      (Sim.Engine.schedule engine ~at:(Sim.Stime.ms 300) (fun () ->
           Netsim.Host.reset_utilization host));
    Sim.Engine.run engine ~until:horizon ~max_events:50_000_000;
    Netsim.Host.utilization host
  in
  (run false, run true)

let print () =
  Common.print_header "Ablation: guard (packet filter) scaling";
  Printf.printf "%18s %12s %12s\n" "extra endpoints" "linear(us)" "indexed(us)";
  List.iter
    (fun g ->
      Printf.printf "%18d %12.1f %12.1f\n" g.extra_endpoints g.rtt_us
        g.indexed_rtt_us)
    (guard_scaling ());
  Common.print_header "Ablation: anti-spoofing policy (section 3.1)";
  let s = spoof_policy () in
  Printf.printf
    "  overwrite: %.1f us RTT   verify: %.1f us RTT   forged sends rejected: %d\n"
    s.overwrite_rtt s.verify_rtt s.spoofs_rejected;
  Common.print_header
    "Ablation: UDP checksum disabled (section 1.1, 1400-byte frames on T3)";
  let c = cksum_variant () in
  Printf.printf "  with checksum: %.1f us RTT   without: %.1f us RTT (saves %.1f)\n"
    c.with_cksum c.without_cksum (c.with_cksum -. c.without_cksum);
  Common.print_header
    "Ablation: dispatcher cost sensitivity (Ethernet UDP RTT)";
  List.iter
    (fun d -> Printf.printf "  dispatch+guard x%-4d : %8.1f us\n" d.factor d.rtt_us)
    (dispatch_sensitivity ());
  Common.print_header
    "Ablation: interpreted packet filter vs. compiled guard (Ethernet UDP RTT)";
  let f = filter_vs_guard () in
  Printf.printf
    "  native guard: %.1f us    interpreted %d-node filter: %.1f us (+%.1f)    compiled: %.1f us (+%.1f)\n"
    f.native_rtt f.nodes f.interpreted_rtt
    (f.interpreted_rtt -. f.native_rtt)
    f.compiled_rtt
    (f.compiled_rtt -. f.native_rtt);
  Common.print_header
    "Ablation: multicast semantics for the video server (15 identical streams, T3)";
  let uni, multi = video_multicast_util () in
  Printf.printf
    "  per-client unicast streams: %4.1f%% CPU    shared multicast stream: %4.1f%% CPU\n"
    (100. *. uni) (100. *. multi)
