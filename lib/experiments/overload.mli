(** Overload resilience: UDP goodput under a 2x blast, with and without
    the device's interrupt admission control (receive-livelock
    mitigation). *)

type point = {
  offered_pps : int;
  unmitigated_goodput : float;
  mitigated_goodput : float;
}

val ratio : point -> float
(** [mitigated /. unmitigated]; [infinity] when the unmitigated victim
    livelocked completely. *)

val default_offered_pps : int
(** 2x the victim's per-datagram service capacity. *)

val run : ?offered_pps:int -> unit -> point

val print : ?offered_pps:int -> unit -> point
(** {!run} with a human-readable report on stdout. *)
