(* Shared experiment scaffolding: canonical two-host and three-host
   testbeds under both OS models, echo servers/clients, and helpers for
   driving the simulation to completion. *)

let ip_a = Proto.Ipaddr.v 10 0 1 1
let ip_b = Proto.Ipaddr.v 10 0 1 2
let ip_client = Proto.Ipaddr.v 10 0 1 2
let ip_middle = Proto.Ipaddr.v 10 0 1 1
let ip_middle2 = Proto.Ipaddr.v 10 0 2 1
let ip_server = Proto.Ipaddr.v 10 0 2 2

let net1 = Proto.Ipaddr.v 10 0 1 0
let net2 = Proto.Ipaddr.v 10 0 2 0

type plexus_pair = {
  engine : Sim.Engine.t;
  a : Plexus.Stack.t;
  b : Plexus.Stack.t;
}

let plexus_pair ?costs ?observe ?(flowcache = false) params =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair ?costs ?observe engine params ~a:("hostA", ip_a)
      ~b:("hostB", ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  if flowcache then begin
    Spin.Dispatcher.set_flow_cache (Plexus.Graph.dispatcher (Plexus.Stack.graph a)) true;
    Spin.Dispatcher.set_flow_cache (Plexus.Graph.dispatcher (Plexus.Stack.graph b)) true
  end;
  { engine; a; b }

type du_pair = {
  du_engine : Sim.Engine.t;
  dua : Osmodel.Du_stack.t;
  dub : Osmodel.Du_stack.t;
}

let du_pair ?costs params =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair ?costs engine params ~a:("hostA", ip_a)
      ~b:("hostB", ip_b)
  in
  let dua = Osmodel.Du_stack.create ea.Netsim.Network.host in
  let dub = Osmodel.Du_stack.create eb.Netsim.Network.host in
  Osmodel.Du_stack.prime_arp dua ip_b (Netsim.Dev.mac eb.Netsim.Network.dev);
  Osmodel.Du_stack.prime_arp dub ip_a (Netsim.Dev.mac ea.Netsim.Network.dev);
  { du_engine = engine; dua; dub }

(* --- UDP echo round-trip measurement --------------------------------- *)

(* Plexus: an echo extension on B, a pinging extension on A.  Returns the
   series of round-trip times in microseconds. *)
let udp_echo_plexus ?costs ?(mode = Spin.Dispatcher.Interrupt)
    ?(payload_len = 8) ?(warmup = 20) ?(iters = 200) params =
  let p = plexus_pair ?costs params in
  Plexus.Stack.set_delivery p.a mode;
  Plexus.Stack.set_delivery p.b mode;
  let udp_a = Plexus.Stack.udp p.a and udp_b = Plexus.Stack.udp p.b in
  let server =
    match Plexus.Udp_mgr.bind udp_b ~owner:"echo-server" ~port:7 with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_b server (fun ctx ->
        let data = View.to_string (Plexus.Pctx.view ctx) in
        let src = (Plexus.Pctx.ip_exn ctx).Proto.Ipv4.src in
        Plexus.Udp_mgr.send udp_b server ~dst:(src, ctx.Plexus.Pctx.src_port) data)
  in
  let client =
    match Plexus.Udp_mgr.bind udp_a ~owner:"echo-client" ~port:5001 with
    | Ok ep -> ep
    | Error _ -> assert false
  in
  let series = Sim.Stats.Series.create () in
  let payload = String.make payload_len 'x' in
  let remaining = ref (warmup + iters) in
  let sent_at = ref Sim.Stime.zero in
  let send_next () =
    if !remaining > 0 then begin
      decr remaining;
      sent_at := Sim.Engine.now p.engine;
      Plexus.Udp_mgr.send udp_a client ~dst:(ip_b, 7) payload
    end
  in
  let (_ : unit -> unit) =
    Plexus.Udp_mgr.install_recv udp_a client (fun _ctx ->
        let rtt = Sim.Stime.sub (Sim.Engine.now p.engine) !sent_at in
        if !remaining < iters then Sim.Stats.Series.add_time series rtt;
        send_next ())
  in
  send_next ();
  Sim.Engine.run p.engine ~max_events:10_000_000;
  series

(* DIGITAL UNIX: same workload over sockets. *)
let udp_echo_du ?(payload_len = 8) ?(warmup = 20) ?(iters = 200) params =
  let p = du_pair params in
  let server =
    match Osmodel.Du_stack.udp_bind p.dub ~port:7 with
    | Ok s -> s
    | Error _ -> assert false
  in
  Osmodel.Du_stack.udp_set_recv server (fun ~src data ->
      Osmodel.Du_stack.udp_sendto p.dub server ~dst:src data);
  let client =
    match Osmodel.Du_stack.udp_bind p.dua ~port:5001 with
    | Ok s -> s
    | Error _ -> assert false
  in
  let series = Sim.Stats.Series.create () in
  let payload = String.make payload_len 'x' in
  let remaining = ref (warmup + iters) in
  let sent_at = ref Sim.Stime.zero in
  let send_next () =
    if !remaining > 0 then begin
      decr remaining;
      sent_at := Sim.Engine.now p.du_engine;
      Osmodel.Du_stack.udp_sendto p.dua client ~dst:(ip_b, 7) payload
    end
  in
  Osmodel.Du_stack.udp_set_recv client (fun ~src:_ _ ->
      let rtt = Sim.Stime.sub (Sim.Engine.now p.du_engine) !sent_at in
      if !remaining < iters then Sim.Stats.Series.add_time series rtt;
      send_next ());
  send_next ();
  Sim.Engine.run p.du_engine ~max_events:10_000_000;
  series

(* User-level protocol library (section 6's related-work model): same
   workload through Osmodel.Ulib. *)
let udp_echo_ulib ?(payload_len = 8) ?(warmup = 20) ?(iters = 200) params =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine params ~a:("hostA", ip_a) ~b:("hostB", ip_b)
  in
  let ua = Osmodel.Ulib.create ea.Netsim.Network.host in
  let ub = Osmodel.Ulib.create eb.Netsim.Network.host in
  Osmodel.Ulib.prime_arp ua ip_b (Netsim.Dev.mac eb.Netsim.Network.dev);
  Osmodel.Ulib.prime_arp ub ip_a (Netsim.Dev.mac ea.Netsim.Network.dev);
  let server =
    match Osmodel.Ulib.udp_bind ub ~port:7 with
    | Ok s -> s
    | Error _ -> assert false
  in
  Osmodel.Ulib.udp_set_recv server (fun ~src data ->
      Osmodel.Ulib.udp_sendto ub server ~dst:src data);
  let client =
    match Osmodel.Ulib.udp_bind ua ~port:5001 with
    | Ok s -> s
    | Error _ -> assert false
  in
  let series = Sim.Stats.Series.create () in
  let payload = String.make payload_len 'x' in
  let remaining = ref (warmup + iters) in
  let sent_at = ref Sim.Stime.zero in
  let send_next () =
    if !remaining > 0 then begin
      decr remaining;
      sent_at := Sim.Engine.now engine;
      Osmodel.Ulib.udp_sendto ua client ~dst:(ip_b, 7) payload
    end
  in
  Osmodel.Ulib.udp_set_recv client (fun ~src:_ _ ->
      let rtt = Sim.Stime.sub (Sim.Engine.now engine) !sent_at in
      if !remaining < iters then Sim.Stats.Series.add_time series rtt;
      send_next ());
  send_next ();
  Sim.Engine.run engine ~max_events:10_000_000;
  series

(* Theoretical driver-to-driver round trip: what the paper's "minimal
   round trip time using our hardware as measured between the device
   drivers" bar shows. *)
let raw_device_rtt (params : Netsim.Costs.device) ~len =
  let one_way =
    Sim.Stime.to_us params.tx_fixed
    +. Sim.Stime.to_us params.rx_fixed
    +. (params.pio_ns_per_byte *. float_of_int len /. 1000. *. 2.)
    +. float_of_int (params.frame_overhead len)
       *. 8e6 /. float_of_int params.bw_bits_per_s
    +. Sim.Stime.to_us params.prop_delay
  in
  2. *. one_way

(* --- table rendering -------------------------------------------------- *)

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_row fmt = Printf.printf fmt

let mbps ~bytes ~elapsed_us = float_of_int bytes *. 8. /. elapsed_us
