(* Overload resilience: goodput under a 2x blast, with and without the
   device's interrupt admission control.

   {!Livelock} measures how interrupt-level protocol work starves a
   compute application; this experiment measures the flip side — what the
   {e receiver itself} gets done.  The victim's UDP sink hands datagrams
   to an application that costs thread-priority CPU per datagram (parse,
   copy into a store: the typical server loop).  Under a blast at twice
   the victim's service capacity:

   - unmitigated, every arriving frame takes the full receive interrupt,
     interrupt work alone exceeds the CPU, the application thread never
     runs, and goodput collapses toward zero — the classic receive
     livelock;
   - with admission control ({!Netsim.Dev.set_admission}), only a small
     budget of frames per window takes the interrupt path; the rest are
     parked (cheaply) on the deferred queue and drained in batches at
     thread priority, and frames beyond the queue limit are shed {e
     before} any interrupt cost is paid.  Delivery now competes fairly
     with the application, so admitted datagrams are also consumed:
     goodput degrades gracefully instead of collapsing.

   The CI gate requires mitigated goodput >= 2x unmitigated at 2x
   offered overload (in practice the ratio is far larger). *)

type point = {
  offered_pps : int;
  unmitigated_goodput : float;  (** consumed datagrams/s, admission off *)
  mitigated_goodput : float;  (** consumed datagrams/s, admission on *)
}

let ratio p =
  if p.unmitigated_goodput <= 0. then infinity
  else p.mitigated_goodput /. p.unmitigated_goodput

(* Per-datagram application work: dominates the protocol path, as real
   request processing does. *)
let app_work = Sim.Stime.us 50

(* A pre-built valid frame: Ethernet + IP + UDP to the victim port. *)
let build_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~port =
  let pkt = Mbuf.of_string (String.make 18 'o') in
  Proto.Udp.encapsulate pkt ~src:src_ip ~dst:dst_ip ~src_port:5000
    ~dst_port:port;
  Proto.Ipv4.encapsulate pkt
    (Proto.Ipv4.make ~proto:Proto.Ipv4.proto_udp ~src:src_ip ~dst:dst_ip
       ~payload_len:(Mbuf.length pkt) ());
  Proto.Ether.encapsulate pkt
    { Proto.Ether.dst = dst_mac; src = src_mac; etype = Proto.Ether.etype_ip };
  Mbuf.to_string pkt

let warmup = Sim.Stime.ms 100
let horizon = Sim.Stime.ms 600

let run_one ~mitigated ~offered_pps () =
  let engine = Sim.Engine.create () in
  (* T3: enough wire capacity that the victim's CPU — not the link — is
     the bottleneck, so "2x overload" means 2x its service rate. *)
  let ea, eb =
    Netsim.Network.pair engine (Netsim.Costs.t3 ())
      ~a:("blaster", Common.ip_a) ~b:("victim", Common.ip_b)
  in
  if mitigated then
    Netsim.Dev.set_admission ~budget:4 ~window:(Sim.Stime.ms 1)
      ~defer_limit:64 eb.Netsim.Network.dev;
  let victim = Plexus.Stack.build eb.Netsim.Network.host in
  let udp = Plexus.Stack.udp victim in
  let victim_cpu = Netsim.Host.cpu eb.Netsim.Network.host in
  (* The application: a bounded request queue fed by the sink handler,
     consumed at thread priority.  Only a {e consumed} datagram counts as
     goodput. *)
  let q = Queue.create () in
  let q_limit = 256 in
  let consumed = ref 0 in
  let consumed_at_warmup = ref 0 in
  let draining = ref false in
  let rec consume () =
    if Queue.is_empty q then draining := false
    else
      Sim.Cpu.run victim_cpu ~prio:Sim.Cpu.Thread ~cost:app_work (fun () ->
          ignore (Queue.pop q);
          incr consumed;
          consume ())
  in
  (match Plexus.Udp_mgr.bind udp ~owner:"server" ~port:9 with
  | Error _ -> assert false
  | Ok ep ->
      let (_ : unit -> unit) =
        Plexus.Udp_mgr.install_recv udp ep (fun _ ->
            if Queue.length q < q_limit then Queue.push () q;
            if not !draining then begin
              draining := true;
              consume ()
            end)
      in
      ());
  let frame =
    build_frame
      ~src_mac:(Netsim.Dev.mac ea.Netsim.Network.dev)
      ~dst_mac:(Netsim.Dev.mac eb.Netsim.Network.dev)
      ~src_ip:Common.ip_a ~dst_ip:Common.ip_b ~port:9
  in
  let period_ns = 1_000_000_000 / offered_pps in
  let rec blast () =
    if Sim.Stime.compare (Sim.Engine.now engine) horizon < 0 then begin
      Netsim.Dev.transmit ea.Netsim.Network.dev (Mbuf.of_string frame);
      ignore (Sim.Engine.schedule_in engine ~delay:(Sim.Stime.ns period_ns) blast)
    end
  in
  blast ();
  ignore
    (Sim.Engine.schedule engine ~at:warmup (fun () ->
         consumed_at_warmup := !consumed));
  Sim.Engine.run engine ~until:horizon ~max_events:50_000_000;
  let window_s = Sim.Stime.to_us (Sim.Stime.sub horizon warmup) /. 1e6 in
  float_of_int (!consumed - !consumed_at_warmup) /. window_s

(* The victim's service capacity is ~1/(rx path + app work) per datagram;
   with 50 us app work and ~75 us of driver+stack, ~8k/s.  16k pps offered
   is 2x that while staying well inside the T3's wire capacity. *)
let default_offered_pps = 16_000

let run ?(offered_pps = default_offered_pps) () =
  {
    offered_pps;
    unmitigated_goodput = run_one ~mitigated:false ~offered_pps ();
    mitigated_goodput = run_one ~mitigated:true ~offered_pps ();
  }

let print ?offered_pps () =
  Common.print_header
    "Overload: UDP goodput at 2x capacity, admission control off vs. on";
  let p = run ?offered_pps () in
  Printf.printf "%14s %18s %18s %8s\n" "offered pkt/s" "unmitigated/s"
    "mitigated/s" "ratio";
  Printf.printf "%14d %18.0f %18.0f %8s\n" p.offered_pps p.unmitigated_goodput
    p.mitigated_goodput
    (let r = ratio p in
     if r = infinity then "inf" else Printf.sprintf "%.1fx" r);
  Printf.printf
    "(goodput = datagrams fully consumed by the thread-priority application.\n\
    \ Unmitigated, interrupt servicing alone exceeds the CPU and the\n\
    \ application starves; admission control defers past a small budget and\n\
    \ sheds before interrupt cost, so delivery and consumption share the CPU.)\n";
  p
