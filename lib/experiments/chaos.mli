(** Chaos soak: UDP, fragmented UDP and TCP flows through randomized,
    seeded per-link fault plans, with integrity / accounting / resource
    invariants checked after every run. *)

(** The fault classes enabled on the link for a scenario. *)
type fault_mix = {
  loss : Netsim.Faults.loss;
  corrupt_prob : float;
  corrupt_min_off : int;
  duplicate_prob : float;
  jitter_prob : float;
  jitter_max : Sim.Stime.t;
}

val default_mix : fault_mix
(** Bernoulli loss + corruption + duplication + jitter. *)

val burst_mix : fault_mix
(** {!default_mix} with Gilbert–Elliott burst loss. *)

type udp_outcome = {
  u_sent : int;
  u_sunk : int;
  u_payload_ok : bool;
  u_bad_checksum : int;
  u_drops : int;
  u_corruptions : int;
  u_duplicates : int;
  u_delays : int;
  u_reconciled : bool;
  u_pool_leaked : int;
  u_pool_underflows : int;
}

val udp_blast :
  ?fcache:bool -> ?mix:fault_mix -> ?count:int -> ?payload_len:int ->
  seed:int -> unit -> udp_outcome
(** One-way UDP datagrams through the fault plan.  Corruption is
    constrained to the payload region, so the accounting must reconcile
    {e exactly}: [sunk + caught = sent - dropped + duplicated], with
    every injected corruption caught by the UDP checksum. *)

val udp_ok : udp_outcome -> bool
val pp_udp_outcome : Format.formatter -> udp_outcome -> unit

type frag_outcome = {
  f_sent : int;
  f_sunk : int;
  f_payload_ok : bool;
  f_bad_checksum : int;
  f_timeouts : int;
  f_pending : int;
  f_frames_sent : int;
  f_frames_rx : int;
  f_reconciled : bool;
  f_pool_leaked : int;
  f_pool_underflows : int;
}

val udp_frag :
  ?fcache:bool -> ?mix:fault_mix -> ?count:int -> ?payload_len:int ->
  seed:int -> unit -> frag_outcome
(** Datagrams larger than the MTU.  Frame-level accounting is exact
    ([frames_rx = frames_sent - dropped + duplicated]); datagram-level
    completions and timeouts are checked against the bounds the mix
    allows (a loss burst can eat a whole fragment set without trace; a
    delayed duplicate can open a ghost context that times out).  Nothing
    may be left pending after the run drains. *)

val frag_ok : frag_outcome -> bool
val pp_frag_outcome : Format.formatter -> frag_outcome -> unit

type tcp_outcome = {
  t_sent_bytes : int;
  t_recv_bytes : int;
  t_stream_ok : bool;
  t_complete : bool;
  t_error : string option;
  t_bad_checksum : int;
  t_corruptions : int;
  t_drops : int;
  t_pool_leaked : int;
  t_pool_underflows : int;
}

val tcp_transfer :
  ?fcache:bool -> ?mix:fault_mix -> ?total:int -> seed:int -> unit ->
  tcp_outcome
(** A byte-stream transfer with corruption allowed anywhere past the
    Ethernet header: the received stream must be an exact prefix of what
    was sent (complete, or an error cleanly surfaced) — injected flips
    surface as retransmissions, never as stream corruption. *)

val tcp_ok : tcp_outcome -> bool
val pp_tcp_outcome : Format.formatter -> tcp_outcome -> unit

type soak = {
  seeds : int;
  udp_failures : int;
  frag_failures : int;
  tcp_failures : int;
  cache_divergences : int;
}

val udp_equivalent : udp_outcome -> udp_outcome -> bool
(** Flow-cached and uncached runs of the same seed must agree on every
    counter (cached delivery is observably equivalent, faults included). *)

val run_soak : ?verbose:bool -> ?seeds:int -> ?base_seed:int -> unit -> soak
(** Sweep all three scenarios (and the cache-equivalence check) over
    [seeds] consecutive seeds, alternating Bernoulli and burst loss. *)

val soak_ok : soak -> bool

val print : ?verbose:bool -> ?seeds:int -> ?base_seed:int -> unit -> soak
(** {!run_soak} with a human-readable report on stdout. *)
