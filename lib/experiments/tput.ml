(* Section 4.2: TCP throughput.

   Paper values: Ethernet 8.9 Mb/s on both systems (wire-limited); Fore
   ATM 33 Mb/s under Plexus vs 27.9 Mb/s under DIGITAL UNIX (CPU-limited
   by programmed I/O, where the extra user/kernel copy hurts); the ATM
   driver-to-driver ceiling is ~53 Mb/s.  The T3's TCP number is absent
   from the paper (a DMA-support bug); we measure it anyway. *)

type row = {
  device : string;
  plexus_mbps : float;
  du_mbps : float;
  paper_plexus : float option;
  paper_du : float option;
  gap_p50_us : float;  (* inter-chunk arrival gap at the Plexus sink *)
  gap_p99_us : float;
}

let transfer_bytes = 2_000_000

(* Bulk transfer over Plexus: connect A->B, push [bytes], record the time
   from connection establishment to full delivery at B.  Also returns the
   distribution of gaps between successive chunk arrivals at the sink —
   recorded into a log-bucketed histogram, not a Series: a bulk transfer
   delivers an unbounded number of chunks, exactly the case Series is
   deprecated for. *)
let plexus_transfer_timed ?(bytes = transfer_bytes) params =
  let p = Common.plexus_pair params in
  let engine = p.Common.engine in
  let received = ref 0 in
  let start_at = ref Sim.Stime.zero in
  let done_at = ref None in
  let gaps = Sim.Stats.Histogram.create () in
  let last_arrival = ref None in
  (match
     Plexus.Tcp_mgr.listen (Plexus.Stack.tcp p.Common.b) ~owner:"sink"
       ~port:5001
       ~on_accept:(fun conn ->
         Plexus.Tcp_mgr.on_receive conn (fun data ->
             let now = Sim.Engine.now engine in
             (match !last_arrival with
             | Some prev ->
                 Sim.Stats.Histogram.record gaps
                   (Sim.Stime.to_ns (Sim.Stime.sub now prev))
             | None -> ());
             last_arrival := Some now;
             received := !received + String.length data;
             if !received >= bytes && !done_at = None then
               done_at := Some now))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (match
     Plexus.Tcp_mgr.connect (Plexus.Stack.tcp p.Common.a) ~owner:"source"
       ~dst:(Common.ip_b, 5001) ()
   with
  | Error _ -> assert false
  | Ok conn ->
      Plexus.Tcp_mgr.on_established conn (fun () ->
          start_at := Sim.Engine.now engine;
          Plexus.Tcp_mgr.send conn (String.make bytes 'd')));
  Sim.Engine.run engine ~until:(Sim.Stime.s 60) ~max_events:50_000_000;
  let mbps =
    match !done_at with
    | None -> nan
    | Some t ->
        Common.mbps ~bytes
          ~elapsed_us:(Sim.Stime.to_us (Sim.Stime.sub t !start_at))
  in
  (mbps, gaps)

let plexus_transfer ?bytes params = fst (plexus_transfer_timed ?bytes params)

let du_transfer ?(bytes = transfer_bytes) params =
  let p = Common.du_pair params in
  let engine = p.Common.du_engine in
  let received = ref 0 in
  let start_at = ref Sim.Stime.zero in
  let done_at = ref None in
  (match
     Osmodel.Du_stack.tcp_listen p.Common.dub ~port:5001
       ~on_accept:(fun conn ->
         Osmodel.Du_stack.on_receive conn (fun data ->
             received := !received + String.length data;
             if !received >= bytes && !done_at = None then
               done_at := Some (Sim.Engine.now engine)))
       ()
   with
  | Ok () -> ()
  | Error _ -> assert false);
  let conn = Osmodel.Du_stack.tcp_connect p.Common.dua ~dst:(Common.ip_b, 5001) () in
  Osmodel.Du_stack.on_established conn (fun () ->
      start_at := Sim.Engine.now engine;
      Osmodel.Du_stack.tcp_send p.Common.dua conn (String.make bytes 'd'));
  Sim.Engine.run engine ~until:(Sim.Stime.s 60) ~max_events:50_000_000;
  match !done_at with
  | None -> nan
  | Some t ->
      Common.mbps ~bytes ~elapsed_us:(Sim.Stime.to_us (Sim.Stime.sub t !start_at))

let us_of_ns n = float_of_int n /. 1000.

let row ?bytes ~device ~paper_plexus ~paper_du params =
  let plexus_mbps, gaps = plexus_transfer_timed ?bytes params in
  let gap p =
    if Sim.Stats.Histogram.is_empty gaps then nan
    else us_of_ns (Sim.Stats.Histogram.percentile gaps p)
  in
  {
    device;
    plexus_mbps;
    du_mbps = du_transfer ?bytes params;
    paper_plexus;
    paper_du;
    gap_p50_us = gap 50.;
    gap_p99_us = gap 99.;
  }

let run ?bytes () =
  [
    row ?bytes ~device:"ethernet" ~paper_plexus:(Some 8.9)
      ~paper_du:(Some 8.9)
      (Netsim.Costs.ethernet ());
    row ?bytes ~device:"atm" ~paper_plexus:(Some 33.) ~paper_du:(Some 27.9)
      (Netsim.Costs.atm ());
    row ?bytes ~device:"t3" ~paper_plexus:None ~paper_du:None
      (Netsim.Costs.t3 ());
  ]

let print ?bytes () =
  Common.print_header "Section 4.2: TCP throughput (Mb/s)";
  Printf.printf "%-10s %10s %10s %14s %12s %10s %10s\n" "device" "plexus" "du"
    "paper(plexus)" "paper(du)" "gap-p50us" "gap-p99us";
  let rows = run ?bytes () in
  List.iter
    (fun r ->
      let p = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
      Printf.printf "%-10s %10.1f %10.1f %14s %12s %10.1f %10.1f\n" r.device
        r.plexus_mbps r.du_mbps (p r.paper_plexus) (p r.paper_du) r.gap_p50_us
        r.gap_p99_us)
    rows;
  Printf.printf
    "(ATM is programmed I/O: CPU-bound; paper's driver-to-driver ceiling ~53 Mb/s)\n";
  rows
