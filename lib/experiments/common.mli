(** Shared experiment scaffolding: canonical testbeds and echo drivers. *)

val ip_a : Proto.Ipaddr.t
val ip_b : Proto.Ipaddr.t
val ip_client : Proto.Ipaddr.t
val ip_middle : Proto.Ipaddr.t
val ip_middle2 : Proto.Ipaddr.t
val ip_server : Proto.Ipaddr.t
val net1 : Proto.Ipaddr.t
val net2 : Proto.Ipaddr.t

type plexus_pair = {
  engine : Sim.Engine.t;
  a : Plexus.Stack.t;
  b : Plexus.Stack.t;
}

val plexus_pair :
  ?costs:Netsim.Costs.t -> ?observe:bool -> ?flowcache:bool ->
  Netsim.Costs.device -> plexus_pair
(** Two hosts with full Plexus stacks, ARP primed.  [observe] (default
    true) controls per-kernel metrics registries; [flowcache] (default
    false) enables the dispatchers' per-flow fast-path cache. *)

type du_pair = {
  du_engine : Sim.Engine.t;
  dua : Osmodel.Du_stack.t;
  dub : Osmodel.Du_stack.t;
}

val du_pair : ?costs:Netsim.Costs.t -> Netsim.Costs.device -> du_pair

val udp_echo_plexus :
  ?costs:Netsim.Costs.t -> ?mode:Spin.Dispatcher.delivery -> ?payload_len:int ->
  ?warmup:int -> ?iters:int -> Netsim.Costs.device -> Sim.Stats.Series.t
(** UDP echo round trips over a Plexus pair; returns RTTs in µs. *)

val udp_echo_du :
  ?payload_len:int -> ?warmup:int -> ?iters:int -> Netsim.Costs.device ->
  Sim.Stats.Series.t

val udp_echo_ulib :
  ?payload_len:int -> ?warmup:int -> ?iters:int -> Netsim.Costs.device ->
  Sim.Stats.Series.t
(** The same echo through a user-level protocol library (section 6's
    related-work model). *)

val raw_device_rtt : Netsim.Costs.device -> len:int -> float
(** Theoretical driver-to-driver round trip in µs (the paper's "minimal
    round trip time between the device drivers"). *)

val print_header : string -> unit
val print_row : ('a, out_channel, unit) format -> 'a
val mbps : bytes:int -> elapsed_us:float -> float
