(* A server farm at steady state: N client hosts, each behind its own
   in-kernel forwarder, hammering one HTTP server host with a
   heavy-tailed request mix.

   Topology (chain [i], 1-based):

     client_i (10.i.0.1) -- fwd_i (10.i.0.2) -- server (10.0.0.100)

   The server host carries one device per chain (subnet 10.i.0.0/16 on
   device [i]); each forwarder carries two (10.i.0.0/24 toward its
   client, 10.0.0.0/8 toward the server).  Clients connect to their
   forwarder's address; the forwarder NAT-rewrites both directions
   below transport, exactly as in the Figure 7 redirection experiment,
   so every TCP handshake, data segment and teardown is end-to-end
   between a client and the server.

   Two drivers share the testbed:

   - [run]: an open workload — Poisson request arrivals per client,
     Pareto-distributed response sizes (the classic heavy-tailed web
     mix) — reporting goodput and p50/p99 request latency.

   - [scale_setup]: the million-flow steady-state probe.  It parks
     [live_flows] established-but-idle connections across the farm
     (exercising the sharded connection tables, the per-destination
     ephemeral allocator and the timer wheel at population), then
     returns a thunk that drives a burst of fresh request/response
     probes through the loaded datapath and reports the wire-frame
     count — so a caller can measure host cost per simulated packet at
     1k vs. 100k live flows and gate on the ratio staying flat. *)

let service_port = 8080
let server_ip = Proto.Ipaddr.v 10 0 0 100

(* Response bodies are served from a fixed set of log-spaced pages; a
   client draws a Pareto size and requests the smallest page that
   covers it.  Quantisation keeps the route table finite while
   preserving the heavy tail up to the largest page. *)
let page_sizes = [| 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 |]
let page_path size = Printf.sprintf "/obj%d" size

let page_for size =
  let n = Array.length page_sizes in
  let rec go k =
    if k >= n - 1 then page_sizes.(n - 1)
    else if page_sizes.(k) >= size then page_sizes.(k)
    else go (k + 1)
  in
  go 0

type chain = {
  client : Plexus.Stack.t;
  client_rng : Sim.Rng.t;
  fwd_ip : Proto.Ipaddr.t;
}

type farm = {
  engine : Sim.Engine.t;
  server : Plexus.Stack.t;
  http : Apps.Http_server.t;
  chains : chain array;
  devices : Netsim.Dev.t list;
}

let build ?(params = Netsim.Costs.ethernet ()) ?(flowcache = true) ?(seed = 7)
    ~clients () =
  if clients < 1 || clients > 250 then
    invalid_arg "Farm.build: clients must be in [1, 250]";
  let engine = Sim.Engine.create ~seed () in
  let hserver = Netsim.Host.create engine ~name:"server" ~ip:server_ip in
  (* Hosts and wiring first: a stack is built over every device already
     attached to its host, so all devices must exist before any
     [Stack.build]. *)
  let raw =
    Array.init clients (fun idx ->
        let i = idx + 1 in
        let cip = Proto.Ipaddr.v 10 i 0 1 and fip = Proto.Ipaddr.v 10 i 0 2 in
        let hc =
          Netsim.Host.create engine ~name:(Printf.sprintf "client%d" i) ~ip:cip
        in
        let hf =
          Netsim.Host.create engine ~name:(Printf.sprintf "fwd%d" i) ~ip:fip
        in
        let dc = Netsim.Host.add_device hc params in
        let df1 = Netsim.Host.add_device hf params in
        let df2 = Netsim.Host.add_device hf params in
        let ds = Netsim.Host.add_device hserver params in
        Netsim.Dev.connect dc df1;
        Netsim.Dev.connect df2 ds;
        (i, hc, hf, dc, df1, df2, ds, cip, fip))
  in
  let server =
    Plexus.Stack.build
      ~subnets:(List.init clients (fun idx -> (Proto.Ipaddr.v 10 (idx + 1) 0 0, 16)))
      hserver
  in
  let enable_cache stack =
    Spin.Dispatcher.set_flow_cache
      (Plexus.Graph.dispatcher (Plexus.Stack.graph stack))
      true
  in
  if flowcache then enable_cache server;
  let server_arps = Plexus.Stack.arps server in
  let rng = Sim.Rng.create seed in
  let chains =
    Array.mapi
      (fun idx (i, hc, hf, dc, df1, df2, ds, cip, fip) ->
        let client = Plexus.Stack.build hc in
        let fwd =
          Plexus.Stack.build
            ~subnets:
              [ (Proto.Ipaddr.v 10 i 0 0, 24); (Proto.Ipaddr.v 10 0 0 0, 8) ]
            hf
        in
        (* Steady-state ARP on every segment of the chain. *)
        Plexus.Arp_mgr.prime (Plexus.Stack.arp client) fip (Netsim.Dev.mac df1);
        (match Plexus.Stack.arps fwd with
        | [ a1; a2 ] ->
            Plexus.Arp_mgr.prime a1 cip (Netsim.Dev.mac dc);
            Plexus.Arp_mgr.prime a2 server_ip (Netsim.Dev.mac ds)
        | _ -> assert false);
        Plexus.Arp_mgr.prime (List.nth server_arps idx) fip
          (Netsim.Dev.mac df2);
        (* The forwarder host's standard TCP cedes the forwarded port. *)
        Plexus.Tcp_mgr.exclude_ports (Plexus.Stack.tcp fwd) [ service_port ];
        Plexus.Tcp_mgr.exclude_src_ports (Plexus.Stack.tcp fwd)
          [ service_port ];
        let (_ : Apps.Forwarder.t) =
          Apps.Forwarder.create fwd ~listen_port:service_port
            ~backend:(server_ip, service_port)
        in
        if flowcache then begin
          enable_cache client;
          enable_cache fwd
        end;
        { client; client_rng = Sim.Rng.split rng; fwd_ip = fip })
      raw
  in
  let http = Apps.Http_server.create ~port:service_port server in
  Array.iter
    (fun size -> Apps.Http_server.add_route http (page_path size)
        (String.make size 'x'))
    page_sizes;
  let devices =
    List.concat_map
      (fun (_, hc, hf, _, _, _, _, _, _) ->
        Netsim.Host.devices hc @ Netsim.Host.devices hf)
      (Array.to_list raw)
    @ Netsim.Host.devices hserver
  in
  { engine; server; http; chains; devices }

let wire_packets f =
  List.fold_left
    (fun acc d -> acc + (Netsim.Dev.counters d).Netsim.Dev.tx_packets)
    0 f.devices

let server_cache_evictions f =
  Spin.Dispatcher.path_cache_evictions
    (Plexus.Graph.dispatcher (Plexus.Stack.graph f.server))

(* --- the open heavy-tailed workload ----------------------------------- *)

type result = {
  clients : int;
  completed : int;  (* measured request completions (post-warmup) *)
  errors : int;
  goodput_mbps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  evictions : int;  (* server path-cache evictions over the run *)
}

let run ?params ?flowcache ?(clients = 8) ?(seed = 7) ?(warmup = 50)
    ?(requests = 400) ?(mean_gap_us = 400.) ?(shape = 1.2) ?(scale = 600.) () =
  let f = build ?params ?flowcache ~seed ~clients () in
  let total = warmup + requests in
  let series = Sim.Stats.Series.create () in
  let issued = ref 0 and completed = ref 0 and errors = ref 0 in
  let measured_bytes = ref 0 in
  let mark = ref Sim.Stime.zero and finish = ref Sim.Stime.zero in
  (* Each client runs a closed loop with Poisson think time: draw a gap,
     issue one GET for a Pareto-sized page, and loop when the response
     (or failure) lands.  The global [issued] budget stops the farm. *)
  let rec client_loop ch =
    if !issued < total then begin
      incr issued;
      let gap = Sim.Rng.exponential ch.client_rng ~mean:mean_gap_us in
      let (_ : Sim.Engine.handle) =
        Sim.Engine.schedule_in f.engine ~delay:(Sim.Stime.of_us_f gap)
          (fun () ->
            let size =
              int_of_float (Sim.Rng.pareto ch.client_rng ~shape ~scale)
            in
            let path = page_path (page_for size) in
            Apps.Http_client.get ch.client ~dst:(ch.fwd_ip, service_port) ~path
              (fun res ->
                incr completed;
                (match res with
                | Some r when r.Apps.Http_client.status = 200 ->
                    if !completed > warmup then begin
                      Sim.Stats.Series.add_time series r.Apps.Http_client.elapsed;
                      measured_bytes :=
                        !measured_bytes + String.length r.Apps.Http_client.body;
                      finish := Sim.Engine.now f.engine
                    end
                | _ -> incr errors);
                if !completed = warmup then mark := Sim.Engine.now f.engine;
                client_loop ch))
      in
      ()
    end
  in
  Array.iter client_loop f.chains;
  Sim.Engine.run f.engine ~until:(Sim.Stime.s 600) ~max_events:200_000_000;
  let window_us = Sim.Stime.to_us (Sim.Stime.sub !finish !mark) in
  let goodput_mbps =
    if window_us > 0. then float_of_int !measured_bytes *. 8. /. window_us
    else 0.
  in
  {
    clients;
    completed = Sim.Stats.Series.count series;
    errors = !errors;
    goodput_mbps;
    mean_us = (if Sim.Stats.Series.is_empty series then 0.
               else Sim.Stats.Series.mean series);
    p50_us = (if Sim.Stats.Series.is_empty series then 0.
              else Sim.Stats.Series.percentile series 50.);
    p99_us = (if Sim.Stats.Series.is_empty series then 0.
              else Sim.Stats.Series.percentile series 99.);
    evictions = server_cache_evictions f;
  }

let print ?params ?flowcache ?clients ?seed ?warmup ?requests ?mean_gap_us
    ?shape ?scale () =
  let r =
    run ?params ?flowcache ?clients ?seed ?warmup ?requests ?mean_gap_us
      ?shape ?scale ()
  in
  Common.print_header
    "Server farm: heavy-tailed HTTP through per-client forwarders";
  Printf.printf "%10s %10s %8s %12s %10s %10s %10s\n" "clients" "requests"
    "errors" "goodput" "mean" "p50" "p99";
  Printf.printf "%10d %10d %8d %9.1f Mb/s %7.1f us %7.1f us %7.1f us\n"
    r.clients r.completed r.errors r.goodput_mbps r.mean_us r.p50_us r.p99_us;
  Printf.printf
    "(Pareto page sizes over %d..%d bytes, Poisson arrivals; %d server \
     path-cache evictions)\n"
    page_sizes.(0)
    page_sizes.(Array.length page_sizes - 1)
    r.evictions;
  r

(* --- the steady-state scale probe -------------------------------------- *)

type probe = {
  live_flows : int;    (* idle established connections held open *)
  established : int;   (* how many of them actually completed the handshake *)
  probes : int;        (* fresh request/response exchanges this round *)
  probe_errors : int;
  packets : int;       (* wire frames carried during the probe round *)
  sim_elapsed_us : float;
  probe_goodput_mbps : float;
  probe_p50_us : float;
  probe_p99_us : float;
}

let probe_page = 1024

let scale_setup ?params ?(clients = 8) ?(seed = 11) ?(setup_gap_us = 20)
    ?(probe_gap_us = 150.) ~live_flows ~probes () =
  if live_flows < 0 then invalid_arg "Farm.scale_setup: negative live_flows";
  let f = build ?params ~seed ~clients () in
  (* Park the flow population.  Establishment is a closed loop per
     chain — each client starts its next handshake [setup_gap_us] after
     the previous one completes — so the aggregate connect rate
     self-paces to the server's simulated CPU capacity instead of
     overrunning it into a retransmission storm.  The connections are
     held open and idle — the HTTP server sits waiting for a request
     that never comes — which is exactly the steady state a
     million-flow server lives in. *)
  let established = ref 0 in
  let n_chains = Array.length f.chains in
  let per = live_flows / n_chains and extra = live_flows mod n_chains in
  Array.iteri
    (fun idx ch ->
      let n = per + if idx < extra then 1 else 0 in
      let rec connect_k k =
        if k < n then begin
          let advanced = ref false in
          let next () =
            if not !advanced then begin
              advanced := true;
              let (_ : Sim.Engine.handle) =
                Sim.Engine.schedule_in f.engine
                  ~delay:(Sim.Stime.us setup_gap_us) (fun () ->
                    connect_k (k + 1))
              in
              ()
            end
          in
          match
            Plexus.Tcp_mgr.connect
              (Plexus.Stack.tcp ch.client)
              ~owner:"flow"
              ~dst:(ch.fwd_ip, service_port)
              ()
          with
          | Ok conn ->
              Plexus.Tcp_mgr.on_established conn (fun () ->
                  incr established;
                  next ());
              (* a handshake that dies instead of establishing must not
                 stall the chain *)
              Plexus.Tcp_mgr.on_error conn (fun _ -> next ());
              Plexus.Tcp_mgr.on_close conn (fun () -> next ())
          | Error _ -> next ()
        end
      in
      connect_k 0)
    f.chains;
  Sim.Engine.run f.engine
    ~max_events:(Stdlib.max 10_000_000 (live_flows * 1000));
  let probe_rng = Sim.Rng.create (seed + 1) in
  let path = page_path probe_page in
  (* The probe round: [probes] fresh GETs split over the chains, each
     chain a closed loop with Poisson think time (at most one probe in
     flight per chain, so the numbers measure the loaded datapath, not
     self-inflicted queueing).  Callable repeatedly — each call is one
     timing round. *)
  fun () ->
    let series = Sim.Stats.Series.create () in
    let bytes = ref 0 and errors = ref 0 in
    let t0 = Sim.Engine.now f.engine in
    let finish = ref t0 in
    let pk0 = wire_packets f in
    let per = probes / n_chains and extra = probes mod n_chains in
    Array.iteri
      (fun idx ch ->
        let n = per + if idx < extra then 1 else 0 in
        let rec probe_k k =
          if k < n then begin
            let gap = Sim.Rng.exponential probe_rng ~mean:probe_gap_us in
            let (_ : Sim.Engine.handle) =
              Sim.Engine.schedule_in f.engine ~delay:(Sim.Stime.of_us_f gap)
                (fun () ->
                  Apps.Http_client.get ch.client ~dst:(ch.fwd_ip, service_port)
                    ~path (fun res ->
                      (match res with
                      | Some r when r.Apps.Http_client.status = 200 ->
                          Sim.Stats.Series.add_time series
                            r.Apps.Http_client.elapsed;
                          bytes := !bytes + String.length r.Apps.Http_client.body
                      | _ -> incr errors);
                      finish := Sim.Engine.now f.engine;
                      probe_k (k + 1)))
            in
            ()
          end
        in
        probe_k 0)
      f.chains;
    Sim.Engine.run f.engine ~max_events:100_000_000;
    let sim_elapsed_us = Sim.Stime.to_us (Sim.Stime.sub !finish t0) in
    {
      live_flows;
      established = !established;
      probes;
      probe_errors = !errors;
      packets = wire_packets f - pk0;
      sim_elapsed_us;
      probe_goodput_mbps =
        (if sim_elapsed_us > 0. then float_of_int !bytes *. 8. /. sim_elapsed_us
         else 0.);
      probe_p50_us =
        (if Sim.Stats.Series.is_empty series then 0.
         else Sim.Stats.Series.percentile series 50.);
      probe_p99_us =
        (if Sim.Stats.Series.is_empty series then 0.
         else Sim.Stats.Series.percentile series 99.);
    }
