(** Ablations of design choices the paper calls out: guard scaling, the
    anti-spoofing policy, the checksum-disabled UDP variant, dispatcher
    cost sensitivity, and multicast semantics for the video server. *)

type guard_point = { extra_endpoints : int; rtt_us : float; indexed_rtt_us : float }

val guard_scaling : ?counts:int list -> ?iters:int -> unit -> guard_point list
(** UDP echo RTT with N extra (non-matching) endpoint guards installed:
    [rtt_us] with the bystanders unkeyed (linear scan), [indexed_rtt_us]
    with them in the dispatch index (skipped by the port hash). *)

type spoof_result = {
  overwrite_rtt : float;
  verify_rtt : float;
  spoofs_rejected : int;
}

val spoof_policy : ?iters:int -> unit -> spoof_result

type cksum_result = { with_cksum : float; without_cksum : float }

val cksum_variant : ?payload_len:int -> ?iters:int -> unit -> cksum_result

type filter_result = {
  native_rtt : float;
  interpreted_rtt : float;
  compiled_rtt : float;
  nodes : int;
}

val filter_vs_guard : ?iters:int -> unit -> filter_result
(** Echo RTT with the endpoint demultiplexed by a native guard vs. a
    rich interpreted packet filter vs. the same filter compiled. *)

type dispatch_point = { factor : int; rtt_us : float }

val dispatch_sensitivity :
  ?factors:int list -> ?iters:int -> unit -> dispatch_point list
(** Figure-5 Ethernet RTT with dispatch+guard costs inflated N-fold. *)

val video_multicast_util : ?streams:int -> unit -> float * float
(** Server CPU utilization [(unicast, multicast)] when every client
    watches the same stream. *)

val print : unit -> unit
