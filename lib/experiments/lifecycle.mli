(** Extension lifecycle soak: static verifier admission, runtime budget
    quarantine and zero-drop hot-swap, exercised end to end on the
    two-host Plexus testbed.

    Each run hot-swaps a compiler-signed monitor extension under UDP
    burst traffic ({!Spin.Linker.replace} triggered from inside a
    delivery, so the flip catches queued invocations in flight), then
    quarantines a rogue extension whose measured CPU blows the event's
    window, then checks that over-budget certificates are refused at
    both admission points.  The headline invariant is conservation:
    every datagram sent is both sunk by the application and counted by
    exactly one monitor generation. *)

type outcome = {
  o_sent : int;
  o_sunk : int;
  o_monitored : int;  (** sum of per-generation monitor counts *)
  o_generations : int;  (** generations that saw at least one packet *)
  o_swaps : int;
  o_max_inflight : int;
      (** most deliveries queued to the old generation at any flip *)
  o_drain_max_ns : int;
      (** worst simulated time from a flip to [swap_inflight = 0] *)
  o_quarantined : bool;  (** the rogue extension was evicted *)
  o_rejected : bool;  (** both over-budget admission paths refused *)
}

val run_once :
  ?count:int -> ?burst:int -> ?swap_period:int -> ?qcount:int -> unit ->
  outcome
(** One soak: [count] datagrams in bursts of [burst] (one burst per
    simulated millisecond), a hot-swap every [swap_period]-th packet,
    then [qcount] more datagrams under the quarantine policy. *)

val outcome_ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

type report = {
  l_runs : int;
  l_sent : int;
  l_sunk : int;
  l_monitored : int;
  l_swaps : int;
  l_max_inflight : int;
  l_drain_max_ns : int;
  l_quarantined : int;  (** runs where the rogue was evicted *)
  l_rejected : int;  (** runs where both admission paths refused *)
  l_failures : int;  (** runs violating any lifecycle invariant *)
}

val run_soak : ?runs:int -> ?verbose:bool -> unit -> report
(** Sweep {!run_once} over varying burst sizes and swap cadences. *)

val report_ok : report -> bool
val dropped : report -> int

val print : ?runs:int -> ?verbose:bool -> unit -> report
(** {!run_soak} with a human-readable report on stdout. *)
