(* Structured trace spans with pluggable sinks.

   The dispatcher (and devices, managers, ...) emit typed spans — raise,
   index lookup, guard evaluation, handler run, ephemeral commit,
   drop — each stamped with the simulated time, the event name and the
   handler involved, so a packet's path through the protocol graph can
   be reconstructed and asserted on.

   A trace endpoint owns one sink.  [Null] is the default and MUST be
   free on the hot path: emitters are expected to guard span
   construction with [if Trace.active tr then ...], so a disabled trace
   costs one mutable-field load and a branch per site. *)

type event =
  | Raise of { event : string; candidates : int; indexed : bool }
  | Index_lookup of { event : string; keys : int; candidates : int }
  | Guard_eval of { event : string; hid : int; label : string; hit : bool }
  | Handler_run of {
      event : string;
      hid : int;
      label : string;
      duration_ns : int;
    }
  | Ephemeral_commit of {
      event : string;
      hid : int;
      label : string;
      committed : int;
      total : int;
      duration_ns : int;
    }
  | Terminated of {
      event : string;
      hid : int;
      label : string;
      committed : int;
      total : int;
      duration_ns : int;
    }
  | Cache_hit of { event : string; hops : int; handlers : int }
  | Cache_invalidate of { event : string; reason : string }
  | Drop of { scope : string; reason : string }
  | Wire_fault of { link : string; fault : string; detail : string }
  | Handoff of {
      op : string; (* "enqueue" | "self_drain" | "phase_b_drain" *)
      from_domain : int;
      to_domain : int;
      frames : int;
    }
  | Message of { scope : string; text : string }

type span = { at_ns : int; event : event }

let kind = function
  | Raise _ -> "raise"
  | Index_lookup _ -> "index_lookup"
  | Guard_eval _ -> "guard_eval"
  | Handler_run _ -> "handler_run"
  | Ephemeral_commit _ -> "ephemeral_commit"
  | Terminated _ -> "terminated"
  | Cache_hit _ -> "cache_hit"
  | Cache_invalidate _ -> "cache_invalidate"
  | Drop _ -> "drop"
  | Wire_fault _ -> "wire_fault"
  | Handoff _ -> "handoff"
  | Message _ -> "message"

(* The event (or scope) a span belongs to — protocol-graph spans carry
   their node's event name, e.g. "udp.PacketRecv". *)
let scope = function
  | Raise { event; _ }
  | Index_lookup { event; _ }
  | Guard_eval { event; _ }
  | Handler_run { event; _ }
  | Ephemeral_commit { event; _ }
  | Terminated { event; _ }
  | Cache_hit { event; _ }
  | Cache_invalidate { event; _ } ->
      event
  | Drop { scope; _ } | Message { scope; _ } -> scope
  | Wire_fault { link; _ } -> link
  | Handoff { from_domain; _ } -> Printf.sprintf "domain%d" from_domain

let pp_ns ppf t =
  if t < 1_000 then Fmt.pf ppf "%dns" t
  else if t < 1_000_000 then Fmt.pf ppf "%.2fus" (float_of_int t /. 1e3)
  else if t < 1_000_000_000 then Fmt.pf ppf "%.3fms" (float_of_int t /. 1e6)
  else Fmt.pf ppf "%.3fs" (float_of_int t /. 1e9)

let pp_event ppf = function
  | Raise { event; candidates; indexed } ->
      Fmt.pf ppf "raise %s candidates=%d%s" event candidates
        (if indexed then " (indexed)" else "")
  | Index_lookup { event; keys; candidates } ->
      Fmt.pf ppf "index_lookup %s keys=%d candidates=%d" event keys candidates
  | Guard_eval { event; hid; label; hit } ->
      Fmt.pf ppf "guard_eval %s %s(h%d) %s" event label hid
        (if hit then "hit" else "miss")
  | Handler_run { event; hid; label; duration_ns } ->
      Fmt.pf ppf "handler_run %s %s(h%d) took %a" event label hid pp_ns
        duration_ns
  | Ephemeral_commit { event; hid; label; committed; total; duration_ns } ->
      Fmt.pf ppf "ephemeral_commit %s %s(h%d) %d/%d actions in %a" event label
        hid committed total pp_ns duration_ns
  | Terminated { event; hid; label; committed; total; duration_ns } ->
      Fmt.pf ppf "terminated %s %s(h%d) after %d/%d actions at budget %a"
        event label hid committed total pp_ns duration_ns
  | Cache_hit { event; hops; handlers } ->
      Fmt.pf ppf "cache_hit %s hops=%d handlers=%d" event hops handlers
  | Cache_invalidate { event; reason } ->
      Fmt.pf ppf "cache_invalidate %s reason=%s" event reason
  | Drop { scope; reason } -> Fmt.pf ppf "drop %s reason=%s" scope reason
  | Wire_fault { link; fault; detail } ->
      Fmt.pf ppf "wire_fault %s %s%s" link fault
        (if detail = "" then "" else " " ^ detail)
  | Handoff { op; from_domain; to_domain; frames } ->
      Fmt.pf ppf "handoff %s domain%d -> domain%d frames=%d" op from_domain
        to_domain frames
  | Message { scope; text } -> Fmt.pf ppf "%s: %s" scope text

let pp_span ppf s = Fmt.pf ppf "[%a] %a" pp_ns s.at_ns pp_event s.event

(* --- in-memory ring-buffer sink --------------------------------------- *)

module Ring = struct
  type t = {
    buf : span option array;
    mutable head : int; (* next write slot *)
    mutable len : int;
    mutable dropped : int; (* overwritten spans *)
  }

  let create ?(capacity = 1024) () =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity";
    { buf = Array.make capacity None; head = 0; len = 0; dropped = 0 }

  let capacity t = Array.length t.buf
  let length t = t.len
  let dropped t = t.dropped

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.len <- 0;
    t.dropped <- 0

  let push t s =
    let cap = Array.length t.buf in
    if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
    t.buf.(t.head) <- Some s;
    t.head <- (t.head + 1) mod cap

  (* Oldest retained span first. *)
  let to_list t =
    let cap = Array.length t.buf in
    let start = (t.head - t.len + cap) mod cap in
    List.init t.len (fun i ->
        match t.buf.((start + i) mod cap) with
        | Some s -> s
        | None -> assert false)
end

(* --- sinks and endpoints ---------------------------------------------- *)

type sink = Null | Stderr | Ring of Ring.t | Fn of (span -> unit)

type t = { mutable sink : sink }

let create ?(sink = Null) () = { sink }
let set_sink t s = t.sink <- s
let sink t = t.sink
let[@inline] active t = match t.sink with Null -> false | _ -> true

let emit t span =
  match t.sink with
  | Null -> ()
  | Stderr -> Fmt.epr "%a@." pp_span span
  | Ring r -> Ring.push r span
  | Fn f -> f span
