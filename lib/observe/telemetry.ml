(* Time-series telemetry: periodic registry snapshots, delta-encoded.

   A telemetry endpoint watches one {!Registry} and, each time [record]
   is called (the kernel schedules this on the engine clock), captures
   only the metrics whose sampled value changed since the previous
   point.  Points land in a bounded ring — steady state costs one
   snapshot walk per tick and O(changed) retained memory, so a
   long-running node keeps a sliding window of its own history.

   Scheduling lives in [Spin.Kernel] (observe cannot see the engine);
   this module is pure data. *)

type point = { at_ns : int; changed : (string * Registry.sample) list }

type t = {
  reg : Registry.t;
  buf : point option array;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
  mutable ticks : int;
  prev : (string, Registry.sample) Hashtbl.t;
}

let create ?(capacity = 256) reg =
  if capacity <= 0 then invalid_arg "Telemetry.create: capacity";
  {
    reg;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    ticks = 0;
    prev = Hashtbl.create 64;
  }

let registry t = t.reg
let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped
let ticks t = t.ticks

let push t p =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.head) <- Some p;
  t.head <- (t.head + 1) mod cap

(* Capture one point: every metric whose value differs from the last
   tick (all of them on the first).  Returns the number of changed
   metrics; a zero-change tick still records an (empty) point so gaps
   in the series are visible. *)
let record t ~at_ns =
  t.ticks <- t.ticks + 1;
  let changed =
    List.filter
      (fun (k, s) ->
        match Hashtbl.find_opt t.prev k with
        | Some s' when s' = s -> false
        | _ ->
            Hashtbl.replace t.prev k s;
            true)
      (Registry.snapshot t.reg)
  in
  push t { at_ns; changed };
  List.length changed

(* Oldest retained point first. *)
let points t =
  let cap = Array.length t.buf in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some p -> p
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.ticks <- 0;
  Hashtbl.reset t.prev

let point_to_json p =
  let entries =
    List.map
      (fun (k, s) ->
        Printf.sprintf "\"%s\": %s" (Registry.json_escape k)
          (Registry.json_of_sample s))
      p.changed
  in
  Printf.sprintf "{\"at_ns\": %d, \"changed\": {%s}}" p.at_ns
    (String.concat ", " entries)

let to_json t =
  Printf.sprintf
    "{\n\
    \  \"registry\": \"%s\",\n\
    \  \"ticks\": %d,\n\
    \  \"dropped\": %d,\n\
    \  \"series\": [\n    %s\n  ]\n\
     }\n"
    (Registry.json_escape (Registry.name t.reg))
    t.ticks t.dropped
    (String.concat ",\n    " (List.map point_to_json (points t)))
