(** Named metric registry: counters, sampled gauges and log-bucketed
    histograms under dot-separated names.

    One registry per kernel ({!Spin.Kernel.registry}) plus a global one
    for the packet substrate ({!Packet.Metrics.registry}).  Counters are
    bare [int ref]s so hot paths pay one load+store; gauges are sampling
    closures read only at {!snapshot} time; histograms are O(1)-memory
    {!Histogram}s.

    Naming scheme: [<subsystem>.<scope>.<metric>], e.g.
    [spin.udp.PacketRecv.raises] or [dev.hostB.eth0.txq]. *)

type t

type entry =
  | Counter of int ref
  | Gauge of (unit -> int)
  | Hist of Histogram.t

val create : ?name:string -> unit -> t
val name : t -> string

val counter : t -> string -> int ref
(** Find-or-create the named counter; the returned ref {e is} the live
    metric.  @raise Invalid_argument if the name is taken by another
    metric kind. *)

val gauge : t -> string -> (unit -> int) -> unit
(** Register (or replace) a sampled gauge: the closure is called at
    snapshot/export time only.
    @raise Invalid_argument if the name is taken by another kind. *)

val histogram : t -> string -> Histogram.t
(** Find-or-create the named histogram.
    @raise Invalid_argument if the name is taken by another kind. *)

val find : t -> string -> entry option
val mem : t -> string -> bool
val size : t -> int

val reset : t -> unit
(** Zero every counter and histogram; gauges sample live state and are
    untouched. *)

val merge_into : ?prefix:string -> into:t -> t -> unit
(** [merge_into ?prefix ~into src] folds [src]'s metrics into [into],
    with each name re-rooted as [prefix ^ name].  Counters are summed,
    histograms merged bucket-wise, and gauges stacked into a closure
    summing every merged source.  [src] is not modified.  Used by the
    parallel datapath to merge per-domain registries at snapshot time.
    @raise Invalid_argument on a metric-kind clash at a target name. *)

type sample = Count of int | Level of int | Dist of Histogram.snapshot

val snapshot : t -> (string * sample) list
(** Every metric's current value, sorted by name.  Gauges are sampled
    here. *)

val to_json : t -> string
(** The whole registry as a JSON object.  Every metric exports as a
    tagged object — [{"kind": "counter"|"gauge", "value": n}] or
    [{"kind": "histogram", "n": ..., "p99": ...}] — mirroring the
    counter/gauge distinction the pretty path shows.  Schema documented
    in DESIGN.md. *)

val json_of_sample : sample -> string
(** One sample in the {!to_json} schema. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (used by the other
    observe exporters to stay schema-consistent). *)

val pp : Format.formatter -> t -> unit
(** Human-readable table. *)
