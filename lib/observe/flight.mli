(** Packet flight recorder: sampled end-to-end latency timelines.

    A flight endpoint makes deterministic 1-in-N ingress sampling
    decisions, hands out packet ids carried on the mbuf trace word
    ([Packet.Mbuf.mark]), and collects per-stage latency records into a
    bounded ring.  The sampled set is a pure function of [(seed, rate)]
    and arrival ordinals, so a run is reproducible record-for-record.

    One endpoint per kernel (per domain in the parallel datapath);
    merge per-domain rings with {!merge_into} — records keep the domain
    that emitted them, so cross-domain timelines attribute each stage
    to its home domain.  Disabled ([rate = 0]) the recorder costs one
    load + branch per site. *)

type stage =
  | Ingress of { dev : string }
  | Raise of { event : string }
      (** [dur_ns] is latency from ingress to this raise. *)
  | Handler of { event : string; label : string }
      (** [dur_ns] is the handler's modelled run time. *)
  | Queue_wait of { dev : string }
      (** [dur_ns] is time spent in the admission deferral queue. *)
  | Hop of { from_domain : int; to_domain : int }
      (** Cross-domain SPSC ring handoff, emitted by the sender. *)
  | Deliver of { scope : string }
      (** [dur_ns] is end-to-end latency from ingress. *)
  | Drop of { scope : string; reason : string }

type record = {
  pkt : int;  (** packet id, as stamped on the mbuf (always > 0) *)
  domain : int;  (** domain that emitted the record *)
  at_ns : int;  (** that domain's virtual clock at emission *)
  dur_ns : int;  (** stage latency; see per-stage docs *)
  stage : stage;
}

type t

val create : ?capacity:int -> ?rate:int -> seed:int -> unit -> t
(** [capacity] bounds the record ring (default 4096); [rate] is the
    1-in-N sampling rate, 0 (default) meaning disabled. *)

val enabled : t -> bool
(** [rate t > 0].  Every emitter guards on this first. *)

val rate : t -> int
val set_rate : t -> int -> unit
val seed : t -> int
val domain : t -> int

val set_domain : t -> int -> unit
(** Stamp subsequently emitted records with this domain id. *)

val mark_for : seed:int -> rate:int -> int -> int
(** [mark_for ~seed ~rate n] is the sampling decision for arrival
    ordinal [n] (1-based): the packet id ([n]) when sampled, else 0.
    Pure — the parallel datapath pre-computes marks from a frame plan
    so every domain agrees on the sampled set. *)

val admit : t -> int
(** Ingress decision: counts the arrival and returns the mark to stamp
    on the mbuf (0 = not sampled).  Equivalent to
    [mark_for ~seed ~rate seen] after incrementing [seen]. *)

val tally : t -> sampled:bool -> unit
(** Count one arrival whose sampling decision was made out of band
    (the parallel datapath derives marks from the frame plan via
    {!mark_for} instead of {!admit}).  Keeps seen/sampled meaningful
    per domain; totals sum under {!merge_into}. *)

val note : t -> pkt:int -> at_ns:int -> dur_ns:int -> stage -> unit
(** Record one stage for a sampled packet.  Callers guard with
    {!enabled} and [pkt > 0]. *)

val ingress : t -> pkt:int -> at_ns:int -> dev:string -> unit
(** Record the ingress stage and remember the arrival timestamp for
    {!since_ingress}. *)

val origin : t -> pkt:int -> int option
(** Ingress timestamp for a live sampled packet, if known. *)

val since_ingress : t -> pkt:int -> at_ns:int -> int
(** Latency from ingress to [at_ns] (0 when the origin is unknown). *)

val finish : t -> pkt:int -> unit
(** Forget the ingress timestamp (call at delivery/drop). *)

val seen : t -> int
val sampled : t -> int
val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Records overwritten after the ring wrapped. *)

val clear : t -> unit

val records : t -> record list
(** Oldest retained record first. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s records (and seen/sampled/dropped totals) into [into],
    preserving each record's home domain. *)

val timelines : record list -> (int * record list) list
(** Group records per packet id (ascending); each packet's records keep
    emission order.  Cross-domain clocks are incomparable, so no
    timestamp sort is attempted. *)

val stage_name : stage -> string
val pp_stage : Format.formatter -> stage -> unit
val pp_record : Format.formatter -> record -> unit
val pp_timeline : Format.formatter -> int * record list -> unit
val records_to_json : record list -> string
val to_json : t -> string
