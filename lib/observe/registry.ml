(* A named-metric registry.

   One registry per kernel (plus a process-global one for the packet
   substrate).  Three metric kinds:

   - counters: find-or-create returns the bare [int ref], so hot paths
     pay exactly one load+store per increment and legacy modules (e.g.
     [Packet.Metrics]) can expose the same refs they always did;
   - gauges: a sampling closure, read at snapshot time — queue depths
     and pool occupancy register the closure once and never pay a
     per-packet cost;
   - histograms: log-bucketed {!Histogram}s for latency distributions.

   Naming scheme (see DESIGN.md "Observability"): dot-separated paths,
   [<subsystem>.<scope>.<metric>], e.g. [spin.udp.PacketRecv.raises],
   [dev.hostB.eth0.txq], [packet.copies]. *)

type entry =
  | Counter of int ref
  | Gauge of (unit -> int)
  | Hist of Histogram.t

type t = { rname : string; tbl : (string, entry) Hashtbl.t }

let create ?(name = "registry") () = { rname = name; tbl = Hashtbl.create 64 }
let name t = t.rname

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let mismatch t key entry want =
  invalid_arg
    (Printf.sprintf "Registry %s: %s is a %s, not a %s" t.rname key
       (kind_name entry) want)

let counter t key =
  match Hashtbl.find_opt t.tbl key with
  | Some (Counter r) -> r
  | Some e -> mismatch t key e "counter"
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.tbl key (Counter r);
      r

let gauge t key f =
  match Hashtbl.find_opt t.tbl key with
  | Some (Gauge _) | None -> Hashtbl.replace t.tbl key (Gauge f)
  | Some e -> mismatch t key e "gauge"

let histogram t key =
  match Hashtbl.find_opt t.tbl key with
  | Some (Hist h) -> h
  | Some e -> mismatch t key e "histogram"
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace t.tbl key (Hist h);
      h

let find t key = Hashtbl.find_opt t.tbl key
let mem t key = Hashtbl.mem t.tbl key
let size t = Hashtbl.length t.tbl

(* Counters and histograms rewind to zero; gauges sample live state and
   are left alone. *)
let reset t =
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Counter r -> r := 0
      | Hist h -> Histogram.reset h
      | Gauge _ -> ())
    t.tbl

(* Fold [src]'s metrics into [into], optionally re-rooting names under
   [prefix] (the parallel datapath merges per-domain registries under
   ["domainN."] labels).  Counters add, histograms merge bucket-wise,
   and gauges are re-registered as a closure summing the sources seen so
   far — so merging four domains' pool-occupancy gauges yields the
   aggregate occupancy.  [src] is read, never written; merging a live
   registry is a consistent point-in-time fold only if [src]'s owner
   domain has quiesced. *)
let merge_into ?(prefix = "") ~into src =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) src.tbl [] |> List.sort compare
  in
  List.iter
    (fun k ->
      let dst_key = prefix ^ k in
      match Hashtbl.find src.tbl k with
      | Counter r ->
          let d = counter into dst_key in
          d := !d + !r
      | Hist h -> Histogram.merge ~into:(histogram into dst_key) h
      | Gauge f -> (
          match Hashtbl.find_opt into.tbl dst_key with
          | Some (Gauge g) -> gauge into dst_key (fun () -> g () + f ())
          | Some e -> mismatch into dst_key e "gauge"
          | None -> gauge into dst_key f))
    keys

type sample = Count of int | Level of int | Dist of Histogram.snapshot

let sample_of = function
  | Counter r -> Count !r
  | Gauge f -> Level (f ())
  | Hist h -> Dist (Histogram.snapshot h)

let snapshot t =
  Hashtbl.fold (fun k e acc -> (k, sample_of e) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- export ----------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Every sample kind exports as a tagged object so the JSON path carries
   the same counter/gauge distinction the pretty printer always showed
   ("%d" vs "%d (gauge)").  Schema documented in DESIGN.md
   "Observability: export schema". *)
let json_of_sample = function
  | Count n -> Printf.sprintf "{\"kind\": \"counter\", \"value\": %d}" n
  | Level n -> Printf.sprintf "{\"kind\": \"gauge\", \"value\": %d}" n
  | Dist s ->
      Printf.sprintf
        "{\"kind\": \"histogram\", \"n\": %d, \"sum\": %d, \"min\": %d, \
         \"max\": %d, \"mean\": %s, \"p50\": %d, \"p99\": %d, \"p999\": %d}"
        s.Histogram.n s.Histogram.sum s.Histogram.vmin s.Histogram.vmax
        (if s.Histogram.n = 0 then "0" else Printf.sprintf "%.1f" s.Histogram.mean)
        s.Histogram.p50 s.Histogram.p99 s.Histogram.p999

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"registry\": \"%s\",\n  \"metrics\": {\n"
       (json_escape t.rname));
  let entries =
    List.map
      (fun (k, s) ->
        Printf.sprintf "    \"%s\": %s" (json_escape k) (json_of_sample s))
      (snapshot t)
  in
  Buffer.add_string b (String.concat ",\n" entries);
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let pp_sample ppf = function
  | Count n -> Fmt.pf ppf "%d" n
  | Level n -> Fmt.pf ppf "%d (gauge)" n
  | Dist s ->
      if s.Histogram.n = 0 then Fmt.pf ppf "n=0"
      else
        Fmt.pf ppf "n=%d mean=%.1f p50=%d p99=%d p999=%d max=%d" s.Histogram.n
          s.Histogram.mean s.Histogram.p50 s.Histogram.p99 s.Histogram.p999
          s.Histogram.vmax

let pp ppf t =
  Fmt.pf ppf "[%s] %d metrics@." t.rname (size t);
  List.iter
    (fun (k, s) -> Fmt.pf ppf "  %-52s %a@." k pp_sample s)
    (snapshot t)
