(** Log-bucketed latency histogram (HDR-style).

    O(1) record into a fixed ~1K-bucket array: each power-of-two octave
    is split into 16 linear sub-buckets, so quantiles are exact to
    within ~3% relative error while memory stays constant no matter how
    many samples arrive.  Use this on hot paths instead of
    [Stats.Series], which retains every sample. *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> int -> unit
(** Record one non-negative sample (negative values clamp to 0). *)

val count : t -> int
val sum : t -> int
val is_empty : t -> bool

val min_value : t -> int
(** Exact smallest recorded value (0 when empty). *)

val max_value : t -> int
(** Exact largest recorded value (0 when empty). *)

val mean : t -> float
(** Exact mean (sum and count are not bucketed); [nan] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: the bucket-midpoint value at
    that rank, within ~3% relative error (exact at the min/max edges).
    0 when empty. *)

val p50 : t -> int
val p99 : t -> int
val p999 : t -> int

type snapshot = {
  n : int;
  sum : int;
  vmin : int;
  vmax : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

val snapshot : t -> snapshot

val merge : into:t -> t -> unit
(** Add every bucket of the source into [into]. *)

val pp : Format.formatter -> t -> unit

(**/**)

val bucket_of : int -> int
val value_of : int -> int
(** Exposed for property tests of the bucketing error bound. *)

(**/**)
