(* Packet flight recorder: sampled end-to-end latency timelines.

   A flight endpoint makes the ingress sampling decision (deterministic
   1-in-N, keyed off a seeded mix so the sampled set is a pure function
   of [seed], [rate] and arrival ordinals), hands out packet ids that
   ride on the mbuf ([Packet.Mbuf.mark]), and collects per-stage latency
   records — ingress, ingress→raise, per-handler run, admission queue
   wait, cross-domain hop, delivery/drop — into a bounded ring.

   One endpoint per kernel (and per domain in the parallel datapath);
   per-domain rings are folded together with {!merge_into} at snapshot
   time, each record keeping the domain that emitted it, so a packet
   forwarded across an SPSC ring shows up as one timeline whose stages
   carry their home domain.

   The disabled path must be free: every emitter guards on
   {!enabled} (one load + compare), and an unsampled packet costs one
   mix + modulo at ingress and a [mark = 0] compare per stage site. *)

type stage =
  | Ingress of { dev : string }
  | Raise of { event : string }
  | Handler of { event : string; label : string }
  | Queue_wait of { dev : string }
  | Hop of { from_domain : int; to_domain : int }
  | Deliver of { scope : string }
  | Drop of { scope : string; reason : string }

type record = {
  pkt : int;
  domain : int;
  at_ns : int;
  dur_ns : int;
  stage : stage;
}

type t = {
  seed : int;
  mutable rate : int; (* 0 = disabled, N = sample 1-in-N *)
  mutable domain : int;
  mutable seen : int; (* ingress arrivals observed (sampled or not) *)
  mutable sampled : int;
  buf : record option array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable dropped : int; (* overwritten records *)
  origins : (int, int) Hashtbl.t; (* pkt id -> ingress timestamp (ns) *)
}

let create ?(capacity = 4096) ?(rate = 0) ~seed () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity";
  if rate < 0 then invalid_arg "Flight.create: rate";
  {
    seed;
    rate;
    domain = 0;
    seen = 0;
    sampled = 0;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    origins = Hashtbl.create 64;
  }

let[@inline] enabled t = t.rate > 0
let rate t = t.rate
let set_rate t r = if r < 0 then invalid_arg "Flight.set_rate" else t.rate <- r
let seed t = t.seed
let domain t = t.domain
let set_domain t d = t.domain <- d
let seen t = t.seen
let sampled t = t.sampled
let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

(* splitmix64-style finalizer over OCaml's native ints (overflow wraps,
   which is exactly what a mixer wants).  Kept local so [observe] stays
   free of a [sim] dependency; this is NOT [Sim.Rng], but it obeys the
   same contract: a pure function of (seed, n). *)
let mix seed n =
  let z = seed lxor (n * 0x9E3779B97F4A7C) in
  let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5 in
  let z = (z lxor (z lsr 27)) * 0x94D049BB133111 in
  (z lxor (z lsr 31)) land max_int

(* The sampling decision for arrival ordinal [n] (1-based): the packet
   id [n] when sampled, 0 otherwise.  Pure, so the parallel datapath can
   pre-compute marks from a frame plan and every domain agrees. *)
let mark_for ~seed ~rate n =
  if rate <= 0 || n <= 0 then 0
  else if rate = 1 then n
  else if mix seed n mod rate = 0 then n
  else 0

(* Ingress admission: count the arrival and decide.  Returns the mark to
   stamp on the mbuf (0 = not sampled). *)
let admit t =
  if t.rate = 0 then 0
  else begin
    t.seen <- t.seen + 1;
    let m = mark_for ~seed:t.seed ~rate:t.rate t.seen in
    if m > 0 then t.sampled <- t.sampled + 1;
    m
  end

(* Out-of-band admission: the parallel datapath decides sampling from
   the shared frame plan ([mark_for] on the plan seed) rather than this
   recorder's own arrival counter, then tallies the outcome here so
   seen/sampled stay meaningful per domain (and sum under merge). *)
let tally t ~sampled =
  t.seen <- t.seen + 1;
  if sampled then t.sampled <- t.sampled + 1

let push t r =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.head) <- Some r;
  t.head <- (t.head + 1) mod cap

let note t ~pkt ~at_ns ~dur_ns stage =
  push t { pkt; domain = t.domain; at_ns; dur_ns; stage }

(* Ingress: remember the arrival timestamp (for ingress→raise and
   end-to-end latencies) and record the stage.  The origin table is
   bounded: delivery/drop sites call [finish], and a safety valve wipes
   it if silently-dying packets ever accumulate. *)
let ingress t ~pkt ~at_ns ~dev =
  if Hashtbl.length t.origins > 4 * Array.length t.buf then
    Hashtbl.reset t.origins;
  Hashtbl.replace t.origins pkt at_ns;
  note t ~pkt ~at_ns ~dur_ns:0 (Ingress { dev })

let origin t ~pkt = Hashtbl.find_opt t.origins pkt

let since_ingress t ~pkt ~at_ns =
  match Hashtbl.find_opt t.origins pkt with
  | Some o when at_ns >= o -> at_ns - o
  | _ -> 0

let finish t ~pkt = Hashtbl.remove t.origins pkt

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.seen <- 0;
  t.sampled <- 0;
  Hashtbl.reset t.origins

(* Oldest retained record first. *)
let records t =
  let cap = Array.length t.buf in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

(* Fold [src]'s records into [into], preserving each record's home
   domain (stamped at [note] time).  Counters accumulate so a merged
   endpoint reports fleet-wide sampling totals. *)
let merge_into ~into src =
  List.iter (fun r -> push into r) (records src);
  into.seen <- into.seen + src.seen;
  into.sampled <- into.sampled + src.sampled;
  into.dropped <- into.dropped + src.dropped

(* Group records into per-packet timelines: packet ids ascending, each
   packet's records in emission order.  Records from different domains
   carry incomparable clocks, so ordering within a packet is the merge
   order (per-domain emission order), not a timestamp sort. *)
let timelines recs =
  let tbl = Hashtbl.create 64 in
  let ids = ref [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.pkt with
      | Some rs -> rs := r :: !rs
      | None ->
          ids := r.pkt :: !ids;
          Hashtbl.replace tbl r.pkt (ref [ r ]))
    recs;
  List.sort compare !ids
  |> List.map (fun pkt -> (pkt, List.rev !(Hashtbl.find tbl pkt)))

let stage_name = function
  | Ingress _ -> "ingress"
  | Raise _ -> "raise"
  | Handler _ -> "handler"
  | Queue_wait _ -> "queue_wait"
  | Hop _ -> "hop"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"

let stage_detail = function
  | Ingress { dev } | Queue_wait { dev } -> dev
  | Raise { event } -> event
  | Handler { event; label } -> event ^ "." ^ label
  | Hop { from_domain; to_domain } ->
      Printf.sprintf "d%d->d%d" from_domain to_domain
  | Deliver { scope } -> scope
  | Drop { scope; reason } -> scope ^ ":" ^ reason

let pp_stage ppf s =
  match s with
  | Ingress { dev } -> Fmt.pf ppf "ingress %s" dev
  | Raise { event } -> Fmt.pf ppf "raise %s" event
  | Handler { event; label } -> Fmt.pf ppf "handler %s.%s" event label
  | Queue_wait { dev } -> Fmt.pf ppf "queue_wait %s" dev
  | Hop { from_domain; to_domain } ->
      Fmt.pf ppf "hop domain%d -> domain%d" from_domain to_domain
  | Deliver { scope } -> Fmt.pf ppf "deliver %s" scope
  | Drop { scope; reason } -> Fmt.pf ppf "drop %s (%s)" scope reason

let pp_record ppf r =
  Fmt.pf ppf "pkt=%d d%d @%dns +%dns %a" r.pkt r.domain r.at_ns r.dur_ns
    pp_stage r.stage

let pp_timeline ppf (pkt, recs) =
  Fmt.pf ppf "pkt %d:@." pkt;
  List.iter
    (fun (r : record) ->
      Fmt.pf ppf "  [domain%d t=%-10d +%-8d] %a@." r.domain r.at_ns r.dur_ns
        pp_stage r.stage)
    recs

let record_to_json r =
  Printf.sprintf
    "{\"pkt\": %d, \"domain\": %d, \"at_ns\": %d, \"dur_ns\": %d, \"stage\": \
     \"%s\", \"detail\": \"%s\"}"
    r.pkt r.domain r.at_ns r.dur_ns (stage_name r.stage)
    (stage_detail r.stage)

let records_to_json recs =
  "[" ^ String.concat ", " (List.map record_to_json recs) ^ "]"

let to_json t =
  Printf.sprintf
    "{\n\
    \  \"seed\": %d,\n\
    \  \"rate\": %d,\n\
    \  \"seen\": %d,\n\
    \  \"sampled\": %d,\n\
    \  \"dropped\": %d,\n\
    \  \"records\": %s\n\
     }\n"
    t.seed t.rate t.seen t.sampled t.dropped
    (records_to_json (records t))
