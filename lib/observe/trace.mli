(** Structured trace spans with pluggable sinks.

    The dispatch path emits typed spans — raise, index lookup, guard
    evaluation, handler run, ephemeral commit/termination, drop — each
    carrying the simulated timestamp (integer nanoseconds), the event
    name and the handler involved, so a packet's path through the
    protocol graph can be reconstructed and asserted on in tests.

    A {!t} is a trace endpoint owning one {!sink}.  The [Null] sink is
    the default; emitters guard span construction with
    [if Trace.active tr then Trace.emit tr ...] so a disabled trace
    costs one field load and branch per site — nothing is allocated or
    formatted. *)

type event =
  | Raise of { event : string; candidates : int; indexed : bool }
      (** an event was raised; [candidates] guards will be evaluated *)
  | Index_lookup of { event : string; keys : int; candidates : int }
      (** the raise consulted the demux index instead of scanning *)
  | Guard_eval of { event : string; hid : int; label : string; hit : bool }
  | Handler_run of {
      event : string;
      hid : int;
      label : string;
      duration_ns : int;  (** modelled CPU cost charged for the run *)
    }
  | Ephemeral_commit of {
      event : string;
      hid : int;
      label : string;
      committed : int;
      total : int;
      duration_ns : int;
    }
  | Terminated of {
      event : string;
      hid : int;
      label : string;
      committed : int;
      total : int;
      duration_ns : int;  (** the expired budget *)
    }  (** an ephemeral program hit its budget and was cut off *)
  | Cache_hit of { event : string; hops : int; handlers : int }
      (** a raise was served from the flow-path cache: [hops] recorded
          raises were replayed delivering [handlers] handlers, with no
          demux or guard evaluation *)
  | Cache_invalidate of { event : string; reason : string }
      (** a cached flow path was discarded (stale generation, divergent
          replay, or a discarded recording) *)
  | Drop of { scope : string; reason : string }
  | Wire_fault of { link : string; fault : string; detail : string }
      (** an injected link fault fired: [fault] is the fault class
          (["loss"], ["burst_loss"], ["corrupt"], ["duplicate"],
          ["delay"], ["down"]), [link] the transmitting device *)
  | Handoff of {
      op : string;
          (** ["enqueue"] (frames pushed to a peer's SPSC ring),
              ["self_drain"] (producer drained its own ring because a
              peer's was full) or ["phase_b_drain"] (frames found during
              two-phase quiescence) *)
      from_domain : int;
      to_domain : int;
      frames : int;
    }  (** a cross-domain SPSC ring handoff in the parallel datapath *)
  | Message of { scope : string; text : string }
      (** freeform text (the legacy [Sim.Trace] printf route) *)

type span = { at_ns : int; event : event }

val kind : event -> string
(** Short tag: ["raise"], ["guard_eval"], ["handler_run"], ... *)

val scope : event -> string
(** The event/scope name the span belongs to, e.g. ["udp.PacketRecv"]. *)

val pp_span : Format.formatter -> span -> unit
val pp_ns : Format.formatter -> int -> unit

(** Bounded in-memory span buffer; the newest spans win. *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024.  @raise Invalid_argument if [<= 0]. *)

  val capacity : t -> int
  val length : t -> int

  val dropped : t -> int
  (** Spans overwritten since the last {!clear}. *)

  val clear : t -> unit
  val push : t -> span -> unit

  val to_list : t -> span list
  (** Retained spans, oldest first. *)
end

type sink =
  | Null  (** discard; the zero-cost default *)
  | Stderr  (** print each span as text *)
  | Ring of Ring.t  (** retain the last N spans in memory *)
  | Fn of (span -> unit)  (** custom *)

type t

val create : ?sink:sink -> unit -> t
val set_sink : t -> sink -> unit
val sink : t -> sink

val active : t -> bool
(** [true] unless the sink is [Null].  Guard span construction with this
    on hot paths. *)

val emit : t -> span -> unit
