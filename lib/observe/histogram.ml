(* Log-bucketed latency histogram (HDR-style).

   Values are non-negative integers (nanoseconds on the hot paths that
   use this).  Each power-of-two octave is split into [sub = 2^sub_bits]
   linear sub-buckets, so recording is O(1), memory is a fixed ~1K-slot
   array regardless of sample count, and any reported quantile is within
   a relative error of 2^-(sub_bits+1) (~3% at sub_bits = 4) of the
   exact value.  This is what hot paths should use instead of
   [Stats.Series], which retains every sample. *)

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)

(* Values 0..sub-1 map to themselves (exact); values with most
   significant bit k >= sub_bits land in octave k - sub_bits, offset by
   the next [sub_bits] bits.  Max msb on 63-bit ints is 62. *)
let noctaves = 62 - sub_bits + 1
let nbuckets = sub + (noctaves * sub)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; sum = 0; vmin = max_int; vmax = 0 }

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let msb v =
  (* index of the highest set bit; [v > 0] *)
  let k = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin k := !k + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin k := !k + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin k := !k + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin k := !k + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin k := !k + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then k := !k + 1;
  !k

let bucket_of v =
  if v < sub then v
  else
    let k = msb v in
    let o = k - sub_bits in
    sub + (o * sub) + ((v lsr o) - sub)

(* Midpoint of the bucket's value range — the representative returned by
   quantile queries. *)
let value_of idx =
  if idx < sub then idx
  else
    let o = (idx - sub) / sub in
    let off = (idx - sub) mod sub in
    let low = (sub + off) lsl o in
    let width = 1 lsl o in
    low + ((width - 1) / 2)

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n
let sum t = t.sum
let is_empty t = t.n = 0
let min_value t = if t.n = 0 then 0 else t.vmin
let max_value t = t.vmax
let mean t = if t.n = 0 then nan else float_of_int t.sum /. float_of_int t.n

let percentile t p =
  if t.n = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let idx = ref 0 and seen = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* exact extremes beat the bucket midpoint at the edges *)
    let v = value_of !idx in
    if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v
  end

let p50 t = percentile t 50.
let p99 t = percentile t 99.
let p999 t = percentile t 99.9

type snapshot = {
  n : int;
  sum : int;
  vmin : int;
  vmax : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
}

let snapshot (t : t) =
  {
    n = t.n;
    sum = t.sum;
    vmin = min_value t;
    vmax = t.vmax;
    mean = mean t;
    p50 = p50 t;
    p99 = p99 t;
    p999 = p999 t;
  }

let merge ~into src =
  for i = 0 to nbuckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.n > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end

let pp ppf (t : t) =
  if t.n = 0 then Fmt.pf ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%.1f p50=%d p99=%d p999=%d min=%d max=%d" t.n
      (mean t) (p50 t) (p99 t) (p999 t) (min_value t) (max_value t)
