(** Time-series telemetry: periodic registry snapshots, delta-encoded
    into a bounded ring.

    Each {!record} captures only the metrics whose value changed since
    the previous tick (all of them on the first), so steady state costs
    O(changed) retained memory per point.  Scheduling is the caller's
    job ([Spin.Kernel.telemetry_every] drives this off the engine
    clock); this module is pure data. *)

type point = { at_ns : int; changed : (string * Registry.sample) list }

type t

val create : ?capacity:int -> Registry.t -> t
(** Watch one registry; keep at most [capacity] points (default 256),
    overwriting the oldest. *)

val registry : t -> Registry.t

val record : t -> at_ns:int -> int
(** Capture one point at virtual time [at_ns]; returns the number of
    changed metrics.  Zero-change ticks still record an empty point. *)

val points : t -> point list
(** Oldest retained point first. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Points overwritten after the ring wrapped. *)

val ticks : t -> int
val clear : t -> unit
val point_to_json : point -> string
val to_json : t -> string
