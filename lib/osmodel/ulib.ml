(* User-level protocol libraries — the third execution model, from the
   paper's related work (section 6): "several projects have defined
   protocol structures allowing applications to use their own protocols
   in a safe manner within their address space" [TNML93, MB93].

   The protection story is the same as Plexus's (a trusted entity
   installs packet filters on the application's behalf; protocol code is
   the application's own), but the placement differs: the kernel only
   demultiplexes; every packet is copied to the application, which runs
   the *same* protocol code (Ether/IP/UDP) at user level and re-enters
   the kernel to transmit.  Plexus's claim is that its strategies are
   "functionally identical to, although less costly than" this model —
   quantified by the Figure 5 extension in `experiments/fig5.ml`. *)

module T = Sim.Stime

(* The in-kernel packet filter: a per-socket predicate over the raw
   frame, BPF-style (cheap, runs at interrupt level). *)
let filter_cost = T.us 2

type counters = {
  mutable rx : int;
  mutable delivered : int;
  mutable filtered_out : int;
  mutable tx : int;
}

type usock = {
  u_port : int;
  mutable u_on_recv : src:Proto.Ipaddr.t * int -> string -> unit;
}

type t = {
  host : Netsim.Host.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  costs : Netsim.Costs.t;
  dev : Netsim.Dev.t;
  arp : Proto.Arp.Cache.t;
  socks : (int, usock) Hashtbl.t;
  frag : Proto.Ip_frag.t;
  mutable next_ip_id : int;
  counters : counters;
}

let host_ip t = Netsim.Host.ip t.host
let counters t = t.counters

let urun t cost k = Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Thread ~cost k
let krun t cost k = Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Interrupt ~cost k

let cksum_cost t len =
  Netsim.Costs.per_byte t.costs.Netsim.Costs.layer.cksum_ns_per_byte len

(* ---- user-level receive path ------------------------------------------ *)

(* Runs in the application's address space: the same protocol layers as
   the kernel implementations, charged at thread priority. *)
let user_process t (pkt : string) =
  let lay = t.costs.Netsim.Costs.layer in
  urun t lay.ether_in (fun () ->
      let v = View.of_string pkt in
      match Proto.Ether.parse v with
      | Some eh when eh.Proto.Ether.etype = Proto.Ether.etype_ip ->
          urun t lay.ip_in (fun () ->
              let ipv = View.shift v Proto.Ether.header_len in
              match Proto.Ipv4.parse ipv with
              | Some h
                when Proto.Ipv4.checksum_valid ipv
                     && Proto.Ipaddr.equal h.Proto.Ipv4.dst (host_ip t) ->
                  let deliver payload_view (h : Proto.Ipv4.header) =
                    urun t
                      (T.add lay.udp_in (cksum_cost t (View.length payload_view)))
                      (fun () ->
                        if Proto.Udp.valid ~src:h.src ~dst:h.dst payload_view
                        then
                          match Proto.Udp.parse payload_view with
                          | Some uh -> (
                              match Hashtbl.find_opt t.socks uh.Proto.Udp.dst_port with
                              | Some sock ->
                                  t.counters.delivered <-
                                    t.counters.delivered + 1;
                                  let data =
                                    View.get_string payload_view
                                      ~off:Proto.Udp.header_len
                                      ~len:
                                        (View.length payload_view
                                        - Proto.Udp.header_len)
                                  in
                                  urun t lay.app (fun () ->
                                      sock.u_on_recv
                                        ~src:(h.src, uh.Proto.Udp.src_port)
                                        data)
                              | None -> ())
                          | None -> ())
                  in
                  if h.Proto.Ipv4.more_fragments || h.Proto.Ipv4.frag_offset > 0
                  then begin
                    let payload =
                      View.sub ipv ~off:Proto.Ipv4.header_len
                        ~len:(h.Proto.Ipv4.total_len - Proto.Ipv4.header_len)
                    in
                    match
                      Proto.Ip_frag.input t.frag
                        ~now:(Sim.Engine.now t.engine) h payload
                    with
                    | Some datagram -> deliver (View.ro (Mbuf.view datagram)) h
                    | None -> ()
                  end
                  else begin
                    let l4_len = h.Proto.Ipv4.total_len - Proto.Ipv4.header_len in
                    let l4 =
                      View.sub ipv ~off:Proto.Ipv4.header_len
                        ~len:
                          (min l4_len (View.length ipv - Proto.Ipv4.header_len))
                    in
                    deliver l4 h
                  end
              | _ -> ())
      | _ -> ())

(* ---- kernel side -------------------------------------------------------- *)

let rx t (pkt : Mbuf.ro Mbuf.t) =
  t.counters.rx <- t.counters.rx + 1;
  (* in-kernel packet filter at interrupt level: does any socket's
     predicate accept this frame? (We model the filter's decision with
     the real port check; its cost is the flat BPF-interpretation fee.) *)
  krun t filter_cost (fun () ->
      let v = View.ro (Mbuf.view pkt) in
      let accept =
        match Proto.Ether.parse v with
        | Some eh when eh.Proto.Ether.etype = Proto.Ether.etype_ip ->
            (* frames the library must see: IP for us (any fragment) *)
            (match Proto.Ipv4.parse (View.shift v Proto.Ether.header_len) with
            | Some h -> Proto.Ipaddr.equal h.Proto.Ipv4.dst (host_ip t)
            | None -> false)
        | Some eh when eh.Proto.Ether.etype = Proto.Ether.etype_arp -> true
        | _ -> false
      in
      if not accept then t.counters.filtered_out <- t.counters.filtered_out + 1
      else begin
        let data = Mbuf.to_string pkt in
        match Proto.Ether.parse v with
        | Some eh when eh.Proto.Ether.etype = Proto.Ether.etype_arp ->
            (* ARP stays in the kernel (it is address management, not an
               application protocol) *)
            let av = View.shift v Proto.Ether.header_len in
            (match Proto.Arp.parse av with
            | Some msg ->
                Proto.Arp.Cache.insert t.arp ~now:(Sim.Engine.now t.engine)
                  msg.Proto.Arp.sender_ip msg.Proto.Arp.sender_mac;
                if
                  msg.Proto.Arp.op = Proto.Arp.op_request
                  && Proto.Ipaddr.equal msg.Proto.Arp.target_ip (host_ip t)
                then begin
                  let reply =
                    Proto.Arp.to_packet
                      (Proto.Arp.reply_to msg ~mac:(Netsim.Dev.mac t.dev))
                  in
                  Proto.Ether.encapsulate reply
                    {
                      Proto.Ether.dst = msg.Proto.Arp.sender_mac;
                      src = Netsim.Dev.mac t.dev;
                      etype = Proto.Ether.etype_arp;
                    };
                  Netsim.Dev.transmit t.dev ~prio:Sim.Cpu.Interrupt reply
                end
            | None -> ())
        | _ ->
            (* copy the whole frame out to the library and wake it *)
            Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Thread
              ~cost:
                (T.add
                   (T.add t.costs.Netsim.Costs.os.wakeup
                      t.costs.Netsim.Costs.os.ctx_switch)
                   (Syscall.copy_cost t.costs (String.length data)))
              (fun () -> user_process t data)
      end)

let create host =
  let dev =
    match Netsim.Host.devices host with
    | d :: _ -> d
    | [] -> invalid_arg "Ulib.create: host has no devices"
  in
  let t =
    {
      host;
      engine = Netsim.Host.engine host;
      cpu = Netsim.Host.cpu host;
      costs = Netsim.Host.costs host;
      dev;
      arp = Proto.Arp.Cache.create ();
      socks = Hashtbl.create 8;
      frag = Proto.Ip_frag.create ();
      next_ip_id = 1;
      counters = { rx = 0; delivered = 0; filtered_out = 0; tx = 0 };
    }
  in
  Netsim.Dev.set_rx dev (rx t);
  t

let prime_arp t ip mac =
  Proto.Arp.Cache.insert t.arp ~now:(Sim.Engine.now t.engine) ip mac

type error = [ `Port_in_use of int ]

let udp_bind t ~port =
  if Hashtbl.mem t.socks port then Error (`Port_in_use port)
  else begin
    let sock = { u_port = port; u_on_recv = (fun ~src:_ _ -> ()) } in
    Hashtbl.replace t.socks port sock;
    Ok sock
  end

let udp_set_recv sock fn = sock.u_on_recv <- fn

(* ---- user-level send path ----------------------------------------------- *)

let udp_sendto t sock ~dst:(dip, dport) data =
  t.counters.tx <- t.counters.tx + 1;
  let lay = t.costs.Netsim.Costs.layer in
  let len = String.length data in
  (* the library builds the whole datagram — and fragments it to the
     device MTU — in its own address space *)
  urun t
    (T.add (T.add lay.udp_out (cksum_cost t len)) (T.add lay.ip_out lay.ether_out))
    (fun () ->
      let datagram = Mbuf.of_string data in
      Proto.Udp.encapsulate datagram ~src:(host_ip t) ~dst:dip
        ~src_port:sock.u_port ~dst_port:dport;
      t.next_ip_id <- (t.next_ip_id + 1) land 0xffff;
      let id = t.next_ip_id in
      let mac =
        match Proto.Arp.Cache.lookup t.arp ~now:(Sim.Engine.now t.engine) dip with
        | Some mac -> mac
        | None -> Proto.Ether.Mac.broadcast (* experiments prime the cache *)
      in
      let emit frag =
        Proto.Ether.encapsulate frag
          { Proto.Ether.dst = mac; src = Netsim.Dev.mac t.dev;
            etype = Proto.Ether.etype_ip };
        (* ...each packet crosses into the kernel, which only drives the
           device *)
        Syscall.enter t.cpu t.costs ~len:(Mbuf.length frag) (fun () ->
            Netsim.Dev.transmit t.dev ~prio:Sim.Cpu.Interrupt frag)
      in
      let mtu = Netsim.Dev.mtu t.dev in
      if Mbuf.length datagram + Proto.Ipv4.header_len <= mtu then begin
        Proto.Ipv4.encapsulate datagram
          (Proto.Ipv4.make ~id ~proto:Proto.Ipv4.proto_udp ~src:(host_ip t)
             ~dst:dip ~payload_len:(Mbuf.length datagram) ());
        emit datagram
      end
      else
        List.iter
          (fun (off8, more, frag) ->
            let frag_len = Mbuf.length frag in
            Proto.Ipv4.encapsulate frag
              (Proto.Ipv4.make ~id ~more_fragments:more ~frag_offset:off8
                 ~proto:Proto.Ipv4.proto_udp ~src:(host_ip t) ~dst:dip
                 ~payload_len:frag_len ());
            emit frag)
          (Proto.Ip_frag.fragment ~mtu datagram))
