(* The DIGITAL UNIX 3.2 baseline: a monolithic in-kernel protocol stack
   with BSD sockets.

   Methodology mirrors the paper's: the *same* device models, wire
   formats and TCP engine as Plexus, differing only in OS structure —
   protocol code runs in the kernel at interrupt level, applications run
   as user processes, and every packet crosses the user/kernel boundary
   (trap + copy on send; wakeup + context switch + copy on receive).
   There is no dispatcher, no guards and no extensibility: the
   performance comparison isolates exactly the architectural difference
   the paper measures. *)

module T = Sim.Stime

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable not_ours : int;
  mutable no_port : int;
  mutable udp_delivered : int;
  mutable tcp_rx : int;
  mutable echos_answered : int;
}

type udp_sock = {
  us_port : int;
  mutable us_on_recv : src:Proto.Ipaddr.t * int -> string -> unit;
}

type route = {
  net : Proto.Ipaddr.t;
  mask_bits : int;
  dev : Netsim.Dev.t;
  arp : Proto.Arp.Cache.t;
}

type tconn = {
  du : t;
  tcp : Proto.Tcp.t;
  mutable tkey : (int * int * int) option;
  mutable tc_on_receive : string -> unit;
  mutable tc_on_established : unit -> unit;
  mutable tc_on_peer_close : unit -> unit;
  mutable tc_on_close : unit -> unit;
  mutable tc_on_error : string -> unit;
}

and listener = { l_port : int; l_cfg : Proto.Tcp.config; l_accept : tconn -> unit }

and t = {
  host : Netsim.Host.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  costs : Netsim.Costs.t;
  mutable routes : route list;
  frag : Proto.Ip_frag.t;
  udp_socks : (int, udp_sock) Hashtbl.t;
  tconns : (int * int * int, tconn) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable next_ip_id : int;
  deliveries : (int * (unit -> unit)) Queue.t;
      (* pending socket-to-process deliveries *)
  mutable delivering : bool;
  counters : counters;
}

let host_ip t = Netsim.Host.ip t.host
let counters t = t.counters
let host t = t.host

(* Receive-side boundary crossing with wakeup batching: if the user
   process is already runnable (a delivery is in progress), further
   packets only pay the per-packet copy — the wakeup and context switch
   amortize over the burst, as they do on a real system under load.  A
   single isolated packet pays the full worst case the paper describes. *)
let rec drain_deliveries t =
  if Queue.is_empty t.deliveries then t.delivering <- false
  else begin
    let len, k = Queue.pop t.deliveries in
    Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Thread
      ~cost:
        (Sim.Stime.add (Syscall.copy_cost t.costs len)
           t.costs.Netsim.Costs.layer.app)
      (fun () ->
        k ();
        drain_deliveries t)
  end

let deliver_to_user t ~len k =
  Queue.push (len, k) t.deliveries;
  if not t.delivering then begin
    t.delivering <- true;
    Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Thread
      ~cost:
        (Sim.Stime.add t.costs.Netsim.Costs.os.wakeup
           t.costs.Netsim.Costs.os.ctx_switch)
      (fun () -> drain_deliveries t)
  end

(* ---- kernel-side helpers ------------------------------------------- *)

let krun t cost k = Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Interrupt ~cost k

(* DIGITAL UNIX folds the TCP/UDP checksum into the user/kernel copy
   (the combined copy/checksum loop of [CFF+93], which the paper calls
   "highly optimized") — so transport checksums carry no separate cost.
   ICMP, which never crosses the boundary, still pays one. *)
let cksum_cost _t _len = T.zero

let icmp_cksum_cost t len =
  Netsim.Costs.per_byte t.costs.Netsim.Costs.layer.cksum_ns_per_byte len

let ether_send t route ~dst ~etype pkt =
  krun t t.costs.Netsim.Costs.layer.ether_out (fun () ->
      Proto.Ether.encapsulate pkt
        { Proto.Ether.dst; src = Netsim.Dev.mac route.dev; etype };
      Netsim.Dev.transmit route.dev ~prio:Sim.Cpu.Interrupt pkt)

let route_for t dst =
  match
    List.find_opt
      (fun r -> Proto.Ipaddr.in_subnet dst ~net:r.net ~mask_bits:r.mask_bits)
      t.routes
  with
  | Some r -> Some r
  | None -> ( match t.routes with r :: _ -> Some r | [] -> None)

let arp_resolve t route dst k =
  let now = Sim.Engine.now t.engine in
  match Proto.Arp.Cache.lookup route.arp ~now dst with
  | Some mac -> k mac
  | None ->
      Proto.Arp.Cache.wait route.arp dst k;
      let req =
        Proto.Arp.request ~sender_mac:(Netsim.Dev.mac route.dev)
          ~sender_ip:(host_ip t) ~target_ip:dst
      in
      ether_send t route ~dst:Proto.Ether.Mac.broadcast
        ~etype:Proto.Ether.etype_arp (Proto.Arp.to_packet req)

let fresh_ip_id t =
  let id = t.next_ip_id in
  t.next_ip_id <- (t.next_ip_id + 1) land 0xffff;
  id

(* IP output with fragmentation, all in kernel context. *)
let ip_send t ~proto ~dst payload =
  match route_for t dst with
  | None -> invalid_arg "Du_stack.ip_send: no route"
  | Some route ->
      let mtu = Netsim.Dev.mtu route.dev in
      let len = Mbuf.length payload in
      let src = host_ip t in
      if len + Proto.Ipv4.header_len <= mtu then
        krun t t.costs.Netsim.Costs.layer.ip_out (fun () ->
            Proto.Ipv4.encapsulate payload
              (Proto.Ipv4.make ~id:(fresh_ip_id t) ~proto ~src ~dst
                 ~payload_len:len ());
            arp_resolve t route dst (fun mac ->
                ether_send t route ~dst:mac ~etype:Proto.Ether.etype_ip payload))
      else begin
        let id = fresh_ip_id t in
        (* fragments are zero-copy sub-chains of the payload *)
        let frags = Proto.Ip_frag.fragment ~mtu payload in
        krun t
          (T.mul t.costs.Netsim.Costs.layer.ip_out (List.length frags))
          (fun () ->
            List.iter
              (fun (off8, more, frag) ->
                let frag_len = Mbuf.length frag in
                Proto.Ipv4.encapsulate frag
                  (Proto.Ipv4.make ~id ~more_fragments:more ~frag_offset:off8
                     ~proto ~src ~dst ~payload_len:frag_len ());
                arp_resolve t route dst (fun mac ->
                    ether_send t route ~dst:mac ~etype:Proto.Ether.etype_ip frag))
              frags)
      end

(* ---- TCP plumbing ---------------------------------------------------- *)

let make_tconn t ~cfg ~local_port =
  let conn_ref = ref None in
  let remote_ip = ref Proto.Ipaddr.any in
  let env =
    {
      Proto.Tcp.now = (fun () -> Sim.Engine.now t.engine);
      set_timer =
        (fun delay fn ->
          let h = Sim.Engine.schedule_in t.engine ~delay fn in
          fun () -> Sim.Engine.cancel h);
      tx =
        (fun pkt ->
          let len = Mbuf.length pkt in
          krun t
            (T.add t.costs.Netsim.Costs.layer.tcp_out (cksum_cost t len))
            (fun () -> ip_send t ~proto:Proto.Ipv4.proto_tcp ~dst:!remote_ip pkt));
      on_receive =
        (fun data ->
          match !conn_ref with
          | Some c ->
              (* socket buffer, then cross to the user process *)
              krun t t.costs.Netsim.Costs.os.socket_in (fun () ->
                  deliver_to_user t ~len:(String.length data) (fun () ->
                      c.tc_on_receive data))
          | None -> ());
      on_established =
        (fun () ->
          match !conn_ref with Some c -> c.tc_on_established () | None -> ());
      on_peer_close =
        (* through the delivery queue, behind any data still in flight to
           the process *)
        (fun () ->
          deliver_to_user t ~len:0 (fun () ->
              match !conn_ref with Some c -> c.tc_on_peer_close () | None -> ()));
      on_close =
        (fun () ->
          (match !conn_ref with
          | Some c -> (
              match c.tkey with Some k -> Hashtbl.remove t.tconns k | None -> ())
          | None -> ());
          deliver_to_user t ~len:0 (fun () ->
              match !conn_ref with Some c -> c.tc_on_close () | None -> ()));
      on_error =
        (fun msg ->
          match !conn_ref with Some c -> c.tc_on_error msg | None -> ());
    }
  in
  let tcp = Proto.Tcp.create env cfg ~local:(host_ip t, local_port) in
  let conn =
    {
      du = t;
      tcp;
      tkey = None;
      tc_on_receive = ignore;
      tc_on_established = ignore;
      tc_on_peer_close = ignore;
      tc_on_close = ignore;
      tc_on_error = ignore;
    }
  in
  conn_ref := Some conn;
  (conn, remote_ip)

let register_tconn t conn ~remote:(rip, rport) ~local_port remote_ip_ref =
  remote_ip_ref := rip;
  let key = (Proto.Ipaddr.to_int rip, rport, local_port) in
  conn.tkey <- Some key;
  Hashtbl.replace t.tconns key conn

let fresh_iss t =
  Proto.Tcp_wire.Seq.of_int (Sim.Rng.int (Sim.Engine.rng t.engine) 0x0fffffff)

(* ---- receive path ----------------------------------------------------- *)

let rx_udp t (iph : Proto.Ipv4.header) v =
  krun t
    (T.add t.costs.Netsim.Costs.layer.udp_in
       (cksum_cost t (View.length v)))
    (fun () ->
      if not (Proto.Udp.valid ~src:iph.src ~dst:iph.dst v) then
        t.counters.bad_checksum <- t.counters.bad_checksum + 1
      else
        match Proto.Udp.parse v with
        | None -> t.counters.bad_checksum <- t.counters.bad_checksum + 1
        | Some h -> (
            match Hashtbl.find_opt t.udp_socks h.dst_port with
            | None ->
                t.counters.no_port <- t.counters.no_port + 1;
                (* BSD behaviour: ICMP port unreachable *)
                ip_send t ~proto:Proto.Ipv4.proto_icmp ~dst:iph.src
                  (Proto.Icmp.to_packet
                     (Proto.Icmp.port_unreachable ~original:(View.to_string v)))
            | Some sock ->
                t.counters.udp_delivered <- t.counters.udp_delivered + 1;
                let data =
                  View.get_string v ~off:Proto.Udp.header_len
                    ~len:(View.length v - Proto.Udp.header_len)
                in
                krun t t.costs.Netsim.Costs.os.socket_in (fun () ->
                    deliver_to_user t ~len:(String.length data) (fun () ->
                        sock.us_on_recv ~src:(iph.src, h.src_port) data))))

let rx_tcp t (iph : Proto.Ipv4.header) v =
  t.counters.tcp_rx <- t.counters.tcp_rx + 1;
  krun t
    (T.add t.costs.Netsim.Costs.layer.tcp_in (cksum_cost t (View.length v)))
    (fun () ->
      match Proto.Tcp_wire.parse v with
      | None -> t.counters.bad_checksum <- t.counters.bad_checksum + 1
      | Some (h, _) -> (
          let key =
            (Proto.Ipaddr.to_int iph.src, h.src_port, h.dst_port)
          in
          match Hashtbl.find_opt t.tconns key with
          | Some conn -> Proto.Tcp.input conn.tcp v
          | None -> (
              match Hashtbl.find_opt t.listeners h.dst_port with
              | Some l
                when Proto.Tcp_wire.Flags.test h.flags Proto.Tcp_wire.Flags.syn
                ->
                  let conn, rref = make_tconn t ~cfg:l.l_cfg ~local_port:l.l_port in
                  let remote = (iph.src, h.src_port) in
                  register_tconn t conn ~remote ~local_port:l.l_port rref;
                  Proto.Tcp.set_remote conn.tcp ~remote;
                  Proto.Tcp.set_iss conn.tcp (fresh_iss t);
                  Proto.Tcp.listen conn.tcp;
                  l.l_accept conn;
                  Proto.Tcp.input conn.tcp v
              | _ -> t.counters.no_port <- t.counters.no_port + 1)))

let rx_icmp t (iph : Proto.Ipv4.header) v =
  krun t
    (T.add t.costs.Netsim.Costs.layer.udp_in (icmp_cksum_cost t (View.length v)))
    (fun () ->
      if Proto.Icmp.valid v then
        match Proto.Icmp.parse v with
        | Some m when m.Proto.Icmp.mtype = Proto.Icmp.type_echo_request ->
            t.counters.echos_answered <- t.counters.echos_answered + 1;
            let reply = Proto.Icmp.to_packet (Proto.Icmp.echo_reply_of m) in
            ip_send t ~proto:Proto.Ipv4.proto_icmp ~dst:iph.src reply
        | _ -> ())

let rx_ip t route pkt =
  krun t t.costs.Netsim.Costs.layer.ip_in (fun () ->
      let v = View.shift (View.ro (Mbuf.view pkt)) Proto.Ether.header_len in
      match Proto.Ipv4.parse v with
      | None -> t.counters.bad_checksum <- t.counters.bad_checksum + 1
      | Some h ->
          if not (Proto.Ipv4.checksum_valid v) then
            t.counters.bad_checksum <- t.counters.bad_checksum + 1
          else if
            not
              (Proto.Ipaddr.equal h.dst (host_ip t)
              || Proto.Ipaddr.equal h.dst Proto.Ipaddr.broadcast)
          then t.counters.not_ours <- t.counters.not_ours + 1
          else begin
            ignore route;
            let deliver (h : Proto.Ipv4.header) l4 =
              if h.proto = Proto.Ipv4.proto_udp then rx_udp t h l4
              else if h.proto = Proto.Ipv4.proto_tcp then rx_tcp t h l4
              else if h.proto = Proto.Ipv4.proto_icmp then rx_icmp t h l4
            in
            if h.more_fragments || h.frag_offset > 0 then begin
              let payload =
                View.sub v ~off:Proto.Ipv4.header_len
                  ~len:(h.total_len - Proto.Ipv4.header_len)
              in
              match
                Proto.Ip_frag.input t.frag ~now:(Sim.Engine.now t.engine) h
                  payload
              with
              | None -> ()
              | Some datagram ->
                  let h = { h with more_fragments = false; frag_offset = 0 } in
                  deliver h (View.ro (Mbuf.view datagram))
            end
            else begin
              let l4_len = h.total_len - Proto.Ipv4.header_len in
              let l4 =
                View.sub v ~off:Proto.Ipv4.header_len
                  ~len:(min l4_len (View.length v - Proto.Ipv4.header_len))
              in
              deliver h l4
            end
          end)

let rx_arp t route pkt =
  krun t t.costs.Netsim.Costs.layer.ether_in (fun () ->
      let v = View.shift (View.ro (Mbuf.view pkt)) Proto.Ether.header_len in
      match Proto.Arp.parse v with
      | None -> ()
      | Some msg ->
          let now = Sim.Engine.now t.engine in
          Proto.Arp.Cache.insert route.arp ~now msg.Proto.Arp.sender_ip
            msg.Proto.Arp.sender_mac;
          if
            msg.Proto.Arp.op = Proto.Arp.op_request
            && Proto.Ipaddr.equal msg.Proto.Arp.target_ip (host_ip t)
          then
            ether_send t route
              ~dst:msg.Proto.Arp.sender_mac ~etype:Proto.Ether.etype_arp
              (Proto.Arp.to_packet
                 (Proto.Arp.reply_to msg ~mac:(Netsim.Dev.mac route.dev))))

let rx t route (pkt : Mbuf.ro Mbuf.t) =
  t.counters.rx <- t.counters.rx + 1;
  krun t t.costs.Netsim.Costs.layer.ether_in (fun () ->
      match Proto.Ether.parse (View.ro (Mbuf.view pkt)) with
      | None -> ()
      | Some h ->
          let mine =
            Proto.Ether.Mac.equal h.dst (Netsim.Dev.mac route.dev)
            || Proto.Ether.Mac.equal h.dst Proto.Ether.Mac.broadcast
          in
          if mine then begin
            if h.etype = Proto.Ether.etype_ip then rx_ip t route pkt
            else if h.etype = Proto.Ether.etype_arp then rx_arp t route pkt
          end)

(* ---- construction ----------------------------------------------------- *)

let create ?subnets host =
  let devs = Netsim.Host.devices host in
  if devs = [] then invalid_arg "Du_stack.create: host has no devices";
  let subnets =
    match subnets with
    | Some s ->
        if List.length s <> List.length devs then
          invalid_arg "Du_stack.create: one subnet per device required";
        s
    | None -> List.map (fun _ -> (Netsim.Host.ip host, 24)) devs
  in
  let t =
    {
      host;
      engine = Netsim.Host.engine host;
      cpu = Netsim.Host.cpu host;
      costs = Netsim.Host.costs host;
      routes = [];
      frag = Proto.Ip_frag.create ();
      udp_socks = Hashtbl.create 16;
      tconns = Hashtbl.create 16;
      listeners = Hashtbl.create 8;
      next_ephemeral = 32768;
      next_ip_id = 1;
      deliveries = Queue.create ();
      delivering = false;
      counters =
        {
          rx = 0;
          bad_checksum = 0;
          not_ours = 0;
          no_port = 0;
          udp_delivered = 0;
          tcp_rx = 0;
          echos_answered = 0;
        };
    }
  in
  List.iter2
    (fun dev (net, mask_bits) ->
      let route = { net; mask_bits; dev; arp = Proto.Arp.Cache.create () } in
      t.routes <- t.routes @ [ route ];
      Netsim.Dev.set_rx dev (rx t route))
    devs subnets;
  t

let prime_arp t ip mac =
  List.iter
    (fun r -> Proto.Arp.Cache.insert r.arp ~now:(Sim.Engine.now t.engine) ip mac)
    t.routes

(* ---- user-level socket API -------------------------------------------- *)

type error = [ `Port_in_use of int ]

let udp_bind t ~port =
  if Hashtbl.mem t.udp_socks port then Error (`Port_in_use port)
  else begin
    let sock = { us_port = port; us_on_recv = (fun ~src:_ _ -> ()) } in
    Hashtbl.replace t.udp_socks port sock;
    Ok sock
  end

let udp_set_recv sock fn = sock.us_on_recv <- fn
let udp_port sock = sock.us_port

(* sendto(2): trap + copy-in + socket send processing, then the in-kernel
   UDP output path. *)
let udp_sendto t sock ?(checksum = true) ~dst:(dip, dport) data =
  let len = String.length data in
  Syscall.enter t.cpu t.costs ~len (fun () ->
      Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Interrupt
        ~cost:t.costs.Netsim.Costs.os.socket_out (fun () ->
          let cc = if checksum then cksum_cost t len else T.zero in
          krun t (T.add t.costs.Netsim.Costs.layer.udp_out cc) (fun () ->
              let payload = Mbuf.of_string data in
              Proto.Udp.encapsulate ~checksum payload ~src:(host_ip t) ~dst:dip
                ~src_port:sock.us_port ~dst_port:dport;
              ip_send t ~proto:Proto.Ipv4.proto_udp ~dst:dip payload)))

let tcp_listen t ~port ?(cfg = Proto.Tcp.default_config ()) ~on_accept () =
  if Hashtbl.mem t.listeners port then Error (`Port_in_use port)
  else begin
    Hashtbl.replace t.listeners port
      { l_port = port; l_cfg = cfg; l_accept = on_accept };
    Ok ()
  end

let tcp_connect t ?src_port ~dst ?(cfg = Proto.Tcp.default_config ()) () =
  let port =
    match src_port with
    | Some p -> p
    | None ->
        let p = t.next_ephemeral in
        t.next_ephemeral <- (if p >= 60999 then 32768 else p + 1);
        p
  in
  let conn, rref = make_tconn t ~cfg ~local_port:port in
  register_tconn t conn ~remote:dst ~local_port:port rref;
  (* connect(2) is a system call *)
  Syscall.enter t.cpu t.costs ~len:0 (fun () ->
      Proto.Tcp.connect conn.tcp ~remote:dst ~iss:(fresh_iss t));
  conn

(* write(2) on a socket. *)
let tcp_send t conn data =
  Syscall.enter t.cpu t.costs ~len:(String.length data) (fun () ->
      Sim.Cpu.run t.cpu ~prio:Sim.Cpu.Interrupt
        ~cost:t.costs.Netsim.Costs.os.socket_out (fun () ->
          Proto.Tcp.send conn.tcp data))

let tcp_close t conn =
  Syscall.enter t.cpu t.costs ~len:0 (fun () -> Proto.Tcp.close conn.tcp)

let tconn_state conn = Proto.Tcp.state conn.tcp
let tconn_tcp conn = conn.tcp

let on_receive conn fn = conn.tc_on_receive <- fn
let on_established conn fn = conn.tc_on_established <- fn
let on_peer_close conn fn = conn.tc_on_peer_close <- fn
let on_close conn fn = conn.tc_on_close <- fn
let on_error conn fn = conn.tc_on_error <- fn
