(* Measurement helpers: counters, sample series and log-bucketed
   histograms.  Series keep all samples (experiments are small) so
   percentiles are exact — but that makes them unbounded; hot paths and
   long-running workloads should use Histogram, which is O(1) memory
   with ~3%-accurate quantiles. *)

module Histogram = Observe.Histogram

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let get t = t.n
  let reset t = t.n <- 0
end

module Series = struct
  type t = { mutable samples : float list; mutable n : int }

  let create () = { samples = []; n = 0 }
  let add t x = t.samples <- x :: t.samples; t.n <- t.n + 1
  let add_time t d = add t (Stime.to_us d)
  let count t = t.n
  let is_empty t = t.n = 0

  let sorted t = List.sort compare t.samples |> Array.of_list

  let mean t =
    if t.n = 0 then nan
    else List.fold_left ( +. ) 0. t.samples /. float_of_int t.n

  let minimum t = match sorted t with [||] -> nan | a -> a.(0)
  let maximum t = match sorted t with [||] -> nan | a -> a.(Array.length a - 1)

  let stddev t =
    if t.n < 2 then 0.
    else begin
      let m = mean t in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. t.samples in
      sqrt (ss /. float_of_int (t.n - 1))
    end

  let percentile t p =
    match sorted t with
    | [||] -> nan
    | a ->
        let n = Array.length a in
        let rank = p /. 100. *. float_of_int (n - 1) in
        let lo = int_of_float (floor rank) in
        let hi = Stdlib.min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

  let median t = percentile t 50.

  let summary t =
    Fmt.str "n=%d mean=%.2f p50=%.2f p95=%.2f min=%.2f max=%.2f" t.n (mean t)
      (median t) (percentile t 95.) (minimum t) (maximum t)
end
