(* Conditional simulation tracing, routed through Observe.Trace sinks.

   Two switches control the process-global trace endpoint:
   - the legacy [enabled] flag keeps the old behaviour: formatted lines
     go to stderr;
   - a structured sink ([set_sink]) receives the same lines as
     [Observe.Trace.Message] spans (ring buffer, custom closure, ...).

   Disabled-path cost: [emit] itself never formats when off — arguments
   are consumed by [ikfprintf] without being rendered, so a [%a]
   pretty-printer in the argument list is never invoked.  Hot paths
   should additionally guard the whole call with [if Trace.on () then
   ...] so even argument *evaluation* (e.g. computing a length) is
   skipped; [on] is one load and a branch. *)

let enabled = ref false

let endpoint = Observe.Trace.create ()

let set_sink s = Observe.Trace.set_sink endpoint s
let sink () = Observe.Trace.sink endpoint

let[@inline] on () = !enabled || Observe.Trace.active endpoint

let dispatch now msg =
  if !enabled then Fmt.epr "[%a] %s@." Stime.pp now msg;
  if Observe.Trace.active endpoint then
    Observe.Trace.emit endpoint
      {
        Observe.Trace.at_ns = Stime.to_ns now;
        event = Observe.Trace.Message { scope = "sim"; text = msg };
      }

let emit now fmt =
  if on () then Format.kasprintf (dispatch now) fmt
  else Format.ikfprintf ignore Format.err_formatter fmt

let drop now ~scope ~reason =
  if !enabled then Fmt.epr "[%a] drop %s: %s@." Stime.pp now scope reason;
  if Observe.Trace.active endpoint then
    Observe.Trace.emit endpoint
      {
        Observe.Trace.at_ns = Stime.to_ns now;
        event = Observe.Trace.Drop { scope; reason };
      }
