(** Discrete-event simulation engine.

    An engine owns a virtual clock and a queue of pending events.  Running
    the engine pops events in time order, advancing the clock; an event is
    an arbitrary thunk that may schedule further events. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?seed:int -> unit -> t
(** Fresh engine with clock at zero.  [seed] initialises {!rng}. *)

val now : t -> Stime.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's deterministic random stream. *)

val events_run : t -> int
(** Number of events executed so far. *)

val pending : t -> int
(** Number of live events still queued.  Cancelled events are removed
    eagerly and never counted. *)

val schedule : t -> at:Stime.t -> (unit -> unit) -> handle
(** [schedule t ~at k] runs [k] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_in : t -> delay:Stime.t -> (unit -> unit) -> handle
(** [schedule_in t ~delay k] runs [k] after [delay] of virtual time. *)

val cancel : handle -> unit
(** Prevent a scheduled event from running.  The event is removed from the
    queue immediately and its thunk dropped, so cancellation retains no
    memory until the original deadline.  Idempotent. *)

val step : t -> bool
(** Run the single earliest event.  [false] when the queue is empty. *)

val run : ?until:Stime.t -> ?max_events:int -> t -> unit
(** Run events until the queue empties, the clock would pass [until], or
    [max_events] have executed.  When [until] is given the clock is left at
    exactly [until] (or later if an event fired there). *)
