(* SplitMix64: a small, fast, deterministic PRNG.  We avoid Stdlib.Random
   so that simulation runs are reproducible independent of global state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* The SplitMix64 output finalizer: a bijective avalanche mix, applied
   to every advanced state and, by [stream], to raw (seed, index)
   combinations to decorrelate nearby pairs. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  let z = Int64.add t.state 0x9E3779B97F4A7C15L in
  t.state <- z;
  mix64 z

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits -> [0, 1) *)
  x /. 9007199254740992. *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = { state = next_int64 t }

(* Unlike [split], which derives a child from the parent's *current*
   position (so the result depends on how many draws preceded it), a
   stream is a pure function of (seed, index): worker domain [i] of a
   run seeded [s] always gets the same generator, no matter what the
   coordinating domain drew before spawning it.  Index [i]'s initial
   state is the SplitMix64 finalizer applied to [seed + (i+1)*gamma];
   the finalizer is bijective, so distinct indices give distinct states,
   and the avalanche keeps consecutive indices' output windows disjoint
   in practice (asserted by the qcheck non-overlap property). *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: negative index";
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))
  in
  { state = mix64 z }

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Rng.pareto: shape and scale must be positive";
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  (* inverse-CDF: X = scale / U^(1/shape), support [scale, +inf) *)
  scale /. (u ** (1. /. shape))
