(** Counters, sample series and log-bucketed histograms for experiment
    measurement. *)

module Histogram = Observe.Histogram
(** Log-bucketed latency histogram: O(1) record, O(1) memory,
    quantiles within ~3% relative error.  Prefer this over {!Series}
    anywhere sample counts are unbounded (hot paths, long-running
    workloads). *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Series : sig
  type t
  (** A collection of float samples; retains everything, percentiles are
      exact.

      @deprecated for hot-path use: memory grows with the sample count.
      Small fixed-iteration experiments may keep using it; anything
      per-packet or long-running should use {!Histogram}. *)

  val create : unit -> t
  val add : t -> float -> unit

  val add_time : t -> Stime.t -> unit
  (** Record a duration, converted to microseconds. *)

  val count : t -> int
  val is_empty : t -> bool
  val mean : t -> float
  val minimum : t -> float
  val maximum : t -> float

  val stddev : t -> float
  (** Sample standard deviation (Bessel-corrected). *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0..100], linear interpolation. *)

  val median : t -> float

  val summary : t -> string
  (** One-line human-readable summary. *)
end
