(** Simulated processor with CPU-time accounting.

    Protocol code in this reproduction executes instantaneously in OCaml
    but charges modelled CPU time here.  The CPU serializes charged work,
    so both packet latency (queueing + service) and processor utilization
    emerge from the cost model. *)

type t

type prio =
  | Interrupt  (** served before all thread work; used for device interrupts
                   and ephemeral handlers delegated to interrupt level *)
  | Thread     (** kernel threads and user processes *)

val create : Engine.t -> name:string -> t

val name : t -> string

val engine : t -> Engine.t
(** The engine this CPU charges time against. *)

val run : t -> ?prio:prio -> cost:Stime.t -> (unit -> unit) -> unit
(** [run t ~prio ~cost k] enqueues [cost] worth of work; [k] fires when the
    work completes.  Two-level priority service, non-preemptive by
    default (see {!set_preemptive}). *)

val charge : t -> cost:Stime.t -> unit
(** Account [cost] of CPU time performed inline by the caller, without a
    work item or an engine event: the CPU is reserved until [now + cost]
    (stacking with any outstanding reservation), and pending or future
    {!run} work is served only after the reservation elapses.  Busy-time
    and utilization accounting include the charge. *)

val set_preemptive : t -> bool -> unit
(** When enabled, an interrupt-priority arrival suspends in-service
    thread-priority work; the remainder resumes after interrupts drain.
    Default: off (the calibrated experiments use non-preemptive
    service). *)

val preemptive : t -> bool

val busy_time : t -> Stime.t
(** Total CPU time charged since creation. *)

val served : t -> int
(** Number of work items completed. *)

val reset_window : t -> unit
(** Start a fresh utilization accounting window at the current time. *)

val utilization : t -> float
(** Fraction of the current window the CPU spent busy, in [0, 1+)
    (can exceed 1 transiently only if work completed exactly at the
    window edge; practically bounded by 1). *)

val queue_depth : t -> int
(** Items waiting (not including the one in service). *)
