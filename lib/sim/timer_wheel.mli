(** Hierarchical timer wheel.

    A priority queue over non-negative integer keys (nanosecond deadlines)
    with O(1) [add], O(1) true-removal [cancel] and amortised O(1)
    [pop_min].  Pops are stable: among equal keys, insertion order wins —
    the wheel fires in exactly the same order as {!Pheap} would.

    The wheel has a moving horizon: once a key has been popped (or revealed
    by {!peek_min}), no smaller key may be added.  Callers that need to
    schedule behind the horizon must keep such entries in a side structure
    (see {!Engine}). *)

type 'a t

type 'a node
(** A scheduled entry, usable for cancellation. *)

val create : unit -> 'a t

val live : 'a t -> int
(** Number of entries added but not yet popped or cancelled. *)

val is_empty : 'a t -> bool

val horizon : 'a t -> int
(** Smallest key currently accepted by {!add}. Only moves forward. *)

val add : 'a t -> key:int -> 'a -> 'a node
(** O(1).  @raise Invalid_argument if [key < horizon t]. *)

val cancel : 'a node -> unit
(** O(1) true removal: unlinks the node and drops its payload eagerly so
    the value is not retained until its deadline.  Idempotent. *)

val is_live : 'a node -> bool
(** [true] until the node is popped or cancelled. *)

val peek_min : 'a t -> (int * 'a) option
(** Earliest live entry without removing it.  May advance {!horizon} up to
    the returned key. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the earliest live entry. *)
