(* A single processor with two service priorities.

   Work items are (cost, continuation) pairs.  The CPU serves one item at a
   time; interrupt-priority work is always dequeued before thread-priority
   work, modelling SPIN's distinction between interrupt-level handlers and
   kernel threads, and DIGITAL UNIX's interrupt vs. process split.  Service
   is non-preemptive, which matches per-packet protocol work whose units are
   tens of microseconds.

   The continuation runs at the moment its work *completes*, so a chain of
   [run] calls naturally yields end-to-end latency including queueing. *)

type prio = Interrupt | Thread

type work = { cost : Stime.t; k : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  intr_q : work Queue.t;
  thread_q : work Queue.t;
  mutable resumed : work option;  (* preempted thread work, served first *)
  mutable busy : bool;
  mutable preemptive : bool;
  mutable current : (work * prio * Stime.t * Engine.handle) option;
      (* item in service: work, priority, start time, completion event *)
  mutable reserved_until : Stime.t;
      (* CPU time charged inline via [charge], with no work item of its
         own: service of queued work is pushed past this instant *)
  mutable busy_ns : Stime.t;         (* accumulated service time *)
  mutable window_start : Stime.t;    (* start of the accounting window *)
  mutable window_busy : Stime.t;     (* busy time within the window *)
  mutable served : int;
}

let create engine ~name =
  {
    engine;
    name;
    intr_q = Queue.create ();
    thread_q = Queue.create ();
    resumed = None;
    busy = false;
    preemptive = false;
    current = None;
    reserved_until = Stime.zero;
    busy_ns = Stime.zero;
    window_start = Stime.zero;
    window_busy = Stime.zero;
    served = 0;
  }

let name t = t.name
let engine t = t.engine
let busy_time t = t.busy_ns
let served t = t.served

(* Opt-in preemption: interrupt-priority arrivals suspend in-service
   thread-priority work (its remainder resumes once interrupts drain).
   Off by default — the calibrated experiments use non-preemptive
   two-level service. *)
let set_preemptive t flag = t.preemptive <- flag
let preemptive t = t.preemptive

let rec service t =
  let next =
    if not (Queue.is_empty t.intr_q) then Some (Queue.pop t.intr_q, Interrupt)
    else
      match t.resumed with
      | Some w ->
          t.resumed <- None;
          Some (w, Thread)
      | None ->
          if not (Queue.is_empty t.thread_q) then
            Some (Queue.pop t.thread_q, Thread)
          else None
  in
  match next with
  | None ->
      t.busy <- false;
      t.current <- None
  | Some (w, prio) -> serve t w prio

and serve t w prio =
  t.busy <- true;
  let started = Engine.now t.engine in
  (* an outstanding inline charge delays service of queued work *)
  let wait = Stime.max Stime.zero (Stime.sub t.reserved_until started) in
  let handle =
    Engine.schedule_in t.engine ~delay:(Stime.add wait w.cost) (fun () ->
        t.current <- None;
        t.busy_ns <- Stime.add t.busy_ns w.cost;
        t.window_busy <- Stime.add t.window_busy w.cost;
        t.served <- t.served + 1;
        w.k ();
        service t)
  in
  t.current <- Some (w, prio, started, handle)

(* Suspend in-service thread work so that a just-arrived interrupt runs
   immediately; the consumed slice is charged now and the remainder goes
   back to the head of the line. *)
let preempt t =
  match t.current with
  | Some (w, Thread, started, handle) ->
      Engine.cancel handle;
      let consumed = Stime.sub (Engine.now t.engine) started in
      t.busy_ns <- Stime.add t.busy_ns consumed;
      t.window_busy <- Stime.add t.window_busy consumed;
      t.resumed <- Some { w with cost = Stime.sub w.cost consumed };
      t.current <- None;
      service t
  | _ -> ()

(* Account CPU work performed inline by the caller, with no work item and
   no engine event: the CPU is reserved until now + cost, so pending and
   future work items are served only after the reservation elapses.  Used
   by the dispatcher's flow-path replay, which runs a whole cached chain
   synchronously and charges its modelled cost in one step. *)
let charge t ~cost =
  let now = Engine.now t.engine in
  let base = Stime.max now t.reserved_until in
  t.reserved_until <- Stime.add base cost;
  t.busy_ns <- Stime.add t.busy_ns cost;
  t.window_busy <- Stime.add t.window_busy cost

let run t ?(prio = Thread) ~cost k =
  if not t.busy then
    (* idle CPU: the queues are empty (service drains them before
       clearing [busy]), so skip the queue round-trip entirely *)
    serve t { cost; k } prio
  else begin
    let q = match prio with Interrupt -> t.intr_q | Thread -> t.thread_q in
    Queue.push { cost; k } q;
    if t.preemptive && prio = Interrupt then preempt t
  end

let reset_window t =
  t.window_start <- Engine.now t.engine;
  t.window_busy <- Stime.zero

let utilization t =
  let elapsed = Stime.sub (Engine.now t.engine) t.window_start in
  let e = Stime.to_ns elapsed in
  if e <= 0 then 0.0
  else
    let u = Stime.to_ns t.window_busy in
    float_of_int u /. float_of_int e

let queue_depth t =
  Queue.length t.intr_q + Queue.length t.thread_q
  + match t.resumed with Some _ -> 1 | None -> 0
