(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic element of a simulation draws from an explicit [t] so
    that runs are exactly reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val float : t -> float -> float
(** [float t b] is uniform in [\[0, b)]. *)

val bool : t -> bool

val split : t -> t
(** An independent generator derived from [t]'s stream.  The child
    depends on the parent's current position — deterministic only if
    every preceding draw is. *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] is worker stream [index] of the run seeded
    [seed]: a pure function of its two arguments, independent of any
    generator's mutable position.  Parallel soaks hand stream [i] to
    domain [i] so per-domain randomness is reproducible regardless of
    spawn order.  Distinct indices yield distinct generators.
    @raise Invalid_argument if [index] is negative. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val uniform : t -> lo:float -> hi:float -> float

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed sample on [\[scale, +inf)] — the classic
    heavy-tailed flow-size distribution.  [shape] <= 1 has infinite
    mean; web-flow fits are usually 1.1–1.5. *)
