(* The discrete-event loop.  Events are thunks keyed by their firing time;
   the loop repeatedly pops the earliest event, advances the clock to it and
   runs it.

   Events live in a hierarchical timer wheel (O(1) schedule, O(1) true
   cancel that drops the thunk eagerly).  The wheel's horizon advances to
   the earliest pending deadline whenever we peek ahead — e.g. when
   [run ~until] looks past the horizon and stops — so an event scheduled
   after such a run can land *behind* the wheel.  Those rare stragglers go
   to a small binary-heap side queue; pops merge the two by (key, seq) so
   global firing order is identical to a single stable heap. *)

type event = { seq : int; mutable thunk : (unit -> unit) option }

type handle =
  | Wheel of event Timer_wheel.node
  | Front of t * event

and t = {
  mutable clock : Stime.t;
  wheel : event Timer_wheel.t;
  front : event Pheap.t; (* events scheduled behind the wheel horizon *)
  mutable front_live : int;
  rng : Rng.t;
  mutable events_run : int;
  mutable next_seq : int;
}

let create ?(seed = 42) () =
  {
    clock = Stime.zero;
    wheel = Timer_wheel.create ();
    front = Pheap.create ();
    front_live = 0;
    rng = Rng.create seed;
    events_run = 0;
    next_seq = 0;
  }

let now t = t.clock
let rng t = t.rng
let events_run t = t.events_run
let pending t = Timer_wheel.live t.wheel + t.front_live

let schedule t ~at thunk =
  if Stime.compare at t.clock < 0 then
    invalid_arg "Engine.schedule: cannot schedule in the past";
  let key = Stime.to_ns at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { seq; thunk = Some thunk } in
  if key >= Timer_wheel.horizon t.wheel then Wheel (Timer_wheel.add t.wheel ~key ev)
  else begin
    Pheap.add t.front ~key ev;
    t.front_live <- t.front_live + 1;
    Front (t, ev)
  end

let schedule_in t ~delay thunk = schedule t ~at:(Stime.add t.clock delay) thunk

let cancel h =
  match h with
  | Wheel node -> Timer_wheel.cancel node
  | Front (t, ev) ->
      if ev.thunk <> None then begin
        ev.thunk <- None;
        t.front_live <- t.front_live - 1
      end

(* Peek the side queue, discarding cancelled entries as we meet them. *)
let rec front_peek t =
  match Pheap.peek_min t.front with
  | None -> None
  | Some (_, ev) when ev.thunk = None ->
      ignore (Pheap.pop_min t.front);
      front_peek t
  | Some (key, ev) -> Some (key, ev)

let next_key t =
  match (front_peek t, Timer_wheel.peek_min t.wheel) with
  | None, None -> None
  | Some (k, _), None | None, Some (k, _) -> Some k
  | Some (fk, _), Some (wk, _) -> Some (min fk wk)

let pop_next t =
  match (front_peek t, Timer_wheel.peek_min t.wheel) with
  | None, None -> None
  | Some _, None ->
      t.front_live <- t.front_live - 1;
      Pheap.pop_min t.front
  | None, Some _ -> Timer_wheel.pop_min t.wheel
  | Some (fk, fev), Some (wk, wev) ->
      if fk < wk || (fk = wk && fev.seq < wev.seq) then begin
        t.front_live <- t.front_live - 1;
        Pheap.pop_min t.front
      end
      else Timer_wheel.pop_min t.wheel

let step t =
  match pop_next t with
  | None -> false
  | Some (key, ev) ->
      t.clock <- Stime.ns key;
      (match ev.thunk with
      | Some k ->
          ev.thunk <- None;
          t.events_run <- t.events_run + 1;
          k ()
      | None -> assert false (* live entries always carry a thunk *));
      true

let run ?until ?(max_events = max_int) t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match next_key t with
        | None -> false
        | Some key -> key <= Stime.to_ns limit)
  in
  let rec loop n = if n < max_events && continue () && step t then loop (n + 1) in
  loop 0;
  (* If we stopped because of the horizon, advance the clock to it so that
     utilization windows are well-defined. *)
  match until with
  | Some limit when Stime.compare t.clock limit < 0 -> t.clock <- limit
  | _ -> ()
