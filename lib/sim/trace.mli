(** Conditional simulation tracing over {!Observe.Trace} sinks.

    The process-global trace endpoint for components without a kernel of
    their own (devices, the DU model).  Protocol-graph dispatch emits
    structured spans through the per-kernel endpoint instead
    ({!Spin.Kernel.trace}). *)

val enabled : bool ref
(** Legacy switch: when true, {!emit} prints formatted lines to stderr;
    default false. *)

val set_sink : Observe.Trace.sink -> unit
(** Attach a structured sink; {!emit} lines arrive as [Message] spans
    and {!drop} as [Drop] spans.  Default [Null]. *)

val sink : unit -> Observe.Trace.sink

val on : unit -> bool
(** True when any output is live (stderr or a structured sink).  Guard
    hot-path calls with this so argument evaluation is skipped when
    tracing is off. *)

val emit : Stime.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit now fmt ...] emits a timestamped trace line when on.  When
    off, the arguments are consumed without being formatted — a [%a]
    printer in the argument list is never invoked. *)

val drop : Stime.t -> scope:string -> reason:string -> unit
(** Record a packet drop as a structured [Drop] span (and a stderr line
    under the legacy flag). *)
