(* Hierarchical timer wheel with O(1) add, O(1) true cancel and amortised
   O(1) pop.  Keys are non-negative nanosecond deadlines; a monotonically
   increasing sequence number makes pops stable, so the wheel fires events
   in exactly the same (key, seq) order as a binary heap would.

   Layout: [levels] levels of [slots] = 2^[slot_bits] buckets each.  Level l
   covers a window of 2^(slot_bits*(l+1)) ns split into [slots] buckets of
   2^(slot_bits*l) ns.  An event with deadline [key] lives at the level
   given by the highest bit in which [key] differs from the wheel's current
   time [cur]; when [cur] advances into a higher-level bucket's window the
   bucket is cascaded (redistributed) into lower levels.

   Each bucket is a circular doubly-linked list with a sentinel, so cancel
   unlinks in O(1) and drops the payload eagerly — no closure is retained
   past cancellation.

   Order invariant: every event whose deadline lies within the current
   level-(l+1) bucket window is stored at level <= l, because the cascade
   pulls a window's events down exactly when [cur] enters it and [cur] only
   moves forward.  Hence a direct add into a bucket always carries a larger
   seq than anything cascaded there earlier, cascading preserves list
   order, and bucket lists stay seq-sorted: popping the head of the lowest
   occupied slot reproduces heap order exactly. *)

let slot_bits = 5
let slots = 1 lsl slot_bits (* 32 *)
let slot_mask = slots - 1
let levels = 13 (* 13 * 5 = 65 bits: covers any non-negative OCaml int key *)

type 'a node = {
  mutable key : int;
  mutable value : 'a option; (* None once cancelled or fired *)
  mutable prev : 'a node;
  mutable next : 'a node;
  mutable owner : 'a t option; (* None for sentinels and detached nodes *)
  mutable level : int;
  mutable slot : int;
  seq : int;
}

and 'a t = {
  buckets : 'a node array array; (* [level].[slot] -> sentinel *)
  occupancy : int array; (* per-level bitmap of non-empty slots *)
  mutable level_occ : int; (* bitmap of levels with any non-empty slot *)
  mutable cur : int; (* current time; all live keys are >= cur *)
  mutable live : int;
  mutable next_seq : int;
  mutable settled : 'a node option;
      (* memo of the last [settle] result: the level-0 sentinel holding
         the minimum.  Valid until a pop or cancel unlinks a node — a
         later [add] cannot beat the settled head (its key is >= cur =
         head.key, and at equal keys its seq is larger). *)
}

let make_sentinel () =
  let rec s =
    { key = 0; value = None; prev = s; next = s; owner = None; level = -1;
      slot = -1; seq = -1 }
  in
  s

let create () =
  {
    buckets = Array.init levels (fun _ -> Array.init slots (fun _ -> make_sentinel ()));
    occupancy = Array.make levels 0;
    level_occ = 0;
    cur = 0;
    live = 0;
    next_seq = 0;
    settled = None;
  }

let live t = t.live
let is_empty t = t.live = 0

(* Level at which an event with deadline [key] lives, given current time
   [cur]: the index of the 5-bit digit group containing the highest bit in
   which key and cur differ (0 when key = cur). *)
let level_for t key =
  let x = key lxor t.cur in
  if x = 0 then 0
  else begin
    let rec highest_bit x acc =
      if x >= 0x1_0000_0000 then highest_bit (x lsr 32) (acc + 32)
      else if x >= 0x1_0000 then highest_bit (x lsr 16) (acc + 16)
      else if x >= 0x100 then highest_bit (x lsr 8) (acc + 8)
      else if x >= 0x10 then highest_bit (x lsr 4) (acc + 4)
      else if x >= 0x4 then highest_bit (x lsr 2) (acc + 2)
      else if x >= 0x2 then acc + 1
      else acc
    in
    highest_bit x 0 / slot_bits
  end

let lowest_set_bit x =
  (* index of the least-significant set bit; x <> 0 *)
  let rec go x acc =
    if x land 1 = 1 then acc else go (x lsr 1) (acc + 1)
  in
  go x 0

let link_at t node level slot =
  node.level <- level;
  node.slot <- slot;
  let s = t.buckets.(level).(slot) in
  (* insert before the sentinel = append at tail, preserving seq order *)
  node.prev <- s.prev;
  node.next <- s;
  s.prev.next <- node;
  s.prev <- node;
  t.occupancy.(level) <- t.occupancy.(level) lor (1 lsl slot);
  t.level_occ <- t.level_occ lor (1 lsl level)

let place t node =
  let level = level_for t node.key in
  let slot = (node.key lsr (slot_bits * level)) land slot_mask in
  link_at t node level slot

let add t ~key value =
  if key < t.cur then invalid_arg "Timer_wheel.add: key is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let rec node =
    { key; value = Some value; prev = node; next = node; owner = Some t;
      level = 0; slot = 0; seq }
  in
  place t node;
  t.live <- t.live + 1;
  node

let unlink t node =
  t.settled <- None;
  node.prev.next <- node.next;
  node.next.prev <- node.prev;
  let s = t.buckets.(node.level).(node.slot) in
  if s.next == s then begin
    t.occupancy.(node.level) <- t.occupancy.(node.level) land lnot (1 lsl node.slot);
    if t.occupancy.(node.level) = 0 then
      t.level_occ <- t.level_occ land lnot (1 lsl node.level)
  end;
  node.prev <- node;
  node.next <- node

let cancel node =
  match node.owner with
  | None -> () (* already fired or cancelled; idempotent *)
  | Some t ->
      unlink t node;
      node.owner <- None;
      node.value <- None;
      t.live <- t.live - 1

let is_live node = match node.owner with Some _ -> true | None -> false

(* Move every node of bucket [level].[slot] down to its proper lower level.
   Precondition: [t.cur] has been advanced so that the bucket's window
   starts at or before cur's window at this level, i.e. every node now maps
   to a strictly lower level.  Traversal preserves list (= seq) order. *)
let cascade t level slot =
  let s = t.buckets.(level).(slot) in
  t.occupancy.(level) <- t.occupancy.(level) land lnot (1 lsl slot);
  if t.occupancy.(level) = 0 then
    t.level_occ <- t.level_occ land lnot (1 lsl level);
  let rec drain node =
    if node != s then begin
      let next = node.next in
      node.prev <- node;
      node.next <- node;
      place t node;
      drain next
    end
  in
  let first = s.next in
  s.next <- s;
  s.prev <- s;
  drain first

(* Advance [cur] to the earliest live deadline and return its level-0 slot,
   cascading higher-level buckets as needed.  Returns the sentinel of the
   level-0 bucket holding the minimum, or None when empty. *)
let rec settle t =
  match t.settled with
  | Some s when s.next != s -> Some s
  | _ ->
      t.settled <- None;
      settle_slow t

and settle_slow t =
  if t.live = 0 then None
  else begin
    (* lowest non-empty level, via the level-occupancy summary bitmap *)
    let find_level () =
      if t.level_occ = 0 then None else Some (lowest_set_bit t.level_occ)
    in
    match find_level () with
    | None -> None (* unreachable when live > 0 *)
    | Some 0 ->
        let slot = lowest_set_bit t.occupancy.(0) in
        let s = t.buckets.(0).(slot) in
        (* every node in a level-0 bucket shares one exact deadline *)
        t.cur <- s.next.key;
        t.settled <- Some s;
        Some s
    | Some l ->
        let slot = lowest_set_bit t.occupancy.(l) in
        (* jump cur to the start of that bucket's window, then cascade *)
        let high = (t.cur lsr (slot_bits * (l + 1))) lsl (slot_bits * (l + 1)) in
        t.cur <- high lor (slot lsl (slot_bits * l));
        cascade t l slot;
        settle_slow t
  end

let horizon t = t.cur

let peek_min t =
  match settle t with
  | None -> None
  | Some s -> (
      match s.next.value with
      | Some v -> Some (s.next.key, v)
      | None -> assert false (* cancelled nodes are never linked *))

let pop_min t =
  match settle t with
  | None -> None
  | Some s ->
      let node = s.next in
      unlink t node;
      node.owner <- None;
      t.live <- t.live - 1;
      let v = node.value in
      node.value <- None;
      (match v with
       | Some v -> Some (node.key, v)
       | None -> assert false (* cancelled nodes are never linked *))
