(** ARP (IPv4 over Ethernet) codec and resolution cache. *)

val packet_len : int
val op_request : int
val op_reply : int

type message = {
  op : int;
  sender_mac : Ether.Mac.t;
  sender_ip : Ipaddr.t;
  target_mac : Ether.Mac.t;
  target_ip : Ipaddr.t;
}

val parse : _ View.t -> message option
val to_packet : message -> Mbuf.rw Mbuf.t

val request :
  sender_mac:Ether.Mac.t -> sender_ip:Ipaddr.t -> target_ip:Ipaddr.t -> message

val reply_to : message -> mac:Ether.Mac.t -> message
(** The reply a host owning [message.target_ip] (with [mac]) sends. *)

module Cache : sig
  type t

  val create : ?ttl:Sim.Stime.t -> unit -> t
  val lookup : t -> now:Sim.Stime.t -> Ipaddr.t -> Ether.Mac.t option
  val insert : t -> now:Sim.Stime.t -> Ipaddr.t -> Ether.Mac.t -> unit

  val wait : t -> Ipaddr.t -> (Ether.Mac.t -> unit) -> unit
  (** Queue a continuation until the address resolves. *)

  val cancel_waiters : t -> Ipaddr.t -> int
  (** Drop every continuation queued for [ip], returning how many were
      dropped.  Called when a resolution is abandoned, so that a reply
      arriving after the retry budget is spent cannot fire stale
      continuations (and transmit packets the sender gave up on). *)

  val waiting_count : t -> Ipaddr.t -> int
  (** Continuations currently queued for [ip]. *)

  val size : t -> int
end

val pp_message : Format.formatter -> message -> unit
