(* ARP for IPv4 over Ethernet: codec and a resolution cache. *)

let packet_len = 28

let op_request = 1
let op_reply = 2

type message = {
  op : int;
  sender_mac : Ether.Mac.t;
  sender_ip : Ipaddr.t;
  target_mac : Ether.Mac.t;
  target_ip : Ipaddr.t;
}

let parse v =
  if View.length v < packet_len then None
  else if
    View.get_u16 v 0 <> 1 (* htype ethernet *)
    || View.get_u16 v 2 <> Ether.etype_ip
    || View.get_u8 v 4 <> 6
    || View.get_u8 v 5 <> 4
  then None
  else
    Some
      {
        op = View.get_u16 v 6;
        sender_mac = Ether.Mac.of_int (Ether.get_u48 v 8);
        sender_ip = Ipaddr.of_int (View.get_u32 v 14);
        target_mac = Ether.Mac.of_int (Ether.get_u48 v 18);
        target_ip = Ipaddr.of_int (View.get_u32 v 24);
      }

let to_packet m =
  let pkt = Mbuf.alloc packet_len in
  let v = Mbuf.view pkt in
  View.set_u16 v 0 1;
  View.set_u16 v 2 Ether.etype_ip;
  View.set_u8 v 4 6;
  View.set_u8 v 5 4;
  View.set_u16 v 6 m.op;
  Ether.set_u48 v 8 (Ether.Mac.to_int m.sender_mac);
  View.set_u32 v 14 (Ipaddr.to_int m.sender_ip);
  Ether.set_u48 v 18 (Ether.Mac.to_int m.target_mac);
  View.set_u32 v 24 (Ipaddr.to_int m.target_ip);
  pkt

let request ~sender_mac ~sender_ip ~target_ip =
  {
    op = op_request;
    sender_mac;
    sender_ip;
    target_mac = Ether.Mac.of_int 0;
    target_ip;
  }

let reply_to m ~mac =
  {
    op = op_reply;
    sender_mac = mac;
    sender_ip = m.target_ip;
    target_mac = m.sender_mac;
    target_ip = m.sender_ip;
  }

module Cache = struct
  type entry = { mac : Ether.Mac.t; expires : Sim.Stime.t }

  type t = {
    entries : (Ipaddr.t, entry) Hashtbl.t;
    ttl : Sim.Stime.t;
    waiting : (Ipaddr.t, (Ether.Mac.t -> unit) list) Hashtbl.t;
  }

  let create ?(ttl = Sim.Stime.s 1200) () =
    { entries = Hashtbl.create 8; ttl; waiting = Hashtbl.create 4 }

  let lookup t ~now ip =
    match Hashtbl.find_opt t.entries ip with
    | Some e when Sim.Stime.compare now e.expires < 0 -> Some e.mac
    | Some _ ->
        Hashtbl.remove t.entries ip;
        None
    | None -> None

  let insert t ~now ip mac =
    Hashtbl.replace t.entries ip { mac; expires = Sim.Stime.add now t.ttl };
    match Hashtbl.find_opt t.waiting ip with
    | None -> ()
    | Some ks ->
        Hashtbl.remove t.waiting ip;
        List.iter (fun k -> k mac) (List.rev ks)

  let wait t ip k =
    let ks = Option.value (Hashtbl.find_opt t.waiting ip) ~default:[] in
    Hashtbl.replace t.waiting ip (k :: ks)

  (* Abandoning a resolution must drop its queued continuations, or a
     reply arriving long after the retry budget is spent would fire them
     — transmitting packets the sender gave up on ages ago. *)
  let cancel_waiters t ip =
    match Hashtbl.find_opt t.waiting ip with
    | None -> 0
    | Some ks ->
        Hashtbl.remove t.waiting ip;
        List.length ks

  let waiting_count t ip =
    match Hashtbl.find_opt t.waiting ip with
    | None -> 0
    | Some ks -> List.length ks

  let size t = Hashtbl.length t.entries
end

let pp_message ppf m =
  Fmt.pf ppf "arp{%s %a(%a) -> %a}"
    (if m.op = op_request then "who-has" else "is-at")
    Ipaddr.pp m.sender_ip Ether.Mac.pp m.sender_mac Ipaddr.pp m.target_ip
