(* UDP: header codec and datagram construction with the pseudo-header
   checksum.  The checksum can be disabled per datagram — the paper's
   motivating example of an application-specific protocol change
   (section 1.1): media applications that tolerate bit errors skip it. *)

let header_len = 8

type header = { src_port : int; dst_port : int; len : int; cksum : int }

let parse v =
  if View.length v < header_len then None
  else
    Some
      {
        src_port = View.get_u16 v 0;
        dst_port = View.get_u16 v 2;
        len = View.get_u16 v 4;
        cksum = View.get_u16 v 6;
      }

let write v { src_port; dst_port; len; cksum } =
  View.set_u16 v 0 src_port;
  View.set_u16 v 2 dst_port;
  View.set_u16 v 4 len;
  View.set_u16 v 6 cksum

let compute_cksum ~src ~dst v =
  let pseudo = Ipv4.pseudo_header ~src ~dst ~proto:Ipv4.proto_udp ~len:(View.length v) in
  match Cksum.of_views [ pseudo; View.ro v ] with
  | 0 -> 0xffff (* RFC 768: transmitted as all-ones when it computes to 0 *)
  | c -> c

(* Prepend a UDP header to a payload packet.  [checksum:false] writes 0,
   which RFC 768 defines as "no checksum".  The checksum folds over the
   chain's segments in place — a scatter-gather payload is neither pulled
   up nor copied. *)
let encapsulate ?(checksum = true) pkt ~src ~dst ~src_port ~dst_port =
  let len = header_len + Mbuf.length pkt in
  let v = Mbuf.prepend pkt header_len in
  write v { src_port; dst_port; len; cksum = 0 };
  if checksum then begin
    let pseudo = Ipv4.pseudo_header ~src ~dst ~proto:Ipv4.proto_udp ~len in
    let c =
      match Cksum.of_views (View.ro pseudo :: Mbuf.views (Mbuf.ro pkt)) with
      | 0 -> 0xffff (* RFC 768: transmitted as all-ones when it computes to 0 *)
      | c -> c
    in
    View.set_u16 v 6 c
  end

(* Validate a datagram (header + payload view).  A zero checksum field
   means the sender disabled checksumming. *)
let valid ~src ~dst v =
  match parse v with
  | None -> false
  | Some h ->
      h.len = View.length v
      && (h.cksum = 0
          ||
          let pseudo =
            Ipv4.pseudo_header ~src ~dst ~proto:Ipv4.proto_udp ~len:h.len
          in
          Cksum.of_views [ pseudo; View.ro v ] = 0)

let pp_header ppf h =
  Fmt.pf ppf "udp{%d -> %d len=%d}" h.src_port h.dst_port h.len
