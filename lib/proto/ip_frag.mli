(** IP fragmentation and reassembly.

    Fragmentation is zero-copy: fragments are {!Mbuf.sub} sub-chains
    sharing the datagram's buffers.  Reassembly copies each payload byte
    exactly once, into the completed datagram. *)

val fragment : mtu:int -> 'p Mbuf.t -> (int * bool * 'p Mbuf.t) list
(** [fragment ~mtu payload] is a list of
    [(frag_offset_in_8B_units, more_fragments, sub_chain)] covering
    [payload], each fitting in [mtu] with an IP header.  No payload byte
    is copied; the caller keeps ownership of [payload].
    @raise Invalid_argument if the MTU cannot carry 8 payload bytes. *)

type t
(** Reassembly state, keyed by (src, dst, proto, id). *)

val create : ?timeout:Sim.Stime.t -> unit -> t

val input : t -> now:Sim.Stime.t -> Ipv4.header -> _ View.t -> Mbuf.rw Mbuf.t option
(** Feed a fragment's payload (or a whole datagram); [Some datagram] when
    one completes.  Chunk views are held until completion, so they must
    remain valid that long (the receive path keeps arriving frames
    alive).  Stale contexts are expired lazily against [now]. *)

val expire : t -> now:Sim.Stime.t -> int
(** Drop every pending reassembly whose deadline has passed, returning
    how many were expired (also counted in {!timeout_count}).  Called
    lazily by {!input}; callers that must bound how long a stalled
    fragment train pins its buffers (the chunks reference arriving
    frames) schedule it from a timer — see [Ip_mgr]. *)

val next_deadline : t -> Sim.Stime.t option
(** The earliest deadline among pending reassemblies, or [None] when
    nothing is pending — the instant a periodic expirer should arm its
    next one-shot timer for. *)

val pending_count : t -> int
val reassembled_count : t -> int
val timeout_count : t -> int
