(** IP fragmentation and reassembly.

    Fragmentation is zero-copy: fragments are {!Mbuf.sub} sub-chains
    sharing the datagram's buffers.  Reassembly copies each payload byte
    exactly once, into the completed datagram. *)

val fragment : mtu:int -> 'p Mbuf.t -> (int * bool * 'p Mbuf.t) list
(** [fragment ~mtu payload] is a list of
    [(frag_offset_in_8B_units, more_fragments, sub_chain)] covering
    [payload], each fitting in [mtu] with an IP header.  No payload byte
    is copied; the caller keeps ownership of [payload].
    @raise Invalid_argument if the MTU cannot carry 8 payload bytes. *)

type t
(** Reassembly state, keyed by (src, dst, proto, id). *)

val create : ?timeout:Sim.Stime.t -> unit -> t

val input : t -> now:Sim.Stime.t -> Ipv4.header -> _ View.t -> Mbuf.rw Mbuf.t option
(** Feed a fragment's payload (or a whole datagram); [Some datagram] when
    one completes.  Chunk views are held until completion, so they must
    remain valid that long (the receive path keeps arriving frames
    alive).  Stale contexts are expired lazily against [now]. *)

val pending_count : t -> int
val reassembled_count : t -> int
val timeout_count : t -> int
