(* IP fragmentation and reassembly.  The video experiment (Figure 6)
   sends 12.5 KB UDP frames, which must be fragmented to the device MTU;
   the receive side reassembles before the UDP layer sees the datagram.

   Fragmentation is zero-copy: each fragment is an [Mbuf.sub] sub-chain
   sharing the datagram's buffers, so splitting a 12.5 KB datagram moves
   no payload bytes at all (headers are later prepended into fresh
   per-fragment segments because the shared payload store is not
   exclusively owned).  Reassembly holds (offset, view) chunks and blits
   each byte exactly once into a fresh mbuf when the datagram completes —
   the one legitimate copy on this path. *)

(* Split a datagram into (offset-in-8-byte-units, more, sub-chain)
   fragments that each fit in [mtu] together with the IP header.  The
   caller keeps ownership of [payload]; fragments hold their own
   references to its buffers. *)
let fragment ~mtu (payload : 'p Mbuf.t) : (int * bool * 'p Mbuf.t) list =
  if mtu <= Ipv4.header_len + 8 then invalid_arg "Ip_frag.fragment: mtu too small";
  let max_data = (mtu - Ipv4.header_len) / 8 * 8 in
  let len = Mbuf.length payload in
  if len <= max_data then [ (0, false, Mbuf.sub payload ~off:0 ~len) ]
  else begin
    let rec go off acc =
      if off >= len then List.rev acc
      else begin
        let n = min max_data (len - off) in
        let more = off + n < len in
        go (off + n) ((off / 8, more, Mbuf.sub payload ~off ~len:n) :: acc)
      end
    in
    go 0 []
  end

(* Reassembly contexts are keyed by (src, dst, proto, id). *)
type key = { src : Ipaddr.t; dst : Ipaddr.t; proto : int; id : int }

type ctx = {
  mutable chunks : (int * View.ro View.t) list; (* byte offset, payload *)
  mutable total : int option;           (* known once the last fragment arrives *)
  mutable received : int;
  deadline : Sim.Stime.t;
}

type t = {
  pending : (key, ctx) Hashtbl.t;
  timeout : Sim.Stime.t;
  mutable timeouts : int;
  mutable reassembled : int;
}

let create ?(timeout = Sim.Stime.s 30) () =
  { pending = Hashtbl.create 16; timeout; timeouts = 0; reassembled = 0 }

let pending_count t = Hashtbl.length t.pending
let reassembled_count t = t.reassembled
let timeout_count t = t.timeouts

let expire t ~now =
  let stale =
    Hashtbl.fold
      (fun k ctx acc -> if Sim.Stime.compare now ctx.deadline > 0 then k :: acc else acc)
      t.pending []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.pending k;
      t.timeouts <- t.timeouts + 1)
    stale;
  List.length stale

(* The earliest deadline among pending reassemblies — what a periodic
   expirer should arm its next one-shot timer at.  [None] when nothing
   is pending, so the expirer can go quiet instead of ticking forever
   (a perpetual timer would keep the event-driven engine from ever
   draining). *)
let next_deadline t =
  Hashtbl.fold
    (fun _ ctx acc ->
      match acc with
      | None -> Some ctx.deadline
      | Some d ->
          if Sim.Stime.compare ctx.deadline d < 0 then Some ctx.deadline
          else acc)
    t.pending None

(* Assemble completed chunks into a fresh contiguous datagram: each
   payload byte is copied exactly once, here. *)
let assemble total chunks =
  let m = Mbuf.alloc total in
  let dst = Mbuf.view m in
  List.iter
    (fun (o, v) ->
      View.blit ~src:v ~dst ~src_off:0 ~dst_off:o ~len:(View.length v))
    chunks;
  m

(* Feed one fragment's payload; returns the reassembled datagram when
   complete.  The chunk views must stay valid until then (they reference
   the arriving frames' buffers, which the receive path keeps alive). *)
let input t ~now (h : Ipv4.header) (payload : _ View.t) :
    Mbuf.rw Mbuf.t option =
  let payload = View.ro payload in
  if (not h.more_fragments) && h.frag_offset = 0 then
    Some (assemble (View.length payload) [ (0, payload) ])
  else begin
    ignore (expire t ~now : int);
    let key = { src = h.src; dst = h.dst; proto = h.proto; id = h.id } in
    let ctx =
      match Hashtbl.find_opt t.pending key with
      | Some c -> c
      | None ->
          let c =
            {
              chunks = [];
              total = None;
              received = 0;
              deadline = Sim.Stime.add now t.timeout;
            }
          in
          Hashtbl.replace t.pending key c;
          c
    in
    let off = h.frag_offset * 8 in
    if not (List.mem_assoc off ctx.chunks) then begin
      ctx.chunks <- (off, payload) :: ctx.chunks;
      ctx.received <- ctx.received + View.length payload
    end;
    if not h.more_fragments then ctx.total <- Some (off + View.length payload);
    match ctx.total with
    | Some total when ctx.received >= total ->
        Hashtbl.remove t.pending key;
        t.reassembled <- t.reassembled + 1;
        Some (assemble total ctx.chunks)
    | _ -> None
  end
