(* A matching HTTP/1.0 client over the Plexus TCP manager. *)

type result = { status : int; body : string; elapsed : Sim.Stime.t }

let get stack ~dst ~path k =
  let engine = Netsim.Host.engine (Plexus.Stack.host stack) in
  let started = Sim.Engine.now engine in
  match
    Plexus.Tcp_mgr.connect (Plexus.Stack.tcp stack) ~owner:"http-client" ~dst ()
  with
  | Error (`Port_in_use _) | Error `Ephemeral_exhausted ->
      invalid_arg "Http_client.get: no free port"
  | Ok conn ->
      let buf = Buffer.create 256 in
      Plexus.Tcp_mgr.on_established conn (fun () ->
          Plexus.Tcp_mgr.send conn
            (Proto.Http.request_to_string
               { Proto.Http.meth = "GET"; path; headers = [ ("host", "plexus") ] }));
      Plexus.Tcp_mgr.on_receive conn (fun data -> Buffer.add_string buf data);
      let finished = ref false in
      let finish () =
        if not !finished then begin
          finished := true;
          let elapsed = Sim.Stime.sub (Sim.Engine.now engine) started in
          match Proto.Http.parse_response (Buffer.contents buf) with
          | Some r -> k (Some { status = r.Proto.Http.status; body = r.body; elapsed })
          | None -> k None
        end
      in
      Plexus.Tcp_mgr.on_peer_close conn (fun () -> Plexus.Tcp_mgr.close conn);
      Plexus.Tcp_mgr.on_close conn finish
