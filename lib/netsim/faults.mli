(** Composable per-link fault plans.

    A plan is a deterministic adversary for one direction of a link: it
    decides, frame by frame, whether the wire drops, corrupts,
    duplicates or delays what was just serialized, driven entirely by an
    explicit {!Sim.Rng} stream so every run is reproducible from a seed.

    The plan itself only renders {e verdicts} ({!verdict}); applying
    them — freeing a dropped frame, flipping the corrupted byte,
    scheduling the delayed copy — is the device's job ({!Dev.set_faults}),
    which keeps the plan free of buffer-ownership concerns and usable
    from tests directly.  Every injected fault is counted here, and the
    counters are exported as registry gauges ({!register}) so chaos
    harnesses can reconcile what was injected against what the stack
    observed. *)

(** Loss processes.  [Gilbert_elliott] is the classic two-state burst
    model: the link flips between a good and a bad state with the given
    per-frame transition probabilities and drops with a per-state loss
    probability, producing correlated loss bursts rather than
    independent Bernoulli drops. *)
type loss =
  | No_loss
  | Bernoulli of float
  | Gilbert_elliott of {
      p_gb : float;  (** P(good -> bad) per frame *)
      p_bg : float;  (** P(bad -> good) per frame *)
      loss_good : float;
      loss_bad : float;
    }

type t

val create : ?name:string -> rng:Sim.Rng.t -> unit -> t
(** A fresh plan with no faults enabled.  [rng] is consumed one draw per
    enabled fault class per frame; pass a {!Sim.Rng.split} of the
    simulation stream to keep the plan's draws independent. *)

val name : t -> string

val set_loss : t -> loss -> unit
(** @raise Invalid_argument if any probability is outside [0, 1]. *)

val set_corrupt : t -> ?min_off:int -> float -> unit
(** Flip one byte (XOR with a random non-zero mask) of each frame with
    the given probability, at a uniform offset in [[min_off, len)].
    [min_off] defaults to 14 (past the Ethernet header, so corruption is
    always visible to a checksum rather than silently demuxed away);
    frames shorter than [min_off + 1] pass untouched.
    @raise Invalid_argument if the probability is outside [0, 1] or
    [min_off < 0]. *)

val set_duplicate : t -> float -> unit
(** Deliver an extra copy of the frame with the given probability.
    @raise Invalid_argument outside [0, 1]. *)

val set_jitter : t -> ?max_delay:Sim.Stime.t -> float -> unit
(** With the given probability, delay a frame by a uniform extra time in
    [[0, max_delay)] (default 500 us) on top of propagation — enough to
    reorder it behind later frames.  @raise Invalid_argument outside
    [0, 1]. *)

val set_down : t -> (Sim.Stime.t * Sim.Stime.t) list -> unit
(** Link outage windows: a frame whose wire transmission completes at
    [now] with [start <= now < stop] for any window is dropped. *)

(** What the wire should do with one copy of the frame. *)
type delivery = {
  corrupt_at : int option;  (** flip the byte at this offset ... *)
  xor_mask : int;  (** ... XORing with this non-zero 8-bit mask *)
  extra_delay : Sim.Stime.t;  (** added to propagation delay *)
}

type verdict =
  | Drop of string  (** drop the frame; the payload names the fault *)
  | Deliver of delivery list
      (** deliver one copy per element (two when duplicated) *)

val verdict : t -> now:Sim.Stime.t -> len:int -> verdict
(** Render the plan's decision for one frame of [len] bytes completing
    wire transmission at [now].  Counts every injected fault. *)

(** Injection counters — what the plan has done so far. *)

val loss_drops : t -> int
val down_drops : t -> int

val drops : t -> int
(** [loss_drops + down_drops]. *)

val corruptions : t -> int
val duplicates : t -> int
val delays : t -> int

val injected : t -> int
(** Total faults injected (drops + corruptions + duplicates + delays). *)

val register : t -> Observe.Registry.t -> prefix:string -> unit
(** Publish the injection counters as sampling gauges
    ([<prefix>.loss_drops|down_drops|corruptions|duplicates|delays]). *)

val pp : Format.formatter -> t -> unit
