(* A simulated workstation: one CPU, a SPIN kernel instance, an IP
   identity and a set of network devices. *)

type t = {
  name : string;
  engine : Sim.Engine.t;
  kernel : Spin.Kernel.t;
  costs : Costs.t;
  ip : Proto.Ipaddr.t;
  observe : bool;
  mutable devs : Dev.t list;
  mutable next_mac : int;
}

let create ?(costs = Costs.default) ?(observe = true) engine ~name ~ip =
  let kernel =
    Spin.Kernel.create ~costs:costs.Costs.dispatch ~observe engine ~name
  in
  { name; engine; kernel; costs; ip; observe; devs = []; next_mac = 1 }

let name t = t.name
let engine t = t.engine
let kernel t = t.kernel
let cpu t = Spin.Kernel.cpu t.kernel
let costs t = t.costs
let ip t = t.ip
let devices t = t.devs

let fresh_mac t =
  let m = (Proto.Ipaddr.to_int t.ip lsl 8) lor t.next_mac in
  t.next_mac <- t.next_mac + 1;
  Proto.Ether.Mac.of_int m

let add_device ?mac t params =
  let mac = match mac with Some m -> m | None -> fresh_mac t in
  let dev =
    Dev.create t.engine ~cpu:(cpu t)
      ~name:(Printf.sprintf "%s.%s%d" t.name params.Costs.label (List.length t.devs))
      ~mac params
  in
  t.devs <- t.devs @ [ dev ];
  if t.observe then begin
    Dev.register dev (Spin.Kernel.registry t.kernel);
    Dev.set_trace dev (Spin.Kernel.trace t.kernel);
    Dev.set_flight dev (Spin.Kernel.flight t.kernel)
  end;
  dev

let utilization t = Sim.Cpu.utilization (cpu t)
let reset_utilization t = Sim.Cpu.reset_window (cpu t)
