(* Network devices.

   A device charges its host CPU for driver work (plus per-byte PIO where
   the hardware demands it, like the Fore TCA-100), serializes frames
   onto the wire at the link's bit rate, and delivers to the peer device
   after propagation.  Reception costs an interrupt at interrupt priority
   on the receiving CPU, after which the registered handler — the bottom
   of the protocol graph — runs. *)

type counters = {
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable tx_drops : int;
  mutable rx_drops : int;
}

type t = {
  name : string;
  params : Costs.device;
  mac : Proto.Ether.Mac.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  mutable peer : t option;
  mutable wire_busy_until : Sim.Stime.t ref;
      (* shared with the peer on half-duplex media *)
  mutable txq : int;
  mutable rx_handler : (Mbuf.ro Mbuf.t -> unit) option;
  mutable rx_batch : (Mbuf.ro Mbuf.t list -> unit) option;
      (* coalesced receive: one upcall for a burst of frames *)
  mutable rx_pool : Pool.t option;
      (* receive ring: buffers held from wire arrival to interrupt
         service; exhaustion drops frames like a full NIC ring *)
  mutable loss_prob : float; (* fault injection: drop on the wire *)
  counters : counters;
}

let create engine ~cpu ~name ~mac params =
  {
    name;
    params;
    mac;
    engine;
    cpu;
    peer = None;
    wire_busy_until = ref Sim.Stime.zero;
    txq = 0;
    rx_handler = None;
    rx_batch = None;
    rx_pool = None;
    loss_prob = 0.;
    counters =
      {
        tx_packets = 0;
        rx_packets = 0;
        tx_bytes = 0;
        rx_bytes = 0;
        tx_drops = 0;
        rx_drops = 0;
      };
  }

let name t = t.name
let mac t = t.mac
let mtu t = t.params.Costs.mtu
let params t = t.params
let counters t = t.counters

let connect a b =
  a.peer <- Some b;
  b.peer <- Some a;
  (* On a shared segment (the paper's private Ethernet), both directions
     contend for the same wire; switched/point-to-point links are full
     duplex. *)
  if a.params.Costs.shared_medium then b.wire_busy_until <- a.wire_busy_until

(* Install the receive path — only the kernel (trusted driver top half)
   does this; applications go through protocol managers. *)
let set_rx t h = t.rx_handler <- Some h
let set_rx_batch t h = t.rx_batch <- Some h

let set_rx_pool t pool = t.rx_pool <- Some pool
let rx_pool t = t.rx_pool

(* Fault injection: drop outgoing frames on the wire with the given
   probability (deterministic via the engine's random stream). *)
let set_loss t p =
  if p < 0. || p >= 1. then invalid_arg "Dev.set_loss";
  t.loss_prob <- p

let pio_cost t len = Costs.per_byte t.params.Costs.pio_ns_per_byte len

(* Queue depths and drop counts as sampling gauges — read at registry
   snapshot time only, nothing on the per-frame path. *)
let register t reg =
  let g key f = Observe.Registry.gauge reg ("dev." ^ t.name ^ "." ^ key) f in
  g "txq" (fun () -> t.txq);
  g "tx_drops" (fun () -> t.counters.tx_drops);
  g "rx_drops" (fun () -> t.counters.rx_drops);
  g "ring.live" (fun () ->
      match t.rx_pool with Some p -> Pool.live p | None -> 0);
  g "ring.failures" (fun () ->
      match t.rx_pool with Some p -> Pool.failures p | None -> 0)

let deliver_to peer (pkt : Mbuf.ro Mbuf.t) =
  let len = Mbuf.length pkt in
  (* A frame occupies a receive-ring slot from wire arrival until the
     interrupt is serviced; with a bounded pool, a burst that outruns the
     CPU drops frames at the ring.  The chain itself crosses the wire
     untouched — no per-frame marshalling or buffer copy. *)
  let ring_slot =
    match peer.rx_pool with None -> true | Some pool -> Pool.reserve pool
  in
  if not ring_slot then begin
    peer.counters.rx_drops <- peer.counters.rx_drops + 1;
    if Sim.Trace.on () then
      Sim.Trace.drop (Sim.Engine.now peer.engine) ~scope:peer.name
        ~reason:"rx_ring_full";
    Mbuf.free pkt
  end
  else
    (* Receive interrupt: fixed driver cost plus PIO read for devices
       that make the CPU pull bytes off the adapter. *)
    let cost = Sim.Stime.add peer.params.Costs.rx_fixed (pio_cost peer len) in
    Sim.Cpu.run peer.cpu ~prio:Sim.Cpu.Interrupt ~cost (fun () ->
        (match peer.rx_pool with
        | Some pool -> Pool.release pool
        | None -> ());
        match peer.rx_handler with
        | None -> peer.counters.rx_drops <- peer.counters.rx_drops + 1
        | Some h ->
            peer.counters.rx_packets <- peer.counters.rx_packets + 1;
            peer.counters.rx_bytes <- peer.counters.rx_bytes + len;
            if Sim.Trace.on () then
              Sim.Trace.emit
                (Sim.Engine.now peer.engine)
                "%s: rx %d bytes" peer.name len;
            h pkt)

(* Inject a burst of frames that arrived back to back as one coalesced
   receive interrupt: one slot reservation ([Pool.reserve_n]), one fixed
   interrupt charge for the whole burst (interrupt coalescing; per-byte
   PIO still scales with the payload), and one upcall — the batch
   handler when one is installed, the per-frame handler otherwise.
   Frames beyond the ring budget drop exactly as in [deliver_to]. *)
let deliver_batch peer pkts =
  match pkts with
  | [] -> ()
  | pkts ->
      let n = List.length pkts in
      let granted =
        match peer.rx_pool with
        | None -> n
        | Some pool -> Pool.reserve_n pool n
      in
      let rec split i = function
        | pkt :: rest when i < granted ->
            let kept, dropped = split (i + 1) rest in
            (pkt :: kept, dropped)
        | rest -> ([], rest)
      in
      let kept, dropped = split 0 pkts in
      if dropped <> [] then begin
        peer.counters.rx_drops <- peer.counters.rx_drops + List.length dropped;
        if Sim.Trace.on () then
          Sim.Trace.drop (Sim.Engine.now peer.engine) ~scope:peer.name
            ~reason:"rx_ring_full";
        List.iter Mbuf.free dropped
      end;
      if kept <> [] then begin
        let bytes = List.fold_left (fun acc p -> acc + Mbuf.length p) 0 kept in
        let cost =
          Sim.Stime.add peer.params.Costs.rx_fixed (pio_cost peer bytes)
        in
        Sim.Cpu.run peer.cpu ~prio:Sim.Cpu.Interrupt ~cost (fun () ->
            (match peer.rx_pool with
            | Some pool -> Pool.release_n pool granted
            | None -> ());
            let deliver upcall =
              peer.counters.rx_packets <- peer.counters.rx_packets + granted;
              peer.counters.rx_bytes <- peer.counters.rx_bytes + bytes;
              if Sim.Trace.on () then
                Sim.Trace.emit
                  (Sim.Engine.now peer.engine)
                  "%s: rx batch of %d (%d bytes)" peer.name granted bytes;
              upcall ()
            in
            match peer.rx_batch with
            | Some h -> deliver (fun () -> h kept)
            | None -> (
                match peer.rx_handler with
                | Some h -> deliver (fun () -> List.iter h kept)
                | None ->
                    peer.counters.rx_drops <- peer.counters.rx_drops + granted))
      end

let transmit t ?(prio = Sim.Cpu.Thread) pkt =
  let len = Mbuf.length pkt in
  if len > t.params.Costs.mtu + Proto.Ether.header_len then
    invalid_arg
      (Printf.sprintf "Dev.transmit(%s): frame of %d bytes exceeds MTU" t.name len);
  (* The driver consumes the frame: the sender's handle empties here and
     now, so it cannot scribble on bytes that are on the wire (ownership
     transfer instead of the seed's defensive string flatten). *)
  let frame = Mbuf.ro (Mbuf.take pkt) in
  (* Driver send cost (+ PIO write). *)
  let cost = Sim.Stime.add t.params.Costs.tx_fixed (pio_cost t len) in
  Sim.Cpu.run t.cpu ~prio ~cost (fun () ->
      if t.txq >= t.params.Costs.txq_limit then begin
        t.counters.tx_drops <- t.counters.tx_drops + 1;
        if Sim.Trace.on () then
          Sim.Trace.drop (Sim.Engine.now t.engine) ~scope:t.name
            ~reason:"txq_full";
        Mbuf.free frame
      end
      else begin
        t.txq <- t.txq + 1;
        let now = Sim.Engine.now t.engine in
        let wire_bytes = t.params.Costs.frame_overhead len in
        let wire_ns =
          float_of_int wire_bytes *. 8e9 /. float_of_int t.params.Costs.bw_bits_per_s
        in
        let start = Sim.Stime.max now !(t.wire_busy_until) in
        let done_at = Sim.Stime.add start (Sim.Stime.of_us_f (wire_ns /. 1000.)) in
        t.wire_busy_until := done_at;
        t.counters.tx_packets <- t.counters.tx_packets + 1;
        t.counters.tx_bytes <- t.counters.tx_bytes + len;
        if Sim.Trace.on () then
          Sim.Trace.emit now "%s: tx %d bytes (wire until %a)" t.name len
            Sim.Stime.pp done_at;
        ignore
          (Sim.Engine.schedule t.engine ~at:done_at (fun () ->
               t.txq <- t.txq - 1;
               match t.peer with
               | None -> Mbuf.free frame
               | Some peer ->
                   if
                     t.loss_prob > 0.
                     && Sim.Rng.float (Sim.Engine.rng t.engine) 1.0
                        < t.loss_prob
                   then begin
                     t.counters.tx_drops <- t.counters.tx_drops + 1;
                     if Sim.Trace.on () then
                       Sim.Trace.drop
                         (Sim.Engine.now t.engine)
                         ~scope:t.name ~reason:"wire_loss";
                     Mbuf.free frame
                   end
                   else
                     ignore
                       (Sim.Engine.schedule_in t.engine
                          ~delay:t.params.Costs.prop_delay (fun () ->
                            deliver_to peer frame))))
      end)

(* Raw wire occupancy for a packet of [len] bytes — used by experiments to
   report theoretical ceilings. *)
let wire_time t len =
  let wire_bytes = t.params.Costs.frame_overhead len in
  Sim.Stime.of_us_f
    (float_of_int wire_bytes *. 8e6 /. float_of_int t.params.Costs.bw_bits_per_s)
