(* Network devices.

   A device charges its host CPU for driver work (plus per-byte PIO where
   the hardware demands it, like the Fore TCA-100), serializes frames
   onto the wire at the link's bit rate, and delivers to the peer device
   after propagation.  Reception costs an interrupt at interrupt priority
   on the receiving CPU, after which the registered handler — the bottom
   of the protocol graph — runs.

   Two robustness layers live here:

   - Fault injection.  A [Faults.t] plan attached with [set_faults]
     renders a verdict for every frame as it leaves the wire: drop
     (Bernoulli or Gilbert–Elliott burst loss, link-down windows),
     corrupt (one byte XORed in flight, so checksum verification up the
     stack is exercised for real), duplicate, or delay past later
     frames.  The legacy [set_loss] knob is kept as the plain Bernoulli
     fast path.  Every injected drop is counted in [wire_drops] —
     deliberately separate from [tx_drops], which counts only
     transmit-queue overflow.

   - Overload protection.  With [set_admission], receive interrupts are
     budgeted per window: frames beyond the budget are queued (still
     holding their ring slot) and serviced in batches at *thread*
     priority, so a flood cannot starve application work — the classic
     receive-livelock mitigation.  When the deferred queue itself fills,
     frames are shed at the cheapest point, before any interrupt cost.
     Ring-pool pressure (watermarks, see [Pool.set_pressure]) forces
     deferral early so the ring degrades gracefully instead of dropping
     silently at exhaustion. *)

type counters = {
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable tx_drops : int;
  mutable rx_drops : int;
  mutable wire_drops : int;
  mutable rx_deferred : int;
  mutable rx_shed : int;
}

(* Interrupt admission control: at most [budget] frames take the
   interrupt path per [window]; the rest wait in [q] (each still holding
   its receive-ring slot) for the thread-priority poller. *)
type admission = {
  budget : int;
  window : Sim.Stime.t;
  defer_limit : int;
  poll_batch : int;
  mutable window_start : Sim.Stime.t;
  mutable served : int;
  mutable forced_defer : bool; (* ring pool above its high watermark *)
  q : Mbuf.ro Mbuf.t Queue.t;
  mutable draining : bool;
}

type t = {
  name : string;
  params : Costs.device;
  mac : Proto.Ether.Mac.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  mutable peer : t option;
  mutable wire_busy_until : Sim.Stime.t ref;
      (* shared with the peer on half-duplex media *)
  mutable txq : int;
  mutable rx_handler : (Mbuf.ro Mbuf.t -> unit) option;
  mutable rx_batch : (Mbuf.ro Mbuf.t list -> unit) option;
      (* coalesced receive: one upcall for a burst of frames *)
  mutable rx_deferred_handler : (Mbuf.ro Mbuf.t list -> unit) option;
      (* polled receive: bursts drained past the interrupt budget *)
  mutable rx_pool : Pool.t option;
      (* receive ring: buffers held from wire arrival to interrupt
         service; exhaustion drops frames like a full NIC ring *)
  mutable loss_prob : float; (* fault injection: drop on the wire *)
  mutable faults : Faults.t option;
  mutable admission : admission option;
  mutable otrace : Observe.Trace.t option;
  mutable flight : Observe.Flight.t option;
  counters : counters;
}

let create engine ~cpu ~name ~mac params =
  {
    name;
    params;
    mac;
    engine;
    cpu;
    peer = None;
    wire_busy_until = ref Sim.Stime.zero;
    txq = 0;
    rx_handler = None;
    rx_batch = None;
    rx_deferred_handler = None;
    rx_pool = None;
    loss_prob = 0.;
    faults = None;
    admission = None;
    otrace = None;
    flight = None;
    counters =
      {
        tx_packets = 0;
        rx_packets = 0;
        tx_bytes = 0;
        rx_bytes = 0;
        tx_drops = 0;
        rx_drops = 0;
        wire_drops = 0;
        rx_deferred = 0;
        rx_shed = 0;
      };
  }

let name t = t.name
let mac t = t.mac
let mtu t = t.params.Costs.mtu
let params t = t.params
let counters t = t.counters

let connect a b =
  a.peer <- Some b;
  b.peer <- Some a;
  (* On a shared segment (the paper's private Ethernet), both directions
     contend for the same wire; switched/point-to-point links are full
     duplex. *)
  if a.params.Costs.shared_medium then b.wire_busy_until <- a.wire_busy_until

(* Install the receive path — only the kernel (trusted driver top half)
   does this; applications go through protocol managers. *)
let set_rx t h = t.rx_handler <- Some h
let set_rx_batch t h = t.rx_batch <- Some h
let set_rx_deferred t h = t.rx_deferred_handler <- Some h

let set_rx_pool t pool = t.rx_pool <- Some pool
let rx_pool t = t.rx_pool

(* Fault injection: drop outgoing frames on the wire with the given
   probability (deterministic via the engine's random stream).  The full
   closed interval is accepted: [set_loss t 1.0] is a blackout, which
   the ARP/TCP give-up paths need to be testable at all. *)
let set_loss t p =
  if p < 0. || p > 1. then invalid_arg "Dev.set_loss";
  t.loss_prob <- p

let set_faults t plan = t.faults <- Some plan
let faults t = t.faults
let set_trace t tr = t.otrace <- Some tr
let set_flight t fl = t.flight <- Some fl

(* Flight-recorder ingress: the receiving device is where a packet's
   timeline begins.  Unmarked frames roll the sampling dice ([admit]);
   a frame already carrying a mark (stamped by an upstream shard plan,
   or surviving an application echo) keeps its identity so the timeline
   stays stitched end to end. *)
let flight_ingress peer pkt =
  match peer.flight with
  | Some fl when Observe.Flight.enabled fl ->
      let id =
        match Mbuf.mark pkt with
        | 0 ->
            let id = Observe.Flight.admit fl in
            if id > 0 then Mbuf.set_mark pkt id;
            id
        | id -> id
      in
      if id > 0 then
        Observe.Flight.ingress fl ~pkt:id
          ~at_ns:(Sim.Stime.to_ns (Sim.Engine.now peer.engine))
          ~dev:peer.name
  | _ -> ()

(* Queue-wait attribution for frames parked past the interrupt budget:
   charged when the poller finally picks the frame up, as time since
   ingress. *)
let flight_queue_wait peer pkt =
  match peer.flight with
  | Some fl when Observe.Flight.enabled fl ->
      let id = Mbuf.mark pkt in
      if id > 0 then begin
        let at_ns = Sim.Stime.to_ns (Sim.Engine.now peer.engine) in
        Observe.Flight.note fl ~pkt:id ~at_ns
          ~dur_ns:(Observe.Flight.since_ingress fl ~pkt:id ~at_ns)
          (Observe.Flight.Queue_wait { dev = peer.name })
      end
  | _ -> ()

let set_admission ?(budget = 8) ?(window = Sim.Stime.ms 1) ?(defer_limit = 256)
    ?poll_batch t =
  if budget <= 0 then invalid_arg "Dev.set_admission: budget";
  if defer_limit <= 0 then invalid_arg "Dev.set_admission: defer_limit";
  if not (Sim.Stime.is_positive window) then
    invalid_arg "Dev.set_admission: window";
  let poll_batch =
    match poll_batch with
    | Some n -> if n <= 0 then invalid_arg "Dev.set_admission: poll_batch" else n
    | None -> budget
  in
  let ac =
    {
      budget;
      window;
      defer_limit;
      poll_batch;
      window_start = Sim.Engine.now t.engine;
      served = 0;
      forced_defer = false;
      q = Queue.create ();
      draining = false;
    }
  in
  (* Ring-pool watermarks force deferral before the ring is exhausted:
     the pool tells us to back off while slots remain, so overload turns
     into polled servicing, not silent ring drops. *)
  (match t.rx_pool with
  | Some pool -> Pool.set_pressure pool (fun high -> ac.forced_defer <- high)
  | None -> ());
  t.admission <- Some ac

let clear_admission t = t.admission <- None

let admission_backlog t =
  match t.admission with None -> 0 | Some ac -> Queue.length ac.q

let pio_cost t len = Costs.per_byte t.params.Costs.pio_ns_per_byte len

let fault_span t ~fault ~detail =
  match t.otrace with
  | Some tr when Observe.Trace.active tr ->
      Observe.Trace.emit tr
        {
          Observe.Trace.at_ns = Sim.Stime.to_ns (Sim.Engine.now t.engine);
          event = Observe.Trace.Wire_fault { link = t.name; fault; detail };
        }
  | _ -> ()

(* Queue depths and drop counts as sampling gauges — read at registry
   snapshot time only, nothing on the per-frame path. *)
let register t reg =
  let g key f = Observe.Registry.gauge reg ("dev." ^ t.name ^ "." ^ key) f in
  g "txq" (fun () -> t.txq);
  g "tx_drops" (fun () -> t.counters.tx_drops);
  g "rx_drops" (fun () -> t.counters.rx_drops);
  g "wire_drops" (fun () -> t.counters.wire_drops);
  g "rx_deferred" (fun () -> t.counters.rx_deferred);
  g "rx_shed" (fun () -> t.counters.rx_shed);
  g "ring.live" (fun () ->
      match t.rx_pool with Some p -> Pool.live p | None -> 0);
  g "ring.failures" (fun () ->
      match t.rx_pool with Some p -> Pool.failures p | None -> 0);
  (* Fault-plan injection counters; the closures read [t.faults] at
     snapshot time, so a plan attached after registration still shows. *)
  g "faults.drops" (fun () ->
      match t.faults with Some p -> Faults.drops p | None -> 0);
  g "faults.corruptions" (fun () ->
      match t.faults with Some p -> Faults.corruptions p | None -> 0);
  g "faults.duplicates" (fun () ->
      match t.faults with Some p -> Faults.duplicates p | None -> 0);
  g "faults.delays" (fun () ->
      match t.faults with Some p -> Faults.delays p | None -> 0)

(* Interrupt service for one admitted frame: fixed driver cost plus PIO
   read for devices that make the CPU pull bytes off the adapter. *)
let interrupt_service peer len pkt =
  let cost = Sim.Stime.add peer.params.Costs.rx_fixed (pio_cost peer len) in
  Sim.Cpu.run peer.cpu ~prio:Sim.Cpu.Interrupt ~cost (fun () ->
      (match peer.rx_pool with
      | Some pool -> Pool.release pool
      | None -> ());
      match peer.rx_handler with
      | None -> peer.counters.rx_drops <- peer.counters.rx_drops + 1
      | Some h ->
          peer.counters.rx_packets <- peer.counters.rx_packets + 1;
          peer.counters.rx_bytes <- peer.counters.rx_bytes + len;
          if Sim.Trace.on () then
            Sim.Trace.emit
              (Sim.Engine.now peer.engine)
              "%s: rx %d bytes" peer.name len;
          h pkt)

(* The poller: drain the deferred queue in batches at thread priority.
   One fixed charge per batch (cheaper per frame than interrupts —
   that's the point of polling), and between batches the CPU's FIFO lets
   application work at the same priority interleave, so the drain cannot
   itself become a livelock. *)
let rec drain_deferred peer ac =
  let n = min ac.poll_batch (Queue.length ac.q) in
  if n = 0 then ac.draining <- false
  else begin
    let pkts = List.init n (fun _ -> Queue.pop ac.q) in
    let bytes = List.fold_left (fun acc p -> acc + Mbuf.length p) 0 pkts in
    let cost = Sim.Stime.add peer.params.Costs.rx_fixed (pio_cost peer bytes) in
    Sim.Cpu.run peer.cpu ~prio:Sim.Cpu.Thread ~cost (fun () ->
        (match peer.rx_pool with
        | Some pool -> Pool.release_n pool n
        | None -> ());
        List.iter (flight_queue_wait peer) pkts;
        let deliver upcall =
          peer.counters.rx_packets <- peer.counters.rx_packets + n;
          peer.counters.rx_bytes <- peer.counters.rx_bytes + bytes;
          if Sim.Trace.on () then
            Sim.Trace.emit
              (Sim.Engine.now peer.engine)
              "%s: polled rx batch of %d (%d bytes)" peer.name n bytes;
          upcall ()
        in
        (match peer.rx_deferred_handler with
        | Some h -> deliver (fun () -> h pkts)
        | None -> (
            match peer.rx_batch with
            | Some h -> deliver (fun () -> h pkts)
            | None -> (
                match peer.rx_handler with
                | Some h -> deliver (fun () -> List.iter h pkts)
                | None ->
                    peer.counters.rx_drops <- peer.counters.rx_drops + n;
                    List.iter Mbuf.free pkts)));
        drain_deferred peer ac)
  end

(* Roll the admission window lazily and decide whether this frame may
   take the interrupt path. *)
let admitted ac now =
  if Sim.Stime.compare (Sim.Stime.sub now ac.window_start) ac.window >= 0
  then begin
    ac.window_start <- now;
    ac.served <- 0
  end;
  if ac.forced_defer then false
  else if ac.served < ac.budget then begin
    ac.served <- ac.served + 1;
    true
  end
  else false

let deliver_to peer (pkt : Mbuf.ro Mbuf.t) =
  let len = Mbuf.length pkt in
  (* A frame occupies a receive-ring slot from wire arrival until the
     interrupt is serviced; with a bounded pool, a burst that outruns the
     CPU drops frames at the ring.  The chain itself crosses the wire
     untouched — no per-frame marshalling or buffer copy. *)
  let ring_slot =
    match peer.rx_pool with None -> true | Some pool -> Pool.reserve pool
  in
  if not ring_slot then begin
    peer.counters.rx_drops <- peer.counters.rx_drops + 1;
    if Sim.Trace.on () then
      Sim.Trace.drop (Sim.Engine.now peer.engine) ~scope:peer.name
        ~reason:"rx_ring_full";
    Mbuf.free pkt
  end
  else begin
    flight_ingress peer pkt;
    match peer.admission with
    | Some ac when not (admitted ac (Sim.Engine.now peer.engine)) ->
        if Queue.length ac.q >= ac.defer_limit then begin
          (* Shed at the cheapest point: before any interrupt cost, so
             overload past the deferred queue costs next to nothing. *)
          (match peer.rx_pool with
          | Some pool -> Pool.release pool
          | None -> ());
          peer.counters.rx_drops <- peer.counters.rx_drops + 1;
          peer.counters.rx_shed <- peer.counters.rx_shed + 1;
          if Sim.Trace.on () then
            Sim.Trace.drop (Sim.Engine.now peer.engine) ~scope:peer.name
              ~reason:"admission_shed";
          Mbuf.free pkt
        end
        else begin
          Queue.push pkt ac.q;
          peer.counters.rx_deferred <- peer.counters.rx_deferred + 1;
          if not ac.draining then begin
            ac.draining <- true;
            drain_deferred peer ac
          end
        end
    | _ -> interrupt_service peer len pkt
  end

(* Inject a burst of frames that arrived back to back as one coalesced
   receive interrupt: one slot reservation ([Pool.reserve_n]), one fixed
   interrupt charge for the whole burst (interrupt coalescing; per-byte
   PIO still scales with the payload), and one upcall — the batch
   handler when one is installed, the per-frame handler otherwise.
   Frames beyond the ring budget drop exactly as in [deliver_to].
   Admission control does not apply: a coalesced burst is already the
   batched, bounded-interrupt service model. *)
let deliver_batch peer pkts =
  match pkts with
  | [] -> ()
  | pkts ->
      let n = List.length pkts in
      let granted =
        match peer.rx_pool with
        | None -> n
        | Some pool -> Pool.reserve_n pool n
      in
      let rec split i = function
        | pkt :: rest when i < granted ->
            let kept, dropped = split (i + 1) rest in
            (pkt :: kept, dropped)
        | rest -> ([], rest)
      in
      let kept, dropped = split 0 pkts in
      if dropped <> [] then begin
        peer.counters.rx_drops <- peer.counters.rx_drops + List.length dropped;
        if Sim.Trace.on () then
          Sim.Trace.drop (Sim.Engine.now peer.engine) ~scope:peer.name
            ~reason:"rx_ring_full";
        List.iter Mbuf.free dropped
      end;
      if kept <> [] then begin
        List.iter (flight_ingress peer) kept;
        let bytes = List.fold_left (fun acc p -> acc + Mbuf.length p) 0 kept in
        let cost =
          Sim.Stime.add peer.params.Costs.rx_fixed (pio_cost peer bytes)
        in
        Sim.Cpu.run peer.cpu ~prio:Sim.Cpu.Interrupt ~cost (fun () ->
            (match peer.rx_pool with
            | Some pool -> Pool.release_n pool granted
            | None -> ());
            let deliver upcall =
              peer.counters.rx_packets <- peer.counters.rx_packets + granted;
              peer.counters.rx_bytes <- peer.counters.rx_bytes + bytes;
              if Sim.Trace.on () then
                Sim.Trace.emit
                  (Sim.Engine.now peer.engine)
                  "%s: rx batch of %d (%d bytes)" peer.name granted bytes;
              upcall ()
            in
            match peer.rx_batch with
            | Some h -> deliver (fun () -> h kept)
            | None -> (
                match peer.rx_handler with
                | Some h -> deliver (fun () -> List.iter h kept)
                | None ->
                    peer.counters.rx_drops <- peer.counters.rx_drops + granted))
      end

(* Apply a fault-plan verdict to a frame leaving the wire.  The plan
   only decides; ownership is handled here: dropped frames are freed,
   duplicated frames are deep-copied before either copy is consumed,
   corruption copies-on-write so a shared chain is never scribbled on. *)
let apply_faults t peer plan frame ~len ~now =
  match Faults.verdict plan ~now ~len with
  | Faults.Drop why ->
      t.counters.wire_drops <- t.counters.wire_drops + 1;
      if Sim.Trace.on () then
        Sim.Trace.drop now ~scope:t.name ~reason:("wire_" ^ why);
      fault_span t ~fault:why ~detail:"";
      Mbuf.free frame
  | Faults.Deliver copies ->
      let frames =
        match copies with
        | [ d ] -> [ (d, frame) ]
        | ds ->
            let dup = List.map (fun d -> (d, Mbuf.ro (Mbuf.copy_rw frame))) ds in
            Mbuf.free frame;
            fault_span t ~fault:"duplicate" ~detail:"";
            dup
      in
      List.iter
        (fun (d, f) ->
          let f =
            match d.Faults.corrupt_at with
            | None -> f
            | Some off ->
                let c = Mbuf.copy_rw f in
                let v = Mbuf.view c in
                View.set_u8 v off (View.get_u8 v off lxor d.Faults.xor_mask);
                Mbuf.free f;
                fault_span t ~fault:"corrupt"
                  ~detail:(Printf.sprintf "off=%d mask=%#x" off d.Faults.xor_mask);
                Mbuf.ro c
          in
          if Sim.Stime.is_positive d.Faults.extra_delay then
            fault_span t ~fault:"delay"
              ~detail:(Sim.Stime.to_string d.Faults.extra_delay);
          let delay = Sim.Stime.add t.params.Costs.prop_delay d.Faults.extra_delay in
          ignore
            (Sim.Engine.schedule_in t.engine ~delay (fun () ->
                 deliver_to peer f)))
        frames

let transmit t ?(prio = Sim.Cpu.Thread) pkt =
  let len = Mbuf.length pkt in
  if len > t.params.Costs.mtu + Proto.Ether.header_len then
    invalid_arg
      (Printf.sprintf "Dev.transmit(%s): frame of %d bytes exceeds MTU" t.name len);
  (* The driver consumes the frame: the sender's handle empties here and
     now, so it cannot scribble on bytes that are on the wire (ownership
     transfer instead of the seed's defensive string flatten). *)
  let frame = Mbuf.ro (Mbuf.take pkt) in
  (* Driver send cost (+ PIO write). *)
  let cost = Sim.Stime.add t.params.Costs.tx_fixed (pio_cost t len) in
  Sim.Cpu.run t.cpu ~prio ~cost (fun () ->
      if t.txq >= t.params.Costs.txq_limit then begin
        t.counters.tx_drops <- t.counters.tx_drops + 1;
        if Sim.Trace.on () then
          Sim.Trace.drop (Sim.Engine.now t.engine) ~scope:t.name
            ~reason:"txq_full";
        Mbuf.free frame
      end
      else begin
        t.txq <- t.txq + 1;
        let now = Sim.Engine.now t.engine in
        let wire_bytes = t.params.Costs.frame_overhead len in
        let wire_ns =
          float_of_int wire_bytes *. 8e9 /. float_of_int t.params.Costs.bw_bits_per_s
        in
        let start = Sim.Stime.max now !(t.wire_busy_until) in
        let done_at = Sim.Stime.add start (Sim.Stime.of_us_f (wire_ns /. 1000.)) in
        t.wire_busy_until := done_at;
        t.counters.tx_packets <- t.counters.tx_packets + 1;
        t.counters.tx_bytes <- t.counters.tx_bytes + len;
        if Sim.Trace.on () then
          Sim.Trace.emit now "%s: tx %d bytes (wire until %a)" t.name len
            Sim.Stime.pp done_at;
        ignore
          (Sim.Engine.schedule t.engine ~at:done_at (fun () ->
               t.txq <- t.txq - 1;
               match t.peer with
               | None -> Mbuf.free frame
               | Some peer ->
                   if
                     t.loss_prob > 0.
                     && (t.loss_prob >= 1.
                        || Sim.Rng.float (Sim.Engine.rng t.engine) 1.0
                           < t.loss_prob)
                   then begin
                     (* Wire loss is fault injection, not queue overflow:
                        counted apart from [tx_drops]. *)
                     t.counters.wire_drops <- t.counters.wire_drops + 1;
                     if Sim.Trace.on () then
                       Sim.Trace.drop
                         (Sim.Engine.now t.engine)
                         ~scope:t.name ~reason:"wire_loss";
                     fault_span t ~fault:"loss" ~detail:"";
                     Mbuf.free frame
                   end
                   else
                     match t.faults with
                     | None ->
                         ignore
                           (Sim.Engine.schedule_in t.engine
                              ~delay:t.params.Costs.prop_delay (fun () ->
                                deliver_to peer frame))
                     | Some plan ->
                         apply_faults t peer plan frame ~len
                           ~now:(Sim.Engine.now t.engine)))
      end)

(* Raw wire occupancy for a packet of [len] bytes — used by experiments to
   report theoretical ceilings. *)
let wire_time t len =
  let wire_bytes = t.params.Costs.frame_overhead len in
  Sim.Stime.of_us_f
    (float_of_int wire_bytes *. 8e6 /. float_of_int t.params.Costs.bw_bits_per_s)
