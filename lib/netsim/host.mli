(** A simulated workstation: CPU + SPIN kernel + devices. *)

type t

val create :
  ?costs:Costs.t -> ?observe:bool -> Sim.Engine.t -> name:string ->
  ip:Proto.Ipaddr.t -> t
(** [observe] (default true) is forwarded to {!Spin.Kernel.create} and
    controls whether devices added later publish gauges into the
    kernel's registry. *)

val name : t -> string
val engine : t -> Sim.Engine.t
val kernel : t -> Spin.Kernel.t
val cpu : t -> Sim.Cpu.t
val costs : t -> Costs.t
val ip : t -> Proto.Ipaddr.t
val devices : t -> Dev.t list

val add_device : ?mac:Proto.Ether.Mac.t -> t -> Costs.device -> Dev.t
(** Attach a device of the given parameter set (auto-assigned MAC by
    default). *)

val utilization : t -> float
val reset_utilization : t -> unit
