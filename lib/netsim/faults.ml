(* Per-link fault plans.

   The plan is a pure decision procedure over an explicit RNG stream:
   given "a frame of [len] bytes finishes its wire time at [now]", it
   answers drop / deliver-with-modifications.  Determinism matters more
   than realism here — the chaos harness replays seeds and reconciles
   injection counters against stack-observed drops, so every random
   draw comes from the plan's own [Sim.Rng] and nothing depends on
   wall-clock or iteration order.

   Draw discipline: the draws a frame consumes depend only on the plan's
   parameters, the frame length and the stream itself — never on
   observers — so enabling tracing or gauges can never shift the
   stream. *)

type loss =
  | No_loss
  | Bernoulli of float
  | Gilbert_elliott of {
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
    }

type t = {
  name : string;
  rng : Sim.Rng.t;
  mutable loss : loss;
  mutable ge_bad : bool; (* Gilbert–Elliott state: currently bursting? *)
  mutable corrupt_prob : float;
  mutable corrupt_min_off : int;
  mutable dup_prob : float;
  mutable jitter_prob : float;
  mutable jitter_max : Sim.Stime.t;
  mutable down : (Sim.Stime.t * Sim.Stime.t) list;
  (* injection counters *)
  mutable loss_drops : int;
  mutable down_drops : int;
  mutable corruptions : int;
  mutable duplicates : int;
  mutable delays : int;
}

let check_prob what p =
  if p < 0. || p > 1. then invalid_arg ("Faults." ^ what ^ ": probability")

let create ?(name = "faults") ~rng () =
  {
    name;
    rng;
    loss = No_loss;
    ge_bad = false;
    corrupt_prob = 0.;
    corrupt_min_off = 14;
    dup_prob = 0.;
    jitter_prob = 0.;
    jitter_max = Sim.Stime.us 500;
    down = [];
    loss_drops = 0;
    down_drops = 0;
    corruptions = 0;
    duplicates = 0;
    delays = 0;
  }

let name t = t.name

let set_loss t l =
  (match l with
  | No_loss -> ()
  | Bernoulli p -> check_prob "set_loss" p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      check_prob "set_loss" p_gb;
      check_prob "set_loss" p_bg;
      check_prob "set_loss" loss_good;
      check_prob "set_loss" loss_bad);
  t.ge_bad <- false;
  t.loss <- l

let set_corrupt t ?(min_off = 14) p =
  check_prob "set_corrupt" p;
  if min_off < 0 then invalid_arg "Faults.set_corrupt: min_off";
  t.corrupt_prob <- p;
  t.corrupt_min_off <- min_off

let set_duplicate t p =
  check_prob "set_duplicate" p;
  t.dup_prob <- p

let set_jitter t ?(max_delay = Sim.Stime.us 500) p =
  check_prob "set_jitter" p;
  t.jitter_prob <- p;
  t.jitter_max <- max_delay

let set_down t windows = t.down <- windows

type delivery = {
  corrupt_at : int option;
  xor_mask : int;
  extra_delay : Sim.Stime.t;
}

type verdict = Drop of string | Deliver of delivery list

let is_down t now =
  List.exists
    (fun (start, stop) ->
      Sim.Stime.compare start now <= 0 && Sim.Stime.compare now stop < 0)
    t.down

(* One loss decision per frame.  A draw happens whenever the process is
   enabled, even if the state makes loss impossible, to keep the stream
   stable under parameter tweaks. *)
let loss_verdict t =
  match t.loss with
  | No_loss -> (false, "loss")
  | Bernoulli p -> (p > 0. && Sim.Rng.float t.rng 1.0 < p, "loss")
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      let flip = Sim.Rng.float t.rng 1.0 in
      (if t.ge_bad then (if flip < p_bg then t.ge_bad <- false)
       else if flip < p_gb then t.ge_bad <- true);
      let p = if t.ge_bad then loss_bad else loss_good in
      (p > 0. && Sim.Rng.float t.rng 1.0 < p, "burst_loss")

let one_delivery t ~len =
  let corrupt_at =
    if t.corrupt_prob > 0. then begin
      let hit = Sim.Rng.float t.rng 1.0 < t.corrupt_prob in
      if hit && len > t.corrupt_min_off then begin
        let off =
          t.corrupt_min_off + Sim.Rng.int t.rng (len - t.corrupt_min_off)
        in
        t.corruptions <- t.corruptions + 1;
        Some off
      end
      else None
    end
    else None
  in
  let xor_mask =
    if corrupt_at <> None then 1 + Sim.Rng.int t.rng 255 else 1
  in
  let extra_delay =
    if t.jitter_prob > 0. && Sim.Rng.float t.rng 1.0 < t.jitter_prob then begin
      let d = Sim.Stime.scale t.jitter_max (Sim.Rng.float t.rng 1.0) in
      if Sim.Stime.is_positive d then t.delays <- t.delays + 1;
      d
    end
    else Sim.Stime.zero
  in
  { corrupt_at; xor_mask; extra_delay }

let verdict t ~now ~len =
  if is_down t now then begin
    t.down_drops <- t.down_drops + 1;
    Drop "down"
  end
  else
    let lost, why = loss_verdict t in
    if lost then begin
      t.loss_drops <- t.loss_drops + 1;
      Drop why
    end
    else
      let first = one_delivery t ~len in
      let copies =
        if t.dup_prob > 0. && Sim.Rng.float t.rng 1.0 < t.dup_prob then begin
          t.duplicates <- t.duplicates + 1;
          [ first; one_delivery t ~len ]
        end
        else [ first ]
      in
      Deliver copies

let loss_drops t = t.loss_drops
let down_drops t = t.down_drops
let drops t = t.loss_drops + t.down_drops
let corruptions t = t.corruptions
let duplicates t = t.duplicates
let delays t = t.delays
let injected t = drops t + t.corruptions + t.duplicates + t.delays

let register t reg ~prefix =
  let g key f = Observe.Registry.gauge reg (prefix ^ "." ^ key) f in
  g "loss_drops" (fun () -> t.loss_drops);
  g "down_drops" (fun () -> t.down_drops);
  g "corruptions" (fun () -> t.corruptions);
  g "duplicates" (fun () -> t.duplicates);
  g "delays" (fun () -> t.delays)

let pp ppf t =
  Fmt.pf ppf
    "%s: %d lost, %d down, %d corrupted, %d duplicated, %d delayed" t.name
    t.loss_drops t.down_drops t.corruptions t.duplicates t.delays
