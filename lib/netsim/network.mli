(** Experiment topologies. *)

type endpoint = { host : Host.t; dev : Dev.t }

val pair :
  ?costs:Costs.t -> ?observe:bool -> Sim.Engine.t -> Costs.device ->
  a:string * Proto.Ipaddr.t -> b:string * Proto.Ipaddr.t ->
  endpoint * endpoint
(** Two hosts joined by one link of the given device type. *)

val line3 :
  ?costs:Costs.t -> ?observe:bool -> Sim.Engine.t -> Costs.device ->
  client:string * Proto.Ipaddr.t -> middle:string * Proto.Ipaddr.t ->
  server:string * Proto.Ipaddr.t ->
  endpoint * (endpoint * endpoint) * endpoint
(** Client — middle (two devices) — server, for the forwarding
    experiment. *)
