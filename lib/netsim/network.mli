(** Experiment topologies. *)

type endpoint = { host : Host.t; dev : Dev.t }

val pair :
  ?costs:Costs.t -> ?observe:bool -> Sim.Engine.t -> Costs.device ->
  a:string * Proto.Ipaddr.t -> b:string * Proto.Ipaddr.t ->
  endpoint * endpoint
(** Two hosts joined by one link of the given device type. *)

val install_faults : ?seed:int -> endpoint -> Faults.t
(** Attach a fresh fault plan to the endpoint's device (the [a -> b]
    direction of the link) and register its injection counters in the
    host's registry under [faults.<dev>.*].  The plan's RNG is split
    from the engine stream unless [seed] pins it. *)

val line3 :
  ?costs:Costs.t -> ?observe:bool -> Sim.Engine.t -> Costs.device ->
  client:string * Proto.Ipaddr.t -> middle:string * Proto.Ipaddr.t ->
  server:string * Proto.Ipaddr.t ->
  endpoint * (endpoint * endpoint) * endpoint
(** Client — middle (two devices) — server, for the forwarding
    experiment. *)
