(* The calibrated cost model.

   All constants model a DEC Alpha 3000/400 (21064 @ 133 MHz, ~7.5 ns per
   cycle) and the three network devices of the paper's testbed.  They were
   chosen so that the *structural* results of the paper emerge from the
   simulation: per-layer protocol costs plus device costs reproduce the
   Plexus UDP round-trip latencies of section 4.1 (< 600 us Ethernet,
   ~350 us ATM, ~300 us T3, and the faster-driver variants 337/241 us);
   the per-byte PIO cost of the Fore TCA-100 gives the 53 Mb/s
   driver-to-driver ceiling of section 4 and the 33 vs 27.9 Mb/s TCP split
   of section 4.2; user/kernel copy and trap costs give DIGITAL UNIX its
   latency and CPU-utilization penalties (Figures 5 and 6).

   EXPERIMENTS.md records measured-vs-paper values for every figure. *)

module T = Sim.Stime

(* Per-layer protocol processing costs (per packet, excluding data-touching
   work, which is charged per byte). *)
type layer = {
  ether_in : T.t;
  ether_out : T.t;
  ip_in : T.t;
  ip_out : T.t;
  udp_in : T.t;
  udp_out : T.t;
  tcp_in : T.t;
  tcp_out : T.t;
  app : T.t;              (* application handler per packet *)
  cksum_ns_per_byte : float; (* memory-bound checksum over payload *)
  copy_ns_per_byte : float;  (* memory copy (user/kernel crossing, COW) *)
}

(* Monolithic-OS structure costs: what DIGITAL UNIX pays that kernel
   extensions do not. *)
type os = {
  trap : T.t;        (* syscall entry/exit *)
  copy_fixed : T.t;  (* fixed part of copyin/copyout *)
  ctx_switch : T.t;  (* process context switch *)
  wakeup : T.t;      (* scheduler wakeup of a blocked process *)
  socket_in : T.t;   (* socket-buffer receive processing *)
  socket_out : T.t;  (* socket send processing *)
}

type t = {
  layer : layer;
  os : os;
  dispatch : Spin.Dispatcher.costs;
  fwd_rewrite : T.t;       (* in-kernel forwarder header rewrite (RFC1624) *)
  splice_user : T.t;       (* user-level splice per-packet application work *)
  disk_dma_setup : T.t;
  disk_intr : T.t;
  fb_ns_per_byte : float;  (* framebuffer writes: ~10x slower than RAM *)
  ram_ns_per_byte : float;
}

let default =
  {
    layer =
      {
        ether_in = T.us 5;
        ether_out = T.us 8;
        ip_in = T.us 15;
        ip_out = T.us 13;
        udp_in = T.us 13;
        udp_out = T.us 11;
        tcp_in = T.us 30;
        tcp_out = T.us 28;
        app = T.us 4;
        cksum_ns_per_byte = 22.;
        copy_ns_per_byte = 30.;
      };
    os =
      {
        trap = T.us 10;
        copy_fixed = T.us 5;
        ctx_switch = T.us 80;
        wakeup = T.us 30;
        socket_in = T.us 12;
        socket_out = T.us 12;
      };
    dispatch =
      {
        Spin.Dispatcher.dispatch = T.ns 400;
        guard = T.ns 300;
        index = T.ns 250;
        tree_node = T.ns 100;
        thread_spawn = T.us 25;
      };
    fwd_rewrite = T.us 8;
    splice_user = T.us 25;
    disk_dma_setup = T.us 20;
    disk_intr = T.us 15;
    fb_ns_per_byte = 250.;
    ram_ns_per_byte = 25.;
  }

let per_byte ns_per_byte len = T.of_us_f (ns_per_byte *. float_of_int len /. 1000.)

(* ------------------------------------------------------------------ *)
(* Device parameter sets.                                              *)

type device = {
  label : string;
  mtu : int;
  bw_bits_per_s : int;
  tx_fixed : T.t;          (* driver + device CPU cost per send *)
  rx_fixed : T.t;          (* interrupt + driver CPU cost per receive *)
  pio_ns_per_byte : float; (* programmed I/O: CPU per byte, both directions *)
  frame_overhead : int -> int; (* packet length -> bytes on the wire *)
  prop_delay : T.t;        (* propagation (+ switch) latency *)
  txq_limit : int;
  shared_medium : bool;    (* half-duplex shared wire (Ethernet segment) *)
}

(* 10 Mb/s LANCE Ethernet: DMA device.  Frames are padded to the 60-byte
   minimum; the wire also carries 4 bytes FCS, 8 preamble and 12 of
   inter-frame gap. *)
let ethernet ?(fast = false) () =
  {
    label = (if fast then "ethernet-fast" else "ethernet");
    mtu = 1500;
    bw_bits_per_s = 10_000_000;
    tx_fixed = (if fast then T.us 18 else T.us 70);
    rx_fixed = (if fast then T.us 22 else T.us 80);
    pio_ns_per_byte = 0.;
    frame_overhead = (fun len -> max len 60 + 4 + 8 + 12);
    prop_delay = T.us 1;
    txq_limit = 64;
    shared_medium = true;
  }

(* 155 Mb/s Fore TCA-100: programmed I/O — the CPU moves every byte, which
   caps reliable transfer at ~53 Mb/s (1 / 0.15 us/B = 53.3 Mb/s),
   matching the paper's measured driver-to-driver ceiling.  Data travels
   in 53-byte cells carrying 48 payload bytes (AAL5 adds an 8-byte
   trailer); the path crosses a ForeRunner switch. *)
let atm ?(fast = false) () =
  {
    label = (if fast then "atm-fast" else "atm");
    mtu = 1500;
    bw_bits_per_s = 155_000_000;
    tx_fixed = (if fast then T.us 8 else T.us 32);
    rx_fixed = (if fast then T.us 12 else T.us 45);
    pio_ns_per_byte = 150.;
    frame_overhead = (fun len -> (len + 8 + 47) / 48 * 53);
    prop_delay = T.us 10;
    txq_limit = 64;
    shared_medium = false;
  }

(* 45 Mb/s DEC T3: DMA "with minimal CPU involvement"; hosts connected
   back to back. *)
let t3 () =
  {
    label = "t3";
    mtu = 4470;
    bw_bits_per_s = 45_000_000;
    tx_fixed = T.us 30;
    rx_fixed = T.us 38;
    pio_ns_per_byte = 0.;
    frame_overhead = (fun len -> len + 4);
    prop_delay = T.us 2;
    txq_limit = 128;
    shared_medium = false;
  }

(* An idealized device for unit tests: instantaneous and free. *)
let loopback () =
  {
    label = "loopback";
    mtu = 65535;
    bw_bits_per_s = 10_000_000_000;
    tx_fixed = T.zero;
    rx_fixed = T.zero;
    pio_ns_per_byte = 0.;
    frame_overhead = (fun len -> len);
    prop_delay = T.ns 100;
    txq_limit = 1024;
    shared_medium = false;
  }
