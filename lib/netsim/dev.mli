(** Simulated network devices (point-to-point).

    Transmission charges the host CPU for driver work (and per-byte PIO on
    devices like the Fore TCA-100), serializes frames on the wire at the
    device bit rate, and delivers to the peer after propagation; reception
    charges an interrupt on the peer CPU and invokes the installed receive
    handler — the bottom of the Plexus protocol graph.

    Devices also host the adversarial machinery: a per-link fault plan
    ({!set_faults}) applied as frames leave the wire, and interrupt
    admission control ({!set_admission}) that bounds interrupt servicing
    and drains overload at thread priority — the receive-livelock
    mitigation. *)

type t

type counters = {
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable tx_drops : int;   (** transmit-queue overflows, nothing else *)
  mutable rx_drops : int;
      (** receive-side drops: ring overflow, no handler, admission shed *)
  mutable wire_drops : int;
      (** frames lost on the wire by fault injection ([set_loss] or a
          fault plan) — kept apart from [tx_drops] so queue overflow and
          injected loss can't be conflated *)
  mutable rx_deferred : int;
      (** frames routed past the interrupt budget to the polled path *)
  mutable rx_shed : int;
      (** frames dropped at admission because the deferred queue was
          full (also counted in [rx_drops]) *)
}

val create :
  Sim.Engine.t -> cpu:Sim.Cpu.t -> name:string -> mac:Proto.Ether.Mac.t ->
  Costs.device -> t

val connect : t -> t -> unit
(** Wire two devices together (both directions). *)

val set_rx : t -> (Mbuf.ro Mbuf.t -> unit) -> unit
(** Install the driver's receive upcall (trusted kernel code only). *)

val set_rx_batch : t -> (Mbuf.ro Mbuf.t list -> unit) -> unit
(** Install the coalesced receive upcall, invoked by {!deliver_batch}
    with a whole burst at once.  Devices without one fall back to the
    per-frame {!set_rx} handler for each frame of the burst. *)

val set_rx_deferred : t -> (Mbuf.ro Mbuf.t list -> unit) -> unit
(** Install the polled receive upcall: batches drained from the deferred
    queue at {e thread} priority when admission control is active.
    Without one, the poller falls back to the batch handler, then the
    per-frame handler (whose own downstream work may then re-escalate to
    interrupt priority — install this to keep the whole path demoted). *)

val deliver_batch : t -> Mbuf.ro Mbuf.t list -> unit
(** Inject a burst of frames arriving back to back at this device, as
    one coalesced receive interrupt: one ring-slot reservation
    ({!Pool.reserve_n}), one fixed interrupt charge for the burst (PIO
    still per byte), one upcall.  Frames beyond the ring budget drop as
    in normal delivery.  Admission control does not apply — a coalesced
    burst is already the batched service model. *)

val set_rx_pool : t -> Pool.t -> unit
(** Bound the receive ring: frames hold a pool {e slot} from wire arrival
    until their interrupt is serviced; exhaustion drops at the ring.  The
    frame's mbuf chain is handed to the handler as-is — the ring bounds
    buffers without copying them.  Install the pool {e before}
    {!set_admission} so the ring's pressure watermarks can force early
    deferral. *)

val rx_pool : t -> Pool.t option

val set_loss : t -> float -> unit
(** Fault injection: drop transmitted frames on the wire with the given
    probability, counted in [wire_drops].  The closed interval [0, 1] is
    accepted — [1.0] is a blackout.  @raise Invalid_argument outside
    [0, 1]. *)

val set_faults : t -> Faults.t -> unit
(** Attach a fault plan, applied to every frame as it leaves the wire
    (after the legacy {!set_loss} Bernoulli check).  Drops count in
    [wire_drops]; corruption/duplication copy the frame so shared chains
    are never scribbled on; delays add to propagation, reordering the
    frame behind later ones. *)

val faults : t -> Faults.t option

val set_admission :
  ?budget:int -> ?window:Sim.Stime.t -> ?defer_limit:int -> ?poll_batch:int ->
  t -> unit
(** Enable interrupt admission control: at most [budget] frames (default
    8) take the receive-interrupt path per [window] (default 1 ms);
    the excess queues — each frame still holding its ring slot — and is
    drained in [poll_batch]-sized batches (default [budget]) at thread
    priority, one fixed driver charge per batch.  When the deferred
    queue holds [defer_limit] frames (default 256) further frames are
    shed before any interrupt cost ([rx_shed]).  If a ring pool is
    installed, its pressure watermarks force deferral early.
    @raise Invalid_argument on non-positive parameters. *)

val clear_admission : t -> unit

val admission_backlog : t -> int
(** Frames currently parked in the deferred queue. *)

val transmit : t -> ?prio:Sim.Cpu.prio -> Mbuf.rw Mbuf.t -> unit
(** Send a frame.  The driver {e consumes} the mbuf ({!Mbuf.take}): the
    caller's handle is empty when [transmit] returns, and the chain
    travels to the peer's receive handler without being flattened or
    copied.  @raise Invalid_argument if it exceeds the MTU. *)

val name : t -> string
val mac : t -> Proto.Ether.Mac.t
val mtu : t -> int
val params : t -> Costs.device
val counters : t -> counters

val register : t -> Observe.Registry.t -> unit
(** Publish the device's queue depths and drop counts as sampling gauges
    ([dev.<name>.txq|tx_drops|rx_drops|wire_drops|rx_deferred|rx_shed|
    ring.live|ring.failures|faults.*]) — read only when the registry is
    snapshotted. *)

val set_trace : t -> Observe.Trace.t -> unit
(** Route injected-fault spans ({!Observe.Trace.Wire_fault}) to this
    endpoint; wired to the host kernel's trace by {!Host.add_device}. *)

val set_flight : t -> Observe.Flight.t -> unit
(** Attach the host's packet flight recorder; wired by
    {!Host.add_device}.  While the recorder is enabled, arriving frames
    roll the sampling dice at the receive ring ({!Observe.Flight.admit});
    sampled frames get the packet id stamped on the mbuf
    ({!Packet.Mbuf.set_mark}) and an [Ingress] stage recorded, and
    frames deferred past the interrupt budget additionally record a
    [Queue_wait] stage when the poller picks them up.  Frames arriving
    already marked (stamped by a shard plan upstream) keep their
    identity. *)

val wire_time : t -> int -> Sim.Stime.t
(** Wire occupancy of a packet of the given length (framing included). *)
