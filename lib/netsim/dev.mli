(** Simulated network devices (point-to-point).

    Transmission charges the host CPU for driver work (and per-byte PIO on
    devices like the Fore TCA-100), serializes frames on the wire at the
    device bit rate, and delivers to the peer after propagation; reception
    charges an interrupt on the peer CPU and invokes the installed receive
    handler — the bottom of the Plexus protocol graph. *)

type t

type counters = {
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable tx_drops : int;   (** transmit-queue overflows *)
  mutable rx_drops : int;   (** frames with no receive handler *)
}

val create :
  Sim.Engine.t -> cpu:Sim.Cpu.t -> name:string -> mac:Proto.Ether.Mac.t ->
  Costs.device -> t

val connect : t -> t -> unit
(** Wire two devices together (both directions). *)

val set_rx : t -> (Mbuf.ro Mbuf.t -> unit) -> unit
(** Install the driver's receive upcall (trusted kernel code only). *)

val set_rx_batch : t -> (Mbuf.ro Mbuf.t list -> unit) -> unit
(** Install the coalesced receive upcall, invoked by {!deliver_batch}
    with a whole burst at once.  Devices without one fall back to the
    per-frame {!set_rx} handler for each frame of the burst. *)

val deliver_batch : t -> Mbuf.ro Mbuf.t list -> unit
(** Inject a burst of frames arriving back to back at this device, as
    one coalesced receive interrupt: one ring-slot reservation
    ({!Pool.reserve_n}), one fixed interrupt charge for the burst (PIO
    still per byte), one upcall.  Frames beyond the ring budget drop as
    in normal delivery. *)

val set_rx_pool : t -> Pool.t -> unit
(** Bound the receive ring: frames hold a pool {e slot} from wire arrival
    until their interrupt is serviced; exhaustion drops at the ring.  The
    frame's mbuf chain is handed to the handler as-is — the ring bounds
    buffers without copying them. *)

val rx_pool : t -> Pool.t option

val set_loss : t -> float -> unit
(** Fault injection: drop transmitted frames on the wire with the given
    probability (counted as tx drops).  @raise Invalid_argument outside
    [0, 1). *)

val transmit : t -> ?prio:Sim.Cpu.prio -> Mbuf.rw Mbuf.t -> unit
(** Send a frame.  The driver {e consumes} the mbuf ({!Mbuf.take}): the
    caller's handle is empty when [transmit] returns, and the chain
    travels to the peer's receive handler without being flattened or
    copied.  @raise Invalid_argument if it exceeds the MTU. *)

val name : t -> string
val mac : t -> Proto.Ether.Mac.t
val mtu : t -> int
val params : t -> Costs.device
val counters : t -> counters

val register : t -> Observe.Registry.t -> unit
(** Publish the device's queue depths and drop counts as sampling gauges
    ([dev.<name>.txq|tx_drops|rx_drops|ring.live|ring.failures]) — read
    only when the registry is snapshotted. *)

val wire_time : t -> int -> Sim.Stime.t
(** Wire occupancy of a packet of the given length (framing included). *)
