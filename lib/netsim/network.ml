(* Topology helpers for the experiments: the paper's testbeds are pairs of
   workstations on a private segment (Ethernet), through a ForeRunner
   switch (ATM — folded into the device's propagation delay) or back to
   back (T3), plus a three-host line for the forwarding experiment. *)

type endpoint = { host : Host.t; dev : Dev.t }

let pair ?costs ?observe engine params ~a:(aname, aip) ~b:(bname, bip) =
  let ha = Host.create ?costs ?observe engine ~name:aname ~ip:aip in
  let hb = Host.create ?costs ?observe engine ~name:bname ~ip:bip in
  let da = Host.add_device ha params in
  let db = Host.add_device hb params in
  Dev.connect da db;
  ({ host = ha; dev = da }, { host = hb; dev = db })

(* Attach a fresh fault plan to one direction of an endpoint's link.
   The plan draws from its own split of the engine stream (or the given
   seed), so enabling faults on one link never perturbs the draws of
   another, and its injection counters land in the host registry under
   [faults.<dev>.*]. *)
let install_faults ?seed { host; dev } =
  let rng =
    match seed with
    | Some s -> Sim.Rng.create s
    | None -> Sim.Rng.split (Sim.Engine.rng (Host.engine host))
  in
  let plan = Faults.create ~name:("faults." ^ Dev.name dev) ~rng () in
  Dev.set_faults dev plan;
  Faults.register plan
    (Spin.Kernel.registry (Host.kernel host))
    ~prefix:("faults." ^ Dev.name dev);
  plan

(* client -- middle -- server: the middle host has two devices (one per
   segment), as the load-balancing forwarder of section 5.2 requires. *)
let line3 ?costs ?observe engine params ~client:(cn, cip) ~middle:(mn, mip)
    ~server:(sn, sip) =
  let hc = Host.create ?costs ?observe engine ~name:cn ~ip:cip in
  let hm = Host.create ?costs ?observe engine ~name:mn ~ip:mip in
  let hs = Host.create ?costs ?observe engine ~name:sn ~ip:sip in
  let dc = Host.add_device hc params in
  let dm1 = Host.add_device hm params in
  let dm2 = Host.add_device hm params in
  let ds = Host.add_device hs params in
  Dev.connect dc dm1;
  Dev.connect dm2 ds;
  ( { host = hc; dev = dc },
    ({ host = hm; dev = dm1 }, { host = hm; dev = dm2 }),
    { host = hs; dev = ds } )
