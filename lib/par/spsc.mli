(** Bounded lock-free single-producer / single-consumer ring.

    The multicore datapath's cross-domain handoff primitive: in the
    n x n ring matrix, worker domain [i] owns the producer side of ring
    [(i, j)] and worker [j] the consumer side, so neither end ever takes
    a lock or contends on a CAS.  Capacity is rounded up to a power of
    two.  All operations are O(1); [drain] amortises the consumer's
    atomic traffic over a batch. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at least [capacity]
    elements (rounded up to a power of two).
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Racy but conservative estimate when read from either end: exact for
    the producer and for the consumer the true length is >= the value
    read. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer side only.  [false] when the ring is full — the producer
    must drain its own incoming work before retrying, which is what
    makes the ring mesh deadlock-free. *)

val pop : 'a t -> 'a option
(** Consumer side only. *)

val drain : ?limit:int -> 'a t -> ('a -> unit) -> int
(** Consumer side only: pop until empty (or [limit] elements) calling
    [f] on each, in FIFO order; returns the number drained. *)
