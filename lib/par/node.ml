(* Per-domain datapath nodes and the multicore runner.  See node.mli. *)

(* [Spin.Domain] is the paper's *protection* domain (named interfaces
   guarding extension linkage); [Stdlib.Domain] is an OCaml 5 execution
   domain.  The alias keeps every use in this file unambiguous — see
   DESIGN.md "Multicore datapath". *)
module Sdomain = Stdlib.Domain

(* Simulated cost of the RSS redirect a steering node pays to hand a
   mis-sharded frame to its owner: a header hash plus a ring push, far
   below full protocol processing. *)
let forward_cost = Sim.Stime.ns 500

type world = {
  engine : Sim.Engine.t;
  host : Netsim.Host.t;  (* server host *)
  cpu : Sim.Cpu.t;
  dev : Netsim.Dev.t;  (* server receive device *)
  stack : Plexus.Stack.t;
  udp : Plexus.Udp_mgr.t;
  tap_frames : int ref;
  acct_bytes : int ref;
  swap_tap : unit -> unit;
      (* hot-swap the tap extension for a behaviorally identical next
         generation (Linker.replace through the node's dispatcher) *)
  swaps : int ref;
}

(* The wire tap as a proper compiler-signed extension, so the parallel
   runner can exercise [Linker.replace] under load.  Every generation
   increments the same [tap_frames] cell with the same cost and label,
   which is what makes swap churn invisible to the oracle equivalence
   counters: only the lifecycle differs, never the datapath behavior. *)
let make_tap_ext ~ev ~tap_frames ~gen =
  Spin.Extension.Compiler.compile
    ~name:(Printf.sprintf "par.tap.gen%d" gen)
    ~ops:[ Spin.Verifier.Count ]
    ~imports:[]
    (fun lk ->
      let uninstall =
        Spin.Dispatcher.install ev
          ~guard:(fun _ -> true)
          ~cacheable:true ~label:"tap" ~cost:(Sim.Stime.us 2)
          (fun _ -> incr tap_frames)
      in
      lk.Spin.Extension.on_unlink uninstall)

(* One node's private copy of the steady-state server world: the
   canonical two-host testbed with the paper's extension trio on the
   server — a wire tap on the ether event, a firewall monitor and a
   byte-accounting monitor on the ip event — and a bound UDP server on
   port 7 (the PR 4/PR 6 bench configuration). *)
let make_world ~flowcache () =
  let engine = Sim.Engine.create () in
  let ea, eb =
    Netsim.Network.pair engine
      (Netsim.Costs.ethernet ())
      ~a:("hostA", Rss.ip_a) ~b:("hostB", Rss.ip_b)
  in
  let a = Plexus.Stack.build ea.Netsim.Network.host in
  let b = Plexus.Stack.build eb.Netsim.Network.host in
  Plexus.Stack.prime_arp a b;
  if flowcache then
    List.iter
      (fun s ->
        Spin.Dispatcher.set_flow_cache
          (Plexus.Graph.dispatcher (Plexus.Stack.graph s))
          true)
      [ a; b ];
  let ether_ev =
    Plexus.Graph.recv_event (Plexus.Ether_mgr.node (Plexus.Stack.ether b))
  in
  let ip_ev =
    Plexus.Graph.recv_event (Plexus.Ip_mgr.node (Plexus.Stack.ip b))
  in
  let tap_frames = ref 0 and acct_bytes = ref 0 in
  let disp = Plexus.Graph.dispatcher (Plexus.Stack.graph b) in
  let tap_domain =
    Spin.Kernel.root_domain (Netsim.Host.kernel eb.Netsim.Network.host)
  in
  let tap_gen = ref 0 in
  let tap_link =
    ref
      (match
         Spin.Linker.link ~domain:tap_domain
           (make_tap_ext ~ev:ether_ev ~tap_frames ~gen:0)
       with
      | Ok l -> l
      | Error _ -> failwith "Par.Node: tap link failed")
  in
  let swaps = ref 0 in
  let swap_tap () =
    incr tap_gen;
    match
      Spin.Linker.replace ~disp ~domain:tap_domain !tap_link
        (make_tap_ext ~ev:ether_ev ~tap_frames ~gen:!tap_gen)
    with
    | Ok (nl, _) ->
        tap_link := nl;
        incr swaps
    | Error _ -> failwith "Par.Node: tap swap failed"
  in
  let udp_guard ctx =
    match ctx.Plexus.Pctx.ip with
    | Some ip -> ip.Proto.Ipv4.proto = Proto.Ipv4.proto_udp
    | None -> false
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
      ~label:"firewall" ~cost:(Sim.Stime.us 2)
      (fun _ -> ())
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install ip_ev ~guard:udp_guard ~cacheable:true
      ~label:"acct" ~cost:(Sim.Stime.us 1)
      (fun ctx -> acct_bytes := !acct_bytes + Plexus.Pctx.payload_len ctx)
  in
  let udp = Plexus.Stack.udp b in
  let server =
    match Plexus.Udp_mgr.bind udp ~owner:"srv" ~port:7 with
    | Ok ep -> ep
    | Error _ -> failwith "Par.Node: server bind failed"
  in
  let (_ : unit -> unit) = Plexus.Udp_mgr.install_recv udp server (fun _ -> ()) in
  {
    engine;
    host = eb.Netsim.Network.host;
    cpu = Netsim.Host.cpu eb.Netsim.Network.host;
    dev = eb.Netsim.Network.dev;
    stack = b;
    udp;
    tap_frames;
    acct_bytes;
    swap_tap;
    swaps;
  }

type domain_stats = {
  dom : int;
  processed : int;
  forwarded_out : int;
  forwarded_in : int;
  delivered : int;
  udp_rx : int;
  arp_replies : int;
  tap_frames : int;
  acct_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  tree_raises : int;
  tree_residual_evals : int;
  swaps : int;
  busy_us : float;
  registry : Observe.Registry.t;
  flight : Observe.Flight.t;
}

(* Sum every per-event merged-tree counter with the given suffix (e.g.
   "udp.PacketRecv" and "ip.PacketRecv" each expose their own
   [spin.<event>.tree.raises]). *)
let sum_counters reg ~suffix =
  List.fold_left
    (fun acc (name, s) ->
      match s with
      | Observe.Registry.Count n
        when String.length name >= String.length suffix
             && String.sub name
                  (String.length name - String.length suffix)
                  (String.length suffix)
                = suffix ->
          acc + n
      | _ -> acc)
    0
    (Observe.Registry.snapshot reg)

(* The worker body.  Phase A walks the plan's frames steered to this
   node: owned frames are injected in bursts into the private stack,
   mis-sharded frames are pushed owner-ward (draining our own incoming
   rings while a peer's ring is full, which keeps the mesh
   deadlock-free).  After the countdown on [active], phase B drains
   peer rings until every producer has finished and the rings are
   observed empty — sound because phase B never pushes, so once
   [active] reaches zero no new frame can appear. *)
let worker ~plan ~domains ~flowcache ~flight_rate ~batch ~swap_every ~rings
    ~active me =
  let w = make_world ~flowcache () in
  let incoming = Array.init domains (fun j -> rings.(j).(me)) in
  let outgoing = rings.(me) in
  let kernel = Netsim.Host.kernel w.host in
  let reg = Spin.Kernel.registry kernel in
  let tr = Spin.Kernel.trace kernel in
  (* This node's flight recorder.  Sampling decisions do NOT come from
     its own [admit] dice: every injected frame is pre-stamped from the
     plan ordinal via the pure [mark_for] (seeded by the plan), so all
     domains agree on the sampled set and a forwarded frame keeps its
     packet id on the owner node without shipping the mark through the
     ring.  Unsampled frames are stamped [-1] so the device ingress
     doesn't re-roll with domain-local state. *)
  let fl = Spin.Kernel.flight kernel in
  if flight_rate > 0 then begin
    Observe.Flight.set_rate fl flight_rate;
    Observe.Flight.set_domain fl me
  end;
  let mark_of f = Observe.Flight.mark_for ~seed:plan.Rss.seed ~rate:flight_rate f.Rss.pkt in
  let ring_enqueues = Observe.Registry.counter reg "par.ring.enqueues" in
  let ring_self_drains = Observe.Registry.counter reg "par.ring.self_drains" in
  let ring_phase_b = Observe.Registry.counter reg "par.ring.phase_b_drains" in
  let handoff_span op ~from_domain ~to_domain ~frames =
    if Observe.Trace.active tr then
      Observe.Trace.emit tr
        {
          Observe.Trace.at_ns = Sim.Stime.to_ns (Sim.Engine.now w.engine);
          event = Observe.Trace.Handoff { op; from_domain; to_domain; frames };
        }
  in
  let local = ref [] and nlocal = ref 0 in
  let batch_flows = Hashtbl.create 64 in
  let processed = ref 0 and forwarded_out = ref 0 and forwarded_in = ref 0 in
  let flush () =
    if !nlocal > 0 then begin
      Netsim.Dev.deliver_batch w.dev (List.rev !local);
      local := [];
      nlocal := 0;
      Hashtbl.reset batch_flows;
      Sim.Engine.run w.engine
    end
  in
  (* Flow-aware coalescing: a burst never carries two frames of the same
     flow.  A path recording only commits once the chain's work items
     drain (at the burst-closing [Engine.run]), so a flow's second frame
     inside one burst would re-miss — and whether that happens would
     depend on where burst boundaries fall, which differs between the
     oracle's arrival order and a domain's subsequence.  Keeping each
     flow unique per burst makes the hit/miss totals a pure function of
     the flow set, which is what the equivalence soak asserts.  ARP
     requests all share one path signature (the ether-level key does not
     see the sender), so they coalesce under a single sentinel key: on
     the owner node a drained, forwarded ARP can otherwise land in the
     same burst as a locally steered one and pay a spurious re-miss the
     oracle never sees. *)
  let inject (f : Rss.frame) =
    let key =
      match f.Rss.kind with Rss.Udp { flow } -> flow | Rss.Arp _ -> -1
    in
    if Hashtbl.mem batch_flows key then flush ();
    Hashtbl.replace batch_flows key ();
    (* wrap the shared immutable frame bytes into a domain-local mbuf —
       the node's "DMA" into its own pool *)
    let m = Mbuf.of_string f.Rss.bytes in
    if flight_rate > 0 then begin
      let id = mark_of f in
      Observe.Flight.tally fl ~sampled:(id > 0);
      Mbuf.set_mark m (if id = 0 then -1 else id)
    end;
    local := Mbuf.ro m :: !local;
    incr nlocal;
    incr processed;
    (* Lifecycle churn: every [swap_every]-th frame this node injects,
       hot-swap the tap extension.  The engine is quiescent at every
       inject point (flush runs it to quiescence), so each swap retires
       the old generation with nothing queued — and because every
       generation is behaviorally identical, the oracle equivalence
       counters are unaffected no matter where the swaps land. *)
    if swap_every > 0 && !processed mod swap_every = 0 then w.swap_tap ();
    if !nlocal >= batch then flush ()
  in
  (* [op]: None for routine incoming service; [Some] at the two
     documented handoff observation points (backpressure self-drain,
     phase-B quiescence) to bump the matching [par.ring.*] counter and
     emit a {!Observe.Trace.Handoff} span per non-empty peer ring. *)
  let drain_incoming ?op () =
    let n = ref 0 in
    Array.iteri
      (fun j ring ->
        if j <> me then begin
          let k =
            Spsc.drain ring (fun f ->
                incr forwarded_in;
                inject f)
          in
          if k > 0 then
            (match op with
            | Some ("self_drain" as op) ->
                ring_self_drains := !ring_self_drains + k;
                handoff_span op ~from_domain:j ~to_domain:me ~frames:k
            | Some ("phase_b_drain" as op) ->
                ring_phase_b := !ring_phase_b + k;
                handoff_span op ~from_domain:j ~to_domain:me ~frames:k
            | Some _ | None -> ());
          n := !n + k
        end)
      incoming;
    !n
  in
  let steered = ref 0 in
  Array.iter
    (fun f ->
      if Rss.steer ~domains f = me then begin
        incr steered;
        let owner = Rss.owner ~domains f in
        if owner = me then inject f
        else begin
          Sim.Cpu.charge w.cpu ~cost:forward_cost;
          incr forwarded_out;
          let ring = outgoing.(owner) in
          while not (Spsc.try_push ring f) do
            ignore (drain_incoming ~op:"self_drain" ());
            flush ();
            Sdomain.cpu_relax ()
          done;
          incr ring_enqueues;
          handoff_span "enqueue" ~from_domain:me ~to_domain:owner ~frames:1;
          (* The hop is charged to the sender: its clock, its domain id
             in the record.  The owner's ingress/handler stages follow
             under the same packet id once it drains the ring. *)
          if flight_rate > 0 && Observe.Flight.enabled fl then begin
            let id = mark_of f in
            if id > 0 then
              Observe.Flight.note fl ~pkt:id
                ~at_ns:(Sim.Stime.to_ns (Sim.Engine.now w.engine))
                ~dur_ns:0
                (Observe.Flight.Hop { from_domain = me; to_domain = owner })
          end
        end;
        if !steered land (batch - 1) = 0 then ignore (drain_incoming ())
      end)
    plan.Rss.frames;
  flush ();
  Atomic.decr active;
  let rec settle () =
    let n = drain_incoming ~op:"phase_b_drain" () in
    flush ();
    if n > 0 then settle ()
    else if Atomic.get active > 0 then begin
      Sdomain.cpu_relax ();
      settle ()
    end
    else begin
      (* producers all done: one last drain closes the race between our
         empty read and a peer's final push *)
      let n = drain_incoming ~op:"phase_b_drain" () in
      flush ();
      if n > 0 then settle ()
    end
  in
  settle ();
  let d = Plexus.Graph.dispatcher (Plexus.Stack.graph w.stack) in
  let u = Plexus.Udp_mgr.counters w.udp in
  {
    dom = me;
    processed = !processed;
    forwarded_out = !forwarded_out;
    forwarded_in = !forwarded_in;
    delivered = u.Plexus.Udp_mgr.delivered;
    udp_rx = u.Plexus.Udp_mgr.rx;
    arp_replies = Plexus.Arp_mgr.replies_sent (Plexus.Stack.arp w.stack);
    tap_frames = !(w.tap_frames);
    acct_bytes = !(w.acct_bytes);
    cache_hits = Spin.Dispatcher.path_cache_hits d;
    cache_misses = Spin.Dispatcher.path_cache_misses d;
    cache_evictions = Spin.Dispatcher.path_cache_evictions d;
    tree_raises = sum_counters reg ~suffix:".tree.raises";
    tree_residual_evals = sum_counters reg ~suffix:".tree.residual_evals";
    swaps = !(w.swaps);
    busy_us = Sim.Stime.to_us (Sim.Cpu.busy_time w.cpu);
    registry = reg;
    flight = fl;
  }

type stats = {
  domains : int;
  frames : int;
  delivered : int;
  udp_rx : int;
  arp_replies : int;
  tap_frames : int;
  acct_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  tree_raises : int;
  tree_residual_evals : int;
  swaps : int;
  forwarded : int;
  busy_us : float array;
  busy_max_us : float;
  busy_sum_us : float;
  datagrams_per_s : float;
  wall_s : float;
  per_domain : domain_stats array;
  registry : Observe.Registry.t;
  flight : Observe.Flight.t;
}

let run ?(flowcache = true) ?(flight_rate = 0) ?(batch = 32)
    ?(ring_capacity = 1024) ?(swap_every = 0) ~domains plan =
  if domains < 1 then invalid_arg "Par.Node.run: domains must be >= 1";
  if batch < 1 then invalid_arg "Par.Node.run: batch must be >= 1";
  (* power-of-two batch keeps the periodic-drain mask trick valid *)
  let batch =
    let b = ref 1 in
    while !b < batch do b := !b * 2 done;
    !b
  in
  let t0 = Unix.gettimeofday () in
  let rings =
    Array.init domains (fun _ ->
        Array.init domains (fun _ -> Spsc.create ~capacity:ring_capacity))
  in
  let active = Atomic.make domains in
  let work me () =
    worker ~plan ~domains ~flowcache ~flight_rate ~batch ~swap_every ~rings
      ~active me
  in
  let per =
    if domains = 1 then [| work 0 () |]
    else begin
      let spawned =
        Array.init (domains - 1) (fun k -> Sdomain.spawn (work (k + 1)))
      in
      let d0 = work 0 () in
      Array.append [| d0 |] (Array.map Sdomain.join spawned)
    end
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum (f : domain_stats -> int) =
    Array.fold_left (fun acc d -> acc + f d) 0 per
  in
  let busy_us = Array.map (fun (d : domain_stats) -> d.busy_us) per in
  let busy_max_us = Array.fold_left Float.max 0. busy_us in
  let busy_sum_us = Array.fold_left ( +. ) 0. busy_us in
  let delivered = sum (fun d -> d.delivered) in
  let forwarded = sum (fun d -> d.forwarded_out) in
  let merged =
    Observe.Registry.create ~name:(Printf.sprintf "parallel-%dd" domains) ()
  in
  Array.iter
    (fun d ->
      Observe.Registry.merge_into
        ~prefix:(Printf.sprintf "domain%d." d.dom)
        ~into:merged d.registry)
    per;
  Observe.Registry.counter merged "par.forwarded" := forwarded;
  Observe.Registry.counter merged "par.frames" := Array.length plan.Rss.frames;
  Observe.Registry.counter merged "par.delivered" := delivered;
  (* One merged timeline ring, sized so no per-domain record is shed at
     merge time; records keep their home domain for attribution. *)
  let merged_flight =
    Observe.Flight.create
      ~capacity:
        (Array.fold_left
           (fun acc (d : domain_stats) -> acc + Observe.Flight.length d.flight)
           1 per)
      ~rate:flight_rate ~seed:plan.Rss.seed ()
  in
  Array.iter
    (fun (d : domain_stats) ->
      Observe.Flight.merge_into ~into:merged_flight d.flight)
    per;
  {
    domains;
    frames = Array.length plan.Rss.frames;
    delivered;
    udp_rx = sum (fun d -> d.udp_rx);
    arp_replies = sum (fun d -> d.arp_replies);
    tap_frames = sum (fun d -> d.tap_frames);
    acct_bytes = sum (fun d -> d.acct_bytes);
    cache_hits = sum (fun d -> d.cache_hits);
    cache_misses = sum (fun d -> d.cache_misses);
    cache_evictions = sum (fun d -> d.cache_evictions);
    tree_raises = sum (fun d -> d.tree_raises);
    tree_residual_evals = sum (fun d -> d.tree_residual_evals);
    swaps = sum (fun d -> d.swaps);
    forwarded;
    busy_us;
    busy_max_us;
    busy_sum_us;
    datagrams_per_s =
      (if busy_max_us > 0. then float_of_int delivered /. (busy_max_us *. 1e-6)
       else 0.);
    wall_s;
    per_domain = per;
    registry = merged;
    flight = merged_flight;
  }

let equiv_counters s =
  [
    ("delivered", s.delivered);
    ("udp_rx", s.udp_rx);
    ("arp_replies", s.arp_replies);
    ("tap_frames", s.tap_frames);
    ("acct_bytes", s.acct_bytes);
    ("cache_hits", s.cache_hits);
    ("cache_misses", s.cache_misses);
    ("cache_evictions", s.cache_evictions);
    (* merged-tree dispatch is per-packet deterministic (replayed
       cache hits skip the walk, and hits already match above), so the
       sharded sums must equal the single-domain oracle's too *)
    ("tree_raises", s.tree_raises);
    ("tree_residual_evals", s.tree_residual_evals);
  ]
