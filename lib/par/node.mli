(** Per-domain datapath nodes and the multicore runner.

    [run ~domains plan] executes an {!Rss} plan across [domains] OCaml 5
    execution domains ([Stdlib.Domain] — not to be confused with
    {!Spin.Domain}, the paper's protection domain).  Each worker owns a
    complete, private instance of the steady-state server world: its own
    simulation engine, protocol stack, dispatcher with flow-path cache,
    metric registry and (via the domain-local mbuf free lists) its own
    buffer pool — the fast path never crosses a domain boundary.  The
    NIC model steers each frame to the worker given by
    {!Rss.steer}; frames whose {!Rss.owner} differs are forwarded
    owner-ward over bounded {!Spsc} rings and drained in batches.

    [run ~domains:1] is the deterministic single-domain oracle: no
    domain is spawned, nothing is forwarded, and the seeded engine
    behaves exactly as every other experiment's.  Because a flow's
    steer and owner are constant, all its frames take one FIFO path, so
    every per-flow counter sequence — delivery, cache hit/miss, ARP
    replies — is identical in oracle and parallel runs; the equivalence
    soak asserts this counter-for-counter via {!equiv_counters}. *)

type domain_stats = {
  dom : int;
  processed : int;  (** frames this node injected into its own stack *)
  forwarded_out : int;  (** mis-sharded frames pushed to peer rings *)
  forwarded_in : int;  (** frames drained from peer rings *)
  delivered : int;
  udp_rx : int;
  arp_replies : int;
  tap_frames : int;
  acct_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  tree_raises : int;  (** raises served by a merged decision-tree walk *)
  tree_residual_evals : int;
      (** opaque guards the tree could not prove and had to evaluate *)
  swaps : int;
      (** tap-extension hot-swaps ({!Spin.Linker.replace}) this node
          performed under [swap_every] churn *)
  busy_us : float;  (** this node's simulated CPU busy time *)
  registry : Observe.Registry.t;  (** the node's kernel registry *)
  flight : Observe.Flight.t;
      (** the node's flight recorder (stage records it emitted) *)
}

type stats = {
  domains : int;
  frames : int;
  delivered : int;
  udp_rx : int;
  arp_replies : int;
  tap_frames : int;
  acct_bytes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  tree_raises : int;
  tree_residual_evals : int;
  swaps : int;  (** total hot-swaps across all domains *)
  forwarded : int;
  busy_us : float array;
  busy_max_us : float;  (** makespan: the loaded domain bounds the run *)
  busy_sum_us : float;
  datagrams_per_s : float;
      (** aggregate throughput in {e simulated} time:
          delivered / busy_max — the host-independent speedup metric *)
  wall_s : float;  (** host wall clock, informational only *)
  per_domain : domain_stats array;
  registry : Observe.Registry.t;
      (** per-domain registries merged under [domainN.] prefixes *)
  flight : Observe.Flight.t;
      (** per-domain flight recorders merged; each record keeps the
          domain that emitted it, so a forwarded packet's timeline shows
          the steering node's [Hop] followed by the owner's stages *)
}

val run :
  ?flowcache:bool -> ?flight_rate:int -> ?batch:int -> ?ring_capacity:int ->
  ?swap_every:int ->
  domains:int -> Rss.t -> stats
(** Execute the plan.  [flowcache] (default true) enables the flow-path
    cache in every node; [batch] (default 32) is the local injection
    burst and ring-drain granularity; [ring_capacity] (default 1024)
    bounds each SPSC ring.  [flight_rate] (default 0 = off) turns on
    1-in-N flight-recorder sampling: marks are pre-computed from each
    frame's plan ordinal ({!Rss.frame.pkt}) with the plan's seed, so
    the sampled packet-id set is identical for every domain count and a
    handed-off frame keeps its timeline across the ring.  [swap_every]
    (default 0 = never) makes each node hot-swap its wire-tap extension
    ({!Spin.Linker.replace}) after every Nth frame it injects: a
    lifecycle-churn soak — every generation is behaviorally identical,
    so {!equiv_counters} must still match the oracle.  Run swap churn
    with [~flowcache:false]: each swap bumps the event generation,
    which invalidates path recordings at points that depend on where
    frames landed per domain, so hit/miss counts would diverge from the
    oracle for reasons that are bookkeeping, not behavior.
    @raise Invalid_argument if [domains < 1]. *)

val equiv_counters : stats -> (string * int) list
(** The counters the oracle-equivalence soak compares: totals that must
    be identical between [run ~domains:1] and [run ~domains:n] of the
    same plan. *)
