(* Bounded lock-free single-producer / single-consumer ring.

   Classic two-index scheme over a power-of-two buffer: the producer
   writes the slot and then releases it by advancing [tail]; the
   consumer acquires [tail], reads the slot, and hands it back by
   advancing [head].  Under the OCaml 5 memory model the plain slot
   write is ordered before the atomic [tail] store and is therefore
   visible to a consumer that observed the advanced [tail] — the
   standard message-passing publication idiom.  Indices grow
   monotonically; the slot is [index land mask]. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next slot to pop; advanced only by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced only by the producer *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    buf = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0

let try_push t x =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head > t.mask then false
  else begin
    t.buf.(tl land t.mask) <- Some x;
    Atomic.set t.tail (tl + 1);
    true
  end

let pop t =
  let hd = Atomic.get t.head in
  if Atomic.get t.tail = hd then None
  else begin
    let slot = hd land t.mask in
    let x = t.buf.(slot) in
    t.buf.(slot) <- None;
    Atomic.set t.head (hd + 1);
    x
  end

let drain ?limit t f =
  let lim = match limit with Some l -> l | None -> max_int in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < lim do
    match pop t with
    | Some x ->
        incr n;
        f x
    | None -> continue := false
  done;
  !n
