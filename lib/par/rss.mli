(** Seeded RSS workload plans for the multicore datapath.

    A plan is the steady-state UDP server workload (the PR 4/PR 6 bench
    configuration) expressed as prebuilt wire frames with two
    pre-computed shard hashes:

    - [steer_hash] — the hash the simulated NIC's RSS unit computes to
      pick a receive queue (= worker domain).  For most flows the NIC
      hashes the full 5-tuple, exactly like the software shard rule; a
      configurable fraction of "legacy" flows emulate a NIC that falls
      back to the 2-tuple (src ip, dst ip), and ARP frames arrive
      round-robin — both sources of mis-sharding.
    - [owner_hash] — the software shard rule: the generic hash of the
      real {!Plexus.Filter.flow_signature} (the packed 5-tuple the
      flow-path cache keys on).  Negative means unsignable control
      traffic, which domain 0 owns.

    A frame whose steer and owner disagree (mod the domain count) must
    be forwarded owner-ward over an SPSC ring.  Frame bytes are
    immutable strings, safe to share read-only across domains; each
    worker copies them into its own domain-local mbuf pool on arrival
    (its "DMA").  The plan depends only on the constructor arguments, so
    1-domain and N-domain runs consume byte-identical traffic. *)

val ip_a : Proto.Ipaddr.t
val ip_b : Proto.Ipaddr.t
(** Client and server addresses (the canonical two-host testbed). *)

type kind =
  | Udp of { flow : int }  (** steady-state datagram of flow [flow] *)
  | Arp of { seq : int }   (** broadcast ARP request for {!ip_b} *)

type frame = {
  bytes : string;    (** full Ethernet frame, immutable *)
  steer_hash : int;  (** NIC RSS hash; queue = hash mod domains *)
  owner_hash : int;  (** 5-tuple signature hash; negative = control *)
  kind : kind;
  pkt : int;
      (** 1-based arrival ordinal in the plan — the flight-recorder
          sampling key ({!Observe.Flight.mark_for}), identical across
          domain counts so every shard agrees on the sampled set *)
}

type t = {
  seed : int;
  flows : int;
  pkts_per_flow : int;
  payload_len : int;
  udp_frames : int;
  arp_frames : int;
  frames : frame array;  (** arrival order; per-flow subsequences FIFO *)
}

val make :
  ?payload_len:int ->
  ?arp_every:int ->
  ?legacy_every:int ->
  seed:int ->
  flows:int ->
  pkts_per_flow:int ->
  unit ->
  t
(** [make ~seed ~flows ~pkts_per_flow ()] builds the plan: [flows]
    distinct UDP flows (varying source ip and port) of [pkts_per_flow]
    datagrams each, arrival order shuffled per round from [seed], with
    one ARP request woven in per [arp_every] datagrams (0 disables) and
    every [legacy_every]-th flow steered by the legacy 2-tuple hash
    (0 disables).  Defaults: [payload_len] 256, [arp_every] 64,
    [legacy_every] 4. *)

val steer : domains:int -> frame -> int
(** The receive queue (worker domain) the NIC delivers the frame to. *)

val owner : domains:int -> frame -> int
(** The domain the shard rule assigns the frame's flow to; control
    frames belong to domain 0.  [steer <> owner] frames are handed off
    over rings. *)
