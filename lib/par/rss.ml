(* Seeded RSS workload plans: prebuilt steady-state UDP frames with
   pre-computed NIC-steer and shard-owner hashes.  See rss.mli. *)

let ip_a = Proto.Ipaddr.v 10 0 1 1
let ip_b = Proto.Ipaddr.v 10 0 1 2

type kind = Udp of { flow : int } | Arp of { seq : int }

type frame = {
  bytes : string;
  steer_hash : int;
  owner_hash : int;
  kind : kind;
  pkt : int;
}

type t = {
  seed : int;
  flows : int;
  pkts_per_flow : int;
  payload_len : int;
  udp_frames : int;
  arp_frames : int;
  frames : frame array;
}

let steer ~domains f = (f.steer_hash land max_int) mod domains

let owner ~domains f =
  if f.owner_hash < 0 then 0 else (f.owner_hash land max_int) mod domains

(* Flow [i]'s 5-tuple: distinct (src ip, src port) pairs toward the
   server's UDP echo port. *)
let flow_src i =
  (Proto.Ipaddr.v 10 1 ((i / 250) land 255) (1 + (i mod 250)),
   5000 + (i mod 20000))

let make ?(payload_len = 256) ?(arp_every = 64) ?(legacy_every = 4) ~seed
    ~flows ~pkts_per_flow () =
  if flows <= 0 then invalid_arg "Rss.make: flows must be positive";
  if pkts_per_flow <= 0 then
    invalid_arg "Rss.make: pkts_per_flow must be positive";
  (* Throwaway planner testbed: borrows a receive device so the owner
     hash comes from the real [Filter.flow_signature] via [Pctx.make],
     and the destination MAC matches what every per-domain world's
     server device will carry (host MACs are a pure function of host ip
     and device index). *)
  let engine = Sim.Engine.create () in
  let _ea, eb =
    Netsim.Network.pair engine
      (Netsim.Costs.ethernet ())
      ~a:("hostA", ip_a) ~b:("hostB", ip_b)
  in
  let dev = eb.Netsim.Network.dev in
  let dst_mac = Netsim.Dev.mac dev in
  let src_mac = Proto.Ether.Mac.of_int 0x0A0000010001 in
  let mk_udp i =
    let src, src_port = flow_src i in
    let m = Mbuf.alloc payload_len in
    Proto.Udp.encapsulate ~checksum:true m ~src ~dst:ip_b ~src_port
      ~dst_port:7;
    Proto.Ipv4.encapsulate m
      (Proto.Ipv4.make ~id:(i land 0xffff) ~proto:Proto.Ipv4.proto_udp ~src
         ~dst:ip_b ~payload_len:(Mbuf.length m) ());
    Proto.Ether.encapsulate m
      { Proto.Ether.dst = dst_mac; src = src_mac; etype = Proto.Ether.etype_ip };
    let ro = Mbuf.ro m in
    let sg =
      match Plexus.Filter.flow_signature (Plexus.Pctx.make dev ro) with
      | Some s -> s
      | None -> failwith "Rss.make: UDP frame has no flow signature"
    in
    let owner_hash = Hashtbl.hash sg in
    let steer_hash =
      if legacy_every > 0 && i mod legacy_every = 0 then
        (* legacy NIC: RSS over the ip pair only *)
        Hashtbl.hash (Proto.Ipaddr.to_int src, Proto.Ipaddr.to_int ip_b)
      else owner_hash
    in
    { bytes = Mbuf.to_string ro; steer_hash; owner_hash;
      kind = Udp { flow = i }; pkt = 0 }
  in
  let mk_arp k =
    let sender_ip = Proto.Ipaddr.v 10 0 1 (3 + (k mod 250)) in
    let sender_mac = Proto.Ether.Mac.of_int (0x0A0000CAFE00 + (k land 0xff)) in
    let m =
      Proto.Arp.to_packet
        (Proto.Arp.request ~sender_mac ~sender_ip ~target_ip:ip_b)
    in
    Proto.Ether.encapsulate m
      {
        Proto.Ether.dst = Proto.Ether.Mac.broadcast;
        src = sender_mac;
        etype = Proto.Ether.etype_arp;
      };
    (* broadcasts land on whichever queue the NIC picks round-robin;
       the control plane (domain 0) owns them *)
    { bytes = Mbuf.to_string m; steer_hash = k; owner_hash = -1;
      kind = Arp { seq = k }; pkt = 0 }
  in
  let flow_frames = Array.init flows mk_udp in
  (* Arrival order: per round, a seeded shuffle of the flow set — random
     cross-flow interleave, strictly FIFO within each flow.  Frame bytes
     stay shared per flow; each emitted arrival gets its own record
     carrying the 1-based arrival ordinal [pkt], the key every domain
     feeds [Observe.Flight.mark_for] so the sampled set is identical no
     matter how the plan is sharded. *)
  let rng = Sim.Rng.create seed in
  let order = Array.init flows Fun.id in
  let udp_frames = flows * pkts_per_flow in
  let arp_frames = if arp_every > 0 then udp_frames / arp_every else 0 in
  let out = Array.make (udp_frames + arp_frames) flow_frames.(0) in
  let pos = ref 0 and emitted_udp = ref 0 and arp_seq = ref 0 in
  let emit f =
    out.(!pos) <- { f with pkt = !pos + 1 };
    incr pos
  in
  for _round = 1 to pkts_per_flow do
    for i = flows - 1 downto 1 do
      let j = Sim.Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun fi ->
        emit flow_frames.(fi);
        incr emitted_udp;
        if arp_every > 0 && !emitted_udp mod arp_every = 0
           && !arp_seq < arp_frames then begin
          emit (mk_arp !arp_seq);
          incr arp_seq
        end)
      order
  done;
  assert (!pos = Array.length out);
  { seed; flows; pkts_per_flow; payload_len; udp_frames; arp_frames;
    frames = out }
