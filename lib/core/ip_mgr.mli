(** IP protocol manager: receive validation/reassembly/demux and the
    transport send path with fragmentation. *)

type t

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable not_ours : int;
  mutable delivered : int;
  mutable fragments_out : int;
  mutable reassembled : int;
}

val create : Graph.t -> t

val attach :
  t -> Ether_mgr.t -> Arp_mgr.t -> net:Proto.Ipaddr.t -> mask_bits:int -> unit
(** Bind IP to a device: installs the guarded receive handler on the
    device node and adds a route for the subnet. *)

val node : t -> Graph.node
(** The "ip" graph node; transports install guarded handlers on its
    PacketRecv event. *)

val counters : t -> counters
val host_ip : t -> Proto.Ipaddr.t

val frag_state : t -> Proto.Ip_frag.t
(** The reassembly state — pending/reassembled/timeout counts for tests
    and introspection.  Expiry is scheduled: a one-shot timer armed at
    the earliest pending deadline (re-armed only while reassemblies are
    pending) guarantees a stalled fragment train times out and releases
    its buffers even if no further fragment ever arrives. *)

val send :
  t -> ?prio:Sim.Cpu.prio -> proto:int -> dst:Proto.Ipaddr.t ->
  Mbuf.rw Mbuf.t -> unit
(** Encapsulate and transmit a transport payload, fragmenting to the MTU.
    The source address is always the host's (anti-spoof). *)

val dst_touches_data : t -> Proto.Ipaddr.t -> bool
(** True when the route to [dst] uses a programmed-I/O device. *)

val send_prepared :
  t -> ?prio:Sim.Cpu.prio -> dst:Proto.Ipaddr.t -> Mbuf.rw Mbuf.t -> unit
(** Privileged: route a complete IP datagram without rewriting its source
    (the in-kernel forwarder's path). *)
