(* The ICMP protocol manager: answers echo requests in the kernel. *)

type t = {
  ip : Ip_mgr.t;
  graph : Graph.t;
  mutable echos_answered : int;
  mutable unreachables_received : int;
  mutable rx : int;
}

let proto_guard ctx =
  match ctx.Pctx.ip with
  | Some h -> h.Proto.Ipv4.proto = Proto.Ipv4.proto_icmp
  | None -> false

let create graph ip =
  let t = { ip; graph; echos_answered = 0; unreachables_received = 0; rx = 0 } in
  let costs = Netsim.Host.costs (Graph.host graph) in
  let node = Graph.node graph "icmp" in
  Graph.add_edge graph ~parent:(Ip_mgr.node ip) ~child:"icmp" ~label:"proto=1";
  ignore node;
  let handle ctx =
    t.rx <- t.rx + 1;
    let v = Pctx.view ctx in
    if Proto.Icmp.valid v then begin
      match Proto.Icmp.parse v with
      | Some m when m.Proto.Icmp.mtype = Proto.Icmp.type_echo_request ->
          t.echos_answered <- t.echos_answered + 1;
          let reply = Proto.Icmp.to_packet (Proto.Icmp.echo_reply_of m) in
          Ip_mgr.send ip ~proto:Proto.Ipv4.proto_icmp
            ~dst:(Pctx.ip_exn ctx).Proto.Ipv4.src reply
      | Some m when m.Proto.Icmp.mtype = Proto.Icmp.type_dest_unreachable ->
          t.unreachables_received <- t.unreachables_received + 1
      | _ -> ()
    end
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install
      (Graph.recv_event (Ip_mgr.node ip))
      ~guard:proto_guard
      ~key:(Filter.ip_proto_key Proto.Ipv4.proto_icmp)
      ~exact:true ~cacheable:true ~label:"icmp"
      ~cost:costs.Netsim.Costs.layer.udp_in
      ~dyncost:(fun ctx ->
        if Pctx.data_touched_by_device ctx then Sim.Stime.zero
        else
          Netsim.Costs.per_byte costs.Netsim.Costs.layer.cksum_ns_per_byte
            (Pctx.payload_len ctx))
      handle
  in
  t

let echos_answered t = t.echos_answered
let unreachables_received t = t.unreachables_received
let rx t = t.rx
