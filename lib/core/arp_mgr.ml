(* The ARP protocol manager: answers requests for the host's address and
   resolves peer addresses for the IP send path. *)

type t = {
  ether : Ether_mgr.t;
  ip : Proto.Ipaddr.t;
  trace : Observe.Trace.t;
  cache : Proto.Arp.Cache.t;
  engine : Sim.Engine.t;
  retry_interval : Sim.Stime.t;
  max_retries : int;
  pending : (Proto.Ipaddr.t, int) Hashtbl.t; (* outstanding request count *)
  mutable requests_sent : int;
  mutable replies_sent : int;
  mutable resolution_failures : int;
  mutable waiters_dropped : int;
}

let send_arp t msg =
  let pkt = Proto.Arp.to_packet msg in
  let dst =
    if msg.Proto.Arp.op = Proto.Arp.op_request then Proto.Ether.Mac.broadcast
    else msg.Proto.Arp.target_mac
  in
  Ether_mgr.send t.ether ~dst ~etype:Proto.Ether.etype_arp pkt

let create ?(retry_interval = Sim.Stime.s 1) ?(max_retries = 3) graph ether
    ~ip =
  let host = Graph.host graph in
  let t =
    {
      ether;
      ip;
      trace = Graph.trace graph;
      cache = Proto.Arp.Cache.create ();
      engine = Netsim.Host.engine host;
      retry_interval;
      max_retries;
      pending = Hashtbl.create 4;
      requests_sent = 0;
      replies_sent = 0;
      resolution_failures = 0;
      waiters_dropped = 0;
    }
  in
  let costs = Netsim.Host.costs host in
  let handle ctx =
    let v = View.shift (Pctx.view ctx) Proto.Ether.header_len in
    match Proto.Arp.parse v with
    | None -> ()
    | Some msg ->
        let now = Sim.Engine.now t.engine in
        Proto.Arp.Cache.insert t.cache ~now msg.Proto.Arp.sender_ip
          msg.Proto.Arp.sender_mac;
        Hashtbl.remove t.pending msg.Proto.Arp.sender_ip;
        if
          msg.Proto.Arp.op = Proto.Arp.op_request
          && Proto.Ipaddr.equal msg.Proto.Arp.target_ip t.ip
        then begin
          t.replies_sent <- t.replies_sent + 1;
          send_arp t (Proto.Arp.reply_to msg ~mac:(Ether_mgr.mac ether))
        end
  in
  let (_ : unit -> unit) =
    Ether_mgr.install_protocol ether ~child:"arp"
      ~guard:(Ether_mgr.etype_guard Proto.Ether.etype_arp)
      ~key:(Filter.ether_type_key Proto.Ether.etype_arp)
      ~exact:true ~cacheable:true ~cost:costs.Netsim.Costs.layer.ether_in
      handle
  in
  t

let cache t = t.cache
let requests_sent t = t.requests_sent
let replies_sent t = t.replies_sent
let resolution_failures t = t.resolution_failures
let waiters_dropped t = t.waiters_dropped
let pending_count t = Hashtbl.length t.pending

let send_request t dst =
  t.requests_sent <- t.requests_sent + 1;
  send_arp t
    (Proto.Arp.request ~sender_mac:(Ether_mgr.mac t.ether) ~sender_ip:t.ip
       ~target_ip:dst)

(* Retransmit unanswered requests; after [max_retries] the resolution is
   abandoned (queued packets for it are dropped, like a BSD arp stall).
   Abandonment also cancels the continuations queued on the cache: if it
   did not, a reply arriving after the budget was spent would fire them
   and transmit packets the sender gave up on long ago. *)
let rec arm_retry t dst =
  ignore
    (Sim.Engine.schedule_in t.engine ~delay:t.retry_interval (fun () ->
         match Hashtbl.find_opt t.pending dst with
         | None -> () (* resolved in the meantime *)
         | Some tries ->
             if tries >= t.max_retries then begin
               Hashtbl.remove t.pending dst;
               t.resolution_failures <- t.resolution_failures + 1;
               let dropped = Proto.Arp.Cache.cancel_waiters t.cache dst in
               t.waiters_dropped <- t.waiters_dropped + dropped;
               if Observe.Trace.active t.trace then
                 Observe.Trace.emit t.trace
                   {
                     Observe.Trace.at_ns =
                       Sim.Stime.to_ns (Sim.Engine.now t.engine);
                     event =
                       Observe.Trace.Drop
                         { scope = "arp"; reason = "resolution_failed" };
                   }
             end
             else begin
               Hashtbl.replace t.pending dst (tries + 1);
               send_request t dst;
               arm_retry t dst
             end))

(* Resolve an IP address to a MAC, asynchronously on a miss. *)
let resolve t dst k =
  let now = Sim.Engine.now t.engine in
  match Proto.Arp.Cache.lookup t.cache ~now dst with
  | Some mac -> k mac
  | None ->
      Proto.Arp.Cache.wait t.cache dst k;
      if not (Hashtbl.mem t.pending dst) then begin
        Hashtbl.replace t.pending dst 1;
        send_request t dst;
        arm_retry t dst
      end

(* Pre-populate the cache (experiments measure steady state, as the
   paper's do). *)
let prime t dst mac =
  Proto.Arp.Cache.insert t.cache ~now:(Sim.Engine.now t.engine) dst mac
