(** Declarative packet filters — the interpreted alternative to compiled
    guards ([MRA87]; the Mach comparison in paper section 3.1).

    A filter is plain data: applications can hand one to a manager with
    no code installation at all, at the price of interpretation cost
    ({!eval_cost}) on every packet.  Compiling it ({!compile}) lowers the
    tree to a flat array of closure-free instructions run by a tight
    loop (DPF-style), and {!dispatch_key} exposes the literal
    demultiplexing test the filter implies so the dispatcher's index can
    skip it entirely (PathFinder-style). *)

type anchor = Cur | Abs

type field =
  | U8 of anchor * int
  | U16 of anchor * int
  | U32 of anchor * int
  | Ip_proto
  | Src_port
  | Dst_port
  | Payload_len

type t =
  | True
  | False
  | Eq of field * int
  | Lt of field * int
  | Gt of field * int
  | Mask of field * int * int
  | And of t * t
  | Or of t * t
  | Not of t

val nodes : t -> int
(** Expression size (interpretation cost scales with it). *)

val eval_cost : t -> Sim.Stime.t
(** Modelled per-packet interpretation cost. *)

val eval : t -> Pctx.t -> bool
(** Reference semantics: interpret the filter against a packet context.
    Fields that are not available (short packet, no parsed header, no
    ports yet) make the enclosing comparison false. *)

(** {1 Compilation} *)

val normalize : t -> t
(** Constant folding, [And]/[Or] flattening, and short-circuit ordering
    of conjuncts/disjuncts by estimated field cost.  Semantics-preserving
    for well-formed (non-negative-offset) filters: tests are pure, so
    reordering cannot change the result. *)

type program
(** A filter compiled to a flat array of closure-free instructions. *)

val compile : t -> program
(** Normalize and lower to straight-line instruction form. *)

val run : program -> Pctx.t -> bool
(** Execute a compiled filter: a tight loop over the instruction array
    with the packet views hoisted out of the per-field reads.  Agrees
    with {!eval} on every context. *)

val compile_guard : t -> Pctx.t -> bool
(** [compile t] partially applied — the filter as an ordinary guard
    closure for installs that take one. *)

val program_length : program -> int
(** Instructions in the compiled form (≤ the comparison count of the
    normalized filter). *)

val compiled_cost : program -> Sim.Stime.t
(** Modelled per-packet cost of {!run}: a fixed entry overhead plus a
    few ns per instruction — the gcost managers charge for compiled
    filters in place of {!eval_cost}. *)

(** {1 Dispatch keys}

    A dispatch key is a literal equality on a demultiplexing field —
    EtherType, IP protocol, source/destination port — encoded as an int
    for the dispatcher's hash index. *)

val dispatch_key : t -> int option
(** The key implied by the filter, if any: a top-level conjunct that is
    [Eq]/full-width [Mask] on a keyable field.  Soundness: if
    [dispatch_key t = Some k], then [eval t ctx = false] for every [ctx]
    whose {!context_keys} does not include [k]. *)

val key_conjuncts : t -> int list
(** Every key the filter's top-level conjunction implies, sorted and
    deduplicated — one per demux dimension the filter pins.  Subsumes
    {!dispatch_key} (which is the first of these); the dispatcher's
    merged decision tree places the handler under all of them.  Each key
    individually satisfies the {!dispatch_key} soundness property. *)

val keys_exact : t -> bool
(** True when the normalized filter is {e nothing but} keyable equality
    conjuncts: any payload presenting all of {!key_conjuncts} is a
    match, so a dispatch path that proved every key may skip the guard
    entirely.  Always false for [True]/[False] (no keys to prove). *)

val context_keys : Pctx.t -> int list
(** The keys a packet context presents, one per demux dimension
    available at the current layer (EtherType from the frame, protocol
    from the parsed IP header, ports once parsed).  Events over [Pctx.t]
    use this as their key extractor. *)

val num_key_dims : int
(** Number of demux dimensions ({!ether_type_key} … {!dst_port_key}
    tags, currently 4) — the scratch-array width for
    {!read_context_keys}. *)

val read_context_keys : Pctx.t -> int array -> unit
(** Allocation-free {!context_keys}: writes slot [d] of the scratch
    array (≥ {!num_key_dims} slots) with the raw value the context
    presents on key dimension [d], or [-1] when absent.  Presents
    exactly the same (dimension, value) pairs as {!context_keys};
    protocol-graph events use this as their vectored key extractor
    so steady-state dispatch allocates nothing. *)

(** {1 Flow demux extraction}

    One shared reader for the demultiplexing fields of a raw frame —
    used by {!context_keys} (EtherType) and by the dispatcher's
    flow-path cache ({!flow_signature}). *)

type demux = {
  dst_mac : int;  (** 48-bit destination MAC, [-1] on a runt frame *)
  ether_type : int;  (** [-1] if the frame is shorter than 14 bytes *)
  ip_proto : int;  (** [-1] unless an intact IPv4 header is present *)
  src_addr : int;
  dst_addr : int;
  src_port : int;  (** [-1] unless a UDP/TCP first fragment *)
  dst_port : int;
  fragment : bool;
      (** IPv4 fragment or non-standard IHL: ports unreadable, flow
          signatures must refuse the frame *)
}

val frame_demux : _ View.t -> demux
(** Read every demux field of a raw frame in one pass. *)

val frame_ether_type : _ View.t -> int
(** The frame's EtherType, or [-1] if it is shorter than a header. *)

val signature_of_demux : demux -> string
(** Pack a demux into a 22-byte flow-signature string (with a presence
    byte, so absent fields cannot collide with real values).  Compared
    by string equality. *)

val flow_signature : Pctx.t -> string option
(** The flow signature of a fresh root context, or [None] when the
    packet cannot be summarized by its demux fields (fragments,
    non-standard IP headers, contexts that already carry parsed layer
    state and therefore are not raw frames).  [None] means the flow-path
    cache must be bypassed for this delivery. *)

val ether_type_key : int -> int
val ip_proto_key : int -> int
val src_port_key : int -> int
val dst_port_key : int -> int
(** Key encodings for managers that install closure guards with a known
    literal (endpoint port, protocol number) rather than a filter. *)

(** {1 Builders} *)

val ether_type_is : int -> t
val ip_proto_is : int -> t
val dst_port_is : int -> t
val src_port_is : int -> t

val pp : Format.formatter -> t -> unit
