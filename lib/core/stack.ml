(* Full Plexus stack assembly on one host: builds the Figure 1 protocol
   graph (device -> {arp, ip} -> {icmp, udp, tcp}), and publishes the
   manager operations as SPIN interface symbols so that application
   extensions can be dynamically linked against a restricted protection
   domain. *)

type t = {
  host : Netsim.Host.t;
  graph : Graph.t;
  ethers : Ether_mgr.t list;
  arps : Arp_mgr.t list;
  ip : Ip_mgr.t;
  icmp : Icmp_mgr.t;
  udp : Udp_mgr.t;
  tcp : Tcp_mgr.t;
  app_domain : Spin.Domain.t;
}

let subnet_of ip = (ip, 24)

let export_interfaces kernel t =
  let open Spin in
  let ether = List.hd t.ethers in
  let i_ether = Kernel.declare_interface kernel Api.ether_iface in
  Interface.export i_ether ~sym:Api.sym_install_handler Api.ether_install_w
    (fun ~owner ~etype ~budget fn ->
      match Ether_mgr.install_ephemeral ether ~owner ~etype ?budget fn with
      | Ok un -> Ok un
      | Error (`Reserved_etype e) ->
          Error (Printf.sprintf "EtherType 0x%04x is reserved" e));
  Interface.export i_ether ~sym:Api.sym_send Api.ether_send_w
    (fun ~dst ~etype pkt -> Ether_mgr.send ether ~dst ~etype pkt);
  let i_udp = Kernel.declare_interface kernel Api.udp_iface in
  Interface.export i_udp ~sym:Api.sym_bind Api.udp_bind_w (fun ~owner ~port ->
      match Udp_mgr.bind t.udp ~owner ~port with
      | Ok ep -> Ok ep
      | Error (`Port_in_use p) -> Error (Printf.sprintf "port %d in use" p));
  Interface.export i_udp ~sym:Api.sym_install_recv Api.udp_install_recv_w
    (fun ep fn -> Udp_mgr.install_recv t.udp ep fn);
  Interface.export i_udp ~sym:Api.sym_install_recv_ephemeral
    Api.udp_install_recv_ephemeral_w (fun ep ~budget fn ->
      Udp_mgr.install_recv_ephemeral t.udp ep ?budget fn);
  Interface.export i_udp ~sym:Api.sym_send Api.udp_send_w
    (fun ep ~dst ~checksum data -> Udp_mgr.send t.udp ep ~checksum ~dst data);
  let conn_ops conn =
    {
      Api.tc_send = (fun data -> Tcp_mgr.send conn data);
      tc_close = (fun () -> Tcp_mgr.close conn);
      tc_set_receive = (fun fn -> Tcp_mgr.on_receive conn fn);
      tc_set_peer_close = (fun fn -> Tcp_mgr.on_peer_close conn fn);
      tc_set_close = (fun fn -> Tcp_mgr.on_close conn fn);
    }
  in
  let i_tcp = Kernel.declare_interface kernel Api.tcp_iface in
  Interface.export i_tcp ~sym:Api.sym_listen Api.tcp_listen_w
    (fun ~owner ~port ~on_accept ->
      match
        Tcp_mgr.listen t.tcp ~owner ~port
          ~on_accept:(fun conn -> on_accept (conn_ops conn))
          ()
      with
      | Ok () -> Ok (fun () -> Tcp_mgr.unlisten t.tcp port)
      | Error (`Port_in_use p) -> Error (Printf.sprintf "port %d in use" p));
  Interface.export i_tcp ~sym:Api.sym_connect Api.tcp_connect_w
    (fun ~owner ~dst ~on_established ->
      match Tcp_mgr.connect t.tcp ~owner ~dst () with
      | Ok conn ->
          Tcp_mgr.on_established conn (fun () -> on_established (conn_ops conn));
          Ok ()
      | Error (`Port_in_use p) -> Error (Printf.sprintf "port %d in use" p)
      | Error `Ephemeral_exhausted -> Error "ephemeral ports exhausted");
  (* "There is also a kernel domain that contains the interface for
     allocating packet buffers (most extensions have access to this
     domain)." *)
  let i_mbuf = Kernel.declare_interface kernel Api.mbuf_iface in
  Interface.export i_mbuf ~sym:Api.sym_alloc Api.mbuf_alloc_w (fun n ->
      Mbuf.alloc n)

(* Build the stack over every device already attached to the host.
   [subnets] gives (network, mask) per device in order; by default each
   device's subnet is the host address's /24. *)
let build ?subnets host =
  let graph = Graph.create host in
  let devs = Netsim.Host.devices host in
  if devs = [] then invalid_arg "Stack.build: host has no devices";
  let subnets =
    match subnets with
    | Some s ->
        if List.length s <> List.length devs then
          invalid_arg "Stack.build: one subnet per device required";
        s
    | None -> List.map (fun _ -> subnet_of (Netsim.Host.ip host)) devs
  in
  let ip = Ip_mgr.create graph in
  let ethers = List.map (fun dev -> Ether_mgr.create graph dev) devs in
  let arps =
    List.map
      (fun e -> Arp_mgr.create graph e ~ip:(Netsim.Host.ip host))
      ethers
  in
  List.iter2
    (fun (e, a) (net, mask_bits) -> Ip_mgr.attach ip e a ~net ~mask_bits)
    (List.combine ethers arps)
    subnets;
  let icmp = Icmp_mgr.create graph ip in
  let udp = Udp_mgr.create graph ip in
  let tcp = Tcp_mgr.create graph ip in
  let kernel = Netsim.Host.kernel host in
  let t =
    {
      host;
      graph;
      ethers;
      arps;
      ip;
      icmp;
      udp;
      tcp;
      app_domain = Spin.Domain.create (Netsim.Host.name host ^ ".app");
    }
  in
  export_interfaces kernel t;
  List.iter
    (fun iname ->
      match Spin.Kernel.find_interface kernel iname with
      | Some i -> Spin.Domain.add t.app_domain i
      | None -> ())
    [ Api.ether_iface; Api.udp_iface; Api.tcp_iface; Api.mbuf_iface ];
  t

let host t = t.host
let graph t = t.graph
let ether t = List.hd t.ethers
let ethers t = t.ethers
let arp t = List.hd t.arps
let arps t = t.arps
let ip t = t.ip
let icmp t = t.icmp
let udp t = t.udp
let tcp t = t.tcp

(* The protection domain handed to untrusted application extensions:
   protocol manager operations and the packet-buffer allocator — no raw
   device or kernel internals. *)
let app_domain t = t.app_domain

let set_delivery t mode = Graph.set_delivery t.graph mode

(* Link an application extension against this stack's restricted domain. *)
let link t ext = Spin.Kernel.link (Netsim.Host.kernel t.host) ~domain:t.app_domain ext

(* A one-stop diagnostics dump: dispatcher, per-layer and per-device
   counters.  Useful after any workload. *)
let report t =
  let b = Buffer.create 512 in
  let disp = Spin.Kernel.dispatcher (Netsim.Host.kernel t.host) in
  Buffer.add_string b
    (Printf.sprintf "[%s] dispatcher: raises=%d guards=%d invocations=%d terminations=%d faults=%d\n"
       (Netsim.Host.name t.host)
       (Spin.Dispatcher.raises disp)
       (Spin.Dispatcher.guard_evals disp)
       (Spin.Dispatcher.invocations disp)
       (Spin.Dispatcher.terminations disp)
       (Spin.Dispatcher.faults disp));
  let ic = Ip_mgr.counters t.ip in
  Buffer.add_string b
    (Printf.sprintf
       "  ip: rx=%d delivered=%d bad_cksum=%d not_ours=%d frags_out=%d reassembled=%d\n"
       ic.Ip_mgr.rx ic.Ip_mgr.delivered ic.Ip_mgr.bad_checksum
       ic.Ip_mgr.not_ours ic.Ip_mgr.fragments_out ic.Ip_mgr.reassembled);
  let uc = Udp_mgr.counters t.udp in
  Buffer.add_string b
    (Printf.sprintf
       "  udp: rx=%d delivered=%d tx=%d bad_cksum=%d no_port=%d unreachable=%d\n"
       uc.Udp_mgr.rx uc.Udp_mgr.delivered uc.Udp_mgr.tx uc.Udp_mgr.bad_checksum
       uc.Udp_mgr.no_port uc.Udp_mgr.unreachable_sent);
  let tcpc = Tcp_mgr.counters t.tcp in
  Buffer.add_string b
    (Printf.sprintf "  tcp: rx=%d accepted=%d no_match=%d bad_cksum=%d\n"
       tcpc.Tcp_mgr.rx tcpc.Tcp_mgr.accepted tcpc.Tcp_mgr.no_match
       tcpc.Tcp_mgr.bad_checksum);
  List.iter
    (fun e ->
      let dev = Ether_mgr.dev e in
      let c = Netsim.Dev.counters dev in
      Buffer.add_string b
        (Printf.sprintf
           "  %s: tx=%d/%dB rx=%d/%dB drops(tx=%d rx=%d wire=%d)\n"
           (Netsim.Dev.name dev) c.Netsim.Dev.tx_packets c.Netsim.Dev.tx_bytes
           c.Netsim.Dev.rx_packets c.Netsim.Dev.rx_bytes c.Netsim.Dev.tx_drops
           c.Netsim.Dev.rx_drops c.Netsim.Dev.wire_drops))
    t.ethers;
  Buffer.contents b

(* Prime both ends' ARP caches — experiments measure steady state. *)
let prime_arp a b =
  List.iter2
    (fun arp_a eth_b ->
      Arp_mgr.prime arp_a (Netsim.Host.ip (Graph.host b.graph))
        (Ether_mgr.mac eth_b))
    [ List.hd a.arps ]
    [ List.hd b.ethers ];
  List.iter2
    (fun arp_b eth_a ->
      Arp_mgr.prime arp_b (Netsim.Host.ip (Graph.host a.graph))
        (Ether_mgr.mac eth_a))
    [ List.hd b.arps ]
    [ List.hd a.ethers ]
