(* The IP protocol manager: validates and demultiplexes incoming
   datagrams (reassembling fragments), and provides the send path used by
   the transport managers — including fragmentation to the device MTU. *)

type route = {
  net : Proto.Ipaddr.t;
  mask_bits : int;
  ether : Ether_mgr.t;
  arp : Arp_mgr.t;
}

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable not_ours : int;
  mutable delivered : int;
  mutable fragments_out : int;
  mutable reassembled : int;
}

type t = {
  graph : Graph.t;
  node : Graph.node;
  host : Netsim.Host.t;
  costs : Netsim.Costs.t;
  mutable routes : route list;
  frag : Proto.Ip_frag.t;
  mutable frag_timer : Sim.Engine.handle option;
  mutable next_id : int;
  counters : counters;
}

let create graph =
  let host = Graph.host graph in
  {
    graph;
    node = Graph.node graph "ip";
    host;
    costs = Netsim.Host.costs host;
    routes = [];
    frag = Proto.Ip_frag.create ();
    frag_timer = None;
    next_id = 1;
    counters =
      {
        rx = 0;
        bad_checksum = 0;
        not_ours = 0;
        delivered = 0;
        fragments_out = 0;
        reassembled = 0;
      };
  }

let node t = t.node
let counters t = t.counters
let host_ip t = Netsim.Host.ip t.host

let engine t = Netsim.Host.engine t.host
let cpu t = Netsim.Host.cpu t.host

let raise_recv t ctx = Spin.Dispatcher.raise (Graph.recv_event t.node) ctx

let frag_state t = t.frag

(* Scheduled reassembly expiry.  [Ip_frag.input] only expires lazily —
   when *another* fragment arrives — so under loss a half-delivered
   fragment train would pin its chunk buffers forever.  A one-shot timer
   armed at the earliest pending deadline bounds that: it fires, expires
   what is stale, and re-arms only while reassemblies remain pending.
   It is cancelled the moment nothing is pending — never a standing
   tick, which would keep the event-driven engine from draining (or
   stretch every fragmented run out to the 30 s reassembly timeout). *)
let rec ensure_frag_timer t =
  if t.frag_timer = None then
    match Proto.Ip_frag.next_deadline t.frag with
    | None -> ()
    | Some deadline ->
        let now = Sim.Engine.now (engine t) in
        (* [expire] drops contexts strictly past their deadline; fire
           1 ns after it. *)
        let delay =
          if Sim.Stime.compare deadline now > 0 then
            Sim.Stime.add (Sim.Stime.sub deadline now) (Sim.Stime.ns 1)
          else Sim.Stime.ns 1
        in
        t.frag_timer <-
          Some
            (Sim.Engine.schedule_in (engine t) ~delay (fun () ->
                 t.frag_timer <- None;
                 let (_ : int) =
                   Proto.Ip_frag.expire t.frag
                     ~now:(Sim.Engine.now (engine t))
                 in
                 ensure_frag_timer t))

let settle_frag_timer t =
  if Proto.Ip_frag.pending_count t.frag = 0 then (
    match t.frag_timer with
    | Some h ->
        Sim.Engine.cancel h;
        t.frag_timer <- None
    | None -> ())
  else ensure_frag_timer t

(* Receive path: one handler per attached device, installed on the
   device node's event with an EtherType+address guard. *)
let rx t ctx =
  t.counters.rx <- t.counters.rx + 1;
  let v = View.shift (Pctx.view ctx) Proto.Ether.header_len in
  match Proto.Ipv4.parse v with
  | None -> t.counters.bad_checksum <- t.counters.bad_checksum + 1
  | Some h ->
      if not (Proto.Ipv4.checksum_valid v) then
        t.counters.bad_checksum <- t.counters.bad_checksum + 1
      else if
        not
          (Proto.Ipaddr.equal h.Proto.Ipv4.dst (host_ip t)
          || Proto.Ipaddr.equal h.Proto.Ipv4.dst Proto.Ipaddr.broadcast)
      then t.counters.not_ours <- t.counters.not_ours + 1
      else begin
        let l2 = Proto.Ether.parse (Pctx.view ctx) in
        let ctx = match l2 with Some h2 -> Pctx.with_l2 ctx h2 | None -> ctx in
        if h.Proto.Ipv4.more_fragments || h.Proto.Ipv4.frag_offset > 0 then begin
          let payload =
            View.sub v ~off:Proto.Ipv4.header_len
              ~len:(h.Proto.Ipv4.total_len - Proto.Ipv4.header_len)
          in
          match
            Proto.Ip_frag.input t.frag ~now:(Sim.Engine.now (engine t)) h payload
          with
          | None -> ensure_frag_timer t
          | Some datagram ->
              settle_frag_timer t;
              t.counters.reassembled <- t.counters.reassembled + 1;
              t.counters.delivered <- t.counters.delivered + 1;
              let pkt = Mbuf.ro datagram in
              let h = { h with Proto.Ipv4.more_fragments = false; frag_offset = 0 } in
              raise_recv t (Pctx.with_ip (Pctx.with_payload ctx pkt) h)
        end
        else begin
          t.counters.delivered <- t.counters.delivered + 1;
          let ctx =
            Pctx.advance ctx (Proto.Ether.header_len + Proto.Ipv4.header_len)
          in
          (* strip link-layer padding below the IP total length *)
          let l4_len = h.Proto.Ipv4.total_len - Proto.Ipv4.header_len in
          let ctx =
            if Pctx.payload_len ctx > l4_len then Pctx.with_limit ctx l4_len
            else ctx
          in
          raise_recv t (Pctx.with_ip ctx h)
        end
      end

let mac_guard dev ctx =
  match Proto.Ether.parse (Pctx.view ctx) with
  | None -> false
  | Some h ->
      Proto.Ether.Mac.equal h.Proto.Ether.dst (Netsim.Dev.mac dev)
      || Proto.Ether.Mac.equal h.Proto.Ether.dst Proto.Ether.Mac.broadcast

let attach t ether arp ~net ~mask_bits =
  t.routes <- t.routes @ [ { net; mask_bits; ether; arp } ];
  let guard ctx =
    Ether_mgr.etype_guard Proto.Ether.etype_ip ctx
    && mac_guard (Ether_mgr.dev ether) ctx
  in
  (* Cacheable: the guard reads only the EtherType and destination MAC,
     both part of the flow signature. *)
  let (_ : unit -> unit) =
    Ether_mgr.install_protocol ether ~child:"ip" ~guard
      ~key:(Filter.ether_type_key Proto.Ether.etype_ip)
      ~cacheable:true ~cost:t.costs.Netsim.Costs.layer.ip_in (rx t)
  in
  ()

let route_for t dst =
  match
    List.find_opt
      (fun r -> Proto.Ipaddr.in_subnet dst ~net:r.net ~mask_bits:r.mask_bits)
      t.routes
  with
  | Some r -> Some r
  | None -> ( match t.routes with r :: _ -> Some r | [] -> None)

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (t.next_id + 1) land 0xffff;
  id

(* Send one already-formed IP packet out the right device. *)
let emit _t route ~prio ~dst pkt =
  Arp_mgr.resolve route.arp dst (fun mac ->
      Ether_mgr.send route.ether ~prio ~dst:mac ~etype:Proto.Ether.etype_ip pkt)

(* Transport send path: encapsulate [payload] for [proto], fragmenting to
   the route's MTU when necessary.  The source address is always the
   host's — transports cannot spoof it. *)
let send t ?prio:p ~proto ~dst payload =
  match route_for t dst with
  | None -> invalid_arg "Ip_mgr.send: no route"
  | Some route ->
      let prio = match p with Some p -> p | None -> Ether_mgr.prio route.ether in
      let mtu = Ether_mgr.mtu route.ether in
      let len = Mbuf.length payload in
      let src = host_ip t in
      if len + Proto.Ipv4.header_len <= mtu then begin
        Sim.Cpu.run (cpu t) ~prio ~cost:t.costs.Netsim.Costs.layer.ip_out
          (fun () ->
            Proto.Ipv4.encapsulate payload
              (Proto.Ipv4.make ~id:(fresh_id t) ~proto ~src ~dst
                 ~payload_len:len ());
            emit t route ~prio ~dst payload)
      end
      else begin
        let id = fresh_id t in
        (* zero-copy: fragments are sub-chains sharing the payload's
           buffers; only the per-fragment headers are fresh bytes *)
        let frags = Proto.Ip_frag.fragment ~mtu payload in
        let n = List.length frags in
        t.counters.fragments_out <- t.counters.fragments_out + n;
        Sim.Cpu.run (cpu t) ~prio
          ~cost:(Sim.Stime.mul t.costs.Netsim.Costs.layer.ip_out n)
          (fun () ->
            List.iter
              (fun (off8, more, fragment) ->
                let frag_len = Mbuf.length fragment in
                Proto.Ipv4.encapsulate fragment
                  (Proto.Ipv4.make ~id ~more_fragments:more ~frag_offset:off8
                     ~proto ~src ~dst ~payload_len:frag_len ());
                emit t route ~prio ~dst fragment)
              frags)
      end

(* Whether sending toward [dst] goes out a programmed-I/O device (the
   send-side integrated-layer-processing query). *)
let dst_touches_data t dst =
  match route_for t dst with
  | Some route -> Ether_mgr.touches_data route.ether
  | None -> false

(* Privileged: transmit a complete IP datagram (header included) toward
   [dst] without rewriting its source — granted only to the in-kernel
   forwarder (paper section 5.2), which redirects other hosts' packets. *)
let send_prepared t ?prio:p ~dst pkt =
  match route_for t dst with
  | None -> invalid_arg "Ip_mgr.send_prepared: no route"
  | Some route ->
      let prio = match p with Some p -> p | None -> Ether_mgr.prio route.ether in
      Sim.Cpu.run (cpu t) ~prio ~cost:t.costs.Netsim.Costs.layer.ip_out
        (fun () -> emit t route ~prio ~dst pkt)
