(* The TCP protocol manager.

   Wires the shared TCP engine (Proto.Tcp — the same engine the DIGITAL
   UNIX model runs) into the protocol graph: one guarded handler on
   ip.PacketRecv demultiplexes segments to connections; the engine's
   environment charges Plexus costs and transmits through the IP manager.

   Multiple implementations of one protocol (paper section 3.1) are
   supported the way the paper describes: this manager's guard can be
   told to *exclude* a set of ports, and an alternative implementation
   installs its own guarded handler claiming exactly those ports. *)

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable no_match : int;
  mutable accepted : int;
  mutable eph_exhausted : int;
}

type conn = {
  mgr : t;
  ep : Endpoint.t;
  tcp : Proto.Tcp.t;
  mutable key : (int * int * int) option; (* remote ip, remote port, local port *)
  mutable owns_port : bool; (* explicit src_port bind, released on close *)
  mutable user_rx : string -> unit;
  mutable user_established : unit -> unit;
  mutable user_peer_close : unit -> unit;
  mutable user_close : unit -> unit;
  mutable user_error : string -> unit;
}

and listener = {
  l_port : int;
  l_owner : string;
  l_cfg : Proto.Tcp.config;
  on_accept : conn -> unit;
}

and t = {
  graph : Graph.t;
  ip : Ip_mgr.t;
  node : Graph.node;
  costs : Netsim.Costs.t;
  engine : Sim.Engine.t;
  conns : (int * int * int, conn) Spin.Sharded.Table.t;
  listeners : (int, listener) Hashtbl.t;
  bound : (int, int) Hashtbl.t;      (* port -> live bind refcount
                                        (listeners and explicit connects) *)
  mutable excluded : int list;       (* dst ports ceded to an alternative impl *)
  mutable excluded_src : int list;   (* src ports ceded (reverse direction) *)
  mutable next_ephemeral : int;
  counters : counters;
}

let bind_port t p =
  Hashtbl.replace t.bound p
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.bound p))

let release_port t p =
  match Hashtbl.find_opt t.bound p with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove t.bound p
  | Some n -> Hashtbl.replace t.bound p (n - 1)

let port_bound t p = Hashtbl.mem t.bound p

let cpu t = Netsim.Host.cpu (Graph.host t.graph)

let prio t =
  match Spin.Dispatcher.mode (Graph.recv_event t.node) with
  | Spin.Dispatcher.Interrupt -> Sim.Cpu.Interrupt
  | Spin.Dispatcher.Thread -> Sim.Cpu.Thread

let proto_guard t ctx =
  match ctx.Pctx.ip with
  | Some h ->
      h.Proto.Ipv4.proto = Proto.Ipv4.proto_tcp
      && ((t.excluded = [] && t.excluded_src = [])
         ||
         let v = Pctx.view ctx in
         View.length v >= 4
         && (not (List.mem (View.get_u16 v 2) t.excluded))
         && not (List.mem (View.get_u16 v 0) t.excluded_src))
  | None -> false

(* Build the environment a connection's engine runs in: costs are charged
   on the host CPU at the graph's delivery priority, output goes through
   the IP manager. *)
let make_env t conn_ref remote_ip_ref =
  {
    Proto.Tcp.now = (fun () -> Sim.Engine.now t.engine);
    set_timer =
      (fun delay fn ->
        let h = Sim.Engine.schedule_in t.engine ~delay fn in
        fun () -> Sim.Engine.cancel h);
    tx =
      (fun pkt ->
        let len = Mbuf.length pkt in
        let cksum =
          if Ip_mgr.dst_touches_data t.ip !remote_ip_ref then Sim.Stime.zero
          else
            Netsim.Costs.per_byte t.costs.Netsim.Costs.layer.cksum_ns_per_byte
              len
        in
        let cost = Sim.Stime.add t.costs.Netsim.Costs.layer.tcp_out cksum in
        let prio = prio t in
        Sim.Cpu.run (cpu t) ~prio ~cost (fun () ->
            Ip_mgr.send t.ip ~prio ~proto:Proto.Ipv4.proto_tcp ~dst:!remote_ip_ref
              pkt));
    on_receive =
      (fun data ->
        match !conn_ref with
        | Some c ->
            Sim.Cpu.run (cpu t) ~prio:(prio t)
              ~cost:t.costs.Netsim.Costs.layer.app (fun () -> c.user_rx data)
        | None -> ());
    on_established =
      (fun () -> match !conn_ref with Some c -> c.user_established () | None -> ());
    on_peer_close =
      (* routed through the CPU queue so EOF cannot overtake data that is
         still being delivered *)
      (fun () ->
        Sim.Cpu.run (cpu t) ~prio:(prio t) ~cost:Sim.Stime.zero (fun () ->
            match !conn_ref with Some c -> c.user_peer_close () | None -> ()));
    on_close =
      (fun () ->
        (match !conn_ref with
        | Some c ->
            (match c.key with
            | Some k -> Spin.Sharded.Table.remove t.conns k
            | None -> ());
            if c.owns_port then begin
              c.owns_port <- false;
              release_port t (Endpoint.port c.ep)
            end
        | None -> ());
        Sim.Cpu.run (cpu t) ~prio:(prio t) ~cost:Sim.Stime.zero (fun () ->
            match !conn_ref with Some c -> c.user_close () | None -> ()));
    on_error =
      (fun msg -> match !conn_ref with Some c -> c.user_error msg | None -> ());
  }

let make_conn t ~owner ~cfg ~local_port =
  let conn_ref = ref None in
  let remote_ip_ref = ref Proto.Ipaddr.any in
  let env = make_env t conn_ref remote_ip_ref in
  let tcp = Proto.Tcp.create env cfg ~local:(Ip_mgr.host_ip t.ip, local_port) in
  let conn =
    {
      mgr = t;
      ep =
        Endpoint.make ~proto:Endpoint.Tcp ~ip:(Ip_mgr.host_ip t.ip)
          ~port:local_port ~owner;
      tcp;
      key = None;
      owns_port = false;
      user_rx = ignore;
      user_established = ignore;
      user_peer_close = ignore;
      user_close = ignore;
      user_error = ignore;
    }
  in
  conn_ref := Some conn;
  (conn, remote_ip_ref)

let register t conn ~remote:(rip, rport) remote_ip_ref =
  remote_ip_ref := rip;
  let key = (Proto.Ipaddr.to_int rip, rport, Endpoint.port conn.ep) in
  conn.key <- Some key;
  Spin.Sharded.Table.replace t.conns key conn

let fresh_iss t =
  Proto.Tcp_wire.Seq.of_int (Sim.Rng.int (Sim.Engine.rng t.engine) 0x0fffffff)

let drop_span graph ~reason =
  let tr = Graph.trace graph in
  if Observe.Trace.active tr then
    Observe.Trace.emit tr
      {
        Observe.Trace.at_ns =
          Sim.Stime.to_ns (Spin.Kernel.now (Graph.kernel graph));
        event = Observe.Trace.Drop { scope = "tcp"; reason };
      }

let rx t ctx =
  t.counters.rx <- t.counters.rx + 1;
  let v = Pctx.view ctx in
  match Proto.Tcp_wire.parse v with
  | None -> t.counters.no_match <- t.counters.no_match + 1
  | Some (h, _) ->
      let iph = Pctx.ip_exn ctx in
      (* Verify before demultiplexing: the engine re-checks established
         connections, but a corrupted segment must never select a
         connection by its (possibly corrupted) ports, and a corrupted
         SYN must never reach a listener (the engine skips verification
         in Listen, where the peer address is not yet known).  The
         dyncost on the install already charges for this pass. *)
      if
        not
          (Proto.Tcp_wire.valid ~src:iph.Proto.Ipv4.src ~dst:iph.Proto.Ipv4.dst
             v)
      then begin
        t.counters.bad_checksum <- t.counters.bad_checksum + 1;
        drop_span t.graph ~reason:"bad_checksum"
      end
      else
      let key =
        ( Proto.Ipaddr.to_int iph.Proto.Ipv4.src,
          h.Proto.Tcp_wire.src_port,
          h.Proto.Tcp_wire.dst_port )
      in
      (match Spin.Sharded.Table.find_opt t.conns key with
      | Some conn -> Proto.Tcp.input conn.tcp v
      | None -> (
          match Hashtbl.find_opt t.listeners h.Proto.Tcp_wire.dst_port with
          | Some l
            when Proto.Tcp_wire.Flags.test h.Proto.Tcp_wire.flags
                   Proto.Tcp_wire.Flags.syn ->
              t.counters.accepted <- t.counters.accepted + 1;
              let conn, rref = make_conn t ~owner:l.l_owner ~cfg:l.l_cfg ~local_port:l.l_port in
              let remote = (iph.Proto.Ipv4.src, h.Proto.Tcp_wire.src_port) in
              register t conn ~remote rref;
              Proto.Tcp.set_remote conn.tcp ~remote;
              Proto.Tcp.set_iss conn.tcp (fresh_iss t);
              Proto.Tcp.listen conn.tcp;
              l.on_accept conn;
              Proto.Tcp.input conn.tcp v
          | _ -> t.counters.no_match <- t.counters.no_match + 1))

let ephemeral_lo = 32768
let ephemeral_hi = 60999

let create graph ip =
  let costs = Netsim.Host.costs (Graph.host graph) in
  let t =
    {
      graph;
      ip;
      node = Graph.node graph "tcp";
      costs;
      engine = Netsim.Host.engine (Graph.host graph);
      conns = Spin.Sharded.Table.create ~shards:16 ~hash:Hashtbl.hash ();
      listeners = Hashtbl.create 8;
      bound = Hashtbl.create 8;
      excluded = [];
      excluded_src = [];
      next_ephemeral = ephemeral_lo;
      counters =
        { rx = 0; bad_checksum = 0; no_match = 0; accepted = 0;
          eph_exhausted = 0 };
    }
  in
  let reg = Graph.registry graph in
  Observe.Registry.gauge reg "tcp.conns.occupancy" (fun () ->
      Spin.Sharded.Table.length t.conns);
  Observe.Registry.gauge reg "tcp.conns.max_shard" (fun () ->
      Spin.Sharded.Table.max_shard_size t.conns);
  Observe.Registry.gauge reg "tcp.ephemeral.exhausted" (fun () ->
      t.counters.eph_exhausted);
  Graph.add_edge graph ~parent:(Ip_mgr.node ip) ~child:"tcp" ~label:"proto=6";
  let (_ : unit -> unit) =
    Spin.Dispatcher.install
      (Graph.recv_event (Ip_mgr.node ip))
      ~guard:(proto_guard t)
      ~key:(Filter.ip_proto_key Proto.Ipv4.proto_tcp)
      (* cacheable: the guard reads the protocol number and ports
         (flow-signature fields) plus the excluded lists — changing those
         touches the event's generation below *)
      ~cacheable:true ~label:"tcp" ~cost:costs.Netsim.Costs.layer.tcp_in
      ~dyncost:(fun ctx ->
        if Pctx.data_touched_by_device ctx then Sim.Stime.zero
        else
          Netsim.Costs.per_byte costs.Netsim.Costs.layer.cksum_ns_per_byte
            (Pctx.payload_len ctx))
      (rx t)
  in
  t

let node t = t.node
let counters t = t.counters

(* The guard reads these mutable lists, so changing them invalidates any
   cached flow paths through the IP event. *)
let exclude_ports t ports =
  t.excluded <- ports;
  Spin.Dispatcher.touch (Graph.recv_event (Ip_mgr.node t.ip))

let exclude_src_ports t ports =
  t.excluded_src <- ports;
  Spin.Dispatcher.touch (Graph.recv_event (Ip_mgr.node t.ip))

type error = [ `Port_in_use of int | `Ephemeral_exhausted ]

let listen t ~owner ~port ?(cfg = Proto.Tcp.default_config ()) ~on_accept () =
  if Hashtbl.mem t.listeners port || port_bound t port then
    Error (`Port_in_use port)
  else begin
    Hashtbl.replace t.listeners port { l_port = port; l_owner = owner; l_cfg = cfg; on_accept };
    bind_port t port;
    Graph.add_edge t.graph ~parent:t.node ~child:owner
      ~label:(Printf.sprintf "listen:%d" port);
    Ok ()
  end

let unlisten t port =
  if Hashtbl.mem t.listeners port then begin
    Hashtbl.remove t.listeners port;
    release_port t port
  end

(* Ephemeral allocation is per (remote ip, remote port): a local port is
   only skipped while a live connection to the *same* remote endpoint
   holds it (or an explicit bind owns it), so distinct destinations can
   reuse local ports and the usable connection space scales with the
   number of servers, not the 28k-port range.  A full sweep of the range
   without a free port is surfaced to the caller and counted. *)
let alloc_ephemeral t ~dst:(dip, dport) =
  let dip = Proto.Ipaddr.to_int dip in
  let range = ephemeral_hi - ephemeral_lo + 1 in
  let rec scan tried p =
    if tried >= range then None
    else
      let next = if p >= ephemeral_hi then ephemeral_lo else p + 1 in
      if port_bound t p || Spin.Sharded.Table.mem t.conns (dip, dport, p) then
        scan (tried + 1) next
      else begin
        t.next_ephemeral <- next;
        Some p
      end
  in
  scan 0 t.next_ephemeral

let connect t ~owner ?src_port ~dst ?(cfg = Proto.Tcp.default_config ()) () =
  let dst_ip, dst_port = dst in
  let start conn rref port_owned =
    conn.owns_port <- port_owned;
    register t conn ~remote:dst rref;
    Proto.Tcp.connect conn.tcp ~remote:dst ~iss:(fresh_iss t);
    Ok conn
  in
  match src_port with
  | Some port ->
      if
        port_bound t port
        || Hashtbl.mem t.listeners port
        || Spin.Sharded.Table.mem t.conns
             (Proto.Ipaddr.to_int dst_ip, dst_port, port)
      then Error (`Port_in_use port)
      else begin
        bind_port t port;
        let conn, rref = make_conn t ~owner ~cfg ~local_port:port in
        start conn rref true
      end
  | None -> (
      match alloc_ephemeral t ~dst with
      | None ->
          t.counters.eph_exhausted <- t.counters.eph_exhausted + 1;
          Error `Ephemeral_exhausted
      | Some port ->
          let conn, rref = make_conn t ~owner ~cfg ~local_port:port in
          start conn rref false)

(* Connection operations, charged like any application-initiated kernel
   work. *)
let send conn data = Proto.Tcp.send conn.tcp data
let close conn = Proto.Tcp.close conn.tcp
let abort conn = Proto.Tcp.abort conn.tcp
let tcp conn = conn.tcp
let endpoint conn = conn.ep
let conn_state conn = Proto.Tcp.state conn.tcp

let on_receive conn fn = conn.user_rx <- fn
let on_established conn fn = conn.user_established <- fn
let on_peer_close conn fn = conn.user_peer_close <- fn
let on_close conn fn = conn.user_close <- fn
let on_error conn fn = conn.user_error <- fn
