(* The UDP protocol manager.

   Demultiplexing follows the paper's Figure 1 exactly: the manager
   installs a guarded handler on ip.PacketRecv (guard: protocol number),
   validates the datagram, then raises udp.PacketRecv where per-endpoint
   guards (destination port) route packets to application handlers.

   Protection policy (section 3.1): applications never install handlers
   directly — they ask the manager, which derives the guard from the
   endpoint it minted at [bind] time, so a handler can only see packets
   addressed to its own port (no snooping).  On output the datagram's
   source fields come from the endpoint (no spoofing); [set_spoof_policy]
   selects between the overwrite and verify strategies the paper
   describes, overwrite being the fast default. *)

type spoof_policy = Overwrite | Verify

type error = [ `Port_in_use of int ]

type counters = {
  mutable rx : int;
  mutable bad_checksum : int;
  mutable no_port : int;
  mutable delivered : int;
  mutable tx : int;
  mutable spoof_rejected : int;
  mutable unreachable_sent : int;
}

type t = {
  graph : Graph.t;
  ip : Ip_mgr.t;
  node : Graph.node;
  costs : Netsim.Costs.t;
  binds : (int, Endpoint.t) Spin.Sharded.Table.t;
  counters : counters;
  mutable spoof_policy : spoof_policy;
  mutable excluded : int list; (* dst ports ceded to an alternative impl *)
}

let proto_guard t ctx =
  match ctx.Pctx.ip with
  | Some h ->
      h.Proto.Ipv4.proto = Proto.Ipv4.proto_udp
      && (t.excluded = []
         ||
         let v = Pctx.view ctx in
         View.length v < 4 || not (List.mem (View.get_u16 v 2) t.excluded))
  | None -> false

(* Flight-recorder terminal stages: a sampled packet's timeline ends
   here, with end-to-end latency from ingress as the stage duration. *)
let flight_finish graph ctx stage =
  let fl = Graph.flight graph in
  if Observe.Flight.enabled fl then begin
    let pkt = Mbuf.mark ctx.Pctx.pkt in
    if pkt > 0 then begin
      let at_ns = Sim.Stime.to_ns (Spin.Kernel.now (Graph.kernel graph)) in
      Observe.Flight.note fl ~pkt ~at_ns
        ~dur_ns:(Observe.Flight.since_ingress fl ~pkt ~at_ns)
        stage;
      Observe.Flight.finish fl ~pkt
    end
  end

let drop_span graph ctx ~reason =
  let tr = Graph.trace graph in
  if Observe.Trace.active tr then
    Observe.Trace.emit tr
      {
        Observe.Trace.at_ns =
          Sim.Stime.to_ns (Spin.Kernel.now (Graph.kernel graph));
        event = Observe.Trace.Drop { scope = "udp"; reason };
      };
  flight_finish graph ctx (Observe.Flight.Drop { scope = "udp"; reason })

let create graph ip =
  let costs = Netsim.Host.costs (Graph.host graph) in
  let t =
    {
      graph;
      ip;
      node = Graph.node graph "udp";
      costs;
      binds = Spin.Sharded.Table.create ~shards:16 ~hash:Hashtbl.hash ();
      counters =
        {
          rx = 0;
          bad_checksum = 0;
          no_port = 0;
          delivered = 0;
          tx = 0;
          spoof_rejected = 0;
          unreachable_sent = 0;
        };
      spoof_policy = Overwrite;
      excluded = [];
    }
  in
  let reg = Graph.registry graph in
  Observe.Registry.gauge reg "udp.binds.occupancy" (fun () ->
      Spin.Sharded.Table.length t.binds);
  Observe.Registry.gauge reg "udp.binds.max_shard" (fun () ->
      Spin.Sharded.Table.max_shard_size t.binds);
  Graph.add_edge graph ~parent:(Ip_mgr.node ip) ~child:"udp" ~label:"proto=17";
  let handle ctx =
    t.counters.rx <- t.counters.rx + 1;
    let v = Pctx.view ctx in
    let iph = Pctx.ip_exn ctx in
    if not (Proto.Udp.valid ~src:iph.Proto.Ipv4.src ~dst:iph.Proto.Ipv4.dst v)
    then begin
      t.counters.bad_checksum <- t.counters.bad_checksum + 1;
      drop_span graph ctx ~reason:"bad_checksum"
    end
    else begin
      match Proto.Udp.parse v with
      | None ->
          t.counters.bad_checksum <- t.counters.bad_checksum + 1;
          drop_span graph ctx ~reason:"bad_checksum"
      | Some h ->
          let ctx =
            Pctx.with_ports
              (Pctx.advance ctx Proto.Udp.header_len)
              ~src_port:h.Proto.Udp.src_port ~dst_port:h.Proto.Udp.dst_port
          in
          if Spin.Sharded.Table.mem t.binds h.Proto.Udp.dst_port then begin
            t.counters.delivered <- t.counters.delivered + 1;
            flight_finish graph ctx
              (Observe.Flight.Deliver
                 {
                   scope =
                     Printf.sprintf "udp:%d" h.Proto.Udp.dst_port;
                 });
            Spin.Dispatcher.raise (Graph.recv_event t.node) ctx
          end
          else begin
            t.counters.no_port <- t.counters.no_port + 1;
            drop_span graph ctx ~reason:"no_port";
            (* BSD behaviour: answer with an ICMP port unreachable *)
            t.counters.unreachable_sent <- t.counters.unreachable_sent + 1;
            let original = View.to_string v in
            let iph = Pctx.ip_exn ctx in
            Ip_mgr.send t.ip ~proto:Proto.Ipv4.proto_icmp
              ~dst:iph.Proto.Ipv4.src
              (Proto.Icmp.to_packet (Proto.Icmp.port_unreachable ~original))
          end
    end
  in
  let (_ : unit -> unit) =
    Spin.Dispatcher.install
      (Graph.recv_event (Ip_mgr.node ip))
      ~guard:(fun ctx -> proto_guard t ctx)
      ~key:(Filter.ip_proto_key Proto.Ipv4.proto_udp)
      (* cacheable: the guard reads the IP protocol number and UDP ports
         (flow-signature fields) plus [t.excluded] — [exclude_ports]
         touches the event's generation when that list changes *)
      ~cacheable:true ~label:"udp" ~cost:costs.Netsim.Costs.layer.udp_in
      ~dyncost:(fun ctx ->
        (* checksum verification touches the payload — unless the PIO
           device already did (integrated layer processing) *)
        if Pctx.data_touched_by_device ctx then Sim.Stime.zero
        else
          Netsim.Costs.per_byte costs.Netsim.Costs.layer.cksum_ns_per_byte
            (Pctx.payload_len ctx))
      handle
  in
  t

let node t = t.node
let counters t = t.counters
let set_spoof_policy t p = t.spoof_policy <- p

(* Multiple implementations of UDP (paper section 3.1): this manager's
   guard stops matching the given destination ports, ceding them to an
   alternative implementation's own guarded handler on ip.PacketRecv.
   The guard reads this mutable list, so changing it must invalidate any
   cached flow paths through the IP event. *)
let exclude_ports t ports =
  t.excluded <- ports;
  Spin.Dispatcher.touch (Graph.recv_event (Ip_mgr.node t.ip))

let bind t ~owner ~port =
  if Spin.Sharded.Table.mem t.binds port then Error (`Port_in_use port)
  else begin
    let ep =
      Endpoint.make ~proto:Endpoint.Udp ~ip:(Ip_mgr.host_ip t.ip) ~port ~owner
    in
    Spin.Sharded.Table.replace t.binds port ep;
    Ok ep
  end

let unbind t ep = Spin.Sharded.Table.remove t.binds (Endpoint.port ep)

let port_guard ep ctx = ctx.Pctx.dst_port = Endpoint.port ep

(* Attach an application receive handler for an endpoint.  The guard the
   manager installs is derived from the endpoint — the application cannot
   broaden it.  The endpoint's port doubles as the handler's dispatch
   key, so a raise only evaluates the guards bound to the datagram's own
   destination port. *)
let install_recv t ep ?cost fn =
  let cost = match cost with Some c -> c | None -> t.costs.Netsim.Costs.layer.app in
  Graph.add_edge t.graph ~parent:t.node
    ~child:(Endpoint.owner ep)
    ~label:(Printf.sprintf "port=%d" (Endpoint.port ep));
  Spin.Dispatcher.install (Graph.recv_event t.node) ~guard:(port_guard ep)
    ~key:(Filter.dst_port_key (Endpoint.port ep))
    ~exact:true ~cacheable:true ~label:(Endpoint.owner ep) ~cost fn

(* The same handler without a dispatch key: every raise scans its guard
   linearly.  Exists for the guard-scaling ablation — this is what every
   install was before the demux index. *)
let install_recv_linear t ep ?cost fn =
  let cost = match cost with Some c -> c | None -> t.costs.Netsim.Costs.layer.app in
  Graph.add_edge t.graph ~parent:t.node
    ~child:(Endpoint.owner ep)
    ~label:(Printf.sprintf "port=%d(linear)" (Endpoint.port ep));
  Spin.Dispatcher.install (Graph.recv_event t.node) ~guard:(port_guard ep)
    ~cacheable:true ~label:(Endpoint.owner ep) ~cost fn

(* Receive handler demultiplexed by an *interpreted* packet filter
   (see Filter): the manager conjoins the endpoint's port guard — the
   application cannot broaden its visibility — and charges the filter's
   interpretation cost on every arriving datagram. *)
let install_recv_filtered t ep filter ?cost fn =
  let cost = match cost with Some c -> c | None -> t.costs.Netsim.Costs.layer.app in
  Graph.add_edge t.graph ~parent:t.node
    ~child:(Endpoint.owner ep)
    ~label:(Fmt.str "port=%d filter=%a" (Endpoint.port ep) Filter.pp filter);
  let full = Filter.And (Filter.dst_port_is (Endpoint.port ep), filter) in
  Spin.Dispatcher.install (Graph.recv_event t.node)
    ~guard:(fun ctx -> port_guard ep ctx && Filter.eval filter ctx)
    ~key:(Filter.dst_port_key (Endpoint.port ep))
    ~keys:(Filter.key_conjuncts filter)
    ~exact:(Filter.keys_exact full)
    ~label:(Endpoint.owner ep) ~gcost:(Filter.eval_cost filter) ~cost fn

(* The filtered install with the filter *compiled* instead of
   interpreted: same delivery semantics (run ≡ eval), but the per-packet
   gcost drops from [eval_cost] to [compiled_cost]. *)
let install_recv_compiled t ep filter ?cost fn =
  let cost = match cost with Some c -> c | None -> t.costs.Netsim.Costs.layer.app in
  let prog = Filter.compile filter in
  Graph.add_edge t.graph ~parent:t.node
    ~child:(Endpoint.owner ep)
    ~label:
      (Fmt.str "port=%d compiled[%d]" (Endpoint.port ep)
         (Filter.program_length prog));
  let full = Filter.And (Filter.dst_port_is (Endpoint.port ep), filter) in
  Spin.Dispatcher.install (Graph.recv_event t.node)
    ~guard:(fun ctx -> port_guard ep ctx && Filter.run prog ctx)
    ~key:(Filter.dst_port_key (Endpoint.port ep))
    ~keys:(Filter.key_conjuncts filter)
    ~exact:(Filter.keys_exact full)
    ~label:(Endpoint.owner ep) ~gcost:(Filter.compiled_cost prog) ~cost fn

(* Interrupt-level (EPHEMERAL) receive handler with optional budget. *)
let install_recv_ephemeral t ep ?budget fn =
  Graph.add_edge t.graph ~parent:t.node
    ~child:(Endpoint.owner ep)
    ~label:(Printf.sprintf "port=%d(eph)" (Endpoint.port ep));
  Spin.Dispatcher.install_ephemeral (Graph.recv_event t.node)
    ~guard:(port_guard ep)
    ~key:(Filter.dst_port_key (Endpoint.port ep))
    ~exact:true ~label:(Endpoint.owner ep) ?budget fn

let cpu t = Netsim.Host.cpu (Graph.host t.graph)

(* The zero-copy send core: the caller's mbuf is encapsulated in place
   (headers go into its headroom) and handed down the stack — no payload
   byte is copied anywhere between here and the device. *)
let do_send_mbuf ?(extra_cost = Sim.Stime.zero) t ep ~prio ~dst:(dip, dport)
    ~checksum ~src_port payload =
  t.counters.tx <- t.counters.tx + 1;
  let cksum_cost =
    if checksum && not (Ip_mgr.dst_touches_data t.ip dip) then
      Netsim.Costs.per_byte t.costs.Netsim.Costs.layer.cksum_ns_per_byte
        (Mbuf.length payload)
    else Sim.Stime.zero
  in
  let prio =
    match prio with
    | Some p -> p
    | None ->
        (match Spin.Dispatcher.mode (Graph.recv_event t.node) with
        | Spin.Dispatcher.Interrupt -> Sim.Cpu.Interrupt
        | Spin.Dispatcher.Thread -> Sim.Cpu.Thread)
  in
  Sim.Cpu.run (cpu t) ~prio
    ~cost:
      (Sim.Stime.add extra_cost
         (Sim.Stime.add t.costs.Netsim.Costs.layer.udp_out cksum_cost))
    (fun () ->
      Proto.Udp.encapsulate ~checksum payload ~src:(Endpoint.ip ep) ~dst:dip
        ~src_port ~dst_port:dport;
      Ip_mgr.send t.ip ~prio ~proto:Proto.Ipv4.proto_udp ~dst:dip payload)

let do_send ?extra_cost t ep ~prio ~dst ~checksum ~src_port data =
  do_send_mbuf ?extra_cost t ep ~prio ~dst ~checksum ~src_port
    (Mbuf.of_string data)

(* Multicast semantics for UDP (paper section 5.1): the datagram is
   marshalled and checksummed once, then replicated to every
   destination — the per-packet data-touching work is not repeated. *)
let send_multi t ep ?prio ?(checksum = true) ~dsts data =
  match dsts with
  | [] -> ()
  | (first_ip, _) :: _ ->
      t.counters.tx <- t.counters.tx + List.length dsts;
      let cksum_cost =
        if checksum && not (Ip_mgr.dst_touches_data t.ip first_ip) then
          Netsim.Costs.per_byte t.costs.Netsim.Costs.layer.cksum_ns_per_byte
            (String.length data)
        else Sim.Stime.zero
      in
      let prio =
        match prio with
        | Some p -> p
        | None -> (
            match Spin.Dispatcher.mode (Graph.recv_event t.node) with
            | Spin.Dispatcher.Interrupt -> Sim.Cpu.Interrupt
            | Spin.Dispatcher.Thread -> Sim.Cpu.Thread)
      in
      (* one marshal+checksum pass, then a cheap replicated send per
         destination *)
      Sim.Cpu.run (cpu t) ~prio
        ~cost:(Sim.Stime.add t.costs.Netsim.Costs.layer.udp_out cksum_cost)
        (fun () ->
          List.iter
            (fun (dip, dport) ->
              let payload = Mbuf.of_string data in
              Proto.Udp.encapsulate ~checksum payload ~src:(Endpoint.ip ep)
                ~dst:dip ~src_port:(Endpoint.port ep) ~dst_port:dport;
              Ip_mgr.send t.ip ~prio ~proto:Proto.Ipv4.proto_udp ~dst:dip
                payload)
            dsts)

(* Normal send: source fields are taken from the endpoint (the paper's
   "overwrite" strategy — nothing to verify because nothing else is
   representable). *)
let send t ep ?prio ?(checksum = true) ~dst data =
  do_send t ep ~prio ~dst ~checksum ~src_port:(Endpoint.port ep) data

(* Zero-copy send: the application hands over an mbuf it built (payload
   written once into allocated headroom-bearing buffers); headers are
   prepended in place and the chain reaches the wire without a single
   payload-byte copy.  The device consumes the mbuf at transmit. *)
let send_mbuf t ep ?prio ?(checksum = true) ~dst payload =
  do_send_mbuf t ep ~prio ~dst ~checksum ~src_port:(Endpoint.port ep) payload

(* A send that lets the caller *claim* a source — exists to demonstrate
   the two anti-spoofing strategies of section 3.1.  Under [Overwrite]
   the claim is ignored; under [Verify] a mismatched claim is rejected
   and counted. *)
let send_claiming t ep ?prio ?(checksum = true) ~claimed_src_port ~dst data =
  match t.spoof_policy with
  | Overwrite ->
      (* The claim is simply ignored — "more simply overwrite the source
         field ... provides the best performance". *)
      do_send t ep ~prio ~dst ~checksum ~src_port:(Endpoint.port ep) data;
      Ok ()
  | Verify ->
      if claimed_src_port <> Endpoint.port ep then begin
        t.counters.spoof_rejected <- t.counters.spoof_rejected + 1;
        Error `Spoof_rejected
      end
      else begin
        (* verification touches the headers once more, on the send path *)
        do_send ~extra_cost:(Sim.Stime.us 2) t ep ~prio ~dst ~checksum
          ~src_port:claimed_src_port data;
        Ok ()
      end

let bound_ports t =
  Spin.Sharded.Table.fold (fun p _ acc -> p :: acc) t.binds []
  |> List.sort compare
