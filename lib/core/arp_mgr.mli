(** ARP protocol manager. *)

type t

val create :
  ?retry_interval:Sim.Stime.t -> ?max_retries:int -> Graph.t -> Ether_mgr.t ->
  ip:Proto.Ipaddr.t -> t

val resolve : t -> Proto.Ipaddr.t -> (Proto.Ether.Mac.t -> unit) -> unit
(** Cache hit: immediate.  Miss: broadcast a request and continue when the
    reply arrives. *)

val prime : t -> Proto.Ipaddr.t -> Proto.Ether.Mac.t -> unit
(** Pre-populate the cache (steady-state experiments). *)

val cache : t -> Proto.Arp.Cache.t
val requests_sent : t -> int
val replies_sent : t -> int

val resolution_failures : t -> int
(** Resolutions abandoned after the retry budget (unreachable hosts).
    Abandonment cancels the continuations queued for the address, so a
    reply arriving later cannot fire them. *)

val waiters_dropped : t -> int
(** Continuations cancelled by abandoned resolutions — each is a queued
    packet that was dropped, BSD-stall style. *)

val pending_count : t -> int
(** Resolutions currently awaiting a reply (with live retry timers). *)
