(* A declarative packet-filter language for guards.

   Plexus guards are arbitrary typesafe predicates; the systems they
   replaced used interpreted packet filters (CSPF/BPF, [MRA87], and the
   Mach user-level networking the paper compares its protection model
   to).  This module provides that older style as a first-class value: a
   small expression language over packet fields that managers can accept
   from applications *as data* — no code installation at all — plus a
   cost model for interpretation, so the compiled-guard vs. interpreted-
   filter trade-off is measurable (see the ablations).

   [eval] is the reference semantics: a direct tree interpreter.
   [compile] is a real compilation pipeline in the DPF tradition:
   normalize the AST (constant folding, And/Or flattening, short-circuit
   ordering by field cost), then emit a flat array of closure-free
   instructions run by a tight loop with the packet views hoisted out of
   the per-field reads.  Compilation also exposes each filter's
   *dispatch key* — a literal equality on a demultiplexing field
   (EtherType, IP protocol, ports) implied by the filter — which the
   dispatcher's index uses to skip non-matching guards entirely
   (PathFinder's prefix collapse, our hash-bucket variant).

   Offsets are relative to the packet context's cursor unless the [Abs]
   anchor is used. *)

type anchor =
  | Cur  (** relative to the context cursor (current layer) *)
  | Abs  (** absolute within the frame *)

type field =
  | U8 of anchor * int
  | U16 of anchor * int
  | U32 of anchor * int
  | Ip_proto       (** from the parsed IP header, if present *)
  | Src_port
  | Dst_port
  | Payload_len

type t =
  | True
  | False
  | Eq of field * int
  | Lt of field * int
  | Gt of field * int
  | Mask of field * int * int  (** [(field land mask) = value] *)
  | And of t * t
  | Or of t * t
  | Not of t

let rec nodes = function
  | True | False -> 1
  | Eq _ | Lt _ | Gt _ | Mask _ -> 1
  | And (a, b) | Or (a, b) -> 1 + nodes a + nodes b
  | Not a -> 1 + nodes a

(* Interpretation cost: a handful of 1995 instructions per node. *)
let interp_cost_per_node = Sim.Stime.ns 150

let eval_cost t = Sim.Stime.mul interp_cost_per_node (nodes t)

exception Unavailable

let read_field ctx = function
  | U8 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 1 > View.length v then raise Unavailable else View.get_u8 v off
  | U16 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 2 > View.length v then raise Unavailable else View.get_u16 v off
  | U32 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 4 > View.length v then raise Unavailable else View.get_u32 v off
  | Ip_proto -> (
      match ctx.Pctx.ip with
      | Some h -> h.Proto.Ipv4.proto
      | None -> raise Unavailable)
  | Src_port ->
      if ctx.Pctx.src_port < 0 then raise Unavailable else ctx.Pctx.src_port
  | Dst_port ->
      if ctx.Pctx.dst_port < 0 then raise Unavailable else ctx.Pctx.dst_port
  | Payload_len -> Pctx.payload_len ctx

let rec eval t ctx =
  match t with
  | True -> true
  | False -> false
  | Eq (f, v) -> ( try read_field ctx f = v with Unavailable -> false)
  | Lt (f, v) -> ( try read_field ctx f < v with Unavailable -> false)
  | Gt (f, v) -> ( try read_field ctx f > v with Unavailable -> false)
  | Mask (f, m, v) -> (
      try read_field ctx f land m = v with Unavailable -> false)
  | And (a, b) -> eval a ctx && eval b ctx
  | Or (a, b) -> eval a ctx || eval b ctx
  | Not a -> not (eval a ctx)

(* ---- Normalization ----------------------------------------------------- *)

(* Estimated expense of evaluating a subtree, used to order the operands
   of And/Or so the cheap tests short-circuit the expensive ones.
   Context fields (parsed header state) are cheaper than packet-memory
   reads. *)
let field_expense = function
  | Ip_proto | Src_port | Dst_port | Payload_len -> 0
  | U8 _ | U16 _ | U32 _ -> 1

let rec expense = function
  | True | False -> 0
  | Eq (f, _) | Lt (f, _) | Gt (f, _) | Mask (f, _, _) ->
      1 + (2 * field_expense f)
  | And (a, b) | Or (a, b) -> expense a + expense b
  | Not a -> expense a

let rec flat_and t acc =
  match t with And (a, b) -> flat_and a (flat_and b acc) | t -> t :: acc

let rec flat_or t acc =
  match t with Or (a, b) -> flat_or a (flat_or b acc) | t -> t :: acc

let rebuild join = function
  | [] -> invalid_arg "Filter.rebuild"
  | c :: rest -> List.fold_left (fun acc x -> join acc x) c rest

(* Constant folding, flattening, short-circuit ordering.  Evaluation-
   order changes are sound because tests are pure: an unavailable field
   makes its own comparison false without affecting any other test.
   (Constant folds assume well-formed filters, i.e. non-negative
   offsets.) *)
let rec normalize t =
  match t with
  | True | False | Eq _ | Lt _ | Gt _ -> t
  | Mask (_, m, v) when v land m <> v ->
      False (* bits of [v] outside [m] can never survive the mask *)
  | Mask _ -> t
  | Not a -> (
      match normalize a with
      | True -> False
      | False -> True
      | Not b -> b
      | a' -> Not a')
  | And (a, b) ->
      let cs =
        flat_and (normalize a) (flat_and (normalize b) [])
        |> List.concat_map (fun c -> flat_and c [])
      in
      if List.mem False cs then False
      else begin
        match
          List.filter (fun c -> c <> True) cs
          |> List.stable_sort (fun x y -> compare (expense x) (expense y))
        with
        | [] -> True
        | cs -> rebuild (fun x y -> And (x, y)) cs
      end
  | Or (a, b) ->
      let cs =
        flat_or (normalize a) (flat_or (normalize b) [])
        |> List.concat_map (fun c -> flat_or c [])
      in
      if List.mem True cs then True
      else begin
        match
          List.filter (fun c -> c <> False) cs
          |> List.stable_sort (fun x y -> compare (expense x) (expense y))
        with
        | [] -> False
        | cs -> rebuild (fun x y -> Or (x, y)) cs
      end

(* ---- Dispatch keys ----------------------------------------------------- *)

type key_field = Key_ether_type | Key_ip_proto | Key_src_port | Key_dst_port

type key = { kfield : key_field; kvalue : int }

let key_tag = function
  | Key_ether_type -> 0
  | Key_ip_proto -> 1
  | Key_src_port -> 2
  | Key_dst_port -> 3

let key_code { kfield; kvalue } = (key_tag kfield lsl 16) lor (kvalue land 0xffff)

let ether_type_key etype = key_code { kfield = Key_ether_type; kvalue = etype }
let ip_proto_key proto = key_code { kfield = Key_ip_proto; kvalue = proto }
let src_port_key port = key_code { kfield = Key_src_port; kvalue = port }
let dst_port_key port = key_code { kfield = Key_dst_port; kvalue = port }

(* Fields the demux index can hash on, with the field's value width:
   a literal test against such a field is a dispatch key when it is
   equivalent to full-width equality. *)
let keyable_field = function
  | Ip_proto -> Some (Key_ip_proto, 0xff)
  | Src_port -> Some (Key_src_port, 0xffff)
  | Dst_port -> Some (Key_dst_port, 0xffff)
  | U16 (Abs, 12) -> Some (Key_ether_type, 0xffff) (* the EtherType slot *)
  | _ -> None

let key_of_conjunct = function
  | Eq (f, v) -> (
      match keyable_field f with
      | Some (kf, width) when v >= 0 && v <= width ->
          Some { kfield = kf; kvalue = v }
      | _ -> None)
  | Mask (f, m, v) -> (
      (* a mask covering the field's full width is plain equality *)
      match keyable_field f with
      | Some (kf, width) when m land width = width && v >= 0 && v <= width ->
          Some { kfield = kf; kvalue = v }
      | _ -> None)
  | _ -> None

let dispatch_key t =
  match normalize t with
  | True | False -> None
  | t' ->
      Option.map key_code (List.find_map key_of_conjunct (flat_and t' []))

(* Every keyable equality the filter's top-level conjunction implies, for
   the dispatcher's merged decision tree (one key per demux dimension the
   filter pins).  Subsumes [dispatch_key]: that is the first of these. *)
let key_conjuncts t =
  match normalize t with
  | True | False -> []
  | t' ->
      flat_and t' []
      |> List.filter_map key_of_conjunct
      |> List.map key_code
      |> List.sort_uniq compare

(* A filter is [keys_exact] when its normalized form is nothing but
   keyable equality conjuncts: a payload that presents every key *is* a
   match, so a dispatch path that proved all of them may skip the guard
   entirely rather than re-running it as a residual check. *)
let keys_exact t =
  match normalize t with
  | True | False -> false
  | t' -> List.for_all (fun c -> key_of_conjunct c <> None) (flat_and t' [])

(* ---- Flow demux extraction --------------------------------------------- *)

(* The demultiplexing fields of a raw frame, read once.  This is the one
   shared extractor behind both the index's context keys (EtherType) and
   the dispatcher's flow signatures: every field the steady-state demux
   decision can depend on, and nothing else.  [-1] marks an absent
   field. *)
type demux = {
  dst_mac : int;  (** 48-bit destination MAC, or [-1] on a runt frame *)
  ether_type : int;
  ip_proto : int;
  src_addr : int;
  dst_addr : int;
  src_port : int;
  dst_port : int;
  fragment : bool;
      (** the frame is an IPv4 fragment (or carries a non-20-byte IP
          header): the L4 ports are not where the fast path expects
          them, so flow signatures must refuse it *)
}

let frame_ether_type v =
  if View.length v >= Proto.Ether.header_len then View.get_u16 v 12 else -1

let frame_demux v =
  let len = View.length v in
  let dst_mac =
    if len >= 6 then (View.get_u16 v 0 lsl 32) lor View.get_u32 v 2 else -1
  in
  let ether_type = frame_ether_type v in
  if
    ether_type = Proto.Ether.etype_ip
    && len >= Proto.Ether.header_len + Proto.Ipv4.header_len
  then begin
    let l3 = Proto.Ether.header_len in
    (* Treat a non-standard IHL like a fragment: the port slots below
       would be header bytes, not L4 ports. *)
    let fragment =
      let frag = View.get_u16 v (l3 + 6) in
      frag land 0x3fff <> 0 || View.get_u8 v l3 <> 0x45
    in
    let ip_proto = View.get_u8 v (l3 + 9) in
    let ports =
      (not fragment)
      && (ip_proto = Proto.Ipv4.proto_udp || ip_proto = Proto.Ipv4.proto_tcp)
      && len >= l3 + Proto.Ipv4.header_len + 4
    in
    {
      dst_mac;
      ether_type;
      ip_proto;
      src_addr = View.get_u32 v (l3 + 12);
      dst_addr = View.get_u32 v (l3 + 16);
      src_port = (if ports then View.get_u16 v (l3 + 20) else -1);
      dst_port = (if ports then View.get_u16 v (l3 + 22) else -1);
      fragment;
    }
  end
  else
    {
      dst_mac;
      ether_type;
      ip_proto = -1;
      src_addr = -1;
      dst_addr = -1;
      src_port = -1;
      dst_port = -1;
      fragment = false;
    }

(* 22-byte packed key: dst MAC, EtherType, IP proto, src/dst address,
   src/dst port, and a presence byte so absent fields cannot collide
   with real zero/0xffff values.  Compared by string equality — no
   hashing unsoundness. *)
let signature_of_demux d =
  let b = Bytes.create 22 in
  Bytes.set_uint16_be b 0 ((d.dst_mac lsr 32) land 0xffff);
  Bytes.set_int32_be b 2 (Int32.of_int (d.dst_mac land 0xffffffff));
  Bytes.set_uint16_be b 6 (d.ether_type land 0xffff);
  Bytes.set_uint8 b 8 (d.ip_proto land 0xff);
  Bytes.set_int32_be b 9 (Int32.of_int (d.src_addr land 0xffffffff));
  Bytes.set_int32_be b 13 (Int32.of_int (d.dst_addr land 0xffffffff));
  Bytes.set_uint16_be b 17 (d.src_port land 0xffff);
  Bytes.set_uint16_be b 19 (d.dst_port land 0xffff);
  Bytes.set_uint8 b 21
    ((if d.dst_mac >= 0 then 1 else 0)
    lor (if d.ether_type >= 0 then 2 else 0)
    lor (if d.ip_proto >= 0 then 4 else 0)
    lor if d.src_port >= 0 then 8 else 0);
  Bytes.unsafe_to_string b

(* Only a *fresh* context — cursor at 0, nothing parsed yet — is a raw
   frame whose bytes the signature can describe.  A reassembled datagram
   or a mid-graph context re-raised as a root would alias unrelated
   bytes into the demux fields, so it is refused (cache bypass), as are
   fragments. *)
let flow_signature ctx =
  match (ctx.Pctx.l2, ctx.Pctx.ip) with
  | None, None when ctx.Pctx.off = 0 && ctx.Pctx.src_port < 0 ->
      let d = frame_demux (View.ro (Mbuf.view ctx.Pctx.pkt)) in
      if d.fragment then None else Some (signature_of_demux d)
  | _ -> None

(* The dispatch keys a packet context *presents*, one per demux
   dimension that is available at the current layer.  The complement of
   [dispatch_key]: a filter keyed on dimension D with value v evaluates
   to false on every context that does not present (D, v) — either the
   dimension is unavailable (its test reads Unavailable, hence false) or
   it carries a different value (the equality fails).  That invariant is
   what lets the dispatcher skip non-matching buckets without changing
   delivery. *)
let context_keys ctx =
  let keys = [] in
  let keys =
    if ctx.Pctx.dst_port >= 0 then dst_port_key ctx.Pctx.dst_port :: keys
    else keys
  in
  let keys =
    if ctx.Pctx.src_port >= 0 then src_port_key ctx.Pctx.src_port :: keys
    else keys
  in
  let keys =
    match ctx.Pctx.ip with
    | Some h -> ip_proto_key h.Proto.Ipv4.proto :: keys
    | None -> keys
  in
  let et = frame_ether_type (View.ro (Mbuf.view ctx.Pctx.pkt)) in
  if et >= 0 then ether_type_key et :: keys else keys

(* Allocation-free variant of [context_keys]: the dispatcher hands a
   per-event scratch array of [num_key_dims] slots indexed by key tag
   ([key_tag], the [k lsr 16] of an encoded key) and the probe writes
   each dimension's raw value, [-1] for absent.  Reads the same four
   fields as [context_keys], so [read_context_keys ctx dst] and
   [context_keys ctx] present exactly the same (dimension, value)
   pairs — the property the key-extraction equivalence test pins. *)
let num_key_dims = 4

let read_context_keys ctx dst =
  dst.(0) <- frame_ether_type (View.ro (Mbuf.view ctx.Pctx.pkt));
  dst.(1) <- (match ctx.Pctx.ip with Some h -> h.Proto.Ipv4.proto | None -> -1);
  dst.(2) <- ctx.Pctx.src_port;
  dst.(3) <- ctx.Pctx.dst_port

(* ---- Compilation ------------------------------------------------------- *)

(* Flat, closure-free instruction form (the DPF move: the predicate
   becomes straight-line code, no interpreter recursion).  Each
   instruction reads one field, applies one comparison, and jumps to
   [jt]/[jf]: a non-negative target is the next instruction index,
   [ret_true]/[ret_false] terminate. *)

type op = Oeq | Olt | Ogt | Omask

type inst = {
  iop : op;
  ifld : field;
  ia : int;  (* comparison operand (the expected value) *)
  im : int;  (* mask for [Omask] *)
  jt : int;
  jf : int;
}

type program = {
  code : inst array;
  entry : int;
  uses_cur : bool;
  uses_abs : bool;
}

let ret_true = -1
let ret_false = -2

let compile t =
  let t = normalize t in
  let rev = ref [] and n = ref 0 in
  let push i =
    rev := i :: !rev;
    let idx = !n in
    incr n;
    idx
  in
  let rec emit t ~jt ~jf =
    match t with
    | True -> jt
    | False -> jf
    | Eq (f, v) -> push { iop = Oeq; ifld = f; ia = v; im = 0; jt; jf }
    | Lt (f, v) -> push { iop = Olt; ifld = f; ia = v; im = 0; jt; jf }
    | Gt (f, v) -> push { iop = Ogt; ifld = f; ia = v; im = 0; jt; jf }
    | Mask (f, m, v) -> push { iop = Omask; ifld = f; ia = v; im = m; jt; jf }
    | And (a, b) ->
        let lb = emit b ~jt ~jf in
        emit a ~jt:lb ~jf
    | Or (a, b) ->
        let lb = emit b ~jt ~jf in
        emit a ~jt ~jf:lb
    | Not a -> emit a ~jt:jf ~jf:jt
  in
  let entry = emit t ~jt:ret_true ~jf:ret_false in
  let code = Array.of_list (List.rev !rev) in
  let uses anchor =
    Array.exists
      (fun i ->
        match i.ifld with
        | U8 (a, _) | U16 (a, _) | U32 (a, _) -> a = anchor
        | _ -> false)
      code
  in
  { code; entry; uses_cur = uses Cur; uses_abs = uses Abs }

let program_length p = Array.length p.code

(* One comparison plus a couple of loads per instruction — the compiled
   loop touches a fraction of what the tree interpreter does, and the
   managers charge it accordingly. *)
let compiled_cost_per_inst = Sim.Stime.ns 40
let compiled_overhead = Sim.Stime.ns 60

let compiled_cost p =
  Sim.Stime.add compiled_overhead
    (Sim.Stime.mul compiled_cost_per_inst (Array.length p.code))

let empty_view : View.ro View.t = View.of_string ""

(* [min_int] is the in-band Unavailable: no packet field can produce it
   (reads are unsigned, ports use -1, payload lengths are small). *)
let unavailable = min_int

let run p ctx =
  let cur = if p.uses_cur then Pctx.view ctx else empty_view in
  let abs =
    if p.uses_abs then View.ro (Mbuf.view ctx.Pctx.pkt) else empty_view
  in
  let code = p.code in
  let rec go pc =
    if pc < 0 then pc = ret_true
    else begin
      let i = Array.unsafe_get code pc in
      let v =
        match i.ifld with
        | U8 (Cur, off) ->
            if off + 1 > View.length cur then unavailable
            else View.get_u8 cur off
        | U8 (Abs, off) ->
            if off + 1 > View.length abs then unavailable
            else View.get_u8 abs off
        | U16 (Cur, off) ->
            if off + 2 > View.length cur then unavailable
            else View.get_u16 cur off
        | U16 (Abs, off) ->
            if off + 2 > View.length abs then unavailable
            else View.get_u16 abs off
        | U32 (Cur, off) ->
            if off + 4 > View.length cur then unavailable
            else View.get_u32 cur off
        | U32 (Abs, off) ->
            if off + 4 > View.length abs then unavailable
            else View.get_u32 abs off
        | Ip_proto -> (
            match ctx.Pctx.ip with
            | Some h -> h.Proto.Ipv4.proto
            | None -> unavailable)
        | Src_port ->
            if ctx.Pctx.src_port < 0 then unavailable else ctx.Pctx.src_port
        | Dst_port ->
            if ctx.Pctx.dst_port < 0 then unavailable else ctx.Pctx.dst_port
        | Payload_len -> Pctx.payload_len ctx
      in
      let hit =
        v <> unavailable
        &&
        match i.iop with
        | Oeq -> v = i.ia
        | Olt -> v < i.ia
        | Ogt -> v > i.ia
        | Omask -> v land i.im = i.ia
      in
      go (if hit then i.jt else i.jf)
    end
  in
  go p.entry

let compile_guard t =
  let p = compile t in
  fun ctx -> run p ctx

(* Common building blocks. *)
let ether_type_is etype = Eq (U16 (Abs, 12), etype)
let ip_proto_is proto = Eq (Ip_proto, proto)
let dst_port_is port = Eq (Dst_port, port)
let src_port_is port = Eq (Src_port, port)

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Eq (f, v) -> Fmt.pf ppf "%a = %d" pp_field f v
  | Lt (f, v) -> Fmt.pf ppf "%a < %d" pp_field f v
  | Gt (f, v) -> Fmt.pf ppf "%a > %d" pp_field f v
  | Mask (f, m, v) -> Fmt.pf ppf "(%a & 0x%x) = %d" pp_field f m v
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a

and pp_field ppf = function
  | U8 (Cur, o) -> Fmt.pf ppf "u8[%d]" o
  | U8 (Abs, o) -> Fmt.pf ppf "u8[@%d]" o
  | U16 (Cur, o) -> Fmt.pf ppf "u16[%d]" o
  | U16 (Abs, o) -> Fmt.pf ppf "u16[@%d]" o
  | U32 (Cur, o) -> Fmt.pf ppf "u32[%d]" o
  | U32 (Abs, o) -> Fmt.pf ppf "u32[@%d]" o
  | Ip_proto -> Fmt.string ppf "ip.proto"
  | Src_port -> Fmt.string ppf "src_port"
  | Dst_port -> Fmt.string ppf "dst_port"
  | Payload_len -> Fmt.string ppf "payload_len"
