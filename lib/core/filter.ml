(* A declarative packet-filter language for guards.

   Plexus guards are arbitrary typesafe predicates; the systems they
   replaced used interpreted packet filters (CSPF/BPF, [MRA87], and the
   Mach user-level networking the paper compares its protection model
   to).  This module provides that older style as a first-class value: a
   small expression language over packet fields that managers can accept
   from applications *as data* — no code installation at all — plus a
   cost model for interpretation, so the compiled-guard vs. interpreted-
   filter trade-off is measurable (see the ablations).

   [eval] is the reference semantics: a direct tree interpreter.
   [compile] is a real compilation pipeline in the DPF tradition:
   normalize the AST (constant folding, And/Or flattening, short-circuit
   ordering by field cost), then emit a flat array of closure-free
   instructions run by a tight loop with the packet views hoisted out of
   the per-field reads.  Compilation also exposes each filter's
   *dispatch key* — a literal equality on a demultiplexing field
   (EtherType, IP protocol, ports) implied by the filter — which the
   dispatcher's index uses to skip non-matching guards entirely
   (PathFinder's prefix collapse, our hash-bucket variant).

   Offsets are relative to the packet context's cursor unless the [Abs]
   anchor is used. *)

type anchor =
  | Cur  (** relative to the context cursor (current layer) *)
  | Abs  (** absolute within the frame *)

type field =
  | U8 of anchor * int
  | U16 of anchor * int
  | U32 of anchor * int
  | Ip_proto       (** from the parsed IP header, if present *)
  | Src_port
  | Dst_port
  | Payload_len

type t =
  | True
  | False
  | Eq of field * int
  | Lt of field * int
  | Gt of field * int
  | Mask of field * int * int  (** [(field land mask) = value] *)
  | And of t * t
  | Or of t * t
  | Not of t

let rec nodes = function
  | True | False -> 1
  | Eq _ | Lt _ | Gt _ | Mask _ -> 1
  | And (a, b) | Or (a, b) -> 1 + nodes a + nodes b
  | Not a -> 1 + nodes a

(* Interpretation cost: a handful of 1995 instructions per node. *)
let interp_cost_per_node = Sim.Stime.ns 150

let eval_cost t = Sim.Stime.mul interp_cost_per_node (nodes t)

exception Unavailable

let read_field ctx = function
  | U8 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 1 > View.length v then raise Unavailable else View.get_u8 v off
  | U16 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 2 > View.length v then raise Unavailable else View.get_u16 v off
  | U32 (anchor, off) ->
      let v =
        match anchor with
        | Cur -> Pctx.view ctx
        | Abs -> View.ro (Mbuf.view ctx.Pctx.pkt)
      in
      if off + 4 > View.length v then raise Unavailable else View.get_u32 v off
  | Ip_proto -> (
      match ctx.Pctx.ip with
      | Some h -> h.Proto.Ipv4.proto
      | None -> raise Unavailable)
  | Src_port ->
      if ctx.Pctx.src_port < 0 then raise Unavailable else ctx.Pctx.src_port
  | Dst_port ->
      if ctx.Pctx.dst_port < 0 then raise Unavailable else ctx.Pctx.dst_port
  | Payload_len -> Pctx.payload_len ctx

let rec eval t ctx =
  match t with
  | True -> true
  | False -> false
  | Eq (f, v) -> ( try read_field ctx f = v with Unavailable -> false)
  | Lt (f, v) -> ( try read_field ctx f < v with Unavailable -> false)
  | Gt (f, v) -> ( try read_field ctx f > v with Unavailable -> false)
  | Mask (f, m, v) -> (
      try read_field ctx f land m = v with Unavailable -> false)
  | And (a, b) -> eval a ctx && eval b ctx
  | Or (a, b) -> eval a ctx || eval b ctx
  | Not a -> not (eval a ctx)

(* ---- Normalization ----------------------------------------------------- *)

(* Estimated expense of evaluating a subtree, used to order the operands
   of And/Or so the cheap tests short-circuit the expensive ones.
   Context fields (parsed header state) are cheaper than packet-memory
   reads. *)
let field_expense = function
  | Ip_proto | Src_port | Dst_port | Payload_len -> 0
  | U8 _ | U16 _ | U32 _ -> 1

let rec expense = function
  | True | False -> 0
  | Eq (f, _) | Lt (f, _) | Gt (f, _) | Mask (f, _, _) ->
      1 + (2 * field_expense f)
  | And (a, b) | Or (a, b) -> expense a + expense b
  | Not a -> expense a

let rec flat_and t acc =
  match t with And (a, b) -> flat_and a (flat_and b acc) | t -> t :: acc

let rec flat_or t acc =
  match t with Or (a, b) -> flat_or a (flat_or b acc) | t -> t :: acc

let rebuild join = function
  | [] -> invalid_arg "Filter.rebuild"
  | c :: rest -> List.fold_left (fun acc x -> join acc x) c rest

(* Constant folding, flattening, short-circuit ordering.  Evaluation-
   order changes are sound because tests are pure: an unavailable field
   makes its own comparison false without affecting any other test.
   (Constant folds assume well-formed filters, i.e. non-negative
   offsets.) *)
let rec normalize t =
  match t with
  | True | False | Eq _ | Lt _ | Gt _ -> t
  | Mask (_, m, v) when v land m <> v ->
      False (* bits of [v] outside [m] can never survive the mask *)
  | Mask _ -> t
  | Not a -> (
      match normalize a with
      | True -> False
      | False -> True
      | Not b -> b
      | a' -> Not a')
  | And (a, b) ->
      let cs =
        flat_and (normalize a) (flat_and (normalize b) [])
        |> List.concat_map (fun c -> flat_and c [])
      in
      if List.mem False cs then False
      else begin
        match
          List.filter (fun c -> c <> True) cs
          |> List.stable_sort (fun x y -> compare (expense x) (expense y))
        with
        | [] -> True
        | cs -> rebuild (fun x y -> And (x, y)) cs
      end
  | Or (a, b) ->
      let cs =
        flat_or (normalize a) (flat_or (normalize b) [])
        |> List.concat_map (fun c -> flat_or c [])
      in
      if List.mem True cs then True
      else begin
        match
          List.filter (fun c -> c <> False) cs
          |> List.stable_sort (fun x y -> compare (expense x) (expense y))
        with
        | [] -> False
        | cs -> rebuild (fun x y -> Or (x, y)) cs
      end

(* ---- Dispatch keys ----------------------------------------------------- *)

type key_field = Key_ether_type | Key_ip_proto | Key_src_port | Key_dst_port

type key = { kfield : key_field; kvalue : int }

let key_tag = function
  | Key_ether_type -> 0
  | Key_ip_proto -> 1
  | Key_src_port -> 2
  | Key_dst_port -> 3

let key_code { kfield; kvalue } = (key_tag kfield lsl 16) lor (kvalue land 0xffff)

let ether_type_key etype = key_code { kfield = Key_ether_type; kvalue = etype }
let ip_proto_key proto = key_code { kfield = Key_ip_proto; kvalue = proto }
let src_port_key port = key_code { kfield = Key_src_port; kvalue = port }
let dst_port_key port = key_code { kfield = Key_dst_port; kvalue = port }

(* Fields the demux index can hash on, with the field's value width:
   a literal test against such a field is a dispatch key when it is
   equivalent to full-width equality. *)
let keyable_field = function
  | Ip_proto -> Some (Key_ip_proto, 0xff)
  | Src_port -> Some (Key_src_port, 0xffff)
  | Dst_port -> Some (Key_dst_port, 0xffff)
  | U16 (Abs, 12) -> Some (Key_ether_type, 0xffff) (* the EtherType slot *)
  | _ -> None

let dispatch_key t =
  let key_of_conjunct = function
    | Eq (f, v) -> (
        match keyable_field f with
        | Some (kf, width) when v >= 0 && v <= width ->
            Some { kfield = kf; kvalue = v }
        | _ -> None)
    | Mask (f, m, v) -> (
        (* a mask covering the field's full width is plain equality *)
        match keyable_field f with
        | Some (kf, width) when m land width = width && v >= 0 && v <= width
          ->
            Some { kfield = kf; kvalue = v }
        | _ -> None)
    | _ -> None
  in
  match normalize t with
  | True | False -> None
  | t' ->
      Option.map key_code (List.find_map key_of_conjunct (flat_and t' []))

(* The dispatch keys a packet context *presents*, one per demux
   dimension that is available at the current layer.  The complement of
   [dispatch_key]: a filter keyed on dimension D with value v evaluates
   to false on every context that does not present (D, v) — either the
   dimension is unavailable (its test reads Unavailable, hence false) or
   it carries a different value (the equality fails).  That invariant is
   what lets the dispatcher skip non-matching buckets without changing
   delivery. *)
let context_keys ctx =
  let keys = [] in
  let keys =
    if ctx.Pctx.dst_port >= 0 then dst_port_key ctx.Pctx.dst_port :: keys
    else keys
  in
  let keys =
    if ctx.Pctx.src_port >= 0 then src_port_key ctx.Pctx.src_port :: keys
    else keys
  in
  let keys =
    match ctx.Pctx.ip with
    | Some h -> ip_proto_key h.Proto.Ipv4.proto :: keys
    | None -> keys
  in
  let v = View.ro (Mbuf.view ctx.Pctx.pkt) in
  if View.length v >= 14 then ether_type_key (View.get_u16 v 12) :: keys
  else keys

(* ---- Compilation ------------------------------------------------------- *)

(* Flat, closure-free instruction form (the DPF move: the predicate
   becomes straight-line code, no interpreter recursion).  Each
   instruction reads one field, applies one comparison, and jumps to
   [jt]/[jf]: a non-negative target is the next instruction index,
   [ret_true]/[ret_false] terminate. *)

type op = Oeq | Olt | Ogt | Omask

type inst = {
  iop : op;
  ifld : field;
  ia : int;  (* comparison operand (the expected value) *)
  im : int;  (* mask for [Omask] *)
  jt : int;
  jf : int;
}

type program = {
  code : inst array;
  entry : int;
  uses_cur : bool;
  uses_abs : bool;
}

let ret_true = -1
let ret_false = -2

let compile t =
  let t = normalize t in
  let rev = ref [] and n = ref 0 in
  let push i =
    rev := i :: !rev;
    let idx = !n in
    incr n;
    idx
  in
  let rec emit t ~jt ~jf =
    match t with
    | True -> jt
    | False -> jf
    | Eq (f, v) -> push { iop = Oeq; ifld = f; ia = v; im = 0; jt; jf }
    | Lt (f, v) -> push { iop = Olt; ifld = f; ia = v; im = 0; jt; jf }
    | Gt (f, v) -> push { iop = Ogt; ifld = f; ia = v; im = 0; jt; jf }
    | Mask (f, m, v) -> push { iop = Omask; ifld = f; ia = v; im = m; jt; jf }
    | And (a, b) ->
        let lb = emit b ~jt ~jf in
        emit a ~jt:lb ~jf
    | Or (a, b) ->
        let lb = emit b ~jt ~jf in
        emit a ~jt ~jf:lb
    | Not a -> emit a ~jt:jf ~jf:jt
  in
  let entry = emit t ~jt:ret_true ~jf:ret_false in
  let code = Array.of_list (List.rev !rev) in
  let uses anchor =
    Array.exists
      (fun i ->
        match i.ifld with
        | U8 (a, _) | U16 (a, _) | U32 (a, _) -> a = anchor
        | _ -> false)
      code
  in
  { code; entry; uses_cur = uses Cur; uses_abs = uses Abs }

let program_length p = Array.length p.code

(* One comparison plus a couple of loads per instruction — the compiled
   loop touches a fraction of what the tree interpreter does, and the
   managers charge it accordingly. *)
let compiled_cost_per_inst = Sim.Stime.ns 40
let compiled_overhead = Sim.Stime.ns 60

let compiled_cost p =
  Sim.Stime.add compiled_overhead
    (Sim.Stime.mul compiled_cost_per_inst (Array.length p.code))

let empty_view : View.ro View.t = View.of_string ""

(* [min_int] is the in-band Unavailable: no packet field can produce it
   (reads are unsigned, ports use -1, payload lengths are small). *)
let unavailable = min_int

let run p ctx =
  let cur = if p.uses_cur then Pctx.view ctx else empty_view in
  let abs =
    if p.uses_abs then View.ro (Mbuf.view ctx.Pctx.pkt) else empty_view
  in
  let code = p.code in
  let rec go pc =
    if pc < 0 then pc = ret_true
    else begin
      let i = Array.unsafe_get code pc in
      let v =
        match i.ifld with
        | U8 (Cur, off) ->
            if off + 1 > View.length cur then unavailable
            else View.get_u8 cur off
        | U8 (Abs, off) ->
            if off + 1 > View.length abs then unavailable
            else View.get_u8 abs off
        | U16 (Cur, off) ->
            if off + 2 > View.length cur then unavailable
            else View.get_u16 cur off
        | U16 (Abs, off) ->
            if off + 2 > View.length abs then unavailable
            else View.get_u16 abs off
        | U32 (Cur, off) ->
            if off + 4 > View.length cur then unavailable
            else View.get_u32 cur off
        | U32 (Abs, off) ->
            if off + 4 > View.length abs then unavailable
            else View.get_u32 abs off
        | Ip_proto -> (
            match ctx.Pctx.ip with
            | Some h -> h.Proto.Ipv4.proto
            | None -> unavailable)
        | Src_port ->
            if ctx.Pctx.src_port < 0 then unavailable else ctx.Pctx.src_port
        | Dst_port ->
            if ctx.Pctx.dst_port < 0 then unavailable else ctx.Pctx.dst_port
        | Payload_len -> Pctx.payload_len ctx
      in
      let hit =
        v <> unavailable
        &&
        match i.iop with
        | Oeq -> v = i.ia
        | Olt -> v < i.ia
        | Ogt -> v > i.ia
        | Omask -> v land i.im = i.ia
      in
      go (if hit then i.jt else i.jf)
    end
  in
  go p.entry

let compile_guard t =
  let p = compile t in
  fun ctx -> run p ctx

(* Common building blocks. *)
let ether_type_is etype = Eq (U16 (Abs, 12), etype)
let ip_proto_is proto = Eq (Ip_proto, proto)
let dst_port_is port = Eq (Dst_port, port)
let src_port_is port = Eq (Src_port, port)

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Eq (f, v) -> Fmt.pf ppf "%a = %d" pp_field f v
  | Lt (f, v) -> Fmt.pf ppf "%a < %d" pp_field f v
  | Gt (f, v) -> Fmt.pf ppf "%a > %d" pp_field f v
  | Mask (f, m, v) -> Fmt.pf ppf "(%a & 0x%x) = %d" pp_field f m v
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a

and pp_field ppf = function
  | U8 (Cur, o) -> Fmt.pf ppf "u8[%d]" o
  | U8 (Abs, o) -> Fmt.pf ppf "u8[@%d]" o
  | U16 (Cur, o) -> Fmt.pf ppf "u16[%d]" o
  | U16 (Abs, o) -> Fmt.pf ppf "u16[@%d]" o
  | U32 (Cur, o) -> Fmt.pf ppf "u32[%d]" o
  | U32 (Abs, o) -> Fmt.pf ppf "u32[@%d]" o
  | Ip_proto -> Fmt.string ppf "ip.proto"
  | Src_port -> Fmt.string ppf "src_port"
  | Dst_port -> Fmt.string ppf "dst_port"
  | Payload_len -> Fmt.string ppf "payload_len"
