(** The Plexus protocol graph: nodes (protocols with PacketRecv events)
    and guarded edges. *)

type t
type node

val create : Netsim.Host.t -> t

val host : t -> Netsim.Host.t
val dispatcher : t -> Spin.Dispatcher.t

val kernel : t -> Spin.Kernel.t

val registry : t -> Observe.Registry.t
(** The owning kernel's metrics registry. *)

val trace : t -> Observe.Trace.t
(** The owning kernel's span endpoint. *)

val flight : t -> Observe.Flight.t
(** The owning kernel's packet flight recorder. *)

val node : t -> string -> node
(** Find-or-create a protocol node (and its PacketRecv event). *)

val find_node : t -> string -> node option
val name : node -> string
val recv_event : node -> Pctx.t Spin.Dispatcher.event

val add_edge : t -> parent:node -> child:string -> label:string -> unit
(** Record a graph edge for introspection (managers call this when they
    install a guarded handler). *)

val remove_edge : t -> parent:string -> child:string -> unit

val nodes : t -> string list
val edges : t -> (string * string * string) list

val set_delivery : t -> Spin.Dispatcher.delivery -> unit
(** Set every node's delivery mode (Figure 5's interrupt vs. thread). *)

val to_dot : t -> string
(** Render the graph in Graphviz DOT format. *)
